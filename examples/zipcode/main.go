// Zipcode: the paper's motivating scenario (Section 3.2) — "which zip code
// in the United States contains the most participants?" with 10^8
// participants and 41,683 possible zip codes. A categorical query at this
// scale is exactly what prior systems cannot answer: this example plans it,
// prints the winning strategy, and contrasts the analyst-visible costs under
// different optimization goals.
//
//	go run ./examples/zipcode
package main

import (
	"fmt"
	"log"

	"arboretum"
)

const zipQuery = `
perZip = sum(db);
zip = em(perZip, 0.1);
output(zip);
`

const usZipCodes = 41683

func main() {
	fmt.Println("Which zip code has the most participants? (N=10^8, 41,683 categories)")
	fmt.Println()

	goals := []arboretum.Goal{
		arboretum.MinimizeExpectedDeviceCPU,
		arboretum.MinimizeExpectedDeviceBytes,
		arboretum.MinimizeAggregatorCPU,
	}
	for _, goal := range goals {
		res, err := arboretum.Plan(arboretum.PlanRequest{
			Name:       "zipcode",
			Source:     zipQuery,
			N:          1e8,
			Categories: usZipCodes,
			Goal:       goal,
			Limits:     arboretum.DefaultLimits(),
		})
		if err != nil {
			log.Fatalf("goal %s: %v", goal, err)
		}
		fmt.Printf("--- goal: %s ---\n", goal)
		fmt.Printf("  aggregator: %8.0f core-hours, %6.1f TB sent\n",
			res.AggregatorCoreHours, res.AggregatorTerabytes)
		fmt.Printf("  device expected: %5.1f s, %6.2f MB\n",
			res.DeviceExpectedCPU, res.DeviceExpectedMB)
		fmt.Printf("  device worst:    %5.0f s, %6.2f GB (committee member)\n",
			res.DeviceMaxCPU, res.DeviceMaxGB)
		fmt.Printf("  committees: %d of size %d; key choices: sum=%s em=%s\n\n",
			res.CommitteeCount, res.CommitteeSize,
			res.Choices["sum"], res.Choices["em"])
	}

	// A tight aggregator budget forces Arboretum to recruit the devices
	// themselves for the summation — the "organic scaling" of Section 3.4.
	tight := arboretum.DefaultLimits()
	tight.AggregatorCoreHours = 600
	res, err := arboretum.Plan(arboretum.PlanRequest{
		Name: "zipcode", Source: zipQuery, N: 1e8, Categories: usZipCodes,
		Goal: arboretum.MinimizeExpectedDeviceCPU, Limits: tight,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- with a 600-core-hour aggregator budget ---")
	fmt.Printf("  sum strategy: %s (work shifted onto the participants)\n", res.Choices["sum"])
	fmt.Printf("  device expected cost rises to %.1f s / %.2f MB\n",
		res.DeviceExpectedCPU, res.DeviceExpectedMB)
}
