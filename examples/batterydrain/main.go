// Batterydrain: the paper's opening example — "a mobile-device manufacturer
// might look for which apps cause a large battery drain" — as a top-k query
// over app identifiers. Each device one-hot encodes the app that drained its
// battery the most; the manufacturer learns the top three offenders with
// differential privacy, and nothing about any individual device.
//
//	go run ./examples/batterydrain
package main

import (
	"fmt"
	"log"

	"arboretum"
)

// A tiny app universe for the demo.
var apps = []string{
	"maps", "camera", "games", "social", "video",
	"music", "mail", "browser", "fitness", "weather",
}

const topOffenders = `
drain = sum(db);
worst = topk(drain, 3, 2.0);
for i = 0 to 2 do
  output(worst[i]);
endfor;
`

func main() {
	// 1. What would this cost at fleet scale? Plan for 10^9 devices with a
	// realistic app universe of 2^15 identifiers.
	plan, err := arboretum.Plan(arboretum.PlanRequest{
		Name:       "battery-topk",
		Source:     topOffenders,
		N:          1 << 30,
		Categories: 1 << 15,
		Goal:       arboretum.MinimizeExpectedDeviceEnergy, // battery matters here
		Limits:     arboretum.DefaultLimits(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fleet-scale plan (10^9 devices, 2^15 app ids, energy-optimized):")
	fmt.Printf("  expected per-device: %.1f s compute, %.2f MB traffic\n",
		plan.DeviceExpectedCPU, plan.DeviceExpectedMB)
	fmt.Printf("  committees: %d of size %d; privacy: ε=%.3g\n\n",
		plan.CommitteeCount, plan.CommitteeSize, plan.Epsilon)

	// 2. Run it for real on a simulated fleet of 240 devices where games,
	// video, and maps are the true top drainers.
	dep, err := arboretum.NewDeployment(arboretum.DeploymentConfig{
		Devices:    240,
		Categories: len(apps),
		Seed:       3,
		Data: func(device int) int {
			switch {
			case device < 100:
				return 2 // games
			case device < 170:
				return 4 // video
			case device < 220:
				return 0 // maps
			default:
				return device % len(apps)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.Run(topOffenders)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulated fleet (240 devices):")
	for rank, o := range res.Outputs {
		fmt.Printf("  #%d battery offender: %s\n", rank+1, apps[int(o)])
	}
	fmt.Printf("(true top three: games, video, maps — ε=%.3g spent)\n", res.Epsilon)
}
