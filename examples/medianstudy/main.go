// Medianstudy: a medical-study scenario from the paper's introduction — a
// researcher wants the median of a sensitive per-patient measurement (say, a
// lab value bucketed into 16 ranges) without any patient revealing theirs.
// This runs the full median query end to end on a simulated cohort,
// including a malicious minority whose malformed uploads the ZKP check
// rejects, and reports the privacy ledger across repeated studies.
//
//	go run ./examples/medianstudy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"arboretum"
)

const buckets = 16

// medianQuery one-hot encodes each patient's bucket; utility of bucket b is
// −|rank(b) − n/2|, and the exponential mechanism picks a near-median bucket
// (the Böhler & Kerschbaum task, expressed in Arboretum's language).
const medianQuery = `
hist = sum(db);
n = len(hist);
rank[0] = hist[0];
for i = 1 to n - 1 do
  rank[i] = rank[i - 1] + hist[i];
endfor;
half = 100;
for i = 0 to n - 1 do
  dev[i] = rank[i] - half;
  mag[i] = abs(dev[i]);
  util[i] = 0 - mag[i];
endfor;
m = em(util, 2.0);
output(m);
`

func main() {
	// A cohort of 200 patients with lab values centered on bucket 9.
	rng := rand.New(rand.NewSource(7))
	values := make([]int, 200)
	for i := range values {
		v := 9 + int(rng.NormFloat64()*2)
		if v < 0 {
			v = 0
		}
		if v >= buckets {
			v = buckets - 1
		}
		values[i] = v
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	trueMedian := sorted[len(sorted)/2]

	dep, err := arboretum.NewDeployment(arboretum.DeploymentConfig{
		Devices:           200,
		Categories:        buckets,
		Seed:              7,
		MaliciousFraction: 0.05, // 5% of devices upload garbage
		BudgetEpsilon:     7,    // three ε=2 studies fit; a fourth does not
		Data:              func(device int) int { return values[device] },
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cohort: 200 patients, %d buckets, true median bucket = %d\n", buckets, trueMedian)
	for study := 1; study <= 3; study++ {
		res, err := dep.Run(medianQuery)
		if err != nil {
			log.Fatalf("study %d: %v", study, err)
		}
		epsLeft, _ := dep.RemainingBudget()
		fmt.Printf("study %d: DP median bucket = %.0f (accepted %d/200 uploads, ε left %.2f)\n",
			study, res.Outputs[0], res.AcceptedInputs, epsLeft)
	}

	// A fourth study overruns the deployment's privacy budget and is
	// rejected by the key-generation committee before any data moves.
	if _, err := dep.Run(medianQuery); err != nil {
		fmt.Printf("study 4 rejected: %v\n", err)
	} else {
		fmt.Println("study 4 unexpectedly ran — budget accounting broken?")
	}
}
