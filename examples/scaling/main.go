// Scaling: a miniature of the paper's Figure 10 — how the costs of the top1
// query move as the deployment grows from 2^18 to 2^30 participants, with
// and without an aggregator budget. Watch three effects: the aggregator's
// cost grows with N, the participants' expected cost falls (the odds of
// serving on a committee shrink), and once the budget binds, the planner
// outsources the summation to the devices.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"arboretum"
)

const top1 = `
aggr = sum(db);
result = em(aggr, 0.1);
output(result);
`

func main() {
	for _, budget := range []float64{0, 1000} { // core-hours; 0 = defaults
		label := "default limits"
		if budget > 0 {
			label = fmt.Sprintf("aggregator limited to %.0f core-hours", budget)
		}
		fmt.Printf("--- %s ---\n", label)
		fmt.Printf("%-6s %12s %12s %12s  %s\n", "logN", "agg core-h", "device exp s", "device max s", "sum strategy")
		for logN := 18; logN <= 30; logN += 2 {
			limits := arboretum.DefaultLimits()
			if budget > 0 {
				limits.AggregatorCoreHours = budget
			}
			res, err := arboretum.Plan(arboretum.PlanRequest{
				Name:       "top1",
				Source:     top1,
				N:          1 << logN,
				Categories: 1 << 15,
				Goal:       arboretum.MinimizeExpectedDeviceCPU,
				Limits:     limits,
			})
			if err != nil {
				fmt.Printf("%-6d %12s %12s %12s  infeasible (%v)\n", logN, "-", "-", "-", shortErr(err))
				continue
			}
			fmt.Printf("%-6d %12.1f %12.1f %12.0f  %s\n",
				logN, res.AggregatorCoreHours, res.DeviceExpectedCPU,
				res.DeviceMaxCPU, res.Choices["sum"])
		}
		fmt.Println()
	}
	log.SetFlags(0)
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}
