// Quickstart: plan a categorical query for a billion-device deployment,
// then execute it end to end on a small simulated deployment with real
// cryptography.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"arboretum"
)

// The paper's running example (Figure 3): which category is most common?
// Written as if the database existed on one machine; Arboretum handles
// distribution and encryption.
const top1 = `
aggr = sum(db);
result = em(aggr, 0.1);
output(result);
`

func main() {
	// 1. Plan for a deployment of 2^30 participants with 2^15 categories.
	plan, err := arboretum.Plan(arboretum.PlanRequest{
		Name:       "top1",
		Source:     top1,
		N:          1 << 30,
		Categories: 1 << 15,
		Goal:       arboretum.MinimizeExpectedDeviceCPU,
		Limits:     arboretum.DefaultLimits(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== chosen plan ===")
	fmt.Print(plan.Summary)
	fmt.Printf("privacy guarantee: (ε=%.3g, δ=%.2g)-DP\n", plan.Epsilon, plan.Delta)
	fmt.Printf("expected device cost: %.1f s, %.2f MB; worst case: %.0f s, %.2f GB\n",
		plan.DeviceExpectedCPU, plan.DeviceExpectedMB, plan.DeviceMaxCPU, plan.DeviceMaxGB)
	fmt.Printf("planned in %v over %d plan prefixes\n\n", plan.PlanningTime, plan.PrefixesExplored)

	// 2. Execute the same query on a simulated deployment of 128 devices
	// (real Paillier encryption, sortition, committee MPC, ZKPs, audits).
	dep, err := arboretum.NewDeployment(arboretum.DeploymentConfig{
		Devices:    128,
		Categories: 8,
		Seed:       1,
		Data: func(device int) int {
			if device%3 != 0 {
				return 5 // category 5 is the clear mode
			}
			return device % 8
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Use a large ε so the demo returns the true mode deterministically.
	res, err := dep.Run(`aggr = sum(db);
result = em(aggr, 3.0);
output(result);`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== simulated execution ===")
	fmt.Printf("accepted inputs: %d/128\n", res.AcceptedInputs)
	fmt.Printf("most frequent category: %.0f (true mode: 5)\n", res.Outputs[0])
	eps, _ := dep.RemainingBudget()
	fmt.Printf("remaining privacy budget: ε=%.3g\n", eps)
}
