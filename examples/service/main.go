// Service: Arboretum as a long-lived multi-tenant gateway. Two analysts —
// a health-ministry team and a university lab — share one arboretumd-style
// server in process; each submits differentially private queries over HTTP
// and is metered against its own durable (ε, δ) budget. The demo then
// reopens the ledger WAL the way a restarted daemon would, showing that the
// balances replay to exactly the committed spend.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"arboretum/internal/ledger"
	"arboretum/internal/service"
)

// One Laplace count, certified at ε = 1 per run.
const countQuery = `aggr = sum(db);
noised = laplace(aggr[0], 1.0);
output(declassify(noised));`

func main() {
	dir, err := os.MkdirTemp("", "arboretum-service")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "budget.ledger")

	// Start the gateway exactly as cmd/arboretumd does, with two tenants.
	srv, err := service.New(service.Config{
		LedgerPath: walPath,
		Tenants: []service.TenantSpec{
			{ID: "health-ministry", Epsilon: 3, Delta: 1e-6},
			{ID: "university-lab", Epsilon: 1, Delta: 1e-6},
		},
		Devices:       64,
		Categories:    4,
		CommitteeSize: 3,
		Seed:          7,
		JobWorkers:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	fmt.Printf("gateway up at %s, ledger %s\n\n", ts.URL, walPath)

	// Each tenant submits a query; the ministry runs a second one. The lab's
	// second attempt must bounce: its whole ε=1 went to the first query.
	ids := map[string]string{}
	for _, sub := range []struct{ tenant, label string }{
		{"health-ministry", "ministry-1"},
		{"university-lab", "lab-1"},
		{"health-ministry", "ministry-2"},
	} {
		id, err := submit(ts.URL, sub.tenant)
		if err != nil {
			log.Fatalf("%s: %v", sub.label, err)
		}
		fmt.Printf("submitted %-10s for %-15s -> job %s\n", sub.label, sub.tenant, id)
		ids[sub.label] = id
	}
	if _, err := submit(ts.URL, "university-lab"); err == nil {
		log.Fatal("over-budget submission was admitted")
	} else {
		fmt.Printf("\nlab-2 refused before execution: %v\n\n", err)
	}

	for label, id := range ids {
		state, spent, err := wait(ts.URL, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s finished %s, ε spent %.3f\n", label, state, spent)
	}

	fmt.Println("\nper-tenant balances (independent metering):")
	printBalances(ts.URL)

	// A restarted daemon sees the same numbers: close everything and replay
	// the WAL like ledger.Open at startup does.
	ts.Close()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	replayed, err := ledger.Open(walPath, ledger.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer replayed.Close()
	fmt.Println("\nafter reopening the WAL (simulated restart):")
	for _, b := range replayed.Tenants() {
		fmt.Printf("  %-15s spent ε=%.3f of %.0f, reserved %.3f, %d queries\n",
			b.TenantID, b.EpsSpent, b.EpsTotal, b.EpsReserved, b.Queries)
	}
}

func submit(base, tenant string) (string, error) {
	body, _ := json.Marshal(map[string]string{"tenant": tenant, "source": countQuery})
	resp, err := http.Post(base+"/v1/queries", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		ID    string `json:"id"`
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if out.Error != nil {
		return "", fmt.Errorf("%s: %s", out.Error.Code, out.Error.Message)
	}
	return out.ID, nil
}

func wait(base, id string) (state string, spent float64, err error) {
	for deadline := time.Now().Add(2 * time.Minute); time.Now().Before(deadline); time.Sleep(100 * time.Millisecond) {
		resp, err := http.Get(base + "/v1/queries/" + id)
		if err != nil {
			return "", 0, err
		}
		var j struct {
			State        string  `json:"state"`
			SpentEpsilon float64 `json:"spent_epsilon"`
			Error        string  `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if derr != nil {
			return "", 0, derr
		}
		switch j.State {
		case "done":
			return j.State, j.SpentEpsilon, nil
		case "failed", "canceled":
			return j.State, 0, fmt.Errorf("job %s: %s (%s)", id, j.State, j.Error)
		}
	}
	return "", 0, fmt.Errorf("job %s: timed out", id)
}

func printBalances(base string) {
	resp, err := http.Get(base + "/v1/tenants")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Tenants []ledger.Balance `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	for _, b := range out.Tenants {
		fmt.Printf("  %-15s spent ε=%.3f of %.0f, %d queries, %.3f remaining\n",
			b.TenantID, b.EpsSpent, b.EpsTotal, b.Queries, b.EpsAvailable())
	}
}
