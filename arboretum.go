// Package arboretum is a planner and runtime for large-scale federated
// analytics with differential privacy, reproducing the system described in
// "Arboretum: A Planner for Large-Scale Federated Analytics with
// Differential Privacy" (SOSP 2023).
//
// An analyst writes a query in a small imperative language as if the whole
// database existed on one machine:
//
//	aggr = sum(db);
//	result = em(aggr, 0.1);
//	output(result);
//
// Arboretum certifies the query as differentially private, explores the
// design space of concrete implementations — operator instantiations,
// vignette placement across the aggregator / committees of user devices /
// the devices themselves, and cryptosystem choices — and returns the
// cheapest plan under the analyst's cost limits. The companion runtime
// executes plans end to end on a simulated deployment with real
// cryptography: Paillier aggregation, honest-majority Shamir MPC inside
// committees, verifiable secret redistribution between committees,
// ZKP-checked inputs, and Merkle-audited aggregation.
//
// This package is the high-level facade; the implementation lives in the
// internal packages (see DESIGN.md for the full inventory).
package arboretum

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"arboretum/internal/bgv"
	"arboretum/internal/costmodel"
	"arboretum/internal/faults"
	"arboretum/internal/mechanism"
	"arboretum/internal/planner"
	"arboretum/internal/queries"
	"arboretum/internal/runtime"
)

// Goal selects the metric the planner minimizes (Section 4.2 of the paper).
type Goal string

// The optimization goals: the six metrics of Section 4.2 plus the two
// derived energy goals.
const (
	MinimizeAggregatorCPU       Goal = "aggregator-cpu"
	MinimizeAggregatorBytes     Goal = "aggregator-bytes"
	MinimizeExpectedDeviceCPU   Goal = "device-expected-cpu"
	MinimizeExpectedDeviceBytes Goal = "device-expected-bytes"
	MinimizeMaxDeviceCPU        Goal = "device-max-cpu"
	MinimizeMaxDeviceBytes      Goal = "device-max-bytes"
	// MinimizeExpectedDeviceEnergy optimizes battery drain, mixing compute
	// and radio costs — the energy metric the paper mentions as an easy
	// extension (Section 4.2).
	MinimizeExpectedDeviceEnergy Goal = "device-expected-energy"
	// MinimizeMaxDeviceEnergy optimizes the worst-case (committee member)
	// battery drain.
	MinimizeMaxDeviceEnergy Goal = "device-max-energy"
)

func (g Goal) metric() (costmodel.Metric, error) {
	switch g {
	case MinimizeAggregatorCPU:
		return costmodel.AggCPU, nil
	case MinimizeAggregatorBytes:
		return costmodel.AggBytes, nil
	case MinimizeExpectedDeviceCPU, "":
		return costmodel.PartExpCPU, nil
	case MinimizeExpectedDeviceBytes:
		return costmodel.PartExpBytes, nil
	case MinimizeMaxDeviceCPU:
		return costmodel.PartMaxCPU, nil
	case MinimizeMaxDeviceBytes:
		return costmodel.PartMaxBytes, nil
	case MinimizeExpectedDeviceEnergy:
		return costmodel.PartExpEnergy, nil
	case MinimizeMaxDeviceEnergy:
		return costmodel.PartMaxEnergy, nil
	default:
		return 0, fmt.Errorf("arboretum: unknown goal %q", g)
	}
}

// Limits bounds acceptable plans; zero fields are unlimited (Section 4.2's
// example: "the aggregator must not spend more than 1,000 core-hours and
// user devices must not be asked to send more than 500 MB").
type Limits struct {
	AggregatorCoreHours float64
	AggregatorBytes     float64
	DeviceExpectedCPU   float64 // seconds
	DeviceExpectedBytes float64
	DeviceMaxCPU        float64 // seconds
	DeviceMaxBytes      float64
}

// DefaultLimits matches the paper's evaluation setup: devices send at most
// 4 GB and compute at most 20 minutes.
func DefaultLimits() Limits {
	return Limits{
		AggregatorCoreHours: 10000,
		DeviceMaxCPU:        20 * 60,
		DeviceMaxBytes:      4e9,
	}
}

func (l Limits) internal() costmodel.Limits {
	return costmodel.Limits{
		AggCPU:       l.AggregatorCoreHours * 3600,
		AggBytes:     l.AggregatorBytes,
		PartExpCPU:   l.DeviceExpectedCPU,
		PartExpBytes: l.DeviceExpectedBytes,
		PartMaxCPU:   l.DeviceMaxCPU,
		PartMaxBytes: l.DeviceMaxBytes,
	}
}

// PlanRequest describes one planning task.
type PlanRequest struct {
	Name       string // label for reporting
	Source     string // query text (Section 4.1's language)
	N          int64  // participants
	Categories int64  // width of each device's one-hot input row
	Goal       Goal
	Limits     Limits
	// ForceChoices pins operators to implementation families (prefix match,
	// e.g. {"sum": "device-tree"} or {"em": "gumbel"}) — used to price the
	// roads not taken.
	ForceChoices map[string]string
	// Workers bounds the planner's worker pool (0 = the ARBORETUM_WORKERS
	// environment variable, then GOMAXPROCS; 1 = sequential). The chosen
	// plan is identical at every setting.
	Workers int
	// Ring selects the BGV ring the FHE costs are priced for, by name
	// ("paper" = the deployment ring, 2^15 degree / 135-bit RNS modulus;
	// "test" = the reduced unit-test ring). When set, the FHE constants in
	// the cost model are measured natively on that ring via
	// costmodel.CalibrateRing — the deployment ring now runs in-process, so
	// Table 1's FHE column is measured, not extrapolated. Empty keeps the
	// reference model's deployment-calibrated defaults.
	Ring string
}

// PlanResult is the planning outcome.
type PlanResult struct {
	// Summary renders the chosen plan in the style of the paper's Figure 5.
	Summary string
	// Detail additionally prices every vignette for one member/executor.
	Detail string
	// Choices records the search decisions (operator variants, fanouts).
	Choices map[string]string

	// The six cost metrics of the chosen plan.
	AggregatorCoreHours float64
	AggregatorTerabytes float64
	DeviceExpectedCPU   float64 // seconds
	DeviceExpectedMB    float64
	DeviceMaxCPU        float64 // seconds
	DeviceMaxGB         float64

	CommitteeCount int
	CommitteeSize  int

	// Privacy certificate.
	Epsilon float64
	Delta   float64

	// Search statistics.
	PlanningTime     time.Duration
	PrefixesExplored int64
}

// Plan certifies and plans a query (Section 4 of the paper end to end).
func Plan(req PlanRequest) (*PlanResult, error) {
	metric, err := req.Goal.metric()
	if err != nil {
		return nil, err
	}
	var model *costmodel.Model
	if req.Ring != "" {
		rp, err := bgv.RingByName(req.Ring)
		if err != nil {
			return nil, err
		}
		if model, err = costmodel.CalibrateRing(rp); err != nil {
			return nil, err
		}
	}
	res, err := planner.Plan(planner.Request{
		Name:         req.Name,
		Source:       req.Source,
		N:            req.N,
		Categories:   req.Categories,
		Goal:         metric,
		Limits:       req.Limits.internal(),
		Model:        model,
		ForceChoices: req.ForceChoices,
		Workers:      req.Workers,
	})
	if err != nil {
		return nil, err
	}
	detailModel := model
	if detailModel == nil {
		detailModel = costmodel.Default()
	}
	p := res.Plan
	return &PlanResult{
		Summary:             p.String(),
		Detail:              p.DetailString(detailModel),
		Choices:             p.Choices,
		AggregatorCoreHours: p.Cost.AggCPU / 3600,
		AggregatorTerabytes: p.Cost.AggBytes / 1e12,
		DeviceExpectedCPU:   p.Cost.PartExpCPU,
		DeviceExpectedMB:    p.Cost.PartExpBytes / 1e6,
		DeviceMaxCPU:        p.Cost.PartMaxCPU,
		DeviceMaxGB:         p.Cost.PartMaxBytes / 1e9,
		CommitteeCount:      p.CommitteeCount,
		CommitteeSize:       p.CommitteeSize,
		Epsilon:             res.Certificate.Epsilon,
		Delta:               res.Certificate.Delta,
		PlanningTime:        res.PlanningTime,
		PrefixesExplored:    res.Stats.PrefixesExplored,
	}, nil
}

// DeploymentConfig shapes a simulated deployment for end-to-end execution.
type DeploymentConfig struct {
	Devices       int // participant devices (≥ 8)
	Categories    int // one-hot width of each input
	CommitteeSize int // default 5
	Seed          int64
	// MaliciousFraction of devices upload malformed inputs; the ZKP check
	// rejects them.
	MaliciousFraction float64
	// ByzantineAggregator corrupts one aggregation step; the Merkle audits
	// catch it and Run returns an error.
	ByzantineAggregator bool
	// Data maps a device index to its category; nil uses a skewed default.
	Data func(device int) int
	// BudgetEpsilon is the deployment's total privacy budget (default 10).
	BudgetEpsilon float64
	// Workers bounds the runtime's worker pool for per-device work
	// (0 = the ARBORETUM_WORKERS environment variable, then GOMAXPROCS;
	// 1 = sequential). Released outputs are identical at every setting.
	Workers int
	// Faults is a fault-injection schedule, e.g.
	// "seed=7,upload=0.1,dropout=0.005,crash@1" — comma-separated rates per
	// fault kind (upload, dropout, dealer, crash, shard) plus forced
	// one-shot faults (kind@sequence). Schedules are pure functions of the
	// seed, so a run replays deterministically; see docs/FAULTS.md. Empty
	// disables injection.
	Faults string
	// StreamIngest routes input collection through the sharded streaming
	// pipeline (docs/INGEST.md): O(IngestShards × IngestBatch) memory
	// instead of O(Devices), bit-identical released outputs. IngestShards
	// and IngestBatch default to 8 and 64 when ≤ 0.
	StreamIngest bool
	IngestShards int
	IngestBatch  int
}

// Deployment is a running simulated federated-analytics system.
type Deployment struct {
	inner *runtime.Deployment
}

// NewDeployment registers the devices and runs the trusted setup.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	plan, err := faults.Parse(cfg.Faults)
	if err != nil {
		return nil, err
	}
	d, err := runtime.NewDeployment(runtime.Config{
		N:                   cfg.Devices,
		Categories:          cfg.Categories,
		CommitteeSize:       cfg.CommitteeSize,
		Seed:                cfg.Seed,
		MaliciousFrac:       cfg.MaliciousFraction,
		ByzantineAggregator: cfg.ByzantineAggregator,
		Data:                cfg.Data,
		BudgetEpsilon:       cfg.BudgetEpsilon,
		Workers:             cfg.Workers,
		Faults:              plan,
		StreamIngest:        cfg.StreamIngest,
		IngestShards:        cfg.IngestShards,
		IngestBatch:         cfg.IngestBatch,
	})
	if err != nil {
		return nil, err
	}
	return &Deployment{inner: d}, nil
}

// FaultReport renders the fault plan, the log of injected faults, and the
// recovery counters accumulated so far — empty when the deployment has no
// fault schedule. The report is deterministic for a given (Seed, Faults)
// pair, so two runs with the same flags print identical reports.
func (d *Deployment) FaultReport() string {
	return d.inner.FaultReport()
}

// RunResult is one executed query.
type RunResult struct {
	// Outputs are the released values, in output() order.
	Outputs []float64
	// Epsilon actually charged to the deployment's budget.
	Epsilon float64
	// AcceptedInputs counts devices whose proofs verified.
	AcceptedInputs int
	// SampledDevices counts devices included by secrecy-of-the-sample
	// (equal to the deployment size when the query does not sample).
	SampledDevices int
}

// Run executes a query end to end: sortition, key generation, ZKP-checked
// input collection, audited aggregation, committee MPC vignettes, output
// (Section 5 of the paper).
func (d *Deployment) Run(source string) (*RunResult, error) {
	return d.run(source, runtime.RunOptions{})
}

// RunWithExponentiateEM executes with the exponentiation-based em variant
// (Figure 4, left) instead of the default Gumbel variant.
func (d *Deployment) RunWithExponentiateEM(source string) (*RunResult, error) {
	return d.run(source, runtime.RunOptions{EMVariant: mechanism.EMExponentiate})
}

func (d *Deployment) run(source string, opts runtime.RunOptions) (*RunResult, error) {
	res, err := d.inner.Run(source, opts)
	if err != nil {
		return nil, err
	}
	outs := make([]float64, len(res.Outputs))
	for i, o := range res.Outputs {
		outs[i] = o.Float()
	}
	return &RunResult{
		Outputs:        outs,
		Epsilon:        res.Certificate.Epsilon,
		AcceptedInputs: res.Accepted,
		SampledDevices: res.Sampled,
	}, nil
}

// RemainingBudget returns the deployment's unspent privacy budget.
func (d *Deployment) RemainingBudget() (epsilon, delta float64) {
	return d.inner.Budget.Remaining()
}

// QueryInfo describes one of the built-in evaluation queries (the paper's
// Table 2).
type QueryInfo struct {
	Name       string
	Action     string
	Source     string
	Categories int64
	Lines      int
}

// EvaluationQueries returns the paper's ten evaluation queries, ready to
// pass to Plan or Deployment.Run.
func EvaluationQueries() []QueryInfo {
	out := make([]QueryInfo, 0, len(queries.All))
	for _, q := range queries.All {
		out = append(out, QueryInfo{
			Name: q.Name, Action: q.Action, Source: q.Source,
			Categories: q.Categories, Lines: q.Lines(),
		})
	}
	return out
}

// RunPlanned executes a query using the execution-level choices a plan made:
// the em variant and, when the plan outsourced the sum, a device sum tree of
// the chosen fanout. This is how the two phases of the paper compose — plan
// once at deployment scale, execute with the same structure.
func (d *Deployment) RunPlanned(p *PlanResult, source string) (*RunResult, error) {
	if p == nil {
		return nil, fmt.Errorf("arboretum: nil plan")
	}
	opts := runtime.RunOptions{}
	if strings.HasPrefix(p.Choices["em"], "exponentiate") {
		opts.EMVariant = mechanism.EMExponentiate
	}
	if f, ok := strings.CutPrefix(p.Choices["sum"], "device-tree-fanout-"); ok {
		if n, err := strconv.Atoi(f); err == nil && n > 1 {
			opts.SumTreeFanout = n
		}
	}
	return d.run(source, opts)
}
