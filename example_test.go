package arboretum_test

import (
	"fmt"
	"log"

	"arboretum"
)

// ExamplePlan plans the paper's running example — the most-frequent-item
// query — for a billion-device deployment and prints the structural facts
// of the chosen plan.
func ExamplePlan() {
	res, err := arboretum.Plan(arboretum.PlanRequest{
		Name:       "top1",
		Source:     "aggr = sum(db);\nresult = em(aggr, 0.1);\noutput(result);",
		N:          1 << 30,
		Categories: 1 << 15,
		Goal:       arboretum.MinimizeExpectedDeviceCPU,
		Limits:     arboretum.DefaultLimits(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epsilon: %.1f\n", res.Epsilon)
	fmt.Printf("sum: %s\n", res.Choices["sum"])
	fmt.Printf("expected device seconds: %.0f\n", res.DeviceExpectedCPU)
	// Output:
	// epsilon: 0.1
	// sum: aggregator-loop
	// expected device seconds: 14
}

// ExampleDeployment_Run executes the same query end to end on a small
// simulated deployment with real cryptography. Category 3 is the clear mode,
// so a large ε returns it deterministically.
func ExampleDeployment_Run() {
	dep, err := arboretum.NewDeployment(arboretum.DeploymentConfig{
		Devices:    64,
		Categories: 4,
		Seed:       1,
		Data: func(device int) int {
			if device%2 == 0 {
				return 3
			}
			return device % 4
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.Run("aggr = sum(db);\nresult = em(aggr, 5.0);\noutput(result);")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most frequent category: %.0f\n", res.Outputs[0])
	fmt.Printf("accepted inputs: %d\n", res.AcceptedInputs)
	// Output:
	// most frequent category: 3
	// accepted inputs: 64
}
