module arboretum

go 1.22
