#!/bin/sh
# Tier-1 verification: build, vet, tests, and the race detector over the
# parallel execution engine. Run from the repository root.
#
# The race pass takes a few minutes on small machines (the runtime package
# runs real Paillier/MPC under the detector); set ARBORETUM_CHECK_FAST=1 to
# skip it during quick iteration. Set ARBORETUM_CHECK_LINT=0 to skip the
# arblint invariant gate (docs/ANALYSIS.md) while iterating on code the
# analyzers are expected to flag.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

if [ "${ARBORETUM_CHECK_LINT:-1}" = "0" ]; then
    echo "== skipping arblint (ARBORETUM_CHECK_LINT=0)"
else
    echo "== go run ./tools/arblint ./..."
    go run ./tools/arblint ./...
fi

echo "== go test ./..."
go test ./...

# Allocation-regression gates (docs/KERNELS.md): the kernel hot paths are
# pinned to their steady-state allocation counts. Runs inside `go test ./...`
# too; this named invocation bypasses the test cache so the gate always
# executes, and fails loudly on its own line when a hot path regresses.
echo "== alloc-regression gates"
go test ./internal/bgv ./internal/ahe -run '^TestAllocGate' -count=1

# Streaming-ingest memory-flatness smoke (docs/INGEST.md): peak heap at 10^6
# simulated devices must stay within 1.2x of the 10^5 run. Runs without the
# race detector (the test is !race-tagged: 10^6 instrumented Paillier folds
# would take minutes and measure the detector's shadow heap, not ours).
echo "== ingest memory-flatness smoke"
ARBORETUM_INGEST_SMOKE=1 go test ./internal/runtime -run '^TestIngestMemoryFlat$' -count=1

if [ "${ARBORETUM_CHECK_FAST:-0}" = "1" ]; then
    echo "== skipping go test -race ./... (ARBORETUM_CHECK_FAST=1)"
    # The fast path trades the race pass for the arboretumd end-to-end
    # smokes: the conformance pass (every docs/SERVICE.md endpoint, exact
    # budget debits) and the crash-recovery pass (SIGKILL mid-burst,
    # restart on the same ledger + journal, every accepted job recovered
    # with exact accounting). The slow path already covers the service
    # packages under the race detector above.
    echo "== scripts/loadtest.sh -smoke"
    sh scripts/loadtest.sh -smoke
    echo "== scripts/loadtest.sh -kill"
    sh scripts/loadtest.sh -kill
else
    echo "== go test -race ./..."
    go test -race ./...
fi

if [ "${ARBORETUM_CHECK_BENCH:-0}" = "1" ]; then
    echo "== scripts/bench.sh smoke run (-benchtime 1x)"
    SMOKE_OUT="$(mktemp)"
    ARBORETUM_BENCH_TIME=1x ARBORETUM_BENCH_OUT="$SMOKE_OUT" sh scripts/bench.sh
    rm -f "$SMOKE_OUT"
fi

echo "ok"
