#!/bin/sh
# Tier-1 verification: build, vet, tests, and the race detector over the
# parallel execution engine. Run from the repository root.
#
# The race pass takes a few minutes on small machines (the runtime package
# runs real Paillier/MPC under the detector); set ARBORETUM_CHECK_FAST=1 to
# skip it during quick iteration.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

if [ "${ARBORETUM_CHECK_FAST:-0}" = "1" ]; then
    echo "== skipping go test -race ./... (ARBORETUM_CHECK_FAST=1)"
else
    echo "== go test -race ./..."
    go test -race ./...
fi

echo "ok"
