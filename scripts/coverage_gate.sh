#!/bin/sh
# coverage_gate.sh — fail if internal/runtime statement coverage regresses.
#
# Runs the full test suite with a coverage profile and compares
# internal/runtime's statement coverage against the checked-in baseline,
# which was measured immediately before the fault-injection PR landed.
# The gate is one-way: raise BASELINE when coverage improves, never lower
# it to make a PR pass. The profile is left at coverage.out so CI can
# upload it as an artifact.
#
# Usage: sh scripts/coverage_gate.sh [out-file]

set -e

# Statement coverage of arboretum/internal/runtime before this gate existed.
BASELINE=75.5

out="${1:-coverage.out}"

echo "== go test -coverprofile=$out ./..."
go test -count=1 -coverprofile="$out" ./...

# A profile line is "file.go:start,end numStatements hitCount"; sum the
# statements and the covered statements of internal/runtime only.
pct=$(awk -F'[ ]' '
    $1 ~ /^arboretum\/internal\/runtime\// {
        total += $2
        if ($3 > 0) covered += $2
    }
    END {
        if (total == 0) { print "0"; exit }
        printf "%.1f", 100 * covered / total
    }
' "$out")

echo "== internal/runtime coverage: ${pct}% (baseline ${BASELINE}%)"
if awk "BEGIN { exit !($pct < $BASELINE) }"; then
    echo "coverage gate: internal/runtime dropped below the ${BASELINE}% baseline" >&2
    exit 1
fi
