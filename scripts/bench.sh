#!/bin/sh
# Runs the crypto, runtime, and planner benchmarks and emits a
# machine-readable BENCH_kernels.json so the performance trajectory is
# tracked from PR to PR. Run from anywhere inside the repository.
#
# Environment knobs:
#   ARBORETUM_BENCH_TIME   go test -benchtime value (default 1s; 1x for smoke)
#   ARBORETUM_BENCH_COUNT  go test -count value (default 1)
#   ARBORETUM_BENCH_OUT    output path (default BENCH_kernels.json)
#   ARBORETUM_BENCH_PKGS   space-separated package list to benchmark
#
# Every benchmark runs at -cpu 1, because the tracked numbers are the
# single-core kernel costs the cost model's rates are derived from (the
# worker-pool scaling story is measured separately; see README).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${ARBORETUM_BENCH_TIME:-1s}"
COUNT="${ARBORETUM_BENCH_COUNT:-1}"
OUT="${ARBORETUM_BENCH_OUT:-BENCH_kernels.json}"
PKGS="${ARBORETUM_BENCH_PKGS:-./internal/bgv ./internal/ahe ./internal/runtime ./internal/planner}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

for pkg in $PKGS; do
    echo "== go test $pkg -bench . -benchmem (-benchtime $BENCHTIME, -count $COUNT)"
    go test "$pkg" -run '^$' -bench . -benchmem \
        -benchtime "$BENCHTIME" -count "$COUNT" -cpu 1 | tee -a "$TMP"
done

# Convert `go test -bench` output into a JSON array of
# {pkg, op, iterations, ns_op, b_op, allocs_op} objects, one per benchmark
# line (repeated ops appear once per -count run).
awk '
BEGIN { print "["; first = 1 }
/^pkg: / { pkg = $2 }
/^Benchmark/ {
    op = $1
    sub(/^Benchmark/, "", op)
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (bytes == "") bytes = "null"
    if (allocs == "") allocs = "null"
    if (!first) printf ",\n"
    first = 0
    printf "  {\"pkg\": \"%s\", \"op\": \"%s\", \"iterations\": %s, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", pkg, op, iters, ns, bytes, allocs
}
END { print "\n]" }
' "$TMP" > "$OUT"

echo "wrote $OUT ($(grep -c '"op"' "$OUT") benchmark entries)"
