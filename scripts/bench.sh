#!/bin/sh
# Runs the crypto, runtime, and planner benchmarks and emits a
# machine-readable BENCH_kernels.json so the performance trajectory is
# tracked from PR to PR. Run from anywhere inside the repository.
#
#   scripts/bench.sh           kernel benchmarks -> BENCH_kernels.json
#   scripts/bench.sh ingest    streaming-ingest population sweep
#                              -> BENCH_ingest.json (see below)
#
# Environment knobs:
#   ARBORETUM_BENCH_TIME   go test -benchtime value (default 1s; 1x for smoke)
#   ARBORETUM_BENCH_COUNT  go test -count value (default 1)
#   ARBORETUM_BENCH_OUT    output path (default BENCH_kernels.json /
#                          BENCH_ingest.json per mode)
#   ARBORETUM_BENCH_PKGS   space-separated package list to benchmark
#   ARBORETUM_INGEST_SWEEP populations for the ingest sweep
#                          (default "10000 100000 1000000 10000000")
#
# Every kernel benchmark runs at -cpu 1, because the tracked numbers are the
# single-core kernel costs the cost model's rates are derived from (the
# worker-pool scaling story is measured separately; see README).
set -eu

cd "$(dirname "$0")/.."

# --- ingest mode: population sweep over the sharded streaming pipeline ---
#
# Each run drives BenchmarkIngest (internal/runtime) at one virtual
# population size and records per-op and per-device cost plus the pipeline's
# peak heap. Unlike the kernel benchmarks this runs at the machine's full
# GOMAXPROCS: the sweep's subject is the sharded fan-out and its flat memory,
# not a single-core kernel rate. ns/device and heap_peak_bytes staying flat
# as devices grow 1000× is the scaling evidence (docs/INGEST.md).
if [ "${1:-}" = "ingest" ]; then
    OUT="${ARBORETUM_BENCH_OUT:-BENCH_ingest.json}"
    SWEEP="${ARBORETUM_INGEST_SWEEP:-10000 100000 1000000 10000000}"
    TMP="$(mktemp)"
    trap 'rm -f "$TMP"' EXIT
    for n in $SWEEP; do
        echo "== BenchmarkIngest at $n devices"
        ARBORETUM_BENCH_DEVICES="$n" go test ./internal/runtime \
            -run '^$' -bench '^BenchmarkIngest$' -benchmem \
            -benchtime "${ARBORETUM_BENCH_TIME:-1x}" -timeout 60m \
            | tee -a "$TMP"
        printf 'devices: %s\n' "$n" >> "$TMP"
    done
    awk '
    BEGIN { print "["; first = 1 }
    /^Benchmark/ {
        ns = $3
        bytes = "null"; allocs = "null"
        nsdev = "null"; bdev = "null"; heap = "null"
        for (i = 3; i < NF; i++) {
            if ($(i + 1) == "B/op") bytes = $i
            if ($(i + 1) == "allocs/op") allocs = $i
            if ($(i + 1) == "ns/device") nsdev = $i
            if ($(i + 1) == "B/device") bdev = $i
            if ($(i + 1) == "heap-peak-bytes") heap = $i
        }
    }
    /^devices: / {
        if (!first) printf ",\n"
        first = 0
        printf "  {\"op\": \"Ingest\", \"devices\": %s, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s, \"ns_device\": %s, \"b_device\": %s, \"heap_peak_bytes\": %s}", $2, ns, bytes, allocs, nsdev, bdev, heap
    }
    END { print "\n]" }
    ' "$TMP" > "$OUT"
    echo "wrote $OUT ($(grep -c '"op"' "$OUT") sweep points)"
    exit 0
fi

BENCHTIME="${ARBORETUM_BENCH_TIME:-1s}"
COUNT="${ARBORETUM_BENCH_COUNT:-1}"
OUT="${ARBORETUM_BENCH_OUT:-BENCH_kernels.json}"
PKGS="${ARBORETUM_BENCH_PKGS:-./internal/bgv ./internal/ahe ./internal/runtime ./internal/planner}"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

for pkg in $PKGS; do
    echo "== go test $pkg -bench . -benchmem (-benchtime $BENCHTIME, -count $COUNT)"
    go test "$pkg" -run '^$' -bench . -benchmem \
        -benchtime "$BENCHTIME" -count "$COUNT" -cpu 1 | tee -a "$TMP"
done

# Convert `go test -bench` output into a JSON array of
# {pkg, op, iterations, ns_op, b_op, allocs_op} objects, one per benchmark
# line (repeated ops appear once per -count run). A /ring=<degree>x<primes>
# sub-benchmark tag (the RNS ring benchmarks) is lifted out of the op name
# into its own "ring" field, so rows at different ring parameters are
# distinguishable without string-parsing op names downstream.
awk '
BEGIN { print "["; first = 1 }
/^pkg: / { pkg = $2 }
/^Benchmark/ {
    op = $1
    sub(/^Benchmark/, "", op)
    ring = "null"
    if (op ~ /\/ring=/) {
        ring = op
        sub(/^.*\/ring=/, "", ring)
        sub(/\/.*$/, "", ring)
        ring = "\"" ring "\""
        sub(/\/ring=[^\/]*/, "", op)
    }
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (bytes == "") bytes = "null"
    if (allocs == "") allocs = "null"
    if (!first) printf ",\n"
    first = 0
    printf "  {\"pkg\": \"%s\", \"op\": \"%s\", \"ring\": %s, \"iterations\": %s, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", pkg, op, ring, iters, ns, bytes, allocs
}
END { print "\n]" }
' "$TMP" > "$OUT"

echo "wrote $OUT ($(grep -c '"op"' "$OUT") benchmark entries)"
