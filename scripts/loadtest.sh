#!/bin/sh
# Load-test (and smoke-test) the arboretumd analyst gateway.
#
#   scripts/loadtest.sh            # load run: concurrent analysts, throughput report
#   scripts/loadtest.sh -smoke     # CI conformance pass: every docs/SERVICE.md
#                                  # endpoint, typed budget rejection, exact debits
#
# Both modes build arboretumd + arbload, start a daemon on a free port with
# a fresh temporary ledger, drive it over HTTP, and shut it down. The load
# run's q/s + latency summary is the gateway's tracked throughput baseline.
# Tunables (environment): ARBORETUM_LOAD_CLIENTS (default 8),
# ARBORETUM_LOAD_QUERIES (default 24), ARBORETUM_LOAD_TENANTS (default 4),
# ARBORETUM_LOAD_DEVICES (simulated devices per job, default 64).
set -eu

cd "$(dirname "$0")/.."

MODE=load
if [ "${1:-}" = "-smoke" ]; then
    MODE=smoke
fi

CLIENTS="${ARBORETUM_LOAD_CLIENTS:-8}"
QUERIES="${ARBORETUM_LOAD_QUERIES:-24}"
TENANTS="${ARBORETUM_LOAD_TENANTS:-4}"
DEVICES="${ARBORETUM_LOAD_DEVICES:-64}"

WORKDIR="$(mktemp -d)"
DAEMON_LOG="$WORKDIR/arboretumd.log"
LEDGER="$WORKDIR/arboretumd.ledger"
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "== go build arboretumd + arbload"
go build -o "$WORKDIR/arboretumd" ./cmd/arboretumd
go build -o "$WORKDIR/arbload" ./cmd/arbload

# The smoke pass needs -job-workers 1 so its second submission stays queued
# (it cancels a queued job); the load run gets more executors and no rate
# limit so throughput, not throttling, is measured.
if [ "$MODE" = smoke ]; then
    JOB_WORKERS=1
else
    JOB_WORKERS=4
fi

echo "== starting arboretumd (devices=$DEVICES, job-workers=$JOB_WORKERS)"
"$WORKDIR/arboretumd" -addr 127.0.0.1:0 -ledger "$LEDGER" \
    -devices "$DEVICES" -job-workers "$JOB_WORKERS" -queue 256 \
    -rate 0 -max-inflight 0 > "$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait for the "listening on" line and extract the picked port.
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR="$(sed -n 's/^arboretumd: listening on \([^ ]*\).*/\1/p' "$DAEMON_LOG" 2>/dev/null | head -n 1)"
    if [ -n "$ADDR" ]; then
        break
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "arboretumd exited before listening:" >&2
        cat "$DAEMON_LOG" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "arboretumd never reported its address:" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
fi
echo "== arboretumd at $ADDR"

if [ "$MODE" = smoke ]; then
    "$WORKDIR/arbload" -addr "$ADDR" -smoke
else
    "$WORKDIR/arbload" -addr "$ADDR" \
        -clients "$CLIENTS" -queries "$QUERIES" -tenants "$TENANTS"
fi

echo "== ledger tail"
tail -n 5 "$LEDGER"
echo "ok"
