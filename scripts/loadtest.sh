#!/bin/sh
# Load-test (and smoke-test, and crash-test) the arboretumd analyst gateway.
#
#   scripts/loadtest.sh            # load run: concurrent analysts, throughput report
#   scripts/loadtest.sh -smoke     # CI conformance pass: every docs/SERVICE.md
#                                  # endpoint, typed budget rejection, exact debits
#   scripts/loadtest.sh -kill      # crash-recovery pass: SIGKILL the daemon
#                                  # mid-burst, restart it on the same ledger +
#                                  # journal, verify every accepted job recovers
#                                  # to done with exact budget accounting
#
# All modes build arboretumd + arbload, start a daemon on a free port with
# a fresh temporary ledger, drive it over HTTP, and shut it down. The load
# run's q/s + latency summary is the gateway's tracked throughput baseline.
# Tunables (environment): ARBORETUM_LOAD_CLIENTS (default 8),
# ARBORETUM_LOAD_QUERIES (default 24), ARBORETUM_LOAD_TENANTS (default 4),
# ARBORETUM_LOAD_DEVICES (simulated devices per job, default 64).
set -eu

cd "$(dirname "$0")/.."

MODE=load
case "${1:-}" in
-smoke) MODE=smoke ;;
-kill) MODE=kill ;;
esac

CLIENTS="${ARBORETUM_LOAD_CLIENTS:-8}"
QUERIES="${ARBORETUM_LOAD_QUERIES:-24}"
TENANTS="${ARBORETUM_LOAD_TENANTS:-4}"
DEVICES="${ARBORETUM_LOAD_DEVICES:-64}"

WORKDIR="$(mktemp -d)"
DAEMON_LOG="$WORKDIR/arboretumd.log"
LEDGER="$WORKDIR/arboretumd.ledger"
IDS="$WORKDIR/accepted.ids"
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "== go build arboretumd + arbload"
go build -o "$WORKDIR/arboretumd" ./cmd/arboretumd
go build -o "$WORKDIR/arbload" ./cmd/arbload

# The smoke pass needs -job-workers 1 so its second submission stays queued
# (it cancels a queued job); the other modes get more executors and no rate
# limit so throughput/recovery, not throttling, is exercised.
if [ "$MODE" = smoke ]; then
    JOB_WORKERS=1
else
    JOB_WORKERS=4
fi

# start_daemon LOGFILE: launch arboretumd against $LEDGER (and its default
# job journal $LEDGER.jobs), wait for the "listening on" line, and set
# DAEMON_PID + ADDR. Called twice in kill mode — the restart reuses the same
# ledger and journal, which is the point.
start_daemon() {
    log="$1"
    "$WORKDIR/arboretumd" -addr 127.0.0.1:0 -ledger "$LEDGER" \
        -devices "$DEVICES" -job-workers "$JOB_WORKERS" -queue 256 \
        -rate 0 -max-inflight 0 > "$log" 2>&1 &
    DAEMON_PID=$!
    ADDR=""
    i=0
    while [ $i -lt 100 ]; do
        ADDR="$(sed -n 's/^arboretumd: listening on \([^ ]*\).*/\1/p' "$log" 2>/dev/null | head -n 1)"
        if [ -n "$ADDR" ]; then
            break
        fi
        if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            echo "arboretumd exited before listening:" >&2
            cat "$log" >&2
            exit 1
        fi
        i=$((i + 1))
        sleep 0.1
    done
    if [ -z "$ADDR" ]; then
        echo "arboretumd never reported its address:" >&2
        cat "$log" >&2
        exit 1
    fi
    echo "== arboretumd at $ADDR (pid $DAEMON_PID)"
}

echo "== starting arboretumd (devices=$DEVICES, job-workers=$JOB_WORKERS)"
start_daemon "$DAEMON_LOG"

case "$MODE" in
smoke)
    "$WORKDIR/arbload" -addr "$ADDR" -smoke
    ;;
load)
    "$WORKDIR/arbload" -addr "$ADDR" \
        -clients "$CLIENTS" -queries "$QUERIES" -tenants "$TENANTS"
    ;;
kill)
    # Phase 1: submit a burst in the background, recording each accepted
    # (202) job. Once a few acceptances are on disk — jobs queued and
    # executing — SIGKILL the daemon: no drain, no journal close, the
    # hardest crash it can take.
    "$WORKDIR/arbload" -addr "$ADDR" -phase submit -ids "$IDS" \
        -queries "$QUERIES" -tenants "$TENANTS" > "$WORKDIR/submit.log" 2>&1 &
    LOAD_PID=$!
    i=0
    while [ $i -lt 200 ]; do
        n=0
        if [ -f "$IDS" ]; then
            n="$(wc -l < "$IDS")"
        fi
        if [ "$n" -ge 3 ]; then
            break
        fi
        if ! kill -0 "$LOAD_PID" 2>/dev/null; then
            break
        fi
        i=$((i + 1))
        sleep 0.05
    done
    echo "== SIGKILL arboretumd mid-burst ($n jobs accepted so far)"
    kill -9 "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
    wait "$LOAD_PID" || { cat "$WORKDIR/submit.log" >&2; exit 1; }
    cat "$WORKDIR/submit.log"
    if ! [ -s "$IDS" ]; then
        echo "no jobs were accepted before the kill — nothing to verify" >&2
        exit 1
    fi
    # Phase 2: restart on the same ledger + journal and hold recovery to the
    # exact-accounting bar: every acknowledged job done with its certified
    # spend, nothing reserved, budgets exact.
    echo "== restarting arboretumd on the same ledger + journal"
    start_daemon "$WORKDIR/arboretumd-2.log"
    "$WORKDIR/arbload" -addr "$ADDR" -phase verify -ids "$IDS"
    ;;
esac

echo "== ledger tail"
tail -n 5 "$LEDGER"
echo "ok"
