package arboretum

// One benchmark per table and figure of the paper's evaluation (Section 7).
// Each benchmark drives the corresponding generator in internal/eval — the
// same code cmd/experiments uses to print the tables — so `go test -bench=.`
// regenerates every result. See EXPERIMENTS.md for paper-vs-measured notes.

import (
	"testing"

	"arboretum/internal/costmodel"
	"arboretum/internal/eval"
	"arboretum/internal/mechanism"
	"arboretum/internal/planner"
	"arboretum/internal/queries"
	"arboretum/internal/runtime"
)

// BenchmarkTable1 regenerates the strawman comparison (FHE, all-to-all MPC,
// Böhler, Orchard, Arboretum) for the zip-code query at N = 10^8.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable2 regenerates the supported-queries table with line counts.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := eval.Table2(); len(rows) != 10 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFigure6 regenerates the expected per-participant bandwidth and
// computation for all ten queries (plus the Honeycrisp/Orchard bars).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.QueryCosts()
		if err != nil {
			b.Fatal(err)
		}
		_ = eval.RenderFigure6(rows)
	}
}

// BenchmarkFigure7 regenerates the committee-member costs by committee type.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.QueryCosts()
		if err != nil {
			b.Fatal(err)
		}
		_ = eval.RenderFigure7(rows)
	}
}

// BenchmarkFigure8 regenerates the aggregator bandwidth and computation.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.QueryCosts()
		if err != nil {
			b.Fatal(err)
		}
		_ = eval.RenderFigure8(rows)
	}
}

// BenchmarkFigure9 regenerates the planner-runtime figure: it *is* the
// planner benchmark, timing the search on all ten queries.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkAblationBranchAndBound regenerates the Section 7.3 ablation:
// planner with the pruning heuristics disabled.
func BenchmarkAblationBranchAndBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Ablation(2_000_000)
		if err != nil {
			b.Fatal(err)
		}
		_ = eval.RenderAblation(rows)
	}
}

// BenchmarkFigure10 regenerates the scalability sweep (N = 2^17 … 2^30 with
// aggregator budgets of 1,000 / 5,000 / ∞ core-hours).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		_ = eval.RenderFigure10(rows)
	}
}

// BenchmarkFigure11 regenerates the power-consumption figure.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		_ = eval.RenderFigure11(rows)
	}
}

// BenchmarkGeoDistribution regenerates the Section 7.5 geo-distribution
// experiment (Gumbel MPC across Mumbai / New York / Paris / Sydney).
func BenchmarkGeoDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := eval.Heterogeneity()
		if err != nil {
			b.Fatal(err)
		}
		if h.GeoIncrease <= 0 {
			b.Fatal("no geo effect")
		}
	}
}

// BenchmarkSlowDevices regenerates the Section 7.5 slow-device experiment
// (Pi-4-class stragglers in the committee).
func BenchmarkSlowDevices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := eval.Heterogeneity()
		if err != nil {
			b.Fatal(err)
		}
		if h.SlowIncrease <= 0 {
			b.Fatal("no slow-device effect")
		}
	}
}

// BenchmarkValidation regenerates the cost-model validation table (the
// paper's Appendix C analogue): predicted vs. measured MPC comparisons on
// real executions.
func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Validate()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Match() {
				b.Fatalf("%s: predicted %d, measured %d", r.Program, r.Predicted, r.Measured)
			}
		}
	}
}

// BenchmarkDesignAblations regenerates the design-choice ablation table:
// what each pinned alternative (sum tree fanouts, em variants, noise slice
// widths) would cost — the tradeoffs of Section 4.3 that DESIGN.md calls
// out.
func BenchmarkDesignAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.DesignAblations()
		if err != nil {
			b.Fatal(err)
		}
		_ = eval.RenderDesignAblations(rows)
	}
}

// --- supporting micro- and end-to-end benchmarks ---

// BenchmarkPlannerPerQuery times the planner on each query separately
// (the per-bar breakdown behind Figure 9).
func BenchmarkPlannerPerQuery(b *testing.B) {
	for _, q := range queries.All {
		q := q
		b.Run(q.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := planner.Plan(planner.Request{
					Name: q.Name, Source: q.Source, N: eval.PaperN,
					Categories: q.Categories,
					Goal:       costmodel.PartExpCPU,
					Limits:     planner.DefaultLimits,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndTop1 executes the running-example query on a real
// (small) deployment: Paillier, sortition, VSR, ZKPs, audits, MPC.
func BenchmarkEndToEndTop1(b *testing.B) {
	src := "aggr = sum(db);\nresult = em(aggr, 2.0);\noutput(result);"
	for i := 0; i < b.N; i++ {
		d, err := runtime.NewDeployment(runtime.Config{
			N: 64, Categories: 8, CommitteeSize: 5, Seed: int64(i),
			BudgetEpsilon: 1e9,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(src, runtime.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndGumbelVsExponentiate compares the two em instantiations
// end to end (the trade-off of Figure 4).
func BenchmarkEndToEndGumbelVsExponentiate(b *testing.B) {
	src := "aggr = sum(db);\nresult = em(aggr, 2.0);\noutput(result);"
	for _, v := range []mechanism.EMVariant{mechanism.EMGumbel, mechanism.EMExponentiate} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := runtime.NewDeployment(runtime.Config{
					N: 64, Categories: 8, CommitteeSize: 5, Seed: int64(i),
					BudgetEpsilon: 1e9,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := d.Run(src, runtime.RunOptions{EMVariant: v}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAccuracy regenerates the end-to-end utility curve (hit rate of
// the true mode vs ε) on real executions.
func BenchmarkAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Accuracy(4)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}
