// Package types implements Arboretum's basic type inference (Section 4.4):
// every variable and expression gets a basic type (int, fix, or bool) and a
// conservative value range. The range matters downstream: the planner uses
// it to pick cryptosystem parameters (e.g. a plaintext modulus large enough
// to sum binary values across a billion users), and the analyst can tighten
// ranges with clip.
package types

import (
	"fmt"
	"math"

	"arboretum/internal/lang"
)

// Kind is a basic type.
type Kind int

// Basic types of Section 4.4.
const (
	Int Kind = iota
	Fix
	Bool
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Fix:
		return "fix"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Range is a conservative closed interval.
type Range struct {
	Lo, Hi float64
}

// Union returns the smallest interval covering both.
func (r Range) Union(o Range) Range {
	return Range{Lo: math.Min(r.Lo, o.Lo), Hi: math.Max(r.Hi, o.Hi)}
}

// Width returns Hi − Lo.
func (r Range) Width() float64 { return r.Hi - r.Lo }

// Bits returns the number of bits needed to represent any integer in the
// range (plus sign), which sizes the plaintext modulus.
func (r Range) Bits() int {
	m := math.Max(math.Abs(r.Lo), math.Abs(r.Hi))
	if m < 1 {
		return 1
	}
	b := int(math.Ceil(math.Log2(m + 1)))
	if r.Lo < 0 {
		b++
	}
	return b
}

func add(a, b Range) Range { return Range{a.Lo + b.Lo, a.Hi + b.Hi} }
func sub(a, b Range) Range { return Range{a.Lo - b.Hi, a.Hi - b.Lo} }
func mulR(a, b Range) Range {
	// The lower and upper bounds for a*b are simply the extrema of the
	// endpoint products (Section 4.4's example).
	c := []float64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return Range{lo, hi}
}

// Type is an inferred type: a basic kind, array-ness with optional static
// length, and a value range for the (element) values.
type Type struct {
	Kind  Kind
	Array bool
	Len   int64 // static array length, 0 if unknown
	Range Range
}

func (t Type) String() string {
	if t.Array {
		return fmt.Sprintf("%v[%d] in [%g, %g]", t.Kind, t.Len, t.Range.Lo, t.Range.Hi)
	}
	return fmt.Sprintf("%v in [%g, %g]", t.Kind, t.Range.Lo, t.Range.Hi)
}

// DBInfo describes the input database: N participants each contributing a
// Width-vector of values in ElemRange (one-hot categorical inputs use
// [0, 1]).
type DBInfo struct {
	N         int64
	Width     int64
	ElemRange Range
}

// Info is the inference result.
type Info struct {
	Vars  map[string]Type
	Exprs map[lang.Expr]Type
	DB    DBInfo
}

// TypeOf returns the inferred type of an expression.
func (in *Info) TypeOf(e lang.Expr) (Type, bool) {
	t, ok := in.Exprs[e]
	return t, ok
}

// Infer runs type and range inference over the program. It returns an error
// for programs that use undefined variables, mix kinds incompatibly, or
// index non-arrays.
func Infer(p *lang.Program, db DBInfo) (*Info, error) {
	inf := &inferencer{
		info: &Info{Vars: map[string]Type{}, Exprs: map[lang.Expr]Type{}, DB: db},
	}
	inf.info.Vars["db"] = Type{Kind: Int, Array: true, Len: db.N, Range: db.ElemRange}
	if err := inf.stmts(p.Stmts); err != nil {
		return nil, err
	}
	return inf.info, nil
}

type inferencer struct {
	info *Info
}

func (in *inferencer) stmts(ss []lang.Stmt) error {
	for _, s := range ss {
		if err := in.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (in *inferencer) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.AssignStmt:
		vt, err := in.expr(st.Value)
		if err != nil {
			return err
		}
		if st.Index != nil {
			it, err := in.expr(st.Index)
			if err != nil {
				return err
			}
			if it.Kind != Int {
				return fmt.Errorf("%v: array index must be int, got %v", s.Position(), it.Kind)
			}
			cur, ok := in.info.Vars[st.Name]
			elem := vt
			ln := int64(it.Range.Hi) + 1
			if ok {
				if !cur.Array {
					return fmt.Errorf("%v: %s indexed but previously scalar", s.Position(), st.Name)
				}
				elem.Range = elem.Range.Union(cur.Range)
				if cur.Kind == Fix || vt.Kind == Fix {
					elem.Kind = Fix
				}
				if cur.Len > ln {
					ln = cur.Len
				}
			}
			in.info.Vars[st.Name] = Type{Kind: elem.Kind, Array: true, Len: ln, Range: elem.Range}
			return nil
		}
		if cur, ok := in.info.Vars[st.Name]; ok {
			// Re-assignment widens the range, keeping the broader kind.
			vt.Range = vt.Range.Union(cur.Range)
			if cur.Kind == Fix || vt.Kind == Fix {
				vt.Kind = Fix
			}
		}
		in.info.Vars[st.Name] = vt
		return nil
	case *lang.ExprStmt:
		_, err := in.expr(st.X)
		return err
	case *lang.ForStmt:
		from, err := in.expr(st.From)
		if err != nil {
			return err
		}
		to, err := in.expr(st.To)
		if err != nil {
			return err
		}
		if from.Kind != Int || to.Kind != Int {
			return fmt.Errorf("%v: loop bounds must be int", s.Position())
		}
		in.info.Vars[st.Var] = Type{Kind: Int, Range: Range{from.Range.Lo, to.Range.Hi}}
		iters := to.Range.Hi - from.Range.Lo + 1
		if iters < 1 {
			iters = 1
		}
		// Accumulator widening: running the body twice detects variables
		// whose range grows per iteration; their growth is then scaled by
		// the iteration count (conservative, Section 4.4).
		before := snapshot(in.info.Vars)
		if err := in.stmts(st.Body); err != nil {
			return err
		}
		afterOnce := snapshot(in.info.Vars)
		if err := in.stmts(st.Body); err != nil {
			return err
		}
		for name, t2 := range in.info.Vars {
			t1, ok1 := afterOnce[name]
			t0, ok0 := before[name]
			if !ok1 {
				continue
			}
			growLo := t1.Range.Lo - t2.Range.Lo // second pass grew downward by this
			growHi := t2.Range.Hi - t1.Range.Hi
			if growLo > 0 || growHi > 0 {
				base := t1.Range
				if ok0 {
					base = t0.Range.Union(t1.Range)
				}
				t2.Range = Range{
					Lo: base.Lo - growLo*iters,
					Hi: base.Hi + growHi*iters,
				}
				in.info.Vars[name] = t2
			}
		}
		return nil
	case *lang.IfStmt:
		ct, err := in.expr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != Bool {
			return fmt.Errorf("%v: if condition must be bool, got %v", s.Position(), ct.Kind)
		}
		if err := in.stmts(st.Then); err != nil {
			return err
		}
		return in.stmts(st.Else)
	default:
		return fmt.Errorf("%v: unknown statement %T", s.Position(), s)
	}
}

func snapshot(m map[string]Type) map[string]Type {
	out := make(map[string]Type, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (in *inferencer) expr(e lang.Expr) (Type, error) {
	t, err := in.exprUncached(e)
	if err != nil {
		return Type{}, err
	}
	in.info.Exprs[e] = t
	return t, nil
}

func (in *inferencer) exprUncached(e lang.Expr) (Type, error) {
	switch ex := e.(type) {
	case *lang.IntLit:
		return Type{Kind: Int, Range: Range{float64(ex.Value), float64(ex.Value)}}, nil
	case *lang.FloatLit:
		return Type{Kind: Fix, Range: Range{ex.Value, ex.Value}}, nil
	case *lang.BoolLit:
		return Type{Kind: Bool, Range: Range{0, 1}}, nil
	case *lang.Ident:
		t, ok := in.info.Vars[ex.Name]
		if !ok {
			return Type{}, fmt.Errorf("%v: undefined variable %q", ex.Position(), ex.Name)
		}
		return t, nil
	case *lang.IndexExpr:
		xt, err := in.expr(ex.X)
		if err != nil {
			return Type{}, err
		}
		it, err := in.expr(ex.Index)
		if err != nil {
			return Type{}, err
		}
		if it.Kind != Int {
			return Type{}, fmt.Errorf("%v: array index must be int", ex.Position())
		}
		if !xt.Array {
			return Type{}, fmt.Errorf("%v: indexing a non-array", ex.Position())
		}
		// db[i] is participant i's row: a Width-array of elements.
		if id, ok := ex.X.(*lang.Ident); ok && id.Name == "db" {
			return Type{Kind: Int, Array: true, Len: in.info.DB.Width, Range: in.info.DB.ElemRange}, nil
		}
		return Type{Kind: xt.Kind, Range: xt.Range}, nil
	case *lang.UnaryExpr:
		xt, err := in.expr(ex.X)
		if err != nil {
			return Type{}, err
		}
		switch ex.Op {
		case lang.NOT:
			if xt.Kind != Bool {
				return Type{}, fmt.Errorf("%v: ! requires bool", ex.Position())
			}
			return Type{Kind: Bool, Range: Range{0, 1}}, nil
		case lang.SUB:
			if xt.Kind == Bool {
				return Type{}, fmt.Errorf("%v: cannot negate bool", ex.Position())
			}
			return Type{Kind: xt.Kind, Range: Range{-xt.Range.Hi, -xt.Range.Lo}}, nil
		}
		return Type{}, fmt.Errorf("%v: unknown unary op %v", ex.Position(), ex.Op)
	case *lang.BinaryExpr:
		return in.binary(ex)
	case *lang.CallExpr:
		return in.call(ex)
	default:
		return Type{}, fmt.Errorf("unknown expression %T", e)
	}
}

func (in *inferencer) binary(ex *lang.BinaryExpr) (Type, error) {
	xt, err := in.expr(ex.X)
	if err != nil {
		return Type{}, err
	}
	yt, err := in.expr(ex.Y)
	if err != nil {
		return Type{}, err
	}
	numKind := func() Kind {
		if xt.Kind == Fix || yt.Kind == Fix {
			return Fix
		}
		return Int
	}
	switch ex.Op {
	case lang.ADD, lang.SUB, lang.MUL, lang.QUO:
		if xt.Kind == Bool || yt.Kind == Bool {
			return Type{}, fmt.Errorf("%v: arithmetic on bool", ex.Position())
		}
		var r Range
		switch ex.Op {
		case lang.ADD:
			r = add(xt.Range, yt.Range)
		case lang.SUB:
			r = sub(xt.Range, yt.Range)
		case lang.MUL:
			r = mulR(xt.Range, yt.Range)
		case lang.QUO:
			// Division range: conservative unless the divisor excludes 0.
			if yt.Range.Lo > 0 {
				r = Range{
					Lo: math.Min(xt.Range.Lo/yt.Range.Lo, xt.Range.Lo/yt.Range.Hi),
					Hi: math.Max(xt.Range.Hi/yt.Range.Lo, xt.Range.Hi/yt.Range.Hi),
				}
			} else {
				r = Range{-math.MaxFloat64, math.MaxFloat64}
			}
			return Type{Kind: Fix, Range: r}, nil
		}
		return Type{Kind: numKind(), Range: r}, nil
	case lang.LSS, lang.LEQ, lang.GTR, lang.GEQ, lang.EQL, lang.NEQ:
		if xt.Kind == Bool && ex.Op != lang.EQL && ex.Op != lang.NEQ {
			return Type{}, fmt.Errorf("%v: ordering on bool", ex.Position())
		}
		return Type{Kind: Bool, Range: Range{0, 1}}, nil
	case lang.LAND, lang.LOR:
		if xt.Kind != Bool || yt.Kind != Bool {
			return Type{}, fmt.Errorf("%v: logical op requires bool operands", ex.Position())
		}
		return Type{Kind: Bool, Range: Range{0, 1}}, nil
	}
	return Type{}, fmt.Errorf("%v: unknown binary op %v", ex.Position(), ex.Op)
}

func (in *inferencer) call(ex *lang.CallExpr) (Type, error) {
	args := make([]Type, len(ex.Args))
	for i, a := range ex.Args {
		t, err := in.expr(a)
		if err != nil {
			return Type{}, err
		}
		args[i] = t
	}
	argIsDB := func(i int) bool {
		id, ok := ex.Args[i].(*lang.Ident)
		return ok && id.Name == "db"
	}
	switch ex.Func {
	case "sum":
		if !args[0].Array {
			return Type{}, fmt.Errorf("%v: sum requires an array", ex.Position())
		}
		if argIsDB(0) {
			// Column sums over the database: a Width-vector of counts in
			// [N·lo, N·hi] — e.g. the plaintext modulus of 2^30, "enough to
			// sum binary values across one billion users" (Section 6).
			n := float64(in.info.DB.N)
			return Type{
				Kind: Int, Array: true, Len: in.info.DB.Width,
				Range: Range{n * in.info.DB.ElemRange.Lo, n * in.info.DB.ElemRange.Hi},
			}, nil
		}
		n := float64(args[0].Len)
		if n < 1 {
			n = 1
		}
		return Type{Kind: args[0].Kind, Range: Range{n * math.Min(args[0].Range.Lo, 0), n * math.Max(args[0].Range.Hi, 0)}}, nil
	case "max":
		if !args[0].Array {
			return Type{}, fmt.Errorf("%v: max requires an array", ex.Position())
		}
		return Type{Kind: args[0].Kind, Range: args[0].Range}, nil
	case "argmax":
		if !args[0].Array {
			return Type{}, fmt.Errorf("%v: argmax requires an array", ex.Position())
		}
		return Type{Kind: Int, Range: Range{0, float64(max64(args[0].Len-1, 0))}}, nil
	case "em":
		if !args[0].Array {
			return Type{}, fmt.Errorf("%v: em requires a score array", ex.Position())
		}
		return Type{Kind: Int, Range: Range{0, float64(max64(args[0].Len-1, 0))}}, nil
	case "topk":
		if !args[0].Array {
			return Type{}, fmt.Errorf("%v: topk requires a score array", ex.Position())
		}
		k := int64(args[1].Range.Hi)
		return Type{Kind: Int, Array: true, Len: k, Range: Range{0, float64(max64(args[0].Len-1, 0))}}, nil
	case "laplace", "gumbel":
		// Noised value: the range widens by the clipped noise tails
		// (Section 6: tails are cut to the representable range, adding δ).
		r := args[0].Range
		const tail = 1 << 20
		return Type{Kind: Fix, Range: Range{r.Lo - tail, r.Hi + tail}}, nil
	case "exp":
		return Type{Kind: Fix, Range: Range{0, math.MaxFloat64}}, nil
	case "log2":
		return Type{Kind: Fix, Range: Range{-64, 64}}, nil
	case "sqrt":
		return Type{Kind: Fix, Range: Range{0, math.Sqrt(math.Max(args[0].Range.Hi, 0))}}, nil
	case "abs":
		hi := math.Max(math.Abs(args[0].Range.Lo), math.Abs(args[0].Range.Hi))
		return Type{Kind: args[0].Kind, Range: Range{0, hi}}, nil
	case "clip":
		lo, hi := args[1].Range.Lo, args[2].Range.Hi
		return Type{Kind: args[0].Kind, Range: Range{lo, hi}}, nil
	case "sampleUniform":
		return Type{Kind: Fix, Range: Range{0, args[0].Range.Hi}}, nil
	case "len":
		if !args[0].Array {
			return Type{}, fmt.Errorf("%v: len requires an array", ex.Position())
		}
		return Type{Kind: Int, Range: Range{float64(args[0].Len), float64(args[0].Len)}}, nil
	case "output":
		return args[0], nil
	case "declassify":
		return args[0], nil
	case "array":
		n := int64(args[0].Range.Hi)
		return Type{Kind: Int, Array: true, Len: n, Range: Range{0, 0}}, nil
	default:
		return Type{}, fmt.Errorf("%v: unknown function %q", ex.Position(), ex.Func)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
