package types

import (
	"math"
	"testing"
	"testing/quick"

	"arboretum/internal/lang"
)

var oneHotDB = DBInfo{N: 1 << 30, Width: 10, ElemRange: Range{0, 1}}

func infer(t *testing.T, src string, db DBInfo) *Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Infer(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestTop1Inference(t *testing.T) {
	info := infer(t, `
aggr = sum(db);
result = em(aggr);
output(result);
`, oneHotDB)
	aggr := info.Vars["aggr"]
	if !aggr.Array || aggr.Len != 10 {
		t.Fatalf("aggr = %v, want array of 10", aggr)
	}
	// Counts across 2^30 one-hot users: range [0, 2^30] — the paper's
	// plaintext modulus of 2^30 (Section 6).
	if aggr.Range.Hi != float64(1<<30) || aggr.Range.Lo != 0 {
		t.Fatalf("aggr range = %+v", aggr.Range)
	}
	if aggr.Range.Bits() != 31 {
		t.Errorf("aggr bits = %d, want 31", aggr.Range.Bits())
	}
	res := info.Vars["result"]
	if res.Kind != Int || res.Array {
		t.Fatalf("result = %v", res)
	}
	if res.Range.Lo != 0 || res.Range.Hi != 9 {
		t.Fatalf("result range = %+v, want [0,9]", res.Range)
	}
}

func TestArithmeticRanges(t *testing.T) {
	info := infer(t, `
a = 3;
b = a + 4;
c = a * b;
d = a - 10;
`, oneHotDB)
	if r := info.Vars["b"].Range; r.Lo != 7 || r.Hi != 7 {
		t.Errorf("b range = %+v", r)
	}
	if r := info.Vars["c"].Range; r.Lo != 21 || r.Hi != 21 {
		t.Errorf("c range = %+v", r)
	}
	if r := info.Vars["d"].Range; r.Lo != -7 || r.Hi != -7 {
		t.Errorf("d range = %+v", r)
	}
}

func TestMulRangeCrossSigns(t *testing.T) {
	info := infer(t, `
x0 = 0; x1 = 0;
a = clip(x0, -2, 3);
b = clip(x1, -5, 7);
c = a * b;
`, oneHotDB)
	r := info.Vars["c"].Range
	// extrema of {10, -14, -15, 21}
	if r.Lo != -15 || r.Hi != 21 {
		t.Errorf("c range = %+v, want [-15, 21]", r)
	}
}

func TestFixPropagation(t *testing.T) {
	info := infer(t, `
a = 1;
b = 0.5;
c = a + b;
d = a / 2;
`, oneHotDB)
	if info.Vars["c"].Kind != Fix {
		t.Errorf("int + fix = %v, want fix", info.Vars["c"].Kind)
	}
	if info.Vars["d"].Kind != Fix {
		t.Errorf("division = %v, want fix", info.Vars["d"].Kind)
	}
}

func TestBoolChecks(t *testing.T) {
	info := infer(t, `
a = 1;
b = a > 0;
c = b && (a < 5);
`, oneHotDB)
	if info.Vars["b"].Kind != Bool || info.Vars["c"].Kind != Bool {
		t.Error("comparison/logical results should be bool")
	}
}

func TestLoopVariableAndAccumulator(t *testing.T) {
	info := infer(t, `
s = 0;
for i = 0 to 9 do
  s = s + 2;
endfor;
`, oneHotDB)
	iv := info.Vars["i"]
	if iv.Range.Lo != 0 || iv.Range.Hi != 9 {
		t.Errorf("loop var range = %+v", iv.Range)
	}
	s := info.Vars["s"]
	// Accumulator: at least 10 iterations × 2 must be covered.
	if s.Range.Hi < 20 {
		t.Errorf("accumulator upper bound %g < 20", s.Range.Hi)
	}
}

func TestIndexedAssignBuildsArray(t *testing.T) {
	info := infer(t, `
for i = 0 to 4 do
  es[i] = i * 2;
endfor;
`, oneHotDB)
	es := info.Vars["es"]
	if !es.Array {
		t.Fatalf("es = %v, want array", es)
	}
	if es.Len < 5 {
		t.Errorf("es len = %d, want >= 5", es.Len)
	}
	if es.Range.Hi < 8 {
		t.Errorf("es range = %+v", es.Range)
	}
}

func TestClipTightensRange(t *testing.T) {
	info := infer(t, `
a = sum(db);
b = clip(a[0], 0, 100);
`, oneHotDB)
	b := info.Vars["b"]
	if b.Range.Lo != 0 || b.Range.Hi != 100 {
		t.Errorf("clip range = %+v", b.Range)
	}
}

func TestDBIndexing(t *testing.T) {
	info := infer(t, `
x = db[3][2];
`, oneHotDB)
	x := info.Vars["x"]
	if x.Array || x.Range.Hi != 1 || x.Range.Lo != 0 {
		t.Errorf("db element = %v", x)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		`x = undefined_var;`,
		`x = 1; y = x[0];`,            // indexing non-array
		`x = true + 1;`,               // arithmetic on bool
		`x = 1 && 2;`,                 // logical on int
		`if 3 then x = 1; endif;`,     // non-bool condition
		`for i = 0.5 to 3 do endfor;`, // fractional loop bound
		`x = sum(5);`,                 // sum of scalar — parse ok, type error
		`x = !5;`,                     // not on int
		`x = -true;`,                  // negate bool
		`x = true < false;`,           // ordering on bool
		`x = len(5);`,                 // len of scalar
		`x = max(1);`,                 // max of scalar
	}
	for _, src := range bad {
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Infer(prog, oneHotDB); err == nil {
			t.Errorf("Infer(%q) succeeded, want error", src)
		}
	}
}

func TestBoolEqualityAllowed(t *testing.T) {
	infer(t, `a = true; b = a == false;`, oneHotDB)
}

func TestRangeBits(t *testing.T) {
	cases := []struct {
		r    Range
		want int
	}{
		{Range{0, 1}, 1},
		{Range{0, 255}, 8},
		{Range{0, 256}, 9},
		{Range{-128, 127}, 9}, // conservative: magnitude bits + sign bit
		{Range{0, float64(1 << 30)}, 31},
		{Range{0, 0}, 1},
	}
	for _, c := range cases {
		if got := c.r.Bits(); got != c.want {
			t.Errorf("Bits(%+v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	ty := Type{Kind: Int, Array: true, Len: 4, Range: Range{0, 3}}
	if ty.String() == "" || Kind(99).String() == "" {
		t.Error("String() should not be empty")
	}
}

func TestExprTypesRecorded(t *testing.T) {
	prog := lang.MustParse(`a = 1 + 2;`)
	info, err := Infer(prog, oneHotDB)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	lang.WalkExprs(prog.Stmts, func(e lang.Expr) {
		if _, ok := info.TypeOf(e); ok {
			found = true
		}
	})
	if !found {
		t.Error("no expression types recorded")
	}
}

func TestTopKType(t *testing.T) {
	info := infer(t, `
aggr = sum(db);
best = topk(aggr, 5);
`, oneHotDB)
	b := info.Vars["best"]
	if !b.Array || b.Len != 5 {
		t.Errorf("topk type = %v", b)
	}
}

func TestLaplaceWidensToFix(t *testing.T) {
	info := infer(t, `
aggr = sum(db);
noised = laplace(aggr[0], 0.1);
`, oneHotDB)
	n := info.Vars["noised"]
	if n.Kind != Fix {
		t.Errorf("laplace kind = %v, want fix", n.Kind)
	}
	if n.Range.Hi <= float64(1<<30) {
		t.Error("laplace should widen the range for noise tails")
	}
}

// Property: Union covers both inputs and is commutative/idempotent.
func TestQuickRangeUnion(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		r1 := Range{Lo: math.Min(float64(a), float64(b)), Hi: math.Max(float64(a), float64(b))}
		r2 := Range{Lo: math.Min(float64(c), float64(d)), Hi: math.Max(float64(c), float64(d))}
		u := r1.Union(r2)
		if u != r2.Union(r1) || u != u.Union(u) {
			return false
		}
		return u.Lo <= r1.Lo && u.Lo <= r2.Lo && u.Hi >= r1.Hi && u.Hi >= r2.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivisionRanges(t *testing.T) {
	// Division by a positive-range value yields a finite range.
	info := infer(t, `
x = clip(0, 10, 20);
y = x / 2;
`, oneHotDB)
	y := info.Vars["y"]
	if y.Kind != Fix {
		t.Errorf("division kind = %v", y.Kind)
	}
	if y.Range.Lo < 4.9 || y.Range.Hi > 10.1 {
		t.Errorf("division range = %+v, want ~[5,10]", y.Range)
	}
	// Division by a range containing zero is conservative.
	info = infer(t, `
a = clip(0, 0 - 5, 5);
b = 10 / a;
`, oneHotDB)
	b := info.Vars["b"]
	if b.Range.Hi < 1e300 {
		t.Errorf("division by zero-spanning range should widen: %+v", b.Range)
	}
}

func TestMulAccumulatorWidens(t *testing.T) {
	// A multiplicative accumulator must widen past its single-pass value.
	info := infer(t, `
p = 2;
for i = 0 to 4 do
  p = p * 2;
endfor;
`, oneHotDB)
	p := info.Vars["p"]
	if p.Range.Hi < 16 {
		t.Errorf("multiplicative accumulator upper = %g, want ≥ 16", p.Range.Hi)
	}
}
