package zkp

import "testing"

func oneHotStatement(device int, queryID uint64, n int) Statement {
	return Statement{Device: device, QueryID: queryID, Claim: Claim{Kind: ClaimOneHot, VectorLen: n}}
}

func setup() (*Prover, *Verifier) {
	key := []byte("device-0-key")
	return NewProver(key), NewVerifier(map[int][]byte{0: key})
}

func TestHonestOneHotProofVerifies(t *testing.T) {
	p, v := setup()
	proof, err := p.Prove(oneHotStatement(0, 1, 4), Witness{Vector: []int64{0, 0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Verify(proof) {
		t.Fatal("honest proof rejected")
	}
}

func TestMalformedOneHotRejectedAtProving(t *testing.T) {
	p, _ := setup()
	bad := [][]int64{
		{0, 0, 0, 0},  // no one
		{1, 1, 0, 0},  // two ones
		{0, 0, 2, 0},  // not 0/1
		{0, 1},        // wrong length
		{0, 0, -1, 0}, // negative
	}
	for _, w := range bad {
		if _, err := p.Prove(oneHotStatement(0, 1, 4), Witness{Vector: w}); err == nil {
			t.Errorf("malformed witness %v produced a proof", w)
		}
	}
}

func TestRangeClaim(t *testing.T) {
	p, v := setup()
	s := Statement{Device: 0, QueryID: 2, Claim: Claim{Kind: ClaimRange, Lo: 0, Hi: 120}}
	proof, err := p.Prove(s, Witness{Value: 34})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Verify(proof) {
		t.Fatal("honest range proof rejected")
	}
	// The paper's example: a device pretending its user is 1,000 years old.
	if _, err := p.Prove(s, Witness{Value: 1000}); err == nil {
		t.Fatal("out-of-range witness produced a proof")
	}
	if _, err := p.Prove(s, Witness{Value: -1}); err == nil {
		t.Fatal("negative witness produced a proof")
	}
}

func TestForgedProofRejected(t *testing.T) {
	_, v := setup()
	if v.Verify(Forge(oneHotStatement(0, 1, 4))) {
		t.Fatal("forged proof verified")
	}
}

func TestReplayRejected(t *testing.T) {
	p, v := setup()
	proof, _ := p.Prove(oneHotStatement(0, 7, 4), Witness{Vector: []int64{1, 0, 0, 0}})
	if !v.Verify(proof) {
		t.Fatal("first use rejected")
	}
	if v.Verify(proof) {
		t.Fatal("replay accepted")
	}
	// A different query ID is a fresh statement and needs a fresh proof.
	proof2, _ := p.Prove(oneHotStatement(0, 8, 4), Witness{Vector: []int64{1, 0, 0, 0}})
	if !v.Verify(proof2) {
		t.Fatal("fresh proof for new query rejected")
	}
}

func TestWrongKeyRejected(t *testing.T) {
	evil := NewProver([]byte("not-the-registered-key"))
	_, v := setup()
	proof, _ := evil.Prove(oneHotStatement(0, 1, 4), Witness{Vector: []int64{1, 0, 0, 0}})
	if v.Verify(proof) {
		t.Fatal("proof under wrong key verified")
	}
}

func TestUnknownDeviceRejected(t *testing.T) {
	p, v := setup()
	proof, _ := p.Prove(oneHotStatement(99, 1, 4), Witness{Vector: []int64{1, 0, 0, 0}})
	if v.Verify(proof) {
		t.Fatal("proof from unregistered device verified")
	}
}

func TestTamperedStatementRejected(t *testing.T) {
	p, v := setup()
	proof, _ := p.Prove(oneHotStatement(0, 1, 4), Witness{Vector: []int64{1, 0, 0, 0}})
	proof.Statement.QueryID = 99 // tamper after proving
	if v.Verify(proof) {
		t.Fatal("tampered statement verified")
	}
}

func TestNilProofRejected(t *testing.T) {
	_, v := setup()
	if v.Verify(nil) {
		t.Fatal("nil proof verified")
	}
}

func TestProofBytes(t *testing.T) {
	p, _ := setup()
	proof, _ := p.Prove(oneHotStatement(0, 1, 4), Witness{Vector: []int64{1, 0, 0, 0}})
	if proof.Bytes() != ProofSize {
		t.Errorf("Bytes() = %d, want %d", proof.Bytes(), ProofSize)
	}
}

func TestUnknownClaimKind(t *testing.T) {
	p, _ := setup()
	s := Statement{Device: 0, QueryID: 1, Claim: Claim{Kind: ClaimKind(42)}}
	if _, err := p.Prove(s, Witness{}); err == nil {
		t.Fatal("unknown claim kind produced a proof")
	}
}

func BenchmarkProveVerify(b *testing.B) {
	p, _ := setup()
	w := Witness{Vector: []int64{0, 1, 0, 0}}
	for i := 0; i < b.N; i++ {
		v := NewVerifier(map[int][]byte{0: []byte("device-0-key")})
		proof, err := p.Prove(oneHotStatement(0, uint64(i), 4), w)
		if err != nil {
			b.Fatal(err)
		}
		if !v.Verify(proof) {
			b.Fatal("verify failed")
		}
	}
}
