package zkp

import (
	"crypto/sha256"
	"errors"
	"hash"

	"arboretum/internal/hashing"
)

// Scratch is the pooled tag-computation state behind the streaming-ingest
// prove/verify path (internal/runtime): statementTag builds a fresh HMAC
// object per call, which costs several allocations per device, while a
// Scratch computes the identical HMAC-SHA256 tag from one retained SHA-256
// state and fixed buffers. A Scratch is not safe for concurrent use — each
// shard aggregator (and each upload source) owns its own.
type Scratch struct {
	h   hash.Hash
	pad [sha256.BlockSize]byte
	msg [statementMsgLen]byte
	sum [sha256.Size]byte
}

// NewScratch returns an empty scratch ready for tagging.
func NewScratch() *Scratch {
	return &Scratch{h: sha256.New()}
}

// tag computes HMAC-SHA256(key, encode(s)) — bit-identical to statementTag —
// without allocating.
func (sc *Scratch) tag(key []byte, s Statement) [sha256.Size]byte {
	if len(key) > sha256.BlockSize {
		sc.h.Reset()
		hashing.Write(sc.h, key)
		key = sc.h.Sum(sc.sum[:0])
	}
	for i := range sc.pad {
		var k byte
		if i < len(key) {
			k = key[i]
		}
		sc.pad[i] = k ^ 0x36 // ipad
	}
	putStatement(sc.msg[:], s)
	sc.h.Reset()
	hashing.Write(sc.h, sc.pad[:], sc.msg[:])
	inner := sc.h.Sum(sc.sum[:0])
	for i := range sc.pad {
		sc.pad[i] ^= 0x36 ^ 0x5c // flip ipad to opad without re-reading key
	}
	sc.h.Reset()
	hashing.Write(sc.h, sc.pad[:], inner)
	// Sum into sc.sum, not a local: a local passed through the hash.Hash
	// interface escapes, and this alloc-free path exists to avoid exactly
	// that. inner (which aliases sc.sum) was fully consumed by Write above.
	sc.h.Sum(sc.sum[:0])
	return sc.sum
}

// ProveKeyed proves a statement directly under a signing key, writing the
// proof into caller-owned storage. It is Prove for callers that derive keys
// on demand (virtual-device populations) or recycle proof slots per batch —
// no Prover, no per-call allocation. Like Prove, it fails when the witness
// does not satisfy the claim, leaving *out unchanged.
func ProveKeyed(sc *Scratch, key []byte, s Statement, w Witness, out *Proof) error {
	if !satisfies(s.Claim, w) {
		return errors.New("zkp: witness does not satisfy the claim")
	}
	out.Statement = s
	out.tag = sc.tag(key, s)
	out.valid = true
	return nil
}

// ProveInto is ProveKeyed under the prover's key.
func (p *Prover) ProveInto(sc *Scratch, s Statement, w Witness, out *Proof) error {
	return ProveKeyed(sc, p.key, s, w, out)
}
