package zkp

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

func stmtAndWitness(dev int, q uint64, width int) (Statement, Witness) {
	s := Statement{Device: dev, QueryID: q, Claim: Claim{Kind: ClaimOneHot, VectorLen: width}}
	w := Witness{Vector: make([]int64, width)}
	w.Vector[dev%width] = 1
	return s, w
}

// TestScratchTagMatchesHMAC checks the pooled tag path is bit-identical to
// statementTag for short keys, block-length keys, and over-length keys (the
// hashed-key branch), across both claim kinds.
func TestScratchTagMatchesHMAC(t *testing.T) {
	sc := NewScratch()
	keys := [][]byte{
		[]byte("k"),
		bytes.Repeat([]byte{0xa5}, 32),
		bytes.Repeat([]byte{0x5a}, sha256.BlockSize),
		bytes.Repeat([]byte{0x3c}, sha256.BlockSize+17),
	}
	stmts := []Statement{
		{Device: 0, QueryID: 0, Claim: Claim{Kind: ClaimOneHot, VectorLen: 4}},
		{Device: 12345, QueryID: 999, Claim: Claim{Kind: ClaimOneHot, VectorLen: 64}},
		{Device: 7, QueryID: 3, Claim: Claim{Kind: ClaimRange, Lo: -10, Hi: 10}},
	}
	for _, key := range keys {
		for _, s := range stmts {
			want := statementTag(key, s)
			got := sc.tag(key, s)
			if got != want {
				t.Fatalf("scratch tag differs for key len %d, stmt %+v", len(key), s)
			}
			// Repeat with the same scratch: no state leaks between calls.
			if again := sc.tag(key, s); again != want {
				t.Fatalf("scratch tag not stable on reuse for key len %d", len(key))
			}
		}
	}
}

// TestProveKeyedCrossVerifies checks proofs from the pooled path verify under
// the map verifier and vice versa, on both Verify and VerifyScratch.
func TestProveKeyedCrossVerifies(t *testing.T) {
	key := []byte("device-key-0123456789abcdef01234")
	s, w := stmtAndWitness(3, 1, 8)

	classic, err := NewProver(key).Prove(s, w)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	var pooled Proof
	if err := NewProver(key).ProveInto(sc, s, w, &pooled); err != nil {
		t.Fatal(err)
	}
	if pooled.tag != classic.tag {
		t.Fatal("pooled and classic proofs have different tags")
	}

	keyOf := func(dev int) []byte { return key }
	for name, mk := range map[string]func() *Verifier{
		"map":  func() *Verifier { return NewVerifier(map[int][]byte{3: key}) },
		"func": func() *Verifier { return NewVerifierFunc(keyOf, 0, 8) },
	} {
		v := mk()
		if !v.Verify(classic) {
			t.Fatalf("%s verifier rejects classic proof", name)
		}
		if v.Verify(classic) {
			t.Fatalf("%s verifier accepts replay", name)
		}
		v = mk()
		if !v.VerifyScratch(sc, &pooled) {
			t.Fatalf("%s verifier rejects pooled proof via scratch", name)
		}
		if v.VerifyScratch(sc, &pooled) {
			t.Fatalf("%s verifier accepts replay via scratch", name)
		}
	}

	// ProveKeyed on a false statement must fail and leave the slot invalid.
	var bad Proof
	if err := ProveKeyed(sc, key, s, Witness{Vector: make([]int64, 8)}, &bad); err == nil {
		t.Fatal("ProveKeyed accepted an unsatisfied claim")
	}
	if NewVerifier(map[int][]byte{3: key}).Verify(&bad) {
		t.Fatal("unproven slot verifies")
	}
}

// TestVerifierFuncRangeAndReplay checks the dense-bitset verifier's range
// gate and per-query replay independence.
func TestVerifierFuncRangeAndReplay(t *testing.T) {
	keys := map[int][]byte{}
	keyOf := func(dev int) []byte { return keys[dev] }
	v := NewVerifierFunc(keyOf, 100, 200)
	sc := NewScratch()
	for _, dev := range []int{100, 150, 199} {
		keys[dev] = []byte{byte(dev)}
		s, w := stmtAndWitness(dev, 9, 4)
		var p Proof
		if err := ProveKeyed(sc, keys[dev], s, w, &p); err != nil {
			t.Fatal(err)
		}
		if !v.VerifyScratch(sc, &p) {
			t.Fatalf("device %d in range rejected", dev)
		}
		if v.VerifyScratch(sc, &p) {
			t.Fatalf("device %d replay accepted", dev)
		}
		// A fresh query starts a fresh replay set.
		s2 := s
		s2.QueryID = 10
		var p2 Proof
		if err := ProveKeyed(sc, keys[dev], s2, w, &p2); err != nil {
			t.Fatal(err)
		}
		if !v.VerifyScratch(sc, &p2) {
			t.Fatalf("device %d rejected in new query", dev)
		}
	}
	for _, dev := range []int{99, 200, -1} {
		keys[dev] = []byte{byte(dev & 0xff)}
		s, w := stmtAndWitness((dev%4+4)%4, 9, 4)
		s.Device = dev
		var p Proof
		if err := ProveKeyed(sc, keys[dev], s, w, &p); err != nil {
			t.Fatal(err)
		}
		if v.VerifyScratch(sc, &p) {
			t.Fatalf("device %d outside range accepted", dev)
		}
	}
}

// BenchmarkVerifyScratch tracks the pooled prove+verify cost per device —
// the per-upload ZKP overhead of a streaming-ingest shard.
func BenchmarkVerifyScratch(b *testing.B) {
	key := bytes.Repeat([]byte{7}, 32)
	keyOf := func(dev int) []byte { return key }
	v := NewVerifierFunc(keyOf, 0, 1<<20)
	sc := NewScratch()
	s, w := stmtAndWitness(0, 1, 16)
	var p Proof
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Roll to a fresh query when the device range wraps, so the replay
		// set never rejects and the bitset stays 128 KiB.
		s.Device = i & (1<<20 - 1)
		s.QueryID = uint64(i >> 20)
		if err := ProveKeyed(sc, key, s, w, &p); err != nil {
			b.Fatal(err)
		}
		if !v.VerifyScratch(sc, &p) {
			b.Fatal("verify failed")
		}
	}
}
