// Package zkp provides the input well-formedness proofs of Section 5.3:
// participants prove that their encrypted upload is a valid one-hot encoding
// (or an integer in a declared range) so that malicious devices cannot skew
// results by submitting malformed inputs.
//
// The paper's prototype uses ZoKrates with the bellman backend and the
// Groth16 scheme, with proofs signed to prevent replay (G16 is malleable).
// Building a pairing-based SNARK is outside the standard library, so this
// package substitutes a commitment-based simulation with the same interface,
// the same replay protection (statements bind the prover identity and query
// sequence number), and the same verification outcomes — honest proofs
// verify, proofs for malformed inputs and replayed proofs fail. The cost
// model charges proof generation and verification at G16-derived rates, so
// planner decisions are unaffected. See DESIGN.md for the substitution
// argument. The simulation is NOT zero-knowledge: the verifier here is a
// simulation harness that already holds the plaintexts it checks.
package zkp

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"arboretum/internal/hashing"
)

// ProofSize is the wire size charged by the cost model: a Groth16 proof is
// three group elements (~192 bytes on BN254) plus a signature.
const ProofSize = 192 + 64

// Statement binds a proof to a device, a query, and a claim about the
// device's upload.
type Statement struct {
	Device  int
	QueryID uint64
	Claim   Claim
}

// Claim is what the proof asserts about the (hidden) witness.
type Claim struct {
	Kind      ClaimKind
	VectorLen int   // for one-hot claims
	Lo, Hi    int64 // for range claims
}

// ClaimKind enumerates the supported input shapes.
type ClaimKind int

const (
	// ClaimOneHot asserts the upload is a 0/1 vector with exactly one 1.
	ClaimOneHot ClaimKind = iota
	// ClaimRange asserts the upload is an integer in [Lo, Hi].
	ClaimRange
)

// Witness is the device's private input.
type Witness struct {
	Vector []int64 // one-hot claims
	Value  int64   // range claims
}

// Proof is the simulated proof object. Verification succeeds only when the
// statement's claim actually held for the witness at proving time.
type Proof struct {
	Statement Statement
	tag       [sha256.Size]byte
	valid     bool
}

// Bytes returns the wire size for traffic accounting.
func (p *Proof) Bytes() int { return ProofSize }

// Prover generates proofs; it is keyed so that proofs bind the prover
// identity (the signed-proof anti-replay measure of Section 6).
type Prover struct {
	key []byte
}

// NewProver returns a prover with the given signing key.
func NewProver(key []byte) *Prover { return &Prover{key: append([]byte(nil), key...)} }

// satisfies checks the claim against the witness.
func satisfies(c Claim, w Witness) bool {
	switch c.Kind {
	case ClaimOneHot:
		if len(w.Vector) != c.VectorLen {
			return false
		}
		ones := 0
		for _, v := range w.Vector {
			switch v {
			case 0:
			case 1:
				ones++
			default:
				return false
			}
		}
		return ones == 1
	case ClaimRange:
		return w.Value >= c.Lo && w.Value <= c.Hi
	default:
		return false
	}
}

// statementMsgLen is the statement encoding's fixed length: six uint64
// fields, little-endian.
const statementMsgLen = 48

// putStatement writes the canonical statement encoding into buf (at least
// statementMsgLen bytes). statementTag and Scratch.tag MAC the same bytes,
// so proofs from either prover path verify under either verifier path.
func putStatement(buf []byte, s Statement) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(s.Device))
	binary.LittleEndian.PutUint64(buf[8:], s.QueryID)
	binary.LittleEndian.PutUint64(buf[16:], uint64(s.Claim.Kind))
	binary.LittleEndian.PutUint64(buf[24:], uint64(s.Claim.VectorLen))
	binary.LittleEndian.PutUint64(buf[32:], uint64(s.Claim.Lo))
	binary.LittleEndian.PutUint64(buf[40:], uint64(s.Claim.Hi))
}

func statementTag(key []byte, s Statement) [sha256.Size]byte {
	mac := hmac.New(sha256.New, key)
	var msg [statementMsgLen]byte
	putStatement(msg[:], s)
	hashing.Write(mac, msg[:])
	var out [sha256.Size]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Prove produces a proof for the statement. Like a real prover run on a
// false statement, it returns an error if the witness does not satisfy the
// claim — a malicious device that wants to upload malformed data must skip
// the proof (and be rejected by the verifier).
func (p *Prover) Prove(s Statement, w Witness) (*Proof, error) {
	if !satisfies(s.Claim, w) {
		return nil, errors.New("zkp: witness does not satisfy the claim")
	}
	return &Proof{Statement: s, tag: statementTag(p.key, s), valid: true}, nil
}

// Forge returns a proof object for a statement whose claim does NOT hold;
// tests and the failure-injection runtime use it to model malicious devices.
// It always fails verification.
func Forge(s Statement) *Proof {
	return &Proof{Statement: s, valid: false}
}

// Verifier checks proofs and enforces replay protection per query. It comes
// in two constructions: NewVerifier holds an explicit device-key map (and a
// map-backed replay set), while NewVerifierFunc resolves keys on demand over
// a contiguous device range with a dense replay bitset — O(range/8) bytes of
// state, which is what lets streaming-ingest shards verify virtual
// populations of 10^8 devices without materializing a key table.
type Verifier struct {
	proverKeys map[int][]byte
	seen       map[uint64]map[int]bool // queryID → device → used

	keyOf    KeyFunc
	lo, hi   int                 // accepted device range [lo, hi) (keyOf mode)
	seenBits map[uint64][]uint64 // queryID → replay bitset over [lo, hi)
}

// KeyFunc resolves a device's signing key on demand. The returned slice is
// only read before the next call, so implementations may reuse one buffer.
// Returning nil rejects the device.
type KeyFunc func(device int) []byte

// NewVerifier returns a verifier that accepts proofs from the given device
// keys (device index → signing key).
func NewVerifier(proverKeys map[int][]byte) *Verifier {
	keys := make(map[int][]byte, len(proverKeys))
	for d, k := range proverKeys {
		keys[d] = append([]byte(nil), k...)
	}
	return &Verifier{proverKeys: keys, seen: map[uint64]map[int]bool{}}
}

// NewVerifierFunc returns a verifier that accepts proofs from devices in
// [lo, hi), resolving each signing key through keyOf at verification time.
func NewVerifierFunc(keyOf KeyFunc, lo, hi int) *Verifier {
	return &Verifier{keyOf: keyOf, lo: lo, hi: hi, seenBits: map[uint64][]uint64{}}
}

// key resolves the device's signing key, or nil to reject.
func (v *Verifier) key(device int) []byte {
	if v.keyOf != nil {
		if device < v.lo || device >= v.hi {
			return nil
		}
		return v.keyOf(device)
	}
	return v.proverKeys[device]
}

// markSeen records the (query, device) pair, reporting whether it was fresh.
func (v *Verifier) markSeen(queryID uint64, device int) bool {
	if v.keyOf != nil {
		bits := v.seenBits[queryID]
		if bits == nil {
			bits = make([]uint64, (v.hi-v.lo+63)/64)
			v.seenBits[queryID] = bits
		}
		i := device - v.lo
		w, b := i/64, uint64(1)<<(i%64)
		if bits[w]&b != 0 {
			return false
		}
		bits[w] |= b
		return true
	}
	q := v.seen[queryID]
	if q == nil {
		q = map[int]bool{}
		v.seen[queryID] = q
	}
	if q[device] {
		return false
	}
	q[device] = true
	return true
}

// verify is the shared check; a nil scratch takes the allocating tag path.
func (v *Verifier) verify(p *Proof, sc *Scratch) bool {
	if p == nil || !p.valid {
		return false
	}
	key := v.key(p.Statement.Device)
	if key == nil {
		return false
	}
	var want [sha256.Size]byte
	if sc != nil {
		want = sc.tag(key, p.Statement)
	} else {
		want = statementTag(key, p.Statement)
	}
	if !hmac.Equal(want[:], p.tag[:]) {
		return false
	}
	return v.markSeen(p.Statement.QueryID, p.Statement.Device)
}

// Verify checks the proof. It fails for forged proofs, unknown devices,
// tag mismatches (wrong key or tampered statement), and replays of a proof
// from the same device in the same query.
func (v *Verifier) Verify(p *Proof) bool { return v.verify(p, nil) }

// VerifyScratch is Verify on the pooled tag path: identical outcomes and
// replay state, zero allocations past the per-query replay set. Callers own
// the scratch's synchronization along with the verifier's.
func (v *Verifier) VerifyScratch(sc *Scratch, p *Proof) bool { return v.verify(p, sc) }
