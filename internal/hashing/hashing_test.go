package hashing

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

func TestWriteMatchesDirectWrites(t *testing.T) {
	a := sha256.New()
	Write(a, []byte{0x01}, []byte("left"), []byte("right"))

	b := sha256.New()
	for _, chunk := range [][]byte{{0x01}, []byte("left"), []byte("right")} {
		if _, err := b.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Sum(nil), b.Sum(nil)) {
		t.Fatal("Write diverges from direct hash.Hash.Write calls")
	}
}

func TestWriteEmpty(t *testing.T) {
	a := sha256.New()
	Write(a)
	if !bytes.Equal(a.Sum(nil), sha256.New().Sum(nil)) {
		t.Fatal("Write with no chunks changed the digest state")
	}
}
