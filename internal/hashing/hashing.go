// Package hashing is the one sanctioned way to feed data into a digest or
// MAC without per-call error plumbing. hash.Hash documents that Write never
// returns an error, but the errdiscard invariant (tools/arblint) still
// requires every dropped error to be justified; concentrating the writes
// here gives the repo a single, annotated justification instead of a
// scattering of `_, _ =` at every call site.
package hashing

import "hash"

// Write feeds every chunk into h in order.
func Write(h hash.Hash, chunks ...[]byte) {
	for _, c := range chunks {
		// hash.Hash embeds io.Writer with the documented strengthening
		// "it never returns an error", so the discard is sound.
		_, _ = h.Write(c) //arblint:ignore errdiscard hash.Hash.Write is documented to never return an error
	}
}
