// Package privacy certifies queries as differentially private and derives
// sensitivity bounds (Section 4.2). The paper adopts the approach from Fuzzi,
// which handles explicit and implicit flows; this package implements the
// subset of that analysis the evaluation queries need:
//
//   - conservative taint tracking from db (explicit flows);
//   - a "noised" lattice level for mechanism outputs, so that declassify is
//     accepted only for values whose dependence on the data passes through a
//     DP mechanism (including control-flow dependence, the implicit-flow
//     case of Figure 4's exponentiation variant);
//   - ε accounting across mechanism invocations (sequential composition),
//     loop-aware, with √k composition for one-shot top-k and secrecy-of-
//     the-sample amplification;
//   - sensitivity bounds from the database row shape and clip ranges.
//
// Programs that try to output raw tainted data, or declassify values that
// never passed through a mechanism, are rejected.
package privacy

import (
	"fmt"
	"math"

	"arboretum/internal/lang"
	"arboretum/internal/mechanism"
	"arboretum/internal/types"
)

// Options configures certification.
type Options struct {
	// DefaultEpsilon is used for mechanism calls without an explicit ε
	// argument.
	DefaultEpsilon float64
	// OneShotTopK selects √k·ε composition (noise once, release k best)
	// instead of k·ε (Section 2.1).
	OneShotTopK bool
}

// DefaultOptions matches the evaluation setup.
var DefaultOptions = Options{DefaultEpsilon: 0.1, OneShotTopK: true}

// MechanismUse records one mechanism invocation found in the query.
type MechanismUse struct {
	Func        string  // laplace | em | topk
	Epsilon     float64 // per-invocation ε (after k-composition for topk)
	Invocations int64   // static count (loops multiply)
	Sensitivity int64
}

// Certificate is the result of a successful certification.
type Certificate struct {
	Epsilon     float64 // total ε under sequential composition
	Delta       float64 // δ from finite-precision tail clipping (Section 6)
	Sensitivity int64   // worst-case per-row influence on any aggregate
	SampleRate  float64 // secrecy-of-the-sample rate, 1 if unsampled
	Mechanisms  []MechanismUse
}

// taint levels form a small lattice: Public ⊑ Noised ⊑ Sensitive.
type taint int

const (
	public taint = iota
	noised
	sensitive
)

func (t taint) join(o taint) taint {
	if o > t {
		return o
	}
	return t
}

// deltaPerMechanism is the δ added by clipping distribution tails to the
// fixed-point range (Section 6: "the use of finite-range data types adds a
// small δ"). 2^-40 matches the 40 bits of statistical security.
const deltaPerMechanism = 1.0 / (1 << 40)

// Certify checks the program and returns its privacy certificate. The types
// result supplies loop extents and clip ranges.
func Certify(p *lang.Program, info *types.Info, opts Options) (*Certificate, error) {
	if opts.DefaultEpsilon <= 0 {
		return nil, fmt.Errorf("privacy: default epsilon %g must be positive", opts.DefaultEpsilon)
	}
	c := &certifier{
		info: info,
		opts: opts,
		vars: map[string]taint{"db": sensitive},
		sens: map[string]float64{"db": info.DB.ElemRange.Width()},
		cert: &Certificate{SampleRate: 1},
	}
	if err := c.stmts(p.Stmts, 1, public); err != nil {
		return nil, err
	}
	if !c.sawOutput {
		return nil, fmt.Errorf("privacy: query never calls output")
	}
	// Sensitivity: the worst mechanism-level sensitivity seen; for the
	// one-hot database encoding every row changes each count by at most 1.
	c.cert.Sensitivity = c.maxSensitivity
	if c.cert.Sensitivity == 0 {
		c.cert.Sensitivity = 1
	}
	// Amplification by sampling applies to the whole ε (Section 2.1).
	if c.cert.SampleRate < 1 {
		amp, err := mechanism.AmplifyBySampling(c.cert.Epsilon, c.cert.SampleRate)
		if err != nil {
			return nil, fmt.Errorf("privacy: %v", err)
		}
		c.cert.Epsilon = amp
	}
	return c.cert, nil
}

type certifier struct {
	info           *types.Info
	opts           Options
	vars           map[string]taint
	sens           map[string]float64 // per-variable sensitivity bound
	cert           *Certificate
	sawOutput      bool
	maxSensitivity int64
}

// stmts walks a statement list. mult is the static invocation multiplier
// from enclosing loops; ctx is the control-flow taint (implicit flows).
func (c *certifier) stmts(ss []lang.Stmt, mult int64, ctx taint) error {
	for _, s := range ss {
		if err := c.stmt(s, mult, ctx); err != nil {
			return err
		}
	}
	return nil
}

func (c *certifier) stmt(s lang.Stmt, mult int64, ctx taint) error {
	switch st := s.(type) {
	case *lang.AssignStmt:
		t, err := c.expr(st.Value, mult)
		if err != nil {
			return err
		}
		if st.Index != nil {
			it, err := c.expr(st.Index, mult)
			if err != nil {
				return err
			}
			t = t.join(it)
		}
		t = t.join(ctx) // implicit flow from the enclosing condition
		if st.Index != nil {
			// Element assignment joins into the whole array's taint.
			t = t.join(c.vars[st.Name])
		}
		c.vars[st.Name] = t
		s := c.sensExpr(st.Value)
		if st.Index != nil && c.sens[st.Name] > s {
			s = c.sens[st.Name]
		}
		c.sens[st.Name] = s
		return nil
	case *lang.ExprStmt:
		_, err := c.expr(st.X, mult)
		return err
	case *lang.ForStmt:
		iters := c.loopIterations(st)
		c.vars[st.Var] = public
		return c.stmts(st.Body, mult*iters, ctx)
	case *lang.IfStmt:
		condT, err := c.expr(st.Cond, mult)
		if err != nil {
			return err
		}
		inner := ctx.join(condT)
		if err := c.stmts(st.Then, mult, inner); err != nil {
			return err
		}
		return c.stmts(st.Else, mult, inner)
	default:
		return fmt.Errorf("privacy: unknown statement %T", s)
	}
}

func (c *certifier) loopIterations(st *lang.ForStmt) int64 {
	from, okF := c.info.TypeOf(st.From)
	to, okT := c.info.TypeOf(st.To)
	if !okF || !okT {
		return 1
	}
	iters := int64(to.Range.Hi-from.Range.Lo) + 1
	if iters < 1 {
		return 1
	}
	return iters
}

func (c *certifier) expr(e lang.Expr, mult int64) (taint, error) {
	switch ex := e.(type) {
	case *lang.IntLit, *lang.FloatLit, *lang.BoolLit:
		return public, nil
	case *lang.Ident:
		t, ok := c.vars[ex.Name]
		if !ok {
			return public, nil // undefined is a type error, not ours
		}
		return t, nil
	case *lang.IndexExpr:
		xt, err := c.expr(ex.X, mult)
		if err != nil {
			return sensitive, err
		}
		it, err := c.expr(ex.Index, mult)
		if err != nil {
			return sensitive, err
		}
		return xt.join(it), nil
	case *lang.UnaryExpr:
		return c.expr(ex.X, mult)
	case *lang.BinaryExpr:
		xt, err := c.expr(ex.X, mult)
		if err != nil {
			return sensitive, err
		}
		yt, err := c.expr(ex.Y, mult)
		if err != nil {
			return sensitive, err
		}
		return xt.join(yt), nil
	case *lang.CallExpr:
		return c.call(ex, mult)
	default:
		return sensitive, fmt.Errorf("privacy: unknown expression %T", e)
	}
}

func (c *certifier) call(ex *lang.CallExpr, mult int64) (taint, error) {
	argT := make([]taint, len(ex.Args))
	for i, a := range ex.Args {
		t, err := c.expr(a, mult)
		if err != nil {
			return sensitive, err
		}
		argT[i] = t
	}
	switch ex.Func {
	case "laplace":
		eps := c.epsArg(ex, 1)
		sens := c.laplaceSensitivity(ex)
		c.record("laplace", eps, mult, sens)
		return noised, nil
	case "em":
		eps := c.epsArg(ex, 1)
		c.record("em", eps, mult, 1)
		return noised, nil
	case "topk":
		eps := c.epsArg(ex, 2)
		k := c.intArg(ex, 1, 1)
		composed := eps * float64(k)
		if c.opts.OneShotTopK {
			composed = eps * math.Sqrt(float64(k))
		}
		c.record("topk", composed, mult, 1)
		return noised, nil
	case "gumbel":
		// Raw Gumbel noise: output is noised only when added to something
		// by a surrounding mechanism; treat as public noise here.
		return public, nil
	case "declassify":
		if argT[0] == sensitive {
			return sensitive, fmt.Errorf("%v: declassify of a value that never passed through a DP mechanism",
				ex.Position())
		}
		return public, nil
	case "output":
		c.sawOutput = true
		if argT[0] == sensitive {
			return sensitive, fmt.Errorf("%v: output of raw sensitive data (use a mechanism and declassify)",
				ex.Position())
		}
		return public, nil
	case "sampleUniform":
		rate := c.floatArgValue(ex, 0, 1)
		if rate > 0 && rate < 1 {
			c.cert.SampleRate = rate
		}
		return argT[0], nil
	case "len":
		// An array's length is public metadata (fixed by the query shape),
		// not a function of the data.
		return public, nil
	default:
		// Pure functions propagate the join of their arguments.
		t := public
		for _, a := range argT {
			t = t.join(a)
		}
		return t, nil
	}
}

// record accumulates one mechanism use under sequential composition.
func (c *certifier) record(fn string, eps float64, mult int64, sens int64) {
	c.cert.Mechanisms = append(c.cert.Mechanisms, MechanismUse{
		Func: fn, Epsilon: eps, Invocations: mult, Sensitivity: sens,
	})
	c.cert.Epsilon += eps * float64(mult)
	c.cert.Delta += deltaPerMechanism * float64(mult)
	if sens > c.maxSensitivity {
		c.maxSensitivity = sens
	}
}

// epsArg extracts an explicit ε argument or falls back to the default.
func (c *certifier) epsArg(ex *lang.CallExpr, idx int) float64 {
	if idx < len(ex.Args) {
		if v := c.floatArgValue(ex, idx, 0); v > 0 {
			return v
		}
	}
	return c.opts.DefaultEpsilon
}

func (c *certifier) intArg(ex *lang.CallExpr, idx int, def int64) int64 {
	if idx < len(ex.Args) {
		if lit, ok := ex.Args[idx].(*lang.IntLit); ok {
			return lit.Value
		}
	}
	return def
}

func (c *certifier) floatArgValue(ex *lang.CallExpr, idx int, def float64) float64 {
	if idx < len(ex.Args) {
		switch lit := ex.Args[idx].(type) {
		case *lang.FloatLit:
			return lit.Value
		case *lang.IntLit:
			return float64(lit.Value)
		}
	}
	return def
}

// laplaceSensitivity derives the sensitivity of a Laplace invocation from
// the tracked per-row influence of its argument (Fuzzi's sensitivity
// analysis); the unclipped one-hot default is 1.
func (c *certifier) laplaceSensitivity(ex *lang.CallExpr) int64 {
	s := c.sensExpr(ex.Args[0])
	if s <= 0 || math.IsInf(s, 1) {
		return 1
	}
	return int64(math.Ceil(s))
}

// sensExpr bounds how much one participant's row can change the value of an
// expression (sensitivity propagation): constants are 0-sensitive, the
// database contributes its element width, sums of one-hot rows stay at the
// row width, addition adds, multiplication by a public constant scales, and
// clip caps at the clip width.
func (c *certifier) sensExpr(e lang.Expr) float64 {
	switch ex := e.(type) {
	case *lang.IntLit, *lang.FloatLit, *lang.BoolLit:
		return 0
	case *lang.Ident:
		return c.sens[ex.Name]
	case *lang.IndexExpr:
		return c.sensExpr(ex.X)
	case *lang.UnaryExpr:
		return c.sensExpr(ex.X)
	case *lang.BinaryExpr:
		sx, sy := c.sensExpr(ex.X), c.sensExpr(ex.Y)
		switch ex.Op {
		case lang.ADD, lang.SUB:
			return sx + sy
		case lang.MUL:
			// Multiplication by a public value scales by its magnitude;
			// sensitive × sensitive is unbounded (conservative ∞).
			if sx == 0 {
				return sy * c.exprMagnitude(ex.X)
			}
			if sy == 0 {
				return sx * c.exprMagnitude(ex.Y)
			}
			return math.Inf(1)
		case lang.QUO:
			if sy == 0 {
				d := c.exprMagnitude(ex.Y)
				if d >= 1 {
					return sx // dividing by ≥1 cannot grow sensitivity
				}
			}
			return math.Inf(1)
		default: // comparisons and logical ops produce 0/1 values
			return sx + sy
		}
	case *lang.CallExpr:
		switch ex.Func {
		case "sum":
			if id, ok := ex.Args[0].(*lang.Ident); ok && id.Name == "db" {
				// Column sums of per-participant rows: one row changes each
				// count by at most the element width.
				return c.info.DB.ElemRange.Width()
			}
			return c.sensExpr(ex.Args[0]) // element-wise accumulation bound
		case "clip":
			w := c.exprMagnitude(ex.Args[2]) - (-c.exprMagnitude(ex.Args[1]))
			if t, ok := c.info.TypeOf(ex); ok {
				w = t.Range.Width()
			}
			s := c.sensExpr(ex.Args[0])
			return math.Min(s, w)
		case "max", "argmax", "em", "abs", "len":
			return c.sensExpr(ex.Args[0])
		case "laplace", "gumbel", "topk", "declassify", "output":
			return 0 // mechanism outputs are no longer sensitive
		default:
			var s float64
			for _, a := range ex.Args {
				s += c.sensExpr(a)
			}
			return s
		}
	default:
		return math.Inf(1)
	}
}

// exprMagnitude returns a bound on |e| from the type-inference ranges.
func (c *certifier) exprMagnitude(e lang.Expr) float64 {
	if t, ok := c.info.TypeOf(e); ok {
		return math.Max(math.Abs(t.Range.Lo), math.Abs(t.Range.Hi))
	}
	return math.Inf(1)
}
