package privacy

import (
	"fmt"
	"sync"
)

// Budget is the deployment's privacy budget (Section 5.2): the key
// generation committee checks the balance before authorizing a query and
// records the remaining balance in the query authorization certificate for
// the next round's committee.
type Budget struct {
	mu               sync.Mutex
	epsilon, delta   float64
	epsUsed, delUsed float64
	queries          int
}

// NewBudget creates a budget with the given totals.
func NewBudget(epsilon, delta float64) (*Budget, error) {
	if epsilon <= 0 || delta < 0 {
		return nil, fmt.Errorf("privacy: invalid budget ε=%g δ=%g", epsilon, delta)
	}
	return &Budget{epsilon: epsilon, delta: delta}, nil
}

// Charge deducts a certificate's cost; it fails without deducting when the
// balance is insufficient (the query is rejected, Section 5.2).
func (b *Budget) Charge(c *Certificate) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.epsUsed+c.Epsilon > b.epsilon {
		return fmt.Errorf("privacy: ε budget exhausted: used %g + query %g > total %g",
			b.epsUsed, c.Epsilon, b.epsilon)
	}
	if b.delUsed+c.Delta > b.delta {
		return fmt.Errorf("privacy: δ budget exhausted: used %g + query %g > total %g",
			b.delUsed, c.Delta, b.delta)
	}
	b.epsUsed += c.Epsilon
	b.delUsed += c.Delta
	b.queries++
	return nil
}

// Remaining returns the unspent ε and δ.
func (b *Budget) Remaining() (eps, delta float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epsilon - b.epsUsed, b.delta - b.delUsed
}

// Queries returns the number of charged queries.
func (b *Budget) Queries() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queries
}
