package privacy

import (
	"math"
	"testing"

	"arboretum/internal/lang"
	"arboretum/internal/types"
)

var db = types.DBInfo{N: 1 << 20, Width: 8, ElemRange: types.Range{Lo: 0, Hi: 1}}

func certify(t *testing.T, src string) (*Certificate, error) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Infer(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	return Certify(prog, info, DefaultOptions)
}

func mustCertify(t *testing.T, src string) *Certificate {
	t.Helper()
	c, err := certify(t, src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTop1Certifies(t *testing.T) {
	c := mustCertify(t, `
aggr = sum(db);
result = em(aggr);
output(result);
`)
	if c.Epsilon != DefaultOptions.DefaultEpsilon {
		t.Errorf("ε = %g, want %g", c.Epsilon, DefaultOptions.DefaultEpsilon)
	}
	if c.Sensitivity != 1 {
		t.Errorf("sensitivity = %d, want 1", c.Sensitivity)
	}
	if len(c.Mechanisms) != 1 || c.Mechanisms[0].Func != "em" {
		t.Errorf("mechanisms = %+v", c.Mechanisms)
	}
	if c.Delta <= 0 {
		t.Error("finite-precision δ should be positive")
	}
}

func TestExplicitEpsilon(t *testing.T) {
	c := mustCertify(t, `
aggr = sum(db);
result = em(aggr, 0.5);
output(result);
`)
	if c.Epsilon != 0.5 {
		t.Errorf("ε = %g, want 0.5", c.Epsilon)
	}
}

func TestRawOutputRejected(t *testing.T) {
	if _, err := certify(t, `
aggr = sum(db);
output(aggr);
`); err == nil {
		t.Fatal("raw aggregate output certified")
	}
	if _, err := certify(t, `
output(db[0][0]);
`); err == nil {
		t.Fatal("raw db output certified")
	}
}

func TestDeclassifyOfSensitiveRejected(t *testing.T) {
	if _, err := certify(t, `
aggr = sum(db);
x = declassify(aggr);
output(x);
`); err == nil {
		t.Fatal("declassify of unmechanized value certified")
	}
}

func TestDeclassifyOfNoisedAccepted(t *testing.T) {
	c := mustCertify(t, `
aggr = sum(db);
n = laplace(aggr[0], 0.1);
x = declassify(n);
output(x);
`)
	if len(c.Mechanisms) != 1 || c.Mechanisms[0].Func != "laplace" {
		t.Errorf("mechanisms = %+v", c.Mechanisms)
	}
}

// Implicit flows (the Figure 4 exponentiation variant): a loop index chosen
// by comparing against a noised threshold is itself noised, so declassify is
// allowed; a loop index chosen by comparing raw data is not.
func TestImplicitFlowThroughNoised(t *testing.T) {
	mustCertify(t, `
aggr = sum(db);
r = laplace(aggr[0], 0.1);
result = 0;
for i = 0 to 7 do
  if r >= i then
    result = declassify(i);
  endif;
endfor;
output(result);
`)
}

func TestImplicitFlowFromRawRejected(t *testing.T) {
	if _, err := certify(t, `
aggr = sum(db);
result = 0;
for i = 0 to 7 do
  if aggr[i] >= 100 then
    result = i;
  endif;
endfor;
output(result);
`); err == nil {
		t.Fatal("implicit flow from raw data certified")
	}
}

func TestLoopMultipliesEpsilon(t *testing.T) {
	c := mustCertify(t, `
aggr = sum(db);
total = 0;
for i = 0 to 4 do
  n = laplace(aggr[i], 0.1);
  total = total + declassify(n);
endfor;
output(total);
`)
	want := 0.5 // 5 iterations × 0.1
	if math.Abs(c.Epsilon-want) > 1e-9 {
		t.Errorf("ε = %g, want %g", c.Epsilon, want)
	}
}

func TestTopKComposition(t *testing.T) {
	oneShot := mustCertify(t, `
aggr = sum(db);
best = topk(aggr, 4, 0.1);
output(declassify(best[0]));
`)
	// One-shot: √4 × 0.1 = 0.2.
	if math.Abs(oneShot.Epsilon-0.2) > 1e-9 {
		t.Errorf("one-shot topk ε = %g, want 0.2", oneShot.Epsilon)
	}
	// Peeling: 4 × 0.1 = 0.4.
	prog := lang.MustParse(`
aggr = sum(db);
best = topk(aggr, 4, 0.1);
output(declassify(best[0]));
`)
	info, err := types.Infer(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions
	opts.OneShotTopK = false
	peel, err := Certify(prog, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peel.Epsilon-0.4) > 1e-9 {
		t.Errorf("peeling topk ε = %g, want 0.4", peel.Epsilon)
	}
}

func TestSamplingAmplification(t *testing.T) {
	c := mustCertify(t, `
sampled = sampleUniform(0.01);
aggr = sum(db);
n = laplace(aggr[0], 1.0);
output(declassify(n));
`)
	if c.SampleRate != 0.01 {
		t.Errorf("sample rate = %g", c.SampleRate)
	}
	want := math.Log1p(0.01 * math.Expm1(1.0))
	if math.Abs(c.Epsilon-want) > 1e-9 {
		t.Errorf("amplified ε = %g, want %g", c.Epsilon, want)
	}
}

func TestClipSensitivity(t *testing.T) {
	// A product of two sensitive values has unbounded sensitivity; clipping
	// caps it at the clip width, which the Laplace mechanism then uses.
	c := mustCertify(t, `
aggr = sum(db);
v = clip(aggr[0] * aggr[1], 0, 50);
n = laplace(v, 0.1);
output(declassify(n));
`)
	if c.Sensitivity != 50 {
		t.Errorf("sensitivity = %d, want 50 (clip width)", c.Sensitivity)
	}
	// Clipping a sensitivity-1 count cannot increase its sensitivity.
	c2 := mustCertify(t, `
aggr = sum(db);
v = clip(aggr[0], 0, 50);
n = laplace(v, 0.1);
output(declassify(n));
`)
	if c2.Sensitivity != 1 {
		t.Errorf("clipped count sensitivity = %d, want 1", c2.Sensitivity)
	}
}

func TestNoOutputRejected(t *testing.T) {
	if _, err := certify(t, `aggr = sum(db);`); err == nil {
		t.Fatal("query without output certified")
	}
}

func TestBadOptions(t *testing.T) {
	prog := lang.MustParse(`output(1);`)
	info, _ := types.Infer(prog, db)
	if _, err := Certify(prog, info, Options{DefaultEpsilon: 0}); err == nil {
		t.Fatal("zero default epsilon accepted")
	}
}

func TestPublicOutputOK(t *testing.T) {
	mustCertify(t, `x = 1 + 2; output(x);`)
}

func TestBudgetChargeAndExhaustion(t *testing.T) {
	b, err := NewBudget(1.0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	cert := &Certificate{Epsilon: 0.4, Delta: 1e-9}
	if err := b.Charge(cert); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge(cert); err != nil {
		t.Fatal(err)
	}
	// Third charge exceeds ε=1.0.
	if err := b.Charge(cert); err == nil {
		t.Fatal("over-budget query accepted")
	}
	eps, _ := b.Remaining()
	if math.Abs(eps-0.2) > 1e-9 {
		t.Errorf("remaining ε = %g, want 0.2", eps)
	}
	if b.Queries() != 2 {
		t.Errorf("queries = %d, want 2", b.Queries())
	}
}

func TestBudgetDeltaExhaustion(t *testing.T) {
	b, _ := NewBudget(10, 1e-12)
	cert := &Certificate{Epsilon: 0.1, Delta: 1e-9}
	if err := b.Charge(cert); err == nil {
		t.Fatal("δ-exceeding query accepted")
	}
}

func TestBadBudget(t *testing.T) {
	if _, err := NewBudget(0, 1e-6); err == nil {
		t.Fatal("ε=0 budget accepted")
	}
	if _, err := NewBudget(1, -1); err == nil {
		t.Fatal("negative δ budget accepted")
	}
}

// Nested composition: a mechanism inside a conditional inside a loop
// multiplies by the loop count (the branch may run every iteration).
func TestMechanismInConditionalLoop(t *testing.T) {
	c := mustCertify(t, `
aggr = sum(db);
total = 0;
for i = 0 to 9 do
  n = laplace(aggr[0], 0.1);
  p = declassify(n);
  if p > 5 then
    total = total + 1;
  endif;
endfor;
output(total);
`)
	if math.Abs(c.Epsilon-1.0) > 1e-9 {
		t.Errorf("ε = %g, want 1.0 (10 iterations × 0.1)", c.Epsilon)
	}
}

// Multiple mechanisms compose sequentially.
func TestSequentialComposition(t *testing.T) {
	c := mustCertify(t, `
aggr = sum(db);
a = laplace(aggr[0], 0.2);
b = em(aggr, 0.3);
output(declassify(a));
output(b);
`)
	if math.Abs(c.Epsilon-0.5) > 1e-9 {
		t.Errorf("ε = %g, want 0.5", c.Epsilon)
	}
	if len(c.Mechanisms) != 2 {
		t.Errorf("mechanisms = %d, want 2", len(c.Mechanisms))
	}
}

// len() of a sensitive array is public metadata.
func TestLenIsPublic(t *testing.T) {
	mustCertify(t, `
aggr = sum(db);
n = len(aggr);
output(n);
`)
}

// A mechanism output used as an array index keeps the array's taint: the
// element is still sensitive.
func TestIndexByNoisedValueKeepsTaint(t *testing.T) {
	if _, err := certify(t, `
aggr = sum(db);
i = em(aggr, 0.1);
output(aggr[i]);
`); err == nil {
		t.Fatal("outputting a raw element selected by a noised index certified")
	}
}
