package fixed

import "testing"

func TestSlabPoolRoundTrip(t *testing.T) {
	sp := NewSlabPool(64)
	if sp.Size() != 64 {
		t.Fatalf("Size = %d, want 64", sp.Size())
	}
	s := sp.Get()
	if len(*s) != 64 {
		t.Fatalf("slab length %d, want 64", len(*s))
	}
	for i := range *s {
		(*s)[i] = uint64(i)
	}
	sp.Put(s)
	// A second checkout may or may not be the same slab; either way it must
	// have the right size and be fully writable.
	s2 := sp.Get()
	if len(*s2) != 64 {
		t.Fatalf("second slab length %d, want 64", len(*s2))
	}
	sp.Put(s2)
}

func TestSlabPoolPutWrongSizePanics(t *testing.T) {
	sp := NewSlabPool(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a resliced slab did not panic")
		}
	}()
	s := sp.Get()
	short := (*s)[:4]
	sp.Put(&short)
}

func TestSlabPoolZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSlabPool(0) did not panic")
		}
	}()
	NewSlabPool(0)
}

// TestSlabPoolSteadyStateAllocs pins the Get/Put round trip itself at zero
// allocations — the property the bgv/ahe hot paths build their zero-alloc
// budgets on.
func TestSlabPoolSteadyStateAllocs(t *testing.T) {
	sp := NewSlabPool(1 << 10)
	sp.Put(sp.Get()) // warm the pool
	avg := testing.AllocsPerRun(100, func() {
		s := sp.Get()
		(*s)[0] = 1
		sp.Put(s)
	})
	if avg > 0 {
		t.Fatalf("SlabPool round trip allocates %.1f/op, want 0", avg)
	}
}

func TestTypedPoolRoundTrip(t *testing.T) {
	type scratch struct{ a, b []uint64 }
	p := Pool[scratch]{New: func() *scratch {
		return &scratch{a: make([]uint64, 16), b: make([]uint64, 16)}
	}}
	s := p.Get()
	if len(s.a) != 16 || len(s.b) != 16 {
		t.Fatal("New not applied")
	}
	p.Put(s)
	p.Put(p.Get())
	avg := testing.AllocsPerRun(100, func() {
		v := p.Get()
		v.a[0]++
		p.Put(v)
	})
	if avg > 0 {
		t.Fatalf("Pool[T] round trip allocates %.1f/op, want 0", avg)
	}
}
