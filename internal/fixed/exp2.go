package fixed

// Base-2 exponentials and logarithms for the exponential mechanism.
//
// Ilvento ("Implementing the exponential mechanism with base-2 differential
// privacy", CCS 2020) observes that working in base 2 lets an implementation
// compute exact powers for integer exponents and well-controlled
// approximations for fractional ones, avoiding the floating-point attacks of
// Mironov. The paper adopts this (Section 6); so do we.

// log2e is log2(e) in Q30.16: used to convert natural-log scales to base 2.
var log2e = FromFloat(1.4426950408889634)

// ln2 is ln(2) in Q30.16.
var ln2 = FromFloat(0.6931471805599453)

// Exp2 returns 2^f in fixed point, saturating at the representable range.
// The integer part is an exact shift; the fractional part uses a minimax
// polynomial accurate to well below one ulp of Q30.16.
func Exp2(f Fixed) Fixed {
	if f >= FromInt(IntBits) {
		return Max
	}
	if f <= FromInt(-(FracBits + 1)) {
		return 0
	}
	// Split into integer and fractional parts with frac in [0, 1).
	ip := f.Int()
	fp := f.Sub(FromInt(ip))
	if fp < 0 {
		ip--
		fp = fp.Add(One)
	}
	// 2^fp for fp in [0,1) via degree-5 polynomial (Taylor about ln 2 base).
	// 2^x = 1 + x ln2 + (x ln2)^2/2! + ... ; x ln2 < 0.6932 so convergence is
	// fast and every term is exactly representable in the 128-bit products.
	x := fp.Mul(ln2)
	term := One
	sum := One
	for k := int64(1); k <= 6; k++ {
		term = term.Mul(x).Div(FromInt(k))
		sum = sum.Add(term)
	}
	// Apply the exact integer shift.
	if ip >= 0 {
		return saturate(int64(sum) << uint(ip))
	}
	return Fixed(int64(sum) >> uint(-ip))
}

// Exp returns e^f using Exp2(f · log2 e).
func Exp(f Fixed) Fixed { return Exp2(f.Mul(log2e)) }

// Log2 returns log2(f) for f > 0. It panics on f ≤ 0.
func Log2(f Fixed) Fixed {
	if f <= 0 {
		panic("fixed: Log2 of non-positive value")
	}
	// Normalize f to m in [1, 2) and count the shift.
	var e int64
	m := f
	for m >= FromInt(2) {
		m = Fixed(int64(m) >> 1)
		e++
	}
	for m < One {
		m = Fixed(int64(m) << 1)
		e--
	}
	// log2(m) by repeated squaring, one output bit per iteration.
	var frac Fixed
	bit := One >> 1
	for i := 0; i < FracBits; i++ {
		m = m.Mul(m)
		if m >= FromInt(2) {
			m = Fixed(int64(m) >> 1)
			frac |= bit
		}
		bit >>= 1
	}
	return FromInt(e).Add(frac)
}

// Ln returns the natural logarithm of f for f > 0.
func Ln(f Fixed) Fixed { return Log2(f).Mul(ln2) }

// Sqrt returns the square root of f for f ≥ 0 by Newton's method on the
// scaled integer, so query evaluation never round-trips through floats
// (Section 6's rationale for fixed point applies to roots as much as to
// exponentials). It panics on negative input.
func Sqrt(f Fixed) Fixed {
	if f < 0 {
		panic("fixed: Sqrt of negative value")
	}
	if f == 0 {
		return 0
	}
	// sqrt(v / 2^16) · 2^16 = sqrt(v · 2^16) on the raw representation.
	// Numbers stay below 2^62, within uint64 Newton iteration range.
	target := uint64(f) << FracBits
	x := target
	// A good initial guess: 2^(ceil(bits/2)).
	for guessBits := 0; guessBits < 64; guessBits += 2 {
		if target>>uint(guessBits) == 0 {
			x = uint64(1) << uint(guessBits/2)
			break
		}
	}
	for i := 0; i < 64; i++ {
		nx := (x + target/x) / 2
		if nx >= x {
			break
		}
		x = nx
	}
	return Fixed(x)
}
