package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromIntRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -42, 1 << 29, -(1 << 29)} {
		if got := FromInt(v).Int(); got != v {
			t.Errorf("FromInt(%d).Int() = %d", v, got)
		}
	}
}

func TestFromFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 0.5, -0.5, 3.14159, -2.71828, 1000.25} {
		got := FromFloat(v).Float()
		if math.Abs(got-v) > 1.0/float64(One) {
			t.Errorf("FromFloat(%g).Float() = %g", v, got)
		}
	}
}

func TestFromFloatNaN(t *testing.T) {
	if got := FromFloat(math.NaN()); got != 0 {
		t.Errorf("FromFloat(NaN) = %v, want 0", got)
	}
}

func TestSaturation(t *testing.T) {
	if got := FromFloat(1e12); got != Max {
		t.Errorf("FromFloat(1e12) = %v, want Max", got)
	}
	if got := FromFloat(-1e12); got != Min {
		t.Errorf("FromFloat(-1e12) = %v, want Min", got)
	}
	if got := Max.Add(One); got != Max {
		t.Errorf("Max+1 = %v, want saturation at Max", got)
	}
	if got := Min.Sub(One); got != Min {
		t.Errorf("Min-1 = %v, want saturation at Min", got)
	}
	if got := Max.Mul(FromInt(2)); got != Max {
		t.Errorf("Max*2 = %v, want Max", got)
	}
	if got := Max.Mul(FromInt(-2)); got != Min {
		t.Errorf("Max*-2 = %v, want Min", got)
	}
}

func TestMulMatchesFloat(t *testing.T) {
	cases := [][2]float64{
		{1.5, 2.0}, {-1.5, 2.0}, {3.25, -4.75}, {-0.001, -1000},
		{100.5, 200.25}, {0, 5}, {1, 1},
	}
	for _, c := range cases {
		// Compare against the product of the quantized inputs so that input
		// quantization error does not count against Mul itself.
		x, y := FromFloat(c[0]), FromFloat(c[1])
		got := x.Mul(y).Float()
		want := x.Float() * y.Float()
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("%g * %g = %g, want %g", c[0], c[1], got, want)
		}
	}
}

func TestDivMatchesFloat(t *testing.T) {
	cases := [][2]float64{
		{1.5, 2.0}, {-10, 4}, {3.25, -0.5}, {1000, 3}, {0.125, 0.25},
	}
	for _, c := range cases {
		got := FromFloat(c[0]).Div(FromFloat(c[1])).Float()
		want := c[0] / c[1]
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("%g / %g = %g, want %g", c[0], c[1], got, want)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One.Div(0)
}

func TestFromRatio(t *testing.T) {
	if got := FromRatio(1, 2).Float(); got != 0.5 {
		t.Errorf("FromRatio(1,2) = %g", got)
	}
	if got := FromRatio(-3, 4).Float(); got != -0.75 {
		t.Errorf("FromRatio(-3,4) = %g", got)
	}
}

// Property: for values small enough to avoid saturation, fixed-point
// arithmetic tracks float arithmetic within quantization error.
func TestQuickMulAgainstFloat(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := float64(a)/16, float64(b)/16
		got := FromFloat(x).Mul(FromFloat(y)).Float()
		return math.Abs(got-x*y) <= 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: addition is commutative and associative for in-range values.
func TestQuickAddAlgebra(t *testing.T) {
	f := func(a, b, c int32) bool {
		x, y, z := Fixed(a), Fixed(b), Fixed(c)
		if x.Add(y) != y.Add(x) {
			return false
		}
		return x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Neg is an involution and Sub(a,b) = Add(a, Neg(b)) in range.
func TestQuickNegSub(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Fixed(a), Fixed(b)
		return x.Neg().Neg() == x && x.Sub(y) == x.Add(y.Neg())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExp2(t *testing.T) {
	cases := []float64{0, 1, 2, 10, -1, -2, 0.5, -0.5, 3.75, 14.2, -10.5}
	for _, x := range cases {
		got := Exp2(FromFloat(x)).Float()
		want := math.Exp2(x)
		tol := math.Max(want*1e-4, 1e-4)
		if math.Abs(got-want) > tol {
			t.Errorf("Exp2(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestExp2Saturates(t *testing.T) {
	if got := Exp2(FromInt(40)); got != Max {
		t.Errorf("Exp2(40) = %v, want Max", got)
	}
	if got := Exp2(FromInt(-40)); got != 0 {
		t.Errorf("Exp2(-40) = %v, want 0", got)
	}
}

func TestExp(t *testing.T) {
	for _, x := range []float64{0, 1, -1, 2.5, -3, 5} {
		got := Exp(FromFloat(x)).Float()
		want := math.Exp(x)
		tol := math.Max(want*1e-3, 1e-3)
		if math.Abs(got-want) > tol {
			t.Errorf("Exp(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	for _, x := range []float64{1, 2, 4, 0.5, 10, 1000, 0.001} {
		fx := FromFloat(x)
		got := Log2(fx).Float()
		want := math.Log2(fx.Float()) // quantized input is the ground truth
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("Log2(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestLog2NonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(0) did not panic")
		}
	}()
	Log2(0)
}

func TestLn(t *testing.T) {
	for _, x := range []float64{1, math.E, 10, 0.1} {
		got := Ln(FromFloat(x)).Float()
		want := math.Log(x)
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("Ln(%g) = %g, want %g", x, got, want)
		}
	}
}

// Property: Exp2 and Log2 are inverses on a reasonable range.
func TestQuickExpLogInverse(t *testing.T) {
	f := func(raw uint16) bool {
		// x in (0, 16): positive, comfortably in range.
		x := FromFloat(float64(raw%16000)/1000 + 0.001)
		back := Log2(Exp2(x))
		return back.Sub(x).Abs().Float() < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmp(t *testing.T) {
	if FromInt(1).Cmp(FromInt(2)) != -1 ||
		FromInt(2).Cmp(FromInt(1)) != 1 ||
		FromInt(1).Cmp(FromInt(1)) != 0 {
		t.Error("Cmp ordering wrong")
	}
}

func TestAbsFrac(t *testing.T) {
	if FromFloat(-2.5).Abs().Float() != 2.5 {
		t.Error("Abs(-2.5) wrong")
	}
	if got := FromFloat(2.25).Frac().Float(); got != 0.25 {
		t.Errorf("Frac(2.25) = %g", got)
	}
}

func TestString(t *testing.T) {
	if s := FromFloat(1.5).String(); s != "1.5" {
		t.Errorf("String() = %q", s)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := FromFloat(3.14159), FromFloat(2.71828)
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkExp2(b *testing.B) {
	x := FromFloat(7.32)
	for i := 0; i < b.N; i++ {
		_ = Exp2(x)
	}
}

func TestSqrt(t *testing.T) {
	for _, v := range []float64{0, 1, 2, 4, 16, 100, 0.25, 0.0625, 123456.789} {
		got := Sqrt(FromFloat(v)).Float()
		want := math.Sqrt(v)
		tol := math.Max(want*1e-4, 2.0/float64(One))
		if math.Abs(got-want) > tol {
			t.Errorf("Sqrt(%g) = %g, want %g", v, got, want)
		}
	}
}

func TestSqrtNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sqrt(-1) did not panic")
		}
	}()
	Sqrt(FromInt(-1))
}

// Property: Sqrt(x)² ≈ x over the representable positive range.
func TestQuickSqrtInverse(t *testing.T) {
	f := func(raw uint32) bool {
		x := Fixed(raw)
		r := Sqrt(x)
		back := r.Mul(r)
		diff := back.Sub(x).Abs().Float()
		return diff <= math.Max(1e-3, x.Float()*1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
