package fixed

// Buffer pooling for the crypto hot paths.
//
// The bgv and ahe kernels used to burn most of their per-op cost on
// allocation: every multiplication, encryption, and fold built its scratch
// polynomials fresh (BENCH_kernels.json recorded bgv.Mul at 1.2 MB / 47
// allocs per op before pooling). This file is the shared remedy: SlabPool, a
// sync.Pool of fixed-size uint64 slabs, and Pool[T], a typed sync.Pool of
// scratch structs, which the kernels check out per operation and return on
// exit so steady-state hot loops run at zero (bgv) or near-zero (ahe) heap
// allocations. Both hand out pointers, not values, so a Get/Put round trip
// itself allocates nothing. The pools carry no secrets of their own —
// callers must treat checked-out buffers as uninitialized memory and fully
// overwrite them (Get does not zero) — and no randomness, so the package
// stays in arblint's Unregulated set.
//
// Slab is a named type rather than a bare []uint64 so the arblint
// bigintalias checker can flag pooled buffers that cross an exported API
// boundary without a copy (see tools/arblint/internal/policy.AliasProne): a
// Slab that escapes into a returned ciphertext would be recycled into the
// next operation's scratch and silently corrupt the caller's value.

import "sync"

// Slab is a pooled uint64 buffer. A checked-out slab aliases pool-owned
// memory: it may be sliced and written freely while held, but must never be
// retained, returned across an exported API boundary, or read after Put.
type Slab []uint64

// SlabPool hands out uint64 slabs of one fixed size. The zero value is not
// usable; create pools with NewSlabPool. A SlabPool is safe for concurrent
// use; individual slabs are not.
type SlabPool struct {
	size int
	p    sync.Pool
}

// NewSlabPool returns a pool of slabs of exactly size words.
func NewSlabPool(size int) *SlabPool {
	if size <= 0 {
		panic("fixed: SlabPool size must be positive")
	}
	sp := &SlabPool{size: size}
	sp.p.New = func() any {
		s := make(Slab, size)
		return &s
	}
	return sp
}

// Size returns the word length of the pool's slabs.
func (sp *SlabPool) Size() int { return sp.size }

// Get checks a slab out of the pool. The contents are arbitrary (typically
// a previous holder's scratch); callers must overwrite every word they read.
func (sp *SlabPool) Get() *Slab {
	return sp.p.Get().(*Slab)
}

// Put returns a slab obtained from Get. Putting a slab of the wrong size
// (for example a resliced view) panics rather than poisoning the pool.
func (sp *SlabPool) Put(s *Slab) {
	if s == nil || len(*s) != sp.size {
		panic("fixed: SlabPool.Put of wrong-size slab")
	}
	sp.p.Put(s)
}

// Pool is a typed pool of scratch structs: the bgv multiplication and
// encryption scratch areas (many pre-sliced polynomials that belong
// together) ride through one Pool[T] each instead of one SlabPool per
// buffer. New is called to build a fresh *T when the pool is empty.
type Pool[T any] struct {
	New func() *T
	p   sync.Pool
}

// Get checks a scratch value out of the pool, building one with New if the
// pool is empty. Contents are a previous holder's state; overwrite before
// reading.
func (p *Pool[T]) Get() *T {
	if v := p.p.Get(); v != nil {
		return v.(*T)
	}
	return p.New()
}

// Put returns a scratch value obtained from Get.
func (p *Pool[T]) Put(v *T) { p.p.Put(v) }
