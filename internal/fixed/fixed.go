// Package fixed implements the Q30.16 fixed-point arithmetic that Arboretum
// uses inside MPC programs and noise samplers.
//
// The paper (Section 6) sets the fixpoint length to 30 bits for the integer
// part and 16 bits for the decimal part, and uses base-2 exponentials for the
// exponential mechanism as suggested by Ilvento, which avoids the
// floating-point irregularities described by Mironov. We mirror that layout:
// a Fixed value is a signed 64-bit integer scaled by 2^16.
package fixed

import (
	"fmt"
	"math"
)

// FracBits is the number of fractional bits (the paper's "16 bits of
// precision for the decimal part").
const FracBits = 16

// IntBits is the number of integer bits (the paper's "30 bits for the
// integer part").
const IntBits = 30

// One is the fixed-point representation of 1.
const One Fixed = 1 << FracBits

// Max and Min bound the representable range: ±(2^30 − 2^−16).
const (
	Max Fixed = (1 << (IntBits + FracBits)) - 1
	Min Fixed = -Max
)

// Fixed is a Q30.16 fixed-point number stored in a signed 64-bit integer.
type Fixed int64

// FromInt converts an integer to fixed point. Values outside the
// representable range saturate.
func FromInt(v int64) Fixed {
	return saturate(v << FracBits)
}

// FromFloat converts a float64 to fixed point, rounding to nearest. Values
// outside the representable range saturate; NaN maps to zero.
func FromFloat(v float64) Fixed {
	if math.IsNaN(v) {
		return 0
	}
	scaled := v * float64(One)
	if scaled >= float64(Max) {
		return Max
	}
	if scaled <= float64(Min) {
		return Min
	}
	return Fixed(math.Round(scaled))
}

// FromRatio returns num/den in fixed point. It panics if den is zero.
func FromRatio(num, den int64) Fixed {
	if den == 0 {
		panic("fixed: division by zero in FromRatio")
	}
	return saturate((num << FracBits) / den)
}

// Float converts back to float64.
func (f Fixed) Float() float64 { return float64(f) / float64(One) }

// Int truncates toward zero.
func (f Fixed) Int() int64 { return int64(f) / int64(One) }

// Frac returns the fractional part in [0, 1) for non-negative values.
func (f Fixed) Frac() Fixed { return f - FromInt(f.Int()) }

// Add returns f+g with saturation.
func (f Fixed) Add(g Fixed) Fixed { return saturate(int64(f) + int64(g)) }

// Sub returns f−g with saturation.
func (f Fixed) Sub(g Fixed) Fixed { return saturate(int64(f) - int64(g)) }

// Neg returns −f.
func (f Fixed) Neg() Fixed { return -f }

// Abs returns |f|.
func (f Fixed) Abs() Fixed {
	if f < 0 {
		return -f
	}
	return f
}

// Mul returns f·g with saturation. The product is computed in 128 bits so
// intermediate overflow cannot occur.
func (f Fixed) Mul(g Fixed) Fixed {
	hi, lo := mul64(int64(f), int64(g))
	// Shift the 128-bit product right by FracBits.
	res := int64(uint64(lo)>>FracBits) | hi<<(64-FracBits)
	// Detect overflow: the discarded high bits must be a sign extension.
	wantHi := res >> 63 << (FracBits - 1) >> (63 - FracBits) // all 0s or all 1s
	if hi>>(FracBits-1) != wantHi>>(FracBits-1) {
		if (int64(f) < 0) != (int64(g) < 0) {
			return Min
		}
		return Max
	}
	return saturate(res)
}

// Div returns f/g with saturation. It panics if g is zero.
func (f Fixed) Div(g Fixed) Fixed {
	if g == 0 {
		panic("fixed: division by zero")
	}
	// (f << FracBits) / g, computed in 128 bits.
	hi := int64(f) >> (64 - FracBits)
	lo := int64(f) << FracBits
	q := div128(hi, lo, int64(g))
	return saturate(q)
}

// Cmp returns −1, 0, or +1.
func (f Fixed) Cmp(g Fixed) int {
	switch {
	case f < g:
		return -1
	case f > g:
		return 1
	default:
		return 0
	}
}

// String formats the value with full fractional precision.
func (f Fixed) String() string {
	return fmt.Sprintf("%.6g", f.Float())
}

func saturate(v int64) Fixed {
	if v > int64(Max) {
		return Max
	}
	if v < int64(Min) {
		return Min
	}
	return Fixed(v)
}

// mul64 returns the 128-bit product of two signed 64-bit integers.
func mul64(a, b int64) (hi, lo int64) {
	const mask = 1<<32 - 1
	alo, ahi := uint64(a)&mask, uint64(a)>>32
	blo, bhi := uint64(b)&mask, uint64(b)>>32
	t := alo*bhi + (alo*blo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += ahi * blo
	uhi := ahi*bhi + w2 + w1>>32
	ulo := uint64(a) * uint64(b)
	shi := int64(uhi)
	// Convert unsigned 128-bit product to signed.
	if a < 0 {
		shi -= b
	}
	if b < 0 {
		shi -= a
	}
	return shi, int64(ulo)
}

// div128 divides the signed 128-bit value (hi, lo) by d, returning a 64-bit
// quotient (saturating on overflow).
func div128(hi, lo, d int64) int64 {
	neg := false
	if hi < 0 {
		// Negate the 128-bit numerator.
		lo = -lo
		hi = ^hi
		if lo == 0 {
			hi++
		}
		neg = !neg
	}
	if d < 0 {
		d = -d
		neg = !neg
	}
	uhi, ulo, ud := uint64(hi), uint64(lo), uint64(d)
	if uhi >= ud {
		// Quotient does not fit in 64 bits: saturate.
		if neg {
			return int64(Min)
		}
		return int64(Max)
	}
	q := divu128(uhi, ulo, ud)
	if q > uint64(Max) {
		if neg {
			return int64(Min)
		}
		return int64(Max)
	}
	if neg {
		return -int64(q)
	}
	return int64(q)
}

// divu128 divides the unsigned 128-bit value (hi, lo) by d, hi < d.
// Simple shift-subtract long division; Fixed.Div is not on a hot path.
func divu128(hi, lo, d uint64) uint64 {
	var q uint64
	for i := 0; i < 64; i++ {
		carry := hi >> 63
		hi = hi<<1 | lo>>63
		lo <<= 1
		q <<= 1
		if carry != 0 || hi >= d {
			hi -= d
			q |= 1
		}
	}
	return q
}
