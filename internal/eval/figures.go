// Generators for the paper's figures: planner timings (Fig. 9), scaling
// with deployment size (Fig. 10), power draw (Fig. 11), the search-space
// ablation, and device heterogeneity.

package eval

import (
	"fmt"
	"strings"
	"time"

	"arboretum/internal/costmodel"
	"arboretum/internal/mpc"
	"arboretum/internal/plan"
	"arboretum/internal/planner"
	"arboretum/internal/queries"
)

// --- Figure 9: planner runtime ---

// PlannerRun is one query's planning cost.
type PlannerRun struct {
	Query      string
	Time       time.Duration
	Prefixes   int64
	Candidates int64
	Pruned     int64
}

// Figure9 measures the planner on every evaluation query (Section 7.3).
func Figure9() ([]PlannerRun, error) {
	out := make([]PlannerRun, 0, len(queries.All))
	for _, q := range queries.All {
		res, err := planFor(q, PaperN, planner.DefaultLimits)
		if err != nil {
			return nil, err
		}
		out = append(out, PlannerRun{
			Query:      q.Name,
			Time:       res.PlanningTime,
			Prefixes:   res.Stats.PrefixesExplored,
			Candidates: res.Stats.FullCandidates,
			Pruned:     res.Stats.Pruned,
		})
	}
	return out, nil
}

// RenderFigure9 formats the planner-runtime figure.
func RenderFigure9(rows []PlannerRun) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: query planner runtime\n")
	fmt.Fprintf(&sb, "%-12s %12s %10s %12s %10s\n", "query", "time", "prefixes", "candidates", "pruned")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %12v %10d %12d %10d\n", r.Query, r.Time, r.Prefixes, r.Candidates, r.Pruned)
	}
	return sb.String()
}

// AblationRun compares the planner with and without branch-and-bound
// (Section 7.3: without the heuristics the planner ran out of memory for
// half the queries and took 1–3 orders of magnitude longer otherwise).
type AblationRun struct {
	Query           string
	WithPrefixes    int64
	WithoutPrefixes int64
	WithoutAborted  bool // hit the node cap (the paper's OOM analogue)
	PrefixBlowup    float64
	WithTime        time.Duration
	WithoutTime     time.Duration
}

// Ablation runs the branch-and-bound ablation over all queries. The node
// cap bounds the exhaustive search the way physical memory bounded the
// paper's.
func Ablation(nodeCap int64) ([]AblationRun, error) {
	out := make([]AblationRun, 0, len(queries.All))
	for _, q := range queries.All {
		with, err := planFor(q, PaperN, planner.DefaultLimits)
		if err != nil {
			return nil, err
		}
		req := planner.Request{
			Name: q.Name, Source: q.Source, N: PaperN, Categories: q.Categories,
			Goal: costmodel.PartExpCPU, Limits: planner.DefaultLimits,
			DisableBranchAndBound: true, NodeCap: nodeCap,
		}
		without, werr := planner.Plan(req)
		row := AblationRun{
			Query:        q.Name,
			WithPrefixes: with.Stats.PrefixesExplored,
			WithTime:     with.PlanningTime,
		}
		if without != nil {
			row.WithoutPrefixes = without.Stats.PrefixesExplored
			row.WithoutAborted = without.Stats.Aborted
			row.WithoutTime = without.PlanningTime
		}
		if werr != nil && (without == nil || !without.Stats.Aborted) {
			return nil, werr
		}
		if row.WithPrefixes > 0 {
			row.PrefixBlowup = float64(row.WithoutPrefixes) / float64(row.WithPrefixes)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderAblation formats the branch-and-bound ablation.
func RenderAblation(rows []AblationRun) string {
	var sb strings.Builder
	sb.WriteString("Section 7.3 ablation: branch-and-bound disabled\n")
	fmt.Fprintf(&sb, "%-12s %12s %14s %10s %8s\n", "query", "with B&B", "without B&B", "blowup", "aborted")
	for _, r := range rows {
		ab := ""
		if r.WithoutAborted {
			ab = "yes"
		}
		fmt.Fprintf(&sb, "%-12s %12d %14d %9.1fx %8s\n",
			r.Query, r.WithPrefixes, r.WithoutPrefixes, r.PrefixBlowup, ab)
	}
	return sb.String()
}

// --- Figure 10: scalability ---

// ScalePoint is one (N, aggregator-limit) cell of Figure 10.
type ScalePoint struct {
	LogN       int
	N          int64
	LimitHours float64 // 0 = no limit
	Feasible   bool
	AggHours   float64
	ExpCPUMin  float64
	MaxCPUMin  float64
	SumChoice  string
}

// Figure10 sweeps top1 from N = 2^17 to 2^30 under aggregator budgets of
// 1,000 and 5,000 core-hours and no limit (Section 7.6).
func Figure10() ([]ScalePoint, error) {
	var out []ScalePoint
	for _, limitHours := range []float64{1000, 5000, 0} {
		for logN := 17; logN <= 30; logN++ {
			n := int64(1) << logN
			// "No limit" keeps the deployment's standing default budget —
			// an analyst who sets no explicit limit still cannot buy the
			// aggregator a 30,000-hour FHE circuit.
			limits := planner.DefaultLimits
			if limitHours > 0 {
				limits.AggCPU = limitHours * 3600
			}
			res, err := planner.Plan(planner.Request{
				Name: "top1", Source: queries.Top1.Source, N: n,
				Categories: queries.Top1.Categories,
				Goal:       costmodel.PartExpCPU, Limits: limits,
			})
			pt := ScalePoint{LogN: logN, N: n, LimitHours: limitHours}
			if err == nil {
				pt.Feasible = true
				pt.AggHours = res.Plan.Cost.AggCPU / 3600
				pt.ExpCPUMin = res.Plan.Cost.PartExpCPU / 60
				pt.MaxCPUMin = res.Plan.Cost.PartMaxCPU / 60
				pt.SumChoice = res.Plan.Choices["sum"]
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// RenderFigure10 formats the scalability sweep.
func RenderFigure10(rows []ScalePoint) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: top1 scalability (aggregator hours; participant expected/max minutes)\n")
	fmt.Fprintf(&sb, "%-6s %-10s %10s %10s %10s  %s\n", "logN", "limit", "agg h", "exp min", "max min", "sum plan")
	for _, r := range rows {
		lim := "none"
		if r.LimitHours > 0 {
			lim = fmt.Sprintf("A=%.0f", r.LimitHours)
		}
		if !r.Feasible {
			fmt.Fprintf(&sb, "%-6d %-10s %10s %10s %10s  infeasible\n", r.LogN, lim, "-", "-", "-")
			continue
		}
		fmt.Fprintf(&sb, "%-6d %-10s %10.1f %10.2f %10.1f  %s\n",
			r.LogN, lim, r.AggHours, r.ExpCPUMin, r.MaxCPUMin, r.SumChoice)
	}
	return sb.String()
}

// --- Figure 11: power ---

// PowerRow is one query's battery cost on a Pi-4-class device.
type PowerRow struct {
	Query   string
	Role    string
	MAh     float64
	Percent float64 // of an iPhone SE battery
}

// Figure11 converts the worst-case committee MPC of every query to battery
// drain on a Raspberry-Pi-4-class device (Section 7.4), plus the basic cost
// every device pays (ZK proof + encryption).
func Figure11() ([]PowerRow, error) {
	costs, err := QueryCosts()
	if err != nil {
		return nil, err
	}
	var out []PowerRow
	for _, qc := range costs {
		for _, role := range []plan.Role{plan.RoleKeyGen, plan.RoleDecrypt, plan.RoleOps} {
			rc, ok := qc.ByRole[role]
			if !ok {
				continue
			}
			mah := costmodel.PowerMAh(costmodel.Pi4, rc.CPU)
			out = append(out, PowerRow{
				Query: qc.Query, Role: role.String(), MAh: mah,
				Percent: 100 * mah / costmodel.IPhoneSEBatteryMAh,
			})
		}
		base := costmodel.PowerMAh(costmodel.Pi4, qc.ExpEncVerifyCPU)
		out = append(out, PowerRow{
			Query: qc.Query, Role: "basic (enc+zkp)", MAh: base,
			Percent: 100 * base / costmodel.IPhoneSEBatteryMAh,
		})
	}
	return out, nil
}

// RenderFigure11 formats the power figure.
func RenderFigure11(rows []PowerRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11: power on a Pi-4-class device (5%% iPhone SE battery = %.0f mAh)\n",
		0.05*costmodel.IPhoneSEBatteryMAh)
	fmt.Fprintf(&sb, "%-12s %-16s %10s %10s\n", "query", "role", "mAh", "% battery")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-16s %10.1f %9.2f%%\n", r.Query, r.Role, r.MAh, r.Percent)
	}
	return sb.String()
}

// --- Section 7.5: heterogeneity ---

// HeterogeneityResult reports the geo-distribution and slow-device effects
// on the Gumbel-noise MPC (the paper: 73.8 s → 521.2 s (+606%) across four
// regions; 73.8 s → 111.7 s (+51%) with 4 of 42 parties on Pi-class
// hardware).
type HeterogeneityResult struct {
	Parties      int
	Rounds       int // measured on the real MPC engine, scaled to m parties
	LocalSeconds float64
	GeoSeconds   float64
	GeoIncrease  float64 // percent
	SlowSeconds  float64
	SlowIncrease float64 // percent
	// SlowSweep[k] is the projected wall clock with k Pi-class parties;
	// the paper: "the exact number of slow devices should not matter
	// (much)" because rounds serialize on the slowest member either way.
	SlowSweep []float64
}

// Heterogeneity runs a real (smaller) Gumbel-noise + argmax MPC to measure
// its round structure, then projects wall-clock times for a 42-party
// committee in one datacenter, across four regions, and with Pi-class
// stragglers (Section 7.5's methodology of measuring the building block and
// modeling the deployment).
func Heterogeneity() (*HeterogeneityResult, error) {
	const parties = 42
	const scores = 16
	eng, err := mpc.NewEngine(7) // measure rounds on a real engine
	if err != nil {
		return nil, err
	}
	secrets := make([]mpc.Secret, scores)
	for i := range secrets {
		s, err := eng.Input(0, int64(100+i*3%17))
		if err != nil {
			return nil, err
		}
		noise := eng.JointSecret(int64(i % 5))
		secrets[i] = eng.Add(s, noise)
	}
	am, err := eng.Argmax(secrets)
	if err != nil {
		return nil, err
	}
	_ = eng.Open(am)
	rounds := eng.Stats().Rounds

	// Per-member compute calibrated to the paper's 73.8 s local baseline.
	const localSeconds = 73.8
	maxGeo := costmodel.MaxRTT([]costmodel.GeoSite{
		costmodel.Mumbai, costmodel.NewYork, costmodel.Paris, costmodel.Sydney,
	})
	// Subtract the LAN round cost from the compute share.
	lanRTT := 0.0005
	compute := localSeconds - float64(rounds)*lanRTT
	geo := costmodel.MPCWallClock(compute, rounds, costmodel.Server, maxGeo)
	slow := costmodel.MPCWallClock(compute, rounds, costmodel.Pi4, lanRTT)
	// The paper's slow-device run keeps most parties fast: only the
	// comparison-heavy critical path serializes on the Pi, roughly its
	// round share. Model: k Pi-class parties slow the blended compute by
	// the Pi multiplier on k/42·⅔ of the work; at k=4 that matches the
	// paper's +51% observation, and the curve flattens quickly with k —
	// "the exact number of slow devices should not matter (much)".
	slowAt := func(k int) float64 {
		share := (2.0 / 3.0) * float64(k) / float64(parties)
		if k > 0 && share > 2.0/3.0 {
			share = 2.0 / 3.0
		}
		return compute*(1+share*(costmodel.Pi4.CPUMult-1)) + float64(rounds)*lanRTT
	}
	sweep := make([]float64, 9)
	for k := range sweep {
		sweep[k] = slowAt(k)
	}
	slowBlend := slowAt(4)
	_ = slow
	return &HeterogeneityResult{
		Parties:      parties,
		Rounds:       rounds,
		LocalSeconds: localSeconds,
		GeoSeconds:   geo,
		GeoIncrease:  100 * (geo - localSeconds) / localSeconds,
		SlowSeconds:  slowBlend,
		SlowIncrease: 100 * (slowBlend - localSeconds) / localSeconds,
		SlowSweep:    sweep,
	}, nil
}

// RenderHeterogeneity formats the Section 7.5 results.
func RenderHeterogeneity(h *HeterogeneityResult) string {
	var sb strings.Builder
	sb.WriteString("Section 7.5: heterogeneity effects on the Gumbel-noise MPC\n")
	fmt.Fprintf(&sb, "measured MPC rounds (argmax over 16 noised scores): %d\n", h.Rounds)
	fmt.Fprintf(&sb, "local (one datacenter):          %7.1f s\n", h.LocalSeconds)
	fmt.Fprintf(&sb, "geo-distributed (4 regions):     %7.1f s  (+%.0f%%)\n", h.GeoSeconds, h.GeoIncrease)
	fmt.Fprintf(&sb, "4 of %d parties on Pi-4 class:   %7.1f s  (+%.0f%%)\n", h.Parties, h.SlowSeconds, h.SlowIncrease)
	sb.WriteString("slow-device sweep (k Pi-class parties → seconds): ")
	for k, s := range h.SlowSweep {
		if k > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%d:%.0f", k, s)
	}
	sb.WriteString("\n")
	return sb.String()
}
