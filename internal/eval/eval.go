// Package eval regenerates every table and figure of the paper's evaluation
// (Section 7). Each experiment has one generator returning structured rows
// plus a text renderer; cmd/experiments prints them and bench_test.go wraps
// each in a benchmark. Absolute numbers come from this repository's
// calibrated cost model, so the point of comparison with the paper is the
// *shape*: who wins, by what factor, and where the crossovers fall (see
// EXPERIMENTS.md).
package eval

import (
	"fmt"
	"strings"

	"arboretum/internal/baseline"
	"arboretum/internal/costmodel"
	"arboretum/internal/plan"
	"arboretum/internal/planner"
	"arboretum/internal/queries"
)

// PaperN is the evaluation's deployment size: 2^30 ≈ 10^9 participants.
const PaperN = int64(1) << 30

// planFor plans one evaluation query at the paper's setting.
func planFor(q queries.Query, n int64, limits costmodel.Limits) (*planner.Result, error) {
	return planner.Plan(planner.Request{
		Name:       q.Name,
		Source:     q.Source,
		N:          n,
		Categories: q.Categories,
		Goal:       costmodel.PartExpCPU,
		Limits:     limits,
	})
}

// --- Table 1 ---

// Table1Row is one column of Table 1 (transposed to rows per system).
type Table1Row struct {
	System       string
	AggTime      string // qualitative, as in the paper
	TypBandwidth string
	MaxBandwidth string
	Numerical    bool
	Categorical  string // "Yes", "Limited", "No"
	Contribute   string
	Optimization string
}

// Table1 reproduces the approach comparison for the zip-code query
// (Section 3.2: 10^8 participants, 41,683 categories).
func Table1() ([]Table1Row, error) {
	p := baseline.Params{N: 1e8, Categories: 41683}
	fhe := baseline.EstimateFHE(p)
	a2a := baseline.EstimateAllToAll(p)
	boe := baseline.EstimateBoehler(p)
	orc := baseline.EstimateOrchard(p)
	res, err := planner.Plan(planner.Request{
		Name: "zipcode", Source: queries.Top1.Source, N: p.N,
		Categories: p.Categories, Goal: costmodel.PartExpCPU,
		Limits: planner.DefaultLimits,
	})
	if err != nil {
		return nil, err
	}
	arb := baseline.ArboretumRow(res.Plan)

	human := func(b float64) string {
		switch {
		case b >= 1e15:
			return fmt.Sprintf("%.0f PB", b/1e15)
		case b >= 1e12:
			return fmt.Sprintf("%.1f TB", b/1e12)
		case b >= 1e9:
			return fmt.Sprintf("%.1f GB", b/1e9)
		case b >= 1e6:
			return fmt.Sprintf("%.1f MB", b/1e6)
		default:
			return fmt.Sprintf("%.0f kB", b/1e3)
		}
	}
	hours := func(s float64) string {
		switch {
		case s >= 365*24*3600:
			return fmt.Sprintf("%.0f years", s/(365*24*3600))
		case s >= 3600:
			return fmt.Sprintf("%.1f h", s/3600)
		default:
			return fmt.Sprintf("%.0f s", s)
		}
	}
	return []Table1Row{
		{System: "FHE", AggTime: hours(fhe.Cost.AggCPU),
			TypBandwidth: human(fhe.Cost.PartExpBytes), MaxBandwidth: human(fhe.Cost.PartMaxBytes),
			Numerical: true, Categorical: "Yes", Contribute: "No", Optimization: "No"},
		{System: "All-to-all MPC", AggTime: "N/A",
			TypBandwidth: human(a2a.Cost.PartExpBytes), MaxBandwidth: human(a2a.Cost.PartMaxBytes),
			Numerical: true, Categorical: "Yes", Contribute: "Yes", Optimization: "No"},
		{System: "Böhler [14]", AggTime: "N/A",
			TypBandwidth: human(boe.Cost.PartExpBytes), MaxBandwidth: human(boe.Cost.PartMaxBytes),
			Numerical: true, Categorical: "Yes", Contribute: "1 committee", Optimization: "No"},
		{System: "Orchard [54]", AggTime: hours(orc.Cost.AggCPU),
			TypBandwidth: human(orc.Cost.PartExpBytes), MaxBandwidth: human(orc.Cost.PartMaxBytes),
			Numerical: true, Categorical: "Limited", Contribute: "1 committee", Optimization: "No"},
		{System: "Arboretum", AggTime: hours(arb.Cost.AggCPU),
			TypBandwidth: human(arb.Cost.PartExpBytes), MaxBandwidth: human(arb.Cost.PartMaxBytes),
			Numerical: true, Categorical: "Yes", Contribute: "Yes", Optimization: "Automatic"},
	}, nil
}

// RenderTable1 formats Table 1 as text.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-10s %-12s %-12s %-6s %-11s %-12s %s\n",
		"System", "Agg time", "Typ BW", "Worst BW", "Num", "Categorical", "Contribute", "Optimization")
	for _, r := range rows {
		num := "Yes"
		if !r.Numerical {
			num = "No"
		}
		fmt.Fprintf(&sb, "%-16s %-10s %-12s %-12s %-6s %-11s %-12s %s\n",
			r.System, r.AggTime, r.TypBandwidth, r.MaxBandwidth, num, r.Categorical,
			r.Contribute, r.Optimization)
	}
	return sb.String()
}

// --- Table 2 ---

// Table2Row is one supported query.
type Table2Row struct {
	Query  string
	Action string
	From   string
	Lines  int
}

// Table2 lists the supported queries with their line counts.
func Table2() []Table2Row {
	rows := make([]Table2Row, 0, len(queries.All))
	for _, q := range queries.All {
		rows = append(rows, Table2Row{Query: q.Name, Action: q.Action, From: q.From, Lines: q.Lines()})
	}
	return rows
}

// RenderTable2 formats Table 2 as text.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-28s %-26s %s\n", "Query", "Action", "From", "Lines")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-28s %-26s %d\n", r.Query, r.Action, r.From, r.Lines)
	}
	return sb.String()
}

// --- Figures 6-8: per-query costs ---

// QueryCost is one query's planned cost with the figure-oriented splits.
type QueryCost struct {
	Query string
	// Figure 6: expected per-participant cost, split as in the stacked bars.
	ExpEncVerifyCPU   float64 // "Encryption + Verification"
	ExpMPCCPU         float64 // "MPC" (committee expectation)
	ExpEncVerifyBytes float64
	ExpMPCBytes       float64
	// Figure 7: per-member worst case by committee type.
	ByRole map[plan.Role]plan.RoleCost
	// Figure 8: aggregator.
	AggForwardBytes float64
	AggOpsCPU       float64
	AggVerifyCPU    float64
	// Totals and structure.
	Cost           costmodel.Vector
	CommitteeCount int
	CommitteeSize  int
	ServingFrac    float64
	// Baseline bars for the adapted queries (nil otherwise).
	Baseline     *baseline.Estimate
	BaselineName string
}

// QueryCosts plans every evaluation query at the paper's scale and attaches
// the original systems' bars for cms (Honeycrisp), bayes and k-medians
// (Orchard) — the extra columns in Figures 6–8.
func QueryCosts() ([]QueryCost, error) {
	out := make([]QueryCost, 0, len(queries.All))
	for _, q := range queries.All {
		res, err := planFor(q, PaperN, planner.DefaultLimits)
		if err != nil {
			return nil, fmt.Errorf("planning %s: %w", q.Name, err)
		}
		p := res.Plan
		qc := QueryCost{
			Query:             q.Name,
			ExpEncVerifyCPU:   p.BaseCPU,
			ExpMPCCPU:         p.Cost.PartExpCPU - p.BaseCPU,
			ExpEncVerifyBytes: p.BaseBytes,
			ExpMPCBytes:       p.Cost.PartExpBytes - p.BaseBytes,
			ByRole:            p.ByRole,
			AggForwardBytes:   p.AggForwardBytes,
			AggOpsCPU:         p.AggOpsCPU,
			AggVerifyCPU:      p.AggVerifyCPU,
			Cost:              p.Cost,
			CommitteeCount:    p.CommitteeCount,
			CommitteeSize:     p.CommitteeSize,
			ServingFrac:       float64(p.CommitteeCount*p.CommitteeSize) / float64(PaperN),
		}
		switch q.Name {
		case "cms":
			e := baseline.EstimateHoneycrisp(baseline.Params{N: PaperN, Categories: q.Categories, Committee: p.CommitteeSize})
			qc.Baseline, qc.BaselineName = &e, "cms Honeycr."
		case "bayes":
			e := baseline.EstimateOrchard(baseline.Params{N: PaperN, Categories: q.Categories, Committee: p.CommitteeSize})
			qc.Baseline, qc.BaselineName = &e, "bayes Orchard"
		case "k-medians":
			e := baseline.EstimateOrchard(baseline.Params{N: PaperN, Categories: q.Categories, Committee: p.CommitteeSize})
			qc.Baseline, qc.BaselineName = &e, "k medians Orchard"
		}
		out = append(out, qc)
	}
	return out, nil
}

// RenderFigure6 formats the expected per-participant costs (Figure 6a+6b).
func RenderFigure6(rows []QueryCost) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: expected per-participant cost (bandwidth MB / computation s)\n")
	fmt.Fprintf(&sb, "%-18s %12s %8s %14s %8s\n", "query", "enc+verify MB", "MPC MB", "enc+verify s", "MPC s")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %12.2f %8.3f %14.1f %8.2f\n",
			r.Query, r.ExpEncVerifyBytes/1e6, r.ExpMPCBytes/1e6, r.ExpEncVerifyCPU, r.ExpMPCCPU)
		if r.Baseline != nil {
			fmt.Fprintf(&sb, "%-18s %12.2f %8s %14.1f %8s\n",
				r.BaselineName, r.Baseline.Cost.PartExpBytes/1e6, "-", r.Baseline.Cost.PartExpCPU, "-")
		}
	}
	return sb.String()
}

// RenderFigure7 formats committee-member worst cases by committee type.
func RenderFigure7(rows []QueryCost) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: committee-member cost by committee type (traffic GB / computation min)\n")
	fmt.Fprintf(&sb, "%-18s %-12s %10s %10s %8s\n", "query", "role", "GB", "min", "count")
	for _, r := range rows {
		for _, role := range []plan.Role{plan.RoleKeyGen, plan.RoleDecrypt, plan.RoleOps} {
			rc, ok := r.ByRole[role]
			if !ok {
				continue
			}
			fmt.Fprintf(&sb, "%-18s %-12s %10.2f %10.1f %8d\n",
				r.Query, role.String(), rc.Bytes/1e9, rc.CPU/60, rc.Count)
		}
		if r.Baseline != nil {
			fmt.Fprintf(&sb, "%-18s %-12s %10.2f %10.1f %8d\n",
				r.BaselineName, "single", r.Baseline.MemberBytes/1e9, r.Baseline.MemberCPU/60, 1)
		}
	}
	return sb.String()
}

// RenderFigure8 formats the aggregator costs (1,000 cores for the hours
// column, as in Figure 8b).
func RenderFigure8(rows []QueryCost) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: aggregator traffic (TB) and computation (hours on 1,000 cores)\n")
	fmt.Fprintf(&sb, "%-18s %12s %12s %12s %12s\n", "query", "forward TB", "total TB", "ops h", "verify h")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %12.1f %12.1f %12.2f %12.2f\n",
			r.Query, r.AggForwardBytes/1e12, r.Cost.AggBytes/1e12,
			r.AggOpsCPU/3600/1000, r.AggVerifyCPU/3600/1000)
		if r.Baseline != nil {
			fmt.Fprintf(&sb, "%-18s %12s %12.1f %12.2f %12s\n",
				r.BaselineName, "-", r.Baseline.Cost.AggBytes/1e12,
				r.Baseline.Cost.AggCPU/3600/1000, "-")
		}
	}
	return sb.String()
}
