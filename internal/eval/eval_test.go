package eval

import (
	"strings"
	"testing"

	"arboretum/internal/plan"
)

func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	// FHE takes years; Arboretum takes hours.
	if !strings.Contains(byName["FHE"].AggTime, "year") {
		t.Errorf("FHE agg time = %s, want years", byName["FHE"].AggTime)
	}
	if !strings.Contains(byName["Arboretum"].AggTime, "h") {
		t.Errorf("Arboretum agg time = %s, want hours", byName["Arboretum"].AggTime)
	}
	// All-to-all's typical bandwidth is catastrophic; Arboretum's is MBs.
	if !strings.Contains(byName["All-to-all MPC"].TypBandwidth, "TB") &&
		!strings.Contains(byName["All-to-all MPC"].TypBandwidth, "PB") {
		t.Errorf("all-to-all bandwidth = %s", byName["All-to-all MPC"].TypBandwidth)
	}
	if !strings.Contains(byName["Arboretum"].TypBandwidth, "MB") {
		t.Errorf("Arboretum bandwidth = %s, want MBs", byName["Arboretum"].TypBandwidth)
	}
	// Orchard's categorical support is limited; Arboretum's automatic
	// optimization is the distinguishing row.
	if byName["Orchard [54]"].Categorical != "Limited" {
		t.Error("Orchard categorical should be Limited")
	}
	if byName["Arboretum"].Optimization != "Automatic" {
		t.Error("Arboretum optimization should be Automatic")
	}
	if RenderTable1(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2()
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	if rows[0].Query != "top1" || rows[0].Lines != 3 {
		t.Errorf("first row = %+v, want top1 with 3 lines", rows[0])
	}
	text := RenderTable2(rows)
	for _, q := range []string{"top1", "median", "k-medians"} {
		if !strings.Contains(text, q) {
			t.Errorf("rendering missing %s", q)
		}
	}
}

// Figures 6-8 shape assertions (the paper's headline comparisons).
func TestQueryCostsShape(t *testing.T) {
	rows, err := QueryCosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]QueryCost{}
	for _, r := range rows {
		byName[r.Query] = r
	}
	// Figure 6: EM queries cost more than Laplace queries; topK tops the
	// chart; expected costs stay in a usable band.
	top1, topK, cms := byName["top1"], byName["topK"], byName["cms"]
	if top1.Cost.PartExpCPU <= cms.Cost.PartExpCPU {
		t.Error("top1 should cost more than cms in expectation")
	}
	if topK.Cost.PartExpCPU <= top1.Cost.PartExpCPU {
		t.Error("topK should be the most expensive query")
	}
	for _, r := range rows {
		if r.Cost.PartExpCPU < 1 || r.Cost.PartExpCPU > 200 {
			t.Errorf("%s expected CPU %.1f s outside the plausible band", r.Query, r.Cost.PartExpCPU)
		}
	}
	// Figure 7: keygen dominates committee CPU everywhere, and no other
	// committee type's traffic strays far above it.
	for _, r := range rows {
		kg, ok := r.ByRole[plan.RoleKeyGen]
		if !ok {
			t.Errorf("%s has no keygen committee", r.Query)
			continue
		}
		for role, rc := range r.ByRole {
			if rc.CPU > kg.CPU {
				t.Errorf("%s: %v member CPU %.3g exceeds keygen %.3g", r.Query, role, rc.CPU, kg.CPU)
			}
			if rc.Bytes > 2*kg.Bytes {
				t.Errorf("%s: %v member bytes %.2g far above keygen %.2g", r.Query, role, rc.Bytes, kg.Bytes)
			}
		}
	}
	// Committee structure: EM queries use far more committees; the serving
	// fraction stays tiny (paper: 0.00022%–0.49%).
	if topK.CommitteeCount < 20*cms.CommitteeCount {
		t.Errorf("topK committees %d vs cms %d: EM should dwarf Laplace",
			topK.CommitteeCount, cms.CommitteeCount)
	}
	for _, r := range rows {
		if r.ServingFrac <= 0 || r.ServingFrac > 0.02 {
			t.Errorf("%s serving fraction %g outside (0, 2%%]", r.Query, r.ServingFrac)
		}
	}
	// Figure 8: the aggregator forwards more for EM queries.
	if topK.AggForwardBytes <= cms.AggForwardBytes {
		t.Error("topK should make the aggregator forward more than cms")
	}
	// The baseline bars exist for the three adapted queries.
	for _, name := range []string{"cms", "bayes", "k-medians"} {
		if byName[name].Baseline == nil {
			t.Errorf("%s has no original-system bar", name)
		}
	}
	// Orchard's expected costs are near Arboretum's for the adapted queries
	// (the paper: "almost identical in expectation").
	b := byName["bayes"]
	ratio := b.Cost.PartExpCPU / b.Baseline.Cost.PartExpCPU
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("bayes Arboretum/Orchard expected-cost ratio %g, want ~1", ratio)
	}
	for _, render := range []string{RenderFigure6(rows), RenderFigure7(rows), RenderFigure8(rows)} {
		if render == "" {
			t.Error("empty figure rendering")
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	rows, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]PlannerRun{}
	for _, r := range rows {
		byName[r.Query] = r
		if r.Prefixes <= 0 || r.Candidates <= 0 {
			t.Errorf("%s: empty search stats %+v", r.Query, r)
		}
	}
	// The paper: planning time varies widely; complex queries (median)
	// explore far more prefixes than trivial ones (hypotest).
	if byName["median"].Prefixes < 10*byName["hypotest"].Prefixes {
		t.Errorf("median prefixes %d should dwarf hypotest %d",
			byName["median"].Prefixes, byName["hypotest"].Prefixes)
	}
	if RenderFigure9(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestAblationShape(t *testing.T) {
	rows, err := Ablation(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	blowups := 0
	for _, r := range rows {
		if r.WithoutAborted {
			blowups++ // the paper's OOM analogue
			continue
		}
		if r.WithoutPrefixes < r.WithPrefixes {
			t.Errorf("%s: exhaustive search explored fewer prefixes", r.Query)
		}
	}
	// At least the complex queries must blow up or explore much more.
	anyBig := blowups > 0
	for _, r := range rows {
		if r.PrefixBlowup > 3 {
			anyBig = true
		}
	}
	if !anyBig {
		t.Error("disabling branch-and-bound had no effect on any query")
	}
	if RenderAblation(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int]ScalePoint{} // {logN, limit bucket}
	limKey := func(h float64) int {
		switch h {
		case 1000:
			return 1
		case 5000:
			return 2
		default:
			return 0
		}
	}
	for _, r := range rows {
		byKey[[2]int{r.LogN, limKey(r.LimitHours)}] = r
	}
	// No limit: aggregator cost grows with N; expected participant cost
	// falls; max cost stays flat (Section 7.6's pattern).
	small := byKey[[2]int{18, 0}]
	big := byKey[[2]int{30, 0}]
	if !small.Feasible || !big.Feasible {
		t.Fatal("no-limit points must be feasible")
	}
	if big.AggHours <= small.AggHours {
		t.Error("aggregator cost should grow with N")
	}
	if big.ExpCPUMin >= small.ExpCPUMin {
		t.Error("expected participant cost should fall with N (committee odds shrink)")
	}
	if big.MaxCPUMin < small.MaxCPUMin*0.5 || big.MaxCPUMin > small.MaxCPUMin*2 {
		t.Errorf("max participant cost should stay ~constant: %g vs %g",
			small.MaxCPUMin, big.MaxCPUMin)
	}
	// A=1000: feasible at 2^28, infeasible beyond (the red line stops).
	if !byKey[[2]int{28, 1}].Feasible {
		t.Error("A=1000 should still be feasible at 2^28")
	}
	if byKey[[2]int{30, 1}].Feasible {
		t.Error("A=1000 should be infeasible at 2^30 (ZKP checks alone exceed it)")
	}
	// Under a binding limit the planner outsources the sum, raising the
	// participants' expected cost relative to no-limit at the same N.
	lim5k := byKey[[2]int{30, 2}]
	if !lim5k.Feasible {
		t.Fatal("A=5000 at 2^30 should be feasible")
	}
	if lim5k.SumChoice == "aggregator-loop" && big.SumChoice == "aggregator-loop" &&
		lim5k.ExpCPUMin < big.ExpCPUMin {
		t.Error("limited plan should not be cheaper for participants")
	}
	if RenderFigure10(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestFigure11Shape(t *testing.T) {
	rows, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no power rows")
	}
	budget := 0.05 * 1624.0
	for _, r := range rows {
		if r.MAh < 0 {
			t.Errorf("%s/%s negative power", r.Query, r.Role)
		}
		// The paper: below 5% of an iPhone SE battery for all queries.
		if r.MAh > budget {
			t.Errorf("%s/%s uses %.1f mAh, above the 5%% battery line (%.0f)",
				r.Query, r.Role, r.MAh, budget)
		}
	}
	if RenderFigure11(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestHeterogeneityShape(t *testing.T) {
	h, err := Heterogeneity()
	if err != nil {
		t.Fatal(err)
	}
	if h.Rounds <= 0 {
		t.Fatal("no measured rounds")
	}
	// Geo-distribution blows up round-bound MPCs by several hundred percent
	// (the paper: +606%); slow devices add tens of percent (+51%).
	if h.GeoIncrease < 100 {
		t.Errorf("geo increase %.0f%%, want several hundred percent", h.GeoIncrease)
	}
	if h.SlowIncrease < 20 || h.SlowIncrease > 120 {
		t.Errorf("slow-device increase %.0f%%, want tens of percent", h.SlowIncrease)
	}
	if RenderHeterogeneity(h) == "" {
		t.Error("empty rendering")
	}
}

func TestDesignAblations(t *testing.T) {
	rows, err := DesignAblations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	byChoice := map[string]DesignRow{}
	for _, r := range rows {
		byChoice[r.Dimension+"/"+r.Choice] = r
		// FHE exponentiation of 2^15 encrypted scores is the one alternative
		// that genuinely cannot fit any reasonable aggregator budget —
		// Section 3.3's point about the exponential mechanism under FHE.
		if r.Dimension == "em" && r.Choice == "exponentiate-fhe" {
			if r.Feasible {
				t.Error("FHE exponentiation should be infeasible under default limits")
			}
			continue
		}
		if !r.Feasible {
			t.Errorf("%s=%s infeasible", r.Dimension, r.Choice)
		}
	}
	// The sum tradeoff (Section 4.3): the aggregator loop is cheapest for
	// participants; device trees relieve the aggregator at participant cost.
	loop := byChoice["sum/aggregator-loop"]
	tree := byChoice["sum/device-tree-fanout-8"]
	if tree.AggCoreHours >= loop.AggCoreHours {
		t.Error("a device tree should relieve the aggregator")
	}
	if tree.ExpCPU < loop.ExpCPU {
		t.Error("a device tree should cost participants more in expectation")
	}
	// The em tradeoff: both MPC variants work; their costs are comparable.
	mpcExp := byChoice["em/exponentiate-mpc"]
	gum := byChoice["em/gumbel"]
	if !mpcExp.Feasible || !gum.Feasible {
		t.Fatal("both MPC em variants should be feasible")
	}
	if mpcExp.ExpCPU < gum.ExpCPU/3 || mpcExp.ExpCPU > gum.ExpCPU*3 {
		t.Errorf("the two MPC em variants should be in the same cost class: %g vs %g",
			mpcExp.ExpCPU, gum.ExpCPU)
	}
	// The noising-slice tradeoff: smaller slices → more committees.
	s1 := byChoice["noise/committee-slice-1"]
	s64 := byChoice["noise/committee-slice-64"]
	if s1.Committees <= s64.Committees {
		t.Error("per-value noising should use more committees than coarse slicing")
	}
	if RenderDesignAblations(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestCSVExports(t *testing.T) {
	costs, err := QueryCosts()
	if err != nil {
		t.Fatal(err)
	}
	csvData, err := CSVQueryCosts(costs)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvData), "\n")
	if len(lines) != 11 { // header + 10 queries
		t.Errorf("query_costs.csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "query,") {
		t.Errorf("bad header: %s", lines[0])
	}
	p9, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if csvData, err := CSVFigure9(p9); err != nil || !strings.Contains(csvData, "median") {
		t.Errorf("figure9 csv: %v", err)
	}
	p10, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if csvData, err := CSVFigure10(p10); err != nil || !strings.Contains(csvData, "infeasible") && !strings.Contains(csvData, "false") {
		t.Errorf("figure10 csv should mark infeasible points: %v", err)
	}
	p11, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if csvData, err := CSVFigure11(p11); err != nil || !strings.Contains(csvData, "keygen") {
		t.Errorf("figure11 csv: %v", err)
	}
}
