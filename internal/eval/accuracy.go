// Accuracy-versus-epsilon trials: repeated end-to-end runs per ε on small
// simulated deployments, reporting how often the DP answer matches the
// true answer.

package eval

import (
	"fmt"
	"strings"

	"arboretum/internal/mechanism"
	"arboretum/internal/runtime"
)

// AccuracyRow reports the utility of the exponential mechanism at one ε:
// how often the end-to-end system returns the true most-frequent category.
// Not a paper figure (the paper's guarantees are analytic), but the utility
// curve is what an analyst actually trades ε against, and measuring it on
// real executions exercises the whole pipeline.
type AccuracyRow struct {
	Epsilon float64
	Trials  int
	Correct int
	HitRate float64
	Variant mechanism.EMVariant
}

// Accuracy sweeps ε for the top1 query on deployments where the true mode
// leads by a fixed margin, measuring the hit rate end to end.
func Accuracy(trialsPerEps int) ([]AccuracyRow, error) {
	const (
		devices    = 64
		categories = 8
		mode       = 5
	)
	data := func(i int) int {
		if i%2 == 0 {
			return mode // margin: 32 + 4 vs ~4 per other category
		}
		return i % categories
	}
	var rows []AccuracyRow
	for _, eps := range []float64{0.05, 0.5, 2.0} {
		row := AccuracyRow{Epsilon: eps, Trials: trialsPerEps, Variant: mechanism.EMGumbel}
		for trial := 0; trial < trialsPerEps; trial++ {
			d, err := runtime.NewDeployment(runtime.Config{
				N: devices, Categories: categories, CommitteeSize: 5,
				Seed: int64(trial)*31 + int64(eps*1000), BudgetEpsilon: 1e9,
				Data: data,
			})
			if err != nil {
				return nil, err
			}
			src := fmt.Sprintf("aggr = sum(db);\nresult = em(aggr, %g);\noutput(result);", eps)
			res, err := d.Run(src, runtime.RunOptions{})
			if err != nil {
				return nil, err
			}
			if res.Outputs[0].Int() == mode {
				row.Correct++
			}
		}
		row.HitRate = float64(row.Correct) / float64(trialsPerEps)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAccuracy formats the utility curve.
func RenderAccuracy(rows []AccuracyRow) string {
	var sb strings.Builder
	sb.WriteString("Utility of top1 vs ε (end-to-end, 64 devices, mode margin ~32)\n")
	fmt.Fprintf(&sb, "%-8s %8s %8s %8s\n", "epsilon", "trials", "correct", "hit rate")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8g %8d %8d %7.0f%%\n", r.Epsilon, r.Trials, r.Correct, 100*r.HitRate)
	}
	return sb.String()
}
