// Cross-validation of the cost model: planned (predicted) costs versus
// costs measured by actually executing each query on a simulated
// deployment.

package eval

import (
	"fmt"
	"strings"

	"arboretum/internal/mechanism"
	"arboretum/internal/runtime"
)

// ValidationRow compares the cost model's predicted operation count for one
// committee program against the count measured on a real execution — the
// analogue of the paper's cost-model validation data (Section 6: "We include
// validation data for our model in [44, §C]"). Operation counts are the
// model's structural backbone: if the predicted comparison counts match the
// executed protocol, the per-operation constants carry the rest.
type ValidationRow struct {
	Program   string
	Predicted int
	Measured  int
}

// Match reports whether measured is within tolerance of predicted.
func (r ValidationRow) Match() bool {
	d := r.Measured - r.Predicted
	if d < 0 {
		d = -d
	}
	// Exact for the tournament counts; a couple of slack comparisons for
	// protocols with data-dependent clamping.
	return d <= r.Predicted/8+1
}

// Validate runs the core committee programs on real deployments and counts
// the comparison protocols they execute.
func Validate() ([]ValidationRow, error) {
	const categories = 8
	run := func(src string, variant mechanism.EMVariant, seed int64) (int, error) {
		d, err := runtime.NewDeployment(runtime.Config{
			N: 64, Categories: categories, CommitteeSize: 5, Seed: seed,
			BudgetEpsilon: 1e9,
			Data:          func(i int) int { return i % categories },
		})
		if err != nil {
			return 0, err
		}
		if _, err := d.Run(src, runtime.RunOptions{EMVariant: variant}); err != nil {
			return 0, err
		}
		return d.Metrics.MPCComparisons, nil
	}

	var rows []ValidationRow
	// Gumbel argmax over C scores: a tournament needs exactly C−1
	// comparisons, independent of fanout.
	top1 := "aggr = sum(db);\nresult = em(aggr, 2.0);\noutput(result);"
	m, err := run(top1, mechanism.EMGumbel, 1)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ValidationRow{
		Program: "em(gumbel), C=8: argmax tournament", Predicted: categories - 1, Measured: m,
	})
	// Exponentiate-select: max tournament (C−1) + one sign test per weight
	// (C) + one CDF comparison per category (C) = 3C−1.
	m, err = run(top1, mechanism.EMExponentiate, 2)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ValidationRow{
		Program: "em(exponentiate), C=8: max + signs + CDF scan", Predicted: 3*categories - 1, Measured: m,
	})
	// top-k peeling: k rounds of C−1 comparisons.
	topk := "aggr = sum(db);\nbest = topk(aggr, 3, 2.0);\noutput(best[0]);"
	m, err = run(topk, mechanism.EMGumbel, 3)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ValidationRow{
		Program: "topk(3), C=8: 3 peeling rounds", Predicted: 3 * (categories - 1), Measured: m,
	})
	// Laplace noising never compares.
	lap := "aggr = sum(db);\nnoised = laplace(aggr[0], 2.0);\noutput(declassify(noised));"
	m, err = run(lap, mechanism.EMGumbel, 4)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ValidationRow{
		Program: "laplace: no comparisons", Predicted: 0, Measured: m,
	})
	return rows, nil
}

// RenderValidation formats the validation table.
func RenderValidation(rows []ValidationRow) string {
	var sb strings.Builder
	sb.WriteString("Cost-model validation: predicted vs. measured MPC comparisons\n")
	fmt.Fprintf(&sb, "%-50s %10s %10s %7s\n", "committee program", "predicted", "measured", "match")
	for _, r := range rows {
		ok := "yes"
		if !r.Match() {
			ok = "NO"
		}
		fmt.Fprintf(&sb, "%-50s %10d %10d %7s\n", r.Program, r.Predicted, r.Measured, ok)
	}
	return sb.String()
}
