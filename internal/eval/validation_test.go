package eval

import "testing"

func TestValidationMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs real deployments")
	}
	rows, err := Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Match() {
			t.Errorf("%s: predicted %d, measured %d", r.Program, r.Predicted, r.Measured)
		}
	}
	if RenderValidation(rows) == "" {
		t.Error("empty rendering")
	}
}

// The utility curve must be monotone in ε: more budget, better answers; at
// large ε the system is near-deterministic.
func TestAccuracyMonotoneInEpsilon(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy sweep runs real deployments")
	}
	rows, err := Accuracy(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[2].HitRate < rows[0].HitRate {
		t.Errorf("hit rate fell with ε: %v", rows)
	}
	if rows[2].HitRate < 0.99 {
		t.Errorf("ε=2 over a 32-vote margin should be near-certain: %v", rows[2])
	}
	if RenderAccuracy(rows) == "" {
		t.Error("empty rendering")
	}
}
