// CSV renderers: every generator's rows as machine-readable files for
// cmd/experiments -out, one column set per table/figure.

package eval

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"arboretum/internal/plan"
)

// CSV exports let the figures be re-plotted outside Go. Each experiment's
// rows serialize to one file; cmd/experiments -out <dir> writes them all.

func writeCSV(header []string, rows [][]string) (string, error) {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.Write(header); err != nil {
		return "", err
	}
	if err := w.WriteAll(rows); err != nil {
		return "", err
	}
	w.Flush()
	return sb.String(), w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func d(v int64) string   { return strconv.FormatInt(v, 10) }

// CSVQueryCosts serializes the Figure 6–8 data.
func CSVQueryCosts(rows []QueryCost) (string, error) {
	header := []string{
		"query", "exp_encverify_cpu_s", "exp_mpc_cpu_s",
		"exp_encverify_bytes", "exp_mpc_bytes",
		"agg_forward_bytes", "agg_ops_cpu_s", "agg_verify_cpu_s",
		"committees", "committee_size", "serving_fraction",
		"keygen_member_bytes", "decrypt_member_bytes", "ops_member_bytes",
		"keygen_member_cpu_s", "decrypt_member_cpu_s", "ops_member_cpu_s",
	}
	var out [][]string
	for _, r := range rows {
		role := func(ro plan.Role) plan.RoleCost { return r.ByRole[ro] }
		out = append(out, []string{
			r.Query,
			f(r.ExpEncVerifyCPU), f(r.ExpMPCCPU),
			f(r.ExpEncVerifyBytes), f(r.ExpMPCBytes),
			f(r.AggForwardBytes), f(r.AggOpsCPU), f(r.AggVerifyCPU),
			d(int64(r.CommitteeCount)), d(int64(r.CommitteeSize)), f(r.ServingFrac),
			f(role(plan.RoleKeyGen).Bytes), f(role(plan.RoleDecrypt).Bytes), f(role(plan.RoleOps).Bytes),
			f(role(plan.RoleKeyGen).CPU), f(role(plan.RoleDecrypt).CPU), f(role(plan.RoleOps).CPU),
		})
	}
	return writeCSV(header, out)
}

// CSVFigure9 serializes the planner-runtime data.
func CSVFigure9(rows []PlannerRun) (string, error) {
	header := []string{"query", "time_ns", "prefixes", "candidates", "pruned"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Query, d(r.Time.Nanoseconds()), d(r.Prefixes), d(r.Candidates), d(r.Pruned),
		})
	}
	return writeCSV(header, out)
}

// CSVFigure10 serializes the scalability sweep.
func CSVFigure10(rows []ScalePoint) (string, error) {
	header := []string{"logN", "limit_hours", "feasible", "agg_hours", "exp_cpu_min", "max_cpu_min", "sum_choice"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			d(int64(r.LogN)), f(r.LimitHours), fmt.Sprintf("%t", r.Feasible),
			f(r.AggHours), f(r.ExpCPUMin), f(r.MaxCPUMin), r.SumChoice,
		})
	}
	return writeCSV(header, out)
}

// CSVFigure11 serializes the power data.
func CSVFigure11(rows []PowerRow) (string, error) {
	header := []string{"query", "role", "mah", "battery_percent"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Query, r.Role, f(r.MAh), f(r.Percent)})
	}
	return writeCSV(header, out)
}
