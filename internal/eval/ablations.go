// Design ablations (the "what did each planner idea buy" table): plan each
// evaluation query with planner features switched off one at a time and
// compare costs against the full planner.

package eval

import (
	"fmt"
	"strings"

	"arboretum/internal/costmodel"
	"arboretum/internal/planner"
	"arboretum/internal/queries"
)

// DesignRow prices one pinned design choice at deployment scale — the
// ablations behind the planner's decisions: how much each alternative
// implementation of an operator actually costs (Section 4.3's tradeoffs,
// e.g. "larger degrees will require fewer committees ... lower degrees
// require each committee to do less work").
type DesignRow struct {
	Dimension string // which operator is pinned
	Choice    string // the pinned implementation (prefix)
	Chosen    string // the full choice the search settled on
	Feasible  bool

	AggCoreHours float64
	ExpCPU       float64 // expected participant seconds
	ExpMB        float64
	MaxCPU       float64 // worst-case participant seconds
	MaxGB        float64
	Committees   int
}

// DesignAblations prices the main alternatives for the sum operator, the em
// variant, and the Laplace noising slice width, with everything else free.
func DesignAblations() ([]DesignRow, error) {
	var rows []DesignRow
	pin := func(q queries.Query, dim, prefix string) error {
		res, err := planner.Plan(planner.Request{
			Name: q.Name, Source: q.Source, N: PaperN, Categories: q.Categories,
			Goal: costmodel.PartExpCPU, Limits: planner.DefaultLimits,
			ForceChoices: map[string]string{dim: prefix},
		})
		row := DesignRow{Dimension: dim, Choice: prefix}
		if err == nil {
			p := res.Plan
			row.Feasible = true
			row.Chosen = p.Choices[dim]
			row.AggCoreHours = p.Cost.AggCPU / 3600
			row.ExpCPU = p.Cost.PartExpCPU
			row.ExpMB = p.Cost.PartExpBytes / 1e6
			row.MaxCPU = p.Cost.PartMaxCPU
			row.MaxGB = p.Cost.PartMaxBytes / 1e9
			row.Committees = p.CommitteeCount
		}
		rows = append(rows, row)
		return nil
	}
	// Sum: the aggregator loop vs. device trees of different fanouts
	// (Section 4.3's first example of operator instantiation).
	for _, choice := range []string{
		"aggregator-loop", "device-tree-fanout-2", "device-tree-fanout-8", "device-tree-fanout-64",
	} {
		if err := pin(queries.Top1, "sum", choice); err != nil {
			return nil, err
		}
	}
	// em: the two instantiations of Figure 4.
	for _, choice := range []string{"gumbel", "exponentiate-mpc", "exponentiate-fhe"} {
		if err := pin(queries.Top1, "em", choice); err != nil {
			return nil, err
		}
	}
	// Laplace noising: values per committee (bayes, C=115).
	for _, choice := range []string{
		"committee-slice-1", "committee-slice-16", "committee-slice-64",
	} {
		if err := pin(queries.Bayes, "noise", choice); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderDesignAblations formats the design-choice table.
func RenderDesignAblations(rows []DesignRow) string {
	var sb strings.Builder
	sb.WriteString("Design-choice ablations (top1 for sum/em, bayes for noise; N=2^30)\n")
	fmt.Fprintf(&sb, "%-6s %-22s %10s %9s %8s %9s %8s %10s\n",
		"dim", "pinned choice", "agg h", "exp s", "exp MB", "max s", "max GB", "committees")
	for _, r := range rows {
		if !r.Feasible {
			fmt.Fprintf(&sb, "%-6s %-22s %s\n", r.Dimension, r.Choice, "infeasible")
			continue
		}
		fmt.Fprintf(&sb, "%-6s %-22s %10.0f %9.1f %8.2f %9.0f %8.2f %10d\n",
			r.Dimension, r.Choice, r.AggCoreHours, r.ExpCPU, r.ExpMB, r.MaxCPU, r.MaxGB, r.Committees)
	}
	return sb.String()
}
