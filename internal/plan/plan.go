// Package plan defines Arboretum's executable plan representation
// (Sections 4.4–4.5): a query becomes a sequence of vignettes, each assigned
// to the aggregator, to committees of participant devices, or to the
// participant devices themselves, with the cryptography (AHE or FHE) chosen
// per value. Data-parallel vignettes carry an instance count — e.g. one
// instance per committee computing one vertex of a sum tree, or one instance
// per device encrypting its own input (Figure 5).
package plan

import (
	"fmt"
	"strings"

	"arboretum/internal/costmodel"
)

// Location says which entity executes a vignette.
type Location int

// The three execution locations of Section 4.4.
const (
	Aggregator Location = iota
	Committee
	Device
)

func (l Location) String() string {
	switch l {
	case Aggregator:
		return "aggregator"
	case Committee:
		return "committee"
	case Device:
		return "device"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// Role classifies committees for the per-committee-type cost reporting of
// Figure 7 (KeyGen, Decryption, Operations).
type Role int

// Committee roles.
const (
	RoleNone Role = iota
	RoleKeyGen
	RoleDecrypt
	RoleOps
)

func (r Role) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RoleKeyGen:
		return "keygen"
	case RoleDecrypt:
		return "decryption"
	case RoleOps:
		return "operations"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Crypto is the cryptosystem protecting a vignette's confidential values
// (Section 4.5: add-only values get AHE, everything else FHE; committees
// compute on secret shares inside MPC).
type Crypto int

// Cryptosystems.
const (
	CryptoNone Crypto = iota
	CryptoAHE
	CryptoFHE
	CryptoMPC
)

func (c Crypto) String() string {
	switch c {
	case CryptoNone:
		return "clear"
	case CryptoAHE:
		return "ahe"
	case CryptoFHE:
		return "fhe"
	case CryptoMPC:
		return "mpc"
	default:
		return fmt.Sprintf("Crypto(%d)", int(c))
	}
}

// Work counts the primitive operations one instance of a vignette performs;
// the cost model prices each counter.
type Work struct {
	HEEncs      int64 // ciphertexts encrypted
	HEAdds      int64 // homomorphic additions
	HEMulPlains int64
	HEMulCts    int64
	HECmps      int64 // encrypted comparisons (FHE)
	HEExps      int64 // encrypted exponentials (FHE)
	HEDecShares int64 // distributed-decryption shares contributed

	MPCMults  int64 // multiplication gates inside an MPC
	MPCCmps   int64 // comparisons inside an MPC
	MPCExps   int64 // fixed-point exponentials inside an MPC
	MPCNoises int64 // jointly sampled noise values
	KeyGens   int64 // distributed key generations (composite)

	ZKPGens     int64
	ZKPVerifies int64
	SigVerifies int64
	MerkleOps   int64 // hashes for audit trees

	CtsIn  int64 // ciphertexts received per instance
	CtsOut int64 // ciphertexts sent per instance
	Shares int64 // secret shares sent (VSR hand-offs, MPC I/O)
	Audits int64 // audit challenges answered
}

// Add accumulates another work tally.
func (w *Work) Add(o Work) {
	w.HEEncs += o.HEEncs
	w.HEAdds += o.HEAdds
	w.HEMulPlains += o.HEMulPlains
	w.HEMulCts += o.HEMulCts
	w.HECmps += o.HECmps
	w.HEExps += o.HEExps
	w.HEDecShares += o.HEDecShares
	w.MPCMults += o.MPCMults
	w.MPCCmps += o.MPCCmps
	w.MPCExps += o.MPCExps
	w.MPCNoises += o.MPCNoises
	w.KeyGens += o.KeyGens
	w.ZKPGens += o.ZKPGens
	w.ZKPVerifies += o.ZKPVerifies
	w.SigVerifies += o.SigVerifies
	w.MerkleOps += o.MerkleOps
	w.CtsIn += o.CtsIn
	w.CtsOut += o.CtsOut
	w.Shares += o.Shares
	w.Audits += o.Audits
}

// Vignette is one plan fragment assigned to one location (Section 4.4).
type Vignette struct {
	ID       int
	Desc     string // human-readable description, e.g. "sum tree level 2 (fanout 8)"
	Loc      Location
	Role     Role  // committee role when Loc == Committee
	Parallel bool  // data-parallel across Count instances
	Count    int64 // parallel instances (1 when not parallel)
	Crypto   Crypto
	Work     Work // per instance (per committee member for MPC vignettes)
}

// Committees returns how many committees the vignette consumes.
func (v *Vignette) Committees() int64 {
	if v.Loc != Committee {
		return 0
	}
	return v.Count
}

// MemberCost prices one instance of the vignette for a single executor
// (committee member, device, or the aggregator) on the reference platform.
func (v *Vignette) MemberCost(m *costmodel.Model, committeeSize int) (cpu, bytes float64) {
	w := v.Work
	cpu += float64(w.HEEncs) * m.HEEnc
	cpu += float64(w.HEAdds) * m.HEAdd
	cpu += float64(w.HEMulPlains) * m.HEMulPlain
	cpu += float64(w.HEMulCts) * m.HEMulCt
	cpu += float64(w.HECmps) * m.HECmp
	cpu += float64(w.HEExps) * m.HEExp
	cpu += float64(w.HEDecShares) * m.HEDecShare
	cpu += float64(w.ZKPGens) * m.ZKPGen
	cpu += float64(w.ZKPVerifies) * m.ZKPVerify
	cpu += float64(w.SigVerifies) * m.SigVerify
	cpu += float64(w.MerkleOps) * m.MerkleHash

	bytes += float64(w.CtsOut) * m.CtBytes
	bytes += float64(w.ZKPGens) * m.ZKPBytes
	bytes += float64(w.Shares) * m.ShareBytes
	bytes += float64(w.Audits) * m.AuditRespBytes

	if v.Crypto == CryptoMPC || w.MPCMults+w.MPCCmps+w.MPCExps+w.MPCNoises+w.KeyGens > 0 {
		cpu += m.MPCStartupCPU
		bytes += m.MPCStartupBytes
		// MPC traffic scales with the committee size: every gate is a round
		// of share exchanges among the m members.
		scale := float64(committeeSize) / 40.0 // constants calibrated at m=40
		cpu += float64(w.MPCMults) * m.MPCPerMultCPU
		bytes += float64(w.MPCMults) * m.MPCPerMultBytes * scale
		cpu += float64(w.MPCCmps) * m.MPCPerCmpCPU
		bytes += float64(w.MPCCmps) * m.MPCPerCmpBytes * scale
		if w.MPCCmps > 0 {
			cpu += m.MPCFirstCmpPen // triple-generation warm-up (Section 6)
		}
		cpu += float64(w.MPCExps) * m.MPCPerExpCPU
		bytes += float64(w.MPCExps) * m.MPCPerExpBytes * scale
		cpu += float64(w.MPCNoises) * m.MPCNoiseCPU
		bytes += float64(w.MPCNoises) * m.MPCNoiseBytes * scale
		cpu += float64(w.KeyGens) * m.KeyGenCPU
		bytes += float64(w.KeyGens) * m.KeyGenBytes * scale
		cpu += float64(w.HEDecShares) * m.DecPerCtCPU
		bytes += float64(w.HEDecShares) * m.DecPerCtBytes * scale
	}
	return cpu, bytes
}

// RoleCost summarizes what one member of one committee type pays (Figure 7).
type RoleCost struct {
	CPU   float64
	Bytes float64
	Count int64 // committees of this role
}

// Plan is a complete, scored execution plan.
type Plan struct {
	Query      string
	N          int64 // participants
	Categories int64

	Vignettes []*Vignette

	CommitteeCount int
	CommitteeSize  int

	// Choices records the search decisions (operator variants, fanouts) for
	// explainability and tests.
	Choices map[string]string

	Cost costmodel.Vector

	// Figure-oriented breakdowns.
	ByRole map[Role]RoleCost // per-member cost by committee type
	// Participant base cost (encryption + proofs + audits, paid by all).
	BaseCPU, BaseBytes float64
	// Aggregator split: operation time vs verification time (Figure 8b) and
	// forwarding traffic (Figure 8a).
	AggOpsCPU, AggVerifyCPU, AggForwardBytes float64
}

// String renders the plan like Figure 5.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for %s (N=%d, C=%d, %d committees of %d)\n",
		p.Query, p.N, p.Categories, p.CommitteeCount, p.CommitteeSize)
	for _, v := range p.Vignettes {
		par := ""
		if v.Parallel {
			par = fmt.Sprintf(" x%d", v.Count)
		}
		loc := v.Loc.String()
		if v.Loc == Committee {
			loc = fmt.Sprintf("%s/%s", v.Loc, v.Role)
		}
		fmt.Fprintf(&sb, "  vignette %d (%s%s, %s): %s\n", v.ID, loc, par, v.Crypto, v.Desc)
	}
	fmt.Fprintf(&sb, "  cost: agg %.0f core-s / %.1f TB; part exp %.1f s / %.2f MB; part max %.1f s / %.2f GB\n",
		p.Cost.AggCPU, p.Cost.AggBytes/1e12,
		p.Cost.PartExpCPU, p.Cost.PartExpBytes/1e6,
		p.Cost.PartMaxCPU, p.Cost.PartMaxBytes/1e9)
	return sb.String()
}

// DetailString renders the plan with per-vignette member costs priced by the
// given model — the explainability view behind `arboretum plan -v`.
func (p *Plan) DetailString(m *costmodel.Model) string {
	var sb strings.Builder
	sb.WriteString(p.String())
	sb.WriteString("  per-vignette member cost (cpu seconds / bytes):\n")
	for _, v := range p.Vignettes {
		cpu, bytes := v.MemberCost(m, p.CommitteeSize)
		fmt.Fprintf(&sb, "    vignette %d: %10.3f s %14.0f B  (%s)\n", v.ID, cpu, bytes, v.Desc)
	}
	return sb.String()
}
