package plan

import (
	"strings"
	"testing"
	"testing/quick"

	"arboretum/internal/costmodel"
)

func TestStringers(t *testing.T) {
	for _, l := range []Location{Aggregator, Committee, Device, Location(99)} {
		if l.String() == "" {
			t.Errorf("location %d unnamed", l)
		}
	}
	for _, r := range []Role{RoleNone, RoleKeyGen, RoleDecrypt, RoleOps, Role(99)} {
		if r.String() == "" {
			t.Errorf("role %d unnamed", r)
		}
	}
	for _, c := range []Crypto{CryptoNone, CryptoAHE, CryptoFHE, CryptoMPC, Crypto(99)} {
		if c.String() == "" {
			t.Errorf("crypto %d unnamed", c)
		}
	}
}

func TestWorkAdd(t *testing.T) {
	a := Work{HEAdds: 1, MPCCmps: 2, ZKPGens: 3, CtsOut: 4, Shares: 5}
	b := Work{HEAdds: 10, MPCCmps: 20, ZKPGens: 30, CtsOut: 40, Shares: 50}
	a.Add(b)
	if a.HEAdds != 11 || a.MPCCmps != 22 || a.ZKPGens != 33 || a.CtsOut != 44 || a.Shares != 55 {
		t.Errorf("Add result %+v", a)
	}
}

func TestCommittees(t *testing.T) {
	v := Vignette{Loc: Committee, Count: 7}
	if v.Committees() != 7 {
		t.Errorf("Committees() = %d", v.Committees())
	}
	v.Loc = Device
	if v.Committees() != 0 {
		t.Error("device vignette consumed committees")
	}
}

func TestMemberCostPricesCounters(t *testing.T) {
	m := costmodel.Default()
	// A pure HE vignette: no MPC overhead.
	he := Vignette{Loc: Aggregator, Crypto: CryptoAHE, Work: Work{HEAdds: 1000}}
	cpu, bytes := he.MemberCost(m, 40)
	if cpu != 1000*m.HEAdd {
		t.Errorf("HE cpu = %g, want %g", cpu, 1000*m.HEAdd)
	}
	if bytes != 0 {
		t.Errorf("HE-only vignette sent %g bytes", bytes)
	}
	// An MPC vignette pays startup plus per-op costs, scaled by the
	// committee size.
	mpcV := Vignette{Loc: Committee, Crypto: CryptoMPC, Work: Work{MPCCmps: 10}}
	cpu40, bytes40 := mpcV.MemberCost(m, 40)
	wantCPU := m.MPCStartupCPU + 10*m.MPCPerCmpCPU + m.MPCFirstCmpPen
	if cpu40 != wantCPU {
		t.Errorf("MPC cpu = %g, want %g", cpu40, wantCPU)
	}
	_, bytes80 := mpcV.MemberCost(m, 80)
	if bytes80 <= bytes40 {
		t.Error("MPC traffic should grow with the committee size")
	}
	// The first-comparison penalty applies once, not per comparison.
	one := Vignette{Crypto: CryptoMPC, Work: Work{MPCCmps: 1}}
	many := Vignette{Crypto: CryptoMPC, Work: Work{MPCCmps: 100}}
	cpuOne, _ := one.MemberCost(m, 40)
	cpuMany, _ := many.MemberCost(m, 40)
	if cpuMany-cpuOne != 99*m.MPCPerCmpCPU {
		t.Errorf("first-comparison penalty applied more than once: Δ=%g", cpuMany-cpuOne)
	}
}

// Property: MemberCost is monotone in every work counter.
func TestQuickMemberCostMonotone(t *testing.T) {
	m := costmodel.Default()
	f := func(adds, cmps uint8) bool {
		a := Vignette{Crypto: CryptoMPC, Work: Work{HEAdds: int64(adds), MPCCmps: int64(cmps)}}
		b := a
		b.Work.HEAdds++
		b.Work.MPCCmps++
		ca, ba := a.MemberCost(m, 40)
		cb, bb := b.MemberCost(m, 40)
		return cb >= ca && bb >= ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanString(t *testing.T) {
	p := &Plan{
		Query: "demo", N: 1 << 20, Categories: 16,
		CommitteeCount: 3, CommitteeSize: 5,
		Vignettes: []*Vignette{
			{ID: 0, Desc: "keygen", Loc: Committee, Role: RoleKeyGen, Count: 1, Crypto: CryptoMPC},
			{ID: 1, Desc: "encrypt", Loc: Device, Parallel: true, Count: 1 << 20, Crypto: CryptoAHE},
			{ID: 2, Desc: "sum", Loc: Aggregator, Count: 1, Crypto: CryptoAHE},
		},
	}
	s := p.String()
	for _, want := range []string{"demo", "keygen", "x1048576", "aggregator", "committee/keygen"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestDetailString(t *testing.T) {
	m := costmodel.Default()
	p := &Plan{
		Query: "demo", N: 1 << 20, Categories: 16, CommitteeSize: 40,
		Vignettes: []*Vignette{
			{ID: 0, Desc: "keygen", Loc: Committee, Role: RoleKeyGen, Count: 1,
				Crypto: CryptoMPC, Work: Work{KeyGens: 1}},
			{ID: 1, Desc: "sum", Loc: Aggregator, Count: 1, Crypto: CryptoAHE,
				Work: Work{HEAdds: 100}},
		},
	}
	s := p.DetailString(m)
	if !strings.Contains(s, "per-vignette") || !strings.Contains(s, "keygen") {
		t.Errorf("DetailString missing sections:\n%s", s)
	}
}
