// Package benchrand is a deterministic randomness source for benchmarks: a
// SHA-256 counter DRBG behind io.Reader. Benchmarks must not draw from
// crypto/rand (the randsource invariant, tools/arblint): system entropy
// makes timings drift run-to-run through key- and noise-dependent code
// paths, and scripts/bench_compare.py needs identical inputs on both sides
// of a comparison. benchrand gives every benchmark the same byte stream for
// the same seed on every machine, with no secrecy claim — which is exactly
// right, because benchmark keys protect nothing.
package benchrand

import (
	"crypto/sha256"
	"encoding/binary"
)

// Reader generates the deterministic stream. It implements io.Reader and
// never returns an error. Read is allocation-free — the current block lives
// in a fixed array, not a heap slice — so benchmarks and alloc-regression
// gates that draw from a Reader measure only the code under test.
type Reader struct {
	seed [8]byte
	ctr  uint64
	buf  [sha256.Size]byte
	off  int // bytes of buf already consumed; sha256.Size means refill
}

// New returns a Reader whose stream is a pure function of seed.
func New(seed uint64) *Reader {
	r := &Reader{off: sha256.Size}
	binary.LittleEndian.PutUint64(r.seed[:], seed)
	return r
}

// Read fills p with the next bytes of the stream; err is always nil.
func (r *Reader) Read(p []byte) (int, error) {
	for i := range p {
		if r.off == sha256.Size {
			var block [24]byte
			copy(block[:8], r.seed[:])
			binary.LittleEndian.PutUint64(block[8:16], r.ctr)
			copy(block[16:], "arbbench")
			r.ctr++
			r.buf = sha256.Sum256(block[:])
			r.off = 0
		}
		p[i] = r.buf[r.off]
		r.off++
	}
	return len(p), nil
}
