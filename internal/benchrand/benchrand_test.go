package benchrand

import (
	"bytes"
	"io"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	if _, err := io.ReadFull(New(7), a); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(New(7), b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different streams")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	if _, err := io.ReadFull(New(1), a); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(New(2), b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced the same stream")
	}
}

func TestUnevenReads(t *testing.T) {
	// Reading in odd-sized chunks must yield the same stream as one read.
	want := make([]byte, 100)
	if _, err := io.ReadFull(New(3), want); err != nil {
		t.Fatal(err)
	}
	r := New(3)
	var got []byte
	for _, n := range []int{1, 7, 32, 60} {
		chunk := make([]byte, n)
		if _, err := io.ReadFull(r, chunk); err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chunked reads diverge from a single read")
	}
}
