// Package baseline models the comparison systems of the paper's evaluation:
// the strawmen of Section 3.2 (FHE-only, all-to-all MPC, Böhler &
// Kerschbaum's MPC committee) and the hand-optimized prior systems
// (Honeycrisp, Orchard) whose queries Arboretum re-plans in Section 7.2.
// Costs come from the same cost model Arboretum's planner uses, so the
// comparisons in Table 1 and Figures 6–8 are apples to apples.
package baseline

import (
	"arboretum/internal/costmodel"
	"arboretum/internal/plan"
)

// System identifies a comparison system.
type System int

// The compared systems.
const (
	PureFHE System = iota
	AllToAllMPC
	Boehler
	Orchard
	Honeycrisp
)

var systemNames = map[System]string{
	PureFHE: "FHE", AllToAllMPC: "All-to-all MPC", Boehler: "Böhler",
	Orchard: "Orchard", Honeycrisp: "Honeycrisp",
}

func (s System) String() string { return systemNames[s] }

// Estimate is a baseline's cost for one query shape, with the qualitative
// notes Table 1 reports.
type Estimate struct {
	System System
	Cost   costmodel.Vector
	// Feasible is false when the approach cannot complete at this scale at
	// all (the paper's "Years" / "PBs" entries).
	Feasible bool
	// Committee-member view for systems that have one (Figure 7 bars).
	MemberCPU, MemberBytes float64
	Note                   string
}

// Params fixes the deployment shape.
type Params struct {
	N          int64 // participants
	Categories int64
	Committee  int // committee size for committee-based systems
	Model      *costmodel.Model
}

func (p Params) model() *costmodel.Model {
	if p.Model != nil {
		return p.Model
	}
	return costmodel.Default()
}

func (p Params) committee() int {
	if p.Committee > 0 {
		return p.Committee
	}
	return 40
}

// EstimateFHE models the FHE-only strawman: every participant uploads an
// FHE ciphertext; the aggregator evaluates the entire quality-score circuit
// homomorphically. The paper estimates a 40-trillion-gate circuit for 10^8
// participants ("years to evaluate").
func EstimateFHE(p Params) Estimate {
	m := p.model()
	// Gates ≈ 400k per participant-category pair at one-hot width C (the
	// paper's 4e13 gates at N=1e8, C=41,683 back-solves to ~10 gates per
	// pair); each FHE gate costs ~HEMulCt.
	gates := float64(p.N) * float64(p.Categories) * 10
	aggCPU := gates * m.HEMulCt
	cts := float64((p.Categories + int64(m.Slots) - 1) / int64(m.Slots))
	return Estimate{
		System: PureFHE,
		Cost: costmodel.Vector{
			AggCPU:       aggCPU,
			AggBytes:     float64(p.N) * m.CtBytes * 0.01, // results + control
			PartExpCPU:   m.HEEnc * cts,
			PartExpBytes: m.CtBytes * cts,
			PartMaxCPU:   m.HEEnc * cts,
			PartMaxBytes: m.CtBytes * cts,
		},
		Feasible: aggCPU < 10*365*24*3600, // under a decade of core-time? still no
		Note:     "O(N) aggregator computation → years; aggregator holds the key",
	}
}

// EstimateAllToAll models every participant joining one huge MPC: the
// per-participant traffic scales at least linearly with N (the paper:
// "PBs"; no practical protocol beyond a few hundred parties).
func EstimateAllToAll(p Params) Estimate {
	m := p.model()
	// Evaluating a query circuit among N parties moves ~100 kB between each
	// pair over the protocol's many rounds; per-participant traffic is
	// therefore O(N) — tens of TB at 10^8 parties, PBs at 10^9.
	perPart := float64(p.N) * 1e5
	return Estimate{
		System: AllToAllMPC,
		Cost: costmodel.Vector{
			AggCPU:       0,
			AggBytes:     0,
			PartExpCPU:   float64(p.N) * m.MPCPerMultCPU,
			PartExpBytes: perPart,
			PartMaxCPU:   float64(p.N) * m.MPCPerMultCPU,
			PartMaxBytes: perPart,
		},
		Feasible: p.N <= 512,
		Note:     "per-participant bandwidth O(N) → PBs at scale",
	}
}

// EstimateBoehler models Böhler & Kerschbaum's single MPC committee that
// downloads every participant's masked input and evaluates the query
// circuit. Based on the paper's Section 7.1 extrapolation: m=10 members and
// N=10^6 took 1.41 GB per member; scaling linearly in N and m, a 40-member
// committee at N=1.3e9 needs > 7.3 TB — beyond a typical participant.
func EstimateBoehler(p Params) Estimate {
	mem := float64(p.committee())
	// 1.41 GB per member at (m=10, N=1e6) → bytes ≈ 1410 × N × (m/10).
	memberBytes := 1410.0 * float64(p.N) * (mem / 10)
	memberCPU := float64(p.N) * 2e-5 * mem // circuit scales with N and m
	return Estimate{
		System: Boehler,
		Cost: costmodel.Vector{
			AggCPU:       0, // no aggregator computation: committee-only
			AggBytes:     float64(p.N) * 1e3,
			PartExpCPU:   memberCPU * mem / float64(p.N),
			PartExpBytes: 1e3 + memberBytes*mem/float64(p.N),
			PartMaxCPU:   memberCPU,
			PartMaxBytes: memberBytes,
		},
		Feasible:    memberBytes < 4e9, // the participant traffic limit
		MemberCPU:   memberCPU,
		MemberBytes: memberBytes,
		Note:        "single committee downloads all inputs: worst-case O(N) traffic",
	}
}

// EstimateOrchard models Orchard's plan: the aggregator sums AHE ciphertexts
// and verifies ZKPs; a single committee does key generation, noising, and
// decryption. Expected participant costs match Arboretum's (the paper:
// "almost identical in expectation"), but the single committee bears the
// whole mechanism cost, which explodes for categorical queries.
func EstimateOrchard(p Params) Estimate {
	m := p.model()
	cts := float64((p.Categories + int64(m.Slots) - 1) / int64(m.Slots))
	msize := float64(p.committee())
	scale := msize / 40.0
	// The one committee: keygen + decrypt + one noise draw per category.
	memberCPU := m.KeyGenCPU + cts*m.DecPerCtCPU + float64(p.Categories)*m.MPCNoiseCPU + m.MPCStartupCPU
	memberBytes := m.KeyGenBytes*scale + cts*m.DecPerCtBytes*scale +
		float64(p.Categories)*m.MPCNoiseBytes*scale + m.MPCStartupBytes
	baseCPU := (m.HEEnc + m.ZKPGen) * cts
	baseBytes := (m.CtBytes + m.ZKPBytes) * cts
	expFrac := msize / float64(p.N)
	agg := float64(p.N)*cts*(m.ZKPVerify+m.HEAdd) + float64(p.N)*2*cts*m.MerkleHash
	return Estimate{
		System: Orchard,
		Cost: costmodel.Vector{
			AggCPU:       agg,
			AggBytes:     float64(p.N)*(m.AuditRespBytes+m.CertBytes) + memberBytes*msize,
			PartExpCPU:   baseCPU + memberCPU*expFrac,
			PartExpBytes: baseBytes + memberBytes*expFrac,
			PartMaxCPU:   baseCPU + memberCPU,
			PartMaxBytes: baseBytes + memberBytes,
		},
		Feasible:    memberCPU < 20*60 && memberBytes < 4e9,
		MemberCPU:   memberCPU,
		MemberBytes: memberBytes,
		Note:        "single committee: keygen + noising + decryption",
	}
}

// EstimateHoneycrisp models Honeycrisp's count-mean-sketch pipeline; it is
// Orchard's single-committee structure specialized to one numeric query.
func EstimateHoneycrisp(p Params) Estimate {
	e := EstimateOrchard(p)
	e.System = Honeycrisp
	e.Note = "single committee, count-mean-sketch only"
	return e
}

// ArboretumRow summarizes an Arboretum plan for Table 1 next to the
// baselines.
func ArboretumRow(p *plan.Plan) Estimate {
	worstCPU, worstBytes := 0.0, 0.0
	for _, rc := range p.ByRole {
		if rc.CPU > worstCPU {
			worstCPU = rc.CPU
		}
		if rc.Bytes > worstBytes {
			worstBytes = rc.Bytes
		}
	}
	return Estimate{
		Cost:        p.Cost,
		Feasible:    true,
		MemberCPU:   worstCPU,
		MemberBytes: worstBytes,
		Note:        "automatic planning, multiple committees",
	}
}
