package baseline

import (
	"testing"

	"arboretum/internal/costmodel"
	"arboretum/internal/planner"
	"arboretum/internal/queries"
)

// The paper's Table 1 setting: "which zip code contains the most
// participants" with 10^8 participants and 41,683 zip codes.
var zipcode = Params{N: 1e8, Categories: 41683}

func TestFHEInfeasibleAtScale(t *testing.T) {
	e := EstimateFHE(zipcode)
	if e.Feasible {
		t.Error("FHE-only should be infeasible at 10^8 participants")
	}
	// "Years": more than one year of aggregator core-time.
	if e.Cost.AggCPU < 365*24*3600 {
		t.Errorf("FHE aggregator time %g s, want years", e.Cost.AggCPU)
	}
	// Participant bandwidth stays MBs (Table 1's row).
	if e.Cost.PartMaxBytes > 1e8 {
		t.Errorf("FHE participant bytes %g, want MBs", e.Cost.PartMaxBytes)
	}
}

func TestAllToAllInfeasibleAtScale(t *testing.T) {
	e := EstimateAllToAll(zipcode)
	if e.Feasible {
		t.Error("all-to-all MPC should be infeasible at 10^8 participants")
	}
	// "PBs": per-participant traffic in the tens of TB or beyond.
	if e.Cost.PartMaxBytes < 1e10 {
		t.Errorf("all-to-all participant bytes %g, want ≥ 10 TB", e.Cost.PartMaxBytes)
	}
	small := EstimateAllToAll(Params{N: 100, Categories: 4})
	if !small.Feasible {
		t.Error("all-to-all should work for a few hundred parties")
	}
}

func TestBoehlerScalesToMillionsNotBillions(t *testing.T) {
	million := EstimateBoehler(Params{N: 1e6, Categories: 1024, Committee: 10})
	if !million.Feasible {
		t.Error("Böhler reaches a million participants in the paper")
	}
	// 1.41 GB per member at m=10, N=1e6 — match the paper's figure.
	if million.MemberBytes < 1e9 || million.MemberBytes > 2e9 {
		t.Errorf("Böhler member traffic = %g, want ~1.41 GB", million.MemberBytes)
	}
	billion := EstimateBoehler(Params{N: 13e8, Categories: 1024, Committee: 40})
	if billion.Feasible {
		t.Error("Böhler should not scale to 1.3 billion")
	}
	// "> 7.3 TB" per member.
	if billion.MemberBytes < 7e12 {
		t.Errorf("Böhler member traffic at 1.3e9 = %g, want > 7.3 TB", billion.MemberBytes)
	}
}

func TestOrchardFeasibleForNumericNotCategorical(t *testing.T) {
	numeric := EstimateOrchard(Params{N: 1e9, Categories: 10})
	if !numeric.Feasible {
		t.Error("Orchard handles small-category queries")
	}
	categorical := EstimateOrchard(Params{N: 1e9, Categories: 41683})
	if categorical.Feasible {
		t.Error("Orchard's single committee should choke on 41k categories")
	}
	if categorical.MemberCPU <= numeric.MemberCPU {
		t.Error("more categories must cost the single committee more")
	}
}

func TestHoneycrispMirrorsOrchard(t *testing.T) {
	h := EstimateHoneycrisp(Params{N: 1e9, Categories: 1})
	o := EstimateOrchard(Params{N: 1e9, Categories: 1})
	if h.Cost != o.Cost {
		t.Error("Honeycrisp should share Orchard's single-committee cost structure")
	}
	if h.System != Honeycrisp {
		t.Error("system label wrong")
	}
}

// Figure 6's comparison: Arboretum's expected participant costs for the
// adapted queries match the original systems' (within small factors), while
// committee-member costs are much lower because the work spreads across
// committees.
func TestArboretumMatchesOrchardExpectedCost(t *testing.T) {
	n := int64(1 << 30)
	res, err := planner.Plan(planner.Request{
		Name: "bayes", Source: queries.Bayes.Source, N: n,
		Categories: queries.Bayes.Categories,
		Goal:       costmodel.PartExpCPU, Limits: planner.DefaultLimits,
	})
	if err != nil {
		t.Fatal(err)
	}
	arb := ArboretumRow(res.Plan)
	orch := EstimateOrchard(Params{N: n, Categories: queries.Bayes.Categories,
		Committee: res.Plan.CommitteeSize})
	ratio := arb.Cost.PartExpCPU / orch.Cost.PartExpCPU
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("expected-cost ratio Arboretum/Orchard = %g, want ~1", ratio)
	}
	if arb.MemberBytes > orch.MemberBytes*2 {
		t.Errorf("Arboretum committee member bytes %g should not exceed Orchard's %g",
			arb.MemberBytes, orch.MemberBytes)
	}
}

func TestSystemNames(t *testing.T) {
	for _, s := range []System{PureFHE, AllToAllMPC, Boehler, Orchard, Honeycrisp} {
		if s.String() == "" {
			t.Errorf("system %d has no name", s)
		}
	}
}
