package faults

import (
	"math"
	"sync"
	"testing"
)

// Decisions are pure functions of (seed, kind, coordinates): the same query
// replays the same schedule, different seeds give different schedules.
func TestFiresDeterministic(t *testing.T) {
	a := New(7).SetRate(UploadTimeout, 0.3)
	b := New(7).SetRate(UploadTimeout, 0.3)
	for dev := 0; dev < 200; dev++ {
		for attempt := 0; attempt < 3; attempt++ {
			if a.Fires(UploadTimeout, dev, attempt) != b.Fires(UploadTimeout, dev, attempt) {
				t.Fatalf("decision (%d,%d) not deterministic", dev, attempt)
			}
		}
	}
	c := New(8).SetRate(UploadTimeout, 0.3)
	diff := 0
	for dev := 0; dev < 200; dev++ {
		if a.Fires(UploadTimeout, dev, 0) != c.Fires(UploadTimeout, dev, 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// The empirical fire rate tracks the configured rate.
func TestFiresRate(t *testing.T) {
	p := New(42).SetRate(MemberDropout, 0.25)
	fired := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if p.Fires(MemberDropout, i, 0, 0) {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-0.25) > 0.03 {
		t.Fatalf("empirical rate %g, want ~0.25", got)
	}
}

// Kinds and coordinates index independent streams: a fault firing for one
// kind says nothing about another kind at the same coordinates.
func TestKindsIndependent(t *testing.T) {
	p := New(3).SetRate(UploadTimeout, 0.5).SetRate(DealerFailure, 0.5)
	same := 0
	const n = 400
	for i := 0; i < n; i++ {
		if p.Fires(UploadTimeout, i) == p.Fires(DealerFailure, i) {
			same++
		}
	}
	if same == 0 || same == n {
		t.Fatalf("kinds perfectly correlated: %d/%d agreements", same, n)
	}
}

func TestForce(t *testing.T) {
	p := New(1).Force(AggregatorCrash, 2)
	if !p.Fires(AggregatorCrash, 2, 0) {
		t.Fatal("forced crash@2 did not fire at (2, 0)")
	}
	if p.Fires(AggregatorCrash, 2, 1) {
		t.Fatal("forced crash@2 fired on a retry attempt")
	}
	if p.Fires(AggregatorCrash, 1, 0) {
		t.Fatal("crash fired at an unforced chunk")
	}
}

func TestNilPlanSafe(t *testing.T) {
	var p *Plan
	if p.Fires(UploadTimeout, 1) {
		t.Fatal("nil plan fired")
	}
	if p.Pick(5, MemberDropout, 0) != 0 {
		t.Fatal("nil plan picked nonzero")
	}
	p.Record(Fault{Kind: UploadTimeout})
	if got := p.Fired(); got != nil {
		t.Fatalf("nil plan log = %v", got)
	}
	if p.String() != "" || p.Seed() != 0 {
		t.Fatal("nil plan not empty")
	}
}

func TestPickDeterministicInRange(t *testing.T) {
	p := New(9)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		v := p.Pick(5, MemberDropout, i, 0, 3)
		if v < 0 || v >= 5 {
			t.Fatalf("pick %d out of range", v)
		}
		if v != p.Pick(5, MemberDropout, i, 0, 3) {
			t.Fatal("pick not deterministic")
		}
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Fatalf("picks not spread: %v", seen)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	spec := "seed=7,upload=0.05,dropout=0.01,dealer=0.1,crash@1,crash@3"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed() != 7 {
		t.Fatalf("seed = %d", p.Seed())
	}
	if !p.Fires(AggregatorCrash, 3, 0) {
		t.Fatal("parsed forced crash@3 did not fire")
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", p.String(), err)
	}
	for dev := 0; dev < 100; dev++ {
		if p.Fires(UploadTimeout, dev, 0) != q.Fires(UploadTimeout, dev, 0) {
			t.Fatal("round-tripped plan decides differently")
		}
	}
	if p.String() != q.String() {
		t.Fatalf("String not canonical: %q vs %q", p.String(), q.String())
	}
}

// The "wal" kind (ledger append crashes) parses, round-trips, and follows
// the Force contract: a forced wal@N fires only at stage 0 of record N.
func TestParseWALKind(t *testing.T) {
	p, err := Parse("seed=3,wal=0.5,wal@4")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Fires(WALCrash, 4, 0) {
		t.Fatal("forced wal@4 did not fire before record 4")
	}
	if WALCrash.String() != "wal" {
		t.Fatalf("WALCrash.String() = %q", WALCrash)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", p.String(), err)
	}
	for seq := 1; seq < 50; seq++ {
		for stage := 0; stage < 2; stage++ {
			if p.Fires(WALCrash, seq, stage) != q.Fires(WALCrash, seq, stage) {
				t.Fatalf("round-tripped plan decides differently at (%d, %d)", seq, stage)
			}
		}
	}
}

// The "shard" kind (streaming-ingest shard-aggregator crashes) parses,
// round-trips, and follows the Force contract: a forced shard@N fires only at
// shard N's first fold attempt of its first batch.
func TestParseShardKind(t *testing.T) {
	p, err := Parse("seed=5,shard=0.25,shard@2")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Fires(ShardCrash, 2, 0, 0) {
		t.Fatal("forced shard@2 did not fire at shard 2's first batch")
	}
	if p.Fires(ShardCrash, 2, 1, 0) && p.rates[ShardCrash] == 0 {
		t.Fatal("forced shard@2 fired at a later batch")
	}
	if ShardCrash.String() != "shard" {
		t.Fatalf("ShardCrash.String() = %q", ShardCrash)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", p.String(), err)
	}
	for shard := 0; shard < 8; shard++ {
		for batch := 0; batch < 16; batch++ {
			for attempt := 0; attempt < 3; attempt++ {
				if p.Fires(ShardCrash, shard, batch, attempt) != q.Fires(ShardCrash, shard, batch, attempt) {
					t.Fatalf("round-tripped plan decides differently at (%d, %d, %d)", shard, batch, attempt)
				}
			}
		}
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if p, err := Parse("  "); err != nil || p != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{"bogus=0.1", "upload=2", "upload", "crash@-1", "seed=x", "frob@2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// The log tolerates concurrent Record calls (pool workers) and Fired returns
// copies that cannot alias internal state.
func TestRecordConcurrent(t *testing.T) {
	p := New(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p.Record(Fault{Kind: UploadTimeout, Idx: []int{i, j}})
			}
		}(i)
	}
	wg.Wait()
	got := p.Fired()
	if len(got) != 400 {
		t.Fatalf("log has %d entries, want 400", len(got))
	}
	got[0].Idx[0] = -99
	if p.Fired()[0].Idx[0] == -99 {
		t.Fatal("Fired aliases internal log")
	}
}
