// Package faults is Arboretum's deterministic fault-injection engine: the
// simulation machinery behind the runtime's chaos tests and the CLI's
// -faults flag (docs/FAULTS.md).
//
// A Plan decides, for every named injection point the runtime exposes,
// whether a typed fault fires there. Every decision is a pure function of
// (plan seed, fault kind, injection-point coordinates): the plan derives a
// per-decision stream from the internal/benchrand SHA-256 counter DRBG, so a
// schedule replays bit-for-bit from its seed — independent of worker count,
// goroutine interleaving, and evaluation order. That is what makes a chaos
// run reproducible with `arboretum run -faults seed=N,...`.
//
// The package is listed in tools/arblint's policy table as simulation-exempt
// (policy.SimulationExempt): its seeded math/rand-style draws decide which
// simulated device fails, never key material, shares, sortition tickets, or
// released noise, so the randsource ban does not apply here.
package faults

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"arboretum/internal/benchrand"
)

// Kind is a typed fault category, one per injection point in the runtime's
// execution path (the taxonomy of docs/FAULTS.md).
type Kind int

const (
	// UploadTimeout: a device's upload attempt times out during input
	// collection. Coordinates: (device ID, attempt).
	UploadTimeout Kind = iota
	// MemberDropout: a committee member becomes unreachable after an MPC
	// communication round inside a mechanism vignette. Coordinates:
	// (vignette sequence, attempt, round).
	MemberDropout
	// DealerFailure: an old-committee member vanishes mid-hand-off before
	// dealing its VSR sub-shares. Coordinates: (transfer sequence, attempt,
	// dealer position).
	DealerFailure
	// AggregatorCrash: the aggregator process dies while folding one audit
	// chunk; it must resume from the last checkpointed partial sum.
	// Coordinates: (chunk index, attempt).
	AggregatorCrash
	// WALCrash: the analyst-gateway daemon dies while appending one record
	// to the privacy-budget ledger WAL (internal/ledger). Coordinates:
	// (record sequence, stage), where stage 0 crashes before any byte is
	// written and stage 1 crashes after a torn partial write. A forced
	// "wal@N" therefore crashes before record N reaches the disk; rates
	// exercise both stages. Recovery is the ledger's replay on reopen
	// (docs/SERVICE.md).
	WALCrash
	// ShardCrash: a streaming-ingest shard aggregator dies while folding one
	// upload batch; it must resume from its last batch-boundary checkpoint,
	// re-verified against the recorded commitment hash (docs/INGEST.md).
	// Coordinates: (shard, batch, attempt), so a forced "shard@N" crashes
	// shard N's first fold of its first batch.
	ShardCrash
	// DaemonCrash: the arboretumd gateway process dies at a job-lifecycle
	// boundary (internal/service). Coordinates: (job sequence, stage),
	// where stage 0 crashes before the claim is journaled, 1 after the
	// claim is journaled but before execution, 2 mid-execute (the run is
	// canceled at its next checkpoint, then the daemon dies), and 3 after
	// the run completes but before the budget commit. A forced "daemon@N"
	// therefore kills the daemon just as job N is claimed; rates exercise
	// every stage. Recovery is the job journal's replay + deterministic
	// re-execution on restart (docs/SERVICE.md).
	DaemonCrash

	numKinds
)

var kindNames = [numKinds]string{"upload", "dropout", "dealer", "crash", "wal", "shard", "daemon"}

// String returns the kind's spec-string name.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// kindByName resolves a spec-string name.
func kindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Fault is one fault that actually fired, as recorded by the runtime when it
// acted on a Fires decision.
type Fault struct {
	Kind Kind
	Idx  []int  // the injection point's coordinates
	Note string // what happened / how it was handled
}

// Plan is a seeded fault schedule. The zero of every rate means "never"; a
// nil *Plan is valid everywhere and injects nothing, so the runtime can
// thread an optional plan without nil checks.
//
// Decision methods (Fires, Pick) are pure and safe for concurrent use; the
// fired-fault log (Record/Fired) is mutex-protected so pool workers may
// record, though the runtime records sequentially to keep log order
// deterministic.
type Plan struct {
	seed     uint64
	rates    [numKinds]float64
	forced   [numKinds]map[int]bool
	forcedAt [numKinds]map[string]bool

	mu    sync.Mutex
	fired []Fault
}

// New returns an empty plan (no rates, no forced faults) for the seed.
func New(seed uint64) *Plan {
	return &Plan{seed: seed}
}

// Seed returns the plan's replay seed.
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// SetRate makes kind fire independently at each injection point with the
// given probability (of the seeded stream, not of system entropy). It
// returns the plan for chaining.
func (p *Plan) SetRate(k Kind, rate float64) *Plan {
	p.rates[k] = rate
	return p
}

// Force makes kind fire deterministically at the injection point whose first
// coordinate is seq and whose remaining coordinates are zero — e.g.
// Force(AggregatorCrash, 1) crashes the first fold of chunk 1, and
// Force(MemberDropout, 0) drops a member after the first round of the first
// attempt of vignette 0. It returns the plan for chaining.
func (p *Plan) Force(k Kind, seq int) *Plan {
	if p.forced[k] == nil {
		p.forced[k] = map[int]bool{}
	}
	p.forced[k][seq] = true
	return p
}

// ForceAt makes kind fire deterministically at the exact injection point
// idx — every coordinate significant, unlike Force's first-coordinate form
// (so ForceAt(DaemonCrash, 3, 2) kills the daemon mid-execute of job 3,
// which "daemon@3" cannot express). The spec form is "kind@a.b.c". It
// returns the plan for chaining.
func (p *Plan) ForceAt(k Kind, idx ...int) *Plan {
	if p.forcedAt[k] == nil {
		p.forcedAt[k] = map[string]bool{}
	}
	p.forcedAt[k][idxKey(idx)] = true
	return p
}

// idxKey renders coordinates in the spec's dotted form ("3.2").
func idxKey(idx []int) string {
	var b strings.Builder
	for i, v := range idx {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// domain tags separate the derived streams of the plan's decision functions.
const (
	domainFires = 0x6669726573 // "fires"
	domainPick  = 0x7069636b   // "pick"
)

// hash mixes the seed, a domain tag, the kind, and the injection-point
// coordinates into the 64-bit seed of a benchrand stream (FNV-1a over the
// little-endian words).
func (p *Plan) hash(domain uint64, k Kind, idx []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		for _, c := range b {
			h ^= uint64(c)
			h *= prime64
		}
	}
	mix(p.seed)
	mix(domain)
	mix(uint64(k))
	for _, i := range idx {
		mix(uint64(int64(i)))
	}
	return h
}

// uniform returns the decision point's uniform draw in [0, 1).
func (p *Plan) uniform(k Kind, idx []int) float64 {
	var b [8]byte
	// benchrand.Reader never errors.
	_, _ = benchrand.New(p.hash(domainFires, k, idx)).Read(b[:])
	return float64(binary.LittleEndian.Uint64(b[:])>>11) / float64(1<<53)
}

// Fires reports whether kind faults at the injection point with coordinates
// idx. It is a pure function of (seed, kind, idx) — calling it twice, in any
// order, from any goroutine, gives the same answer.
func (p *Plan) Fires(k Kind, idx ...int) bool {
	if p == nil || k < 0 || k >= numKinds {
		return false
	}
	if p.forcedAt[k] != nil && p.forcedAt[k][idxKey(idx)] {
		return true
	}
	if len(idx) > 0 && p.forced[k][idx[0]] {
		rest := true
		for _, i := range idx[1:] {
			if i != 0 {
				rest = false
				break
			}
		}
		if rest {
			return true
		}
	}
	rate := p.rates[k]
	if rate <= 0 {
		return false
	}
	return p.uniform(k, idx) < rate
}

// Pick selects a victim index in [0, n) for a fault that fired at the
// injection point — e.g. which of the still-reachable committee members
// drops. The draw comes from a math/rand generator seeded from the plan
// stream (the simulation-exempt use the arblint policy table documents), so
// it is as replayable as Fires.
func (p *Plan) Pick(n int, k Kind, idx ...int) int {
	if p == nil || n <= 1 {
		return 0
	}
	var b [8]byte
	_, _ = benchrand.New(p.hash(domainPick, k, idx)).Read(b[:])
	seed := int64(binary.LittleEndian.Uint64(b[:]) >> 1)
	return rand.New(rand.NewSource(seed)).Intn(n)
}

// Record appends a fault the runtime acted on to the plan's log.
func (p *Plan) Record(f Fault) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f.Idx = append([]int(nil), f.Idx...)
	p.fired = append(p.fired, f)
}

// Fired returns a copy of the fired-fault log in record order. The runtime
// records on the coordinating goroutine (device order for uploads), so for a
// given plan and query the log is identical at every worker count.
func (p *Plan) Fired() []Fault {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Fault, len(p.fired))
	for i, f := range p.fired {
		out[i] = Fault{Kind: f.Kind, Idx: append([]int(nil), f.Idx...), Note: f.Note}
	}
	return out
}

// Parse builds a plan from a replay spec: comma-separated entries of
//
//	seed=N        the replay seed (default 0)
//	<kind>=<rate> an independent per-injection-point probability in [0, 1]
//	<kind>@<seq>  a forced fault (see Force)
//
// with kinds upload, dropout, dealer, crash, wal, shard, daemon — e.g.
// "seed=7,upload=0.05,dropout=0.01,crash@1". An empty spec returns a nil
// plan (no injection).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := New(0)
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if at := strings.IndexByte(tok, '@'); at >= 0 {
			k, ok := kindByName(tok[:at])
			if !ok {
				return nil, fmt.Errorf("faults: unknown kind %q in %q", tok[:at], tok)
			}
			// "kind@N" forces the first coordinate (Force); "kind@a.b.c"
			// pins every coordinate (ForceAt).
			coords := strings.Split(tok[at+1:], ".")
			idx := make([]int, len(coords))
			for i, c := range coords {
				v, err := strconv.Atoi(c)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("faults: bad forced index in %q", tok)
				}
				idx[i] = v
			}
			if len(idx) == 1 {
				p.Force(k, idx[0])
			} else {
				p.ForceAt(k, idx...)
			}
			continue
		}
		eq := strings.IndexByte(tok, '=')
		if eq < 0 {
			return nil, fmt.Errorf("faults: entry %q is not seed=N, kind=rate, or kind@seq", tok)
		}
		key, val := tok[:eq], tok[eq+1:]
		if key == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", val)
			}
			p.seed = seed
			continue
		}
		k, ok := kindByName(key)
		if !ok {
			return nil, fmt.Errorf("faults: unknown kind %q in %q", key, tok)
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faults: rate in %q must be in [0, 1]", tok)
		}
		p.SetRate(k, rate)
	}
	return p, nil
}

// String renders the plan in canonical Parse form: seed first, then each
// kind's rate and sorted forced entries in kind order. Parse(p.String()) is
// equivalent to p.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", p.seed)}
	for k := Kind(0); k < numKinds; k++ {
		if p.rates[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, p.rates[k]))
		}
		if len(p.forced[k]) > 0 {
			seqs := make([]int, 0, len(p.forced[k]))
			for seq := range p.forced[k] {
				seqs = append(seqs, seq)
			}
			sort.Ints(seqs)
			for _, seq := range seqs {
				parts = append(parts, fmt.Sprintf("%s@%d", k, seq))
			}
		}
		if len(p.forcedAt[k]) > 0 {
			keys := make([]string, 0, len(p.forcedAt[k]))
			for key := range p.forcedAt[k] {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				parts = append(parts, fmt.Sprintf("%s@%s", k, key))
			}
		}
	}
	return strings.Join(parts, ",")
}
