package shamir

import (
	"math/big"
	"testing"
	"testing/quick"
)

// testPrime is a 61-bit NTT-friendly prime, plenty for unit tests.
var testPrime = big.NewInt((1 << 61) - 1) // 2^61-1 is a Mersenne prime

func field(t testing.TB) *Field {
	f, err := NewField(testPrime)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFieldRejectsComposite(t *testing.T) {
	if _, err := NewField(big.NewInt(15)); err == nil {
		t.Error("composite modulus accepted")
	}
	if _, err := NewField(big.NewInt(2)); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := NewField(nil); err == nil {
		t.Error("nil modulus accepted")
	}
}

func TestMustFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustField(4) did not panic")
		}
	}()
	MustField(big.NewInt(4))
}

func TestSplitReconstruct(t *testing.T) {
	f := field(t)
	secret := big.NewInt(123456789)
	shares, err := f.Split(secret, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 5 {
		t.Fatalf("got %d shares", len(shares))
	}
	got, err := f.Reconstruct(shares, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("reconstructed %v, want %v", got, secret)
	}
	// Any subset of 3 works.
	got, err = f.Reconstruct([]Share{shares[4], shares[1], shares[2]}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("subset reconstruction %v, want %v", got, secret)
	}
}

func TestReconstructTooFewShares(t *testing.T) {
	f := field(t)
	shares, _ := f.Split(big.NewInt(7), 5, 3)
	if _, err := f.Reconstruct(shares[:2], 3); err == nil {
		t.Fatal("reconstruction with too few shares should fail")
	}
}

func TestReconstructDuplicateShares(t *testing.T) {
	f := field(t)
	shares, _ := f.Split(big.NewInt(7), 5, 3)
	dup := []Share{shares[0], shares[0], shares[1]}
	if _, err := f.Reconstruct(dup, 3); err == nil {
		t.Fatal("duplicate shares should be rejected")
	}
}

func TestSplitInvalidParams(t *testing.T) {
	f := field(t)
	if _, err := f.Split(big.NewInt(1), 2, 3); err == nil {
		t.Error("n < t accepted")
	}
	if _, err := f.Split(big.NewInt(1), 3, 0); err == nil {
		t.Error("t = 0 accepted")
	}
}

func TestTMinusOneSharesRevealNothingStructural(t *testing.T) {
	// Structural check: with t-1 shares, every candidate secret is
	// consistent with some polynomial, so reconstruction at threshold t-1
	// (if forced) yields a value that need not be the secret. We verify the
	// sharing is actually random by checking two sharings of the same
	// secret differ.
	f := field(t)
	s1, _ := f.Split(big.NewInt(42), 3, 2)
	s2, _ := f.Split(big.NewInt(42), 3, 2)
	if s1[0].Y.Cmp(s2[0].Y) == 0 && s1[1].Y.Cmp(s2[1].Y) == 0 {
		t.Fatal("two sharings identical: polynomial not randomized")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	f := field(t)
	a, _ := f.Split(big.NewInt(1000), 5, 3)
	b, _ := f.Split(big.NewInt(234), 5, 3)
	sum := make([]Share, 5)
	for i := range sum {
		s, err := f.Add(a[i], b[i])
		if err != nil {
			t.Fatal(err)
		}
		sum[i] = s
	}
	got, err := f.Reconstruct(sum, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 1234 {
		t.Fatalf("share-wise add reconstructed %v, want 1234", got)
	}
}

func TestAddMismatchedPoints(t *testing.T) {
	f := field(t)
	a, _ := f.Split(big.NewInt(1), 3, 2)
	if _, err := f.Add(a[0], a[1]); err == nil {
		t.Fatal("adding shares at different points should fail")
	}
}

func TestScalarMulAndAddConst(t *testing.T) {
	f := field(t)
	a, _ := f.Split(big.NewInt(21), 5, 3)
	doubled := make([]Share, 5)
	plus5 := make([]Share, 5)
	for i := range a {
		doubled[i] = f.ScalarMul(a[i], big.NewInt(2))
		plus5[i] = f.AddConst(a[i], big.NewInt(5))
	}
	got, _ := f.Reconstruct(doubled, 3)
	if got.Int64() != 42 {
		t.Fatalf("2*21 = %v", got)
	}
	got, _ = f.Reconstruct(plus5, 3)
	if got.Int64() != 26 {
		t.Fatalf("21+5 = %v", got)
	}
}

func TestLagrangeCoefficients(t *testing.T) {
	f := field(t)
	secret := big.NewInt(987654321)
	shares, _ := f.Split(secret, 4, 3)
	xs := []int64{shares[0].X, shares[2].X, shares[3].X}
	coeffs, err := f.LagrangeCoefficients(xs)
	if err != nil {
		t.Fatal(err)
	}
	acc := new(big.Int)
	for i, sh := range []Share{shares[0], shares[2], shares[3]} {
		term := new(big.Int).Mul(coeffs[i], sh.Y)
		acc.Add(acc, term)
		acc.Mod(acc, f.P)
	}
	if acc.Cmp(secret) != 0 {
		t.Fatalf("coefficient reconstruction %v, want %v", acc, secret)
	}
}

func TestLagrangeCoefficientsRejectsBadPoints(t *testing.T) {
	f := field(t)
	if _, err := f.LagrangeCoefficients([]int64{0, 1}); err == nil {
		t.Error("x=0 accepted")
	}
	if _, err := f.LagrangeCoefficients([]int64{1, 1}); err == nil {
		t.Error("duplicate x accepted")
	}
}

// Property: reconstruct∘split is the identity for random secrets, thresholds
// and committee sizes.
func TestQuickSplitReconstruct(t *testing.T) {
	f := field(t)
	fn := func(raw uint64, nRaw, tRaw uint8) bool {
		n := int(nRaw)%10 + 1
		th := int(tRaw)%n + 1
		secret := new(big.Int).SetUint64(raw)
		secret.Mod(secret, f.P)
		shares, err := f.Split(secret, n, th)
		if err != nil {
			return false
		}
		got, err := f.Reconstruct(shares, th)
		return err == nil && got.Cmp(secret) == 0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: linearity — reconstruct(a+b shares) = a+b.
func TestQuickLinearity(t *testing.T) {
	f := field(t)
	fn := func(a, b uint32) bool {
		sa, err1 := f.Split(big.NewInt(int64(a)), 4, 2)
		sb, err2 := f.Split(big.NewInt(int64(b)), 4, 2)
		if err1 != nil || err2 != nil {
			return false
		}
		sum := make([]Share, 4)
		for i := range sum {
			s, err := f.Add(sa[i], sb[i])
			if err != nil {
				return false
			}
			sum[i] = s
		}
		got, err := f.Reconstruct(sum, 2)
		return err == nil && got.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSplit40(b *testing.B) {
	f := MustField(testPrime)
	secret := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Split(secret, 40, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct40(b *testing.B) {
	f := MustField(testPrime)
	shares, _ := f.Split(big.NewInt(123456789), 40, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Reconstruct(shares, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReconstructEveryThresholdSubset checks the exact threshold boundary:
// every 3-of-5 subset reconstructs the secret, and no subset needs a fourth
// share — the property VSR re-dealing from arbitrary survivors relies on.
func TestReconstructEveryThresholdSubset(t *testing.T) {
	f := field(t)
	secret := big.NewInt(31337)
	shares, err := f.Split(secret, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			for c := b + 1; c < 5; c++ {
				subset := []Share{shares[a], shares[b], shares[c]}
				got, err := f.Reconstruct(subset, 3)
				if err != nil {
					t.Fatalf("subset {%d,%d,%d}: %v", a, b, c, err)
				}
				if got.Cmp(secret) != 0 {
					t.Errorf("subset {%d,%d,%d} reconstructed %v, want %v",
						a, b, c, got, secret)
				}
			}
		}
	}
}

// TestReconstructDuplicateIndexVariants pins duplicate-index handling:
// duplicates inside the threshold prefix are rejected, while extra shares
// beyond the first t are never consulted (Reconstruct's documented
// first-t-shares contract).
func TestReconstructDuplicateIndexVariants(t *testing.T) {
	f := field(t)
	secret := big.NewInt(99)
	shares, _ := f.Split(secret, 5, 3)
	// Duplicate at the front: rejected.
	if _, err := f.Reconstruct([]Share{shares[2], shares[2], shares[4]}, 3); err == nil {
		t.Error("duplicate index inside the threshold prefix accepted")
	}
	// x=0 smuggled in: rejected (it would leak the constant term trivially).
	if _, err := f.Reconstruct([]Share{{X: 0, Y: big.NewInt(1)}, shares[1], shares[2]}, 3); err == nil {
		t.Error("share at x=0 accepted")
	}
	// A duplicate past the threshold prefix is ignored, not an error.
	got, err := f.Reconstruct([]Share{shares[0], shares[1], shares[2], shares[2]}, 3)
	if err != nil {
		t.Fatalf("trailing duplicate rejected: %v", err)
	}
	if got.Cmp(secret) != 0 {
		t.Errorf("reconstructed %v, want %v", got, secret)
	}
}

// TestWrongDealingShareShiftsSecret documents why VSR needs commitments: a
// share dealt from the wrong polynomial (here: a tampered Y) reconstructs to
// a *wrong* secret without any error from plain Shamir — only the
// commitment check in internal/vsr can catch it.
func TestWrongDealingShareShiftsSecret(t *testing.T) {
	f := field(t)
	secret := big.NewInt(424242)
	shares, _ := f.Split(secret, 5, 3)
	bad := Share{X: shares[0].X, Y: new(big.Int).Add(shares[0].Y, big.NewInt(1))}
	got, err := f.Reconstruct([]Share{bad, shares[1], shares[2]}, 3)
	if err != nil {
		t.Fatalf("tampered share rejected by plain Shamir: %v", err)
	}
	if got.Cmp(secret) == 0 {
		t.Error("tampered share still reconstructed the true secret")
	}
}
