// Package shamir implements Shamir secret sharing over a prime field.
//
// Arboretum's committees run honest-majority MPC over Shamir shares
// (Section 6: SPDZ-wise Shamir in MP-SPDZ), transfer secrets between
// committees via verifiable secret redistribution (Section 5.2), and
// reconstruct outputs by Lagrange interpolation (Section 5.5). This package
// provides the share/reconstruct core used by internal/mpc and internal/vsr.
package shamir

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// Share is one party's share: the evaluation of the sharing polynomial at
// point X (a nonzero field element, conventionally the 1-based party index).
type Share struct {
	X int64
	Y *big.Int
}

// Field is a prime field Z_p.
type Field struct {
	P *big.Int
}

// NewField returns the field Z_p. It returns an error if p is not an odd
// prime (probabilistic check).
func NewField(p *big.Int) (*Field, error) {
	if p == nil || p.Sign() <= 0 || p.Bit(0) == 0 || !p.ProbablyPrime(20) {
		return nil, errors.New("shamir: modulus must be an odd prime")
	}
	return &Field{P: new(big.Int).Set(p)}, nil
}

// MustField is NewField for compile-time-known primes; it panics on error.
func MustField(p *big.Int) *Field {
	f, err := NewField(p)
	if err != nil {
		panic(err)
	}
	return f
}

// Reduce returns v mod p in [0, p).
func (f *Field) Reduce(v *big.Int) *big.Int {
	r := new(big.Int).Mod(v, f.P)
	return r
}

// Rand returns a uniformly random field element.
func (f *Field) Rand() (*big.Int, error) {
	return rand.Int(rand.Reader, f.P)
}

// Polynomial is a sharing polynomial with Coeffs[0] = secret.
type Polynomial struct {
	Coeffs []*big.Int
	field  *Field
}

// RandomPolynomial returns a degree-(t−1) polynomial with constant term
// secret, so any t shares reconstruct and t−1 reveal nothing.
func (f *Field) RandomPolynomial(secret *big.Int, t int) (*Polynomial, error) {
	if t < 1 {
		return nil, errors.New("shamir: threshold must be at least 1")
	}
	coeffs := make([]*big.Int, t)
	coeffs[0] = f.Reduce(secret)
	for i := 1; i < t; i++ {
		c, err := f.Rand()
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	return &Polynomial{Coeffs: coeffs, field: f}, nil
}

// Eval evaluates the polynomial at x by Horner's rule.
func (p *Polynomial) Eval(x int64) *big.Int {
	bx := big.NewInt(x)
	acc := new(big.Int)
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, bx)
		acc.Add(acc, p.Coeffs[i])
		acc.Mod(acc, p.field.P)
	}
	return acc
}

// Split shares secret among n parties with reconstruction threshold t
// (any t of the n shares recover the secret). Party i receives the share at
// x = i+1.
func (f *Field) Split(secret *big.Int, n, t int) ([]Share, error) {
	if n < t {
		return nil, fmt.Errorf("shamir: n=%d < t=%d", n, t)
	}
	if t < 1 {
		return nil, errors.New("shamir: threshold must be at least 1")
	}
	poly, err := f.RandomPolynomial(secret, t)
	if err != nil {
		return nil, err
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := int64(i + 1)
		shares[i] = Share{X: x, Y: poly.Eval(x)}
	}
	return shares, nil
}

// Reconstruct recovers the secret from at least t shares by Lagrange
// interpolation at 0. Duplicate X coordinates are rejected.
func (f *Field) Reconstruct(shares []Share, t int) (*big.Int, error) {
	if len(shares) < t {
		return nil, fmt.Errorf("shamir: need %d shares, have %d", t, len(shares))
	}
	use := shares[:t]
	seen := map[int64]bool{}
	for _, s := range use {
		if s.X == 0 {
			return nil, errors.New("shamir: share at x=0")
		}
		if seen[s.X] {
			return nil, fmt.Errorf("shamir: duplicate share x=%d", s.X)
		}
		seen[s.X] = true
	}
	secret := new(big.Int)
	for i, si := range use {
		li := f.lagrangeAtZero(use, i)
		term := new(big.Int).Mul(si.Y, li)
		secret.Add(secret, term)
		secret.Mod(secret, f.P)
	}
	return secret, nil
}

// LagrangeCoefficients returns the Lagrange basis coefficients at 0 for the
// given evaluation points, so that secret = Σ coeffs[i]·y_i. Used by the MPC
// engine to reconstruct without re-deriving per call.
func (f *Field) LagrangeCoefficients(xs []int64) ([]*big.Int, error) {
	shares := make([]Share, len(xs))
	seen := map[int64]bool{}
	for i, x := range xs {
		if x == 0 || seen[x] {
			return nil, fmt.Errorf("shamir: bad evaluation point x=%d", x)
		}
		seen[x] = true
		shares[i] = Share{X: x}
	}
	out := make([]*big.Int, len(xs))
	for i := range xs {
		out[i] = f.lagrangeAtZero(shares, i)
	}
	return out, nil
}

// lagrangeAtZero computes ℓ_i(0) = Π_{j≠i} x_j / (x_j − x_i) mod p.
func (f *Field) lagrangeAtZero(shares []Share, i int) *big.Int {
	num := big.NewInt(1)
	den := big.NewInt(1)
	xi := big.NewInt(shares[i].X)
	for j, sj := range shares {
		if j == i {
			continue
		}
		xj := big.NewInt(sj.X)
		num.Mul(num, xj)
		num.Mod(num, f.P)
		d := new(big.Int).Sub(xj, xi)
		den.Mul(den, d)
		den.Mod(den, f.P)
	}
	den.ModInverse(den, f.P)
	num.Mul(num, den)
	num.Mod(num, f.P)
	return num
}

// Add returns the share-wise sum of two sharings (same X required), the
// local "addition gate" of Shamir MPC.
func (f *Field) Add(a, b Share) (Share, error) {
	if a.X != b.X {
		return Share{}, fmt.Errorf("shamir: mismatched share points %d and %d", a.X, b.X)
	}
	y := new(big.Int).Add(a.Y, b.Y)
	y.Mod(y, f.P)
	return Share{X: a.X, Y: y}, nil
}

// ScalarMul multiplies a share by a public constant.
func (f *Field) ScalarMul(a Share, k *big.Int) Share {
	y := new(big.Int).Mul(a.Y, k)
	y.Mod(y, f.P)
	return Share{X: a.X, Y: y}
}

// AddConst adds a public constant to a sharing (added to every share of a
// degree-(t−1) sharing of the secret; valid because the constant polynomial
// is itself a valid sharing of k).
func (f *Field) AddConst(a Share, k *big.Int) Share {
	y := new(big.Int).Add(a.Y, k)
	y.Mod(y, f.P)
	return Share{X: a.X, Y: y}
}
