package costmodel

import (
	"testing"

	"arboretum/internal/bgv"
)

func TestCalibrateRingTestRing(t *testing.T) {
	m, err := CalibrateRing(bgv.TestRNSParams)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots != bgv.TestRNSParams.N {
		t.Fatalf("Slots = %d, want the ring degree %d", m.Slots, bgv.TestRNSParams.N)
	}
	wantBytes := float64(16 * len(bgv.TestRNSParams.Qi) * bgv.TestRNSParams.N)
	if m.CtBytes != wantBytes {
		t.Fatalf("CtBytes = %v, want the serialized size %v", m.CtBytes, wantBytes)
	}
	if m.HEEnc <= 0 || m.HEAdd <= 0 || m.HEMulCt <= 0 {
		t.Fatalf("non-positive measured cost: enc=%v add=%v mul=%v", m.HEEnc, m.HEAdd, m.HEMulCt)
	}
	// The deep-circuit estimates must scale with the measured multiplication
	// so the planner's orderings survive recalibration.
	d := Default()
	wantCmp := d.HECmp * (m.HEMulCt / d.HEMulCt)
	if m.HECmp != wantCmp {
		t.Fatalf("HECmp = %v, want %v (mul-ratio scaled)", m.HECmp, wantCmp)
	}
}

func TestCalibrateRingRejectsBadParams(t *testing.T) {
	if _, err := CalibrateRing(bgv.RNSParams{N: 1000, T: 65537, Qi: []uint64{5}}); err == nil {
		t.Fatal("CalibrateRing accepted invalid ring parameters")
	}
}
