package costmodel

import "testing"

func TestCalibrateProducesUsableModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration benchmarks real crypto")
	}
	m, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	// Structural orderings the planner relies on.
	if m.HEMulCt < m.HEAdd {
		t.Error("HE multiplication should cost more than addition")
	}
	if m.MPCPerCmpCPU < m.MPCPerMultCPU {
		t.Error("MPC comparison should cost more than multiplication")
	}
	if m.HEEnc <= 0 || m.HEAdd <= 0 || m.ZKPGen <= 0 || m.MerkleHash <= 0 {
		t.Errorf("non-positive calibrated costs: %+v", m)
	}
	// Wire sizes and composite committee costs keep deployment defaults.
	d := Default()
	if m.CtBytes != d.CtBytes || m.KeyGenBytes != d.KeyGenBytes {
		t.Error("calibration should not touch wire sizes / composite costs")
	}
	if err := m.sanity(); err != nil {
		t.Errorf("sanity: %v", err)
	}
}

func TestRingWorkScale(t *testing.T) {
	// 2^10 → 2^15: (2^15·15)/(2^10·10) = 48.
	if got := ringWorkScale(1<<10, 1<<15); got != 48 {
		t.Errorf("ringWorkScale = %g, want 48", got)
	}
	if got := ringWorkScale(1<<12, 1<<12); got != 1 {
		t.Errorf("identity scale = %g", got)
	}
}

func TestSanityRejectsBrokenModels(t *testing.T) {
	m := Default()
	m.HEAdd = 0
	if err := m.sanity(); err == nil {
		t.Error("zero HEAdd accepted")
	}
	m = Default()
	m.HEMulCt = m.HEAdd / 2
	if err := m.sanity(); err == nil {
		t.Error("mult < add accepted")
	}
	m = Default()
	m.MPCPerCmpCPU = m.MPCPerMultCPU / 2
	if err := m.sanity(); err == nil {
		t.Error("cmp < mult accepted")
	}
}
