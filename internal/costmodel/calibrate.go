package costmodel

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"arboretum/internal/ahe"
	"arboretum/internal/bgv"
	"arboretum/internal/merkle"
	"arboretum/internal/mpc"
	"arboretum/internal/zkp"
)

// Calibrate builds a cost model by micro-benchmarking this repository's own
// cryptographic substrates on the current machine — the automated
// alternative to hand-benchmarking that the paper points at (Section 4.6:
// "the manual benchmarking step could be avoided by using an automated cost
// modeling framework, such as CostCO"). The resulting model prices HE, MPC,
// ZKP, and hashing operations from live measurements, scaled from the test
// parameter sizes to the paper's deployment parameters; composite committee
// costs (key generation, decryption) and wire sizes keep the
// deployment-calibrated defaults, since they depend on protocol structure
// rather than raw primitive speed.
//
// Use the result the same way as Default(): pass it as planner.Request.Model
// to make planning decisions reflect the local machine's crypto speeds.
func Calibrate() (*Model, error) {
	m := Default()

	// --- BGV at the reduced test ring, scaled up to the paper's 2^15 ring.
	ctx, err := bgv.NewContext(bgv.TestParams)
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibrate bgv: %w", err)
	}
	keys, err := ctx.GenerateKeys(rand.Reader)
	if err != nil {
		return nil, err
	}
	// NTT work scales ~n·log n between ring degrees.
	ringScale := ringWorkScale(bgv.TestParams.N, m.Slots)
	encT, err := timeIt(8, func() error {
		_, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{1, 2, 3})
		return err
	})
	if err != nil {
		return nil, err
	}
	m.HEEnc = encT * ringScale
	ctA, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{1})
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibrate encrypt: %w", err)
	}
	ctB, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{2})
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibrate encrypt: %w", err)
	}
	addT, err := timeIt(64, func() error {
		_, err := ctx.Add(ctA, ctB)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.HEAdd = addT * ringScale
	mulT, err := timeIt(4, func() error {
		_, err := ctx.Mul(ctA, ctB, keys.RLK)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.HEMulCt = mulT * ringScale
	m.HEMulPlain = m.HEMulCt / 10 // plaintext mult skips relinearization

	// --- Paillier at 512 bits, scaled to a 2048-bit deployment modulus
	// (modular exponentiation scales ~cubically in the modulus size).
	sk, err := ahe.GenerateKey(rand.Reader, 512)
	if err != nil {
		return nil, err
	}
	const paillierScale = 4 * 4 * 4
	decT, err := timeIt(16, func() error {
		ct, err := sk.Encrypt(rand.Reader, big.NewInt(7))
		if err != nil {
			return err
		}
		_, err = sk.Decrypt(ct)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.HEDecShare = decT * paillierScale

	// --- MPC with a small committee; per-op costs are per member and the
	// traffic model already scales with the committee size.
	eng, err := mpc.NewEngine(5)
	if err != nil {
		return nil, err
	}
	x, err := eng.Input(0, 123)
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibrate mpc input: %w", err)
	}
	y, err := eng.Input(1, 456)
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibrate mpc input: %w", err)
	}
	multT, err := timeIt(32, func() error {
		eng.Mul(x, y)
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.MPCPerMultCPU = multT
	cmpT, err := timeIt(8, func() error {
		_, err := eng.Less(x, y)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.MPCPerCmpCPU = cmpT
	expT, err := timeIt(4, func() error {
		_, err := eng.FixedExp(x)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.MPCPerExpCPU = expT

	// --- ZKP and hashing.
	prover := zkp.NewProver([]byte("calibration-key"))
	stmt := zkp.Statement{Device: 0, QueryID: 1, Claim: zkp.Claim{Kind: zkp.ClaimOneHot, VectorLen: 8}}
	wit := zkp.Witness{Vector: []int64{0, 1, 0, 0, 0, 0, 0, 0}}
	zkpT, err := timeIt(32, func() error {
		_, err := prover.Prove(stmt, wit)
		return err
	})
	if err != nil {
		return nil, err
	}
	// The simulated proofs are far cheaper than G16; keep the deployment
	// ratio between generation and verification.
	ratio := m.ZKPVerify / m.ZKPGen
	m.ZKPGen = zkpT * 1e6 // MAC → SNARK scale factor (documented substitution)
	m.ZKPVerify = m.ZKPGen * ratio

	leaves := make([][]byte, 256)
	for i := range leaves {
		leaves[i] = []byte{byte(i)}
	}
	hashT, err := timeIt(16, func() error {
		_, err := merkle.New(leaves)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.MerkleHash = hashT / (2 * 256)

	if err := m.sanity(); err != nil {
		return nil, err
	}
	return m, nil
}

// ringWorkScale approximates how n·log2(n) work grows between ring degrees.
func ringWorkScale(from, to int) float64 {
	f := float64(from) * log2f(from)
	t := float64(to) * log2f(to)
	return t / f
}

func log2f(n int) float64 {
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l
}

// timeIt measures the average wall-clock time of fn over iters runs.
func timeIt(iters int, fn func() error) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(iters), nil
}

// sanity rejects models that violate the structural orderings planning
// depends on.
func (m *Model) sanity() error {
	if m.HEAdd <= 0 || m.HEEnc <= 0 || m.MPCPerMultCPU <= 0 {
		return fmt.Errorf("costmodel: non-positive primitive cost after calibration")
	}
	if m.HEMulCt < m.HEAdd {
		return fmt.Errorf("costmodel: ciphertext multiplication cheaper than addition")
	}
	if m.MPCPerCmpCPU < m.MPCPerMultCPU {
		return fmt.Errorf("costmodel: MPC comparison cheaper than multiplication")
	}
	return nil
}
