package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorAddAndGet(t *testing.T) {
	a := Vector{AggCPU: 1, AggBytes: 2, PartExpCPU: 3, PartExpBytes: 4, PartMaxCPU: 5, PartMaxBytes: 6}
	b := Vector{AggCPU: 10, AggBytes: 20, PartExpCPU: 30, PartExpBytes: 40, PartMaxCPU: 50, PartMaxBytes: 60}
	s := a.Add(b)
	wants := map[Metric]float64{
		AggCPU: 11, AggBytes: 22, PartExpCPU: 33, PartExpBytes: 44, PartMaxCPU: 55, PartMaxBytes: 66,
	}
	for m, w := range wants {
		if got := s.Get(m); got != w {
			t.Errorf("Get(%v) = %g, want %g", m, got, w)
		}
	}
}

// Property: Add is commutative and component-wise.
func TestQuickVectorAdd(t *testing.T) {
	f := func(a1, a2, b1, b2 float32) bool {
		a := Vector{AggCPU: float64(a1), PartMaxBytes: float64(a2)}
		b := Vector{AggCPU: float64(b1), PartMaxBytes: float64(b2)}
		ab, ba := a.Add(b), b.Add(a)
		return ab == ba && ab.AggCPU == float64(a1)+float64(b1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLimitsViolated(t *testing.T) {
	l := Limits{AggCPU: 100, PartMaxBytes: 4e9}
	if m, bad := l.Violated(Vector{AggCPU: 50, PartMaxBytes: 1e9}); bad {
		t.Errorf("within-limits vector flagged as violating %v", m)
	}
	m, bad := l.Violated(Vector{AggCPU: 150})
	if !bad || m != AggCPU {
		t.Errorf("AggCPU violation not detected: %v %v", m, bad)
	}
	m, bad = l.Violated(Vector{PartMaxBytes: 5e9})
	if !bad || m != PartMaxBytes {
		t.Errorf("PartMaxBytes violation not detected: %v %v", m, bad)
	}
	// Zero limits mean unlimited.
	if _, bad := (Limits{}).Violated(Vector{AggCPU: 1e18}); bad {
		t.Error("zero limits should not constrain")
	}
}

func TestMetricString(t *testing.T) {
	for m := AggCPU; m <= PartMaxBytes; m++ {
		if m.String() == "" {
			t.Errorf("metric %d has empty name", m)
		}
	}
	if Metric(99).String() == "" {
		t.Error("unknown metric has empty name")
	}
}

func TestDefaultModelMagnitudes(t *testing.T) {
	m := Default()
	// Key generation: the paper reports ~700 MB and ~14 min per member.
	if m.KeyGenBytes < 5e8 || m.KeyGenBytes > 1e9 {
		t.Errorf("KeyGenBytes = %g, want ~7e8", m.KeyGenBytes)
	}
	if m.KeyGenCPU < 600 || m.KeyGenCPU > 1200 {
		t.Errorf("KeyGenCPU = %g, want ~840 s", m.KeyGenCPU)
	}
	// One ciphertext ≈ 1.1 MB: the paper's per-participant traffic figure.
	if m.CtBytes < 5e5 || m.CtBytes > 5e6 {
		t.Errorf("CtBytes = %g, want ~1.1e6", m.CtBytes)
	}
	// 2^15 slots — enough for the zip-code query's 41,683 categories in two
	// ciphertexts and C=2^15 evaluation queries in one.
	if m.Slots != 1<<15 {
		t.Errorf("Slots = %d, want 2^15", m.Slots)
	}
	// Encrypted comparison must be far more expensive than addition — this
	// asymmetry is why the exponential mechanism is the hard case.
	if m.HECmp < 1000*m.HEAdd {
		t.Error("HECmp should dwarf HEAdd")
	}
}

func TestPlatformsAndPower(t *testing.T) {
	if Server.CPUMult != 1.0 {
		t.Error("server multiplier must be 1")
	}
	// Pi 4 ≈ 7.8× the servers (767 µs vs 6 ms RSA signature, Section 7.5).
	if Pi4.CPUMult < 6 || Pi4.CPUMult > 10 {
		t.Errorf("Pi4 multiplier = %g", Pi4.CPUMult)
	}
	// 14 minutes of committee compute must stay under 5% of an iPhone SE
	// battery (Figure 11: "below 5% for all of the queries we tried").
	mah := PowerMAh(Pi4, 840)
	if mah <= 0 || mah >= 0.05*IPhoneSEBatteryMAh {
		t.Errorf("keygen power = %g mAh, want (0, %g)", mah, 0.05*IPhoneSEBatteryMAh)
	}
}

func TestGeoRTT(t *testing.T) {
	sites := []GeoSite{Mumbai, NewYork, Paris, Sydney}
	for _, a := range sites {
		if RTT(a, a) != 0 {
			t.Errorf("RTT(%v,%v) != 0", a, a)
		}
		for _, b := range sites {
			if RTT(a, b) != RTT(b, a) {
				t.Errorf("RTT not symmetric for %v,%v", a, b)
			}
		}
		if a.String() == "" {
			t.Error("empty site name")
		}
	}
	worst := MaxRTT(sites)
	if worst != RTT(Paris, Sydney) {
		t.Errorf("MaxRTT = %g, want Paris–Sydney %g", worst, RTT(Paris, Sydney))
	}
}

// Section 7.5's two headline numbers as shape checks: geo-distribution
// increased the Gumbel MPC from 73.8 s to 521.2 s (+606%), and 4 Pi-class
// parties out of 42 increased it to 111.7 s (+51%).
func TestMPCWallClockShapes(t *testing.T) {
	const cpu = 60.0    // per-member online compute, seconds
	const rounds = 1600 // a comparison-heavy MPC has many rounds
	local := MPCWallClock(cpu, rounds, Server, 0.0005)
	geo := MPCWallClock(cpu, rounds, Server, MaxRTT([]GeoSite{Mumbai, NewYork, Paris, Sydney}))
	if geo < 4*local {
		t.Errorf("geo distribution should blow up round-bound MPCs: local %g, geo %g", local, geo)
	}
	slow := MPCWallClock(cpu, rounds, Pi4, 0.0005)
	ratio := slow / local
	if ratio < 1.2 || math.IsNaN(ratio) {
		t.Errorf("slow devices should slow the MPC: ratio %g", ratio)
	}
}

func TestEnergyMetrics(t *testing.T) {
	v := Vector{PartExpCPU: 36, PartExpBytes: 1e6, PartMaxCPU: 360, PartMaxBytes: 1e9}
	// 36 s × 0.0833 mAh/s = 3 mAh + 1 MB × 0.056 mAh/MB ≈ 3.056 mAh.
	exp := v.Get(PartExpEnergy)
	if exp < 3.0 || exp > 3.2 {
		t.Errorf("expected energy = %g mAh, want ~3.06", exp)
	}
	mx := v.Get(PartMaxEnergy)
	if mx < 85 || mx > 87 { // 30 mAh compute + 56 mAh radio
		t.Errorf("max energy = %g mAh, want ~86", mx)
	}
	if PartExpEnergy.String() == "" || PartMaxEnergy.String() == "" {
		t.Error("energy metrics unnamed")
	}
	// Energy mixes both axes: zeroing bytes must lower it.
	lighter := v
	lighter.PartExpBytes = 0
	if lighter.Get(PartExpEnergy) >= exp {
		t.Error("radio bytes not contributing to energy")
	}
}
