// Package costmodel implements Arboretum's cost model (Section 4.6): a table
// of benchmark-derived constants for each building block (HE operations, MPC
// start-up and incremental costs, ZKP generation/verification, traffic
// sizes), six-metric cost vectors, platform multipliers for heterogeneous
// devices, a geographic latency model, and the battery/power model of
// Section 7.4.
//
// The paper benchmarks its primitives on PowerEdge R430 servers and
// extrapolates deployment costs; the constants below are calibrated to the
// magnitudes the paper reports (e.g. ~700 MB and ~14 min for a key-generation
// committee member, ~1.1 MB of aggregator traffic per participant, 7–62 s of
// expected participant computation). As the paper notes, scoring does not
// need exact costs — it needs to order candidate plans, and "even a rough
// cost model should suffice for this purpose."
package costmodel

import "fmt"

// Vector is the six-metric cost of a plan (Section 4.2): two aggregator
// metrics and four participant metrics (expected and maximum, because only a
// few devices serve on committees but those pay much more).
type Vector struct {
	AggCPU       float64 // aggregator computation, core-seconds
	AggBytes     float64 // aggregator bytes sent
	PartExpCPU   float64 // expected participant computation, seconds
	PartExpBytes float64 // expected participant bytes sent
	PartMaxCPU   float64 // maximum participant computation, seconds
	PartMaxBytes float64 // maximum participant bytes sent
}

// Add returns the element-wise sum.
func (v Vector) Add(o Vector) Vector {
	return Vector{
		AggCPU:       v.AggCPU + o.AggCPU,
		AggBytes:     v.AggBytes + o.AggBytes,
		PartExpCPU:   v.PartExpCPU + o.PartExpCPU,
		PartExpBytes: v.PartExpBytes + o.PartExpBytes,
		PartMaxCPU:   v.PartMaxCPU + o.PartMaxCPU,
		PartMaxBytes: v.PartMaxBytes + o.PartMaxBytes,
	}
}

// Metric selects one component of a Vector as an optimization goal or limit.
type Metric int

// The six supported metrics, plus two derived energy metrics (the paper:
// "Other metrics, such as energy, should not be difficult to add if
// desired" — Section 4.2). Energy mixes compute drain and radio drain, so
// minimizing it can pick a different plan than minimizing CPU or bytes
// alone.
const (
	AggCPU Metric = iota
	AggBytes
	PartExpCPU
	PartExpBytes
	PartMaxCPU
	PartMaxBytes
	PartExpEnergy // derived: expected device battery drain, mAh
	PartMaxEnergy // derived: worst-case device battery drain, mAh
)

var metricNames = map[Metric]string{
	AggCPU: "aggregator-cpu", AggBytes: "aggregator-bytes",
	PartExpCPU: "participant-expected-cpu", PartExpBytes: "participant-expected-bytes",
	PartMaxCPU: "participant-max-cpu", PartMaxBytes: "participant-max-bytes",
	PartExpEnergy: "participant-expected-energy", PartMaxEnergy: "participant-max-energy",
}

// Energy model for the derived metrics: a phone-class device draws
// ~0.3 A at 5 V under computational load (Section 7.4's measurements) and
// spends roughly 1 J per transmitted MB on the radio.
const (
	cpuMAhPerSecond = 0.3 * 1000 / 3600 // ≈ 0.083 mAh per compute-second
	radioMAhPerByte = 5.6e-8            // ≈ 0.056 mAh per transmitted MB
)

// EnergyMAh converts a (cpu seconds, bytes) pair to battery drain.
func EnergyMAh(cpuSeconds, bytes float64) float64 {
	return cpuSeconds*cpuMAhPerSecond + bytes*radioMAhPerByte
}

func (m Metric) String() string {
	if s, ok := metricNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Get extracts the metric from a vector.
func (v Vector) Get(m Metric) float64 {
	switch m {
	case AggCPU:
		return v.AggCPU
	case AggBytes:
		return v.AggBytes
	case PartExpCPU:
		return v.PartExpCPU
	case PartExpBytes:
		return v.PartExpBytes
	case PartMaxCPU:
		return v.PartMaxCPU
	case PartMaxBytes:
		return v.PartMaxBytes
	case PartExpEnergy:
		return EnergyMAh(v.PartExpCPU, v.PartExpBytes)
	case PartMaxEnergy:
		return EnergyMAh(v.PartMaxCPU, v.PartMaxBytes)
	default:
		return 0
	}
}

// Limits bounds acceptable plans; zero means unlimited.
type Limits struct {
	AggCPU       float64
	AggBytes     float64
	PartExpCPU   float64
	PartExpBytes float64
	PartMaxCPU   float64
	PartMaxBytes float64
}

// Violated reports the first limit a cost vector exceeds, if any.
func (l Limits) Violated(v Vector) (Metric, bool) {
	type check struct {
		limit float64
		m     Metric
	}
	for _, c := range []check{
		{l.AggCPU, AggCPU}, {l.AggBytes, AggBytes},
		{l.PartExpCPU, PartExpCPU}, {l.PartExpBytes, PartExpBytes},
		{l.PartMaxCPU, PartMaxCPU}, {l.PartMaxBytes, PartMaxBytes},
	} {
		if c.limit > 0 && v.Get(c.m) > c.limit {
			return c.m, true
		}
	}
	return 0, false
}

// Model holds the benchmark-derived constants. All times are seconds on the
// reference platform (server core); all sizes are bytes.
type Model struct {
	// --- homomorphic encryption (BGV, poly degree 2^15, 135-bit modulus) ---
	CtBytes    float64 // one ciphertext on the wire
	Slots      int     // plaintext slots per ciphertext
	HEEnc      float64 // encrypt one ciphertext
	HEAdd      float64 // homomorphic addition
	HEMulPlain float64 // plaintext multiplication
	HEMulCt    float64 // ciphertext multiplication + relinearization
	HECmp      float64 // one encrypted comparison (FHE circuit)
	HEExp      float64 // one encrypted exponential evaluation
	HEDecShare float64 // one member's distributed-decryption share

	// --- zero-knowledge proofs (G16 via ZoKrates/bellman) ---
	ZKPBytes  float64 // proof size on the wire
	ZKPGen    float64 // prove a one-hot/range statement (reference core)
	ZKPVerify float64 // verify one proof

	// --- MPC (SPDZ-wise Shamir in MP-SPDZ) per committee member ---
	MPCStartupBytes float64 // joining an MPC: setup, key material
	MPCStartupCPU   float64
	MPCPerMultBytes float64 // per multiplication gate (online + offline)
	MPCPerMultCPU   float64
	MPCPerCmpBytes  float64 // per comparison (≈ bit-decomposition circuit)
	MPCPerCmpCPU    float64
	MPCFirstCmpPen  float64 // extra CPU for the first comparison: triple
	// generation warm-up (Section 6)
	MPCPerExpBytes float64 // fixed-point exponential in MPC
	MPCPerExpCPU   float64
	MPCNoiseBytes  float64 // jointly sampling one noise value
	MPCNoiseCPU    float64

	// --- committee-level composite operations ---
	KeyGenBytes   float64 // per key-generation-committee member (~700 MB)
	KeyGenCPU     float64 // (~14 min)
	DecPerCtBytes float64 // per decryption-committee member per ciphertext
	DecPerCtCPU   float64
	VSRBytes      float64 // hand one secret to the next committee, per member

	// --- misc ---
	SigVerify      float64 // verify one signature (sortition tickets, certs)
	MerkleHash     float64 // one hash when building audit trees
	AuditRespBytes float64 // answer one audit challenge (leaf + proof)
	CertBytes      float64 // query authorization certificate
	ShareBytes     float64 // one secret share on the wire
}

// Default returns the reference model, calibrated to the paper's reported
// magnitudes (see the package comment).
func Default() *Model {
	return &Model{
		CtBytes: 1.1e6, // ≈ 2 polys × 2^15 coeffs × 17 B
		Slots:   1 << 15,
		HEEnc:   2.0, // phone-visible magnitude folded at platform level
		// HEAdd at 8 ms per 2^15-slot addition reproduces Figure 10's
		// crossovers: with A=1,000 core-hours the ZKP checks plus the sum
		// loop overrun the budget at N=2^28, pushing the planner to a
		// device sum tree one step before the ZKP checks alone become
		// infeasible (2^29); with A=5,000 the same happens at 2^30.
		HEAdd:      0.008,
		HEMulPlain: 0.020,
		HEMulCt:    0.200,
		// Comparisons and exponentials on encrypted values are deep FHE
		// circuits — the asymmetry of Section 3.3 that makes the
		// exponential mechanism so much harder than the Laplace mechanism.
		HECmp:      1800.0,
		HEExp:      3600.0,
		HEDecShare: 0.5,

		// ZKPVerify is calibrated to Figure 10's crossover: with a
		// 1,000-core-hour budget the aggregator can still check 2^28 proofs
		// (745 core-hours) but not 2^29 (1,491) — "the red line stops".
		ZKPBytes:  260,
		ZKPGen:    5.0,
		ZKPVerify: 0.010,

		MPCStartupBytes: 5e6,
		MPCStartupCPU:   2.0,
		MPCPerMultBytes: 1e4,
		MPCPerMultCPU:   0.002,
		MPCPerCmpBytes:  4e5,
		MPCPerCmpCPU:    0.10,
		MPCFirstCmpPen:  5.0,
		MPCPerExpBytes:  8e5,
		MPCPerExpCPU:    0.25,
		MPCNoiseBytes:   2e5,
		MPCNoiseCPU:     0.05,

		KeyGenBytes:   7e8,   // ~700 MB (Section 7.2)
		KeyGenCPU:     840.0, // ~14 min
		DecPerCtBytes: 6e6,
		DecPerCtCPU:   4.0,
		VSRBytes:      2e5,

		SigVerify:      0.0008, // RSA-2048 verify, 767 µs sign (Section 7.5)
		MerkleHash:     2e-7,
		AuditRespBytes: 1200,
		CertBytes:      4096,
		ShareBytes:     64,
	}
}

// Platform scales reference-core times to a device class (Section 7.5: an
// RSA-2048 signature takes 767 µs on the servers but 6 ms on a Raspberry
// Pi 4 — a factor of ~8; phones of the study's era are comparable).
type Platform struct {
	Name    string
	CPUMult float64 // multiply reference seconds by this
	// ActiveAmps is the current drawn under computational load at 5 V, for
	// the battery model of Section 7.4.
	ActiveAmps float64
}

// Reference platforms.
var (
	Server = Platform{Name: "server", CPUMult: 1.0, ActiveAmps: 0}
	Phone  = Platform{Name: "phone", CPUMult: 8.0, ActiveAmps: 0.30}
	Pi4    = Platform{Name: "raspberry-pi-4", CPUMult: 7.8, ActiveAmps: 0.30}
)

// PowerMAh converts compute seconds on a platform to battery drain in mAh
// (Section 7.4: measured with a USB power meter, idle draw subtracted).
func PowerMAh(p Platform, cpuSeconds float64) float64 {
	return p.ActiveAmps * 1000 * cpuSeconds / 3600
}

// IPhoneSEBatteryMAh is the 2022 iPhone SE battery the paper compares
// against in Figure 11.
const IPhoneSEBatteryMAh = 1624.0

// GeoSite is a location in the geo-distribution experiment (Section 7.5).
type GeoSite int

// The four sites of the experiment.
const (
	Mumbai GeoSite = iota
	NewYork
	Paris
	Sydney
)

var geoNames = [...]string{"Mumbai", "New York", "Paris", "Sydney"}

func (g GeoSite) String() string { return geoNames[g] }

// RTT returns the modeled round-trip time between two sites in seconds
// (public inter-region latencies, the tc settings of Section 7.5).
func RTT(a, b GeoSite) float64 {
	var rtts = [4][4]float64{
		{0.000, 0.190, 0.110, 0.150},
		{0.190, 0.000, 0.075, 0.200},
		{0.110, 0.075, 0.000, 0.280},
		{0.150, 0.200, 0.280, 0.000},
	}
	return rtts[a][b]
}

// MaxRTT returns the worst pairwise RTT among the sites — MPC rounds are
// bottlenecked by the slowest link.
func MaxRTT(sites []GeoSite) float64 {
	var worst float64
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			if r := RTT(sites[i], sites[j]); r > worst {
				worst = r
			}
		}
	}
	return worst
}

// MPCWallClock estimates the wall-clock time of an MPC with the given
// per-member compute time, round count, and deployment shape: rounds are
// bottlenecked by the slowest member platform and the worst link RTT
// (Section 7.5: "MPC rounds are bottlenecked by the slowest device, so the
// exact number of slow devices should not matter (much)").
func MPCWallClock(cpuSeconds float64, rounds int, slowest Platform, maxRTT float64) float64 {
	return cpuSeconds*slowest.CPUMult + float64(rounds)*maxRTT
}
