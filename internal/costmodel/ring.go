package costmodel

// Native ring calibration. Calibrate (calibrate.go) measures BGV at a
// reduced single-prime test ring and extrapolates to the paper's 2^15-degree,
// 135-bit-modulus deployment ring by an n·log n work model — the right tool
// when the deployment ring is too slow to instantiate. With the multi-prime
// RNS ring (internal/bgv/rns.go) the deployment parameters run natively, so
// CalibrateRing measures the FHE column of the evaluation tables directly:
// no ring extrapolation, ciphertext sizes taken from real serialized
// ciphertexts, and Slots/CtBytes consistent with the ring being priced.

import (
	"crypto/rand"
	"fmt"

	"arboretum/internal/bgv"
)

// CalibrateRing builds a cost model whose FHE constants are measured
// natively on the given RNS ring. Non-FHE constants keep the deployment
// defaults, and the deep-circuit estimates (HECmp, HEExp) — which cannot be
// micro-benchmarked here — are rescaled by the measured-to-default
// ciphertext-multiplication ratio, preserving the orderings planning
// depends on.
func CalibrateRing(p bgv.RNSParams) (*Model, error) {
	d := Default()
	m := Default()
	ctx, err := bgv.NewRNSContext(p)
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibrate ring: %w", err)
	}
	keys, err := ctx.GenerateKeys(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibrate ring keygen: %w", err)
	}
	ctA, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{1, 2, 3})
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibrate ring encrypt: %w", err)
	}
	ctB, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{4})
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibrate ring encrypt: %w", err)
	}
	m.Slots = p.N
	m.CtBytes = float64(ctA.Bytes())

	// Iteration counts balance accuracy against calibration latency: at the
	// paper ring one multiplication is ~10^2 ms, so single-digit iteration
	// counts keep the whole calibration in low single-digit seconds.
	encT, err := timeIt(4, func() error {
		_, err := ctx.Encrypt(rand.Reader, keys.PK, mustEncode(ctx, []uint64{1, 2, 3}))
		return err
	})
	if err != nil {
		return nil, err
	}
	m.HEEnc = encT
	addT, err := timeIt(16, func() error {
		_, err := ctx.Add(ctA, ctB)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.HEAdd = addT
	mulT, err := timeIt(2, func() error {
		_, err := ctx.Mul(ctA, ctB, keys.RLK)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.HEMulCt = mulT
	m.HEMulPlain = m.HEMulCt / 10 // plaintext mult skips relinearization

	// Deep encrypted circuits are multiplication-dominated: scale the
	// deployment estimates by how this machine's measured multiplication
	// compares to the reference model's.
	mulRatio := m.HEMulCt / d.HEMulCt
	m.HECmp = d.HECmp * mulRatio
	m.HEExp = d.HEExp * mulRatio

	if err := m.sanity(); err != nil {
		return nil, err
	}
	return m, nil
}

func mustEncode(ctx *bgv.RNSContext, values []uint64) bgv.Poly {
	p, err := ctx.Encode(values)
	if err != nil {
		panic(err) // values fit any test or deployment ring
	}
	return p
}
