package mpc

import (
	"crypto/rand"
	"encoding/binary"
	"math/bits"
)

// The MPC field. Following the paper (Section 6: "the encryption, decryption,
// and key generation MPCs set the prime modulus to BGV's ciphertext
// modulus"), we compute over the same 60-bit prime as internal/bgv.
const fieldPrime uint64 = 1152921504606830593 // 2^60 − 2^18 + 1

func fadd(a, b uint64) uint64 {
	s := a + b
	if s >= fieldPrime {
		s -= fieldPrime
	}
	return s
}

func fsub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + fieldPrime - b
}

func fmul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, fieldPrime)
	return rem
}

func fpow(a, e uint64) uint64 {
	result := uint64(1)
	base := a % fieldPrime
	for e > 0 {
		if e&1 == 1 {
			result = fmul(result, base)
		}
		base = fmul(base, base)
		e >>= 1
	}
	return result
}

func finv(a uint64) uint64 { return fpow(a, fieldPrime-2) }

func fneg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return fieldPrime - a
}

// toField maps a signed integer into the field (negative values wrap).
func toField(v int64) uint64 {
	if v >= 0 {
		return uint64(v) % fieldPrime
	}
	return fieldPrime - (uint64(-v) % fieldPrime)
}

// fromField maps a field element back to a centered signed integer.
func fromField(v uint64) int64 {
	if v > fieldPrime/2 {
		return -int64(fieldPrime - v)
	}
	return int64(v)
}

// randField returns a uniform field element from crypto/rand.
func randField() uint64 {
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			panic("mpc: randomness unavailable: " + err.Error())
		}
		v := binary.LittleEndian.Uint64(buf[:])
		// Rejection sampling over a multiple of the prime keeps it unbiased.
		if v < fieldPrime*16 {
			return v % fieldPrime
		}
	}
}
