package mpc

import (
	"errors"
	"fmt"

	"arboretum/internal/fixed"
)

// Comparison protocols in the Catrina–de Hoogh style: the value is shifted
// non-negative, masked with dealer-provided random bits plus a statistical
// mask, opened, and the masked low bits are compared against the shared
// random bits with a borrow-scan of Beaver multiplications. The paper notes
// that "the first comparison is more expensive than subsequent comparisons
// because it requires the generation of multiplication triples"
// (Section 6) — here that shows up as DealerBytes preprocessing.

// bitLTPublic computes the shared bit [c < r] where c is public and r is
// given by its shared bits rBits (LSB first). Uses the most-significant
// differing bit: [c < r] = Σ_i r_i(1−c_i) · Π_{j>i} (1 − f_j) with
// f_j = r_j ⊕ c_j. The prefix products take len−1 sequential
// multiplications.
func (e *Engine) bitLTPublic(c uint64, rBits []Secret) Secret {
	n := len(rBits)
	// f_j = r_j ⊕ c_j is affine in the shared bit: c_j=0 → r_j; c_j=1 → 1−r_j.
	f := make([]Secret, n)
	for j := 0; j < n; j++ {
		if (c>>uint(j))&1 == 0 {
			f[j] = rBits[j]
		} else {
			f[j] = e.AddConst(e.MulConst(rBits[j], -1), 1)
		}
	}
	// prefix[i] = Π_{j>i} (1 − f_j), scanning from the MSB.
	prefix := make([]Secret, n)
	one := e.shareValue(1) // public constant sharing (deterministic poly not needed for correctness)
	prefix[n-1] = one
	for i := n - 2; i >= 0; i-- {
		notF := e.AddConst(e.MulConst(f[i+1], -1), 1)
		prefix[i] = e.Mul(prefix[i+1], notF)
	}
	// term_i = r_i(1−c_i) · prefix_i ; r_i(1−c_i) is local. The product is
	// evaluated for every bit — including those zeroed by (1−c_i) — so the
	// round count is a pure function of the protocol structure, never of the
	// opened masked value (whose bits depend on the dealer's randomness).
	// Deterministic round counts are what lets a fault schedule addressed by
	// (vignette, attempt, round) replay bit-for-bit; see docs/FAULTS.md.
	var acc Secret
	first := true
	for i := 0; i < n; i++ {
		term := e.Mul(rBits[i], prefix[i])
		if (c>>uint(i))&1 == 1 {
			continue // (1−c_i) = 0
		}
		if first {
			acc = term
			first = false
		} else {
			acc = e.Add(acc, term)
		}
	}
	if first {
		// c had all bits set: c ≥ r always.
		return e.shareValue(0)
	}
	return acc
}

// Mod2m returns a mod 2^m for a signed value a in
// (−2^(ValueBits−1), 2^(ValueBits−1)).
func (e *Engine) Mod2m(a Secret, m int) (Secret, error) {
	if m <= 0 || m >= ValueBits {
		return Secret{}, fmt.Errorf("mpc: Mod2m with m=%d out of (0,%d)", m, ValueBits)
	}
	// Dealer randomness: m shared bits and a statistical mask.
	rBits := make([]Secret, m)
	var rLow Secret
	rLowSet := false
	for i := 0; i < m; i++ {
		bit, _ := e.randomBit()
		rBits[i] = bit
		shifted := e.mulConstField(bit, uint64(1)<<uint(i))
		if !rLowSet {
			rLow = shifted
			rLowSet = true
		} else {
			rLow = e.Add(rLow, shifted)
		}
	}
	rHigh := e.randomBounded(ValueBits + kappaStat - m)
	// c = a + 2^(ValueBits−1) + r_low + 2^m·r_high, opened.
	shiftA := e.AddConst(a, 1<<(ValueBits-1))
	masked := e.Add(shiftA, rLow)
	masked = e.Add(masked, e.mulConstField(rHigh, uint64(1)<<uint(m)))
	c := e.reconstruct(masked)
	e.stats.Opens++
	e.chargeBroadcastRound(1)
	cLow := c & ((uint64(1) << uint(m)) - 1)
	// u = [cLow < r_low]: a borrow from the low bits.
	u := e.bitLTPublic(cLow, rBits)
	// a mod 2^m = cLow − r_low + 2^m·u.
	res := e.AddConst(e.MulConst(rLow, -1), int64(cLow))
	res = e.Add(res, e.mulConstField(u, uint64(1)<<uint(m)))
	return res, nil
}

// Trunc returns ⌊a / 2^m⌋ (arithmetic shift) for signed a within range.
func (e *Engine) Trunc(a Secret, m int) (Secret, error) {
	low, err := e.Mod2m(a, m)
	if err != nil {
		return Secret{}, err
	}
	diff := e.Sub(a, low)
	return e.mulConstField(diff, finv(uint64(1)<<uint(m))), nil
}

// LTZ returns the shared bit [a < 0] for a in
// (−2^(ValueBits−1), 2^(ValueBits−1)).
func (e *Engine) LTZ(a Secret) (Secret, error) {
	e.stats.Comparisons++
	t, err := e.Trunc(a, ValueBits-1)
	if err != nil {
		return Secret{}, err
	}
	// ⌊a/2^(k−1)⌋ is −1 for negative a, 0 otherwise.
	return e.MulConst(t, -1), nil
}

// Less returns the shared bit [a < b]. Operands must satisfy
// |a|, |b| < 2^(ValueBits−2) so the difference stays in range.
func (e *Engine) Less(a, b Secret) (Secret, error) {
	return e.LTZ(e.Sub(a, b))
}

// Max returns the maximum of the values and the shared one-hot... rather, the
// shared maximum value, by a sequential tournament of Less+Select.
func (e *Engine) Max(vals []Secret) (Secret, error) {
	if len(vals) == 0 {
		return Secret{}, errors.New("mpc: empty max")
	}
	best := vals[0]
	for _, v := range vals[1:] {
		lt, err := e.Less(best, v)
		if err != nil {
			return Secret{}, err
		}
		best = e.Select(lt, v, best)
	}
	return best, nil
}

// Argmax returns the (shared) index of the maximum value: the em operator's
// inner loop (Figure 4, right; Figure 5's final committee vignette).
func (e *Engine) Argmax(vals []Secret) (Secret, error) {
	if len(vals) == 0 {
		return Secret{}, errors.New("mpc: empty argmax")
	}
	best := vals[0]
	bestIdx := e.shareValue(0)
	for i, v := range vals[1:] {
		lt, err := e.Less(best, v)
		if err != nil {
			return Secret{}, err
		}
		best = e.Select(lt, v, best)
		idx := e.shareValue(uint64(i + 1))
		bestIdx = e.Select(lt, idx, bestIdx)
	}
	return bestIdx, nil
}

// --- fixed-point layer ---

// InputFixed shares a Q30.16 fixed-point value from one party.
func (e *Engine) InputFixed(owner int, v fixed.Fixed) (Secret, error) {
	return e.Input(owner, int64(v))
}

// JointFixed shares a fixed-point value on behalf of the committee
// (joint noise sampling).
func (e *Engine) JointFixed(v fixed.Fixed) Secret {
	return e.JointSecret(int64(v))
}

// OpenFixed opens a secret as a fixed-point value.
func (e *Engine) OpenFixed(s Secret) fixed.Fixed {
	return fixed.Fixed(e.Open(s))
}

// FixedMul multiplies two shared fixed-point values and rescales by
// truncation. The product before truncation must stay within
// (−2^(ValueBits−1), 2^(ValueBits−1)); callers keep real magnitudes small
// (|a·b| < 2^15 in real terms at the default parameters).
func (e *Engine) FixedMul(a, b Secret) (Secret, error) {
	prod := e.Mul(a, b)
	return e.Trunc(prod, fixed.FracBits)
}
