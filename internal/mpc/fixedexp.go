package mpc

import (
	"fmt"

	"arboretum/internal/fixed"
)

// FixedExp computes e^x on a shared fixed-point value, for the
// exponentiation-based em variant (Figure 4, left) running inside a
// committee. The input must lie in [0, 5] (the runtime normalizes scores
// into this window before exponentiating — a narrower window than the
// paper's 16-bit one, sized to the Q30.16 multiplication range).
//
// Range reduction: y = x/4, a degree-7 Taylor polynomial of e^y on
// [0, 1.25] with public coefficients, then two squarings. All intermediate
// magnitudes stay below 2^15 in real terms, within FixedMul's contract.
func (e *Engine) FixedExp(x Secret) (Secret, error) {
	// y = x/4 (exact: divide by shifting the public reciprocal).
	quarter := fixed.FromRatio(1, 4)
	y := e.mulConstField(x, toField(int64(quarter)))
	y, err := e.Trunc(y, fixed.FracBits)
	if err != nil {
		return Secret{}, fmt.Errorf("mpc: FixedExp range reduction: %w", err)
	}
	// Horner evaluation of Σ y^k/k!, k = 0..7, coefficients public.
	coeffs := make([]fixed.Fixed, 8)
	f := 1.0
	for k := 0; k < 8; k++ {
		coeffs[k] = fixed.FromFloat(1.0 / f)
		f *= float64(k + 1)
	}
	h := e.shareValue(toField(int64(coeffs[7])))
	for k := 6; k >= 0; k-- {
		hy, err := e.FixedMul(h, y)
		if err != nil {
			return Secret{}, err
		}
		h = e.AddConst(hy, int64(coeffs[k]))
	}
	// Square twice: e^x = ((e^{x/4})^2)^2.
	h2, err := e.FixedMul(h, h)
	if err != nil {
		return Secret{}, err
	}
	return e.FixedMul(h2, h2)
}
