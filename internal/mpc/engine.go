// Package mpc implements the honest-majority multi-party computation engine
// Arboretum's committees run (Sections 5.4 and 6).
//
// The engine simulates an m-party Shamir-sharing MPC in one process with
// faithful protocol structure and communication accounting: linear operations
// are local; multiplications consume Beaver triples and cost one round of
// openings; comparisons run the Catrina–de Hoogh bit-decomposition protocols
// on dealer-provided random bits. The paper's prototype uses MP-SPDZ
// (SPDZ-wise Shamir); as in MP-SPDZ, the preprocessing (triples, random
// bits) is generated ahead of the online phase — here by an in-process
// dealer, which is the documented substitution for MP-SPDZ's offline phase
// (DESIGN.md). Round and byte counts drive the cost model and the
// heterogeneity experiments.
//
// Values are field elements of the same 60-bit prime field as internal/bgv
// (the paper sets the MPC modulus to BGV's ciphertext modulus). Signed
// integers up to ValueBits bits are embedded centered; fixed-point values
// reuse internal/fixed's Q30.16 scaling.
package mpc

import (
	"errors"
	"fmt"
)

const (
	// ValueBits bounds the magnitude of signed values used in comparisons:
	// inputs to LTZ must lie in (−2^(ValueBits−1), 2^(ValueBits−1)).
	ValueBits = 48
	// kappaStat is the statistical masking parameter of the comparison
	// protocols. ValueBits + kappaStat must stay below the 60-bit field.
	// (A deployment would use ≥ 40; the paper's MP-SPDZ programs use 40.
	// The reduced test value keeps everything inside one word — documented
	// simulation parameter, DESIGN.md.)
	kappaStat = 10
)

// Stats records the communication and computation of one MPC execution;
// the cost model and the runtime consume these.
type Stats struct {
	Rounds      int   // sequential communication rounds
	TotalBytes  int64 // bytes sent across all parties (online phase)
	Opens       int   // values opened
	Triples     int   // Beaver triples consumed
	RandBits    int   // dealer random bits consumed
	DealerBytes int64 // preprocessing material distributed (offline phase)
	LocalMults  int64 // field multiplications (per-party compute proxy)
	Comparisons int   // comparison protocols executed (LTZ invocations)
	perParty    []int64
}

// MaxPartyBytes returns the largest per-party traffic (what a committee
// member actually sends), the quantity behind Figure 7a.
func (s *Stats) MaxPartyBytes() int64 {
	var m int64
	for _, b := range s.perParty {
		if b > m {
			m = b
		}
	}
	return m
}

// Secret is a secret-shared field element: shares[i] is party i's share
// (evaluation point x = i+1).
type Secret struct {
	shares []uint64
}

// Engine coordinates one committee's MPC.
type Engine struct {
	M int // parties
	T int // reconstruction threshold (strict majority)

	stats    Stats
	lagrange []uint64 // Lagrange coefficients at 0 for points 1..T

	// onRound, when set, observes every broadcast communication round (the
	// natural point where a party can be noticed missing). The runtime's
	// fault-injection engine hooks it to model mid-round committee dropout.
	onRound func(rounds int)
}

// NewEngine creates an engine for an m-party committee (m ≥ 3). The
// threshold is the strict majority ⌊m/2⌋+1, the honest-majority setting.
func NewEngine(m int) (*Engine, error) {
	if m < 3 {
		return nil, fmt.Errorf("mpc: committee of %d is too small", m)
	}
	e := &Engine{M: m, T: m/2 + 1}
	e.stats.perParty = make([]int64, m)
	e.lagrange = lagrangeAtZero(e.T)
	return e, nil
}

// Stats returns a copy of the execution statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.perParty = append([]int64(nil), e.stats.perParty...)
	return s
}

// lagrangeAtZero precomputes ℓ_i(0) for evaluation points 1..t.
func lagrangeAtZero(t int) []uint64 {
	out := make([]uint64, t)
	for i := 0; i < t; i++ {
		num, den := uint64(1), uint64(1)
		xi := uint64(i + 1)
		for j := 0; j < t; j++ {
			if j == i {
				continue
			}
			xj := uint64(j + 1)
			num = fmul(num, xj)
			den = fmul(den, fsub(xj, xi))
		}
		out[i] = fmul(num, finv(den))
	}
	return out
}

// shareValue creates a fresh degree-(T−1) sharing of v.
func (e *Engine) shareValue(v uint64) Secret {
	coeffs := make([]uint64, e.T)
	coeffs[0] = v
	for i := 1; i < e.T; i++ {
		coeffs[i] = randField()
	}
	shares := make([]uint64, e.M)
	for p := 0; p < e.M; p++ {
		x := uint64(p + 1)
		acc := uint64(0)
		for i := e.T - 1; i >= 0; i-- {
			acc = fadd(fmul(acc, x), coeffs[i])
		}
		shares[p] = acc
	}
	return Secret{shares: shares}
}

// Input shares a value known to one party (the owner distributes shares to
// the other m−1 parties; one round).
func (e *Engine) Input(owner int, v int64) (Secret, error) {
	if owner < 0 || owner >= e.M {
		return Secret{}, fmt.Errorf("mpc: owner %d out of range", owner)
	}
	s := e.shareValue(toField(v))
	e.stats.Rounds++
	sent := int64(8 * (e.M - 1))
	e.stats.TotalBytes += sent
	e.stats.perParty[owner] += sent
	return s, nil
}

// JointSecret shares a value sampled by the simulation on behalf of the
// whole committee (joint noise, dealer-assisted randomness): no single party
// learns it. One distribution round is charged. This models the committee's
// joint sampling step; see the package comment for the substitution note.
func (e *Engine) JointSecret(v int64) Secret {
	s := e.shareValue(toField(v))
	e.chargeBroadcastRound(1)
	return s
}

// chargeBroadcastRound charges k all-to-all broadcast values in one round.
func (e *Engine) chargeBroadcastRound(k int) {
	e.stats.Rounds++
	per := int64(8 * k * (e.M - 1))
	for p := 0; p < e.M; p++ {
		e.stats.perParty[p] += per
	}
	e.stats.TotalBytes += per * int64(e.M)
	if e.onRound != nil {
		e.onRound(e.stats.Rounds)
	}
}

// SetRoundObserver registers fn to be called after every broadcast round
// with the cumulative round count (nil disables). Like the rest of the
// engine it is driven from the coordinating goroutine only (see
// docs/CONCURRENCY.md); fn must not re-enter the engine.
func (e *Engine) SetRoundObserver(fn func(rounds int)) { e.onRound = fn }

// reconstruct recovers the secret from the first T shares.
func (e *Engine) reconstruct(s Secret) uint64 {
	acc := uint64(0)
	for i := 0; i < e.T; i++ {
		acc = fadd(acc, fmul(e.lagrange[i], s.shares[i]))
		e.stats.LocalMults++
	}
	return acc
}

// Open reveals a secret to all parties (one broadcast round).
func (e *Engine) Open(s Secret) int64 {
	e.stats.Opens++
	e.chargeBroadcastRound(1)
	return fromField(e.reconstruct(s))
}

// openMany reveals several secrets in a single round.
func (e *Engine) openMany(ss []Secret) []uint64 {
	e.stats.Opens += len(ss)
	e.chargeBroadcastRound(len(ss))
	out := make([]uint64, len(ss))
	for i, s := range ss {
		out[i] = e.reconstruct(s)
	}
	return out
}

// Add returns a+b (local).
func (e *Engine) Add(a, b Secret) Secret {
	out := Secret{shares: make([]uint64, e.M)}
	for i := range out.shares {
		out.shares[i] = fadd(a.shares[i], b.shares[i])
	}
	return out
}

// Sub returns a−b (local).
func (e *Engine) Sub(a, b Secret) Secret {
	out := Secret{shares: make([]uint64, e.M)}
	for i := range out.shares {
		out.shares[i] = fsub(a.shares[i], b.shares[i])
	}
	return out
}

// AddConst returns a+k for public k (local).
func (e *Engine) AddConst(a Secret, k int64) Secret {
	kk := toField(k)
	out := Secret{shares: make([]uint64, e.M)}
	for i := range out.shares {
		out.shares[i] = fadd(a.shares[i], kk)
	}
	return out
}

// MulConst returns a·k for public k (local).
func (e *Engine) MulConst(a Secret, k int64) Secret {
	kk := toField(k)
	out := Secret{shares: make([]uint64, e.M)}
	for i := range out.shares {
		out.shares[i] = fmul(a.shares[i], kk)
		e.stats.LocalMults++
	}
	return out
}

// mulConstField is MulConst for a raw field constant.
func (e *Engine) mulConstField(a Secret, k uint64) Secret {
	out := Secret{shares: make([]uint64, e.M)}
	for i := range out.shares {
		out.shares[i] = fmul(a.shares[i], k)
		e.stats.LocalMults++
	}
	return out
}

// --- dealer (preprocessing) ---

// triple produces a fresh Beaver triple (a, b, ab).
func (e *Engine) triple() (Secret, Secret, Secret) {
	a := randField()
	b := randField()
	e.stats.Triples++
	e.stats.DealerBytes += int64(3 * 8 * e.M)
	return e.shareValue(a), e.shareValue(b), e.shareValue(fmul(a, b))
}

// randomBit produces a shared uniform bit with its cleartext retained by the
// dealer only (preprocessing).
func (e *Engine) randomBit() (Secret, uint64) {
	b := randField() & 1
	e.stats.RandBits++
	e.stats.DealerBytes += int64(8 * e.M)
	return e.shareValue(b), b
}

// randomBounded produces a shared uniform value in [0, 2^bits).
func (e *Engine) randomBounded(bitsN int) Secret {
	v := uint64(0)
	for i := 0; i < bitsN; i++ {
		v |= (randField() & 1) << uint(i)
	}
	e.stats.DealerBytes += int64(8 * e.M)
	return e.shareValue(v)
}

// --- multiplication ---

// Mul returns a·b via a Beaver triple (one communication round: the two
// maskings open together).
func (e *Engine) Mul(a, b Secret) Secret {
	ta, tb, tc := e.triple()
	d := e.Sub(a, ta)
	f := e.Sub(b, tb)
	opened := e.openMany([]Secret{d, f})
	dv, fv := opened[0], opened[1]
	// z = c + d·b + f·a + d·f
	z := e.Add(tc, e.mulConstField(tb, dv))
	z = e.Add(z, e.mulConstField(ta, fv))
	df := fmul(dv, fv)
	out := Secret{shares: make([]uint64, e.M)}
	for i := range out.shares {
		out.shares[i] = fadd(z.shares[i], df)
	}
	return out
}

// Select returns x if bit=1 else y: y + bit·(x−y), one multiplication.
// bit must be a sharing of 0 or 1.
func (e *Engine) Select(bit, x, y Secret) Secret {
	return e.Add(y, e.Mul(bit, e.Sub(x, y)))
}

// Sum adds a slice of secrets (local).
func (e *Engine) Sum(vals []Secret) (Secret, error) {
	if len(vals) == 0 {
		return Secret{}, errors.New("mpc: empty sum")
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = e.Add(acc, v)
	}
	return acc, nil
}

// Transfer re-shares a secret held by one committee into another committee's
// MPC — the share-level core of the verifiable secret redistribution that
// Arboretum uses between consecutive MPC vignettes (Section 5.4): each
// member of the sending committee re-shares its share into the receiving
// committee, and the receivers combine the sub-shares with the senders'
// Lagrange coefficients. (The commitment-verification layer lives in
// internal/vsr; the runtime uses it for key material, and this for
// in-protocol values.) Both engines record the communication.
func Transfer(from *Engine, s Secret, to *Engine) Secret {
	// Lagrange coefficients for the sending committee's first T points.
	lambda := from.lagrange
	out := Secret{shares: make([]uint64, to.M)}
	for i := 0; i < from.T; i++ {
		sub := to.shareValue(s.shares[i])
		for j := range out.shares {
			out.shares[j] = fadd(out.shares[j], fmul(lambda[i], sub.shares[j]))
		}
	}
	// Each sender distributes sub-shares to every receiver (one round);
	// receivers combine locally.
	from.stats.Rounds++
	sent := int64(8 * to.M)
	for i := 0; i < from.T && i < from.M; i++ {
		from.stats.perParty[i] += sent
	}
	from.stats.TotalBytes += sent * int64(from.T)
	to.stats.LocalMults += int64(from.T * to.M)
	return out
}
