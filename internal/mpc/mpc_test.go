package mpc

import (
	"testing"
	"testing/quick"

	"arboretum/internal/fixed"
)

func newEngine(t testing.TB, m int) *Engine {
	e, err := NewEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineTooSmall(t *testing.T) {
	if _, err := NewEngine(2); err == nil {
		t.Fatal("2-party engine accepted in honest-majority setting")
	}
}

func TestFieldHelpers(t *testing.T) {
	if toField(-1) != fieldPrime-1 {
		t.Error("toField(-1) wrong")
	}
	if fromField(toField(-123456)) != -123456 {
		t.Error("roundtrip of negative value failed")
	}
	if fromField(toField(1<<47)) != 1<<47 {
		t.Error("roundtrip of large positive failed")
	}
	if fmul(finv(7), 7) != 1 {
		t.Error("finv wrong")
	}
	if fneg(0) != 0 || fadd(fneg(5), 5) != 0 {
		t.Error("fneg wrong")
	}
}

func TestInputOpen(t *testing.T) {
	e := newEngine(t, 5)
	for _, v := range []int64{0, 1, -1, 424242, -987654321, 1 << 46, -(1 << 46)} {
		s, err := e.Input(0, v)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Open(s); got != v {
			t.Errorf("Open(Input(%d)) = %d", v, got)
		}
	}
	if _, err := e.Input(9, 1); err == nil {
		t.Error("out-of-range owner accepted")
	}
}

func TestLinearOps(t *testing.T) {
	e := newEngine(t, 5)
	a, _ := e.Input(0, 100)
	b, _ := e.Input(1, 42)
	if got := e.Open(e.Add(a, b)); got != 142 {
		t.Errorf("Add = %d", got)
	}
	if got := e.Open(e.Sub(a, b)); got != 58 {
		t.Errorf("Sub = %d", got)
	}
	if got := e.Open(e.AddConst(a, -30)); got != 70 {
		t.Errorf("AddConst = %d", got)
	}
	if got := e.Open(e.MulConst(a, -3)); got != -300 {
		t.Errorf("MulConst = %d", got)
	}
}

func TestBeaverMul(t *testing.T) {
	e := newEngine(t, 5)
	cases := [][2]int64{{6, 7}, {-6, 7}, {-6, -7}, {0, 99}, {1 << 20, 1 << 20}}
	for _, c := range cases {
		a, _ := e.Input(0, c[0])
		b, _ := e.Input(1, c[1])
		if got := e.Open(e.Mul(a, b)); got != c[0]*c[1] {
			t.Errorf("Mul(%d, %d) = %d", c[0], c[1], got)
		}
	}
}

func TestMulConsumesTriples(t *testing.T) {
	e := newEngine(t, 5)
	a, _ := e.Input(0, 3)
	b, _ := e.Input(1, 4)
	before := e.Stats().Triples
	e.Mul(a, b)
	if e.Stats().Triples != before+1 {
		t.Error("Mul did not consume exactly one triple")
	}
}

func TestSum(t *testing.T) {
	e := newEngine(t, 5)
	var vals []Secret
	want := int64(0)
	for i := int64(1); i <= 10; i++ {
		s, _ := e.Input(0, i)
		vals = append(vals, s)
		want += i
	}
	sum, err := e.Sum(vals)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Open(sum); got != want {
		t.Errorf("Sum = %d, want %d", got, want)
	}
	if _, err := e.Sum(nil); err == nil {
		t.Error("empty sum accepted")
	}
}

func TestSelect(t *testing.T) {
	e := newEngine(t, 5)
	x, _ := e.Input(0, 111)
	y, _ := e.Input(0, 222)
	one, _ := e.Input(0, 1)
	zero, _ := e.Input(0, 0)
	if got := e.Open(e.Select(one, x, y)); got != 111 {
		t.Errorf("Select(1) = %d", got)
	}
	if got := e.Open(e.Select(zero, x, y)); got != 222 {
		t.Errorf("Select(0) = %d", got)
	}
}

func TestMod2m(t *testing.T) {
	e := newEngine(t, 5)
	cases := []struct {
		v int64
		m int
	}{
		{100, 4}, {16, 4}, {15, 4}, {0, 8}, {-1, 4}, {-100, 6}, {1 << 40, 16},
	}
	for _, c := range cases {
		s, _ := e.Input(0, c.v)
		r, err := e.Mod2m(s, c.m)
		if err != nil {
			t.Fatal(err)
		}
		want := ((c.v % (1 << c.m)) + (1 << c.m)) % (1 << c.m)
		if got := e.Open(r); got != want {
			t.Errorf("Mod2m(%d, %d) = %d, want %d", c.v, c.m, got, want)
		}
	}
	s, _ := e.Input(0, 1)
	if _, err := e.Mod2m(s, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := e.Mod2m(s, ValueBits); err == nil {
		t.Error("m=ValueBits accepted")
	}
}

func TestTrunc(t *testing.T) {
	e := newEngine(t, 5)
	cases := []struct {
		v    int64
		m    int
		want int64
	}{
		{100, 2, 25}, {101, 2, 25}, {-8, 2, -2}, {-9, 2, -3}, {1 << 30, 16, 1 << 14},
	}
	for _, c := range cases {
		s, _ := e.Input(0, c.v)
		r, err := e.Trunc(s, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Open(r); got != c.want {
			t.Errorf("Trunc(%d, %d) = %d, want %d", c.v, c.m, got, c.want)
		}
	}
}

func TestLTZ(t *testing.T) {
	e := newEngine(t, 5)
	cases := []struct {
		v    int64
		want int64
	}{
		{-1, 1}, {1, 0}, {0, 0}, {-(1 << 40), 1}, {1 << 40, 0}, {-7, 1},
	}
	for _, c := range cases {
		s, _ := e.Input(0, c.v)
		r, err := e.LTZ(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Open(r); got != c.want {
			t.Errorf("LTZ(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLess(t *testing.T) {
	e := newEngine(t, 5)
	cases := []struct {
		a, b, want int64
	}{
		{1, 2, 1}, {2, 1, 0}, {5, 5, 0}, {-10, 3, 1}, {3, -10, 0}, {-5, -4, 1},
	}
	for _, c := range cases {
		a, _ := e.Input(0, c.a)
		b, _ := e.Input(1, c.b)
		r, err := e.Less(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Open(r); got != c.want {
			t.Errorf("Less(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: comparisons agree with native ints for random 32-bit values.
func TestQuickLess(t *testing.T) {
	e := newEngine(t, 3)
	f := func(a, b int32) bool {
		sa, err1 := e.Input(0, int64(a))
		sb, err2 := e.Input(1, int64(b))
		if err1 != nil || err2 != nil {
			return false
		}
		r, err := e.Less(sa, sb)
		if err != nil {
			return false
		}
		want := int64(0)
		if a < b {
			want = 1
		}
		return e.Open(r) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMaxArgmax(t *testing.T) {
	e := newEngine(t, 5)
	vals := []int64{12, -4, 99, 99, 7, 0}
	secrets := make([]Secret, len(vals))
	for i, v := range vals {
		secrets[i], _ = e.Input(0, v)
	}
	mx, err := e.Max(secrets)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Open(mx); got != 99 {
		t.Errorf("Max = %d", got)
	}
	am, err := e.Argmax(secrets)
	if err != nil {
		t.Fatal(err)
	}
	// Strict Less keeps the first of equal maxima.
	if got := e.Open(am); got != 2 {
		t.Errorf("Argmax = %d, want 2", got)
	}
	if _, err := e.Max(nil); err == nil {
		t.Error("empty Max accepted")
	}
	if _, err := e.Argmax(nil); err == nil {
		t.Error("empty Argmax accepted")
	}
}

// The em(gumbel) committee program end to end in MPC: noised scores arrive
// shared, committee computes argmax and opens only the winning index
// (Figure 5's last committee vignette).
func TestGumbelArgmaxVignette(t *testing.T) {
	e := newEngine(t, 7)
	scores := []int64{120, 260, 180}
	noise := []fixed.Fixed{fixed.FromFloat(1.5), fixed.FromFloat(-2.25), fixed.FromFloat(0.5)}
	noised := make([]Secret, len(scores))
	for i := range scores {
		s, _ := e.InputFixed(0, fixed.FromInt(scores[i]))
		n := e.JointFixed(noise[i])
		noised[i] = e.Add(s, n)
	}
	am, err := e.Argmax(noised)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Open(am); got != 1 {
		t.Errorf("argmax of noised scores = %d, want 1", got)
	}
}

func TestFixedOps(t *testing.T) {
	e := newEngine(t, 5)
	a, _ := e.InputFixed(0, fixed.FromFloat(3.5))
	b, _ := e.InputFixed(1, fixed.FromFloat(2.25))
	sum := e.Add(a, b)
	if got := e.OpenFixed(sum).Float(); got != 5.75 {
		t.Errorf("fixed add = %g", got)
	}
	prod, err := e.FixedMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := e.OpenFixed(prod).Float()
	if got < 7.874 || got > 7.876 { // 3.5 × 2.25 = 7.875
		t.Errorf("FixedMul = %g, want 7.875", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newEngine(t, 5)
	a, _ := e.Input(0, 5)
	b, _ := e.Input(1, 6)
	s0 := e.Stats()
	if s0.Rounds != 2 {
		t.Errorf("two inputs should be two rounds, got %d", s0.Rounds)
	}
	if s0.TotalBytes != 2*8*4 {
		t.Errorf("input bytes = %d", s0.TotalBytes)
	}
	e.Mul(a, b)
	s1 := e.Stats()
	if s1.Rounds != s0.Rounds+1 {
		t.Errorf("Mul should cost one round, got %d", s1.Rounds-s0.Rounds)
	}
	if s1.Triples != 1 {
		t.Errorf("Triples = %d", s1.Triples)
	}
	if s1.DealerBytes == 0 {
		t.Error("preprocessing bytes not recorded")
	}
	if s1.MaxPartyBytes() == 0 {
		t.Error("per-party bytes not recorded")
	}
	// Comparison consumes random bits.
	lt, err := e.Less(a, b)
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Open(lt)
	if e.Stats().RandBits == 0 {
		t.Error("comparison consumed no random bits")
	}
}

func TestJointSecretHidesValue(t *testing.T) {
	// With T = m/2+1 = 3, any 2 shares are information-theoretically
	// independent of the secret; structurally verify two sharings of the
	// same value differ.
	e := newEngine(t, 5)
	a := e.JointSecret(42)
	b := e.JointSecret(42)
	same := true
	for i := range a.shares {
		if a.shares[i] != b.shares[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two sharings identical; randomization broken")
	}
	if got := e.Open(a); got != 42 {
		t.Errorf("JointSecret opened to %d", got)
	}
}

func TestLargeCommittee(t *testing.T) {
	// The paper's committees have ~40 members.
	e := newEngine(t, 41)
	a, _ := e.Input(0, 1234)
	b, _ := e.Input(40, -234)
	if got := e.Open(e.Add(a, b)); got != 1000 {
		t.Errorf("41-party add = %d", got)
	}
	lt, err := e.Less(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Open(lt); got != 1 {
		t.Errorf("41-party Less = %d", got)
	}
}

func BenchmarkMul40Parties(b *testing.B) {
	e, _ := NewEngine(41)
	x, _ := e.Input(0, 123)
	y, _ := e.Input(1, 456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Mul(x, y)
	}
}

func BenchmarkLess40Parties(b *testing.B) {
	e, _ := NewEngine(41)
	x, _ := e.Input(0, 123)
	y, _ := e.Input(1, 456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Less(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArgmax10(b *testing.B) {
	e, _ := NewEngine(11)
	vals := make([]Secret, 10)
	for i := range vals {
		vals[i], _ = e.Input(0, int64(i*7%13))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Argmax(vals); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFixedExp(t *testing.T) {
	e := newEngine(t, 5)
	for _, x := range []float64{0, 0.5, 1, 2, 3.5, 5} {
		s, _ := e.InputFixed(0, fixed.FromFloat(x))
		r, err := e.FixedExp(s)
		if err != nil {
			t.Fatal(err)
		}
		got := e.OpenFixed(r).Float()
		want := mathExp(x)
		if got < want*0.98-0.01 || got > want*1.02+0.01 {
			t.Errorf("FixedExp(%g) = %g, want ~%g", x, got, want)
		}
	}
}

func mathExp(x float64) float64 {
	// Avoid importing math just for the test: e^x by repeated squaring of
	// the fixed-point reference implementation.
	return fixed.Exp(fixed.FromFloat(x)).Float()
}

// Transfer moves a secret between committees of different sizes while
// preserving its value (the VSR hand-off of Section 5.4).
func TestTransferBetweenEngines(t *testing.T) {
	from := newEngine(t, 5)
	to := newEngine(t, 9)
	for _, v := range []int64{0, 42, -99999, 1 << 40} {
		s, err := from.Input(0, v)
		if err != nil {
			t.Fatal(err)
		}
		moved := Transfer(from, s, to)
		if got := to.Open(moved); got != v {
			t.Errorf("Transfer(%d) opened to %d", v, got)
		}
	}
	// The receiving committee can keep computing on the moved value.
	a, _ := from.Input(0, 10)
	b, _ := from.Input(1, 32)
	ma, mb := Transfer(from, a, to), Transfer(from, b, to)
	if got := to.Open(to.Add(ma, mb)); got != 42 {
		t.Errorf("post-transfer add = %d", got)
	}
	lt, err := to.Less(ma, mb)
	if err != nil {
		t.Fatal(err)
	}
	if got := to.Open(lt); got != 1 {
		t.Errorf("post-transfer compare = %d", got)
	}
	// Traffic is recorded on both sides.
	if from.Stats().TotalBytes == 0 {
		t.Error("transfer sent no bytes")
	}
}

// Transferred sharings are re-randomized: the new committee's shares are not
// a function of the old polynomial alone.
func TestTransferRerandomizes(t *testing.T) {
	from := newEngine(t, 5)
	to := newEngine(t, 5)
	s, _ := from.Input(0, 7)
	m1 := Transfer(from, s, to)
	m2 := Transfer(from, s, to)
	same := true
	for i := range m1.shares {
		if m1.shares[i] != m2.shares[i] {
			same = false
		}
	}
	if same {
		t.Error("two transfers produced identical sharings")
	}
}
