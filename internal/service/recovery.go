package service

import (
	"time"
)

// Startup crash recovery: the restarted daemon replays the job journal,
// pairs every job with the budget ledger's view of it, and either restores
// it (terminal jobs), re-enqueues it for deterministic re-execution
// (recoverable in-flight jobs), or settles it fail-closed (unrecoverable
// ones). The pairing table — journal state × (reservation dangling?
// commit durable?) — is documented in docs/SERVICE.md; the invariant it
// preserves is the service's core contract: a tenant is charged exactly
// the certified spend of each job whose outputs were (or will be)
// released, and nothing for the rest — across any crash point.

// recoverJobs runs once, before the executor pool starts (so it owns the
// store, journal, and ledger without contention).
func (s *Server) recoverJobs() error {
	jn := s.journal
	now := time.Now()
	requeued, restored := 0, 0
	for _, id := range jn.order {
		jj := jn.jobs[id]
		j := &Job{
			ID: jj.id, Tenant: jj.tenant,
			Epsilon: jj.eps, Delta: jj.del,
			TimeoutSeconds: jj.timeout,
			Submitted:      now,
			Recovered:      true,
			source:         jj.source, faults: jj.faults, seq: jj.jobSeq,
		}
		switch {
		case jj.terminal():
			// The outcome is already decided; restore the snapshot. Done
			// jobs keep their digest but not their outputs (those died with
			// the old process — the digest still pins what was released).
			j.State = jj.state
			j.Finished = now
			j.ErrorCode = jj.code
			j.ResultDigest = jj.digest
			if jj.state == JobDone {
				j.SpentEpsilon, j.SpentDelta = jj.eps, jj.del
			}
			if jj.state == JobFailed {
				j.Error = "failed before restart (code " + jj.code + "; detail not retained in the journal)"
			}
			// Terminal in the journal but the ledger settle never became
			// durable (an injected WAL crash, or death in the window):
			// finish it per the journal's verdict. Canceled jobs never ran,
			// so the reservation is refunded; done/failed jobs may have
			// released DP noise, so the full reservation is charged —
			// fail-closed, never under-counting.
			if s.ledger.Reserved(jj.tenant, id) {
				var err error
				if jj.state == JobCanceled {
					err = s.ledger.Release(jj.tenant, id, "crash-recovery")
				} else {
					err = s.ledger.Commit(jj.tenant, id, jj.eps, jj.del)
				}
				if err != nil {
					return err
				}
			}
			s.store.restore(j)
			restored++

		case jj.state == JobQueued && !s.ledger.Reserved(jj.tenant, id) && !s.ledger.Committed(jj.tenant, id):
			// Submit journaled but the reservation never became durable:
			// the job was never admitted (the 202 cannot have been sent
			// without the reservation). Fail it closed; nothing was charged
			// and nothing ran.
			if err := jn.append(&jrec{Op: jopFailed, Job: id, Tenant: jj.tenant, Code: "crashed"}); err != nil {
				return err
			}
			j.State = JobFailed
			j.Finished = now
			j.ErrorCode = "crashed"
			j.Error = "daemon crashed before the job's budget reservation became durable; nothing was charged and nothing ran"
			s.store.restore(j)
			restored++

		case s.cfg.SecureNoise:
			// Secure noise is not replayable: re-executing would mint a
			// second, different DP release against one certificate. Settle
			// fail-closed instead — charge the full reservation (the
			// crashed run may already have released noise) and fail the
			// job with a typed error.
			if s.ledger.Reserved(jj.tenant, id) {
				if err := s.ledger.Commit(jj.tenant, id, jj.eps, jj.del); err != nil {
					return err
				}
			}
			if err := jn.append(&jrec{Op: jopFailed, Job: id, Tenant: jj.tenant, Code: "crashed"}); err != nil {
				return err
			}
			j.State = JobFailed
			j.Finished = now
			j.SpentEpsilon, j.SpentDelta = jj.eps, jj.del
			j.ErrorCode = "crashed"
			j.Error = "daemon crashed mid-job; SecureNoise prevents deterministic re-execution, so the reservation was charged fail-closed"
			s.store.restore(j)
			restored++

		default:
			// Recoverable: re-enqueue for deterministic re-execution from
			// Seed+seq — same source, same fault spec, same seed, so the
			// re-run reproduces the original bit-for-bit and settles the
			// dangling reservation with exactly the certified spend. A job
			// whose budget commit was already durable (the crash fell
			// between commit and the done record) re-earns its outputs but
			// must not spend twice; one whose claim was already journaled
			// must not journal a second.
			j.recoveredClaim = jj.state == JobRunning
			j.skipCommit = s.ledger.Committed(jj.tenant, id)
			j.State = JobQueued
			s.store.restore(j)
			requeued++
		}
	}
	// Reservations with no journal record at all (a ledger predating the
	// journal, or a journal lost separately from its ledger): charge them
	// fail-closed, exactly as the pre-journal daemon did.
	danglers := 0
	for _, r := range s.ledger.Reservations() {
		if jj, ok := jn.jobs[r.Job]; ok && jj.tenant == r.Tenant {
			continue // paired with a journaled job; handled above or re-executing
		}
		if err := s.ledger.Commit(r.Tenant, r.Job, r.Eps, r.Del); err != nil {
			return err
		}
		danglers++
	}
	if requeued > 0 || restored > 0 || danglers > 0 {
		s.cfg.Logf("service: recovery: %d jobs re-enqueued for re-execution, %d restored terminal, %d unmatched reservations charged fail-closed",
			requeued, restored, danglers)
	}
	// Collapse the replayed history into one canonical snapshot so a crash
	// loop cannot grow the journal without bound.
	if restored > 0 || requeued > 0 {
		if err := jn.compact(func() []*jrec { return journalRecords(s.store.snapshot()) }); err != nil {
			return err
		}
	}
	s.lastCompact.Store(jn.log.Seq())
	s.recovered = requeued
	jn.finishReplay()
	return nil
}
