package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"arboretum/internal/faults"
	"arboretum/internal/ledger"
	"arboretum/internal/runtime"
)

// Sentinel errors for job-store admission and lifecycle outcomes; apiError
// maps each to its HTTP status and wire code (docs/SERVICE.md).
var (
	errQueueFull     = errors.New("service: job queue full")
	errShutdown      = errors.New("service: server is shutting down")
	errNoJob         = errors.New("service: no such job")
	errNotCancelable = errors.New("service: job is not queued")
)

// apiError is the error envelope every non-2xx response carries.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeJSON encodes v with status; encoding failures are logged, not
// recoverable mid-response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.cfg.Logf("service: encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	s.writeJSON(w, status, map[string]apiError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// Handler returns the gateway's HTTP API (the /v1 surface of
// docs/SERVICE.md plus /healthz).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("GET /v1/tenants/{id}/budget", s.handleBudget)
	mux.HandleFunc("POST /v1/queries", s.handleSubmit)
	mux.HandleFunc("GET /v1/queries", s.handleListJobs)
	mux.HandleFunc("GET /v1/queries/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/queries/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/queries/{id}", s.handleCancel)
	return mux
}

// handleHealth reports liveness plus the gauges an operator watches: job
// counts by state, queue occupancy, ledger position, uptime.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"jobs":           s.store.counts(),
		"queue_len":      len(s.store.queue),
		"queue_cap":      cap(s.store.queue),
		"ledger_path":    s.ledger.Path(),
		"ledger_seq":     s.ledger.Seq(),
		"tenants":        len(s.ledger.Tenants()),
	})
}

// createTenantRequest is the POST /v1/tenants body.
type createTenantRequest struct {
	Tenant  string  `json:"tenant"`
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req createTenantRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: %v", err)
		return
	}
	if req.Delta == 0 {
		req.Delta = 1e-6
	}
	if err := s.ledger.CreateTenant(req.Tenant, req.Epsilon, req.Delta); err != nil {
		switch {
		case errors.Is(err, ledger.ErrTenantExists):
			s.writeError(w, http.StatusConflict, "tenant_exists", "%v", err)
		case errors.Is(err, ledger.ErrCrashed):
			s.writeError(w, http.StatusInternalServerError, "ledger_error", "%v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		}
		return
	}
	b, _ := s.ledger.Balance(req.Tenant)
	s.writeJSON(w, http.StatusCreated, b)
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"tenants": s.ledger.Tenants()})
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	b, ok := s.ledger.Balance(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no_tenant", "unknown tenant %q", r.PathValue("id"))
		return
	}
	s.writeJSON(w, http.StatusOK, b)
}

// submitRequest is the POST /v1/queries body. Faults optionally overrides
// the server's default fault-injection schedule for this job's deployment
// (chaos testing a live gateway; docs/FAULTS.md).
type submitRequest struct {
	Tenant string `json:"tenant"`
	Source string `json:"source"`
	Faults string `json:"faults,omitempty"`
}

// handleSubmit is the admission path: rate limit → certify → reserve →
// enqueue. Order matters — certification prices the reservation, and the
// reservation must be durable before the job can run, so a query that
// exceeds the remaining budget is rejected here with a typed error and
// never executes.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: %v", err)
		return
	}
	if req.Tenant == "" || req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", "tenant and source are required")
		return
	}
	if _, ok := s.ledger.Balance(req.Tenant); !ok {
		s.writeError(w, http.StatusNotFound, "no_tenant", "unknown tenant %q", req.Tenant)
		return
	}
	if !s.limiter.Allow(req.Tenant) {
		s.writeError(w, http.StatusTooManyRequests, "rate_limited",
			"tenant %q exceeded %g submissions/s (burst %d)", req.Tenant, s.cfg.Rate, s.cfg.Burst)
		return
	}
	if m := s.cfg.MaxInFlight; m > 0 && s.store.inFlight(req.Tenant) >= m {
		s.writeError(w, http.StatusTooManyRequests, "too_many_inflight",
			"tenant %q already has %d queued or running jobs", req.Tenant, m)
		return
	}
	if _, err := faults.Parse(req.Faults); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "fault spec: %v", err)
		return
	}
	cert, err := runtime.Certify(req.Source, s.cfg.Devices, s.cfg.Categories)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "not_private",
			"query did not certify as differentially private: %v", err)
		return
	}
	id, err := newJobID()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	if err := s.ledger.Reserve(req.Tenant, id, cert.Epsilon, cert.Delta); err != nil {
		switch {
		case errors.Is(err, ledger.ErrBudgetExhausted):
			s.writeError(w, http.StatusConflict, "budget_exhausted", "%v", err)
		case errors.Is(err, ledger.ErrNoTenant):
			s.writeError(w, http.StatusNotFound, "no_tenant", "%v", err)
		default:
			s.writeError(w, http.StatusInternalServerError, "ledger_error", "%v", err)
		}
		return
	}
	j := &Job{
		ID: id, Tenant: req.Tenant,
		Epsilon: cert.Epsilon, Delta: cert.Delta,
		Submitted: time.Now(),
		source:    req.Source, faults: req.Faults,
	}
	if err := s.store.add(j); err != nil {
		// Undo the reservation: the job never entered the system. (During
		// shutdown the ledger may already be closed; the release then fails,
		// the reservation dangles, and startup recovery settles it
		// fail-closed — same as a crash.)
		code := "queue_full"
		if errors.Is(err, errShutdown) {
			code = "shutting_down"
		}
		if lerr := s.ledger.Release(req.Tenant, id, code); lerr != nil {
			s.cfg.Logf("service: release %s/%s after refused enqueue: %v", req.Tenant, id, lerr)
		}
		if errors.Is(err, errShutdown) {
			s.writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is shutting down")
			return
		}
		s.writeError(w, http.StatusServiceUnavailable, "queue_full",
			"job queue is full (%d jobs)", cap(s.store.queue))
		return
	}
	snap, _ := s.store.get(id)
	s.writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", "query parameter tenant is required")
		return
	}
	jobs := s.store.byTenant(tenant)
	for i := range jobs {
		jobs[i].Outputs = nil // listing is status-only; fetch results individually
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no_job", "unknown job %q", r.PathValue("id"))
		return
	}
	j.Outputs = nil // results only from the result endpoint
	j.FaultReport = ""
	s.writeJSON(w, http.StatusOK, j)
}

// handleResult returns the released outputs of a Done job; Failed and
// Canceled jobs report their terminal state, pending jobs 409 so clients
// can poll status and fetch the result exactly once.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no_job", "unknown job %q", r.PathValue("id"))
		return
	}
	switch j.State {
	case JobDone, JobFailed, JobCanceled:
		s.writeJSON(w, http.StatusOK, j)
	default:
		s.writeError(w, http.StatusConflict, "not_done", "job %s is %s", j.ID, j.State)
	}
}

// handleCancel cancels a queued job and releases its reservation. Running
// jobs are not cancelable (their vignettes may already have released DP
// noise — the budget outcome must come from the run); terminal jobs 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.store.cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, errNoJob):
		s.writeError(w, http.StatusNotFound, "no_job", "unknown job %q", r.PathValue("id"))
		return
	case errors.Is(err, errNotCancelable):
		s.writeError(w, http.StatusConflict, "not_cancelable", "job %s is %s", j.ID, j.State)
		return
	}
	if lerr := s.ledger.Release(j.Tenant, j.ID, "canceled"); lerr != nil {
		s.cfg.Logf("service: release %s/%s after cancel: %v", j.Tenant, j.ID, lerr)
		s.writeError(w, http.StatusInternalServerError, "ledger_error",
			"job canceled but reservation not released: %v", lerr)
		return
	}
	s.writeJSON(w, http.StatusOK, j)
}
