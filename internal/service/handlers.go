package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"arboretum/internal/faults"
	"arboretum/internal/ledger"
	"arboretum/internal/runtime"
)

// Sentinel errors for job-store admission and lifecycle outcomes; apiError
// maps each to its HTTP status and wire code (docs/SERVICE.md).
var (
	errQueueFull     = errors.New("service: job queue full")
	errShutdown      = errors.New("service: server is shutting down")
	errNoJob         = errors.New("service: no such job")
	errNotCancelable = errors.New("service: job is not queued")
	errExpired       = errors.New("service: job expired from the retention window")
)

// apiError is the error envelope every non-2xx response carries.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeJSON encodes v with status; encoding failures are logged, not
// recoverable mid-response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.cfg.Logf("service: encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	s.writeJSON(w, status, map[string]apiError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// Handler returns the gateway's HTTP API (the /v1 surface of
// docs/SERVICE.md plus /healthz).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("GET /v1/tenants/{id}/budget", s.handleBudget)
	mux.HandleFunc("POST /v1/queries", s.handleSubmit)
	mux.HandleFunc("GET /v1/queries", s.handleListJobs)
	mux.HandleFunc("GET /v1/queries/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/queries/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/queries/{id}", s.handleCancel)
	return mux
}

// handleHealth reports liveness plus the gauges an operator watches: job
// counts by state, queue occupancy, per-tenant saturation, ledger and
// journal positions, journal lag (records appended since the last
// compaction), recovery and retention counters, uptime.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() || s.crashed.Load() {
		status = "draining"
	}
	jseq := s.journal.log.Seq()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":              status,
		"uptime_seconds":      time.Since(s.started).Seconds(),
		"jobs":                s.store.counts(),
		"queue_len":           len(s.store.queue),
		"queue_cap":           cap(s.store.queue),
		"in_flight_by_tenant": s.store.inFlightByTenant(),
		"ledger_path":         s.ledger.Path(),
		"ledger_seq":          s.ledger.Seq(),
		"journal_path":        s.journal.log.Path(),
		"journal_seq":         jseq,
		"journal_bytes":       s.journal.log.Size(),
		"journal_lag":         jseq - s.lastCompact.Load(),
		"recovered_jobs":      s.recovered,
		"expired_jobs":        s.store.evictedCount(),
		"tenants":             len(s.ledger.Tenants()),
	})
}

// createTenantRequest is the POST /v1/tenants body.
type createTenantRequest struct {
	Tenant  string  `json:"tenant"`
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var req createTenantRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: %v", err)
		return
	}
	if req.Delta == 0 {
		req.Delta = 1e-6
	}
	if err := s.ledger.CreateTenant(req.Tenant, req.Epsilon, req.Delta); err != nil {
		switch {
		case errors.Is(err, ledger.ErrTenantExists):
			s.writeError(w, http.StatusConflict, "tenant_exists", "%v", err)
		case errors.Is(err, ledger.ErrCrashed):
			s.writeError(w, http.StatusInternalServerError, "ledger_error", "%v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		}
		return
	}
	b, _ := s.ledger.Balance(req.Tenant)
	s.writeJSON(w, http.StatusCreated, b)
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"tenants": s.ledger.Tenants()})
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	b, ok := s.ledger.Balance(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no_tenant", "unknown tenant %q", r.PathValue("id"))
		return
	}
	s.writeJSON(w, http.StatusOK, b)
}

// submitRequest is the POST /v1/queries body. Faults optionally overrides
// the server's default fault-injection schedule for this job's deployment
// (chaos testing a live gateway; docs/FAULTS.md).
type submitRequest struct {
	Tenant string `json:"tenant"`
	Source string `json:"source"`
	Faults string `json:"faults,omitempty"`
	// TimeoutSeconds overrides the server's Config.JobTimeout for this job
	// (0 = server default; the override may extend as well as shorten).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// handleSubmit is the admission path: rate limit → certify → journal →
// reserve → enqueue. Order matters twice over — certification prices the
// reservation, so a query that exceeds the remaining budget is rejected
// here with a typed error and never executes; and the submit record is
// journaled before the reservation, so a reservation can never exist
// without the journal entry that lets a restarted daemon pair and settle
// it (the reverse — a journaled submit with no reservation — recovers
// fail-closed with nothing charged).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: %v", err)
		return
	}
	if req.Tenant == "" || req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", "tenant and source are required")
		return
	}
	if req.TimeoutSeconds < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "timeout_seconds must be non-negative")
		return
	}
	if s.store.isClosed() || s.crashed.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is shutting down")
		return
	}
	if _, ok := s.ledger.Balance(req.Tenant); !ok {
		s.writeError(w, http.StatusNotFound, "no_tenant", "unknown tenant %q", req.Tenant)
		return
	}
	if !s.limiter.Allow(req.Tenant) {
		s.writeError(w, http.StatusTooManyRequests, "rate_limited",
			"tenant %q exceeded %g submissions/s (burst %d)", req.Tenant, s.cfg.Rate, s.cfg.Burst)
		return
	}
	if m := s.cfg.MaxInFlight; m > 0 && s.store.inFlight(req.Tenant) >= m {
		s.writeError(w, http.StatusTooManyRequests, "too_many_inflight",
			"tenant %q already has %d queued or running jobs", req.Tenant, m)
		return
	}
	if _, err := faults.Parse(req.Faults); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "fault spec: %v", err)
		return
	}
	cert, err := runtime.Certify(req.Source, s.cfg.Devices, s.cfg.Categories)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "not_private",
			"query did not certify as differentially private: %v", err)
		return
	}
	id, err := newJobID()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	// The submit record — with everything a restarted daemon needs to
	// re-execute this job deterministically — must be durable before the
	// reservation and before the 202.
	seq := s.store.nextSeq()
	if err := s.journal.append(&jrec{
		Op: jopSubmit, Job: id, Tenant: req.Tenant,
		Source: req.Source, Faults: req.Faults, JobSeq: seq,
		Eps: cert.Epsilon, Del: cert.Delta, Timeout: req.TimeoutSeconds,
	}); err != nil {
		s.writeError(w, http.StatusInternalServerError, "journal_error", "job journal: %v", err)
		return
	}
	if err := s.ledger.Reserve(req.Tenant, id, cert.Epsilon, cert.Delta); err != nil {
		// Close out the journaled submit so a restart doesn't see a phantom
		// in-flight job.
		code, status := "ledger_error", http.StatusInternalServerError
		switch {
		case errors.Is(err, ledger.ErrBudgetExhausted):
			code, status = "budget_exhausted", http.StatusConflict
		case errors.Is(err, ledger.ErrNoTenant):
			code, status = "no_tenant", http.StatusNotFound
		}
		s.journalTerminal(&jrec{Op: jopFailed, Job: id, Tenant: req.Tenant, Code: code})
		s.writeError(w, status, code, "%v", err)
		return
	}
	j := &Job{
		ID: id, Tenant: req.Tenant,
		Epsilon: cert.Epsilon, Delta: cert.Delta,
		Submitted:      time.Now(),
		TimeoutSeconds: req.TimeoutSeconds,
		source:         req.Source, faults: req.Faults, seq: seq,
	}
	if err := s.store.add(j); err != nil {
		// Undo the reservation and close out the journal: the job never
		// entered the system. (During shutdown the ledger may already be
		// closed; the release then fails, the reservation dangles paired
		// with its journaled submit, and startup recovery settles it.)
		code := "queue_full"
		if errors.Is(err, errShutdown) {
			code = "shutting_down"
		}
		if lerr := s.ledger.Release(req.Tenant, id, code); lerr != nil {
			s.cfg.Logf("service: release %s/%s after refused enqueue: %v", req.Tenant, id, lerr)
		}
		s.journalTerminal(&jrec{Op: jopFailed, Job: id, Tenant: req.Tenant, Code: code})
		if errors.Is(err, errShutdown) {
			s.writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is shutting down")
			return
		}
		s.writeError(w, http.StatusServiceUnavailable, "queue_full",
			"job queue is full (%d jobs)", cap(s.store.queue))
		return
	}
	snap, _, _ := s.store.get(id)
	s.writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", "query parameter tenant is required")
		return
	}
	jobs := s.store.byTenant(tenant)
	for i := range jobs {
		jobs[i].Outputs = nil // listing is status-only; fetch results individually
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok, expired := s.store.get(r.PathValue("id"))
	if !ok {
		if expired {
			s.writeError(w, http.StatusGone, "expired",
				"job %q expired from the retention window", r.PathValue("id"))
			return
		}
		s.writeError(w, http.StatusNotFound, "no_job", "unknown job %q", r.PathValue("id"))
		return
	}
	j.Outputs = nil // results only from the result endpoint
	j.FaultReport = ""
	s.writeJSON(w, http.StatusOK, j)
}

// handleResult returns the released outputs of a Done job; Failed and
// Canceled jobs report their terminal state, pending jobs 409 so clients
// can poll status and fetch the result exactly once. Jobs evicted past the
// retention window are 410 "expired".
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok, expired := s.store.get(r.PathValue("id"))
	if !ok {
		if expired {
			s.writeError(w, http.StatusGone, "expired",
				"job %q expired from the retention window", r.PathValue("id"))
			return
		}
		s.writeError(w, http.StatusNotFound, "no_job", "unknown job %q", r.PathValue("id"))
		return
	}
	switch j.State {
	case JobDone, JobFailed, JobCanceled:
		s.writeJSON(w, http.StatusOK, j)
	default:
		s.writeError(w, http.StatusConflict, "not_done", "job %s is %s", j.ID, j.State)
	}
}

// handleCancel cancels a queued job and releases its reservation. Running
// jobs are not cancelable (their vignettes may already have released DP
// noise — the budget outcome must come from the run); terminal jobs 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.store.cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, errNoJob):
		s.writeError(w, http.StatusNotFound, "no_job", "unknown job %q", r.PathValue("id"))
		return
	case errors.Is(err, errExpired):
		s.writeError(w, http.StatusGone, "expired",
			"job %q expired from the retention window", r.PathValue("id"))
		return
	case errors.Is(err, errNotCancelable):
		s.writeError(w, http.StatusConflict, "not_cancelable", "job %s is %s", j.ID, j.State)
		return
	}
	// Refund durably, then journal the terminal state. A crash in between
	// recovers fail-closed without re-charging (the journal still shows the
	// job queued and the ledger shows no reservation); a crash before the
	// release leaves a canceled record paired with a dangling reservation,
	// which recovery refunds.
	if lerr := s.ledger.Release(j.Tenant, j.ID, "canceled"); lerr != nil {
		s.cfg.Logf("service: release %s/%s after cancel: %v", j.Tenant, j.ID, lerr)
		s.journalTerminal(&jrec{Op: jopCanceled, Job: j.ID, Tenant: j.Tenant})
		s.writeError(w, http.StatusInternalServerError, "ledger_error",
			"job canceled but reservation not released: %v", lerr)
		return
	}
	s.journalTerminal(&jrec{Op: jopCanceled, Job: j.ID, Tenant: j.Tenant})
	s.writeJSON(w, http.StatusOK, j)
}
