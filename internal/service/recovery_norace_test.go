//go:build !race

package service

// recoverySchedules is the crash-restart sweep width: 30 independent seeded
// daemon-death schedules (the acceptance floor for the journal subsystem).
// The race pass runs a smaller slice (recovery_race_test.go).
const recoverySchedules = 30
