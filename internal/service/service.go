// Package service is arboretumd's analyst gateway: the long-lived,
// multi-tenant HTTP surface over the one-shot certify → plan → execute
// pipeline that cmd/arboretum runs per invocation. It has three parts —
// transport (handlers.go: the /v1 API of docs/SERVICE.md), a job store
// with an asynchronous executor pool (jobs.go, this file; the pool is
// internal/parallel.ForEach draining a bounded queue), and the admission
// path that welds the two to internal/ledger's durable per-tenant
// privacy-budget ledger and the durable job journal (journal.go, built on
// the same internal/wal machinery).
//
// The budget lifecycle is the service's core contract. At admission the
// query is certified (runtime.Certify) and exactly the certificate's
// (ε, δ) is reserved in the ledger — a query whose certified cost exceeds
// the tenant's remaining budget is rejected with a typed error before
// anything executes. Each admitted job then runs on its own simulated
// deployment (seeded from the server seed and the job sequence, so any
// job replays bit-for-bit) whose runtime budget equals the reservation,
// extending the runtime's fail-closed guarantee to the service boundary:
// on success the ledger commits exactly the executed certificate's spend;
// on failure — including fault-injected fail-closed runs — the
// reservation is released and the tenant spends nothing.
//
// Jobs are crash-resumable: every transition is journaled before it is
// observable, and a restarted daemon replays the journal, pairs each
// non-terminal job with its dangling ledger reservation, and re-executes
// it deterministically from the same seed — committing exactly the
// certified spend and reproducing bit-identical outputs — instead of
// dropping the work (recovery.go; docs/SERVICE.md documents the pairing
// rules). Execution is deadline-bounded (Config.JobTimeout plus a
// per-submission override): an overdue job is canceled at the runtime's
// next checkpoint, its reservation released, and its executor slot
// reclaimed. Injected daemon deaths at the job-lifecycle boundaries (the
// faults "daemon" kind) drive the chaos restart sweep in
// recovery_test.go.
//
// Per-tenant token-bucket rate limiting, a per-tenant in-flight cap, and
// a bounded queue protect the executor; scripts/loadtest.sh drives the
// whole stack with concurrent analysts — including a SIGKILL-and-restart
// mode — and asserts the never-double-spend invariant from the outside.
//
// Concurrency: jobs are independent by construction — each owns a private
// runtime.Deployment (a Deployment is not safe for concurrent use, so one
// is never shared), the job table, journal, and ledger serialize under
// their own locks, and all fan-out goes through internal/parallel except
// the per-job watchdog goroutine that bounds a wedged run (runJob). See
// docs/CONCURRENCY.md.
package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arboretum/internal/faults"
	"arboretum/internal/ledger"
	"arboretum/internal/parallel"
	"arboretum/internal/runtime"
)

// TenantSpec seeds one tenant's budget at startup (idempotent across
// restarts: an existing tenant keeps its recorded allowance and history).
type TenantSpec struct {
	ID      string
	Epsilon float64
	Delta   float64
}

// Config shapes the gateway.
type Config struct {
	// LedgerPath is the privacy-budget WAL (required). JournalPath is the
	// durable job journal (default LedgerPath + ".jobs").
	LedgerPath  string
	JournalPath string
	// Tenants are created if absent when the server starts.
	Tenants []TenantSpec

	// Deployment shape for job execution: each job runs on its own
	// simulated deployment of Devices devices (default 96), Categories
	// categories (default 8), committees of CommitteeSize (default 5),
	// seeded Seed+job-sequence.
	Devices       int
	Categories    int
	CommitteeSize int
	Seed          int64
	// SecureNoise draws committee noise from crypto/rand instead of the
	// seeded simulation stream (a production deployment must set it; the
	// default keeps job runs replayable from their seed). It also disables
	// deterministic re-execution: jobs in flight at a crash are settled
	// fail-closed at restart instead of re-run.
	SecureNoise bool

	// Workers bounds each job's runtime worker pool (0 = auto).
	// JobWorkers bounds how many jobs execute concurrently (default 2).
	// QueueDepth bounds the submit queue (default 64; full queue = 503).
	Workers    int
	JobWorkers int
	QueueDepth int

	// JobTimeout bounds each job's execution (0 = no deadline); a
	// submission may override it per job with timeout_seconds. An overdue
	// job is canceled at the runtime's next checkpoint, fails with code
	// deadline_exceeded, and releases its reservation.
	JobTimeout time.Duration

	// RetainJobs caps the terminal jobs kept in memory and in the journal
	// (default 10000): past it the oldest settled jobs are evicted and
	// their status reads return a typed "expired" error.
	RetainJobs int

	// Rate/Burst are the per-tenant token bucket: Rate submissions per
	// second sustained, Burst instantly (0 disables). MaxInFlight caps a
	// tenant's queued+running jobs (0 = unlimited).
	Rate        float64
	Burst       int
	MaxInFlight int

	// FaultSpec is the default fault-injection schedule applied to every
	// job's deployment (docs/FAULTS.md); a submission may override it.
	// LedgerFaults injects simulated crashes into the ledger's WAL append
	// path (the "wal" kind); DaemonFaults injects simulated daemon deaths
	// at job-lifecycle boundaries (the "daemon" kind) — chaos testing only.
	FaultSpec    string
	LedgerFaults *faults.Plan
	DaemonFaults *faults.Plan

	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

// abandonGrace is how long past its deadline a run may keep its executor
// slot: a run normally returns from a cancellation checkpoint almost
// immediately, but one wedged between checkpoints is abandoned after the
// grace — the slot is reclaimed and the run's eventual result discarded.
const abandonGrace = 2 * time.Second

// Server is a running gateway. Create with New, expose via Handler, stop
// with Close (wait for running jobs) or Drain (bounded wait).
type Server struct {
	cfg     Config
	ledger  *ledger.Ledger
	journal *journal
	store   *store
	limiter *tenantLimiter
	started time.Time

	crash      *faults.Plan // injected daemon deaths (Config.DaemonFaults)
	crashed    atomic.Bool  // an injected death fired: the "process" is gone
	draining   atomic.Bool  // Drain/Close began: stop claiming queued jobs
	abandoning atomic.Bool  // Drain's deadline passed: running jobs dropped

	// recovered counts the jobs re-enqueued for deterministic re-execution
	// at startup (health gauge; written before workers start).
	recovered int

	// running maps in-flight job IDs to their cancel funcs so a drain
	// deadline can abandon them.
	runMu   sync.Mutex
	running map[string]context.CancelFunc

	// lastCompact is the journal sequence at the last compaction; the
	// journal is rewritten from the job table when enough records pile up
	// past it.
	lastCompact atomic.Uint64

	// hold, when non-nil, makes executor workers block on it before each
	// dequeued job — a test hook for deterministic queue scenarios.
	hold chan struct{}

	closeOnce   sync.Once
	closeErr    error
	workersDone chan struct{}
}

// New opens the ledger and the job journal, recovers every job the journal
// shows in flight (re-enqueueing it for deterministic re-execution paired
// with its dangling reservation — see recovery.go), seeds the configured
// tenants, and starts the executor pool.
func New(cfg Config) (*Server, error) {
	return newServer(cfg, nil)
}

// newServer is New plus the executor hold gate (nil in production; tests
// install a channel to keep dequeued jobs parked deterministically).
func newServer(cfg Config, hold chan struct{}) (*Server, error) {
	if cfg.LedgerPath == "" {
		return nil, fmt.Errorf("service: Config.LedgerPath is required")
	}
	if cfg.JournalPath == "" {
		cfg.JournalPath = cfg.LedgerPath + ".jobs"
	}
	if cfg.Devices == 0 {
		cfg.Devices = 96
	}
	if cfg.Categories == 0 {
		cfg.Categories = 8
	}
	if cfg.CommitteeSize == 0 {
		cfg.CommitteeSize = 5
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if _, err := faults.Parse(cfg.FaultSpec); err != nil {
		return nil, fmt.Errorf("service: default fault spec: %w", err)
	}
	led, err := ledger.Open(cfg.LedgerPath, ledger.Options{Crash: cfg.LedgerFaults})
	if err != nil {
		return nil, err
	}
	for _, t := range cfg.Tenants {
		if err := led.EnsureTenant(t.ID, t.Epsilon, t.Delta); err != nil {
			return nil, errors.Join(err, led.Close())
		}
	}
	jn, err := openJournal(cfg.JournalPath)
	if err != nil {
		return nil, errors.Join(fmt.Errorf("service: job journal: %w", err), led.Close())
	}
	inflight := 0
	for _, jj := range jn.jobs {
		if !jj.terminal() {
			inflight++
		}
	}
	s := &Server{
		cfg:         cfg,
		ledger:      led,
		journal:     jn,
		store:       newStore(cfg.QueueDepth, inflight, cfg.RetainJobs),
		limiter:     newTenantLimiter(cfg.Rate, cfg.Burst, nil),
		started:     time.Now(),
		crash:       cfg.DaemonFaults,
		running:     map[string]context.CancelFunc{},
		hold:        hold,
		workersDone: make(chan struct{}),
	}
	if err := s.recoverJobs(); err != nil {
		jn.close()
		return nil, errors.Join(fmt.Errorf("service: crash recovery: %w", err), led.Close())
	}
	//arblint:ignore rawgo daemon-lifecycle supervisor, not data-path fan-out; joined via workersDone on Close
	go s.runWorkers()
	return s, nil
}

// runWorkers drains the queue on a pool of JobWorkers workers. ForEach
// gives the pool the repo-wide worker discipline for free: panic
// forwarding, and one place (internal/parallel) where goroutines are born.
func (s *Server) runWorkers() {
	defer close(s.workersDone)
	n := s.cfg.JobWorkers
	err := parallel.ForEach(nil, n, n, func(int) error {
		for j := range s.store.queue {
			if s.hold != nil {
				<-s.hold
			}
			// A "dead" daemon executes nothing more, and a draining one
			// stops claiming: either way the skipped job stays journaled
			// with its reservation held, and the next startup recovers it.
			if s.crashed.Load() || s.draining.Load() {
				continue
			}
			s.execute(j)
		}
		return nil
	})
	if err != nil {
		s.cfg.Logf("service: executor pool: %v", err)
	}
}

// Ledger exposes the budget ledger (read paths are used by handlers and
// tests; the job lifecycle is the only writer).
func (s *Server) Ledger() *ledger.Ledger { return s.ledger }

// Crashed reports whether an injected daemon death has fired (chaos tests
// restart against the same ledger+journal afterwards).
func (s *Server) Crashed() bool { return s.crashed.Load() }

// Close stops admission (late submissions get 503 shutting_down), stops
// claiming queued jobs, waits for running jobs to finish, and closes the
// journal and ledger. Jobs still queued keep their journal records and
// reservations: the next startup re-enqueues and re-executes them
// deterministically. Close is idempotent; repeated calls return the first
// result.
func (s *Server) Close() error { return s.Drain(-1) }

// Drain is Close with a bounded wait: running jobs get up to timeout to
// finish (negative = forever); past it they are canceled and abandoned
// un-settled — their claims stay journaled and their reservations held, so
// the next startup re-executes them exactly like a crash. Queued jobs are
// never started once draining begins.
func (s *Server) Drain(timeout time.Duration) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.store.close()
		if timeout < 0 {
			<-s.workersDone
		} else {
			select {
			case <-s.workersDone:
			case <-time.After(timeout):
				// Deadline passed: abandon the stragglers. Settlement is
				// suppressed (abandoning) so nothing durable happens after
				// this point and restart recovery re-runs them.
				s.abandoning.Store(true)
				s.cancelRunning()
				s.cfg.Logf("service: drain timeout after %v; abandoning running jobs for restart recovery", timeout)
			}
		}
		jerr := s.journal.close()
		s.closeErr = s.ledger.Close()
		if s.closeErr == nil {
			s.closeErr = jerr
		}
	})
	return s.closeErr
}

// cancelRunning cancels every in-flight job context.
func (s *Server) cancelRunning() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	for _, cancel := range s.running {
		cancel()
	}
}

// die simulates the daemon's death at a job-lifecycle boundary (the
// "daemon" fault kind): record the fault, stop executing, and close the
// journal and ledger descriptors the way the kernel would — without
// flushing anything not already durable — so a "restarted" server can
// reopen the same files and recover.
func (s *Server) die(j *Job, stage int, note string) {
	s.crash.Record(faults.Fault{
		Kind: faults.DaemonCrash, Idx: []int{int(j.seq), stage},
		Note: fmt.Sprintf("job %s/%s: %s", j.Tenant, j.ID, note),
	})
	s.crashed.Store(true)
	s.cfg.Logf("service: injected daemon crash (job %s, stage %d): %s", j.ID, stage, note)
	s.store.close()
	s.journal.kill()
	//arblint:ignore errdiscard simulated daemon crash: the abrupt teardown IS the fault being injected
	s.ledger.Close()
}

// jobContext builds the job's deadline context: the per-submission
// timeout_seconds override, else Config.JobTimeout, else no deadline.
func (s *Server) jobContext(j *Job) (context.Context, context.CancelFunc) {
	d := time.Duration(j.TimeoutSeconds * float64(time.Second))
	if d <= 0 {
		d = s.cfg.JobTimeout
	}
	if d <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), d)
}

// execute runs one dequeued job end to end and settles its reservation.
// The numbered crash stages are the "daemon" fault kind's injection points
// (docs/FAULTS.md): each simulates the process dying at that boundary, and
// the restart-recovery tests assert the journal+ledger pairing puts every
// such job back.
func (s *Server) execute(j *Job) {
	// Claim Queued→Running atomically: a job canceled while queued has
	// already had its reservation released and must not run, and the claim
	// bars any later cancel (the job is Running). The claim is a single
	// compare-and-swap under the store mutex — a separate check and update
	// would race a cancel landing in between (see store.claim).
	if !s.store.claim(j.ID) {
		return
	}
	seq := int(j.seq)
	if s.crash.Fires(faults.DaemonCrash, seq, 0) {
		s.die(j, 0, "crashed before journaling the claim")
		return
	}
	// Journal the claim before executing (recovered jobs whose claim was
	// already durable skip the duplicate). A claim that cannot be journaled
	// must not run: fail closed, release the hold.
	if !j.recoveredClaim {
		if err := s.journal.append(&jrec{Op: jopClaim, Job: j.ID, Tenant: j.Tenant}); err != nil {
			s.settleFailure(j, "journal_error", fmt.Errorf("journal claim: %w", err), "")
			return
		}
	}
	if s.crash.Fires(faults.DaemonCrash, seq, 1) {
		s.die(j, 1, "crashed after journaling the claim, before execution")
		return
	}

	ctx, cancel := s.jobContext(j)
	s.runMu.Lock()
	s.running[j.ID] = cancel
	s.runMu.Unlock()
	// Stage 2 kills the daemon mid-execute: cancel the run's context so it
	// aborts at its next checkpoint — exercising the same cooperative
	// cancellation deadlines use — then die without settling anything.
	midExecute := s.crash.Fires(faults.DaemonCrash, seq, 2)
	if midExecute {
		cancel()
	}
	res, report, err := s.runJob(ctx, j)
	cancel()
	s.runMu.Lock()
	delete(s.running, j.ID)
	s.runMu.Unlock()
	if midExecute {
		s.die(j, 2, "crashed mid-execute")
		return
	}
	if err != nil {
		if s.abandoning.Load() && errors.Is(err, context.Canceled) {
			// Drain abandoned this run: leave the claim journaled and the
			// reservation held so the next startup re-executes it.
			return
		}
		s.settleFailure(j, classify(err), err, report)
		return
	}
	if s.crash.Fires(faults.DaemonCrash, seq, 3) {
		s.die(j, 3, "crashed after the run, before the budget commit")
		return
	}
	// Commit exactly the executed certificate's spend, durably, before the
	// result becomes visible: a crash between run and commit leaves the
	// reservation dangling paired with a journaled claim, and recovery
	// re-executes — never under-counts. A recovered job whose commit was
	// already durable (skipCommit) re-earned its outputs; it must not spend
	// twice.
	if !j.skipCommit {
		if err := s.ledger.Commit(j.Tenant, j.ID, res.Certificate.Epsilon, res.Certificate.Delta); err != nil {
			s.cfg.Logf("service: commit %s/%s: %v", j.Tenant, j.ID, err)
			s.journalTerminal(&jrec{Op: jopFailed, Job: j.ID, Tenant: j.Tenant, Code: "ledger_error"})
			s.store.update(j.ID, func(j *Job) {
				j.State = JobFailed
				j.Finished = time.Now()
				j.Error = fmt.Sprintf("budget commit failed (epsilon remains charged): %v", err)
				j.ErrorCode = "ledger_error"
				j.FaultReport = report
			})
			s.maybeCompact()
			return
		}
	}
	outs := make([]float64, len(res.Outputs))
	for i, o := range res.Outputs {
		outs[i] = o.Float()
	}
	digest := resultDigest(outs, res.Accepted, res.Sampled)
	// The done record (with the result digest) becomes durable before the
	// outputs become visible.
	s.journalTerminal(&jrec{Op: jopDone, Job: j.ID, Tenant: j.Tenant, Digest: digest})
	s.store.update(j.ID, func(j *Job) {
		j.State = JobDone
		j.Finished = time.Now()
		j.SpentEpsilon = res.Certificate.Epsilon
		j.SpentDelta = res.Certificate.Delta
		j.Outputs = outs
		j.AcceptedInputs = res.Accepted
		j.SampledDevices = res.Sampled
		j.FaultReport = report
		j.ResultDigest = digest
	})
	s.maybeCompact()
}

// settleFailure releases the job's reservation, journals the failure, and
// records the terminal state — in that order, so the refund is durable
// before the failure is observable.
func (s *Server) settleFailure(j *Job, code string, err error, report string) {
	if lerr := s.ledger.Release(j.Tenant, j.ID, code); lerr != nil {
		// The release did not become durable (e.g. an injected WAL crash,
		// or a recovered job whose release predated the crash): ε stays
		// reserved and startup recovery settles it. Surface the ledger
		// failure, keep the run error.
		s.cfg.Logf("service: release %s/%s: %v", j.Tenant, j.ID, lerr)
	}
	s.journalTerminal(&jrec{Op: jopFailed, Job: j.ID, Tenant: j.Tenant, Code: code})
	s.store.update(j.ID, func(j *Job) {
		j.State = JobFailed
		j.Finished = time.Now()
		j.Error = err.Error()
		j.ErrorCode = code
		j.FaultReport = report
	})
	s.maybeCompact()
}

// journalTerminal appends a terminal record, logging (not failing) on
// error: the budget action is already durable, and at worst a restart
// re-executes the job deterministically to the same outcome.
func (s *Server) journalTerminal(r *jrec) {
	if err := s.journal.append(r); err != nil {
		s.cfg.Logf("service: journal %s %s/%s: %v", r.Op, r.Tenant, r.Job, err)
	}
}

// runJob executes the deployment under a watchdog. The run honors its
// context at the runtime's cancellation checkpoints, so a deadline
// normally surfaces as a prompt typed error from the run itself; a run
// wedged between checkpoints is abandoned abandonGrace past the deadline —
// the executor slot is reclaimed and the stray goroutine's eventual result
// discarded (it cannot settle: settlement happens exactly once, here).
func (s *Server) runJob(ctx context.Context, j *Job) (*runtime.Result, string, error) {
	type outcome struct {
		res    *runtime.Result
		report string
		err    error
	}
	ch := make(chan outcome, 1)
	//arblint:ignore rawgo per-job watchdog so a deadline can abandon a wedged deployment; buffered channel, never leaks
	go func() {
		res, report, err := s.runDeployment(ctx, j)
		ch <- outcome{res, report, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.report, o.err
	case <-ctx.Done():
	}
	select {
	case o := <-ch:
		return o.res, o.report, o.err
	case <-time.After(abandonGrace):
		return nil, "", fmt.Errorf("service: run abandoned %v past its deadline: %w", abandonGrace, ctx.Err())
	}
}

// runDeployment builds the job's private deployment and runs the query.
// The deployment's budget is exactly the reservation, so the runtime's own
// budget check enforces the admission decision end to end.
func (s *Server) runDeployment(ctx context.Context, j *Job) (*runtime.Result, string, error) {
	spec := j.faults
	if spec == "" {
		spec = s.cfg.FaultSpec
	}
	plan, err := faults.Parse(spec)
	if err != nil {
		return nil, "", fmt.Errorf("fault spec: %w", err)
	}
	dep, err := runtime.NewDeployment(runtime.Config{
		N:             s.cfg.Devices,
		Categories:    s.cfg.Categories,
		CommitteeSize: s.cfg.CommitteeSize,
		Seed:          s.cfg.Seed + int64(j.seq),
		BudgetEpsilon: j.Epsilon,
		Workers:       s.cfg.Workers,
		SecureNoise:   s.cfg.SecureNoise,
		Faults:        plan,
	})
	if err != nil {
		return nil, "", err
	}
	res, err := dep.Run(j.source, runtime.RunOptions{Ctx: ctx})
	report := ""
	if spec != "" {
		report = dep.FaultReport()
	}
	return res, report, err
}

// maybeCompact rewrites the journal from the live job table once enough
// records have piled up since the last compaction, bounding journal growth
// on a long-lived daemon (evicted jobs drop out of the rewrite entirely).
func (s *Server) maybeCompact() {
	every := uint64(4 * s.store.retain)
	if every < 256 {
		every = 256
	}
	seq := s.journal.log.Seq()
	last := s.lastCompact.Load()
	if seq < last || seq-last < every {
		return
	}
	if !s.lastCompact.CompareAndSwap(last, seq) {
		return // another settler is compacting
	}
	if err := s.journal.compact(func() []*jrec { return journalRecords(s.store.snapshot()) }); err != nil {
		s.cfg.Logf("service: journal compaction: %v", err)
		return
	}
	s.lastCompact.Store(s.journal.log.Seq())
}

// classify maps an execution error to an API error code: every typed
// fail-closed runtime error keeps its contract visible at the service
// boundary, a deadline keeps its own code, anything else is an internal
// failure.
func classify(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline_exceeded"
	}
	if errors.Is(err, context.Canceled) {
		return "canceled"
	}
	for _, e := range []error{
		runtime.ErrCommitteeBroken, runtime.ErrCommitteeDegraded,
		runtime.ErrNoSpareCommittee, runtime.ErrHandoffFailed,
		runtime.ErrAggregatorFailed, runtime.ErrNoValidInputs,
		runtime.ErrShardFailed,
	} {
		if errors.Is(err, e) {
			return "failed_closed"
		}
	}
	return "execution_error"
}
