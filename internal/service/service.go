// Package service is arboretumd's analyst gateway: the long-lived,
// multi-tenant HTTP surface over the one-shot certify → plan → execute
// pipeline that cmd/arboretum runs per invocation. It has three parts —
// transport (handlers.go: the /v1 API of docs/SERVICE.md), a job store
// with an asynchronous executor pool (jobs.go, this file; the pool is
// internal/parallel.ForEach draining a bounded queue), and the admission
// path that welds the two to internal/ledger's durable per-tenant
// privacy-budget ledger.
//
// The budget lifecycle is the service's core contract. At admission the
// query is certified (runtime.Certify) and exactly the certificate's
// (ε, δ) is reserved in the ledger — a query whose certified cost exceeds
// the tenant's remaining budget is rejected with a typed error before
// anything executes. Each admitted job then runs on its own simulated
// deployment (seeded from the server seed and the job sequence, so any
// job replays bit-for-bit) whose runtime budget equals the reservation,
// extending the runtime's fail-closed guarantee to the service boundary:
// on success the ledger commits exactly the executed certificate's spend;
// on failure — including fault-injected fail-closed runs — the
// reservation is released and the tenant spends nothing. Budgets are
// thereby metered across queries, across tenants independently, and
// across daemon restarts (the ledger WAL replays; in-flight reservations
// are resolved fail-closed at startup).
//
// Per-tenant token-bucket rate limiting, a per-tenant in-flight cap, and
// a bounded queue protect the executor; scripts/loadtest.sh drives the
// whole stack with concurrent analysts and asserts the never-double-spend
// invariant from the outside.
//
// Concurrency: jobs are independent by construction — each owns a private
// runtime.Deployment (a Deployment is not safe for concurrent use, so one
// is never shared), the job table and ledger serialize under their own
// mutexes, and all fan-out goes through internal/parallel (the executor
// pool here, the per-device work inside each deployment via
// Config.Workers). See docs/CONCURRENCY.md.
package service

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"arboretum/internal/faults"
	"arboretum/internal/ledger"
	"arboretum/internal/parallel"
	"arboretum/internal/runtime"
)

// TenantSpec seeds one tenant's budget at startup (idempotent across
// restarts: an existing tenant keeps its recorded allowance and history).
type TenantSpec struct {
	ID      string
	Epsilon float64
	Delta   float64
}

// Config shapes the gateway.
type Config struct {
	// LedgerPath is the privacy-budget WAL (required).
	LedgerPath string
	// Tenants are created if absent when the server starts.
	Tenants []TenantSpec

	// Deployment shape for job execution: each job runs on its own
	// simulated deployment of Devices devices (default 96), Categories
	// categories (default 8), committees of CommitteeSize (default 5),
	// seeded Seed+job-sequence.
	Devices       int
	Categories    int
	CommitteeSize int
	Seed          int64
	// SecureNoise draws committee noise from crypto/rand instead of the
	// seeded simulation stream (a production deployment must set it; the
	// default keeps job runs replayable from their seed).
	SecureNoise bool

	// Workers bounds each job's runtime worker pool (0 = auto).
	// JobWorkers bounds how many jobs execute concurrently (default 2).
	// QueueDepth bounds the submit queue (default 64; full queue = 503).
	Workers    int
	JobWorkers int
	QueueDepth int

	// Rate/Burst are the per-tenant token bucket: Rate submissions per
	// second sustained, Burst instantly (0 disables). MaxInFlight caps a
	// tenant's queued+running jobs (0 = unlimited).
	Rate        float64
	Burst       int
	MaxInFlight int

	// FaultSpec is the default fault-injection schedule applied to every
	// job's deployment (docs/FAULTS.md); a submission may override it.
	// LedgerFaults injects simulated crashes into the ledger's WAL append
	// path (the "wal" kind) — chaos testing only.
	FaultSpec    string
	LedgerFaults *faults.Plan

	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

// Server is a running gateway. Create with New, expose via Handler, stop
// with Close.
type Server struct {
	cfg     Config
	ledger  *ledger.Ledger
	store   *store
	limiter *tenantLimiter
	started time.Time

	// hold, when non-nil, makes executor workers block on it before each
	// dequeued job — a test hook for deterministic queue scenarios.
	hold chan struct{}

	closeOnce   sync.Once
	closeErr    error
	workersDone chan struct{}
}

// New opens the ledger, resolves reservations left dangling by a previous
// process (fail-closed: each is committed at its reserved amount — see
// ledger.CommitDangling), seeds the configured tenants, and starts the
// executor pool.
func New(cfg Config) (*Server, error) {
	return newServer(cfg, nil)
}

// newServer is New plus the executor hold gate (nil in production; tests
// install a channel to keep dequeued jobs parked deterministically).
func newServer(cfg Config, hold chan struct{}) (*Server, error) {
	if cfg.LedgerPath == "" {
		return nil, fmt.Errorf("service: Config.LedgerPath is required")
	}
	if cfg.Devices == 0 {
		cfg.Devices = 96
	}
	if cfg.Categories == 0 {
		cfg.Categories = 8
	}
	if cfg.CommitteeSize == 0 {
		cfg.CommitteeSize = 5
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if _, err := faults.Parse(cfg.FaultSpec); err != nil {
		return nil, fmt.Errorf("service: default fault spec: %w", err)
	}
	led, err := ledger.Open(cfg.LedgerPath, ledger.Options{Crash: cfg.LedgerFaults})
	if err != nil {
		return nil, err
	}
	if recovered, err := led.CommitDangling("crash-recovery"); err != nil {
		led.Close()
		return nil, fmt.Errorf("service: crash recovery: %w", err)
	} else if len(recovered) > 0 {
		cfg.Logf("service: recovered %d dangling reservation(s) as spent: %v", len(recovered), recovered)
	}
	for _, t := range cfg.Tenants {
		if err := led.EnsureTenant(t.ID, t.Epsilon, t.Delta); err != nil {
			led.Close()
			return nil, err
		}
	}
	s := &Server{
		cfg:         cfg,
		ledger:      led,
		store:       newStore(cfg.QueueDepth),
		limiter:     newTenantLimiter(cfg.Rate, cfg.Burst, nil),
		started:     time.Now(),
		hold:        hold,
		workersDone: make(chan struct{}),
	}
	go s.runWorkers()
	return s, nil
}

// runWorkers drains the queue on a pool of JobWorkers workers. ForEach
// gives the pool the repo-wide worker discipline for free: panic
// forwarding, and one place (internal/parallel) where goroutines are born.
func (s *Server) runWorkers() {
	defer close(s.workersDone)
	n := s.cfg.JobWorkers
	err := parallel.ForEach(nil, n, n, func(int) error {
		for j := range s.store.queue {
			if s.hold != nil {
				<-s.hold
			}
			s.execute(j)
		}
		return nil
	})
	if err != nil {
		s.cfg.Logf("service: executor pool: %v", err)
	}
}

// Ledger exposes the budget ledger (read paths are used by handlers and
// tests; the job lifecycle is the only writer).
func (s *Server) Ledger() *ledger.Ledger { return s.ledger }

// Close stops admission (late submissions get 503 shutting_down — the
// store refuses them under its mutex, so Close is safe while handlers are
// still serving), waits for running jobs, and closes the ledger. Queued
// jobs that never ran keep their reservations: replay resolves them
// fail-closed at next startup, exactly like a crash. Close is idempotent;
// repeated calls return the first result.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.store.close()
		<-s.workersDone
		s.closeErr = s.ledger.Close()
	})
	return s.closeErr
}

// execute runs one dequeued job end to end and settles its reservation.
func (s *Server) execute(j *Job) {
	// Claim Queued→Running atomically: a job canceled while queued has
	// already had its reservation released and must not run, and the claim
	// bars any later cancel (the job is Running). The claim is a single
	// compare-and-swap under the store mutex — a separate check and update
	// would race a cancel landing in between (see store.claim).
	if !s.store.claim(j.ID) {
		return
	}

	res, report, err := s.runDeployment(j)
	if err != nil {
		code := classify(err)
		if lerr := s.ledger.Release(j.Tenant, j.ID, code); lerr != nil {
			// The release did not become durable (e.g. an injected WAL
			// crash): ε stays reserved and startup recovery settles it
			// fail-closed. Surface the ledger failure, keep the run error.
			s.cfg.Logf("service: release %s/%s: %v", j.Tenant, j.ID, lerr)
		}
		s.store.update(j.ID, func(j *Job) {
			j.State = JobFailed
			j.Finished = time.Now()
			j.Error = err.Error()
			j.ErrorCode = code
			j.FaultReport = report
		})
		return
	}
	// Commit exactly the executed certificate's spend, durably, before the
	// result becomes visible: a crash between run and commit leaves the
	// reservation dangling, and recovery charges it — never under-counts.
	if err := s.ledger.Commit(j.Tenant, j.ID, res.Certificate.Epsilon, res.Certificate.Delta); err != nil {
		s.cfg.Logf("service: commit %s/%s: %v", j.Tenant, j.ID, err)
		s.store.update(j.ID, func(j *Job) {
			j.State = JobFailed
			j.Finished = time.Now()
			j.Error = fmt.Sprintf("budget commit failed (epsilon remains charged): %v", err)
			j.ErrorCode = "ledger_error"
			j.FaultReport = report
		})
		return
	}
	outs := make([]float64, len(res.Outputs))
	for i, o := range res.Outputs {
		outs[i] = o.Float()
	}
	s.store.update(j.ID, func(j *Job) {
		j.State = JobDone
		j.Finished = time.Now()
		j.SpentEpsilon = res.Certificate.Epsilon
		j.SpentDelta = res.Certificate.Delta
		j.Outputs = outs
		j.AcceptedInputs = res.Accepted
		j.SampledDevices = res.Sampled
		j.FaultReport = report
	})
}

// runDeployment builds the job's private deployment and runs the query.
// The deployment's budget is exactly the reservation, so the runtime's own
// budget check enforces the admission decision end to end.
func (s *Server) runDeployment(j *Job) (*runtime.Result, string, error) {
	spec := j.faults
	if spec == "" {
		spec = s.cfg.FaultSpec
	}
	plan, err := faults.Parse(spec)
	if err != nil {
		return nil, "", fmt.Errorf("fault spec: %w", err)
	}
	dep, err := runtime.NewDeployment(runtime.Config{
		N:             s.cfg.Devices,
		Categories:    s.cfg.Categories,
		CommitteeSize: s.cfg.CommitteeSize,
		Seed:          s.cfg.Seed + int64(j.seq),
		BudgetEpsilon: j.Epsilon,
		Workers:       s.cfg.Workers,
		SecureNoise:   s.cfg.SecureNoise,
		Faults:        plan,
	})
	if err != nil {
		return nil, "", err
	}
	res, err := dep.Run(j.source, runtime.RunOptions{})
	report := ""
	if spec != "" {
		report = dep.FaultReport()
	}
	return res, report, err
}

// classify maps an execution error to an API error code: every typed
// fail-closed runtime error keeps its contract visible at the service
// boundary, anything else is an internal failure.
func classify(err error) string {
	for _, e := range []error{
		runtime.ErrCommitteeBroken, runtime.ErrCommitteeDegraded,
		runtime.ErrNoSpareCommittee, runtime.ErrHandoffFailed,
		runtime.ErrAggregatorFailed, runtime.ErrNoValidInputs,
	} {
		if errors.Is(err, e) {
			return "failed_closed"
		}
	}
	return "execution_error"
}
