package service

import (
	"sync"
	"time"
)

// tenantLimiter is a per-tenant token bucket: each tenant may submit at
// most `burst` queries instantly and `rate` queries per second sustained.
// A zero rate disables limiting. The clock is injectable so tests can
// drive refill deterministically.
type tenantLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rate float64, burst int, now func() time.Time) *tenantLimiter {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tenantLimiter{rate: rate, burst: b, now: now, buckets: map[string]*bucket{}}
}

// Allow consumes one token from the tenant's bucket, reporting whether the
// submission is admitted.
func (l *tenantLimiter) Allow(tenant string) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	b.last = now
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
