package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"arboretum/internal/faults"
	"arboretum/internal/wal"
)

// meanQuery is a second fixed-price query so recovery sweeps mix certified
// prices (laplace scale 2 certifies at ε=0.5).
const meanQuery = "aggr = sum(db);\nnoised = laplace(aggr[0], 2.0);\noutput(declassify(noised));"

// waitCrashed polls until the server's injected daemon death fires.
func waitCrashed(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s.Crashed() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("injected daemon crash did not fire in 30s")
}

// waitSettled polls the job table until every id is terminal, or the daemon
// "dies" (after which nothing further settles in this process).
func waitSettled(t *testing.T, s *Server, ids []string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if s.Crashed() {
			return
		}
		settled := 0
		for _, id := range ids {
			j, ok, _ := s.store.get(id)
			if ok && (j.State == JobDone || j.State == JobFailed || j.State == JobCanceled) {
				settled++
			}
		}
		if settled == len(ids) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("jobs did not settle in 60s")
}

// TestDaemonCrashStages kills the daemon deterministically at each of the
// four job-lifecycle boundaries ("daemon" stage 0–3) and asserts the restart
// re-executes the job to Done with exactly the certified spend — the
// journal+ledger pairing recovers every crash point, never double-charging.
func TestDaemonCrashStages(t *testing.T) {
	for stage := 0; stage <= 3; stage++ {
		t.Run(fmt.Sprintf("stage%d", stage), func(t *testing.T) {
			cfg := testConfig(t)
			cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 5, Delta: 1e-6}}
			cfg.DaemonFaults = faults.New(1).ForceAt(faults.DaemonCrash, 1, stage)
			s, ts := startT(t, cfg, nil)

			j, code, _ := submit(t, ts.URL, "alice", countQuery)
			if code != http.StatusAccepted {
				t.Fatalf("submit: HTTP %d", code)
			}
			waitCrashed(t, s)
			// The "dead" daemon refuses new work with a typed error.
			if _, code, ec := submit(t, ts.URL, "alice", countQuery); code != http.StatusServiceUnavailable || ec != "shutting_down" {
				t.Fatalf("submit to crashed daemon = HTTP %d %q", code, ec)
			}
			ts.Close()
			s.Close()

			cfg2 := cfg
			cfg2.DaemonFaults = nil
			s2, ts2 := startT(t, cfg2, nil)
			f := waitTerminal(t, ts2.URL, j.ID)
			if f.State != JobDone || !f.Recovered || f.ResultDigest == "" {
				t.Fatalf("recovered job = %s recovered=%v digest=%q (%s)",
					f.State, f.Recovered, f.ResultDigest, f.Error)
			}
			b, _ := s2.Ledger().Balance("alice")
			if math.Abs(b.EpsSpent-j.Epsilon) > 1e-9 || b.EpsReserved != 0 || b.Queries != 1 {
				t.Fatalf("stage %d balance %+v, want spent=%g reserved=0 queries=1", stage, b, j.Epsilon)
			}
		})
	}
}

// TestDaemonCrashRestartSweep is the chaos acceptance scenario for the job
// journal: recoverySchedules independent seeded daemon-death schedules, each
// killing the daemon at rate-drawn job-lifecycle boundaries, restarting on
// the same ledger+journal (with fresh death schedules, then a clean final
// life) until everything settles. After every schedule: all jobs Done, each
// reproducing the crash-free baseline's result digest bit-for-bit, with the
// tenant charged exactly once per job — no double-spends, no leaked
// reservations, no lost jobs.
func TestDaemonCrashRestartSweep(t *testing.T) {
	queries := []string{countQuery, meanQuery, countQuery, meanQuery}

	// Crash-free baseline: pins the digest and price each job seq must
	// reproduce under every crash schedule.
	base := testConfig(t)
	base.Tenants = []TenantSpec{{ID: "alice", Epsilon: 1000, Delta: 1e-3}}
	_, bts := startT(t, base, nil)
	want := make([]Job, len(queries))
	for i, q := range queries {
		j, code, _ := submit(t, bts.URL, "alice", q)
		if code != http.StatusAccepted {
			t.Fatalf("baseline submit %d: HTTP %d", i, code)
		}
		want[i] = waitTerminal(t, bts.URL, j.ID)
		if want[i].State != JobDone || want[i].ResultDigest == "" {
			t.Fatalf("baseline job %d = %s digest %q", i, want[i].State, want[i].ResultDigest)
		}
	}
	var wantEps float64
	for i := range want {
		wantEps += want[i].Epsilon
	}

	for seed := 0; seed < recoverySchedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(t)
			cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 1000, Delta: 1e-3}}
			cfg.DaemonFaults = faults.New(uint64(seed)).SetRate(faults.DaemonCrash, 0.15)
			// Park the executor until every job is admitted, so all
			// schedules run the same submission order (seq 1..N) and the
			// digests are comparable to the baseline's.
			hold := make(chan struct{})
			s, err := newServer(cfg, hold)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { s.Close() }()
			front := httptest.NewServer(s.Handler())
			ids := make([]string, len(queries))
			for i, q := range queries {
				j, code, _ := submit(t, front.URL, "alice", q)
				if code != http.StatusAccepted {
					t.Fatalf("seed %d submit %d: HTTP %d", seed, i, code)
				}
				ids[i] = j.ID
			}
			front.Close()
			close(hold)

			waitSettled(t, s, ids)
			for life := 1; s.Crashed(); life++ {
				if life > 8 {
					t.Fatalf("seed %d: still crashing after 8 restarts", seed)
				}
				s.Close()
				// Fresh death schedule for the first restart (the same seed
				// would re-fire at the same recovered job seqs forever);
				// later lives run clean to guarantee convergence.
				cfg.DaemonFaults = faults.New(uint64(seed)*131+uint64(life)).SetRate(faults.DaemonCrash, 0.15)
				if life >= 2 {
					cfg.DaemonFaults = nil
				}
				s, err = New(cfg)
				if err != nil {
					t.Fatalf("seed %d restart %d: %v", seed, life, err)
				}
				waitSettled(t, s, ids)
			}

			for i, id := range ids {
				j, ok, _ := s.store.get(id)
				if !ok {
					t.Fatalf("seed %d: job %d lost", seed, i)
				}
				if j.State != JobDone {
					t.Fatalf("seed %d: job %d = %s code %q (%s)", seed, i, j.State, j.ErrorCode, j.Error)
				}
				if j.ResultDigest != want[i].ResultDigest {
					t.Fatalf("seed %d: job %d digest %s, baseline %s — recovery was not bit-identical",
						seed, i, j.ResultDigest, want[i].ResultDigest)
				}
			}
			b, _ := s.Ledger().Balance("alice")
			if math.Abs(b.EpsSpent-wantEps) > 1e-9 || b.EpsReserved != 0 || b.Queries != len(queries) {
				t.Fatalf("seed %d balance %+v, want spent=%g reserved=0 queries=%d — budget drifted across crash+restart",
					seed, b, wantEps, len(queries))
			}
		})
	}
}

// TestJobDeadline: a job whose deadline has already passed is canceled at
// the runtime's first checkpoint, fails with deadline_exceeded, and releases
// its reservation; the single executor slot is reclaimed, and a per-request
// timeout_seconds override extends past the server default so the next job
// completes on the same worker.
func TestJobDeadline(t *testing.T) {
	cfg := testConfig(t)
	cfg.JobWorkers = 1
	cfg.JobTimeout = time.Nanosecond // every run starts already overdue
	cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 10, Delta: 1e-6}}
	s, ts := startT(t, cfg, nil)

	j1, code, _ := submit(t, ts.URL, "alice", countQuery)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	f1 := waitTerminal(t, ts.URL, j1.ID)
	if f1.State != JobFailed || f1.ErrorCode != "deadline_exceeded" {
		t.Fatalf("overdue job = %s/%s (%s), want failed/deadline_exceeded", f1.State, f1.ErrorCode, f1.Error)
	}
	if b, _ := s.Ledger().Balance("alice"); b.EpsReserved != 0 || b.EpsSpent != 0 {
		t.Fatalf("balance after deadline %+v, want reservation released", b)
	}

	// The override extends the default: same worker, job completes.
	var raw json.RawMessage
	code = call(t, "POST", ts.URL+"/v1/queries",
		map[string]any{"tenant": "alice", "source": countQuery, "timeout_seconds": 300.0}, &raw)
	if code != http.StatusAccepted {
		t.Fatalf("submit with override: HTTP %d %s", code, raw)
	}
	var j2 Job
	if err := json.Unmarshal(raw, &j2); err != nil {
		t.Fatal(err)
	}
	f2 := waitTerminal(t, ts.URL, j2.ID)
	if f2.State != JobDone {
		t.Fatalf("job with extended deadline = %s (%s)", f2.State, f2.Error)
	}
	if b, _ := s.Ledger().Balance("alice"); math.Abs(b.EpsSpent-j2.Epsilon) > 1e-9 || b.EpsReserved != 0 || b.Queries != 1 {
		t.Fatalf("final balance %+v, want only the completed job spent", b)
	}

	// A negative override is refused outright.
	if _, code, ec := submitTimeout(t, ts.URL, "alice", countQuery, -1); code != http.StatusBadRequest || ec != "bad_request" {
		t.Fatalf("negative timeout = HTTP %d %q", code, ec)
	}
}

// TestDrainTimeout: Drain with a deadline returns once the deadline passes
// even though a worker is wedged (parked on the test gate mid-job); the
// undone job keeps its journaled submit and reservation, and a restart
// re-executes it to completion with exact accounting.
func TestDrainTimeout(t *testing.T) {
	cfg := testConfig(t)
	cfg.JobWorkers = 1
	cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 10, Delta: 1e-6}}
	hold := make(chan struct{})
	s, ts := startT(t, cfg, hold)

	j, code, _ := submit(t, ts.URL, "alice", countQuery)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	start := time.Now()
	if err := s.Drain(100 * time.Millisecond); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("Drain blocked %v past its deadline", waited)
	}
	// The job never ran: its reservation is still held for the next process.
	if b, _ := s.Ledger().Balance("alice"); b.EpsReserved != j.Epsilon {
		t.Fatalf("post-drain balance %+v, want the queued job's reservation held", b)
	}
	close(hold) // release the parked worker; it sees draining and exits

	s2, ts2 := startT(t, cfg, nil)
	f := waitTerminal(t, ts2.URL, j.ID)
	if f.State != JobDone || !f.Recovered {
		t.Fatalf("recovered job = %s recovered=%v (%s)", f.State, f.Recovered, f.Error)
	}
	if b, _ := s2.Ledger().Balance("alice"); math.Abs(b.EpsSpent-j.Epsilon) > 1e-9 || b.EpsReserved != 0 {
		t.Fatalf("post-recovery balance %+v", b)
	}
}

// TestJobRetention: terminal jobs past Config.RetainJobs are evicted
// oldest-first; their status, result, and cancel reads return the typed 410
// "expired" error, and the health endpoint counts them.
func TestJobRetention(t *testing.T) {
	cfg := testConfig(t)
	cfg.JobWorkers = 1
	cfg.RetainJobs = 3
	cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 100, Delta: 1e-3}}
	_, ts := startT(t, cfg, nil)

	var ids []string
	for i := 0; i < 6; i++ {
		j, code, _ := submit(t, ts.URL, "alice", countQuery)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		if f := waitTerminal(t, ts.URL, j.ID); f.State != JobDone {
			t.Fatalf("job %d = %s (%s)", i, f.State, f.Error)
		}
		ids = append(ids, j.ID)
	}
	var e errEnvelope
	for _, path := range []string{
		"/v1/queries/" + ids[0],
		"/v1/queries/" + ids[0] + "/result",
	} {
		if code := call(t, "GET", ts.URL+path, nil, &e); code != http.StatusGone || e.Error.Code != "expired" {
			t.Fatalf("GET %s = HTTP %d %q, want 410 expired", path, code, e.Error.Code)
		}
	}
	if code := call(t, "DELETE", ts.URL+"/v1/queries/"+ids[0], nil, &e); code != http.StatusGone || e.Error.Code != "expired" {
		t.Fatalf("cancel evicted = HTTP %d %q, want 410 expired", code, e.Error.Code)
	}
	// The newest jobs are still inside the window.
	var j Job
	if code := call(t, "GET", ts.URL+"/v1/queries/"+ids[5], nil, &j); code != http.StatusOK || j.State != JobDone {
		t.Fatalf("newest job = HTTP %d %s", code, j.State)
	}
	var h struct {
		Expired   int            `json:"expired_jobs"`
		Recovered int            `json:"recovered_jobs"`
		InFlight  map[string]int `json:"in_flight_by_tenant"`
		Journal   string         `json:"journal_path"`
	}
	if code := call(t, "GET", ts.URL+"/v1/health", nil, &h); code != http.StatusOK {
		t.Fatalf("health: HTTP %d", code)
	}
	if h.Expired != 3 || h.Journal == "" {
		t.Fatalf("health gauges %+v, want expired_jobs=3 and a journal path", h)
	}
}

// TestJournalTornAndCorrupt: the journal inherits the WAL's recovery rules —
// a torn tail (crash mid-append) truncates silently on restart, but interior
// corruption of a durable record refuses to start the daemon.
func TestJournalTornAndCorrupt(t *testing.T) {
	cfg := testConfig(t)
	cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 10, Delta: 1e-6}}
	s, ts := startT(t, cfg, nil)
	j, code, _ := submit(t, ts.URL, "alice", countQuery)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if f := waitTerminal(t, ts.URL, j.ID); f.State != JobDone {
		t.Fatalf("job = %s", f.State)
	}
	ts.Close()
	s.Close()
	jpath := cfg.LedgerPath + ".jobs"

	// Torn tail: a half-written record with no newline is truncated and the
	// daemon starts with the intact history.
	fh, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString(`{"seq":99,"op":"submit","job":"torn`); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	s2, ts2 := startT(t, cfg, nil)
	var got Job
	if code := call(t, "GET", ts2.URL+"/v1/queries/"+j.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("status after torn-tail restart: HTTP %d", code)
	}
	if got.State != JobDone || !got.Recovered || got.ResultDigest == "" {
		t.Fatalf("restored job = %s recovered=%v digest=%q", got.State, got.Recovered, got.ResultDigest)
	}
	ts2.Close()
	s2.Close()

	// Interior corruption: flip a field inside a durable record; the daemon
	// must refuse to guess at job history.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := bytesReplace(data, []byte(`"op":"submit"`), []byte(`"op":"submyt"`))
	if string(corrupted) == string(data) {
		t.Fatal("corruption target not found in journal")
	}
	if err := os.WriteFile(jpath, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over corrupt journal = %v, want wal.ErrCorrupt", err)
	}
}

// bytesReplace is bytes.Replace(.., 1) without importing bytes twice in the
// test file's head.
func bytesReplace(data, old, new []byte) []byte {
	s := string(data)
	i := indexOf(s, string(old))
	if i < 0 {
		return data
	}
	return []byte(s[:i] + string(new) + s[i+len(old):])
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// submitTimeout posts a submission with a timeout_seconds override.
func submitTimeout(t *testing.T, base, tenant, source string, timeout float64) (Job, int, string) {
	t.Helper()
	var raw json.RawMessage
	code := call(t, "POST", base+"/v1/queries",
		map[string]any{"tenant": tenant, "source": source, "timeout_seconds": timeout}, &raw)
	if code == http.StatusAccepted {
		var j Job
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatal(err)
		}
		return j, code, ""
	}
	var e errEnvelope
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	return Job{}, code, e.Error.Code
}

// FuzzJournalReplay feeds arbitrary bytes to the journal opener: it must
// never panic, must fail only with the WAL's typed errors, and must keep
// working (append + reopen) whenever it accepts the file.
func FuzzJournalReplay(f *testing.F) {
	mk := func(recs ...*jrec) []byte {
		var out []byte
		for i, r := range recs {
			r.Seq = uint64(i + 1)
			r.Sum = r.WALChecksum()
			line, _ := json.Marshal(r)
			out = append(out, line...)
			out = append(out, '\n')
		}
		return out
	}
	f.Add(mk(
		&jrec{Op: jopSubmit, Job: "j1", Tenant: "a", Source: "q", JobSeq: 1, Eps: 1},
		&jrec{Op: jopClaim, Job: "j1", Tenant: "a"},
		&jrec{Op: jopDone, Job: "j1", Tenant: "a", Digest: "d"},
	))
	f.Add(mk(&jrec{Op: jopSubmit, Job: "j1", Tenant: "a"}))
	f.Add([]byte(`{"seq":1,"op":"submit","job":"j1"`))
	f.Add([]byte("not json\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := t.TempDir() + "/journal"
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		jn, err := openJournal(path)
		if err != nil {
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("open failed with untyped error: %v", err)
			}
			return
		}
		jn.live = true
		if err := jn.append(&jrec{Op: jopSubmit, Job: "fuzz-probe", Tenant: "t"}); err != nil {
			t.Fatalf("append on accepted journal: %v", err)
		}
		if err := jn.close(); err != nil {
			t.Fatal(err)
		}
		if _, err := openJournal(path); err != nil {
			t.Fatalf("reopen of accepted journal: %v", err)
		}
	})
}
