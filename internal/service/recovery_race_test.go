//go:build race

package service

// Under the race detector the full 30-schedule sweep would dominate tier-1
// wall time; a smaller slice keeps the race pass focused on interleavings —
// the full coverage sweep runs in the non-race pass.
const recoverySchedules = 6
