package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// JobState is a job's position in the queued → running → terminal lifecycle.
type JobState string

// The job states. Done, Failed, and Canceled are terminal.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one analyst query moving through the gateway. The exported fields
// are the status-endpoint view; Outputs and FaultReport are additionally
// exposed by the result endpoint once the job is terminal.
type Job struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`

	// Epsilon and Delta are the certified worst case reserved at admission;
	// SpentEpsilon/SpentDelta are the committed spend (zero unless Done).
	Epsilon      float64 `json:"epsilon"`
	Delta        float64 `json:"delta"`
	SpentEpsilon float64 `json:"spent_epsilon"`
	SpentDelta   float64 `json:"spent_delta"`

	// Started and Finished are the zero time until the job reaches the
	// corresponding state.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`

	// Error and ErrorCode are set on Failed jobs (docs/SERVICE.md's code
	// table); a fail-closed runtime error carries code "failed_closed", a
	// job canceled by its deadline "deadline_exceeded".
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`

	// TimeoutSeconds is the per-submission deadline override (0 = the
	// server's Config.JobTimeout).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`

	// Recovered marks a job replayed from the journal after a restart. A
	// recovered terminal job keeps its state and ResultDigest but not its
	// outputs (those died with the old process unless re-executed).
	Recovered bool `json:"recovered,omitempty"`
	// ResultDigest commits to the released outputs of a Done job; a
	// deterministic re-execution reproduces it bit-for-bit.
	ResultDigest string `json:"result_digest,omitempty"`

	Outputs        []float64 `json:"outputs,omitempty"`
	AcceptedInputs int       `json:"accepted_inputs,omitempty"`
	SampledDevices int       `json:"sampled_devices,omitempty"`
	FaultReport    string    `json:"fault_report,omitempty"`

	source string
	faults string // per-job fault spec ("" = server default)
	seq    uint64 // submission sequence; seeds the job's deployment

	// recoveredClaim marks a recovered job whose claim was already durable
	// before the crash: the executor must not journal a second claim.
	recoveredClaim bool
	// skipCommit marks a recovered job whose budget commit was already
	// durable (the crash fell between commit and the done record): the
	// re-execution regains the outputs but must not spend again.
	skipCommit bool
}

// store is the in-memory job table plus the work queue the executor pool
// drains. Terminal jobs past the retention cap are evicted oldest-first
// (their IDs are remembered so status reads return a typed "expired" error
// instead of 404); the durable history is the job journal + ledger.
type store struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	seq    uint64
	closed bool // set by close; add refuses afterwards
	// queue feeds the executor pool. Enqueue fails fast when full (the
	// admission path maps that to 503) instead of blocking the handler.
	queue chan *Job

	// retain caps the terminal jobs kept in the table; terminalOrder is the
	// eviction queue (oldest settled first).
	retain        int
	terminalOrder []string
	// evicted remembers evicted job IDs (capped FIFO) so their status reads
	// fail with "expired", not "no such job".
	evicted      map[string]bool
	evictedOrder []string
}

// defaultRetainJobs is Config.RetainJobs's default: the terminal-job window
// a long-lived daemon keeps queryable in memory.
const defaultRetainJobs = 10000

// newStore sizes the queue for depth new submissions plus room to re-enqueue
// recovered jobs at startup (recovery must never be refused by its own
// backpressure limit).
func newStore(depth, recovered, retain int) *store {
	if depth <= 0 {
		depth = 64
	}
	if retain <= 0 {
		retain = defaultRetainJobs
	}
	return &store{
		jobs:    map[string]*Job{},
		queue:   make(chan *Job, depth+recovered),
		retain:  retain,
		evicted: map[string]bool{},
	}
}

// newJobID returns a 16-hex-digit random job id.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// nextSeq reserves the next job sequence number (the deployment seed
// offset). It is taken before the submit record is journaled so the journal
// carries the same seq the execution will use.
func (st *store) nextSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	return st.seq
}

// add registers a queued job (whose seq was already assigned by nextSeq)
// and enqueues it; it fails without registering when the queue is full or
// the store has been closed.
func (st *store) add(j *Job) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return errShutdown
	}
	j.State = JobQueued
	select {
	case st.queue <- j:
	default:
		return errQueueFull
	}
	st.jobs[j.ID] = j
	return nil
}

// restore inserts a journal-recovered job: non-terminal jobs re-enter the
// queue (capacity was sized for them), terminal jobs are registered
// directly. The store's sequence counter advances past every restored seq
// so new submissions never reuse a seed offset.
func (st *store) restore(j *Job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.seq > st.seq {
		st.seq = j.seq
	}
	st.jobs[j.ID] = j
	switch j.State {
	case JobDone, JobFailed, JobCanceled:
		st.markTerminalLocked(j.ID)
	default:
		j.State = JobQueued
		st.queue <- j
	}
}

// close stops admission and closes the queue so the executor pool drains
// and exits. Taking the mutex serializes it with add's send: a handler
// racing shutdown gets errShutdown, never a send on a closed channel.
func (st *store) close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	close(st.queue)
}

// isClosed reports whether admission has stopped.
func (st *store) isClosed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.closed
}

// get returns a snapshot of the job (copied under the lock, so handlers
// never see a half-updated job while the executor mutates it). expired
// reports that the job existed but was evicted past the retention cap.
func (st *store) get(id string) (j Job, ok, expired bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	p, ok := st.jobs[id]
	if !ok {
		return Job{}, false, st.evicted[id]
	}
	return *p, true, false
}

// byTenant returns snapshots of the tenant's jobs, newest first.
func (st *store) byTenant(tenant string) []Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []Job
	for _, j := range st.jobs {
		if j.Tenant == tenant {
			out = append(out, *j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].seq > out[k].seq })
	return out
}

// snapshot returns every job, in submission order — the journal-compaction
// rebuild source.
func (st *store) snapshot() []Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Job, 0, len(st.jobs))
	for _, j := range st.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// counts tallies jobs by state (the health endpoint's queue gauge).
func (st *store) counts() map[JobState]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := map[JobState]int{}
	for _, j := range st.jobs {
		out[j.State]++
	}
	return out
}

// inFlight counts the tenant's non-terminal jobs (the per-tenant
// concurrency cap consulted at admission).
func (st *store) inFlight(tenant string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.jobs {
		if j.Tenant == tenant && (j.State == JobQueued || j.State == JobRunning) {
			n++
		}
	}
	return n
}

// inFlightByTenant tallies non-terminal jobs per tenant (the health
// endpoint's saturation view).
func (st *store) inFlightByTenant() map[string]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := map[string]int{}
	for _, j := range st.jobs {
		if j.State == JobQueued || j.State == JobRunning {
			out[j.Tenant]++
		}
	}
	return out
}

// cancel transitions a queued job to Canceled. Running jobs are not
// cancelable: their committee vignettes may already have released DP noise,
// so the budget outcome must come from the run itself. The executor skips
// canceled jobs when it dequeues them.
func (st *store) cancel(id string) (Job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		if st.evicted[id] {
			return Job{}, errExpired
		}
		return Job{}, errNoJob
	}
	if j.State != JobQueued {
		return *j, errNotCancelable
	}
	j.State = JobCanceled
	j.Finished = time.Now()
	st.markTerminalLocked(id)
	return *j, nil
}

// claim atomically transitions a dequeued job from Queued to Running. It
// reports false — and the executor must skip the job — when the job is no
// longer queued, i.e. it was canceled and its reservation already
// released. Claim and cancel serialize under the store mutex, so exactly
// one of a racing claim/cancel pair wins; a check-then-update in two lock
// acquisitions would let a cancel land in between, refund the budget, and
// still have the job run.
func (st *store) claim(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok || j.State != JobQueued {
		return false
	}
	j.State = JobRunning
	j.Started = time.Now()
	return true
}

// update mutates a job under the store lock. A transition into a terminal
// state enters the job into the eviction queue (and may evict the oldest
// terminal job past the retention cap).
func (st *store) update(id string, fn func(*Job)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return
	}
	wasTerminal := j.State == JobDone || j.State == JobFailed || j.State == JobCanceled
	fn(j)
	nowTerminal := j.State == JobDone || j.State == JobFailed || j.State == JobCanceled
	if nowTerminal && !wasTerminal {
		st.markTerminalLocked(id)
	}
}

// markTerminalLocked appends the job to the eviction queue and evicts past
// the retention cap. Caller holds st.mu.
func (st *store) markTerminalLocked(id string) {
	st.terminalOrder = append(st.terminalOrder, id)
	for len(st.terminalOrder) > st.retain {
		victim := st.terminalOrder[0]
		st.terminalOrder = st.terminalOrder[1:]
		delete(st.jobs, victim)
		if !st.evicted[victim] {
			st.evicted[victim] = true
			st.evictedOrder = append(st.evictedOrder, victim)
		}
		// The expired-ID memory is itself capped (at the retention cap, at
		// least 1024): beyond it, ancient jobs degrade from "expired" to
		// "no such job".
		limit := st.retain
		if limit < 1024 {
			limit = 1024
		}
		for len(st.evictedOrder) > limit {
			delete(st.evicted, st.evictedOrder[0])
			st.evictedOrder = st.evictedOrder[1:]
		}
	}
}

// evictedCount returns how many job IDs are remembered as expired.
func (st *store) evictedCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.evictedOrder)
}
