package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// JobState is a job's position in the queued → running → terminal lifecycle.
type JobState string

// The job states. Done, Failed, and Canceled are terminal.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one analyst query moving through the gateway. The exported fields
// are the status-endpoint view; Outputs and FaultReport are additionally
// exposed by the result endpoint once the job is terminal.
type Job struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`

	// Epsilon and Delta are the certified worst case reserved at admission;
	// SpentEpsilon/SpentDelta are the committed spend (zero unless Done).
	Epsilon      float64 `json:"epsilon"`
	Delta        float64 `json:"delta"`
	SpentEpsilon float64 `json:"spent_epsilon"`
	SpentDelta   float64 `json:"spent_delta"`

	// Started and Finished are the zero time until the job reaches the
	// corresponding state.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`

	// Error and ErrorCode are set on Failed jobs (docs/SERVICE.md's code
	// table); a fail-closed runtime error carries code "failed_closed".
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`

	Outputs        []float64 `json:"outputs,omitempty"`
	AcceptedInputs int       `json:"accepted_inputs,omitempty"`
	SampledDevices int       `json:"sampled_devices,omitempty"`
	FaultReport    string    `json:"fault_report,omitempty"`

	source string
	faults string // per-job fault spec ("" = server default)
	seq    uint64 // submission sequence; seeds the job's deployment
}

// store is the in-memory job table plus the work queue the executor pool
// drains. Jobs are never evicted (a restarted daemon starts empty — the
// durable state is the ledger, and docs/SERVICE.md documents the split).
type store struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	seq    uint64
	closed bool // set by close; add refuses afterwards
	// queue feeds the executor pool. Enqueue fails fast when full (the
	// admission path maps that to 503) instead of blocking the handler.
	queue chan *Job
}

func newStore(depth int) *store {
	if depth <= 0 {
		depth = 64
	}
	return &store{jobs: map[string]*Job{}, queue: make(chan *Job, depth)}
}

// newJobID returns a 16-hex-digit random job id.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// add registers a queued job and enqueues it; it fails without registering
// when the queue is full or the store has been closed.
func (st *store) add(j *Job) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return errShutdown
	}
	st.seq++
	j.seq = st.seq
	j.State = JobQueued
	select {
	case st.queue <- j:
	default:
		return errQueueFull
	}
	st.jobs[j.ID] = j
	return nil
}

// close stops admission and closes the queue so the executor pool drains
// and exits. Taking the mutex serializes it with add's send: a handler
// racing shutdown gets errShutdown, never a send on a closed channel.
func (st *store) close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	close(st.queue)
}

// get returns a snapshot of the job (copied under the lock, so handlers
// never see a half-updated job while the executor mutates it).
func (st *store) get(id string) (Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// byTenant returns snapshots of the tenant's jobs, newest first.
func (st *store) byTenant(tenant string) []Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []Job
	for _, j := range st.jobs {
		if j.Tenant == tenant {
			out = append(out, *j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].seq > out[k].seq })
	return out
}

// counts tallies jobs by state (the health endpoint's queue gauge).
func (st *store) counts() map[JobState]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := map[JobState]int{}
	for _, j := range st.jobs {
		out[j.State]++
	}
	return out
}

// inFlight counts the tenant's non-terminal jobs (the per-tenant
// concurrency cap consulted at admission).
func (st *store) inFlight(tenant string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.jobs {
		if j.Tenant == tenant && (j.State == JobQueued || j.State == JobRunning) {
			n++
		}
	}
	return n
}

// cancel transitions a queued job to Canceled. Running jobs are not
// cancelable: their committee vignettes may already have released DP noise,
// so the budget outcome must come from the run itself. The executor skips
// canceled jobs when it dequeues them.
func (st *store) cancel(id string) (Job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return Job{}, errNoJob
	}
	if j.State != JobQueued {
		return *j, errNotCancelable
	}
	j.State = JobCanceled
	j.Finished = time.Now()
	return *j, nil
}

// claim atomically transitions a dequeued job from Queued to Running. It
// reports false — and the executor must skip the job — when the job is no
// longer queued, i.e. it was canceled and its reservation already
// released. Claim and cancel serialize under the store mutex, so exactly
// one of a racing claim/cancel pair wins; a check-then-update in two lock
// acquisitions would let a cancel land in between, refund the budget, and
// still have the job run.
func (st *store) claim(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok || j.State != JobQueued {
		return false
	}
	j.State = JobRunning
	j.Started = time.Now()
	return true
}

// update mutates a job under the store lock.
func (st *store) update(id string, fn func(*Job)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.jobs[id]; ok {
		fn(j)
	}
}
