package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"arboretum/internal/faults"
	"arboretum/internal/ledger"
	"arboretum/internal/runtime"
)

// countQuery is the fixed-price test query: a Laplace count over the
// one-hot database, certifying at exactly ε=1.
const countQuery = "aggr = sum(db);\nnoised = laplace(aggr[0], 1.0);\noutput(declassify(noised));"

// testConfig is a small, fast deployment shape shared by the suite.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		LedgerPath:    filepath.Join(t.TempDir(), "ledger"),
		Devices:       16,
		Categories:    4,
		CommitteeSize: 3,
		Seed:          1,
		JobWorkers:    2,
		Logf:          t.Logf,
	}
}

// startT builds a gateway (optionally with the executor hold gate) plus an
// httptest front end, and tears both down.
func startT(t *testing.T, cfg Config, hold chan struct{}) (*Server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg, hold)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// call does one JSON round trip and decodes the response into out (ignored
// when nil), returning the status code.
func call(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// errorCode extracts the typed code from an error envelope.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func submit(t *testing.T, base, tenant, source string) (Job, int, string) {
	t.Helper()
	var raw json.RawMessage
	code := call(t, "POST", base+"/v1/queries", map[string]string{"tenant": tenant, "source": source}, &raw)
	if code == http.StatusAccepted {
		var j Job
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatal(err)
		}
		return j, code, ""
	}
	var e errEnvelope
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	return Job{}, code, e.Error.Code
}

// waitTerminal polls status until the job leaves queued/running.
func waitTerminal(t *testing.T, base, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var j Job
		if code := call(t, "GET", base+"/v1/queries/"+id, nil, &j); code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		switch j.State {
		case JobDone, JobFailed, JobCanceled:
			return j
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in 60s", id)
	return Job{}
}

func budget(t *testing.T, base, tenant string) ledger.Balance {
	t.Helper()
	var b ledger.Balance
	if code := call(t, "GET", base+"/v1/tenants/"+tenant+"/budget", nil, &b); code != http.StatusOK {
		t.Fatalf("budget %s: HTTP %d", tenant, code)
	}
	return b
}

// TestTwoTenantSession is the headline acceptance scenario: two tenants run
// queries through one gateway, each metered against its own budget; when a
// tenant's remaining ε cannot price the next certificate, that query is
// rejected with a typed error before execution while the other tenant is
// unaffected.
func TestTwoTenantSession(t *testing.T) {
	cfg := testConfig(t)
	price, err := runtime.Certify(countQuery, cfg.Devices, cfg.Categories)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tenants = []TenantSpec{
		{ID: "alice", Epsilon: 3 * price.Epsilon, Delta: 1e-6},
		{ID: "bob", Epsilon: price.Epsilon, Delta: 1e-6}, // exactly one query
	}
	_, ts := startT(t, cfg, nil)

	ja, code, _ := submit(t, ts.URL, "alice", countQuery)
	if code != http.StatusAccepted {
		t.Fatalf("alice submit: HTTP %d", code)
	}
	jb, code, _ := submit(t, ts.URL, "bob", countQuery)
	if code != http.StatusAccepted {
		t.Fatalf("bob submit: HTTP %d", code)
	}
	if ja.Epsilon != price.Epsilon || jb.Epsilon != price.Epsilon {
		t.Fatalf("admitted prices %g/%g, want %g", ja.Epsilon, jb.Epsilon, price.Epsilon)
	}

	fa, fb := waitTerminal(t, ts.URL, ja.ID), waitTerminal(t, ts.URL, jb.ID)
	if fa.State != JobDone || fb.State != JobDone {
		t.Fatalf("states %s/%s (%s / %s), want done/done", fa.State, fb.State, fa.Error, fb.Error)
	}
	var res Job
	if code := call(t, "GET", ts.URL+"/v1/queries/"+ja.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs = %v, want one released value", res.Outputs)
	}

	// Independent metering: spend equals exactly the sum of committed
	// certificates, per tenant.
	ba, bb := budget(t, ts.URL, "alice"), budget(t, ts.URL, "bob")
	if math.Abs(ba.EpsSpent-price.Epsilon) > 1e-9 || ba.EpsReserved != 0 || ba.Queries != 1 {
		t.Fatalf("alice balance %+v, want spent=%g", ba, price.Epsilon)
	}
	if math.Abs(bb.EpsSpent-price.Epsilon) > 1e-9 || bb.EpsReserved != 0 || bb.Queries != 1 {
		t.Fatalf("bob balance %+v, want spent=%g", bb, price.Epsilon)
	}

	// bob is now exhausted: the next query is refused before execution with
	// a typed error and no balance change; alice still has budget.
	if _, code, ec := submit(t, ts.URL, "bob", countQuery); code != http.StatusConflict || ec != "budget_exhausted" {
		t.Fatalf("over-budget submit = HTTP %d code %q, want 409 budget_exhausted", code, ec)
	}
	if after := budget(t, ts.URL, "bob"); after != bb {
		t.Fatalf("rejected query changed bob's balance: %+v -> %+v", bb, after)
	}
	if _, code, _ := submit(t, ts.URL, "alice", countQuery); code != http.StatusAccepted {
		t.Fatalf("alice blocked by bob's exhaustion: HTTP %d", code)
	}
}

// TestAdmissionRejections covers every pre-execution refusal: none of these
// may touch the ledger or enqueue work.
func TestAdmissionRejections(t *testing.T) {
	cfg := testConfig(t)
	cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 0.5, Delta: 1e-6}}
	s, ts := startT(t, cfg, nil)

	cases := []struct {
		name    string
		body    any
		code    int
		errCode string
	}{
		{"over budget (ε=1 > 0.5) refused before execution",
			map[string]string{"tenant": "alice", "source": countQuery},
			http.StatusConflict, "budget_exhausted"},
		{"non-private program",
			map[string]string{"tenant": "alice", "source": "aggr = sum(db);\noutput(declassify(aggr[0]));"},
			http.StatusBadRequest, "not_private"},
		{"unknown tenant",
			map[string]string{"tenant": "mallory", "source": countQuery},
			http.StatusNotFound, "no_tenant"},
		{"bad fault spec",
			map[string]string{"tenant": "alice", "source": countQuery, "faults": "frob=1"},
			http.StatusBadRequest, "bad_request"},
		{"missing fields", map[string]string{"tenant": "alice"},
			http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		var e errEnvelope
		if code := call(t, "POST", ts.URL+"/v1/queries", tc.body, &e); code != tc.code || e.Error.Code != tc.errCode {
			t.Errorf("%s: HTTP %d code %q, want %d %q", tc.name, code, e.Error.Code, tc.code, tc.errCode)
		}
	}
	if b := budget(t, ts.URL, "alice"); b.EpsSpent != 0 || b.EpsReserved != 0 {
		t.Fatalf("rejections moved the balance: %+v", b)
	}
	if n := len(s.store.byTenant("alice")); n != 0 {
		t.Fatalf("%d jobs registered by rejected submissions", n)
	}
	if got := s.ledger.Seq(); got != 1 { // only the tenant-create record
		t.Fatalf("ledger advanced to seq %d on rejected submissions", got)
	}
}

// TestCancelQueuedReleasesReservation: with one parked executor, a second
// submission stays queued; canceling it returns its ε immediately, and the
// executor later skips the canceled job without running it.
func TestCancelQueuedReleasesReservation(t *testing.T) {
	cfg := testConfig(t)
	cfg.JobWorkers = 1
	cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 10, Delta: 1e-6}}
	hold := make(chan struct{})
	_, ts := startT(t, cfg, hold)

	j1, code, _ := submit(t, ts.URL, "alice", countQuery) // dequeued, parked at the gate
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", code)
	}
	j2, code, _ := submit(t, ts.URL, "alice", countQuery) // stays queued
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", code)
	}
	if b := budget(t, ts.URL, "alice"); math.Abs(b.EpsReserved-j1.Epsilon-j2.Epsilon) > 1e-9 {
		t.Fatalf("reserved %g, want both admissions held", b.EpsReserved)
	}

	var got Job
	if code := call(t, "DELETE", ts.URL+"/v1/queries/"+j2.ID, nil, &got); code != http.StatusOK || got.State != JobCanceled {
		t.Fatalf("cancel = HTTP %d state %s", code, got.State)
	}
	if b := budget(t, ts.URL, "alice"); math.Abs(b.EpsReserved-j1.Epsilon) > 1e-9 {
		t.Fatalf("cancel did not release: reserved %g", b.EpsReserved)
	}
	// Result of a canceled job is its terminal record, not 409.
	if code := call(t, "GET", ts.URL+"/v1/queries/"+j2.ID+"/result", nil, &got); code != http.StatusOK || got.State != JobCanceled {
		t.Fatalf("canceled result = HTTP %d state %s", code, got.State)
	}

	close(hold) // run j1, skip canceled j2
	f1 := waitTerminal(t, ts.URL, j1.ID)
	if f1.State != JobDone {
		t.Fatalf("j1 = %s (%s)", f1.State, f1.Error)
	}
	if f2 := waitTerminal(t, ts.URL, j2.ID); f2.State != JobCanceled || len(f2.Outputs) != 0 {
		t.Fatalf("canceled job ran: %+v", f2)
	}
	b := budget(t, ts.URL, "alice")
	if math.Abs(b.EpsSpent-j1.Epsilon) > 1e-9 || b.EpsReserved != 0 || b.Queries != 1 {
		t.Fatalf("final balance %+v, want only j1 spent", b)
	}
	// Terminal jobs are not cancelable.
	var e errEnvelope
	if code := call(t, "DELETE", ts.URL+"/v1/queries/"+j1.ID, nil, &e); code != http.StatusConflict || e.Error.Code != "not_cancelable" {
		t.Fatalf("cancel done job = HTTP %d %q", code, e.Error.Code)
	}
}

// TestStoreClaimVsCancel pins the atomic Queued→Running transition: a
// canceled job can never be claimed (its reservation is already released),
// a claimed job can never be canceled, and a job is claimed at most once.
func TestStoreClaimVsCancel(t *testing.T) {
	st := newStore(4, 0, 0)
	a, b := &Job{ID: "a"}, &Job{ID: "b"}
	if err := st.add(a); err != nil {
		t.Fatal(err)
	}
	if err := st.add(b); err != nil {
		t.Fatal(err)
	}
	if _, err := st.cancel("a"); err != nil {
		t.Fatal(err)
	}
	if st.claim("a") {
		t.Fatal("claimed a canceled job")
	}
	if !st.claim("b") {
		t.Fatal("claim of a queued job refused")
	}
	if j, _, _ := st.get("b"); j.State != JobRunning || j.Started.IsZero() {
		t.Fatalf("claimed job = %s started %v, want running", j.State, j.Started)
	}
	if _, err := st.cancel("b"); !errors.Is(err, errNotCancelable) {
		t.Fatalf("cancel of a running job = %v, want errNotCancelable", err)
	}
	if st.claim("b") {
		t.Fatal("job claimed twice")
	}
	if st.claim("ghost") {
		t.Fatal("claimed an unknown job")
	}
}

// TestCancelExecuteRace races DELETE against the executor dequeuing the
// same queued job, round after round. Whichever side wins the store mutex,
// the job either runs and commits or is canceled and released — never a
// canceled state overwritten by a run whose ε was already refunded. The
// final spend must be exactly the sum of completed certificates.
func TestCancelExecuteRace(t *testing.T) {
	const rounds = 12
	cfg := testConfig(t)
	cfg.JobWorkers = 1
	cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 2 * rounds, Delta: 1e-3}}
	hold := make(chan struct{})
	_, ts := startT(t, cfg, hold)

	wantSpent, done, canceled := 0.0, 0, 0
	for i := 0; i < rounds; i++ {
		j, code, _ := submit(t, ts.URL, "alice", countQuery)
		if code != http.StatusAccepted {
			t.Fatalf("round %d: submit HTTP %d", i, code)
		}
		// The worker has dequeued j and is parked at the gate; fire the gate
		// token and the cancel concurrently so claim and cancel race for the
		// store mutex.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			hold <- struct{}{}
		}()
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("DELETE", ts.URL+"/v1/queries/"+j.ID, nil)
			if err != nil {
				return
			}
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}()
		wg.Wait()
		switch f := waitTerminal(t, ts.URL, j.ID); f.State {
		case JobDone:
			done++
			wantSpent += f.SpentEpsilon
		case JobCanceled:
			canceled++
			if len(f.Outputs) != 0 || f.SpentEpsilon != 0 {
				t.Fatalf("round %d: canceled job has outputs/spend: %+v", i, f)
			}
		default:
			t.Fatalf("round %d: job ended %s (%s)", i, f.State, f.Error)
		}
	}
	t.Logf("race rounds: %d done, %d canceled", done, canceled)
	b := budget(t, ts.URL, "alice")
	if math.Abs(b.EpsSpent-wantSpent) > 1e-9 || b.EpsReserved != 0 || b.Queries != done {
		t.Fatalf("balance %+v, want spent=%g reserved=0 queries=%d", b, wantSpent, done)
	}
}

// TestSubmitDuringShutdown: Close stops admission under the store mutex, so
// a submission racing shutdown gets a typed 503 instead of panicking on a
// closed queue. Jobs admitted but never started keep their journaled submit
// and their reservation — a restart on the same ledger+journal re-executes
// them and settles to exact accounting.
func TestSubmitDuringShutdown(t *testing.T) {
	cfg := testConfig(t)
	cfg.JobWorkers = 1
	cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 1000, Delta: 1e-3}}
	hold := make(chan struct{})
	s, ts := startT(t, cfg, hold)

	j1, code, _ := submit(t, ts.URL, "alice", countQuery)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code) // parks the worker at the gate
	}
	accepted := []Job{j1}
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()

	// Close has shut admission (or is about to); keep submitting until the
	// typed refusal lands. Submissions admitted before the cutover stay
	// queued (drain does not start new work) and recover after restart.
	deadline := time.Now().Add(10 * time.Second)
	refused := false
	for !refused && time.Now().Before(deadline) {
		j, code, ec := submit(t, ts.URL, "alice", countQuery)
		switch code {
		case http.StatusAccepted:
			accepted = append(accepted, j)
		case http.StatusServiceUnavailable:
			if ec != "shutting_down" {
				t.Fatalf("refused with %q, want shutting_down", ec)
			}
			refused = true
		}
	}
	if !refused {
		t.Fatal("no shutting_down refusal within 10s of Close")
	}
	close(hold) // open the gate: the parked worker sees draining and exits
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	// None of the admitted jobs ran: each holds exactly its certified
	// reservation, journaled for the next process.
	var wantEps float64
	for _, j := range accepted {
		wantEps += j.Epsilon
	}
	if b, _ := s.Ledger().Balance("alice"); math.Abs(b.EpsReserved-wantEps) > 1e-9 || b.EpsSpent != 0 {
		t.Fatalf("post-drain balance %+v, want reserved=%g spent=0 for %d queued jobs",
			b, wantEps, len(accepted))
	}

	// Restart on the same ledger+journal: recovery re-enqueues and
	// re-executes every admitted job, committing exactly the certified
	// spend.
	s2, ts2 := startT(t, cfg, nil)
	for _, j := range accepted {
		f := waitTerminal(t, ts2.URL, j.ID)
		if f.State != JobDone || !f.Recovered {
			t.Fatalf("recovered job %s = %s recovered=%v (%s)", j.ID, f.State, f.Recovered, f.Error)
		}
	}
	if b, _ := s2.Ledger().Balance("alice"); math.Abs(b.EpsSpent-wantEps) > 1e-9 || b.EpsReserved != 0 || b.Queries != len(accepted) {
		t.Fatalf("post-recovery balance %+v, want spent=%g reserved=0 queries=%d",
			b, wantEps, len(accepted))
	}
}

// TestRateAndInFlightLimits exercises the two 429 paths without running any
// deployment: the parked job is canceled before the gate opens.
func TestRateAndInFlightLimits(t *testing.T) {
	t.Run("rate", func(t *testing.T) {
		cfg := testConfig(t)
		cfg.JobWorkers = 1
		cfg.Rate, cfg.Burst = 0.0001, 1 // one instant token, refill ~3h away
		cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 10, Delta: 1e-6}}
		hold := make(chan struct{})
		_, ts := startT(t, cfg, hold)
		j1, code, _ := submit(t, ts.URL, "alice", countQuery)
		if code != http.StatusAccepted {
			t.Fatalf("first submit: HTTP %d", code)
		}
		if _, code, ec := submit(t, ts.URL, "alice", countQuery); code != http.StatusTooManyRequests || ec != "rate_limited" {
			t.Fatalf("second submit = HTTP %d %q, want 429 rate_limited", code, ec)
		}
		call(t, "DELETE", ts.URL+"/v1/queries/"+j1.ID, nil, nil)
		close(hold)
	})
	t.Run("inflight", func(t *testing.T) {
		cfg := testConfig(t)
		cfg.JobWorkers = 1
		cfg.MaxInFlight = 1
		cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 10, Delta: 1e-6}}
		hold := make(chan struct{})
		_, ts := startT(t, cfg, hold)
		j1, code, _ := submit(t, ts.URL, "alice", countQuery)
		if code != http.StatusAccepted {
			t.Fatalf("first submit: HTTP %d", code)
		}
		if _, code, ec := submit(t, ts.URL, "alice", countQuery); code != http.StatusTooManyRequests || ec != "too_many_inflight" {
			t.Fatalf("second submit = HTTP %d %q, want 429 too_many_inflight", code, ec)
		}
		call(t, "DELETE", ts.URL+"/v1/queries/"+j1.ID, nil, nil)
		close(hold)
	})
}

// TestWALCrashRecovery is the chaos acceptance scenario: the ledger WAL
// crashes (injected via internal/faults) exactly on the job's commit
// record, after the deployment ran. The job reports ledger_error, the ε
// stays reserved on disk, and a restarted gateway replays the WAL and
// settles the dangling reservation fail-closed — final balances are
// identical to a crash-free run's and stable across further replays.
func TestWALCrashRecovery(t *testing.T) {
	cfg := testConfig(t)
	cfg.Tenants = []TenantSpec{{ID: "alice", Epsilon: 5, Delta: 1e-6}}
	// Record 1 = tenant create, 2 = reserve at admission, 3 = the commit.
	cfg.LedgerFaults = faults.New(1).Force(faults.WALCrash, 3)
	s, ts := startT(t, cfg, nil)

	j, code, _ := submit(t, ts.URL, "alice", countQuery)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	f := waitTerminal(t, ts.URL, j.ID)
	if f.State != JobFailed || f.ErrorCode != "ledger_error" {
		t.Fatalf("job under wal@3 = %s/%s (%s), want failed/ledger_error", f.State, f.ErrorCode, f.Error)
	}
	// In memory and on disk the reservation is still held.
	if b, _ := s.ledger.Balance("alice"); b.EpsReserved != j.Epsilon || b.EpsSpent != 0 {
		t.Fatalf("post-crash balance %+v", b)
	}
	ts.Close()
	s.Close()

	// Restart on the same WAL, no fault plan: startup recovery commits the
	// dangling reservation at its certified price.
	cfg2 := testConfig(t)
	cfg2.LedgerPath = cfg.LedgerPath
	cfg2.Tenants = cfg.Tenants
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := s2.Ledger().Balance("alice")
	if !ok || math.Abs(b.EpsSpent-j.Epsilon) > 1e-9 || b.EpsReserved != 0 || b.Queries != 1 {
		t.Fatalf("recovered balance %+v, want spent=%g reserved=0 queries=1", b, j.Epsilon)
	}
	if d := s2.Ledger().Dangling(); len(d) != 0 {
		t.Fatalf("dangling after recovery: %v", d)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// A plain replay of the recovered WAL reproduces identical balances.
	l, err := ledger.Open(cfg.LedgerPath, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if rb, _ := l.Balance("alice"); rb != b {
		t.Fatalf("replay diverged: %+v vs %+v", rb, b)
	}
}

// TestHealthAndTenantEndpoints rounds out the API surface.
func TestHealthAndTenantEndpoints(t *testing.T) {
	cfg := testConfig(t)
	cfg.JobWorkers = 1
	hold := make(chan struct{})
	_, ts := startT(t, cfg, hold)
	defer close(hold)

	var h struct {
		Status  string `json:"status"`
		Tenants int    `json:"tenants"`
	}
	if code := call(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = HTTP %d %+v", code, h)
	}
	var b ledger.Balance
	if code := call(t, "POST", ts.URL+"/v1/tenants",
		map[string]any{"tenant": "carol", "epsilon": 2.0}, &b); code != http.StatusCreated {
		t.Fatalf("create tenant: HTTP %d", code)
	}
	if b.EpsTotal != 2 || b.DelTotal != 1e-6 { // δ defaulted
		t.Fatalf("created balance %+v", b)
	}
	var e errEnvelope
	if code := call(t, "POST", ts.URL+"/v1/tenants",
		map[string]any{"tenant": "carol", "epsilon": 2.0}, &e); code != http.StatusConflict || e.Error.Code != "tenant_exists" {
		t.Fatalf("duplicate tenant = HTTP %d %q", code, e.Error.Code)
	}
	var list struct {
		Tenants []ledger.Balance `json:"tenants"`
	}
	if code := call(t, "GET", ts.URL+"/v1/tenants", nil, &list); code != http.StatusOK || len(list.Tenants) != 1 {
		t.Fatalf("list tenants = HTTP %d %+v", code, list)
	}
	if code := call(t, "GET", ts.URL+"/v1/tenants/nobody/budget", nil, &e); code != http.StatusNotFound {
		t.Fatalf("unknown budget: HTTP %d", code)
	}
	if code := call(t, "GET", ts.URL+"/v1/queries/nope", nil, &e); code != http.StatusNotFound || e.Error.Code != "no_job" {
		t.Fatalf("unknown job = HTTP %d %q", code, e.Error.Code)
	}
	if code := call(t, "GET", fmt.Sprintf("%s/v1/queries?tenant=", ts.URL), nil, &e); code != http.StatusBadRequest {
		t.Fatalf("listing without tenant: HTTP %d", code)
	}
}
