package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"arboretum/internal/wal"
)

// The job journal is the durability half of crash-resumable jobs
// (docs/SERVICE.md): every job-lifecycle transition is one checksummed
// record appended and fsynced — through internal/wal, the same machinery as
// the budget ledger — *before* the transition becomes observable:
//
//	submit  — before the ledger reservation and the 202 response; carries
//	          everything a restarted daemon needs to re-execute the job
//	          deterministically (source, fault spec, seed sequence,
//	          certified (ε, δ), timeout override).
//	claim   — before the executor starts the run.
//	done    — after the budget commit, before the result becomes visible;
//	          carries the result digest.
//	failed / canceled — after the ledger release, before the terminal
//	          state becomes visible; failed carries the error code.
//
// Replay folds these into per-job states; startup recovery (recovery.go)
// pairs each non-terminal job with its dangling ledger reservation and
// re-executes it from seed+seq. Torn tails truncate, interior corruption
// refuses the journal — the wal package's rules, identical to the ledger's.

// Journal record ops.
const (
	jopSubmit   = "submit"
	jopClaim    = "claim"
	jopDone     = "done"
	jopFailed   = "failed"
	jopCanceled = "canceled"
)

// jrec is one journal line. Submit records carry the re-execution fields;
// terminal records carry the outcome. Sum covers every other field.
type jrec struct {
	Seq     uint64  `json:"seq"`
	Op      string  `json:"op"`
	Job     string  `json:"job"`
	Tenant  string  `json:"tenant,omitempty"`
	Source  string  `json:"source,omitempty"`
	Faults  string  `json:"faults,omitempty"`
	JobSeq  uint64  `json:"job_seq,omitempty"` // seeds the deployment: Seed+JobSeq
	Eps     float64 `json:"eps,omitempty"`     // certified ε (the reservation)
	Del     float64 `json:"del,omitempty"`     // certified δ
	Timeout float64 `json:"timeout,omitempty"` // per-job deadline override, seconds
	Code    string  `json:"code,omitempty"`    // error code (failed)
	Digest  string  `json:"digest,omitempty"`  // result digest (done)
	Sum     string  `json:"sum"`
}

// WALSeq returns the record's sequence number.
func (r *jrec) WALSeq() uint64 { return r.Seq }

// SetWALSeq assigns the record's sequence number.
func (r *jrec) SetWALSeq(s uint64) { r.Seq = s }

// WALSum returns the stored checksum.
func (r *jrec) WALSum() string { return r.Sum }

// SetWALSum assigns the stored checksum.
func (r *jrec) SetWALSum(s string) { r.Sum = s }

// WALChecksum binds every field except the stored sum. %q quotes Source and
// Faults so multi-line query text cannot smear into the neighboring fields.
func (r *jrec) WALChecksum() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d|%s|%s|%s|%q|%q|%d|%.17g|%.17g|%.17g|%s|%s",
		r.Seq, r.Op, r.Job, r.Tenant, r.Source, r.Faults, r.JobSeq,
		r.Eps, r.Del, r.Timeout, r.Code, r.Digest)))
	return hex.EncodeToString(h[:8])
}

// WALDesc labels the record in injected-crash notes.
func (r *jrec) WALDesc() string { return fmt.Sprintf("%s %s/%s", r.Op, r.Tenant, r.Job) }

// journaledJob is the folded per-job replay state.
type journaledJob struct {
	id, tenant     string
	source, faults string
	jobSeq         uint64
	eps, del       float64
	timeout        float64
	state          JobState // JobQueued (submitted) / JobRunning (claimed) / terminal
	code, digest   string
}

func (jj *journaledJob) terminal() bool {
	return jj.state == JobDone || jj.state == JobFailed || jj.state == JobCanceled
}

// journal is the durable job journal. Appends are concurrent (wal.Log
// serializes them); compact excludes appenders so a rewrite can never lose
// a racing record.
type journal struct {
	// rw: appenders hold RLock, compaction holds Lock while it snapshots
	// the job table and rewrites the log — so every record is either in the
	// snapshot or appended to the rewritten file, never dropped.
	rw  sync.RWMutex
	log *wal.Log[*jrec]

	// Replay state, populated by openJournal and consumed by startup
	// recovery; not maintained afterwards (the store is the live table).
	jobs  map[string]*journaledJob
	order []string // job IDs in first-submit order

	// live flips on once recovery has consumed the replay state: from then
	// on the store is authoritative and apply stops folding (it would only
	// duplicate the store, unboundedly). Written before the executor pool
	// starts, read-only after.
	live bool
}

// openJournal opens (creating if absent) the journal at path and replays
// it. wal.ErrCorrupt/ErrLocked surface unchanged; a torn tail truncates.
func openJournal(path string) (*journal, error) {
	j := &journal{jobs: map[string]*journaledJob{}}
	log, err := wal.Open(path, func() *jrec { return new(jrec) }, j.apply, wal.Options{})
	if err != nil {
		return nil, err
	}
	j.log = log
	return j, nil
}

// apply folds one record into the replay state, enforcing the lifecycle
// grammar: submit introduces a job exactly once; claim moves a queued job
// to running; a terminal op closes a non-terminal job. Anything else is
// interior corruption and fails the open (via wal's ErrCorrupt wrap).
func (j *journal) apply(r *jrec) error {
	if j.live {
		return nil
	}
	switch r.Op {
	case jopSubmit:
		if _, dup := j.jobs[r.Job]; dup {
			return fmt.Errorf("duplicate submit for job %q", r.Job)
		}
		if r.Job == "" || r.Tenant == "" {
			return fmt.Errorf("submit record missing job or tenant")
		}
		j.jobs[r.Job] = &journaledJob{
			id: r.Job, tenant: r.Tenant,
			source: r.Source, faults: r.Faults,
			jobSeq: r.JobSeq, eps: r.Eps, del: r.Del, timeout: r.Timeout,
			state: JobQueued,
		}
		j.order = append(j.order, r.Job)
	case jopClaim:
		jj, ok := j.jobs[r.Job]
		if !ok {
			return fmt.Errorf("claim for unknown job %q", r.Job)
		}
		if jj.state != JobQueued {
			return fmt.Errorf("claim for %s job %q", jj.state, r.Job)
		}
		jj.state = JobRunning
	case jopDone, jopFailed, jopCanceled:
		jj, ok := j.jobs[r.Job]
		if !ok {
			return fmt.Errorf("%s for unknown job %q", r.Op, r.Job)
		}
		if jj.terminal() {
			return fmt.Errorf("%s for already-terminal job %q", r.Op, r.Job)
		}
		switch r.Op {
		case jopDone:
			jj.state = JobDone
			jj.digest = r.Digest
		case jopFailed:
			jj.state = JobFailed
			jj.code = r.Code
		case jopCanceled:
			jj.state = JobCanceled
		}
	default:
		return fmt.Errorf("unknown op %q", r.Op)
	}
	return nil
}

// append writes one record durably. Appenders share the read lock so they
// serialize only inside wal.Log, but never interleave with compact.
func (j *journal) append(r *jrec) error {
	j.rw.RLock()
	defer j.rw.RUnlock()
	return j.log.Append(r)
}

// compact atomically replaces the journal with the records build returns.
// build runs under the journal's write lock, so it sees a table state that
// includes every already-appended record and excludes none: a record
// appended after build's snapshot lands in the rewritten file.
func (j *journal) compact(build func() []*jrec) error {
	j.rw.Lock()
	defer j.rw.Unlock()
	return j.log.Rewrite(build())
}

// finishReplay marks recovery complete: the replay state is dropped and
// subsequent appends are durability-only (the store tracks live jobs).
func (j *journal) finishReplay() {
	j.live = true
	j.jobs, j.order = nil, nil
}

// kill poisons the journal like a process death (the "daemon" fault kind):
// descriptor closed without flushing, lock released for the restart.
func (j *journal) kill() { j.log.Kill() }

// close flushes and closes the journal.
func (j *journal) close() error { return j.log.Close() }

// resultDigest is the short commitment to a job's released outputs that the
// done record carries: a restarted daemon re-executing the job must
// reproduce it bit-for-bit (the determinism guarantee the recovery tests
// pin).
func resultDigest(outputs []float64, accepted, sampled int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%d", accepted, sampled)
	for _, o := range outputs {
		fmt.Fprintf(h, "|%.17g", o)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// journalRecords rebuilds the journal's logical contents from job
// snapshots, for compaction: submit (+claim if the job progressed past
// queued) (+the terminal record). Evicted jobs are simply absent, which is
// how the journal's size stays bounded by the retention cap.
func journalRecords(jobs []Job) []*jrec {
	recs := make([]*jrec, 0, 2*len(jobs))
	for i := range jobs {
		j := &jobs[i]
		recs = append(recs, &jrec{
			Op: jopSubmit, Job: j.ID, Tenant: j.Tenant,
			Source: j.source, Faults: j.faults, JobSeq: j.seq,
			Eps: j.Epsilon, Del: j.Delta, Timeout: j.TimeoutSeconds,
		})
		if j.State == JobRunning {
			recs = append(recs, &jrec{Op: jopClaim, Job: j.ID, Tenant: j.Tenant})
		}
		switch j.State {
		case JobDone:
			recs = append(recs, &jrec{Op: jopDone, Job: j.ID, Tenant: j.Tenant, Digest: j.ResultDigest})
		case JobFailed:
			recs = append(recs, &jrec{Op: jopFailed, Job: j.ID, Tenant: j.Tenant, Code: j.ErrorCode})
		case JobCanceled:
			recs = append(recs, &jrec{Op: jopCanceled, Job: j.ID, Tenant: j.Tenant})
		}
	}
	return recs
}
