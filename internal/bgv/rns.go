package bgv

// Multi-prime RNS (residue number system) variant of the BGV ring.
//
// The single-prime ring (bgv.go) tops out at a 60-bit modulus because every
// coefficient must fit a machine word. The paper's prototype runs at ring
// degree 2^15 with a ~135-bit ciphertext modulus (Section 6), which this file
// reaches by CRT: the modulus is a product Q = q_1·…·q_L of word-sized
// NTT-friendly primes, and a ring element is stored as its residues mod each
// q_l — L rows of N words. Every ring operation is then L independent
// single-prime operations reusing the per-prime NTT tables from ntt.go, so
// the paper-scale parameters run natively on 64-bit arithmetic and
// scripts/bench.sh can *measure* the Table 1 FHE column instead of
// extrapolating it through internal/costmodel.
//
// Relinearization is the hybrid RNS gadget: a tensor coefficient d2 is
// represented per prime, each residue is decomposed into base-2^relinLogBase
// digits, and the relin key holds encryptions of g_l·2^(10·j)·s² where
// g_l = (Q/q_l)·((Q/q_l)^{-1} mod q_l) is the CRT interpolation basis —
// Σ_l g_l·(x mod q_l) ≡ x (mod Q). Because g_l ≡ 1 (mod q_l) and ≡ 0 mod
// every other prime, the key-generation factors need no big-integer
// arithmetic at all. For L = 1 and q_1 = Q the whole scheme collapses
// digit-for-digit onto the single-prime implementation: the samplers consume
// identical randomness (rns_equiv_test.go pins the equivalence bit for bit).
//
// Thread safety mirrors Context: an RNSContext is logically immutable after
// NewRNSContext (the scratch pools are internally synchronized), the hot
// paths run one worker-pool task per prime, and results are bit-identical at
// any worker count because the per-prime lanes are independent and partials
// combine in a fixed order.

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/bits"

	"arboretum/internal/fixed"
	"arboretum/internal/parallel"
)

// RNSParams fixes a ring degree, plaintext modulus, and RNS prime basis.
type RNSParams struct {
	N  int      // ring degree, power of two
	T  uint64   // plaintext modulus, coprime with every q_l, T ≪ q_l
	Qi []uint64 // pairwise-distinct NTT-friendly primes, q_l ≡ 1 (mod 2N)
}

// PaperRNSParams is the paper-scale parameter set: ring degree 2^15 and a
// 135-bit modulus built from three 45-bit primes ≡ 1 (mod 2^18). This is the
// instantiation Table 1's FHE column is measured at.
var PaperRNSParams = RNSParams{
	N: 1 << 15,
	T: 65537,
	Qi: []uint64{
		35184365273089, // 45-bit
		35184350330881, // 45-bit
		35184345088001, // 45-bit
	},
}

// TestRNSParams is a small three-prime basis (30-bit primes, ring degree
// 2^10) for unit tests.
var TestRNSParams = RNSParams{
	N:  1 << 10,
	T:  65537,
	Qi: []uint64{1073479681, 1068236801, 1062469633},
}

// maxRNSPrimes bounds the basis size; the paper needs three.
const maxRNSPrimes = 8

// Validate checks the parameter set.
func (p RNSParams) Validate() error {
	if p.N < 16 || p.N&(p.N-1) != 0 {
		return fmt.Errorf("bgv: ring degree %d must be a power of two ≥ 16", p.N)
	}
	if p.N > 1<<17 {
		return fmt.Errorf("bgv: ring degree %d exceeds the supported 2^17", p.N)
	}
	if p.T < 2 || p.T >= 1<<20 {
		return fmt.Errorf("bgv: plaintext modulus %d out of range [2, 2^20)", p.T)
	}
	if len(p.Qi) == 0 || len(p.Qi) > maxRNSPrimes {
		return fmt.Errorf("bgv: %d RNS primes out of range [1, %d]", len(p.Qi), maxRNSPrimes)
	}
	seen := make(map[uint64]bool, len(p.Qi))
	for _, q := range p.Qi {
		if q < 2 || q >= 1<<62 {
			// The lazy-reduction NTT needs 4q to fit a word.
			return fmt.Errorf("bgv: RNS prime %d out of range [2, 2^62)", q)
		}
		if (q-1)%uint64(2*p.N) != 0 {
			return fmt.Errorf("bgv: RNS prime %d is not ≡ 1 mod 2N", q)
		}
		if q%p.T == 0 {
			return fmt.Errorf("bgv: plaintext modulus %d divides RNS prime %d", p.T, q)
		}
		if q <= p.T {
			return fmt.Errorf("bgv: RNS prime %d not above plaintext modulus %d", q, p.T)
		}
		if seen[q] {
			return fmt.Errorf("bgv: duplicate RNS prime %d", q)
		}
		seen[q] = true
	}
	return nil
}

// RingByName resolves a named RNS parameter set: "paper" is the deployment
// ring the evaluation tables quote (2^15, 135-bit composite modulus) and
// "test" is the reduced ring the unit tests run. The planner CLI's -ring
// flag and the cost model's native calibration path accept these names.
func RingByName(name string) (RNSParams, error) {
	switch name {
	case "paper":
		return PaperRNSParams, nil
	case "test":
		return TestRNSParams, nil
	default:
		return RNSParams{}, fmt.Errorf("bgv: unknown ring %q (want \"paper\" or \"test\")", name)
	}
}

// Modulus returns the composite ciphertext modulus Q = Π q_l.
func (p RNSParams) Modulus() *big.Int {
	q := big.NewInt(1)
	for _, qi := range p.Qi {
		q.Mul(q, new(big.Int).SetUint64(qi))
	}
	return q
}

// ModulusBits returns the bit length of the composite modulus — the number
// bench rows and the cost model tag parameter sets with.
func (p RNSParams) ModulusBits() int { return p.Modulus().BitLen() }

// rnsEncScratch holds RNSContext.Encrypt's working state: L·N-word vectors
// for the draws and half-products plus the bulk sampling buffer.
type rnsEncScratch struct {
	u, e1, e2 []uint64
	bu, au    []uint64
	bt, at    []uint64
	buf       []byte
}

// rnsMulScratch holds RNSContext.Mul's working state: eval-domain input
// copies, tensor accumulators, the per-(prime, digit) gadget polynomials,
// and one per-prime work row for the digit transforms.
type rnsMulScratch struct {
	a0, a1, b0, b1 []uint64
	d0, d1, d2     []uint64
	dig            [][]uint64 // totalDigits rows of N coefficients
	work           []uint64   // L·N: per-prime digit transform rows
	bt, at         []uint64   // L·N: eval relin rows for uncached keys
}

// RNSContext carries an RNS parameter set, one NTT table per prime, the CRT
// reconstruction constants, and the hot-path scratch pools.
type RNSContext struct {
	Params RNSParams

	n   int
	l   int
	ntt []*nttTables

	qBig    *big.Int   // Π q_l
	qHalf   *big.Int   // Q/2, for the centered lift
	qHat    []*big.Int // Q/q_l
	qHatInv []uint64   // (Q/q_l)^{-1} mod q_l

	// Gadget layout: digits[l] base-2^relinLogBase digits cover q_l, and
	// digOff[l] is prime l's first flat digit index; totalDigits = Σ digits[l].
	digits      []int
	digOff      []int
	totalDigits int

	enc fixed.Pool[rnsEncScratch]
	mul fixed.Pool[rnsMulScratch]
}

// NewRNSContext validates params and precomputes the per-prime NTT tables
// and CRT constants.
func NewRNSContext(p RNSParams) (*RNSContext, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &RNSContext{Params: p, n: p.N, l: len(p.Qi)}
	c.ntt = make([]*nttTables, c.l)
	for i, q := range p.Qi {
		t, err := newNTTTables(p.N, q)
		if err != nil {
			return nil, err
		}
		c.ntt[i] = t
	}
	c.qBig = p.Modulus()
	c.qHalf = new(big.Int).Rsh(c.qBig, 1)
	c.qHat = make([]*big.Int, c.l)
	c.qHatInv = make([]uint64, c.l)
	for i, q := range p.Qi {
		qi := new(big.Int).SetUint64(q)
		c.qHat[i] = new(big.Int).Div(c.qBig, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(c.qHat[i], qi), qi)
		if inv == nil {
			return nil, fmt.Errorf("bgv: RNS primes not pairwise coprime at %d", q)
		}
		c.qHatInv[i] = inv.Uint64()
	}
	c.digits = make([]int, c.l)
	c.digOff = make([]int, c.l)
	for i, q := range p.Qi {
		c.digOff[i] = c.totalDigits
		c.digits[i] = (bits.Len64(q) + relinLogBase - 1) / relinLogBase
		c.totalDigits += c.digits[i]
	}
	n, l, total := c.n, c.l, c.totalDigits
	c.enc.New = func() *rnsEncScratch {
		return &rnsEncScratch{
			u: make([]uint64, l*n), e1: make([]uint64, l*n), e2: make([]uint64, l*n),
			bu: make([]uint64, l*n), au: make([]uint64, l*n),
			bt: make([]uint64, l*n), at: make([]uint64, l*n),
			buf: make([]byte, n),
		}
	}
	c.mul.New = func() *rnsMulScratch {
		s := &rnsMulScratch{
			a0: make([]uint64, l*n), a1: make([]uint64, l*n),
			b0: make([]uint64, l*n), b1: make([]uint64, l*n),
			d0: make([]uint64, l*n), d1: make([]uint64, l*n), d2: make([]uint64, l*n),
			dig:  make([][]uint64, total),
			work: make([]uint64, l*n),
			bt:   make([]uint64, l*n), at: make([]uint64, l*n),
		}
		for i := range s.dig {
			s.dig[i] = make([]uint64, n)
		}
		return s
	}
	return c, nil
}

// Levels returns the number of RNS primes.
func (c *RNSContext) Levels() int { return c.l }

// row returns prime l's N-word row of an L·N vector.
func (c *RNSContext) row(v []uint64, l int) []uint64 {
	return v[l*c.n : (l+1)*c.n]
}

// --- sampling ---

// sampleTernaryRNS draws ONE ternary polynomial (N bytes from r, the same
// byte → coefficient mapping as the single-prime sampler) and writes its
// residues into every prime's row: −1 becomes q_l−1 in row l. The byte
// consumption is independent of L, which is what makes the L = 1 stream
// identical to the single-prime scheme's.
func (c *RNSContext) sampleTernaryRNS(r io.Reader, dst []uint64, buf []byte) error {
	buf = buf[:c.n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for l := 0; l < c.l; l++ {
		row := c.row(dst, l)
		q := c.Params.Qi[l]
		for i := range row {
			switch buf[i] % 4 {
			case 0:
				row[i] = 1
			case 1:
				row[i] = q - 1
			default:
				row[i] = 0
			}
		}
	}
	return nil
}

// sampleUniformRNS draws each prime's row uniformly and independently —
// by CRT that is exactly a uniform element of Z_Q[x]/(x^n+1).
func (c *RNSContext) sampleUniformRNS(r io.Reader, dst []uint64) error {
	for l := 0; l < c.l; l++ {
		if err := sampleUniformInto(r, c.row(dst, l), c.Params.Qi[l]); err != nil {
			return err
		}
	}
	return nil
}

// --- per-row polynomial helpers (key generation; not allocation-sensitive) ---

// polyMulRow multiplies two N-word rows negacyclically mod q_l.
func (c *RNSContext) polyMulRow(l int, a, b []uint64) []uint64 {
	q := c.Params.Qi[l]
	ae := append([]uint64(nil), a...)
	be := append([]uint64(nil), b...)
	c.ntt[l].Forward(ae)
	c.ntt[l].Forward(be)
	for i := range ae {
		ae[i] = mulMod(ae[i], be[i], q)
	}
	c.ntt[l].Inverse(ae)
	return ae
}

// --- keys ---

// RNSSecretKey is the RLWE secret in RNS form (the same ternary polynomial's
// residues in every row).
type RNSSecretKey struct {
	S []uint64 // L·N
}

// RNSPublicKey is the RLWE public key (A, B = −A·S + T·E) in RNS form, with
// cached per-prime NTT forms populated at generation.
type RNSPublicKey struct {
	A, B []uint64 // L·N

	aNTT, bNTT []uint64
}

// RNSRelinKey holds one (A, B) pair per flat gadget digit (prime l, digit j):
// B = −A·S + T·E + g_l·2^(relinLogBase·j)·S².
type RNSRelinKey struct {
	A, B [][]uint64 // totalDigits entries of L·N

	aNTT, bNTT [][]uint64
}

// RNSKeyPair bundles the generated keys.
type RNSKeyPair struct {
	SK  *RNSSecretKey
	PK  *RNSPublicKey
	RLK *RNSRelinKey
}

// GenerateKeys produces a fresh keypair. The draw order (secret, public A,
// public error, then per gadget digit: A then error) and byte consumption
// mirror Context.GenerateKeys exactly, so at L = 1 with q_1 = Q the keys are
// bit-identical to the single-prime ones.
func (c *RNSContext) GenerateKeys(r io.Reader) (*RNSKeyPair, error) {
	n, l := c.n, c.l
	buf := make([]byte, n)
	s := make([]uint64, l*n)
	if err := c.sampleTernaryRNS(r, s, buf); err != nil {
		return nil, err
	}
	a := make([]uint64, l*n)
	if err := c.sampleUniformRNS(r, a); err != nil {
		return nil, err
	}
	e := make([]uint64, l*n)
	if err := c.sampleTernaryRNS(r, e, buf); err != nil {
		return nil, err
	}
	t := c.Params.T
	b := make([]uint64, l*n)
	for li := 0; li < l; li++ {
		q := c.Params.Qi[li]
		as := c.polyMulRow(li, c.row(a, li), c.row(s, li))
		brow, erow := c.row(b, li), c.row(e, li)
		for i := 0; i < n; i++ {
			brow[i] = addMod(negMod(as[i], q), mulMod(erow[i], t, q), q)
		}
	}
	sk := &RNSSecretKey{S: s}
	pk := &RNSPublicKey{A: a, B: b}
	pk.aNTT = append([]uint64(nil), a...)
	pk.bNTT = append([]uint64(nil), b...)
	for li := 0; li < l; li++ {
		c.ntt[li].Forward(c.row(pk.aNTT, li))
		c.ntt[li].Forward(c.row(pk.bNTT, li))
	}
	rlk, err := c.generateRelinKey(r, sk, buf)
	if err != nil {
		return nil, err
	}
	return &RNSKeyPair{SK: sk, PK: pk, RLK: rlk}, nil
}

func (c *RNSContext) generateRelinKey(r io.Reader, sk *RNSSecretKey, buf []byte) (*RNSRelinKey, error) {
	n, l, t := c.n, c.l, c.Params.T
	// s² per row.
	s2 := make([]uint64, l*n)
	for li := 0; li < l; li++ {
		copy(c.row(s2, li), c.polyMulRow(li, c.row(sk.S, li), c.row(sk.S, li)))
	}
	rlk := &RNSRelinKey{
		A: make([][]uint64, c.totalDigits), B: make([][]uint64, c.totalDigits),
		aNTT: make([][]uint64, c.totalDigits), bNTT: make([][]uint64, c.totalDigits),
	}
	for li := 0; li < l; li++ {
		ql := c.Params.Qi[li]
		// g_l·2^(10j) mod q_m is 0 for m ≠ l and 2^(10j) mod q_l for m = l,
		// so only row l carries the s² term.
		pow := uint64(1)
		for j := 0; j < c.digits[li]; j++ {
			id := c.digOff[li] + j
			a := make([]uint64, l*n)
			if err := c.sampleUniformRNS(r, a); err != nil {
				return nil, err
			}
			e := make([]uint64, l*n)
			if err := c.sampleTernaryRNS(r, e, buf); err != nil {
				return nil, err
			}
			b := make([]uint64, l*n)
			for m := 0; m < l; m++ {
				q := c.Params.Qi[m]
				as := c.polyMulRow(m, c.row(a, m), c.row(sk.S, m))
				brow, erow := c.row(b, m), c.row(e, m)
				for i := 0; i < n; i++ {
					brow[i] = addMod(negMod(as[i], q), mulMod(erow[i], t, q), q)
				}
				if m == li {
					s2row := c.row(s2, m)
					for i := 0; i < n; i++ {
						brow[i] = addMod(brow[i], mulMod(s2row[i], pow, q), q)
					}
				}
			}
			rlk.A[id], rlk.B[id] = a, b
			rlk.aNTT[id] = append([]uint64(nil), a...)
			rlk.bNTT[id] = append([]uint64(nil), b...)
			for m := 0; m < l; m++ {
				c.ntt[m].Forward(c.row(rlk.aNTT[id], m))
				c.ntt[m].Forward(c.row(rlk.bNTT[id], m))
			}
			pow = mulMod(pow, 1<<relinLogBase, ql)
		}
	}
	return rlk, nil
}

// --- ciphertexts ---

// RNSCiphertext is a degree-1 BGV ciphertext in RNS form: C0 and C1 each
// hold L rows of N words (level-major).
type RNSCiphertext struct {
	C0, C1 []uint64
}

// Bytes returns the serialized coefficient size for traffic accounting.
func (ct *RNSCiphertext) Bytes() int {
	if ct == nil {
		return 0
	}
	return 8 * (len(ct.C0) + len(ct.C1))
}

// newCiphertext allocates a result ciphertext as a single 2·L·N slab sliced
// in half — two heap allocations, the hot paths' whole budget.
func (c *RNSContext) newCiphertext() *RNSCiphertext {
	ln := c.l * c.n
	slab := make([]uint64, 2*ln)
	return &RNSCiphertext{C0: slab[:ln:ln], C1: slab[ln:]}
}

// Encode places values (reduced mod T) into a polynomial's coefficients.
// The result is a plain N-length Poly: plaintext coefficients are below T,
// hence below every prime, so one row serves all L lanes.
func (c *RNSContext) Encode(values []uint64) (Poly, error) {
	if len(values) > c.n {
		return nil, fmt.Errorf("bgv: %d values exceed ring degree %d", len(values), c.n)
	}
	p := make(Poly, c.n)
	for i, v := range values {
		p[i] = v % c.Params.T
	}
	return p, nil
}

// Encrypt encrypts the encoded plaintext polynomial under pk. Scratch is
// pooled and the result is a fresh slab: two steady-state allocations at one
// worker. The ternary draws consume the same bytes as the single-prime
// Encrypt, and each prime lane computes the same formula, so at L = 1 the
// output is bit-identical.
func (c *RNSContext) Encrypt(r io.Reader, pk *RNSPublicKey, m Poly) (*RNSCiphertext, error) {
	if len(m) != c.n {
		return nil, errors.New("bgv: plaintext polynomial has wrong degree")
	}
	s := c.enc.Get()
	defer c.enc.Put(s)
	if err := c.sampleTernaryRNS(r, s.u, s.buf); err != nil {
		return nil, err
	}
	if err := c.sampleTernaryRNS(r, s.e1, s.buf); err != nil {
		return nil, err
	}
	if err := c.sampleTernaryRNS(r, s.e2, s.buf); err != nil {
		return nil, err
	}
	ct := c.newCiphertext()
	if parallel.Workers(0) == 1 {
		for li := 0; li < c.l; li++ {
			c.encryptRow(s, pk, m, ct, li)
		}
	} else {
		//arblint:ignore errdiscard ForEach only propagates closure errors and this closure is infallible
		_ = parallel.ForEach(nil, c.l, 0, func(li int) error {
			c.encryptRow(s, pk, m, ct, li)
			return nil
		})
	}
	return ct, nil
}

// encryptRow runs one prime lane of Encrypt: (b·u, a·u) in the evaluation
// domain against the key's cached NTT rows, back, then the noise and message
// terms. Lanes touch disjoint rows, so they may run concurrently.
func (c *RNSContext) encryptRow(s *rnsEncScratch, pk *RNSPublicKey, m Poly, ct *RNSCiphertext, li int) {
	q := c.Params.Qi[li]
	t := c.Params.T
	ntt := c.ntt[li]
	u := c.row(s.u, li)
	ntt.Forward(u)
	var bEval, aEval []uint64
	if len(pk.bNTT) == len(pk.B) && len(pk.bNTT) == c.l*c.n {
		bEval, aEval = c.row(pk.bNTT, li), c.row(pk.aNTT, li)
	} else {
		bEval, aEval = c.row(s.bt, li), c.row(s.at, li)
		copy(bEval, c.row(pk.B, li))
		copy(aEval, c.row(pk.A, li))
		ntt.Forward(bEval)
		ntt.Forward(aEval)
	}
	bu, au := c.row(s.bu, li), c.row(s.au, li)
	for i := range u {
		bu[i] = mulMod(bEval[i], u[i], q)
		au[i] = mulMod(aEval[i], u[i], q)
	}
	ntt.Inverse(bu)
	ntt.Inverse(au)
	e1, e2 := c.row(s.e1, li), c.row(s.e2, li)
	c0, c1 := c.row(ct.C0, li), c.row(ct.C1, li)
	for i := range c0 {
		c0[i] = addMod(addMod(bu[i], mulMod(e1[i], t, q), q), m[i], q)
		c1[i] = addMod(au[i], mulMod(e2[i], t, q), q)
	}
}

// EncryptValues encodes and encrypts a value vector in one call.
func (c *RNSContext) EncryptValues(r io.Reader, pk *RNSPublicKey, values []uint64) (*RNSCiphertext, error) {
	m, err := c.Encode(values)
	if err != nil {
		return nil, err
	}
	return c.Encrypt(r, pk, m)
}

// Decrypt recovers the plaintext coefficient vector: per-prime phase
// c0 + c1·s, CRT reconstruction to the full modulus, centered lift, then
// reduction mod T. Decryption is off the hot path and allocates freely.
func (c *RNSContext) Decrypt(sk *RNSSecretKey, ct *RNSCiphertext) (Plaintext, error) {
	if ct == nil || len(ct.C0) != c.l*c.n || len(ct.C1) != c.l*c.n {
		return nil, errors.New("bgv: malformed ciphertext")
	}
	n := c.n
	phase := make([]uint64, c.l*n)
	for li := 0; li < c.l; li++ {
		q := c.Params.Qi[li]
		cs := c.polyMulRow(li, c.row(ct.C1, li), c.row(sk.S, li))
		prow, c0row := c.row(phase, li), c.row(ct.C0, li)
		for i := 0; i < n; i++ {
			prow[i] = addMod(c0row[i], cs[i], q)
		}
	}
	out := make(Plaintext, n)
	t := c.Params.T
	tBig := new(big.Int).SetUint64(t)
	acc := new(big.Int)
	term := new(big.Int)
	for i := 0; i < n; i++ {
		// x = Σ_l ((x_l·(Q/q_l)^{-1}) mod q_l)·(Q/q_l) mod Q.
		acc.SetUint64(0)
		for li := 0; li < c.l; li++ {
			q := c.Params.Qi[li]
			xi := mulMod(phase[li*n+i], c.qHatInv[li], q)
			term.SetUint64(xi)
			term.Mul(term, c.qHat[li])
			acc.Add(acc, term)
		}
		acc.Mod(acc, c.qBig)
		// Centered lift: values above Q/2 represent small negatives.
		if acc.Cmp(c.qHalf) > 0 {
			acc.Sub(acc, c.qBig)
		}
		acc.Mod(acc, tBig) // Mod is Euclidean: the result is already in [0, t)
		out[i] = acc.Uint64()
	}
	return out, nil
}

// Add homomorphically adds (slot-wise).
func (c *RNSContext) Add(a, b *RNSCiphertext) (*RNSCiphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	out := c.newCiphertext()
	n := c.n
	for li := 0; li < c.l; li++ {
		q := c.Params.Qi[li]
		o0, o1 := c.row(out.C0, li), c.row(out.C1, li)
		a0, a1 := c.row(a.C0, li), c.row(a.C1, li)
		b0, b1 := c.row(b.C0, li), c.row(b.C1, li)
		for i := 0; i < n; i++ {
			o0[i] = addMod(a0[i], b0[i], q)
			o1[i] = addMod(a1[i], b1[i], q)
		}
	}
	return out, nil
}

// Sub homomorphically subtracts.
func (c *RNSContext) Sub(a, b *RNSCiphertext) (*RNSCiphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	out := c.newCiphertext()
	n := c.n
	for li := 0; li < c.l; li++ {
		q := c.Params.Qi[li]
		o0, o1 := c.row(out.C0, li), c.row(out.C1, li)
		a0, a1 := c.row(a.C0, li), c.row(a.C1, li)
		b0, b1 := c.row(b.C0, li), c.row(b.C1, li)
		for i := 0; i < n; i++ {
			o0[i] = subMod(a0[i], b0[i], q)
			o1[i] = subMod(a1[i], b1[i], q)
		}
	}
	return out, nil
}

// Mul multiplies two ciphertexts and relinearizes back to degree 1 with the
// hybrid RNS gadget. Phase one runs per prime: batch-forward the four input
// rows, point-wise tensor, inverse-transform d2, extract that prime's
// base-2^10 digits. Phase two runs per prime again: every (prime, digit)
// polynomial — small coefficients, valid in every lane — is forward-
// transformed in this prime's domain and folded against the relin key's
// cached NTT rows in flat digit order, then d0 and d1 come back and land in
// the result slab. Scratch is pooled; at one worker a steady-state Mul
// performs two heap allocations.
func (c *RNSContext) Mul(a, b *RNSCiphertext, rlk *RNSRelinKey) (*RNSCiphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	if rlk == nil {
		return nil, errors.New("bgv: relinearization key required")
	}
	if len(rlk.A) != c.totalDigits || len(rlk.B) != c.totalDigits {
		return nil, fmt.Errorf("bgv: relin key has %d digits, want %d", len(rlk.A), c.totalDigits)
	}
	s := c.mul.Get()
	defer c.mul.Put(s)
	copy(s.a0, a.C0)
	copy(s.a1, a.C1)
	copy(s.b0, b.C0)
	copy(s.b1, b.C1)
	cached := len(rlk.bNTT) == c.totalDigits && len(rlk.aNTT) == c.totalDigits &&
		len(rlk.bNTT[0]) == c.l*c.n
	ct := c.newCiphertext()
	if parallel.Workers(0) == 1 {
		for li := 0; li < c.l; li++ {
			c.mulTensorRow(s, li)
		}
		for li := 0; li < c.l; li++ {
			c.mulRelinRow(s, rlk, ct, li, cached)
		}
	} else {
		//arblint:ignore errdiscard ForEach only propagates closure errors and these closures are infallible
		_ = parallel.ForEach(nil, c.l, 0, func(li int) error {
			c.mulTensorRow(s, li)
			return nil
		})
		// The digit polynomials cross prime lanes (every lane consumes every
		// prime's digits), so the relin phase starts only after the full
		// tensor phase — ForEach is the barrier.
		//arblint:ignore errdiscard ForEach only propagates closure errors and these closures are infallible
		_ = parallel.ForEach(nil, c.l, 0, func(li int) error {
			c.mulRelinRow(s, rlk, ct, li, cached)
			return nil
		})
	}
	return ct, nil
}

// mulTensorRow runs phase one of Mul for one prime lane: forward transforms,
// point-wise tensor into (d0, d1, d2), d2 back to coefficients, digit
// extraction into this prime's flat digit slots.
func (c *RNSContext) mulTensorRow(s *rnsMulScratch, li int) {
	q := c.Params.Qi[li]
	ntt := c.ntt[li]
	n := c.n
	a0, a1 := c.row(s.a0, li), c.row(s.a1, li)
	b0, b1 := c.row(s.b0, li), c.row(s.b1, li)
	ntt.Forward(a0)
	ntt.Forward(a1)
	ntt.Forward(b0)
	ntt.Forward(b1)
	d0, d1, d2 := c.row(s.d0, li), c.row(s.d1, li), c.row(s.d2, li)
	for i := 0; i < n; i++ {
		d0[i] = mulMod(a0[i], b0[i], q)
		d1[i] = addMod(mulMod(a0[i], b1[i], q), mulMod(a1[i], b0[i], q), q)
		d2[i] = mulMod(a1[i], b1[i], q)
	}
	ntt.Inverse(d2)
	mask := uint64(1<<relinLogBase) - 1
	for j := 0; j < c.digits[li]; j++ {
		digit := s.dig[c.digOff[li]+j]
		for i := 0; i < n; i++ {
			digit[i] = d2[i] & mask
			d2[i] >>= relinLogBase
		}
	}
}

// mulRelinRow runs phase two of Mul for one prime lane: fold every flat
// gadget digit against the relin key in this lane, inverse-transform the two
// accumulators, and write the lane's result rows.
func (c *RNSContext) mulRelinRow(s *rnsMulScratch, rlk *RNSRelinKey, ct *RNSCiphertext, li int, cached bool) {
	q := c.Params.Qi[li]
	ntt := c.ntt[li]
	n := c.n
	d0, d1 := c.row(s.d0, li), c.row(s.d1, li)
	work := c.row(s.work, li)
	for id := 0; id < c.totalDigits; id++ {
		copy(work, s.dig[id])
		ntt.Forward(work)
		var bRow, aRow []uint64
		if cached {
			bRow, aRow = c.row(rlk.bNTT[id], li), c.row(rlk.aNTT[id], li)
		} else {
			bRow, aRow = c.row(s.bt, li), c.row(s.at, li)
			copy(bRow, c.row(rlk.B[id], li))
			copy(aRow, c.row(rlk.A[id], li))
			ntt.Forward(bRow)
			ntt.Forward(aRow)
		}
		for i := 0; i < n; i++ {
			d0[i] = addMod(d0[i], mulMod(work[i], bRow[i], q), q)
			d1[i] = addMod(d1[i], mulMod(work[i], aRow[i], q), q)
		}
	}
	ntt.Inverse(d0)
	ntt.Inverse(d1)
	copy(c.row(ct.C0, li), d0)
	copy(c.row(ct.C1, li), d1)
}

// sumRange folds addition sequentially over a non-empty slice into one
// freshly allocated accumulator ciphertext: two allocations per range.
func (c *RNSContext) sumRange(cts []*RNSCiphertext) (*RNSCiphertext, error) {
	if cts[0] == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	if len(cts) == 1 {
		return cts[0], nil
	}
	ln := c.l * c.n
	if len(cts[0].C0) != ln || len(cts[0].C1) != ln {
		return nil, errors.New("bgv: malformed ciphertext")
	}
	acc := c.newCiphertext()
	copy(acc.C0, cts[0].C0)
	copy(acc.C1, cts[0].C1)
	n := c.n
	for _, ct := range cts[1:] {
		if ct == nil {
			return nil, errors.New("bgv: nil ciphertext")
		}
		for li := 0; li < c.l; li++ {
			q := c.Params.Qi[li]
			a0, a1 := c.row(acc.C0, li), c.row(acc.C1, li)
			b0, b1 := c.row(ct.C0, li), c.row(ct.C1, li)
			for i := 0; i < n; i++ {
				a0[i] = addMod(a0[i], b0[i], q)
				a1[i] = addMod(a1[i], b1[i], q)
			}
		}
	}
	return acc, nil
}

// Sum folds Add over ciphertexts, in parallel chunks above minParallelSum,
// combining partials in index order — bit-identical at any worker count.
func (c *RNSContext) Sum(cts []*RNSCiphertext) (*RNSCiphertext, error) {
	if len(cts) == 0 {
		return nil, errors.New("bgv: empty sum")
	}
	w := parallel.Workers(0)
	if w > 1 && len(cts) >= minParallelSum {
		chunk := (len(cts) + w - 1) / w
		nChunks := (len(cts) + chunk - 1) / chunk
		partials, err := parallel.Map(nil, nChunks, w, func(ci int) (*RNSCiphertext, error) {
			lo := ci * chunk
			hi := lo + chunk
			if hi > len(cts) {
				hi = len(cts)
			}
			return c.sumRange(cts[lo:hi])
		})
		if err != nil {
			return nil, err
		}
		return c.sumRange(partials)
	}
	return c.sumRange(cts)
}
