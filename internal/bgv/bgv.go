// Package bgv implements a BGV-style leveled homomorphic encryption scheme
// over the ring Z_q[x]/(x^n + 1).
//
// Arboretum's prototype uses BGV (Section 6) with a polynomial degree of 2^15
// and a 135-bit ciphertext modulus. This package is a real, working RLWE
// scheme — key generation, encryption, decryption, homomorphic addition,
// plaintext multiplication, and one level of ciphertext multiplication with
// gadget relinearization — implemented on the standard library alone with a
// single 60-bit NTT-friendly prime modulus. Tests and the runtime use reduced
// ring degrees (2^10–2^12); the cost model charges FHE operations at the
// paper's 2^15-scale rates, so planner decisions are unaffected by the
// smaller test parameters (see DESIGN.md for the substitution argument).
//
// Encoding is coefficient packing: a plaintext is a vector of up to n values
// mod t placed in the polynomial's coefficients. Addition is slot-wise;
// ciphertext multiplication is negacyclic convolution (use degree-0
// plaintexts for scalar products).
//
// # Thread safety
//
// A Context is immutable after NewContext — its NTT tables are precomputed
// and only ever read — so one Context may serve any number of goroutines
// concurrently. The same holds for SecretKey, PublicKey, and RelinKey once
// generated. Ciphertext, Poly, and Plaintext values are plain slices with no
// internal synchronization: do not mutate one while another goroutine reads
// it. The hot paths (Encrypt's two half-products, Mul's relinearization
// digits, Sum's chunked fold) batch their independent NTT transforms across
// the internal/parallel worker pool; every result is bit-identical at any
// worker count because all ring arithmetic is exact modular arithmetic and
// partial results are combined in a fixed order. See docs/CONCURRENCY.md.
package bgv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"arboretum/internal/parallel"
)

// Q is the ciphertext modulus: 2^60 − 2^18 + 1, prime, with q ≡ 1 (mod 2^18),
// so the negacyclic NTT works for every ring degree up to 2^17.
const Q uint64 = 1152921504606830593

// relinBase is the gadget decomposition base (2^relinLogBase) used by the
// relinearization key.
const relinLogBase = 10

// Params fixes a ring degree and plaintext modulus.
type Params struct {
	N int    // ring degree, power of two
	T uint64 // plaintext modulus, coprime with Q, T ≪ Q
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	if p.N < 16 || p.N&(p.N-1) != 0 {
		return fmt.Errorf("bgv: ring degree %d must be a power of two ≥ 16", p.N)
	}
	if p.N > 1<<17 {
		return fmt.Errorf("bgv: ring degree %d exceeds 2^17 supported by Q", p.N)
	}
	if p.T < 2 || p.T >= 1<<20 {
		return fmt.Errorf("bgv: plaintext modulus %d out of range [2, 2^20)", p.T)
	}
	if Q%p.T == 0 {
		return errors.New("bgv: plaintext modulus divides Q")
	}
	return nil
}

// TestParams is a small parameter set for unit tests (one multiplication of
// depth is supported at these sizes).
var TestParams = Params{N: 1 << 10, T: 65537}

// Poly is a polynomial with coefficients in [0, Q), length N. Polys and
// the types built from them (Ciphertext, keys) carry no synchronization:
// they may be read concurrently, but a caller who mutates one must not
// share it across goroutines.
type Poly []uint64

// Context carries the parameter set and NTT tables. It is immutable after
// NewContext: all methods are safe for concurrent use, and the hot ones
// (Encrypt, Mul, Sum, batched transforms) fan work out over a pool
// internally.
type Context struct {
	Params Params
	ntt    *nttTables
}

// NewContext validates params and precomputes NTT tables.
func NewContext(p Params) (*Context, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tables, err := newNTTTables(p.N, Q)
	if err != nil {
		return nil, err
	}
	return &Context{Params: p, ntt: tables}, nil
}

func (c *Context) newPoly() Poly { return make(Poly, c.Params.N) }

// --- sampling ---

// sampleUniform fills a polynomial with uniform coefficients mod Q.
func (c *Context) sampleUniform(r io.Reader) (Poly, error) {
	p := c.newPoly()
	buf := make([]byte, 8)
	for i := range p {
		for {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			v := binary.LittleEndian.Uint64(buf)
			// Rejection sampling to stay unbiased.
			if v < Q*16 { // Q*16 < 2^64, multiple of Q region
				p[i] = v % Q
				break
			}
		}
	}
	return p, nil
}

// sampleTernary fills a polynomial with coefficients in {−1, 0, 1}; used for
// secrets, encryption randomness, and errors. Small ternary errors keep one
// multiplication within the noise budget at test parameters (documented
// reduced-security test instantiation; see package comment).
func (c *Context) sampleTernary(r io.Reader) (Poly, error) {
	p := c.newPoly()
	// One bulk read instead of a 1-byte read per coefficient: same byte →
	// coefficient mapping, but crypto/rand throughput instead of per-call
	// overhead on the encryption hot path.
	buf := make([]byte, len(p))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for i := range p {
		switch buf[i] % 4 {
		case 0:
			p[i] = 1
		case 1:
			p[i] = Q - 1
		default:
			p[i] = 0
		}
	}
	return p, nil
}

// --- polynomial arithmetic ---

func (c *Context) polyAdd(a, b Poly) Poly {
	out := c.newPoly()
	for i := range out {
		out[i] = addMod(a[i], b[i], Q)
	}
	return out
}

func (c *Context) polySub(a, b Poly) Poly {
	out := c.newPoly()
	for i := range out {
		out[i] = subMod(a[i], b[i], Q)
	}
	return out
}

func (c *Context) polyNeg(a Poly) Poly {
	out := c.newPoly()
	for i := range out {
		out[i] = negMod(a[i], Q)
	}
	return out
}

func (c *Context) polyScale(a Poly, k uint64) Poly {
	out := c.newPoly()
	for i := range out {
		out[i] = mulMod(a[i], k, Q)
	}
	return out
}

// polyMul multiplies in the ring via NTT.
func (c *Context) polyMul(a, b Poly) Poly {
	ae := append(Poly(nil), a...)
	be := append(Poly(nil), b...)
	c.ntt.Forward(ae)
	c.ntt.Forward(be)
	for i := range ae {
		ae[i] = mulMod(ae[i], be[i], Q)
	}
	c.ntt.Inverse(ae)
	return ae
}

// --- keys ---

// SecretKey is the RLWE secret (ternary polynomial).
type SecretKey struct {
	S Poly
}

// PublicKey is the RLWE public key (A, B = −A·S + T·E).
type PublicKey struct {
	A, B Poly
}

// RelinKey key-switches s² back to s after multiplication, one entry per
// gadget digit: (A_i, B_i = −A_i·S + T·E_i + base^i·S²).
type RelinKey struct {
	A, B []Poly
}

// KeyPair bundles the keys a key-generation committee produces.
type KeyPair struct {
	SK  *SecretKey
	PK  *PublicKey
	RLK *RelinKey
}

// GenerateKeys produces a fresh keypair (Section 5.2 runs this inside a
// committee MPC; the runtime calls it through the MPC engine).
func (c *Context) GenerateKeys(r io.Reader) (*KeyPair, error) {
	s, err := c.sampleTernary(r)
	if err != nil {
		return nil, err
	}
	a, err := c.sampleUniform(r)
	if err != nil {
		return nil, err
	}
	e, err := c.sampleTernary(r)
	if err != nil {
		return nil, err
	}
	// b = −a·s + t·e
	b := c.polyAdd(c.polyNeg(c.polyMul(a, s)), c.polyScale(e, c.Params.T))
	sk := &SecretKey{S: s}
	pk := &PublicKey{A: a, B: b}
	rlk, err := c.generateRelinKey(r, sk)
	if err != nil {
		return nil, err
	}
	return &KeyPair{SK: sk, PK: pk, RLK: rlk}, nil
}

func (c *Context) generateRelinKey(r io.Reader, sk *SecretKey) (*RelinKey, error) {
	s2 := c.polyMul(sk.S, sk.S)
	// Q < 2^60, so six 10-bit digits cover every coefficient.
	digits := (60 + relinLogBase - 1) / relinLogBase
	rlk := &RelinKey{A: make([]Poly, digits), B: make([]Poly, digits)}
	pow := uint64(1)
	for i := 0; i < digits; i++ {
		a, err := c.sampleUniform(r)
		if err != nil {
			return nil, err
		}
		e, err := c.sampleTernary(r)
		if err != nil {
			return nil, err
		}
		b := c.polyAdd(c.polyNeg(c.polyMul(a, sk.S)), c.polyScale(e, c.Params.T))
		b = c.polyAdd(b, c.polyScale(s2, pow))
		rlk.A[i], rlk.B[i] = a, b
		pow = mulMod(pow, 1<<relinLogBase, Q)
	}
	return rlk, nil
}

// --- ciphertexts ---

// Ciphertext is a degree-1 BGV ciphertext (C0, C1) with
// C0 + C1·S = m + T·noise (mod Q).
type Ciphertext struct {
	C0, C1 Poly
}

// Bytes returns the serialized size for traffic accounting.
func (ct *Ciphertext) Bytes() int {
	if ct == nil {
		return 0
	}
	return 8 * (len(ct.C0) + len(ct.C1))
}

// Plaintext is a coefficient vector mod T, length ≤ N.
type Plaintext []uint64

// Encode places values (reduced mod T) into a polynomial's coefficients.
func (c *Context) Encode(values []uint64) (Poly, error) {
	if len(values) > c.Params.N {
		return nil, fmt.Errorf("bgv: %d values exceed ring degree %d", len(values), c.Params.N)
	}
	p := c.newPoly()
	for i, v := range values {
		p[i] = v % c.Params.T
	}
	return p, nil
}

// Encrypt encrypts the encoded plaintext polynomial under pk.
func (c *Context) Encrypt(r io.Reader, pk *PublicKey, m Poly) (*Ciphertext, error) {
	if len(m) != c.Params.N {
		return nil, errors.New("bgv: plaintext polynomial has wrong degree")
	}
	u, err := c.sampleTernary(r)
	if err != nil {
		return nil, err
	}
	e1, err := c.sampleTernary(r)
	if err != nil {
		return nil, err
	}
	e2, err := c.sampleTernary(r)
	if err != nil {
		return nil, err
	}
	t := c.Params.T
	// Both half-products share the encryption randomness u: transform
	// (B, A, u) to the evaluation domain in one batch, multiply point-wise,
	// and transform the two products back together — 5 NTTs instead of the 6
	// two polyMul calls would spend, with the batch spread over the worker
	// pool. Exact modular arithmetic keeps the result bit-identical to the
	// sequential per-product formulation.
	bu := append(Poly(nil), pk.B...)
	au := append(Poly(nil), pk.A...)
	ue := append(Poly(nil), u...)
	c.ntt.forwardBatch([]Poly{bu, au, ue})
	for i := range ue {
		bu[i] = mulMod(bu[i], ue[i], Q)
		au[i] = mulMod(au[i], ue[i], Q)
	}
	c.ntt.inverseBatch([]Poly{bu, au})
	c0 := c.polyAdd(bu, c.polyScale(e1, t))
	c0 = c.polyAdd(c0, m)
	c1 := c.polyAdd(au, c.polyScale(e2, t))
	return &Ciphertext{C0: c0, C1: c1}, nil
}

// EncryptValues encodes and encrypts a value vector in one call.
func (c *Context) EncryptValues(r io.Reader, pk *PublicKey, values []uint64) (*Ciphertext, error) {
	m, err := c.Encode(values)
	if err != nil {
		return nil, err
	}
	return c.Encrypt(r, pk, m)
}

// Decrypt recovers the plaintext coefficient vector.
func (c *Context) Decrypt(sk *SecretKey, ct *Ciphertext) (Plaintext, error) {
	if ct == nil || len(ct.C0) != c.Params.N || len(ct.C1) != c.Params.N {
		return nil, errors.New("bgv: malformed ciphertext")
	}
	phase := c.polyAdd(ct.C0, c.polyMul(ct.C1, sk.S))
	out := make(Plaintext, c.Params.N)
	t := c.Params.T
	half := Q / 2
	for i, v := range phase {
		// Centered lift: values near Q represent small negatives.
		if v > half {
			// (v − Q) mod t, computed without going negative.
			diff := Q - v // |negative value|
			out[i] = (t - diff%t) % t
		} else {
			out[i] = v % t
		}
	}
	return out, nil
}

// Add homomorphically adds (slot-wise): the ⊞ operator.
func (c *Context) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	return &Ciphertext{C0: c.polyAdd(a.C0, b.C0), C1: c.polyAdd(a.C1, b.C1)}, nil
}

// Sub homomorphically subtracts.
func (c *Context) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	return &Ciphertext{C0: c.polySub(a.C0, b.C0), C1: c.polySub(a.C1, b.C1)}, nil
}

// AddPlain adds an encoded plaintext to a ciphertext.
func (c *Context) AddPlain(a *Ciphertext, m Poly) (*Ciphertext, error) {
	if a == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	return &Ciphertext{C0: c.polyAdd(a.C0, m), C1: append(Poly(nil), a.C1...)}, nil
}

// MulPlain multiplies a ciphertext by an encoded plaintext polynomial
// (negacyclic convolution in coefficient encoding; scalar for degree-0 m).
func (c *Context) MulPlain(a *Ciphertext, m Poly) (*Ciphertext, error) {
	if a == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	return &Ciphertext{C0: c.polyMul(a.C0, m), C1: c.polyMul(a.C1, m)}, nil
}

// MulScalar multiplies by a public integer scalar.
func (c *Context) MulScalar(a *Ciphertext, k uint64) (*Ciphertext, error) {
	if a == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	kk := k % c.Params.T
	return &Ciphertext{C0: c.polyScale(a.C0, kk), C1: c.polyScale(a.C1, kk)}, nil
}

// Mul multiplies two ciphertexts and relinearizes back to degree 1: the ⊠
// operator. One multiplication level is supported at the default parameters.
//
// The tensor and the relinearization are computed in the evaluation domain:
// the four input polynomials are transformed in one batch, the tensor is
// point-wise, each gadget digit's two products run as independent worker-pool
// tasks, and everything is accumulated before two final inverse transforms.
// The NTT is a linear bijection over exact modular arithmetic, so this is
// bit-identical to the textbook per-product formulation at any worker count
// — while doing 23 transforms where the naive version does 36.
func (c *Context) Mul(a, b *Ciphertext, rlk *RelinKey) (*Ciphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	if rlk == nil {
		return nil, errors.New("bgv: relinearization key required")
	}
	n := c.Params.N
	// Tensor: (a0 + a1 s)(b0 + b1 s) = d0 + d1 s + d2 s², point-wise in the
	// evaluation domain.
	a0 := append(Poly(nil), a.C0...)
	a1 := append(Poly(nil), a.C1...)
	b0 := append(Poly(nil), b.C0...)
	b1 := append(Poly(nil), b.C1...)
	c.ntt.forwardBatch([]Poly{a0, a1, b0, b1})
	d0 := c.newPoly()
	d1 := c.newPoly()
	d2 := c.newPoly()
	for i := 0; i < n; i++ {
		d0[i] = mulMod(a0[i], b0[i], Q)
		d1[i] = addMod(mulMod(a0[i], b1[i], Q), mulMod(a1[i], b0[i], Q), Q)
		d2[i] = mulMod(a1[i], b1[i], Q)
	}
	// Gadget decomposition needs d2's coefficients, so it alone returns to
	// the coefficient domain here.
	c.ntt.Inverse(d2)
	digits := len(rlk.A)
	mask := uint64(1<<relinLogBase) - 1
	digitPolys := make([]Poly, digits)
	for i := 0; i < digits; i++ {
		digit := c.newPoly()
		for j := range d2 {
			digit[j] = d2[j] & mask
			d2[j] >>= relinLogBase
		}
		digitPolys[i] = digit
	}
	// Each digit contributes digit·B_i to c0 and digit·A_i to c1. The digits
	// are independent — one pool task each — and the contributions are added
	// afterwards in digit order (addition mod Q is associative and
	// commutative, so the order is immaterial to the value; fixing it keeps
	// the loop obviously deterministic).
	type contrib struct{ c0, c1 Poly }
	contribs, err := parallel.Map(nil, digits, 0, func(i int) (contrib, error) {
		dp := digitPolys[i]
		bi := append(Poly(nil), rlk.B[i]...)
		ai := append(Poly(nil), rlk.A[i]...)
		c.ntt.Forward(dp)
		c.ntt.Forward(bi)
		c.ntt.Forward(ai)
		p0 := c.newPoly()
		p1 := c.newPoly()
		for j := 0; j < n; j++ {
			p0[j] = mulMod(dp[j], bi[j], Q)
			p1[j] = mulMod(dp[j], ai[j], Q)
		}
		return contrib{c0: p0, c1: p1}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, ct := range contribs {
		for j := 0; j < n; j++ {
			d0[j] = addMod(d0[j], ct.c0[j], Q)
			d1[j] = addMod(d1[j], ct.c1[j], Q)
		}
	}
	c.ntt.inverseBatch([]Poly{d0, d1})
	return &Ciphertext{C0: d0, C1: d1}, nil
}

// minParallelSum is the ciphertext count below which Sum stays sequential.
const minParallelSum = 32

// sumRange folds addition sequentially over a non-empty slice, accumulating
// into a single pair of buffers instead of allocating a fresh ciphertext per
// Add — the values are identical to the Add-based fold (same addMod in the
// same order), but the aggregator's inner loop stops churning the allocator.
func (c *Context) sumRange(cts []*Ciphertext) (*Ciphertext, error) {
	if cts[0] == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	if len(cts) == 1 {
		return cts[0], nil
	}
	acc := &Ciphertext{
		C0: append(Poly(nil), cts[0].C0...),
		C1: append(Poly(nil), cts[0].C1...),
	}
	for _, ct := range cts[1:] {
		if ct == nil {
			return nil, errors.New("bgv: nil ciphertext")
		}
		c0, c1 := ct.C0, ct.C1
		for i := range acc.C0 {
			acc.C0[i] = addMod(acc.C0[i], c0[i], Q)
			acc.C1[i] = addMod(acc.C1[i], c1[i], Q)
		}
	}
	return acc, nil
}

// Sum folds Add over ciphertexts (the aggregator's AHE/FHE sum loop). Large
// sums fold in parallel chunks whose partials are combined in index order;
// coefficient-wise addition mod Q is associative and commutative, so the
// result is bit-identical to the sequential fold at any worker count.
func (c *Context) Sum(cts []*Ciphertext) (*Ciphertext, error) {
	if len(cts) == 0 {
		return nil, errors.New("bgv: empty sum")
	}
	w := parallel.Workers(0)
	if w > 1 && len(cts) >= minParallelSum {
		chunk := (len(cts) + w - 1) / w
		nChunks := (len(cts) + chunk - 1) / chunk
		partials, err := parallel.Map(nil, nChunks, w, func(ci int) (*Ciphertext, error) {
			lo := ci * chunk
			hi := lo + chunk
			if hi > len(cts) {
				hi = len(cts)
			}
			return c.sumRange(cts[lo:hi])
		})
		if err != nil {
			return nil, err
		}
		return c.sumRange(partials)
	}
	return c.sumRange(cts)
}
