// Package bgv implements a BGV-style leveled homomorphic encryption scheme
// over the ring Z_q[x]/(x^n + 1).
//
// Arboretum's prototype uses BGV (Section 6) with a polynomial degree of 2^15
// and a 135-bit ciphertext modulus. This package is a real, working RLWE
// scheme — key generation, encryption, decryption, homomorphic addition,
// plaintext multiplication, and one level of ciphertext multiplication with
// gadget relinearization — implemented on the standard library alone with a
// single 60-bit NTT-friendly prime modulus. Tests and the runtime use reduced
// ring degrees (2^10–2^12); the cost model charges FHE operations at the
// paper's 2^15-scale rates, so planner decisions are unaffected by the
// smaller test parameters (see DESIGN.md for the substitution argument).
//
// Encoding is coefficient packing: a plaintext is a vector of up to n values
// mod t placed in the polynomial's coefficients. Addition is slot-wise;
// ciphertext multiplication is negacyclic convolution (use degree-0
// plaintexts for scalar products).
//
// # Thread safety
//
// A Context is immutable after NewContext — its NTT tables are precomputed
// and only ever read — so one Context may serve any number of goroutines
// concurrently. The same holds for SecretKey, PublicKey, and RelinKey once
// generated. Ciphertext, Poly, and Plaintext values are plain slices with no
// internal synchronization: do not mutate one while another goroutine reads
// it. The hot paths (Encrypt's two half-products, Mul's relinearization
// digits, Sum's chunked fold) batch their independent NTT transforms across
// the internal/parallel worker pool; every result is bit-identical at any
// worker count because all ring arithmetic is exact modular arithmetic and
// partial results are combined in a fixed order. See docs/CONCURRENCY.md.
package bgv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"arboretum/internal/fixed"
	"arboretum/internal/parallel"
)

// Q is the ciphertext modulus: 2^60 − 2^18 + 1, prime, with q ≡ 1 (mod 2^18),
// so the negacyclic NTT works for every ring degree up to 2^17.
const Q uint64 = 1152921504606830593

// relinBase is the gadget decomposition base (2^relinLogBase) used by the
// relinearization key.
const relinLogBase = 10

// relinDigits is the number of gadget digits: Q < 2^60, so six 10-bit digits
// cover every coefficient.
const relinDigits = (60 + relinLogBase - 1) / relinLogBase

// Params fixes a ring degree and plaintext modulus.
type Params struct {
	N int    // ring degree, power of two
	T uint64 // plaintext modulus, coprime with Q, T ≪ Q
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	if p.N < 16 || p.N&(p.N-1) != 0 {
		return fmt.Errorf("bgv: ring degree %d must be a power of two ≥ 16", p.N)
	}
	if p.N > 1<<17 {
		return fmt.Errorf("bgv: ring degree %d exceeds 2^17 supported by Q", p.N)
	}
	if p.T < 2 || p.T >= 1<<20 {
		return fmt.Errorf("bgv: plaintext modulus %d out of range [2, 2^20)", p.T)
	}
	if Q%p.T == 0 {
		return errors.New("bgv: plaintext modulus divides Q")
	}
	return nil
}

// TestParams is a small parameter set for unit tests (one multiplication of
// depth is supported at these sizes).
var TestParams = Params{N: 1 << 10, T: 65537}

// Poly is a polynomial with coefficients in [0, Q), length N. Polys and
// the types built from them (Ciphertext, keys) carry no synchronization:
// they may be read concurrently, but a caller who mutates one must not
// share it across goroutines.
type Poly []uint64

// Context carries the parameter set, NTT tables, and the scratch pools the
// hot paths draw from. It is logically immutable after NewContext — the pools
// are internally synchronized — so all methods are safe for concurrent use,
// and the hot ones (Encrypt, Mul, Sum, batched transforms) fan work out over
// a worker pool internally.
type Context struct {
	Params Params
	ntt    *nttTables

	// Scratch pools for the zero-alloc hot paths: every Encrypt/Mul checks a
	// scratch struct out, overwrites it completely, and returns it on exit.
	// Nothing pooled ever escapes into a returned Ciphertext (results live in
	// freshly allocated slabs), so callers cannot observe recycling.
	enc fixed.Pool[encScratch]
	mul fixed.Pool[mulScratch]
}

// encScratch holds Encrypt's working polynomials: the ternary draws (u, e1,
// e2), the two half-products (bu, au), eval-domain key copies (bt, at) for
// public keys without cached NTT forms, the bulk sampling buffer, and
// pre-built batch headers so batched transforms don't allocate slice
// literals per call.
type encScratch struct {
	u, e1, e2 Poly
	bu, au    Poly
	bt, at    Poly
	buf       []byte
	batch2    []Poly
	batch3    []Poly
}

// mulScratch holds Mul's working polynomials: eval-domain copies of the four
// input halves, the tensor accumulators (d0, d1, d2), per-digit gadget
// polynomials and their two products, eval-domain relin-key copies (bt, at)
// for keys without cached NTT forms, and a pre-built batch header.
type mulScratch struct {
	a0, a1, b0, b1 Poly
	d0, d1, d2     Poly
	dig, p0, p1    []Poly
	bt, at         Poly
	batch4         []Poly
}

// NewContext validates params and precomputes NTT tables.
func NewContext(p Params) (*Context, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tables, err := newNTTTables(p.N, Q)
	if err != nil {
		return nil, err
	}
	c := &Context{Params: p, ntt: tables}
	n := p.N
	c.enc.New = func() *encScratch {
		s := &encScratch{
			u: make(Poly, n), e1: make(Poly, n), e2: make(Poly, n),
			bu: make(Poly, n), au: make(Poly, n),
			bt: make(Poly, n), at: make(Poly, n),
			buf:    make([]byte, n),
			batch2: make([]Poly, 2),
			batch3: make([]Poly, 3),
		}
		return s
	}
	c.mul.New = func() *mulScratch {
		s := &mulScratch{
			a0: make(Poly, n), a1: make(Poly, n), b0: make(Poly, n), b1: make(Poly, n),
			d0: make(Poly, n), d1: make(Poly, n), d2: make(Poly, n),
			dig: make([]Poly, relinDigits), p0: make([]Poly, relinDigits), p1: make([]Poly, relinDigits),
			bt: make(Poly, n), at: make(Poly, n),
			batch4: make([]Poly, 4),
		}
		for i := 0; i < relinDigits; i++ {
			s.dig[i] = make(Poly, n)
			s.p0[i] = make(Poly, n)
			s.p1[i] = make(Poly, n)
		}
		return s
	}
	return c, nil
}

func (c *Context) newPoly() Poly { return make(Poly, c.Params.N) }

// --- sampling ---

// sampleUniformInto fills p with uniform coefficients mod q by rejection
// sampling: a draw is accepted only below the largest multiple of q that fits
// in 64 bits, so the reduction is unbiased. For q = Q the bound equals 16·Q —
// byte-for-byte the historical single-prime sampler — and the same helper
// serves the RNS primes, where the per-prime bounds differ.
func sampleUniformInto(r io.Reader, p Poly, q uint64) error {
	bound := (^uint64(0) / q) * q
	var buf [8]byte
	for i := range p {
		for {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return err
			}
			v := binary.LittleEndian.Uint64(buf[:])
			if v < bound {
				p[i] = v % q
				break
			}
		}
	}
	return nil
}

// sampleUniform fills a fresh polynomial with uniform coefficients mod Q.
func (c *Context) sampleUniform(r io.Reader) (Poly, error) {
	p := c.newPoly()
	if err := sampleUniformInto(r, p, Q); err != nil {
		return nil, err
	}
	return p, nil
}

// sampleTernaryInto fills p with coefficients in {−1, 0, 1} mod q; used for
// secrets, encryption randomness, and errors. Small ternary errors keep one
// multiplication within the noise budget at test parameters (documented
// reduced-security test instantiation; see package comment). buf must be at
// least len(p) bytes: one bulk read instead of a 1-byte read per coefficient
// gives crypto/rand throughput without per-call overhead, and the same byte →
// coefficient mapping for every modulus keeps the single-prime and RNS
// samplers consuming identical randomness.
func sampleTernaryInto(r io.Reader, p Poly, buf []byte, q uint64) error {
	buf = buf[:len(p)]
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range p {
		switch buf[i] % 4 {
		case 0:
			p[i] = 1
		case 1:
			p[i] = q - 1
		default:
			p[i] = 0
		}
	}
	return nil
}

// sampleTernary fills a fresh polynomial with coefficients in {−1, 0, 1}.
func (c *Context) sampleTernary(r io.Reader) (Poly, error) {
	p := c.newPoly()
	buf := make([]byte, len(p))
	if err := sampleTernaryInto(r, p, buf, Q); err != nil {
		return nil, err
	}
	return p, nil
}

// --- polynomial arithmetic ---

func (c *Context) polyAdd(a, b Poly) Poly {
	out := c.newPoly()
	for i := range out {
		out[i] = addMod(a[i], b[i], Q)
	}
	return out
}

func (c *Context) polySub(a, b Poly) Poly {
	out := c.newPoly()
	for i := range out {
		out[i] = subMod(a[i], b[i], Q)
	}
	return out
}

func (c *Context) polyNeg(a Poly) Poly {
	out := c.newPoly()
	for i := range out {
		out[i] = negMod(a[i], Q)
	}
	return out
}

func (c *Context) polyScale(a Poly, k uint64) Poly {
	out := c.newPoly()
	for i := range out {
		out[i] = mulMod(a[i], k, Q)
	}
	return out
}

// polyMul multiplies in the ring via NTT.
func (c *Context) polyMul(a, b Poly) Poly {
	ae := append(Poly(nil), a...)
	be := append(Poly(nil), b...)
	c.ntt.Forward(ae)
	c.ntt.Forward(be)
	for i := range ae {
		ae[i] = mulMod(ae[i], be[i], Q)
	}
	c.ntt.Inverse(ae)
	return ae
}

// --- keys ---

// SecretKey is the RLWE secret (ternary polynomial).
type SecretKey struct {
	S Poly
}

// PublicKey is the RLWE public key (A, B = −A·S + T·E). Keys produced by
// GenerateKeys also carry their NTT forms, which Encrypt reuses instead of
// transforming A and B on every call; a zero-constructed PublicKey still
// works through the uncached fallback path.
type PublicKey struct {
	A, B Poly

	// Evaluation-domain (bit-reversed) forms of A and B, populated at key
	// generation. Unexported: derived data, never serialized.
	aNTT, bNTT Poly
}

// RelinKey key-switches s² back to s after multiplication, one entry per
// gadget digit: (A_i, B_i = −A_i·S + T·E_i + base^i·S²). Keys produced by
// GenerateKeys carry cached NTT forms of every digit pair, which saves Mul
// twelve forward transforms per call.
type RelinKey struct {
	A, B []Poly

	aNTT, bNTT []Poly
}

// KeyPair bundles the keys a key-generation committee produces.
type KeyPair struct {
	SK  *SecretKey
	PK  *PublicKey
	RLK *RelinKey
}

// GenerateKeys produces a fresh keypair (Section 5.2 runs this inside a
// committee MPC; the runtime calls it through the MPC engine).
func (c *Context) GenerateKeys(r io.Reader) (*KeyPair, error) {
	s, err := c.sampleTernary(r)
	if err != nil {
		return nil, err
	}
	a, err := c.sampleUniform(r)
	if err != nil {
		return nil, err
	}
	e, err := c.sampleTernary(r)
	if err != nil {
		return nil, err
	}
	// b = −a·s + t·e
	b := c.polyAdd(c.polyNeg(c.polyMul(a, s)), c.polyScale(e, c.Params.T))
	sk := &SecretKey{S: s}
	pk := &PublicKey{A: a, B: b}
	pk.aNTT = append(Poly(nil), a...)
	pk.bNTT = append(Poly(nil), b...)
	c.ntt.Forward(pk.aNTT)
	c.ntt.Forward(pk.bNTT)
	rlk, err := c.generateRelinKey(r, sk)
	if err != nil {
		return nil, err
	}
	return &KeyPair{SK: sk, PK: pk, RLK: rlk}, nil
}

func (c *Context) generateRelinKey(r io.Reader, sk *SecretKey) (*RelinKey, error) {
	s2 := c.polyMul(sk.S, sk.S)
	digits := relinDigits
	rlk := &RelinKey{
		A: make([]Poly, digits), B: make([]Poly, digits),
		aNTT: make([]Poly, digits), bNTT: make([]Poly, digits),
	}
	pow := uint64(1)
	for i := 0; i < digits; i++ {
		a, err := c.sampleUniform(r)
		if err != nil {
			return nil, err
		}
		e, err := c.sampleTernary(r)
		if err != nil {
			return nil, err
		}
		b := c.polyAdd(c.polyNeg(c.polyMul(a, sk.S)), c.polyScale(e, c.Params.T))
		b = c.polyAdd(b, c.polyScale(s2, pow))
		rlk.A[i], rlk.B[i] = a, b
		rlk.aNTT[i] = append(Poly(nil), a...)
		rlk.bNTT[i] = append(Poly(nil), b...)
		c.ntt.Forward(rlk.aNTT[i])
		c.ntt.Forward(rlk.bNTT[i])
		pow = mulMod(pow, 1<<relinLogBase, Q)
	}
	return rlk, nil
}

// --- ciphertexts ---

// Ciphertext is a degree-1 BGV ciphertext (C0, C1) with
// C0 + C1·S = m + T·noise (mod Q).
type Ciphertext struct {
	C0, C1 Poly
}

// Bytes returns the serialized size for traffic accounting.
func (ct *Ciphertext) Bytes() int {
	if ct == nil {
		return 0
	}
	return 8 * (len(ct.C0) + len(ct.C1))
}

// Plaintext is a coefficient vector mod T, length ≤ N.
type Plaintext []uint64

// Encode places values (reduced mod T) into a polynomial's coefficients.
func (c *Context) Encode(values []uint64) (Poly, error) {
	if len(values) > c.Params.N {
		return nil, fmt.Errorf("bgv: %d values exceed ring degree %d", len(values), c.Params.N)
	}
	p := c.newPoly()
	for i, v := range values {
		p[i] = v % c.Params.T
	}
	return p, nil
}

// newCiphertext allocates a result ciphertext as a single 2n-word slab
// sliced into its two halves: exactly two heap allocations (slab + header
// struct), which is the entire steady-state allocation budget of the hot
// paths — everything else they touch is pooled scratch.
func (c *Context) newCiphertext() *Ciphertext {
	n := c.Params.N
	slab := make(Poly, 2*n)
	return &Ciphertext{C0: slab[:n:n], C1: slab[n:]}
}

// Encrypt encrypts the encoded plaintext polynomial under pk.
//
// All working polynomials come from the Context's scratch pool and the result
// is written into a fresh two-poly slab, so a steady-state Encrypt performs
// two heap allocations (the returned ciphertext) at one worker. Keys from
// GenerateKeys carry cached NTT forms of (A, B): only u is transformed
// forward (3 NTTs per call instead of 5); hand-built keys take the uncached
// batch path. Both paths are bit-identical to the historical per-call
// formulation — same randomness consumption, same exact modular arithmetic.
func (c *Context) Encrypt(r io.Reader, pk *PublicKey, m Poly) (*Ciphertext, error) {
	if len(m) != c.Params.N {
		return nil, errors.New("bgv: plaintext polynomial has wrong degree")
	}
	s := c.enc.Get()
	defer c.enc.Put(s)
	if err := sampleTernaryInto(r, s.u, s.buf, Q); err != nil {
		return nil, err
	}
	if err := sampleTernaryInto(r, s.e1, s.buf, Q); err != nil {
		return nil, err
	}
	if err := sampleTernaryInto(r, s.e2, s.buf, Q); err != nil {
		return nil, err
	}
	t := c.Params.T
	// Both half-products share the encryption randomness u: with the key's
	// evaluation-domain form cached, only u crosses into the evaluation
	// domain, the two products are point-wise, and the pair transforms back
	// in one batch. Exact modular arithmetic keeps the result bit-identical
	// to the sequential per-product formulation.
	var bEval, aEval Poly
	if len(pk.bNTT) == c.Params.N && len(pk.aNTT) == c.Params.N {
		c.ntt.Forward(s.u)
		bEval, aEval = pk.bNTT, pk.aNTT
	} else {
		copy(s.bt, pk.B)
		copy(s.at, pk.A)
		s.batch3[0], s.batch3[1], s.batch3[2] = s.bt, s.at, s.u
		c.ntt.forwardBatch(s.batch3)
		bEval, aEval = s.bt, s.at
	}
	for i := range s.u {
		s.bu[i] = mulMod(bEval[i], s.u[i], Q)
		s.au[i] = mulMod(aEval[i], s.u[i], Q)
	}
	s.batch2[0], s.batch2[1] = s.bu, s.au
	c.ntt.inverseBatch(s.batch2)
	ct := c.newCiphertext()
	for i := range ct.C0 {
		ct.C0[i] = addMod(addMod(s.bu[i], mulMod(s.e1[i], t, Q), Q), m[i], Q)
		ct.C1[i] = addMod(s.au[i], mulMod(s.e2[i], t, Q), Q)
	}
	return ct, nil
}

// EncryptValues encodes and encrypts a value vector in one call.
func (c *Context) EncryptValues(r io.Reader, pk *PublicKey, values []uint64) (*Ciphertext, error) {
	m, err := c.Encode(values)
	if err != nil {
		return nil, err
	}
	return c.Encrypt(r, pk, m)
}

// Decrypt recovers the plaintext coefficient vector.
func (c *Context) Decrypt(sk *SecretKey, ct *Ciphertext) (Plaintext, error) {
	if ct == nil || len(ct.C0) != c.Params.N || len(ct.C1) != c.Params.N {
		return nil, errors.New("bgv: malformed ciphertext")
	}
	phase := c.polyAdd(ct.C0, c.polyMul(ct.C1, sk.S))
	out := make(Plaintext, c.Params.N)
	t := c.Params.T
	half := Q / 2
	for i, v := range phase {
		// Centered lift: values near Q represent small negatives.
		if v > half {
			// (v − Q) mod t, computed without going negative.
			diff := Q - v // |negative value|
			out[i] = (t - diff%t) % t
		} else {
			out[i] = v % t
		}
	}
	return out, nil
}

// Add homomorphically adds (slot-wise): the ⊞ operator. The result is one
// slab (two allocations), like every hot-path ciphertext.
func (c *Context) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	out := c.newCiphertext()
	for i := range out.C0 {
		out.C0[i] = addMod(a.C0[i], b.C0[i], Q)
		out.C1[i] = addMod(a.C1[i], b.C1[i], Q)
	}
	return out, nil
}

// Sub homomorphically subtracts.
func (c *Context) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	out := c.newCiphertext()
	for i := range out.C0 {
		out.C0[i] = subMod(a.C0[i], b.C0[i], Q)
		out.C1[i] = subMod(a.C1[i], b.C1[i], Q)
	}
	return out, nil
}

// AddPlain adds an encoded plaintext to a ciphertext.
func (c *Context) AddPlain(a *Ciphertext, m Poly) (*Ciphertext, error) {
	if a == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	return &Ciphertext{C0: c.polyAdd(a.C0, m), C1: append(Poly(nil), a.C1...)}, nil
}

// MulPlain multiplies a ciphertext by an encoded plaintext polynomial
// (negacyclic convolution in coefficient encoding; scalar for degree-0 m).
func (c *Context) MulPlain(a *Ciphertext, m Poly) (*Ciphertext, error) {
	if a == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	return &Ciphertext{C0: c.polyMul(a.C0, m), C1: c.polyMul(a.C1, m)}, nil
}

// MulScalar multiplies by a public integer scalar.
func (c *Context) MulScalar(a *Ciphertext, k uint64) (*Ciphertext, error) {
	if a == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	kk := k % c.Params.T
	return &Ciphertext{C0: c.polyScale(a.C0, kk), C1: c.polyScale(a.C1, kk)}, nil
}

// Mul multiplies two ciphertexts and relinearizes back to degree 1: the ⊠
// operator. One multiplication level is supported at the default parameters.
//
// The tensor and the relinearization are computed in the evaluation domain:
// the four input polynomials are transformed in one batch, the tensor is
// point-wise, each gadget digit costs one forward transform against the relin
// key's cached NTT forms, and everything is accumulated before two final
// inverse transforms — 13 transforms where the naive version does 36. All
// working polynomials are pooled scratch and the result is a fresh slab, so
// a steady-state Mul performs two heap allocations at one worker. The NTT is
// a linear bijection over exact modular arithmetic, so this is bit-identical
// to the textbook per-product formulation at any worker count.
func (c *Context) Mul(a, b *Ciphertext, rlk *RelinKey) (*Ciphertext, error) {
	if a == nil || b == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	if rlk == nil {
		return nil, errors.New("bgv: relinearization key required")
	}
	if len(rlk.A) != relinDigits || len(rlk.B) != relinDigits {
		return nil, fmt.Errorf("bgv: relin key has %d digits, want %d", len(rlk.A), relinDigits)
	}
	n := c.Params.N
	s := c.mul.Get()
	defer c.mul.Put(s)
	// Tensor: (a0 + a1 s)(b0 + b1 s) = d0 + d1 s + d2 s², point-wise in the
	// evaluation domain.
	copy(s.a0, a.C0)
	copy(s.a1, a.C1)
	copy(s.b0, b.C0)
	copy(s.b1, b.C1)
	s.batch4[0], s.batch4[1], s.batch4[2], s.batch4[3] = s.a0, s.a1, s.b0, s.b1
	c.ntt.forwardBatch(s.batch4)
	for i := 0; i < n; i++ {
		s.d0[i] = mulMod(s.a0[i], s.b0[i], Q)
		s.d1[i] = addMod(mulMod(s.a0[i], s.b1[i], Q), mulMod(s.a1[i], s.b0[i], Q), Q)
		s.d2[i] = mulMod(s.a1[i], s.b1[i], Q)
	}
	// Gadget decomposition needs d2's coefficients, so it alone returns to
	// the coefficient domain here.
	c.ntt.Inverse(s.d2)
	mask := uint64(1<<relinLogBase) - 1
	for i := 0; i < relinDigits; i++ {
		digit := s.dig[i]
		for j := range s.d2 {
			digit[j] = s.d2[j] & mask
			s.d2[j] >>= relinLogBase
		}
	}
	// Each digit contributes digit·B_i to c0 and digit·A_i to c1. With the
	// relin key's NTT forms cached at key generation, a digit costs one
	// forward transform and two point-wise products. The digits are
	// independent — one pool task each above one worker, a plain loop (no
	// closure, no allocation) at one — and the contributions are added in
	// digit order either way (addition mod Q is associative and commutative,
	// so the order is immaterial to the value; fixing it keeps the loop
	// obviously deterministic and the result bit-identical at any worker
	// count).
	cached := len(rlk.bNTT) == relinDigits && len(rlk.aNTT) == relinDigits &&
		len(rlk.bNTT[0]) == n
	if parallel.Workers(0) == 1 {
		for i := 0; i < relinDigits; i++ {
			if err := c.mulDigit(s, rlk, i, cached); err != nil {
				return nil, err
			}
		}
	} else {
		err := parallel.ForEach(nil, relinDigits, 0, func(i int) error {
			return c.mulDigit(s, rlk, i, cached)
		})
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < relinDigits; i++ {
		p0, p1 := s.p0[i], s.p1[i]
		for j := 0; j < n; j++ {
			s.d0[j] = addMod(s.d0[j], p0[j], Q)
			s.d1[j] = addMod(s.d1[j], p1[j], Q)
		}
	}
	s.batch4[0], s.batch4[1] = s.d0, s.d1
	c.ntt.inverseBatch(s.batch4[:2])
	ct := c.newCiphertext()
	copy(ct.C0, s.d0)
	copy(ct.C1, s.d1)
	return ct, nil
}

// mulDigit computes one gadget digit's relinearization products into the
// scratch slots s.p0[i] and s.p1[i]: digit·B_i and digit·A_i in the
// evaluation domain. Digits touch disjoint scratch slots, so mulDigit calls
// for distinct i may run concurrently. When the relin key carries no cached
// NTT forms the digit transforms its own copies (allocating — only hand-built
// keys take that path).
func (c *Context) mulDigit(s *mulScratch, rlk *RelinKey, i int, cached bool) error {
	n := c.Params.N
	dp := s.dig[i]
	c.ntt.Forward(dp)
	bi, ai := Poly(nil), Poly(nil)
	if cached {
		bi, ai = rlk.bNTT[i], rlk.aNTT[i]
	} else {
		bi = append(Poly(nil), rlk.B[i]...)
		ai = append(Poly(nil), rlk.A[i]...)
		c.ntt.Forward(bi)
		c.ntt.Forward(ai)
	}
	p0, p1 := s.p0[i], s.p1[i]
	for j := 0; j < n; j++ {
		p0[j] = mulMod(dp[j], bi[j], Q)
		p1[j] = mulMod(dp[j], ai[j], Q)
	}
	return nil
}

// minParallelSum is the ciphertext count below which Sum stays sequential.
const minParallelSum = 32

// sumRange folds addition sequentially over a non-empty slice, accumulating
// into a single pair of buffers instead of allocating a fresh ciphertext per
// Add — the values are identical to the Add-based fold (same addMod in the
// same order), but the aggregator's inner loop stops churning the allocator.
func (c *Context) sumRange(cts []*Ciphertext) (*Ciphertext, error) {
	if cts[0] == nil {
		return nil, errors.New("bgv: nil ciphertext")
	}
	if len(cts) == 1 {
		return cts[0], nil
	}
	acc := c.newCiphertext()
	copy(acc.C0, cts[0].C0)
	copy(acc.C1, cts[0].C1)
	for _, ct := range cts[1:] {
		if ct == nil {
			return nil, errors.New("bgv: nil ciphertext")
		}
		c0, c1 := ct.C0, ct.C1
		for i := range acc.C0 {
			acc.C0[i] = addMod(acc.C0[i], c0[i], Q)
			acc.C1[i] = addMod(acc.C1[i], c1[i], Q)
		}
	}
	return acc, nil
}

// Sum folds Add over ciphertexts (the aggregator's AHE/FHE sum loop). Large
// sums fold in parallel chunks whose partials are combined in index order;
// coefficient-wise addition mod Q is associative and commutative, so the
// result is bit-identical to the sequential fold at any worker count.
func (c *Context) Sum(cts []*Ciphertext) (*Ciphertext, error) {
	if len(cts) == 0 {
		return nil, errors.New("bgv: empty sum")
	}
	w := parallel.Workers(0)
	if w > 1 && len(cts) >= minParallelSum {
		chunk := (len(cts) + w - 1) / w
		nChunks := (len(cts) + chunk - 1) / chunk
		partials, err := parallel.Map(nil, nChunks, w, func(ci int) (*Ciphertext, error) {
			lo := ci * chunk
			hi := lo + chunk
			if hi > len(cts) {
				hi = len(cts)
			}
			return c.sumRange(cts[lo:hi])
		})
		if err != nil {
			return nil, err
		}
		return c.sumRange(partials)
	}
	return c.sumRange(cts)
}
