package bgv

// Benchmarks for the batched-NTT hot paths. Run with -cpu to compare the
// sequential fallback against the worker pool:
//
//	go test ./internal/bgv -bench 'NTTBatch|Mul|Sum' -cpu 1,4
//
// At -cpu 1 the pool takes its sequential fast path (the pre-parallel
// baseline).
//
// All randomness comes from internal/benchrand so every run measures the
// same keys and ciphertexts (the randsource invariant for bench files).

import (
	"fmt"
	"sync"
	"testing"

	"arboretum/internal/benchrand"
)

var benchParams = Params{N: 1 << 12, T: 65537}

func benchContext(b *testing.B) *Context {
	b.Helper()
	ctx, err := NewContext(benchParams)
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}

// BenchmarkNTTForward times a single forward transform of one degree-4096
// polynomial — the core single-core kernel every higher-level operation is
// built from.
func BenchmarkNTTForward(b *testing.B) {
	ctx := benchContext(b)
	p, err := ctx.sampleUniform(benchrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ntt.Forward(p)
	}
}

// BenchmarkNTTInverse times a single inverse transform of one degree-4096
// polynomial.
func BenchmarkNTTInverse(b *testing.B) {
	ctx := benchContext(b)
	p, err := ctx.sampleUniform(benchrand.New(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ntt.Inverse(p)
	}
}

// BenchmarkNTTBatch transforms a batch of 64 degree-4096 polynomials — the
// shape of a committee decrypting a slice of the aggregate.
func BenchmarkNTTBatch(b *testing.B) {
	ctx := benchContext(b)
	rng := benchrand.New(3)
	polys := make([]Poly, 64)
	for i := range polys {
		p, err := ctx.sampleUniform(rng)
		if err != nil {
			b.Fatal(err)
		}
		polys[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.ntt.forwardBatch(polys)
		ctx.ntt.inverseBatch(polys)
	}
}

// BenchmarkMulLarge times one degree-4096 ciphertext multiplication with
// relinearization (the FHE compute vignette's dominant operation).
func BenchmarkMulLarge(b *testing.B) {
	ctx := benchContext(b)
	rng := benchrand.New(4)
	kp, err := ctx.GenerateKeys(rng)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]uint64, 32)
	for i := range vals {
		vals[i] = uint64(i + 1)
	}
	ct1, err := ctx.EncryptValues(rng, kp.PK, vals)
	if err != nil {
		b.Fatal(err)
	}
	ct2, err := ctx.EncryptValues(rng, kp.PK, []uint64{3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Mul(ct1, ct2, kp.RLK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSum folds 256 ciphertexts — the aggregator's FHE sum loop.
func BenchmarkSum(b *testing.B) {
	ctx := benchContext(b)
	rng := benchrand.New(5)
	kp, err := ctx.GenerateKeys(rng)
	if err != nil {
		b.Fatal(err)
	}
	cts := make([]*Ciphertext, 256)
	for i := range cts {
		ct, err := ctx.EncryptValues(rng, kp.PK, []uint64{uint64(i % 5)})
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Sum(cts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncryptLarge times one degree-4096 encryption (three batched
// forward + two batched inverse transforms).
func BenchmarkEncryptLarge(b *testing.B) {
	ctx := benchContext(b)
	rng := benchrand.New(6)
	kp, err := ctx.GenerateKeys(rng)
	if err != nil {
		b.Fatal(err)
	}
	m, err := ctx.Encode([]uint64{1, 2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Encrypt(rng, kp.PK, m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- RNS ring benchmarks ---
//
// Each RNS benchmark runs under a /ring=<degree>x<primes> sub-name;
// scripts/bench.sh parses the tag into a "ring" field in BENCH_kernels.json,
// so the tracked rows distinguish the test ring from the paper's deployment
// ring (2^15, 135-bit composite modulus). The paper-scale rows are the
// point: Table 1's FHE column is measured on this machine, not extrapolated
// from a reduced ring.

var benchRNSRings = []RNSParams{TestRNSParams, PaperRNSParams}

func ringTag(p RNSParams) string {
	return fmt.Sprintf("ring=%dx%d", p.N, len(p.Qi))
}

type rnsBenchState struct {
	ctx  *RNSContext
	keys *RNSKeyPair
	a, b *RNSCiphertext
	m    Poly
}

var (
	rnsBenchMu    sync.Mutex
	rnsBenchCache = map[int]*rnsBenchState{}
)

// benchRNSState builds (once per ring) the context, keys, and two
// ciphertexts every RNS benchmark reuses — paper-scale key generation is
// ~10^2 ms, far too slow to repeat per benchmark.
func benchRNSState(b *testing.B, p RNSParams) *rnsBenchState {
	b.Helper()
	rnsBenchMu.Lock()
	defer rnsBenchMu.Unlock()
	if s, ok := rnsBenchCache[p.N]; ok {
		return s
	}
	ctx, err := NewRNSContext(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := benchrand.New(uint64(p.N))
	keys, err := ctx.GenerateKeys(rng)
	if err != nil {
		b.Fatal(err)
	}
	m, err := ctx.Encode([]uint64{1, 2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	ctA, err := ctx.Encrypt(rng, keys.PK, m)
	if err != nil {
		b.Fatal(err)
	}
	ctB, err := ctx.Encrypt(rng, keys.PK, m)
	if err != nil {
		b.Fatal(err)
	}
	s := &rnsBenchState{ctx: ctx, keys: keys, a: ctA, b: ctB, m: m}
	rnsBenchCache[p.N] = s
	return s
}

// BenchmarkRNSEncrypt times one RNS encryption per ring.
func BenchmarkRNSEncrypt(b *testing.B) {
	for _, p := range benchRNSRings {
		b.Run(ringTag(p), func(b *testing.B) {
			s := benchRNSState(b, p)
			rng := benchrand.New(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ctx.Encrypt(rng, s.keys.PK, s.m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRNSMul times one ciphertext multiplication with relinearization
// per ring — at the paper ring, the number behind the cost model's HEMulCt.
func BenchmarkRNSMul(b *testing.B) {
	for _, p := range benchRNSRings {
		b.Run(ringTag(p), func(b *testing.B) {
			s := benchRNSState(b, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ctx.Mul(s.a, s.b, s.keys.RLK); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRNSAdd times one homomorphic addition per ring.
func BenchmarkRNSAdd(b *testing.B) {
	for _, p := range benchRNSRings {
		b.Run(ringTag(p), func(b *testing.B) {
			s := benchRNSState(b, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ctx.Add(s.a, s.b); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRNSSum folds 64 ciphertexts per ring — the aggregator's loop.
func BenchmarkRNSSum(b *testing.B) {
	for _, p := range benchRNSRings {
		b.Run(ringTag(p), func(b *testing.B) {
			s := benchRNSState(b, p)
			cts := make([]*RNSCiphertext, 64)
			for i := range cts {
				cts[i] = s.a
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ctx.Sum(cts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
