package bgv

import (
	"encoding/binary"
	"errors"
)

// Wire format for ciphertexts: a 4-byte coefficient count followed by the
// two polynomials' little-endian 8-byte coefficients. Device uploads and
// committee hand-offs use this.

// MarshalBinary serializes the ciphertext.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	if ct == nil || len(ct.C0) == 0 || len(ct.C0) != len(ct.C1) {
		return nil, errors.New("bgv: malformed ciphertext")
	}
	n := len(ct.C0)
	out := make([]byte, 4+16*n)
	binary.LittleEndian.PutUint32(out[:4], uint32(n))
	off := 4
	for _, c := range ct.C0 {
		binary.LittleEndian.PutUint64(out[off:], c)
		off += 8
	}
	for _, c := range ct.C1 {
		binary.LittleEndian.PutUint64(out[off:], c)
		off += 8
	}
	return out, nil
}

// UnmarshalBinary deserializes a ciphertext and validates its coefficients.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return errors.New("bgv: truncated ciphertext")
	}
	n := int(binary.LittleEndian.Uint32(data[:4]))
	if n < 16 || n > 1<<17 || n&(n-1) != 0 {
		return errors.New("bgv: implausible ring degree")
	}
	if len(data) != 4+16*n {
		return errors.New("bgv: ciphertext length mismatch")
	}
	c0 := make(Poly, n)
	c1 := make(Poly, n)
	off := 4
	for i := 0; i < n; i++ {
		v := binary.LittleEndian.Uint64(data[off:])
		if v >= Q {
			return errors.New("bgv: coefficient out of range")
		}
		c0[i] = v
		off += 8
	}
	for i := 0; i < n; i++ {
		v := binary.LittleEndian.Uint64(data[off:])
		if v >= Q {
			return errors.New("bgv: coefficient out of range")
		}
		c1[i] = v
		off += 8
	}
	ct.C0, ct.C1 = c0, c1
	return nil
}
