package bgv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format for RNS ciphertexts: a header naming the ring — 4-byte degree,
// 4-byte prime count, then the primes themselves, little-endian 8 bytes each
// — followed by C0's L rows and C1's L rows of 8-byte coefficients. Embedding
// the primes makes the blob self-describing (a gateway can reject a
// ciphertext from the wrong ring before touching its payload) and gives the
// format a unique encoding: every accepted byte string re-marshals to itself.

// rnsWireHeader is the fixed prefix length before the prime list.
const rnsWireHeader = 8

// MarshalCiphertext serializes ct under this context's parameters.
func (c *RNSContext) MarshalCiphertext(ct *RNSCiphertext) ([]byte, error) {
	ln := c.l * c.n
	if ct == nil || len(ct.C0) != ln || len(ct.C1) != ln {
		return nil, errors.New("bgv: malformed RNS ciphertext")
	}
	out := make([]byte, rnsWireHeader+8*c.l+16*ln)
	binary.LittleEndian.PutUint32(out[:4], uint32(c.n))
	binary.LittleEndian.PutUint32(out[4:8], uint32(c.l))
	off := rnsWireHeader
	for _, q := range c.Params.Qi {
		binary.LittleEndian.PutUint64(out[off:], q)
		off += 8
	}
	for _, v := range ct.C0 {
		binary.LittleEndian.PutUint64(out[off:], v)
		off += 8
	}
	for _, v := range ct.C1 {
		binary.LittleEndian.PutUint64(out[off:], v)
		off += 8
	}
	return out, nil
}

// UnmarshalCiphertext deserializes and validates a ciphertext for this
// context: the header must name exactly this ring (degree, prime count, and
// primes in order) and every coefficient must be reduced below its row's
// prime. The result is a fresh slab; it never aliases data.
func (c *RNSContext) UnmarshalCiphertext(data []byte) (*RNSCiphertext, error) {
	if len(data) < rnsWireHeader {
		return nil, errors.New("bgv: truncated RNS ciphertext")
	}
	n := int(binary.LittleEndian.Uint32(data[:4]))
	l := int(binary.LittleEndian.Uint32(data[4:8]))
	if n != c.n || l != c.l {
		return nil, fmt.Errorf("bgv: ciphertext ring %d×%d does not match context %d×%d", n, l, c.n, c.l)
	}
	if len(data) != rnsWireHeader+8*l+16*l*n {
		return nil, errors.New("bgv: RNS ciphertext length mismatch")
	}
	off := rnsWireHeader
	for _, q := range c.Params.Qi {
		if got := binary.LittleEndian.Uint64(data[off:]); got != q {
			return nil, fmt.Errorf("bgv: ciphertext prime %d does not match context prime %d", got, q)
		}
		off += 8
	}
	ct := c.newCiphertext()
	for _, rowDst := range [][]uint64{ct.C0, ct.C1} {
		for li := 0; li < l; li++ {
			q := c.Params.Qi[li]
			row := c.row(rowDst, li)
			for i := range row {
				v := binary.LittleEndian.Uint64(data[off:])
				if v >= q {
					return nil, errors.New("bgv: RNS coefficient out of range")
				}
				row[i] = v
				off += 8
			}
		}
	}
	return ct, nil
}
