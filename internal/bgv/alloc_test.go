//go:build !race

package bgv

// Allocation-regression gates for the hot paths (docs/KERNELS.md): the
// zero-alloc discipline — pooled scratch, slab results, cached key NTT forms
// — is pinned with testing.AllocsPerRun so a regression fails `go test`, not
// just a benchmark eyeball. Each ceiling is the measured steady-state count
// (a result ciphertext is one slab plus one struct = 2) with no slack: any
// new allocation on these paths is a deliberate decision that must edit this
// file. Excluded under -race (like the ingest memory smoke): the race
// runtime adds its own shadow allocations, so the counts are meaningless
// there — scripts/check.sh runs the gates in the plain pass.
//
// The gates force one worker (AllocsPerRun pins GOMAXPROCS; the env pin
// covers the ARBORETUM_WORKERS override) because the parallel paths allocate
// closures per call by design — the discipline is about the per-op steady
// state, which at scale is dominated by the sequential inner loops.

import (
	"testing"

	"arboretum/internal/benchrand"
)

// allocCeiling runs f to steady state and fails if its allocation count
// exceeds max.
func allocCeiling(t *testing.T, name string, max float64, f func()) {
	t.Helper()
	for i := 0; i < 3; i++ {
		f() // warm the scratch pools
	}
	if got := testing.AllocsPerRun(10, f); got > max {
		t.Errorf("%s: %.1f allocs/op, ceiling %.0f", name, got, max)
	}
}

func TestAllocGateSinglePrime(t *testing.T) {
	t.Setenv("ARBORETUM_WORKERS", "1")
	ctx, err := NewContext(TestParams)
	if err != nil {
		t.Fatal(err)
	}
	rng := benchrand.New(0xA110C)
	kp, err := ctx.GenerateKeys(rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ctx.Encode([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ct1, err := ctx.Encrypt(rng, kp.PK, m)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := ctx.Encrypt(rng, kp.PK, m)
	if err != nil {
		t.Fatal(err)
	}
	cts := make([]*Ciphertext, 48)
	for i := range cts {
		cts[i] = ct1
	}
	allocCeiling(t, "bgv.Encrypt", 2, func() {
		if _, err := ctx.Encrypt(rng, kp.PK, m); err != nil {
			t.Fatal(err)
		}
	})
	allocCeiling(t, "bgv.Mul", 2, func() {
		if _, err := ctx.Mul(ct1, ct2, kp.RLK); err != nil {
			t.Fatal(err)
		}
	})
	allocCeiling(t, "bgv.Sum", 2, func() {
		if _, err := ctx.Sum(cts); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocGateRNS(t *testing.T) {
	t.Setenv("ARBORETUM_WORKERS", "1")
	ctx, err := NewRNSContext(TestRNSParams)
	if err != nil {
		t.Fatal(err)
	}
	rng := benchrand.New(0xA110D)
	kp, err := ctx.GenerateKeys(rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ctx.Encode([]uint64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	ct1, err := ctx.Encrypt(rng, kp.PK, m)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := ctx.Encrypt(rng, kp.PK, m)
	if err != nil {
		t.Fatal(err)
	}
	cts := make([]*RNSCiphertext, 48)
	for i := range cts {
		cts[i] = ct1
	}
	allocCeiling(t, "bgv.RNS.Encrypt", 2, func() {
		if _, err := ctx.Encrypt(rng, kp.PK, m); err != nil {
			t.Fatal(err)
		}
	})
	allocCeiling(t, "bgv.RNS.Mul", 2, func() {
		if _, err := ctx.Mul(ct1, ct2, kp.RLK); err != nil {
			t.Fatal(err)
		}
	})
	allocCeiling(t, "bgv.RNS.Sum", 2, func() {
		if _, err := ctx.Sum(cts); err != nil {
			t.Fatal(err)
		}
	})
}
