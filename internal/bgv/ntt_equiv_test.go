package bgv

// Equivalence properties for the division-free kernels: the optimized
// Forward/Inverse pair must match the retained textbook transforms bit for
// bit on random polynomials across every supported ring degree. Forward's
// output is the reference output in bit-reversed order (the documented
// convention change); Inverse composed with Forward is the identity, exactly.

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// equivDegrees spans the supported range: the minimum ring degree, the test
// and bench degrees, and odd-sized stage counts in between.
var equivDegrees = []int{16, 32, 64, 256, 1024, 4096}

func randomPoly(t *testing.T, n int) Poly {
	t.Helper()
	p := make(Poly, n)
	s := uint64(0x9e3779b97f4a7c15)
	buf := make([]byte, 8)
	if _, err := rand.Read(buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		s = s*131 + uint64(b)
	}
	for i := range p {
		s = s*6364136223846793005 + 1442695040888963407
		p[i] = s % Q
	}
	return p
}

func TestForwardMatchesReference(t *testing.T) {
	for _, n := range equivDegrees {
		tables, err := newNTTTables(n, Q)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for trial := 0; trial < 4; trial++ {
			p := randomPoly(t, n)
			opt := append(Poly(nil), p...)
			ref := append(Poly(nil), p...)
			tables.Forward(opt)
			tables.referenceForward(ref)
			for i := 0; i < n; i++ {
				if opt[i] != ref[tables.bitRevs[i]] {
					t.Fatalf("n=%d: Forward[%d] = %d, reference[brv] = %d",
						n, i, opt[i], ref[tables.bitRevs[i]])
				}
			}
			// Inverse must undo Forward exactly, and match the reference
			// inverse applied to the reference evaluation domain.
			tables.Inverse(opt)
			tables.referenceInverse(ref)
			for i := 0; i < n; i++ {
				if opt[i] != p[i] {
					t.Fatalf("n=%d: Inverse∘Forward differs at %d: %d != %d", n, i, opt[i], p[i])
				}
				if ref[i] != p[i] {
					t.Fatalf("n=%d: reference round trip differs at %d", n, i)
				}
			}
		}
	}
}

// TestForwardOutputReduced checks the final sweep's invariant: every output
// coefficient is fully reduced to [0, q), which downstream point-wise
// multiplications rely on.
func TestForwardOutputReduced(t *testing.T) {
	for _, n := range []int{16, 1024} {
		tables, err := newNTTTables(n, Q)
		if err != nil {
			t.Fatal(err)
		}
		p := make(Poly, n)
		for i := range p {
			p[i] = Q - 1 // worst case input
		}
		tables.Forward(p)
		for i, v := range p {
			if v >= Q {
				t.Fatalf("n=%d: Forward output %d at %d not reduced", n, v, i)
			}
		}
		tables.Inverse(p)
		for i, v := range p {
			if v >= Q {
				t.Fatalf("n=%d: Inverse output %d at %d not reduced", n, v, i)
			}
		}
	}
}

// TestPolyMulMatchesReferenceTransforms multiplies random polynomials with
// the production polyMul (optimized transforms) and with the reference
// transforms and asserts identical coefficients — the end-to-end consequence
// of transform equivalence that the ciphertext paths depend on.
func TestPolyMulMatchesReferenceTransforms(t *testing.T) {
	c, _ := testCtx(t)
	n := c.Params.N
	for trial := 0; trial < 4; trial++ {
		a := randomPoly(t, n)
		b := randomPoly(t, n)
		got := c.polyMul(a, b)
		ae := append(Poly(nil), a...)
		be := append(Poly(nil), b...)
		c.ntt.referenceForward(ae)
		c.ntt.referenceForward(be)
		for i := range ae {
			ae[i] = mulMod(ae[i], be[i], Q)
		}
		c.ntt.referenceInverse(ae)
		if !polyEq(got, ae) {
			t.Fatal("polyMul differs from reference-transform product")
		}
	}
}

// TestNTTTablesDeterministic asserts table generation is a pure function of
// the candidate byte stream: the same reader bytes produce the same ψ and
// therefore identical tables.
func TestNTTTablesDeterministic(t *testing.T) {
	seed := make([]byte, 64*1024)
	if _, err := rand.Read(seed); err != nil {
		t.Fatal(err)
	}
	t1, err := newNTTTablesFrom(bytes.NewReader(seed), 64, Q)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := newNTTTablesFrom(bytes.NewReader(seed), 64, Q)
	if err != nil {
		t.Fatal(err)
	}
	if t1.psi[1] != t2.psi[1] {
		t.Fatalf("same reader produced different ψ: %d vs %d", t1.psi[1], t2.psi[1])
	}
	for i := range t1.psiRev {
		if t1.psiRev[i] != t2.psiRev[i] || t1.psiRevShoup[i] != t2.psiRevShoup[i] ||
			t1.psiInvRev[i] != t2.psiInvRev[i] || t1.psiInvRevShoup[i] != t2.psiInvRevShoup[i] {
			t.Fatalf("tables differ at %d", i)
		}
	}
}

// TestFindPsiRejectionSampling checks ψ candidates are drawn unbiased: a
// reader that first emits a draw above the rejection bound must have that
// draw skipped, yielding the same ψ as a stream without it.
func TestFindPsiRejectionSampling(t *testing.T) {
	// bound is the largest multiple of Q that fits in 64 bits; bytes encoding
	// a value ≥ bound must be rejected outright rather than reduced mod Q.
	bound := (^uint64(0) / Q) * Q
	high := make([]byte, 8)
	for i := range high {
		high[i] = 0xff // 2^64−1 ≥ bound
	}
	tail := make([]byte, 32*1024)
	if _, err := rand.Read(tail); err != nil {
		t.Fatal(err)
	}
	psiClean, err := findPsi(bytes.NewReader(tail), 64, Q)
	if err != nil {
		t.Fatal(err)
	}
	psiSkipped, err := findPsi(bytes.NewReader(append(append([]byte(nil), high...), tail...)), 64, Q)
	if err != nil {
		t.Fatal(err)
	}
	if psiClean != psiSkipped {
		t.Fatalf("rejected draw changed the result: %d vs %d", psiClean, psiSkipped)
	}
	if bound == 0 {
		t.Fatal("rejection bound must be positive")
	}
}
