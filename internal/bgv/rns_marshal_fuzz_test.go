package bgv

// Fuzz and hardening tests for the RNS ciphertext wire format, mirroring
// marshal_fuzz_test.go: arbitrary input must error, never panic or yield an
// out-of-range residue; accepted input has a unique encoding; and the
// pooled-scratch encryption and multiplication paths must never leak a
// buffer that a later call mutates.

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"testing"
)

func fuzzSeedRNSCiphertext(tb testing.TB) []byte {
	tb.Helper()
	ctx, keys := testRNSCtx(tb)
	ct, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{1, 2, 3})
	if err != nil {
		tb.Fatal(err)
	}
	data, err := ctx.MarshalCiphertext(ct)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func FuzzRNSCiphertextUnmarshal(f *testing.F) {
	ctx, _ := func() (*RNSContext, *RNSKeyPair) {
		c, err := NewRNSContext(TestRNSParams)
		if err != nil {
			f.Fatal(err)
		}
		return c, nil
	}()
	ct := ctx.newCiphertext() // all-zero ciphertext is valid wire material
	valid, err := ctx.MarshalCiphertext(ct)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add(valid[:rnsWireHeader])
	f.Add(append(append([]byte(nil), valid...), 1))
	// Plausible header, out-of-range residue in the first lane.
	bad := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(bad[rnsWireHeader+8*len(ctx.Params.Qi):], ^uint64(0))
	f.Add(bad)
	// Wrong prime in the header.
	wrongPrime := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(wrongPrime[rnsWireHeader:], Q)
	f.Add(wrongPrime)
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := ctx.UnmarshalCiphertext(data)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		ln := ctx.l * ctx.n
		if len(ct.C0) != ln || len(ct.C1) != ln {
			t.Fatal("accepted ciphertext with wrong row layout")
		}
		for _, half := range [][]uint64{ct.C0, ct.C1} {
			for li := 0; li < ctx.l; li++ {
				q := ctx.Params.Qi[li]
				for _, v := range ctx.row(half, li) {
					if v >= q {
						t.Fatalf("accepted residue %d ≥ prime %d", v, q)
					}
				}
			}
		}
		out, err := ctx.MarshalCiphertext(ct)
		if err != nil {
			t.Fatalf("re-marshal of accepted ciphertext failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("re-marshal differs from accepted input")
		}
	})
}

func TestRNSUnmarshalRejectsCorruption(t *testing.T) {
	ctx, _ := testRNSCtx(t)
	data := fuzzSeedRNSCiphertext(t)
	cases := map[string][]byte{
		"empty":        {},
		"short header": data[:7],
		"truncated":    data[:len(data)-1],
		"trailing":     append(append([]byte(nil), data...), 0),
		"header only":  data[:rnsWireHeader],
	}
	wrongN := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(wrongN[:4], uint32(ctx.n*2))
	cases["wrong degree"] = wrongN
	wrongL := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(wrongL[4:8], uint32(ctx.l+1))
	cases["wrong prime count"] = wrongL
	wrongQ := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(wrongQ[rnsWireHeader:], Q)
	cases["wrong prime"] = wrongQ
	outOfRange := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(outOfRange[rnsWireHeader+8*ctx.l:], ctx.Params.Qi[0])
	cases["residue = prime"] = outOfRange
	for name, in := range cases {
		if _, err := ctx.UnmarshalCiphertext(in); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRNSMarshalRoundTrip(t *testing.T) {
	ctx, keys := testRNSCtx(t)
	ct, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{9, 8, 7, 65535})
	if err != nil {
		t.Fatal(err)
	}
	data, err := ctx.MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ctx.UnmarshalCiphertext(data)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ctx.Decrypt(keys.SK, back)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != 9 || pt[1] != 8 || pt[2] != 7 || pt[3] != 65535 {
		t.Fatalf("round trip decrypted to %v", pt[:4])
	}
}

func TestRNSUnmarshalDoesNotAliasInput(t *testing.T) {
	ctx, _ := testRNSCtx(t)
	data := fuzzSeedRNSCiphertext(t)
	ct, err := ctx.UnmarshalCiphertext(data)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]uint64(nil), ct.C0...)
	for i := range data {
		data[i] = 0
	}
	for i := range before {
		if ct.C0[i] != before[i] {
			t.Fatal("ciphertext aliases the unmarshal input buffer")
		}
	}
}

// TestRNSPooledBuffersDoNotEscape pins the pooling discipline: results come
// from fresh slabs, so a ciphertext returned by Encrypt, Mul, or Sum must be
// unaffected by any later call that reuses the pooled scratch.
func TestRNSPooledBuffersDoNotEscape(t *testing.T) {
	ctx, keys := testRNSCtx(t)
	first, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{111})
	if err != nil {
		t.Fatal(err)
	}
	c0 := append([]uint64(nil), first.C0...)
	c1 := append([]uint64(nil), first.C1...)
	// Churn every pooled path: encryption, multiplication, summation.
	second, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{222})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Mul(first, second, keys.RLK); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Sum([]*RNSCiphertext{first, second}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{333}); err != nil {
		t.Fatal(err)
	}
	for i := range c0 {
		if first.C0[i] != c0[i] || first.C1[i] != c1[i] {
			t.Fatalf("word %d of an issued ciphertext changed under pool reuse", i)
		}
	}
	pt, err := ctx.Decrypt(keys.SK, first)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != 111 {
		t.Fatalf("issued ciphertext decrypts to %d after pool churn, want 111", pt[0])
	}
}
