package bgv

import "math/bits"

// Modular arithmetic over the fixed 60-bit NTT-friendly ciphertext modulus.
// All values are kept reduced in [0, q).

func addMod(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

func subMod(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + q - b
}

// mulMod returns a·b mod q using a 128-bit intermediate product. Both inputs
// must be < q < 2^60, so the high word of the product is < q and
// bits.Div64's precondition holds.
func mulMod(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, q)
	return rem
}

// shoupPrecomp returns ⌊w·2^64/q⌋, the Shoup companion word for the constant
// w < q. Precomputing it once per twiddle factor lets every butterfly
// multiply run division-free: see mulModShoup.
func shoupPrecomp(w, q uint64) uint64 {
	quo, _ := bits.Div64(w, 0, q) // w·2^64 / q; w < q keeps Div64 in range
	return quo
}

// mulModShoupLazy returns a·w mod q lazily reduced to [0, 2q), using one
// high-word multiply, one low multiply, and no division. w must be < q with
// wShoup = shoupPrecomp(w, q); a may be any 64-bit value (in particular a
// lazily-reduced butterfly value), because the quotient estimate
// q̂ = ⌊a·wShoup/2^64⌋ satisfies ⌊a·w/q⌋ − 1 ≤ q̂ ≤ ⌊a·w/q⌋, so the
// remainder a·w − q̂·q lies in [0, 2q) and is exact in the wrapping low word.
func mulModShoupLazy(a, w, wShoup, q uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	return a*w - hi*q
}

// mulModShoup returns a·w mod q fully reduced, division-free, for a
// precomputed constant w (one conditional subtract on top of the lazy form).
func mulModShoup(a, w, wShoup, q uint64) uint64 {
	r := mulModShoupLazy(a, w, wShoup, q)
	if r >= q {
		r -= q
	}
	return r
}

// powMod returns a^e mod q by square-and-multiply.
func powMod(a, e, q uint64) uint64 {
	result := uint64(1 % q)
	base := a % q
	for e > 0 {
		if e&1 == 1 {
			result = mulMod(result, base, q)
		}
		base = mulMod(base, base, q)
		e >>= 1
	}
	return result
}

// invMod returns a^-1 mod q for prime q (Fermat).
func invMod(a, q uint64) uint64 {
	return powMod(a, q-2, q)
}

// negMod returns -a mod q.
func negMod(a, q uint64) uint64 {
	if a == 0 {
		return 0
	}
	return q - a
}
