package bgv

import "math/bits"

// Modular arithmetic over the fixed 60-bit NTT-friendly ciphertext modulus.
// All values are kept reduced in [0, q).

func addMod(a, b, q uint64) uint64 {
	s := a + b
	if s >= q {
		s -= q
	}
	return s
}

func subMod(a, b, q uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + q - b
}

// mulMod returns a·b mod q using a 128-bit intermediate product. Both inputs
// must be < q < 2^60, so the high word of the product is < q and
// bits.Div64's precondition holds.
func mulMod(a, b, q uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, q)
	return rem
}

// powMod returns a^e mod q by square-and-multiply.
func powMod(a, e, q uint64) uint64 {
	result := uint64(1 % q)
	base := a % q
	for e > 0 {
		if e&1 == 1 {
			result = mulMod(result, base, q)
		}
		base = mulMod(base, base, q)
		e >>= 1
	}
	return result
}

// invMod returns a^-1 mod q for prime q (Fermat).
func invMod(a, q uint64) uint64 {
	return powMod(a, q-2, q)
}

// negMod returns -a mod q.
func negMod(a, q uint64) uint64 {
	if a == 0 {
		return 0
	}
	return q - a
}
