package bgv

import (
	"crypto/rand"
	"sync"
	"testing"
	"testing/quick"
)

var (
	ctxOnce sync.Once
	ctx     *Context
	keys    *KeyPair
)

func testCtx(t testing.TB) (*Context, *KeyPair) {
	ctxOnce.Do(func() {
		var err error
		ctx, err = NewContext(TestParams)
		if err != nil {
			panic(err)
		}
		keys, err = ctx.GenerateKeys(rand.Reader)
		if err != nil {
			panic(err)
		}
	})
	return ctx, keys
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{N: 10, T: 17},           // not a power of two
		{N: 8, T: 17},            // too small
		{N: 1 << 18, T: 17},      // exceeds Q's 2-adicity
		{N: 1 << 10, T: 1},       // t too small
		{N: 1 << 10, T: 1 << 21}, // t too large
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid params", p)
		}
	}
	if err := TestParams.Validate(); err != nil {
		t.Errorf("TestParams rejected: %v", err)
	}
}

func TestNTTRoundTrip(t *testing.T) {
	c, _ := testCtx(t)
	p, err := c.sampleUniform(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	orig := append(Poly(nil), p...)
	c.ntt.Forward(p)
	c.ntt.Inverse(p)
	for i := range p {
		if p[i] != orig[i] {
			t.Fatalf("NTT round trip differs at %d: %d != %d", i, p[i], orig[i])
		}
	}
}

// Property: NTT∘INTT = id on random polynomials.
func TestQuickNTTRoundTrip(t *testing.T) {
	c, _ := testCtx(t)
	f := func(seed uint64) bool {
		p := c.newPoly()
		s := seed
		for i := range p {
			s = s*6364136223846793005 + 1442695040888963407
			p[i] = s % Q
		}
		orig := append(Poly(nil), p...)
		c.ntt.Forward(p)
		c.ntt.Inverse(p)
		for i := range p {
			if p[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// polyMul must agree with schoolbook negacyclic convolution.
func TestPolyMulMatchesSchoolbook(t *testing.T) {
	c, _ := testCtx(t)
	n := c.Params.N
	a := c.newPoly()
	b := c.newPoly()
	// Sparse polynomials keep the schoolbook check fast.
	a[0], a[1], a[n-1] = 3, 5, 7
	b[0], b[2], b[n-1] = 11, 13, 17
	got := c.polyMul(a, b)
	want := c.newPoly()
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if b[j] == 0 {
				continue
			}
			prod := mulMod(a[i], b[j], Q)
			k := i + j
			if k < n {
				want[k] = addMod(want[k], prod, Q)
			} else {
				want[k-n] = subMod(want[k-n], prod, Q) // x^n = −1
			}
		}
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("polyMul differs at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestEncryptDecrypt(t *testing.T) {
	c, kp := testCtx(t)
	values := []uint64{0, 1, 42, 65536, 12345}
	ct, err := c.EncryptValues(rand.Reader, kp.PK, values)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.Decrypt(kp.SK, ct)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if pt[i] != v%c.Params.T {
			t.Errorf("slot %d = %d, want %d", i, pt[i], v%c.Params.T)
		}
	}
	for i := len(values); i < c.Params.N; i++ {
		if pt[i] != 0 {
			t.Errorf("slot %d = %d, want 0", i, pt[i])
		}
	}
}

func TestHomomorphicAdd(t *testing.T) {
	c, kp := testCtx(t)
	a, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{100, 200, 300})
	b, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{1, 2, 3})
	sum, err := c.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := c.Decrypt(kp.SK, sum)
	for i, want := range []uint64{101, 202, 303} {
		if pt[i] != want {
			t.Errorf("slot %d = %d, want %d", i, pt[i], want)
		}
	}
}

func TestHomomorphicSub(t *testing.T) {
	c, kp := testCtx(t)
	a, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{100})
	b, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{30})
	diff, err := c.Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := c.Decrypt(kp.SK, diff)
	if pt[0] != 70 {
		t.Errorf("100-30 = %d", pt[0])
	}
	// Negative result wraps mod T.
	diff2, _ := c.Sub(b, a)
	pt2, _ := c.Decrypt(kp.SK, diff2)
	if pt2[0] != c.Params.T-70 {
		t.Errorf("30-100 = %d, want %d", pt2[0], c.Params.T-70)
	}
}

func TestAddPlainMulScalar(t *testing.T) {
	c, kp := testCtx(t)
	a, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{10, 20})
	m, _ := c.Encode([]uint64{5, 6})
	ap, err := c.AddPlain(a, m)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := c.Decrypt(kp.SK, ap)
	if pt[0] != 15 || pt[1] != 26 {
		t.Errorf("AddPlain = %d,%d", pt[0], pt[1])
	}
	ms, err := c.MulScalar(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ = c.Decrypt(kp.SK, ms)
	if pt[0] != 30 || pt[1] != 60 {
		t.Errorf("MulScalar = %d,%d", pt[0], pt[1])
	}
}

func TestMulPlainScalarPoly(t *testing.T) {
	c, kp := testCtx(t)
	a, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{7, 9})
	m, _ := c.Encode([]uint64{4}) // degree-0: scalar multiply
	mp, err := c.MulPlain(a, m)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := c.Decrypt(kp.SK, mp)
	if pt[0] != 28 || pt[1] != 36 {
		t.Errorf("MulPlain = %d,%d", pt[0], pt[1])
	}
}

// The ⊠ operator: multiply two ciphertexts with relinearization.
func TestCiphertextMul(t *testing.T) {
	c, kp := testCtx(t)
	a, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{6})
	b, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{7})
	prod, err := c.Mul(a, b, kp.RLK)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.Decrypt(kp.SK, prod)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != 42 {
		t.Fatalf("E(6) ⊠ E(7) = %d, want 42", pt[0])
	}
}

func TestMulThenAdd(t *testing.T) {
	c, kp := testCtx(t)
	a, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{5})
	b, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{8})
	d, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{2})
	prod, err := c.Mul(a, b, kp.RLK)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Add(prod, d)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := c.Decrypt(kp.SK, res)
	if pt[0] != 42 {
		t.Fatalf("5*8+2 = %d, want 42", pt[0])
	}
}

func TestMulRequiresRelinKey(t *testing.T) {
	c, kp := testCtx(t)
	a, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{1})
	if _, err := c.Mul(a, a, nil); err == nil {
		t.Fatal("Mul without relin key accepted")
	}
	_ = kp
}

func TestSumManyCiphertexts(t *testing.T) {
	c, kp := testCtx(t)
	// Sum 50 one-hot vectors, the paper's canonical aggregation.
	const devices, cats = 50, 8
	counts := make([]uint64, cats)
	cts := make([]*Ciphertext, devices)
	for d := 0; d < devices; d++ {
		hot := d % cats
		counts[hot]++
		vec := make([]uint64, cats)
		vec[hot] = 1
		ct, err := c.EncryptValues(rand.Reader, kp.PK, vec)
		if err != nil {
			t.Fatal(err)
		}
		cts[d] = ct
	}
	sum, err := c.Sum(cts)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := c.Decrypt(kp.SK, sum)
	for i := 0; i < cats; i++ {
		if pt[i] != counts[i] {
			t.Errorf("category %d = %d, want %d", i, pt[i], counts[i])
		}
	}
}

func TestSumEmpty(t *testing.T) {
	c, _ := testCtx(t)
	if _, err := c.Sum(nil); err == nil {
		t.Fatal("empty Sum accepted")
	}
}

func TestEncodeTooLong(t *testing.T) {
	c, _ := testCtx(t)
	if _, err := c.Encode(make([]uint64, c.Params.N+1)); err == nil {
		t.Fatal("oversized Encode accepted")
	}
}

func TestDecryptMalformed(t *testing.T) {
	c, kp := testCtx(t)
	if _, err := c.Decrypt(kp.SK, nil); err == nil {
		t.Error("nil ciphertext accepted")
	}
	if _, err := c.Decrypt(kp.SK, &Ciphertext{C0: make(Poly, 3), C1: make(Poly, 3)}); err == nil {
		t.Error("wrong-degree ciphertext accepted")
	}
}

func TestNilCiphertextOps(t *testing.T) {
	c, kp := testCtx(t)
	a, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{1})
	if _, err := c.Add(nil, a); err == nil {
		t.Error("Add(nil) accepted")
	}
	if _, err := c.Sub(a, nil); err == nil {
		t.Error("Sub(nil) accepted")
	}
	if _, err := c.MulScalar(nil, 2); err == nil {
		t.Error("MulScalar(nil) accepted")
	}
	if _, err := c.Mul(nil, a, kp.RLK); err == nil {
		t.Error("Mul(nil) accepted")
	}
}

func TestCiphertextBytes(t *testing.T) {
	c, kp := testCtx(t)
	ct, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{1})
	want := 8 * 2 * c.Params.N
	if ct.Bytes() != want {
		t.Errorf("Bytes() = %d, want %d", ct.Bytes(), want)
	}
	var nilCt *Ciphertext
	if nilCt.Bytes() != 0 {
		t.Error("nil Bytes() != 0")
	}
}

// Property: Dec(Enc(a) ⊞ Enc(b)) = a+b mod T slot-wise.
func TestQuickAddHomomorphism(t *testing.T) {
	c, kp := testCtx(t)
	f := func(a, b uint16) bool {
		ca, e1 := c.EncryptValues(rand.Reader, kp.PK, []uint64{uint64(a)})
		cb, e2 := c.EncryptValues(rand.Reader, kp.PK, []uint64{uint64(b)})
		if e1 != nil || e2 != nil {
			return false
		}
		sum, err := c.Add(ca, cb)
		if err != nil {
			return false
		}
		pt, err := c.Decrypt(kp.SK, sum)
		return err == nil && pt[0] == (uint64(a)+uint64(b))%c.Params.T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: Dec(Enc(a) ⊠ Enc(b)) = a·b mod T.
func TestQuickMulHomomorphism(t *testing.T) {
	c, kp := testCtx(t)
	f := func(a, b uint8) bool {
		ca, e1 := c.EncryptValues(rand.Reader, kp.PK, []uint64{uint64(a)})
		cb, e2 := c.EncryptValues(rand.Reader, kp.PK, []uint64{uint64(b)})
		if e1 != nil || e2 != nil {
			return false
		}
		prod, err := c.Mul(ca, cb, kp.RLK)
		if err != nil {
			return false
		}
		pt, err := c.Decrypt(kp.SK, prod)
		return err == nil && pt[0] == uint64(a)*uint64(b)%c.Params.T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c, kp := testCtx(b)
	vals := []uint64{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncryptValues(rand.Reader, kp.PK, vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	c, kp := testCtx(b)
	x, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{1})
	y, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Add(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	c, kp := testCtx(b)
	x, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{3})
	y, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Mul(x, y, kp.RLK); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNTT(b *testing.B) {
	c, _ := testCtx(b)
	p, _ := c.sampleUniform(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ntt.Forward(p)
		c.ntt.Inverse(p)
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	c, kp := testCtx(t)
	ct, _ := c.EncryptValues(rand.Reader, kp.PK, []uint64{7, 8, 9})
	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4+16*c.Params.N {
		t.Fatalf("wire size = %d", len(data))
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	pt, err := c.Decrypt(kp.SK, &back)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != 7 || pt[1] != 8 || pt[2] != 9 {
		t.Fatalf("round-tripped ciphertext decrypts to %v", pt[:3])
	}
	// Malformed wire data is rejected.
	if err := back.UnmarshalBinary(data[:10]); err == nil {
		t.Error("truncated ciphertext accepted")
	}
	bad := append([]byte(nil), data...)
	// Coefficient ≥ Q.
	for i := 0; i < 8; i++ {
		bad[4+i] = 0xff
	}
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Error("out-of-range coefficient accepted")
	}
	var nilCt *Ciphertext
	if _, err := nilCt.MarshalBinary(); err == nil {
		t.Error("nil ciphertext marshaled")
	}
}
