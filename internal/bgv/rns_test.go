package bgv

import (
	"crypto/rand"
	"sync"
	"testing"
)

var (
	rnsOnce sync.Once
	rnsCtx  *RNSContext
	rnsKeys *RNSKeyPair
	rnsErr  error
)

// testRNSCtx builds one shared context and keypair at TestRNSParams.
func testRNSCtx(t testing.TB) (*RNSContext, *RNSKeyPair) {
	t.Helper()
	rnsOnce.Do(func() {
		rnsCtx, rnsErr = NewRNSContext(TestRNSParams)
		if rnsErr != nil {
			return
		}
		rnsKeys, rnsErr = rnsCtx.GenerateKeys(rand.Reader)
	})
	if rnsErr != nil {
		t.Fatal(rnsErr)
	}
	return rnsCtx, rnsKeys
}

func TestRNSParamsValidate(t *testing.T) {
	if err := TestRNSParams.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperRNSParams.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := PaperRNSParams.ModulusBits(); got != 135 {
		t.Fatalf("paper modulus is %d bits, want 135", got)
	}
	if PaperRNSParams.N != 1<<15 {
		t.Fatalf("paper ring degree is %d, want 2^15", PaperRNSParams.N)
	}
	bad := []RNSParams{
		{N: 1000, T: 65537, Qi: []uint64{1073479681}},                // degree not a power of two
		{N: 1 << 10, T: 1, Qi: []uint64{1073479681}},                 // t too small
		{N: 1 << 10, T: 65537, Qi: nil},                              // no primes
		{N: 1 << 10, T: 65537, Qi: []uint64{12289}},                  // prime below the plaintext modulus
		{N: 1 << 10, T: 65537, Qi: []uint64{1073479687}},             // q−1 not divisible by 2^11
		{N: 1 << 10, T: 65537, Qi: []uint64{1073479681, 1073479681}}, // duplicate
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestRingByName(t *testing.T) {
	p, err := RingByName("paper")
	if err != nil || p.N != PaperRNSParams.N {
		t.Fatalf("paper ring: %+v, %v", p, err)
	}
	if p, err = RingByName("test"); err != nil || p.N != TestRNSParams.N {
		t.Fatalf("test ring: %+v, %v", p, err)
	}
	if _, err = RingByName("nope"); err == nil {
		t.Fatal("unknown ring name accepted")
	}
}

func TestRNSEncryptDecryptRoundTrip(t *testing.T) {
	ctx, keys := testRNSCtx(t)
	values := []uint64{0, 1, 2, 42, 65536, ctx.Params.T - 1}
	ct, err := ctx.EncryptValues(rand.Reader, keys.PK, values)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ctx.Decrypt(keys.SK, ct)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if pt[i] != v%ctx.Params.T {
			t.Fatalf("slot %d: got %d, want %d", i, pt[i], v%ctx.Params.T)
		}
	}
	for i := len(values); i < ctx.Params.N; i++ {
		if pt[i] != 0 {
			t.Fatalf("slot %d: got %d, want 0", i, pt[i])
		}
	}
}

func TestRNSAddSub(t *testing.T) {
	ctx, keys := testRNSCtx(t)
	a, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{5, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{7, 3, 50})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ctx.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ctx.Decrypt(keys.SK, sum)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != 12 || pt[1] != 13 || pt[2] != 150 {
		t.Fatalf("add: got %v", pt[:3])
	}
	diff, err := ctx.Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pt, err = ctx.Decrypt(keys.SK, diff)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != ctx.Params.T-2 || pt[1] != 7 || pt[2] != 50 {
		t.Fatalf("sub: got %v", pt[:3])
	}
}

func TestRNSMul(t *testing.T) {
	ctx, keys := testRNSCtx(t)
	a, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := ctx.Mul(a, b, keys.RLK)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ctx.Decrypt(keys.SK, prod)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != 21 {
		t.Fatalf("3·7: got %d, want 21", pt[0])
	}
}

// TestRNSMulNegacyclicWraparound exercises the x^n = −1 boundary: the
// product of two degree-(n−1) monomials wraps to −x^(n−2), so the decrypted
// slot n−2 holds T−1 (≡ −1 mod T).
func TestRNSMulNegacyclicWraparound(t *testing.T) {
	ctx, keys := testRNSCtx(t)
	n := ctx.Params.N
	mono := make([]uint64, n)
	mono[n-1] = 1
	a, err := ctx.EncryptValues(rand.Reader, keys.PK, mono)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.EncryptValues(rand.Reader, keys.PK, mono)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := ctx.Mul(a, b, keys.RLK)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ctx.Decrypt(keys.SK, prod)
	if err != nil {
		t.Fatal(err)
	}
	want := ctx.Params.T - 1
	if pt[n-2] != want {
		t.Fatalf("x^(n-1)·x^(n-1): slot %d = %d, want %d", n-2, pt[n-2], want)
	}
	for i, v := range pt {
		if i != n-2 && v != 0 {
			t.Fatalf("slot %d: got %d, want 0", i, v)
		}
	}
}

func TestRNSSum(t *testing.T) {
	ctx, keys := testRNSCtx(t)
	const k = 40 // above minParallelSum when workers > 1
	cts := make([]*RNSCiphertext, k)
	var want uint64
	for i := range cts {
		v := uint64(i * 3)
		want += v
		ct, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{v})
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	sum, err := ctx.Sum(cts)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ctx.Decrypt(keys.SK, sum)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != want%ctx.Params.T {
		t.Fatalf("sum: got %d, want %d", pt[0], want%ctx.Params.T)
	}
}

// TestRNSPaperScale is a single paper-parameter round trip (2^15 / 135-bit):
// the instantiation the benchmarks measure must actually work.
func TestRNSPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale keygen is slow; skipped with -short")
	}
	ctx, err := NewRNSContext(PaperRNSParams)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := ctx.GenerateKeys(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{11, 22})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.EncryptValues(rand.Reader, keys.PK, []uint64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := ctx.Mul(a, b, keys.RLK)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ctx.Decrypt(keys.SK, prod)
	if err != nil {
		t.Fatal(err)
	}
	if pt[0] != 55 || pt[1] != 11*1+22*5 {
		t.Fatalf("paper-scale mul: got %v, want [55 132]", pt[:2])
	}
}
