package bgv

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"arboretum/internal/parallel"
)

// Negacyclic number-theoretic transform over Z_q[x]/(x^n + 1).
//
// Polynomial multiplication in the BGV ring is a negacyclic convolution; the
// NTT makes it O(n log n). The production transforms below are division-free
// and twist-free: the ψ pre/post-twist is merged into the butterflies by
// storing ψ-adjusted twiddle factors in bit-reversed order (the standard
// Cooley-Tukey forward / Gentleman-Sande inverse negacyclic pair), every
// twiddle multiply uses Shoup precomputation instead of a hardware division,
// butterfly values stay lazily reduced (below 4q forward, 2q inverse; the
// 60-bit q leaves four bits of headroom in a 64-bit word), and n⁻¹ is folded
// into the last inverse stage. Forward produces the evaluation domain in
// bit-reversed order and Inverse consumes it, so the explicit permutation
// pass disappears; point-wise products between the two are order-agnostic.
// See docs/KERNELS.md for the invariants and the equivalence argument.
//
// The textbook formulation is retained in ntt_reference.go; randomized tests
// assert the optimized pair matches it bit for bit (modulo the documented
// bit-reversal of the evaluation domain).

// nttTables holds the precomputed roots for one ring degree.
type nttTables struct {
	n int
	q uint64

	// Merged-twist tables for the optimized transforms: psiRev[i] = ψ^brv(i)
	// and psiInvRev[i] = ψ^−brv(i), where brv reverses log2(n) bits, each with
	// its Shoup companion word.
	psiRev         []uint64
	psiRevShoup    []uint64
	psiInvRev      []uint64
	psiInvRevShoup []uint64
	// n⁻¹ and ψ^−brv(1)·n⁻¹, folded into the final inverse stage.
	nInv            uint64
	nInvShoup       uint64
	psiInvNInv      uint64
	psiInvNInvShoup uint64

	// Reference (textbook) tables, kept for the equivalence tests.
	psi     []uint64 // ψ^i, i = 0..n-1
	psiInv  []uint64 // ψ^-i
	omega   []uint64 // ω^i for the cyclic transform
	omegaI  []uint64 // ω^-i
	bitRevs []int    // bit-reversal permutation
}

// findPsi locates a primitive 2n-th root of unity mod q by random search:
// ψ = x^((q−1)/2n) is a 2n-th root; it is primitive iff ψ^n = −1. Candidates
// are drawn by rejection sampling so they are uniform in [0, q) — a raw
// 64-bit draw reduced mod q would be biased toward small residues — and the
// search is deterministic given the byte stream r produces.
func findPsi(r io.Reader, n int, q uint64) (uint64, error) {
	if (q-1)%uint64(2*n) != 0 {
		return 0, fmt.Errorf("bgv: q−1 not divisible by 2n=%d", 2*n)
	}
	exp := (q - 1) / uint64(2*n)
	// Accept only draws below the largest multiple of q that fits in 64 bits.
	bound := (^uint64(0) / q) * q
	var buf [8]byte
	for tries := 0; tries < 4096; tries++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint64(buf[:])
		if v >= bound {
			continue
		}
		x := v % q
		if x < 2 {
			continue
		}
		psi := powMod(x, exp, q)
		if powMod(psi, uint64(n), q) == q-1 {
			return psi, nil
		}
	}
	return 0, fmt.Errorf("bgv: no primitive 2n-th root found for n=%d", n)
}

func newNTTTables(n int, q uint64) (*nttTables, error) {
	return newNTTTablesFrom(rand.Reader, n, q)
}

// newNTTTablesFrom builds the tables drawing root candidates from r; the
// result is deterministic given the same reader bytes.
func newNTTTablesFrom(r io.Reader, n int, q uint64) (*nttTables, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("bgv: ring degree %d is not a power of two ≥ 2", n)
	}
	psi, err := findPsi(r, n, q)
	if err != nil {
		return nil, err
	}
	t := &nttTables{n: n, q: q}
	t.psi = make([]uint64, n)
	t.psiInv = make([]uint64, n)
	t.omega = make([]uint64, n)
	t.omegaI = make([]uint64, n)
	psiInv := invMod(psi, q)
	omega := mulMod(psi, psi, q)
	omegaInv := invMod(omega, q)
	p, pi, w, wi := uint64(1), uint64(1), uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		t.psi[i], t.psiInv[i], t.omega[i], t.omegaI[i] = p, pi, w, wi
		p = mulMod(p, psi, q)
		pi = mulMod(pi, psiInv, q)
		w = mulMod(w, omega, q)
		wi = mulMod(wi, omegaInv, q)
	}
	t.nInv = invMod(uint64(n), q)
	t.bitRevs = make([]int, n)
	logN := bits.TrailingZeros(uint(n))
	for i := 0; i < n; i++ {
		t.bitRevs[i] = int(bits.Reverse64(uint64(i)) >> (64 - logN))
	}
	// Merged-twist twiddles in bit-reversed order, with Shoup companions.
	t.psiRev = make([]uint64, n)
	t.psiRevShoup = make([]uint64, n)
	t.psiInvRev = make([]uint64, n)
	t.psiInvRevShoup = make([]uint64, n)
	for i := 0; i < n; i++ {
		rev := t.bitRevs[i]
		t.psiRev[i] = t.psi[rev]
		t.psiRevShoup[i] = shoupPrecomp(t.psiRev[i], q)
		t.psiInvRev[i] = t.psiInv[rev]
		t.psiInvRevShoup[i] = shoupPrecomp(t.psiInvRev[i], q)
	}
	t.nInvShoup = shoupPrecomp(t.nInv, q)
	t.psiInvNInv = mulMod(t.psiInvRev[1], t.nInv, q)
	t.psiInvNInvShoup = shoupPrecomp(t.psiInvNInv, q)
	return t, nil
}

// Forward transforms a coefficient-domain polynomial (standard order,
// coefficients in [0, q)) to the evaluation domain in bit-reversed order,
// in place. Cooley-Tukey butterflies with the ψ-twist merged into the
// twiddles; intermediate values are lazily reduced below 4q and swept back
// to [0, q) at the end.
func (t *nttTables) Forward(a []uint64) {
	n, q := t.n, t.q
	twoQ := 2 * q
	tt := n
	for m := 1; m < n; m <<= 1 {
		tt >>= 1
		for i := 0; i < m; i++ {
			w := t.psiRev[m+i]
			ws := t.psiRevShoup[m+i]
			j1 := 2 * i * tt
			for j := j1; j < j1+tt; j++ {
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := mulModShoupLazy(a[j+tt], w, ws, q)
				a[j] = u + v
				a[j+tt] = u + twoQ - v
			}
		}
	}
	for i := 0; i < n; i++ {
		x := a[i]
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		a[i] = x
	}
}

// Inverse transforms an evaluation-domain polynomial (bit-reversed order, as
// produced by Forward, values in [0, q)) back to the coefficient domain in
// standard order, in place. Gentleman-Sande butterflies keep values lazily
// reduced below 2q; the final stage folds in n⁻¹ and the last reduction
// sweep returns every coefficient to [0, q).
func (t *nttTables) Inverse(a []uint64) {
	n, q := t.n, t.q
	twoQ := 2 * q
	tt := 1
	for m := n; m > 2; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := t.psiInvRev[h+i]
			ws := t.psiInvRevShoup[h+i]
			for j := j1; j < j1+tt; j++ {
				u := a[j]
				v := a[j+tt]
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				a[j] = s
				a[j+tt] = mulModShoupLazy(u+twoQ-v, w, ws, q)
			}
			j1 += 2 * tt
		}
		tt <<= 1
	}
	// Last stage (m = 2) with n⁻¹ folded into both butterfly legs.
	half := n >> 1
	for j := 0; j < half; j++ {
		u := a[j]
		v := a[j+half]
		a[j] = mulModShoupLazy(u+v, t.nInv, t.nInvShoup, q)
		a[j+half] = mulModShoupLazy(u+twoQ-v, t.psiInvNInv, t.psiInvNInvShoup, q)
	}
	for i := 0; i < n; i++ {
		if a[i] >= q {
			a[i] -= q
		}
	}
}

// forwardBatch runs Forward over each polynomial (in place), one worker-pool
// task per polynomial. The tables are read-only, so transforms of distinct
// polynomials never share mutable state. At one worker the plain loop runs
// directly — same order, and no closure allocation on the zero-alloc paths.
func (t *nttTables) forwardBatch(ps []Poly) {
	if parallel.Workers(0) == 1 {
		for _, p := range ps {
			t.Forward(p)
		}
		return
	}
	//arblint:ignore errdiscard ForEach only propagates closure errors and this closure is infallible
	_ = parallel.ForEach(nil, len(ps), 0, func(i int) error {
		t.Forward(ps[i])
		return nil
	})
}

// inverseBatch runs Inverse over each polynomial (in place), in parallel
// (sequentially at one worker, like forwardBatch).
func (t *nttTables) inverseBatch(ps []Poly) {
	if parallel.Workers(0) == 1 {
		for _, p := range ps {
			t.Inverse(p)
		}
		return
	}
	//arblint:ignore errdiscard ForEach only propagates closure errors and this closure is infallible
	_ = parallel.ForEach(nil, len(ps), 0, func(i int) error {
		t.Inverse(ps[i])
		return nil
	})
}
