package bgv

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math/bits"

	"arboretum/internal/parallel"
)

// Negacyclic number-theoretic transform over Z_q[x]/(x^n + 1).
//
// Polynomial multiplication in the BGV ring is a negacyclic convolution; the
// NTT makes it O(n log n). We use the textbook formulation: pre-multiply the
// coefficients by powers of ψ (a primitive 2n-th root of unity), run a cyclic
// NTT with ω = ψ², multiply point-wise, and undo on the way back.

// nttTables holds the precomputed roots for one ring degree.
type nttTables struct {
	n       int
	q       uint64
	psi     []uint64 // ψ^i, i = 0..n-1
	psiInv  []uint64 // ψ^-i
	omega   []uint64 // ω^i for the cyclic transform
	omegaI  []uint64 // ω^-i
	nInv    uint64   // n^-1 mod q
	bitRevs []int    // bit-reversal permutation
}

// findPsi locates a primitive 2n-th root of unity mod q by random search:
// ψ = x^((q−1)/2n) is a 2n-th root; it is primitive iff ψ^n = −1.
func findPsi(n int, q uint64) (uint64, error) {
	if (q-1)%uint64(2*n) != 0 {
		return 0, fmt.Errorf("bgv: q−1 not divisible by 2n=%d", 2*n)
	}
	exp := (q - 1) / uint64(2*n)
	var buf [8]byte
	for tries := 0; tries < 4096; tries++ {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, err
		}
		x := binary.LittleEndian.Uint64(buf[:]) % q
		if x < 2 {
			continue
		}
		psi := powMod(x, exp, q)
		if powMod(psi, uint64(n), q) == q-1 {
			return psi, nil
		}
	}
	return 0, fmt.Errorf("bgv: no primitive 2n-th root found for n=%d", n)
}

func newNTTTables(n int, q uint64) (*nttTables, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("bgv: ring degree %d is not a power of two ≥ 2", n)
	}
	psi, err := findPsi(n, q)
	if err != nil {
		return nil, err
	}
	t := &nttTables{n: n, q: q}
	t.psi = make([]uint64, n)
	t.psiInv = make([]uint64, n)
	t.omega = make([]uint64, n)
	t.omegaI = make([]uint64, n)
	psiInv := invMod(psi, q)
	omega := mulMod(psi, psi, q)
	omegaInv := invMod(omega, q)
	p, pi, w, wi := uint64(1), uint64(1), uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		t.psi[i], t.psiInv[i], t.omega[i], t.omegaI[i] = p, pi, w, wi
		p = mulMod(p, psi, q)
		pi = mulMod(pi, psiInv, q)
		w = mulMod(w, omega, q)
		wi = mulMod(wi, omegaInv, q)
	}
	t.nInv = invMod(uint64(n), q)
	t.bitRevs = make([]int, n)
	logN := bits.TrailingZeros(uint(n))
	for i := 0; i < n; i++ {
		t.bitRevs[i] = int(bits.Reverse64(uint64(i)) >> (64 - logN))
	}
	return t, nil
}

// cyclicNTT runs an in-place iterative Cooley-Tukey transform using the given
// root powers (omega for forward, omegaI for inverse).
func (t *nttTables) cyclicNTT(a []uint64, roots []uint64) {
	n, q := t.n, t.q
	for i := 0; i < n; i++ {
		j := t.bitRevs[i]
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		step := n / length
		half := length / 2
		for start := 0; start < n; start += length {
			for k := 0; k < half; k++ {
				w := roots[k*step]
				u := a[start+k]
				v := mulMod(a[start+k+half], w, q)
				a[start+k] = addMod(u, v, q)
				a[start+k+half] = subMod(u, v, q)
			}
		}
	}
}

// Forward transforms a coefficient-domain polynomial to the evaluation
// domain (in place).
func (t *nttTables) Forward(a []uint64) {
	for i := range a {
		a[i] = mulMod(a[i], t.psi[i], t.q)
	}
	t.cyclicNTT(a, t.omega)
}

// Inverse transforms back to the coefficient domain (in place).
func (t *nttTables) Inverse(a []uint64) {
	t.cyclicNTT(a, t.omegaI)
	for i := range a {
		a[i] = mulMod(mulMod(a[i], t.nInv, t.q), t.psiInv[i], t.q)
	}
}

// forwardBatch runs Forward over each polynomial (in place), one worker-pool
// task per polynomial. The tables are read-only, so transforms of distinct
// polynomials never share mutable state.
func (t *nttTables) forwardBatch(ps []Poly) {
	_ = parallel.ForEach(nil, len(ps), 0, func(i int) error {
		t.Forward(ps[i])
		return nil
	})
}

// inverseBatch runs Inverse over each polynomial (in place), in parallel.
func (t *nttTables) inverseBatch(ps []Poly) {
	_ = parallel.ForEach(nil, len(ps), 0, func(i int) error {
		t.Inverse(ps[i])
		return nil
	})
}
