package bgv

// Reference (textbook) negacyclic transform: pre-multiply the coefficients
// by powers of ψ, run a cyclic NTT with ω = ψ² (explicit bit-reversal
// permutation, divide-and-round mulMod in every butterfly), and undo on the
// way back. This is the formulation the optimized Forward/Inverse in ntt.go
// replaced; it is retained verbatim so randomized tests can assert the
// division-free kernels match it bit for bit — Forward(a)[i] equals
// referenceForward(a)[bitRevs[i]] (the evaluation domain moved to
// bit-reversed order), and the Inverse/referenceInverse outputs are
// identical. It is not used on any production path.

// referenceCyclicNTT runs an in-place iterative Cooley-Tukey transform using
// the given root powers (omega for forward, omegaI for inverse).
func (t *nttTables) referenceCyclicNTT(a []uint64, roots []uint64) {
	n, q := t.n, t.q
	for i := 0; i < n; i++ {
		j := t.bitRevs[i]
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		step := n / length
		half := length / 2
		for start := 0; start < n; start += length {
			for k := 0; k < half; k++ {
				w := roots[k*step]
				u := a[start+k]
				v := mulMod(a[start+k+half], w, q)
				a[start+k] = addMod(u, v, q)
				a[start+k+half] = subMod(u, v, q)
			}
		}
	}
}

// referenceForward transforms a coefficient-domain polynomial to the
// evaluation domain in standard order (in place).
func (t *nttTables) referenceForward(a []uint64) {
	for i := range a {
		a[i] = mulMod(a[i], t.psi[i], t.q)
	}
	t.referenceCyclicNTT(a, t.omega)
}

// referenceInverse transforms back to the coefficient domain (in place).
func (t *nttTables) referenceInverse(a []uint64) {
	t.referenceCyclicNTT(a, t.omegaI)
	for i := range a {
		a[i] = mulMod(mulMod(a[i], t.nInv, t.q), t.psiInv[i], t.q)
	}
}
