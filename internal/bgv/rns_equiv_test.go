package bgv

// Equivalence tests pinning the RNS ring to the single-prime ring where the
// parameter sets overlap. At L = 1 with q_1 = Q the two implementations are
// specified to be BIT-IDENTICAL — same randomness consumption, same draw
// order, same exact modular arithmetic — so these tests compare raw
// coefficient words, not just decrypted plaintexts. They are the regression
// fence that lets the RNS path inherit the single-prime path's test history:
// any divergence in sampling, keygen, encryption, multiplication, or
// summation shows up as a word-level mismatch with a deterministic seed.
//
// The CRT half checks the reconstruction identities the multi-prime decoder
// rests on: qHat/qHatInv are a valid CRT basis, and interpolation round-trips
// residue vectors at the q_i boundaries.

import (
	"math/big"
	"sync"
	"testing"

	"arboretum/internal/benchrand"
)

// singlePrimeRNSParams is the L = 1 overlap point: the RNS ring running on
// the single-prime modulus at the test degree.
var singlePrimeRNSParams = RNSParams{N: 1 << 10, T: 65537, Qi: []uint64{Q}}

var (
	equivOnce sync.Once
	equivErr  error
	equivSP   *Context    // single-prime
	equivRC   *RNSContext // RNS at L = 1
	equivSPK  *KeyPair
	equivRK   *RNSKeyPair
)

// equivCtxs builds both rings and generates keys from the SAME deterministic
// stream, so every cross-check below starts from byte-identical key material.
func equivCtxs(t *testing.T) (*Context, *RNSContext, *KeyPair, *RNSKeyPair) {
	t.Helper()
	equivOnce.Do(func() {
		equivSP, equivErr = NewContext(TestParams)
		if equivErr != nil {
			return
		}
		equivRC, equivErr = NewRNSContext(singlePrimeRNSParams)
		if equivErr != nil {
			return
		}
		equivSPK, equivErr = equivSP.GenerateKeys(benchrand.New(0xA11CE))
		if equivErr != nil {
			return
		}
		equivRK, equivErr = equivRC.GenerateKeys(benchrand.New(0xA11CE))
	})
	if equivErr != nil {
		t.Fatal(equivErr)
	}
	return equivSP, equivRC, equivSPK, equivRK
}

func wordsEqual(t *testing.T, what string, got []uint64, want Poly) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: word %d is %d, want %d", what, i, got[i], want[i])
		}
	}
}

func TestRNSSinglePrimeKeysBitExact(t *testing.T) {
	_, rc, spk, rk := equivCtxs(t)
	wordsEqual(t, "secret key", rk.SK.S, spk.SK.S)
	wordsEqual(t, "public key A", rk.PK.A, spk.PK.A)
	wordsEqual(t, "public key B", rk.PK.B, spk.PK.B)
	if rc.totalDigits != relinDigits {
		t.Fatalf("L=1 gadget has %d digits, want %d", rc.totalDigits, relinDigits)
	}
	if len(rk.RLK.A) != len(spk.RLK.A) {
		t.Fatalf("relin key has %d digits, want %d", len(rk.RLK.A), len(spk.RLK.A))
	}
	for i := range rk.RLK.A {
		wordsEqual(t, "relin A digit", rk.RLK.A[i], spk.RLK.A[i])
		wordsEqual(t, "relin B digit", rk.RLK.B[i], spk.RLK.B[i])
	}
}

func TestRNSSinglePrimeEncryptBitExact(t *testing.T) {
	sp, rc, spk, rk := equivCtxs(t)
	values := []uint64{3, 1, 4, 1, 5, 9, 2, 6, sp.Params.T - 1}
	a, err := sp.EncryptValues(benchrand.New(42), spk.PK, values)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rc.EncryptValues(benchrand.New(42), rk.PK, values)
	if err != nil {
		t.Fatal(err)
	}
	wordsEqual(t, "encrypt C0", b.C0, a.C0)
	wordsEqual(t, "encrypt C1", b.C1, a.C1)
	// The uncached-key path (a hand-built key with no NTT cache) must encrypt
	// to the same words as the cached path.
	bareSP := &PublicKey{A: spk.PK.A, B: spk.PK.B}
	bareRC := &RNSPublicKey{A: rk.PK.A, B: rk.PK.B}
	a2, err := sp.EncryptValues(benchrand.New(42), bareSP, values)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rc.EncryptValues(benchrand.New(42), bareRC, values)
	if err != nil {
		t.Fatal(err)
	}
	wordsEqual(t, "uncached single-prime C0", []uint64(a2.C0), a.C0)
	wordsEqual(t, "uncached RNS C0", b2.C0, a.C0)
	wordsEqual(t, "uncached RNS C1", b2.C1, a.C1)
}

func TestRNSSinglePrimeMulBitExact(t *testing.T) {
	sp, rc, spk, rk := equivCtxs(t)
	a1, err := sp.EncryptValues(benchrand.New(7), spk.PK, []uint64{6, 7})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sp.EncryptValues(benchrand.New(8), spk.PK, []uint64{8, 9})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := rc.EncryptValues(benchrand.New(7), rk.PK, []uint64{6, 7})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rc.EncryptValues(benchrand.New(8), rk.PK, []uint64{8, 9})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := sp.Mul(a1, a2, spk.RLK)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := rc.Mul(b1, b2, rk.RLK)
	if err != nil {
		t.Fatal(err)
	}
	wordsEqual(t, "mul C0", bp.C0, ap.C0)
	wordsEqual(t, "mul C1", bp.C1, ap.C1)
	pa, err := sp.Decrypt(spk.SK, ap)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := rc.Decrypt(rk.SK, bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("decrypted slot %d: %d vs %d", i, pb[i], pa[i])
		}
	}
	if pa[0] != 48 || pa[1] != 6*9+7*8 {
		t.Fatalf("product slots: got %v, want [48 110]", pa[:2])
	}
}

func TestRNSSinglePrimeSumBitExact(t *testing.T) {
	sp, rc, spk, rk := equivCtxs(t)
	const k = 37
	as := make([]*Ciphertext, k)
	bs := make([]*RNSCiphertext, k)
	for i := 0; i < k; i++ {
		seed := uint64(1000 + i)
		var err error
		as[i], err = sp.EncryptValues(benchrand.New(seed), spk.PK, []uint64{uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		bs[i], err = rc.EncryptValues(benchrand.New(seed), rk.PK, []uint64{uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	sa, err := sp.Sum(as)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := rc.Sum(bs)
	if err != nil {
		t.Fatal(err)
	}
	wordsEqual(t, "sum C0", sb.C0, sa.C0)
	wordsEqual(t, "sum C1", sb.C1, sa.C1)
}

func TestRNSSinglePrimeDecryptBitExact(t *testing.T) {
	sp, rc, spk, rk := equivCtxs(t)
	// Coefficients spanning the full plaintext range, including the T−1
	// boundary where the centered lift changes sign.
	values := make([]uint64, sp.Params.N)
	rng := benchrand.New(99)
	buf := make([]byte, 8)
	for i := range values {
		if _, err := rng.Read(buf); err != nil {
			t.Fatal(err)
		}
		values[i] = (uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16) % sp.Params.T
	}
	a, err := sp.EncryptValues(benchrand.New(5), spk.PK, values)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rc.EncryptValues(benchrand.New(5), rk.PK, values)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := sp.Decrypt(spk.SK, a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := rc.Decrypt(rk.SK, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != values[i] || pb[i] != values[i] {
			t.Fatalf("slot %d: single=%d rns=%d want %d", i, pa[i], pb[i], values[i])
		}
	}
}

// TestRNSCRTBasisIdentities checks the interpolation basis the decoder uses:
// g_l = qHat_l·qHatInv_l satisfies g_l ≡ 1 (mod q_l) and g_l ≡ 0 (mod q_m)
// for m ≠ l. These identities are also what lets relin keygen place the
// s²-term only in row l with no big-int arithmetic.
func TestRNSCRTBasisIdentities(t *testing.T) {
	ctx, _ := testRNSCtx(t)
	for l, ql := range ctx.Params.Qi {
		g := new(big.Int).Mul(ctx.qHat[l], new(big.Int).SetUint64(ctx.qHatInv[l]))
		for m, qm := range ctx.Params.Qi {
			got := new(big.Int).Mod(g, new(big.Int).SetUint64(qm)).Uint64()
			want := uint64(0)
			if m == l {
				want = 1
			}
			if got != want {
				t.Fatalf("basis g_%d mod q_%d = %d, want %d", l, m, got, want)
			}
		}
		if new(big.Int).Mul(ctx.qHat[l], new(big.Int).SetUint64(ql)).Cmp(ctx.qBig) != 0 {
			t.Fatalf("qHat_%d · q_%d ≠ Q", l, l)
		}
	}
}

// TestRNSCRTReconstructionRoundTrip interpolates residue vectors back to
// Z_Q with the decoder's formula and checks against big.Int arithmetic,
// driving the q_i boundary cases explicitly: 0, 1, q_l−1 in a single lane,
// Q−1, Q/2 and Q/2+1 (the centered-lift split), and random values.
func TestRNSCRTReconstructionRoundTrip(t *testing.T) {
	ctx, _ := testRNSCtx(t)
	reconstruct := func(res []uint64) *big.Int {
		acc := new(big.Int)
		term := new(big.Int)
		for l := range ctx.Params.Qi {
			xi := mulMod(res[l], ctx.qHatInv[l], ctx.Params.Qi[l])
			term.SetUint64(xi)
			term.Mul(term, ctx.qHat[l])
			acc.Add(acc, term)
		}
		return acc.Mod(acc, ctx.qBig)
	}
	residues := func(x *big.Int) []uint64 {
		res := make([]uint64, len(ctx.Params.Qi))
		m := new(big.Int)
		for l, q := range ctx.Params.Qi {
			res[l] = m.Mod(x, new(big.Int).SetUint64(q)).Uint64()
		}
		return res
	}
	cases := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(ctx.qBig, big.NewInt(1)),
		new(big.Int).Set(ctx.qHalf),
		new(big.Int).Add(ctx.qHalf, big.NewInt(1)),
	}
	// Each prime's own boundary: x = q_l − 1 is the largest single-lane
	// residue, and x = q_l wraps lane l to zero while the others see q_l.
	for _, q := range ctx.Params.Qi {
		cases = append(cases,
			new(big.Int).SetUint64(q-1),
			new(big.Int).SetUint64(q),
			new(big.Int).Mul(new(big.Int).SetUint64(q), new(big.Int).SetUint64(q)),
		)
	}
	rng := benchrand.New(123)
	buf := make([]byte, 16)
	for i := 0; i < 32; i++ {
		if _, err := rng.Read(buf); err != nil {
			t.Fatal(err)
		}
		x := new(big.Int).SetBytes(buf)
		cases = append(cases, x.Mod(x, ctx.qBig))
	}
	for i, x := range cases {
		if got := reconstruct(residues(x)); got.Cmp(x) != 0 {
			t.Fatalf("case %d: reconstructed %v, want %v", i, got, x)
		}
	}
}
