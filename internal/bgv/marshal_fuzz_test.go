package bgv

// Fuzz and hardening tests for the ciphertext wire format: arbitrary
// (corrupt, truncated, oversized) input must produce an error, never a panic
// or an out-of-range coefficient, and unmarshaling must not alias the
// caller's buffer.

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"testing"
)

func fuzzSeedCiphertext(tb testing.TB) []byte {
	tb.Helper()
	c, kp := testCtx(tb)
	ct, err := c.EncryptValues(rand.Reader, kp.PK, []uint64{1, 2, 3})
	if err != nil {
		tb.Fatal(err)
	}
	data, err := ct.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func FuzzCiphertextUnmarshal(f *testing.F) {
	valid := fuzzSeedCiphertext(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(append(append([]byte(nil), valid...), 1))
	// A plausible header with out-of-range coefficients.
	bad := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(bad[4:], ^uint64(0))
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		var ct Ciphertext
		if err := ct.UnmarshalBinary(data); err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		// Accepted input must be internally consistent and re-marshal to the
		// exact same bytes (the format has a unique encoding).
		if len(ct.C0) != len(ct.C1) {
			t.Fatal("accepted ciphertext with mismatched polynomials")
		}
		for _, p := range []Poly{ct.C0, ct.C1} {
			for _, v := range p {
				if v >= Q {
					t.Fatalf("accepted out-of-range coefficient %d", v)
				}
			}
		}
		out, err := ct.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted ciphertext failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("re-marshal differs from accepted input")
		}
	})
}

// TestUnmarshalDoesNotAliasInput mutates the input buffer after a successful
// unmarshal and checks the ciphertext is unaffected (and vice versa for
// marshal output).
func TestUnmarshalDoesNotAliasInput(t *testing.T) {
	data := fuzzSeedCiphertext(t)
	var ct Ciphertext
	if err := ct.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	before := append(Poly(nil), ct.C0...)
	for i := range data {
		data[i] = 0
	}
	if !polyEq(before, ct.C0) {
		t.Fatal("ciphertext aliases the unmarshal input buffer")
	}
	out, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	out[4] ^= 0xff
	if ct.C0[0] != before[0] {
		t.Fatal("ciphertext aliases its marshal output buffer")
	}
}

// TestUnmarshalRejectsCorruption spot-checks the error paths the fuzzer
// explores, so they are exercised in every ordinary test run too.
func TestUnmarshalRejectsCorruption(t *testing.T) {
	data := fuzzSeedCiphertext(t)
	cases := map[string][]byte{
		"empty":        {},
		"short header": data[:3],
		"truncated":    data[:len(data)-1],
		"trailing":     append(append([]byte(nil), data...), 0),
		"degree zero":  {0, 0, 0, 0},
	}
	nonPow2 := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(nonPow2[:4], 1000)
	cases["degree not a power of two"] = nonPow2
	outOfRange := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(outOfRange[4:], Q)
	cases["coefficient = Q"] = outOfRange
	for name, in := range cases {
		var ct Ciphertext
		if err := ct.UnmarshalBinary(in); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
