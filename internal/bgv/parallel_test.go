package bgv

// Determinism tests: the batched/parallel formulations must be bit-identical
// to their sequential counterparts at any worker count, because all ring
// arithmetic is exact mod Q.

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"runtime"
	"testing"
)

// polyEq compares two polynomials coefficient-wise.
func polyEq(a, b Poly) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMulMatchesTextbookFormulation recomputes a multiplication with the
// original per-product polyMul formulation and asserts the evaluation-domain
// version produces the exact same ciphertext.
func TestMulMatchesTextbookFormulation(t *testing.T) {
	ctx, err := NewContext(TestParams)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := ctx.GenerateKeys(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctx.EncryptValues(rand.Reader, kp.PK, []uint64{5, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.EncryptValues(rand.Reader, kp.PK, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}

	// Textbook reference: tensor via polyMul, relinearize digit by digit in
	// the coefficient domain (the pre-batching implementation).
	rlk := kp.RLK
	d0 := ctx.polyMul(a.C0, b.C0)
	d1 := ctx.polyAdd(ctx.polyMul(a.C0, b.C1), ctx.polyMul(a.C1, b.C0))
	d2 := ctx.polyMul(a.C1, b.C1)
	mask := uint64(1<<relinLogBase) - 1
	c0, c1 := d0, d1
	rem := append(Poly(nil), d2...)
	for i := 0; i < len(rlk.A); i++ {
		digit := ctx.newPoly()
		for j := range rem {
			digit[j] = rem[j] & mask
			rem[j] >>= relinLogBase
		}
		c0 = ctx.polyAdd(c0, ctx.polyMul(digit, rlk.B[i]))
		c1 = ctx.polyAdd(c1, ctx.polyMul(digit, rlk.A[i]))
	}

	for _, workers := range []int{1, 4} {
		old := runtime.GOMAXPROCS(workers)
		got, err := ctx.Mul(a, b, rlk)
		runtime.GOMAXPROCS(old)
		if err != nil {
			t.Fatal(err)
		}
		if !polyEq(got.C0, c0) || !polyEq(got.C1, c1) {
			t.Fatalf("workers=%d: batched Mul differs from textbook formulation", workers)
		}
	}
}

// TestSumChunkedBitIdentical compares the chunked parallel Sum against the
// sequential fold on an odd-sized slice.
func TestSumChunkedBitIdentical(t *testing.T) {
	ctx, err := NewContext(TestParams)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := ctx.GenerateKeys(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cts := make([]*Ciphertext, 2*minParallelSum+5)
	for i := range cts {
		if cts[i], err = ctx.EncryptValues(rand.Reader, kp.PK, []uint64{uint64(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := ctx.sumRange(cts)
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(4)
	par, err := ctx.Sum(cts)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if !polyEq(seq.C0, par.C0) || !polyEq(seq.C1, par.C1) {
		t.Fatal("chunked parallel Sum differs from sequential fold")
	}
}

// TestEncryptDeterministicReader: with a fixed randomness stream the batched
// encryption is a pure function — two runs give byte-identical ciphertexts.
func TestEncryptDeterministicReader(t *testing.T) {
	ctx, err := NewContext(TestParams)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := ctx.GenerateKeys(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ctx.Encode([]uint64{9, 8, 7})
	if err != nil {
		t.Fatal(err)
	}
	enc := func() *Ciphertext {
		ct, err := ctx.Encrypt(newCounterReader(), kp.PK, m)
		if err != nil {
			t.Fatal(err)
		}
		return ct
	}
	a, b := enc(), enc()
	if !polyEq(a.C0, b.C0) || !polyEq(a.C1, b.C1) {
		t.Fatal("encryption with a fixed randomness stream is not deterministic")
	}
}

// counterReader is a deterministic byte stream (not thread-safe on purpose:
// Encrypt samples its randomness sequentially before any parallel work).
type counterReader struct {
	n   uint64
	buf bytes.Buffer
}

func newCounterReader() *counterReader { return &counterReader{} }

func (c *counterReader) Read(p []byte) (int, error) {
	for c.buf.Len() < len(p) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], c.n*0x9e3779b97f4a7c15+7)
		c.n++
		c.buf.Write(b[:])
	}
	return c.buf.Read(p)
}
