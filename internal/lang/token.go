// Package lang implements Arboretum's query language (Section 4.1,
// Figure 2): a small imperative language, loosely based on Fuzzi, with
// loops, conditionals, arrays, the standard arithmetic and logical
// operators, and built-in high-level operators (sum, max, em, laplace, …)
// that the planner later expands into concrete implementations.
//
// Analysts write queries as if the whole database existed on one machine:
// db[i][j] is participant i's j-th input, output(e) returns a result, and
// declassify(e) marks a differentially private value as safe to release.
//
// One deviation from Figure 2's abstract grammar: conditionals close with an
// explicit "endif" (the paper's figure leaves statement-sequence boundaries
// implicit; a concrete syntax needs the terminator).
package lang

import "fmt"

// Token is a lexical token kind.
type Token int

// Token kinds.
const (
	ILLEGAL Token = iota
	EOF

	IDENT // x, db, aggr
	INT   // 123
	FLOAT // 0.5
	TRUE
	FALSE

	ASSIGN // =
	SEMI   // ;
	COMMA  // ,
	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]

	ADD // +
	SUB // -
	MUL // *
	QUO // /

	LAND // &&
	LOR  // ||
	NOT  // !

	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=
	EQL // ==
	NEQ // !=

	FOR
	TO
	DO
	ENDFOR
	IF
	THEN
	ELSE
	ENDIF
)

var tokenNames = map[Token]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT",
	TRUE: "true", FALSE: "false",
	ASSIGN: "=", SEMI: ";", COMMA: ",", LPAREN: "(", RPAREN: ")",
	LBRACK: "[", RBRACK: "]",
	ADD: "+", SUB: "-", MUL: "*", QUO: "/",
	LAND: "&&", LOR: "||", NOT: "!",
	LSS: "<", LEQ: "<=", GTR: ">", GEQ: ">=", EQL: "==", NEQ: "!=",
	FOR: "for", TO: "to", DO: "do", ENDFOR: "endfor",
	IF: "if", THEN: "then", ELSE: "else", ENDIF: "endif",
}

func (t Token) String() string {
	if s, ok := tokenNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Token(%d)", int(t))
}

var keywords = map[string]Token{
	"for": FOR, "to": TO, "do": DO, "endfor": ENDFOR,
	"if": IF, "then": THEN, "else": ELSE, "endif": ENDIF,
	"true": TRUE, "false": FALSE,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Precedence returns the binding strength of a binary operator (higher binds
// tighter); 0 means not a binary operator.
func (t Token) Precedence() int {
	switch t {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQL, NEQ, LSS, LEQ, GTR, GEQ:
		return 3
	case ADD, SUB:
		return 4
	case MUL, QUO:
		return 5
	}
	return 0
}
