package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// lexer turns query source into tokens.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

type lexeme struct {
	tok Token
	lit string
	pos Pos
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("%v: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (lexeme, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return lexeme{}, err
	}
	pos := Pos{l.line, l.col}
	if l.pos >= len(l.src) {
		return lexeme{tok: EOF, pos: pos}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var sb strings.Builder
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			sb.WriteRune(l.advance())
		}
		word := sb.String()
		if kw, ok := keywords[word]; ok {
			return lexeme{tok: kw, lit: word, pos: pos}, nil
		}
		return lexeme{tok: IDENT, lit: word, pos: pos}, nil
	case unicode.IsDigit(r):
		var sb strings.Builder
		isFloat := false
		for l.pos < len(l.src) && (unicode.IsDigit(l.peek()) || l.peek() == '.') {
			if l.peek() == '.' {
				if isFloat || !unicode.IsDigit(l.peek2()) {
					break
				}
				isFloat = true
			}
			sb.WriteRune(l.advance())
		}
		tok := INT
		if isFloat {
			tok = FLOAT
		}
		return lexeme{tok: tok, lit: sb.String(), pos: pos}, nil
	}
	l.advance()
	two := func(second rune, with, without Token) (lexeme, error) {
		if l.peek() == second {
			l.advance()
			return lexeme{tok: with, lit: tokenNames[with], pos: pos}, nil
		}
		if without == ILLEGAL {
			return lexeme{}, fmt.Errorf("%v: unexpected character %q", pos, string(r))
		}
		return lexeme{tok: without, lit: tokenNames[without], pos: pos}, nil
	}
	switch r {
	case ';':
		return lexeme{tok: SEMI, lit: ";", pos: pos}, nil
	case ',':
		return lexeme{tok: COMMA, lit: ",", pos: pos}, nil
	case '(':
		return lexeme{tok: LPAREN, lit: "(", pos: pos}, nil
	case ')':
		return lexeme{tok: RPAREN, lit: ")", pos: pos}, nil
	case '[':
		return lexeme{tok: LBRACK, lit: "[", pos: pos}, nil
	case ']':
		return lexeme{tok: RBRACK, lit: "]", pos: pos}, nil
	case '+':
		return lexeme{tok: ADD, lit: "+", pos: pos}, nil
	case '-':
		return lexeme{tok: SUB, lit: "-", pos: pos}, nil
	case '*':
		return lexeme{tok: MUL, lit: "*", pos: pos}, nil
	case '/':
		return lexeme{tok: QUO, lit: "/", pos: pos}, nil
	case '&':
		return two('&', LAND, ILLEGAL)
	case '|':
		return two('|', LOR, ILLEGAL)
	case '<':
		return two('=', LEQ, LSS)
	case '>':
		return two('=', GEQ, GTR)
	case '=':
		return two('=', EQL, ASSIGN)
	case '!':
		return two('=', NEQ, NOT)
	}
	return lexeme{}, fmt.Errorf("%v: unexpected character %q", pos, string(r))
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]lexeme, error) {
	l := newLexer(src)
	var out []lexeme
	for {
		lx, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, lx)
		if lx.tok == EOF {
			return out, nil
		}
	}
}
