package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

// The paper's running example (Figure 3).
const top1Src = `
aggr = sum(db);
result = em(aggr);
output(result);
`

func TestParseTop1(t *testing.T) {
	prog, err := Parse(top1Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 3 {
		t.Fatalf("got %d statements", len(prog.Stmts))
	}
	a, ok := prog.Stmts[0].(*AssignStmt)
	if !ok || a.Name != "aggr" {
		t.Fatalf("stmt 0 = %#v", prog.Stmts[0])
	}
	call, ok := a.Value.(*CallExpr)
	if !ok || call.Func != "sum" {
		t.Fatalf("stmt 0 value = %#v", a.Value)
	}
	if _, ok := prog.Stmts[2].(*ExprStmt); !ok {
		t.Fatalf("stmt 2 = %#v", prog.Stmts[2])
	}
	if LineCount(prog) != 3 {
		t.Errorf("LineCount = %d, want 3", LineCount(prog))
	}
}

func TestParseForLoop(t *testing.T) {
	src := `
s = 0;
for i = 0 to 9 do
  s = s + x[i];
endfor;
output(s);
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := prog.Stmts[1].(*ForStmt)
	if !ok {
		t.Fatalf("stmt 1 = %#v", prog.Stmts[1])
	}
	if f.Var != "i" || len(f.Body) != 1 {
		t.Fatalf("for = %+v", f)
	}
}

func TestParseIfElse(t *testing.T) {
	src := `
if x > 3 && y <= 2 then
  z = 1;
else
  z = 0;
endif;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs, ok := prog.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 0 = %#v", prog.Stmts[0])
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Fatalf("if branches: then=%d else=%d", len(ifs.Then), len(ifs.Else))
	}
	b, ok := ifs.Cond.(*BinaryExpr)
	if !ok || b.Op != LAND {
		t.Fatalf("cond = %#v", ifs.Cond)
	}
}

func TestParseIfNoElse(t *testing.T) {
	prog, err := Parse(`if x == 1 then y = 2; endif;`)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Stmts[0].(*IfStmt)
	if ifs.Else != nil {
		t.Fatal("expected nil else branch")
	}
}

func TestParseIndexedAssignAndDB(t *testing.T) {
	prog, err := Parse(`es[i] = db[i][j] * 2;`)
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Stmts[0].(*AssignStmt)
	if a.Index == nil {
		t.Fatal("expected indexed assignment")
	}
	mul := a.Value.(*BinaryExpr)
	inner := mul.X.(*IndexExpr)
	if _, ok := inner.X.(*IndexExpr); !ok {
		t.Fatalf("expected nested index for db[i][j], got %#v", inner.X)
	}
}

func TestPrecedence(t *testing.T) {
	prog, err := Parse(`x = 1 + 2 * 3;`)
	if err != nil {
		t.Fatal(err)
	}
	v := prog.Stmts[0].(*AssignStmt).Value.(*BinaryExpr)
	if v.Op != ADD {
		t.Fatalf("top op = %v, want +", v.Op)
	}
	if y, ok := v.Y.(*BinaryExpr); !ok || y.Op != MUL {
		t.Fatalf("rhs = %#v, want 2*3", v.Y)
	}
	// Comparison binds looser than arithmetic.
	prog2 := MustParse(`b = a + 1 < c * 2;`)
	v2 := prog2.Stmts[0].(*AssignStmt).Value.(*BinaryExpr)
	if v2.Op != LSS {
		t.Fatalf("top op = %v, want <", v2.Op)
	}
	// Logical or binds loosest.
	prog3 := MustParse(`b = x < 1 || y > 2 && z == 3;`)
	v3 := prog3.Stmts[0].(*AssignStmt).Value.(*BinaryExpr)
	if v3.Op != LOR {
		t.Fatalf("top op = %v, want ||", v3.Op)
	}
}

func TestUnaryOperators(t *testing.T) {
	prog := MustParse(`x = -y + !b;`)
	v := prog.Stmts[0].(*AssignStmt).Value.(*BinaryExpr)
	if _, ok := v.X.(*UnaryExpr); !ok {
		t.Fatalf("lhs = %#v", v.X)
	}
	if u, ok := v.Y.(*UnaryExpr); !ok || u.Op != NOT {
		t.Fatalf("rhs = %#v", v.Y)
	}
}

func TestFloatAndBoolLiterals(t *testing.T) {
	prog := MustParse(`x = 0.5; b = true; c = false;`)
	if f, ok := prog.Stmts[0].(*AssignStmt).Value.(*FloatLit); !ok || f.Value != 0.5 {
		t.Fatalf("float lit = %#v", prog.Stmts[0].(*AssignStmt).Value)
	}
	if b, ok := prog.Stmts[1].(*AssignStmt).Value.(*BoolLit); !ok || !b.Value {
		t.Fatal("true lit wrong")
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
x = 1; /* block
comment */ y = 2;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 2 {
		t.Fatalf("got %d statements", len(prog.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`x = ;`,
		`for i = 0 to 3 do x = 1;`,  // missing endfor
		`if x then y = 1;`,          // missing endif
		`x = (1 + 2;`,               // unbalanced paren
		`x = a[1;`,                  // unbalanced bracket
		`x = 1 @ 2;`,                // illegal char
		`sum();`,                    // wrong arity for builtin
		`em(a, b, c);`,              // too many args
		`x = /* unterminated`,       // unterminated comment
		`x = 99999999999999999999;`, // integer overflow
		`x = 1 y = 2;`,              // missing separator
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse(`x = ;`)
}

// Figure 4 left: the full exponentiation-based em written in the language.
func TestParseEMExponentiateProgram(t *testing.T) {
	src := `
L = max(s) - 11;
for i = 0 to len(s) - 1 do
  if s[i] >= L then
    es[i] = exp((s[i] - L) * eps / (2 * sens));
  else
    es[i] = 0;
  endif;
endfor;
r = sampleUniform(sum(es));
cum[0] = 0;
for i = 0 to len(s) - 1 do
  cum[i + 1] = cum[i] + es[i];
  if r >= cum[i] && r < cum[i + 1] then
    result = declassify(i);
  endif;
endfor;
output(result);
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 6 {
		t.Fatalf("got %d top-level statements", len(prog.Stmts))
	}
}

// Round-trip: Format output re-parses to the same formatted text.
func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		top1Src,
		`for i = 0 to 9 do if x[i] > m then m = x[i]; endif; endfor; output(declassify(m));`,
		`x = (1 + 2) * 3 - -4; y = a && (b || !c);`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		f1 := Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, f1)
		}
		f2 := Format(p2)
		if f1 != f2 {
			t.Errorf("format not stable:\n%s\nvs\n%s", f1, f2)
		}
	}
}

// Property: formatting a randomly-shaped arithmetic expression and reparsing
// preserves the formatted form (idempotent round-trip).
func TestQuickFormatIdempotent(t *testing.T) {
	ops := []string{"+", "-", "*", "/"}
	f := func(a, b, c uint8, op1, op2 uint8) bool {
		src := "x = " +
			"(" + itoa(int(a)) + " " + ops[op1%4] + " " + itoa(int(b)) + ")" +
			" " + ops[op2%4] + " " + itoa(int(c)) + ";"
		p1, err := Parse(src)
		if err != nil {
			return false
		}
		f1 := Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			return false
		}
		return Format(p2) == f1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func TestWalkAndWalkExprs(t *testing.T) {
	prog := MustParse(`
for i = 0 to 3 do
  if x > 1 then y = em(s); endif;
endfor;
`)
	var stmts, exprs int
	Walk(prog.Stmts, func(Stmt) { stmts++ })
	WalkExprs(prog.Stmts, func(Expr) { exprs++ })
	if stmts != 3 { // for, if, assign
		t.Errorf("Walk visited %d statements, want 3", stmts)
	}
	if exprs == 0 {
		t.Error("WalkExprs visited nothing")
	}
}

func TestLineCountMatchesPaperStyle(t *testing.T) {
	// top1 is 3 lines in Table 2.
	if got := LineCount(MustParse(top1Src)); got != 3 {
		t.Errorf("top1 lines = %d, want 3", got)
	}
}

func TestFormatExprCoverage(t *testing.T) {
	prog := MustParse(`x = a[i] + f(1, 2.5, true) - -3;`)
	s := Format(prog)
	for _, want := range []string{"a[i]", "f(1, 2.5, true)", "-3"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted output missing %q:\n%s", want, s)
		}
	}
}

// Lexer coverage: every operator and delimiter tokenizes, including the
// two-character forms.
func TestLexerTokenCoverage(t *testing.T) {
	src := `a = (1 + 2 - 3) * 4 / 5;
b = a <= 1 || a >= 2 && a < 3;
c = a > 1;
d = a == 1;
e = a != 1;
f = !true;
g[0] = 2.75;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 7 {
		t.Fatalf("got %d statements", len(prog.Stmts))
	}
}

func TestLexerRejectsIllegal(t *testing.T) {
	for _, src := range []string{`x = 1 # 2;`, `x = 'a';`, `x = 1 & 2;`, `x = 1 | 2;`} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted illegal token", src)
		}
	}
}

func TestDeepNesting(t *testing.T) {
	src := `
total = 0;
for i = 0 to 2 do
  for j = 0 to 2 do
    if i == j then
      total = total + 1;
    else
      if i > j then
        total = total + 10;
      endif;
    endif;
  endfor;
endfor;
output(total);`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var depth, maxDepth int
	var walk func(ss []Stmt, d int)
	walk = func(ss []Stmt, d int) {
		if d > maxDepth {
			maxDepth = d
		}
		for _, s := range ss {
			switch st := s.(type) {
			case *ForStmt:
				walk(st.Body, d+1)
			case *IfStmt:
				walk(st.Then, d+1)
				walk(st.Else, d+1)
			}
		}
	}
	walk(prog.Stmts, 0)
	_ = depth
	if maxDepth < 3 {
		t.Errorf("nesting depth = %d, want ≥ 3", maxDepth)
	}
}

func TestPositionsPointAtErrors(t *testing.T) {
	_, err := Parse("x = 1;\ny = %;\n")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q should reference line 2", err)
	}
}
