package lang

import (
	"fmt"
	"strconv"
)

// Parse parses query source into a Program.
func Parse(src string) (*Program, error) {
	lexemes, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{lexemes: lexemes}
	stmts, err := p.stmtList(EOF)
	if err != nil {
		return nil, err
	}
	if p.cur().tok != EOF {
		return nil, p.errorf("unexpected %v after program end", p.cur().tok)
	}
	return &Program{Stmts: stmts}, nil
}

// MustParse parses and panics on error; for compile-time-known queries.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lexemes []lexeme
	pos     int
}

func (p *parser) cur() lexeme { return p.lexemes[p.pos] }

func (p *parser) advance() lexeme {
	lx := p.lexemes[p.pos]
	if lx.tok != EOF {
		p.pos++
	}
	return lx
}

func (p *parser) expect(tok Token) (lexeme, error) {
	if p.cur().tok != tok {
		return lexeme{}, p.errorf("expected %v, found %v", tok, p.cur().tok)
	}
	return p.advance(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%v: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// stmtList parses statements until one of the closing tokens (which is not
// consumed). Semicolons separate statements; trailing semicolons are fine.
func (p *parser) stmtList(closers ...Token) ([]Stmt, error) {
	isCloser := func(t Token) bool {
		for _, c := range closers {
			if t == c {
				return true
			}
		}
		return false
	}
	var stmts []Stmt
	for {
		for p.cur().tok == SEMI {
			p.advance()
		}
		if isCloser(p.cur().tok) {
			return stmts, nil
		}
		if p.cur().tok == EOF {
			return nil, p.errorf("unexpected end of input (missing %v?)", closers[0])
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		// A statement is followed by a separator or a closer.
		if p.cur().tok != SEMI && !isCloser(p.cur().tok) && p.cur().tok != EOF {
			return nil, p.errorf("expected ';' after statement, found %v", p.cur().tok)
		}
	}
}

func (p *parser) stmt() (Stmt, error) {
	switch p.cur().tok {
	case FOR:
		return p.forStmt()
	case IF:
		return p.ifStmt()
	case IDENT:
		return p.identStmt()
	default:
		// Bare expression statement (rare; output(...) goes through IDENT).
		pos := p.cur().pos
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: x}, nil
	}
}

// identStmt disambiguates assignment, indexed assignment, and expression
// statements that start with an identifier (calls).
func (p *parser) identStmt() (Stmt, error) {
	pos := p.cur().pos
	name := p.advance().lit
	switch p.cur().tok {
	case ASSIGN:
		p.advance()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, Name: name, Value: v}, nil
	case LBRACK:
		p.advance()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		if p.cur().tok == ASSIGN {
			p.advance()
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: pos, Name: name, Index: idx, Value: v}, nil
		}
		// Not an assignment: it was an index expression; keep parsing it.
		var x Expr = &IndexExpr{X: &Ident{NamePos: pos, Name: name}, Index: idx}
		x, err = p.continueExpr(x, 0)
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: x}, nil
	case LPAREN:
		call, err := p.callExpr(pos, name)
		if err != nil {
			return nil, err
		}
		x, err := p.continueExpr(call, 0)
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: x}, nil
	default:
		x, err := p.continueExpr(&Ident{NamePos: pos, Name: name}, 0)
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: x}, nil
	}
}

func (p *parser) forStmt() (Stmt, error) {
	pos := p.cur().pos
	p.advance() // for
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	from, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TO); err != nil {
		return nil, err
	}
	to, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(DO); err != nil {
		return nil, err
	}
	body, err := p.stmtList(ENDFOR)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ENDFOR); err != nil {
		return nil, err
	}
	return &ForStmt{Pos: pos, Var: v.lit, From: from, To: to, Body: body}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	pos := p.cur().pos
	p.advance() // if
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(THEN); err != nil {
		return nil, err
	}
	then, err := p.stmtList(ELSE, ENDIF)
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.cur().tok == ELSE {
		p.advance()
		els, err = p.stmtList(ENDIF)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(ENDIF); err != nil {
		return nil, err
	}
	return &IfStmt{Pos: pos, Cond: cond, Then: then, Else: els}, nil
}

// expr parses a full expression with precedence climbing.
func (p *parser) expr() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	return p.continueExpr(x, 0)
}

// continueExpr extends a parsed left operand with binary operators of
// at least the given precedence.
func (p *parser) continueExpr(x Expr, minPrec int) (Expr, error) {
	for {
		op := p.cur().tok
		prec := op.Precedence()
		if prec == 0 || prec < minPrec {
			return x, nil
		}
		p.advance()
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		// Bind tighter operators on the right first.
		y, err = p.continueExpr(y, prec+1)
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().tok {
	case NOT, SUB:
		lx := p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{OpPos: lx.pos, Op: lx.tok, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	lx := p.cur()
	switch lx.tok {
	case INT:
		p.advance()
		v, err := strconv.ParseInt(lx.lit, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", lx.lit)
		}
		return p.suffix(&IntLit{LitPos: lx.pos, Value: v})
	case FLOAT:
		p.advance()
		v, err := strconv.ParseFloat(lx.lit, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %q", lx.lit)
		}
		return p.suffix(&FloatLit{LitPos: lx.pos, Value: v})
	case TRUE:
		p.advance()
		return p.suffix(&BoolLit{LitPos: lx.pos, Value: true})
	case FALSE:
		p.advance()
		return p.suffix(&BoolLit{LitPos: lx.pos, Value: false})
	case LPAREN:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return p.suffix(x)
	case IDENT:
		p.advance()
		if p.cur().tok == LPAREN {
			call, err := p.callExpr(lx.pos, lx.lit)
			if err != nil {
				return nil, err
			}
			return p.suffix(call)
		}
		return p.suffix(&Ident{NamePos: lx.pos, Name: lx.lit})
	default:
		return nil, p.errorf("unexpected %v in expression", lx.tok)
	}
}

// suffix applies indexing suffixes: x[i][j]...
func (p *parser) suffix(x Expr) (Expr, error) {
	for p.cur().tok == LBRACK {
		p.advance()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		x = &IndexExpr{X: x, Index: idx}
	}
	return x, nil
}

func (p *parser) callExpr(pos Pos, name string) (Expr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var args []Expr
	if p.cur().tok != RPAREN {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur().tok != COMMA {
				break
			}
			p.advance()
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if b, ok := Builtins[name]; ok {
		if len(args) < b.MinArgs || len(args) > b.MaxArgs {
			return nil, fmt.Errorf("%v: %s takes %d..%d arguments, got %d",
				pos, name, b.MinArgs, b.MaxArgs, len(args))
		}
	}
	return &CallExpr{NamePos: pos, Func: name, Args: args}, nil
}
