package lang

// Program is a parsed query: a statement sequence.
type Program struct {
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	Position() Pos
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Position() Pos
}

// AssignStmt is `var = exp` or `var[exp] = exp` (Index non-nil).
type AssignStmt struct {
	Pos   Pos
	Name  string
	Index Expr // nil for plain assignment
	Value Expr
}

// ExprStmt is a bare expression statement, e.g. output(x).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// ForStmt is `for var = from to to do body endfor`. Bounds are inclusive.
type ForStmt struct {
	Pos      Pos
	Var      string
	From, To Expr
	Body     []Stmt
}

// IfStmt is `if cond then then [else else] endif`.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
}

func (*AssignStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*ForStmt) stmtNode()    {}
func (*IfStmt) stmtNode()     {}

// Position implements Stmt.
func (s *AssignStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *ExprStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *ForStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *IfStmt) Position() Pos { return s.Pos }

// Ident is a variable reference.
type Ident struct {
	NamePos Pos
	Name    string
}

// IndexExpr is x[i]; db[i][j] nests two of these.
type IndexExpr struct {
	X     Expr
	Index Expr
}

// CallExpr invokes a built-in function.
type CallExpr struct {
	NamePos Pos
	Func    string
	Args    []Expr
}

// BinaryExpr is `x op y`.
type BinaryExpr struct {
	Op   Token
	X, Y Expr
}

// UnaryExpr is `!x` or `-x`.
type UnaryExpr struct {
	OpPos Pos
	Op    Token
	X     Expr
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos Pos
	Value  int64
}

// FloatLit is a fractional literal (becomes fixed-point downstream).
type FloatLit struct {
	LitPos Pos
	Value  float64
}

// BoolLit is true/false.
type BoolLit struct {
	LitPos Pos
	Value  bool
}

func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}

// Position implements Expr.
func (e *Ident) Position() Pos { return e.NamePos }

// Position implements Expr.
func (e *IndexExpr) Position() Pos { return e.X.Position() }

// Position implements Expr.
func (e *CallExpr) Position() Pos { return e.NamePos }

// Position implements Expr.
func (e *BinaryExpr) Position() Pos { return e.X.Position() }

// Position implements Expr.
func (e *UnaryExpr) Position() Pos { return e.OpPos }

// Position implements Expr.
func (e *IntLit) Position() Pos { return e.LitPos }

// Position implements Expr.
func (e *FloatLit) Position() Pos { return e.LitPos }

// Position implements Expr.
func (e *BoolLit) Position() Pos { return e.LitPos }

// Builtins is the set of built-in functions of Section 4.1 plus the helpers
// the evaluation queries use. The planner expands the high-level operators
// (sum, max, argmax, em, topk) into concrete implementations.
var Builtins = map[string]struct {
	MinArgs, MaxArgs int
}{
	"sum":           {1, 1}, // aggregate an array (or db) element-wise
	"max":           {1, 1},
	"argmax":        {1, 1},
	"em":            {1, 2}, // exponential mechanism: em(scores[, epsilon])
	"topk":          {2, 3}, // topk(scores, k[, epsilon])
	"laplace":       {1, 2}, // laplace(value[, epsilon])
	"gumbel":        {1, 1}, // explicit Gumbel noise, scale argument
	"exp":           {1, 1},
	"log2":          {1, 1},
	"clip":          {3, 3}, // clip(x, lo, hi)
	"sampleUniform": {1, 1}, // secrecy of the sample, rate argument
	"len":           {1, 1},
	"output":        {1, 1},
	"declassify":    {1, 1},
	"abs":           {1, 1},
	"sqrt":          {1, 1},
	"array":         {1, 1}, // array(n): fresh zero array of length n
}
