package lang

import (
	"fmt"
	"strings"
)

// Format pretty-prints a program back to query-language source.
func Format(p *Program) string {
	var sb strings.Builder
	printStmts(&sb, p.Stmts, 0)
	return sb.String()
}

// LineCount returns the number of source lines of the formatted program;
// Table 2 reports this per query.
func LineCount(p *Program) int {
	s := strings.TrimRight(Format(p), "\n")
	if s == "" {
		return 0
	}
	return strings.Count(s, "\n") + 1
}

func printStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		printStmt(sb, s, depth)
	}
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	switch st := s.(type) {
	case *AssignStmt:
		if st.Index != nil {
			fmt.Fprintf(sb, "%s[%s] = %s;\n", st.Name, FormatExpr(st.Index), FormatExpr(st.Value))
		} else {
			fmt.Fprintf(sb, "%s = %s;\n", st.Name, FormatExpr(st.Value))
		}
	case *ExprStmt:
		fmt.Fprintf(sb, "%s;\n", FormatExpr(st.X))
	case *ForStmt:
		fmt.Fprintf(sb, "for %s = %s to %s do\n", st.Var, FormatExpr(st.From), FormatExpr(st.To))
		printStmts(sb, st.Body, depth+1)
		indent(sb, depth)
		sb.WriteString("endfor;\n")
	case *IfStmt:
		fmt.Fprintf(sb, "if %s then\n", FormatExpr(st.Cond))
		printStmts(sb, st.Then, depth+1)
		if st.Else != nil {
			indent(sb, depth)
			sb.WriteString("else\n")
			printStmts(sb, st.Else, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("endif;\n")
	default:
		fmt.Fprintf(sb, "/* unknown statement %T */\n", s)
	}
}

// FormatExpr renders one expression.
func FormatExpr(e Expr) string {
	switch ex := e.(type) {
	case *Ident:
		return ex.Name
	case *IntLit:
		return fmt.Sprintf("%d", ex.Value)
	case *FloatLit:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", ex.Value), "0"), ".")
	case *BoolLit:
		if ex.Value {
			return "true"
		}
		return "false"
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", FormatExpr(ex.X), FormatExpr(ex.Index))
	case *CallExpr:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = FormatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", ex.Func, strings.Join(args, ", "))
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", ex.Op, maybeParen(ex.X))
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", maybeParen(ex.X), ex.Op, maybeParen(ex.Y))
	default:
		return fmt.Sprintf("/* unknown expr %T */", e)
	}
}

// maybeParen wraps nested binary expressions so the printed form re-parses
// with identical structure.
func maybeParen(e Expr) string {
	if _, ok := e.(*BinaryExpr); ok {
		return "(" + FormatExpr(e) + ")"
	}
	return FormatExpr(e)
}

// Walk calls fn for every statement (pre-order), descending into bodies.
func Walk(stmts []Stmt, fn func(Stmt)) {
	for _, s := range stmts {
		fn(s)
		switch st := s.(type) {
		case *ForStmt:
			Walk(st.Body, fn)
		case *IfStmt:
			Walk(st.Then, fn)
			Walk(st.Else, fn)
		}
	}
}

// WalkExprs calls fn for every expression in the statement list (pre-order).
func WalkExprs(stmts []Stmt, fn func(Expr)) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch ex := e.(type) {
		case *IndexExpr:
			walkExpr(ex.X)
			walkExpr(ex.Index)
		case *CallExpr:
			for _, a := range ex.Args {
				walkExpr(a)
			}
		case *BinaryExpr:
			walkExpr(ex.X)
			walkExpr(ex.Y)
		case *UnaryExpr:
			walkExpr(ex.X)
		}
	}
	Walk(stmts, func(s Stmt) {
		switch st := s.(type) {
		case *AssignStmt:
			walkExpr(st.Index)
			walkExpr(st.Value)
		case *ExprStmt:
			walkExpr(st.X)
		case *ForStmt:
			walkExpr(st.From)
			walkExpr(st.To)
		case *IfStmt:
			walkExpr(st.Cond)
		}
	})
}
