package runtime

import (
	"strings"
	"testing"
)

// Error-path coverage for the interpreter: programs that certify but hit
// runtime constraints must fail with actionable errors, not panic.
func TestInterpreterErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			"index out of range",
			`aggr = sum(db);
x = laplace(aggr[99], 1.0);
output(declassify(x));`,
			"out of range",
		},
		{
			"db outside sum",
			`x = db;
output(1);`,
			"db can only appear",
		},
		{
			"division by zero",
			`x = 1 / 0;
output(x);`,
			"division by zero",
		},
		{
			"log2 of zero",
			`x = log2(0);
output(x);`,
			"log2",
		},
		{
			"array builtin bounds",
			`a = array(0 - 5);
output(1);`,
			"array size",
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			d := smallDeployment(t, 64, 4, func(cfg *Config) { cfg.BudgetEpsilon = 1e9 })
			_, err := d.Run(c.src, RunOptions{})
			if err == nil {
				t.Fatalf("%s: no error", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("%s: error %q does not mention %q", c.name, err, c.wantErr)
			}
		})
	}
}

// Programs rejected before execution: certification and type errors.
func TestRunRejectsBadPrograms(t *testing.T) {
	d := smallDeployment(t, 64, 4)
	bad := map[string]string{
		"syntax":        `x = ;`,
		"type":          `x = true + 1; output(x);`,
		"privacy":       `aggr = sum(db); output(aggr[0]);`,
		"no output":     `aggr = sum(db);`,
		"undefined var": `output(nosuchvar);`,
	}
	for name, src := range bad {
		if _, err := d.Run(src, RunOptions{}); err == nil {
			t.Errorf("%s program executed", name)
		}
	}
}

// Loops, conditionals, clip/abs/exp/sqrt/len/gumbel on public values: the
// language surface that runs entirely outside the crypto.
func TestPublicComputationSurface(t *testing.T) {
	d := smallDeployment(t, 64, 2, func(cfg *Config) { cfg.BudgetEpsilon = 1e9 })
	src := `aggr = sum(db);
n = laplace(aggr[0], 5.0);
c = declassify(n);
acc = 0;
for i = 1 to 4 do
  acc = acc + i * i;
endfor;
if acc == 30 then
  acc = acc + clip(100, 0, 50);
else
  acc = 0 - 1;
endif;
v = abs(0 - 7) + len(aggr);
e = exp(1.0);
s = sqrt(16);
g = gumbel(0.0);
output(acc);
output(v);
output(e);
output(s);
output(c + g);`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[0].Int(); got != 80 { // 30 + clip(100,0,50)=50
		t.Errorf("acc = %d, want 80", got)
	}
	if got := res.Outputs[1].Int(); got != 9 { // |−7| + len (2 categories)
		t.Errorf("v = %d, want 9", got)
	}
	if e := res.Outputs[2].Float(); e < 2.70 || e > 2.73 {
		t.Errorf("exp(1) = %g", e)
	}
	if s := res.Outputs[3].Float(); s != 4 {
		t.Errorf("sqrt(16) = %g", s)
	}
}

// Shared-value clipping runs comparisons inside the committee MPC: clip a
// secret max into a range, then noise and release. (Declassifying a raw
// comparison of sensitive data is rejected by the certifier — correctly —
// so the comparisons are exercised through clip's compare-selects.)
func TestSharedClipComparisons(t *testing.T) {
	d := smallDeployment(t, 64, 2, func(cfg *Config) { cfg.BudgetEpsilon = 1e9 })
	src := `aggr = sum(db);
m = max(aggr);
capped = clip(m, 0, 20);
n = laplace(capped, 10.0);
output(declassify(n));`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 64 devices over 2 categories: the true max is ≥ 32, clipped to 20,
	// plus small Laplace(1/10) noise.
	got := res.Outputs[0].Float()
	if got < 17 || got > 23 {
		t.Errorf("clipped noised max = %g, want ~20", got)
	}
	if d.Metrics.MPCComparisons < 3 { // max tournament + two clip compares
		t.Errorf("comparisons = %d, want ≥ 3", d.Metrics.MPCComparisons)
	}
}
