package runtime

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"arboretum/internal/fixed"
	"arboretum/internal/lang"
	"arboretum/internal/mpc"
)

func cryptoRand() io.Reader { return rand.Reader }

func bigZero() *big.Int   { return big.NewInt(0) }
func bigNegOne() *big.Int { return big.NewInt(-1) }

// bigFromFixed converts an integral fixed-point value to a big.Int plaintext.
func bigFromFixed(f fixed.Fixed) *big.Int { return big.NewInt(f.Int()) }

// binary evaluates a binary operator, dispatching on the operands'
// confidentiality: public×public stays local, ciphertexts use the AHE
// homomorphisms where possible, and anything nonlinear moves into the
// committee MPC (the planner's cryptosystem rule of Section 4.5, enforced
// dynamically here).
func (ip *interp) binary(ex *lang.BinaryExpr) (value, error) {
	xv, err := ip.eval(ex.X)
	if err != nil {
		return value{}, err
	}
	yv, err := ip.eval(ex.Y)
	if err != nil {
		return value{}, err
	}
	if xv.isArr() || yv.isArr() {
		return value{}, fmt.Errorf("runtime: binary op on whole arrays")
	}
	// Fast path: both public.
	if xv.kind == vPublic && yv.kind == vPublic {
		return ip.publicBinary(ex.Op, xv.num, yv.num)
	}
	// Ciphertext-friendly linear ops.
	if xv.kind == vCipher || yv.kind == vCipher {
		if v, ok, err := ip.cipherBinary(ex.Op, xv, yv); ok || err != nil {
			return v, err
		}
	}
	// Division by a public constant on a confidential value: scale by the
	// fixed-point reciprocal and truncate inside the MPC.
	if ex.Op == lang.QUO && yv.kind == vPublic {
		if yv.num == 0 {
			return value{}, fmt.Errorf("runtime: division by zero")
		}
		owner, err := ip.engineOf(xv)
		if err != nil {
			return value{}, err
		}
		xs, err := ip.toSharedIn(owner, xv)
		if err != nil {
			return value{}, err
		}
		recip := fixed.One.Div(yv.num)
		scaled := owner.engine.MulConst(xs.sec, int64(recip))
		q, err := owner.engine.Trunc(scaled, fixed.FracBits)
		if err != nil {
			return value{}, err
		}
		return value{kind: vShared, sec: q, eng: owner}, nil
	}
	// Everything else runs on shares in the committee owning the operands.
	owner, err := ip.engineOf(xv, yv)
	if err != nil {
		return value{}, err
	}
	xs, err := ip.toSharedIn(owner, xv)
	if err != nil {
		return value{}, err
	}
	ys, err := ip.toSharedIn(owner, yv)
	if err != nil {
		return value{}, err
	}
	return ip.sharedBinary(owner, ex.Op, xs.sec, ys.sec)
}

func (ip *interp) publicBinary(op lang.Token, x, y fixed.Fixed) (value, error) {
	b := func(cond bool) value {
		if cond {
			return pub(fixed.One)
		}
		return pub(0)
	}
	switch op {
	case lang.ADD:
		return pub(x.Add(y)), nil
	case lang.SUB:
		return pub(x.Sub(y)), nil
	case lang.MUL:
		return pub(x.Mul(y)), nil
	case lang.QUO:
		if y == 0 {
			return value{}, fmt.Errorf("runtime: division by zero")
		}
		return pub(x.Div(y)), nil
	case lang.LSS:
		return b(x < y), nil
	case lang.LEQ:
		return b(x <= y), nil
	case lang.GTR:
		return b(x > y), nil
	case lang.GEQ:
		return b(x >= y), nil
	case lang.EQL:
		return b(x == y), nil
	case lang.NEQ:
		return b(x != y), nil
	case lang.LAND:
		return b(x != 0 && y != 0), nil
	case lang.LOR:
		return b(x != 0 || y != 0), nil
	default:
		return value{}, fmt.Errorf("runtime: unknown operator %v", op)
	}
}

// cipherBinary handles the AHE-homomorphic cases; ok=false defers to MPC.
func (ip *interp) cipherBinary(op lang.Token, xv, yv value) (value, bool, error) {
	pk := ip.km.pub
	switch op {
	case lang.ADD:
		switch {
		case xv.kind == vCipher && yv.kind == vCipher:
			ct, err := pk.Add(xv.ct, yv.ct)
			return value{kind: vCipher, ct: ct}, true, err
		case xv.kind == vCipher && yv.kind == vPublic:
			ct, err := pk.AddPlain(xv.ct, bigFromFixed(yv.num))
			return value{kind: vCipher, ct: ct}, true, err
		case xv.kind == vPublic && yv.kind == vCipher:
			ct, err := pk.AddPlain(yv.ct, bigFromFixed(xv.num))
			return value{kind: vCipher, ct: ct}, true, err
		}
	case lang.SUB:
		switch {
		case xv.kind == vCipher && yv.kind == vCipher:
			negY, err := pk.MulPlain(yv.ct, bigNegOne())
			if err != nil {
				return value{}, true, err
			}
			ct, err := pk.Add(xv.ct, negY)
			return value{kind: vCipher, ct: ct}, true, err
		case xv.kind == vCipher && yv.kind == vPublic:
			ct, err := pk.AddPlain(xv.ct, big.NewInt(-yv.num.Int()))
			return value{kind: vCipher, ct: ct}, true, err
		}
	case lang.MUL:
		// Plaintext multiplication only; cipher×cipher needs the MPC.
		if xv.kind == vCipher && yv.kind == vPublic {
			ct, err := pk.MulPlain(xv.ct, bigFromFixed(yv.num))
			return value{kind: vCipher, ct: ct}, true, err
		}
		if xv.kind == vPublic && yv.kind == vCipher {
			ct, err := pk.MulPlain(yv.ct, bigFromFixed(xv.num))
			return value{kind: vCipher, ct: ct}, true, err
		}
	}
	return value{}, false, nil
}

func (ip *interp) sharedBinary(ce *committeeExec, op lang.Token, x, y mpc.Secret) (value, error) {
	e := ce.engine
	sh := func(s mpc.Secret) value { return value{kind: vShared, sec: s, eng: ce} }
	switch op {
	case lang.ADD:
		return sh(e.Add(x, y)), nil
	case lang.SUB:
		return sh(e.Sub(x, y)), nil
	case lang.MUL:
		p, err := e.FixedMul(x, y)
		if err != nil {
			return value{}, err
		}
		return sh(p), nil
	case lang.LSS:
		lt, err := e.Less(x, y)
		if err != nil {
			return value{}, err
		}
		return sh(e.MulConst(lt, int64(fixed.One))), nil
	case lang.GTR:
		gt, err := e.Less(y, x)
		if err != nil {
			return value{}, err
		}
		return sh(e.MulConst(gt, int64(fixed.One))), nil
	case lang.GEQ:
		lt, err := e.Less(x, y)
		if err != nil {
			return value{}, err
		}
		notLt := e.AddConst(e.MulConst(lt, -1), 1)
		return sh(e.MulConst(notLt, int64(fixed.One))), nil
	case lang.LEQ:
		gt, err := e.Less(y, x)
		if err != nil {
			return value{}, err
		}
		notGt := e.AddConst(e.MulConst(gt, -1), 1)
		return sh(e.MulConst(notGt, int64(fixed.One))), nil
	default:
		return value{}, fmt.Errorf("runtime: operator %v not supported on shares", op)
	}
}

// absShared computes |x| on shares: b = [x<0]; |x| = x − 2bx.
func (ip *interp) absShared(ce *committeeExec, x mpc.Secret) (mpc.Secret, error) {
	e := ce.engine
	b, err := e.LTZ(x)
	if err != nil {
		return mpc.Secret{}, err
	}
	bx := e.Mul(b, x)
	return e.Sub(x, e.MulConst(bx, 2)), nil
}

// clipShared clamps x into [lo, hi] with two compare-selects.
func (ip *interp) clipShared(ce *committeeExec, x mpc.Secret, lo, hi fixed.Fixed) (mpc.Secret, error) {
	e := ce.engine
	loS := e.JointFixed(lo)
	hiS := e.JointFixed(hi)
	below, err := e.Less(x, loS)
	if err != nil {
		return mpc.Secret{}, err
	}
	x = e.Select(below, loS, x)
	above, err := e.Less(hiS, x)
	if err != nil {
		return mpc.Secret{}, err
	}
	return e.Select(above, hiS, x), nil
}
