package runtime

import (
	"fmt"
	//arblint:ignore randsource differential fuzzing needs a replayable program generator, not secrecy
	"math/rand"
	"strings"
	"testing"
)

// Differential testing of the interpreter: generate random public-only
// programs (integer arithmetic, loops, conditionals), execute them through
// the full deployment pipeline, and compare the outputs against a direct
// reference evaluation of the same program.

// genProgram builds a random program over small integers with a known
// reference result. Returns the source and the expected outputs.
//
//arblint:ignore randsource generator input is a seeded replayable stream
func genProgram(rng *rand.Rand) (string, []int64) {
	var sb strings.Builder
	vars := []string{}
	env := map[string]int64{}

	newVar := func() string {
		name := fmt.Sprintf("v%d", len(vars))
		vars = append(vars, name)
		return name
	}
	pick := func() (string, int64) {
		if len(vars) == 0 || rng.Intn(3) == 0 {
			k := int64(rng.Intn(20) + 1)
			return fmt.Sprintf("%d", k), k
		}
		name := vars[rng.Intn(len(vars))]
		return name, env[name]
	}

	// A few assignments with +, -, *.
	nAssign := rng.Intn(4) + 2
	for i := 0; i < nAssign; i++ {
		aStr, aVal := pick()
		bStr, bVal := pick()
		op, opStr := int64(0), ""
		switch rng.Intn(3) {
		case 0:
			op, opStr = aVal+bVal, "+"
		case 1:
			op, opStr = aVal-bVal, "-"
		case 2:
			op, opStr = aVal*bVal, "*"
		}
		name := newVar()
		fmt.Fprintf(&sb, "%s = %s %s %s;\n", name, aStr, opStr, bStr)
		env[name] = op
	}

	// A loop accumulating into a fresh variable.
	loopVar := newVar()
	iters := int64(rng.Intn(5) + 1)
	stepStr, stepVal := pick()
	fmt.Fprintf(&sb, "%s = 0;\nfor i = 1 to %d do\n  %s = %s + %s;\nendfor;\n",
		loopVar, iters, loopVar, loopVar, stepStr)
	env[loopVar] = iters * stepVal

	// A conditional on one of the variables.
	condVar := vars[rng.Intn(len(vars))]
	thr := int64(rng.Intn(30))
	resVar := newVar()
	fmt.Fprintf(&sb, "%s = 0;\nif %s > %d then\n  %s = 1;\nelse\n  %s = 2;\nendif;\n",
		resVar, condVar, thr, resVar, resVar)
	if env[condVar] > thr {
		env[resVar] = 1
	} else {
		env[resVar] = 2
	}

	// Output two or three variables.
	var want []int64
	nOut := rng.Intn(2) + 2
	for i := 0; i < nOut; i++ {
		v := vars[rng.Intn(len(vars))]
		fmt.Fprintf(&sb, "output(%s);\n", v)
		want = append(want, env[v])
	}
	return sb.String(), want
}

func TestDifferentialPublicPrograms(t *testing.T) {
	d := smallDeployment(t, 64, 2, func(c *Config) { c.BudgetEpsilon = 1e9 })
	//arblint:ignore randsource fixed seed makes every failure reproducible from the test log
	rng := rand.New(rand.NewSource(123))
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		src, want := genProgram(rng)
		// Attach a mechanism so the program certifies (public programs do,
		// but the budget check is the same either way).
		res, err := d.Run(src, RunOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v\nprogram:\n%s", trial, err, src)
		}
		if len(res.Outputs) != len(want) {
			t.Fatalf("trial %d: got %d outputs, want %d\nprogram:\n%s",
				trial, len(res.Outputs), len(want), src)
		}
		for i, w := range want {
			if got := res.Outputs[i].Int(); got != w {
				t.Errorf("trial %d output %d = %d, want %d\nprogram:\n%s",
					trial, i, got, w, src)
			}
		}
	}
}
