package runtime

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"arboretum/internal/ahe"
	"arboretum/internal/faults"
	"arboretum/internal/fixed"
	"arboretum/internal/mechanism"
	"arboretum/internal/mpc"
	"arboretum/internal/sortition"
)

func bigOne() *big.Int { return big.NewInt(1) }

// committeeExec is one committee running MPC vignettes: an engine plus the
// members selected by sortition.
type committeeExec struct {
	engine  *mpc.Engine
	members sortition.Committee
	dep     *Deployment

	// Already-flushed counters, so flushMetrics can be called repeatedly
	// (committees stay live after rotation when they still own shares).
	flushedBytes  int64
	flushedRounds int
	flushedCmps   int

	// Fault-injection state: lost marks member positions that dropped
	// mid-vignette; the remaining fields address the MemberDropout
	// injection point (vignette sequence, attempt, round within the
	// vignette). Dropouts inject only between beginVignette/endVignette —
	// the mechanism vignettes of docs/FAULTS.md — so schedules stay aligned
	// with the execution structure. All of it is coordinator-goroutine
	// state, like the engine itself.
	lost       map[int]bool
	vigSeq     int
	attempt    int
	rounds     int
	inVignette bool
}

func (d *Deployment) newCommittee(members sortition.Committee) (*committeeExec, error) {
	eng, err := mpc.NewEngine(len(members))
	if err != nil {
		return nil, err
	}
	ce := &committeeExec{engine: eng, members: members, dep: d, lost: map[int]bool{}}
	eng.SetRoundObserver(func(int) { ce.observeRound() })
	d.execs = append(d.execs, ce)
	return ce, nil
}

// beginVignette opens a MemberDropout injection window for one attempt of
// one mechanism vignette.
func (ce *committeeExec) beginVignette(seq, attempt int) {
	ce.vigSeq, ce.attempt, ce.rounds, ce.inVignette = seq, attempt, 0, true
}

// endVignette closes the injection window (members lost stay lost).
func (ce *committeeExec) endVignette() { ce.inVignette = false }

// observeRound runs after every MPC broadcast round inside a vignette: the
// plan decides — purely from (seed, vignette, attempt, round) — whether one
// more member becomes unreachable, and Pick chooses the victim among the
// still-reachable positions.
func (ce *committeeExec) observeRound() {
	if !ce.inVignette {
		return
	}
	round := ce.rounds
	ce.rounds++
	p := ce.dep.cfg.Faults
	if !p.Fires(faults.MemberDropout, ce.vigSeq, ce.attempt, round) {
		return
	}
	var alive []int
	for i := range ce.members {
		if !ce.lost[i] {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return
	}
	pos := alive[p.Pick(len(alive), faults.MemberDropout, ce.vigSeq, ce.attempt, round)]
	ce.lost[pos] = true
	ce.dep.Metrics.MemberDropouts++
	// The note names the member's position, not its device ID: sortition
	// membership depends on crypto/rand device keys, so positions keep the
	// fault report replayable from the seeds alone.
	p.Record(faults.Fault{
		Kind: faults.MemberDropout, Idx: []int{ce.vigSeq, ce.attempt, round},
		Note: fmt.Sprintf("member %d of %d left committee mid-round", pos, len(ce.members)),
	})
}

// health is the fail-closed gate the vignette protocols call at step
// boundaries — always before opening or decrypting anything. It mirrors
// viableCommittee's thresholds against the members lost mid-execution:
// below the reconstruction threshold the shares are unrecoverable
// (ErrCommitteeBroken); above it but past the churn tolerance g·m the
// vignette aborts so recovery can re-form the committee while a
// reconstructing majority still survives (ErrCommitteeDegraded).
func (ce *committeeExec) health() error {
	m := len(ce.members)
	online := m - len(ce.lost)
	if online < m/2+1 || online < 3 {
		return fmt.Errorf("%w: %d of %d members reachable", ErrCommitteeBroken, online, m)
	}
	g := ce.dep.cfg.OfflineTolerance
	if g == 0 {
		g = 0.15
	}
	if float64(m-online) > g*float64(m) {
		return fmt.Errorf("%w: %d of %d members reachable", ErrCommitteeDegraded, online, m)
	}
	return nil
}

// flushMetrics folds the engine's traffic into the deployment metrics
// (idempotent: only deltas since the last flush count).
func (ce *committeeExec) flushMetrics() {
	st := ce.engine.Stats()
	dBytes := st.TotalBytes - ce.flushedBytes
	dRounds := st.Rounds - ce.flushedRounds
	dCmps := st.Comparisons - ce.flushedCmps
	ce.flushedBytes, ce.flushedRounds, ce.flushedCmps = st.TotalBytes, st.Rounds, st.Comparisons
	ce.dep.Metrics.CommitteeBytes += dBytes
	ce.dep.Metrics.MPCRounds += dRounds
	ce.dep.Metrics.MPCComparisons += dCmps
	// The aggregator forwards inter-member traffic (mailbox, Section 5.4).
	ce.dep.Metrics.AggregatorBytes += dBytes
}

// decryptToShares has the committee holding the key decrypt the counts and
// re-enter them as joint secrets scaled to Q30.16 — the "decrypt aggregate
// to secret shares" vignette. (In the real system the decryption itself runs
// inside the MPC; the simulation reconstructs the key under the same
// honest-majority assumption and keeps the plaintexts out of any single
// party's hands by re-sharing immediately — see DESIGN.md.)
func (ce *committeeExec) decryptToShares(km *keyMaterial, cts []*ahe.Ciphertext) ([]mpc.Secret, error) {
	if err := ce.health(); err != nil {
		return nil, err
	}
	sk, err := km.reconstructKey()
	if err != nil {
		return nil, err
	}
	out := make([]mpc.Secret, len(cts))
	for i, ct := range cts {
		pt, err := sk.Decrypt(ct)
		if err != nil {
			return nil, fmt.Errorf("runtime: committee decryption: %w", err)
		}
		if !pt.IsInt64() {
			return nil, fmt.Errorf("runtime: decrypted value exceeds int64")
		}
		out[i] = ce.engine.JointFixed(fixed.FromInt(pt.Int64()))
	}
	return out, nil
}

// decryptScalar decrypts one ciphertext and returns the plaintext, used for
// mechanism outputs that are about to be released anyway.
func (ce *committeeExec) decryptScalar(km *keyMaterial, ct *ahe.Ciphertext) (int64, error) {
	if err := ce.health(); err != nil {
		return 0, err
	}
	sk, err := km.reconstructKey()
	if err != nil {
		return 0, err
	}
	pt, err := sk.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	return pt.Int64(), nil
}

// laplaceRelease adds Laplace noise to the encrypted value under encryption
// (Enc(v) ⊞ Enc(noise)), decrypts the noised sum, and releases it — the
// Orchard-style noising vignette.
func (ce *committeeExec) laplaceRelease(km *keyMaterial, ct *ahe.Ciphertext, sens int64, eps float64) (fixed.Fixed, error) {
	if err := ce.health(); err != nil {
		return 0, err
	}
	rng := ce.dep.noiseRand()
	scale := fixed.FromFloat(float64(sens) / eps)
	noise := mechanism.Laplace(rng, scale).Int() // integer noise under AHE
	noiseCt, err := km.pub.Encrypt(rand.Reader, big.NewInt(noise))
	if err != nil {
		return 0, err
	}
	noised, err := km.pub.Add(ct, noiseCt)
	if err != nil {
		return 0, err
	}
	ce.dep.Metrics.CommitteeBytes += int64(noiseCt.Bytes())
	v, err := ce.decryptScalar(km, noised)
	if err != nil {
		return 0, err
	}
	return fixed.FromInt(v), nil
}

// laplaceShared noises an already-shared value inside the MPC and opens it.
func (ce *committeeExec) laplaceShared(sec mpc.Secret, sens int64, eps float64) (fixed.Fixed, error) {
	rng := ce.dep.noiseRand()
	scale := fixed.FromFloat(float64(sens) / eps)
	noise := mechanism.Laplace(rng, scale)
	noised := ce.engine.Add(sec, ce.engine.JointFixed(noise))
	if err := ce.health(); err != nil {
		return 0, err
	}
	return ce.engine.OpenFixed(noised), nil
}

// gumbelArgmax is the em variant of Figure 4 (right) as a committee MPC:
// add Gumbel(2·sens/ε) to every shared score, open only the argmax.
func (ce *committeeExec) gumbelArgmax(scores []mpc.Secret, sens int64, eps float64) (int, error) {
	rng := ce.dep.noiseRand()
	scale := fixed.FromFloat(2 * float64(sens) / eps)
	noised := make([]mpc.Secret, len(scores))
	for i, s := range scores {
		noised[i] = ce.engine.Add(s, ce.engine.JointFixed(mechanism.Gumbel(rng, scale)))
	}
	if err := ce.health(); err != nil {
		return 0, err
	}
	idx, err := ce.engine.Argmax(noised)
	if err != nil {
		return 0, err
	}
	if err := ce.health(); err != nil {
		return 0, err
	}
	return int(ce.engine.Open(idx)), nil
}

// emExpWindow is the normalization window of the exponentiation variant:
// scores more than window·(2·sens/ε) below the maximum round to weight 0
// (the paper normalizes to 16 bits; the MPC fixed-point range fits a window
// of 5 natural-log units — Section 6's finite-precision δ applies either
// way).
const emExpWindow = 5.0

// exponentiateSelect is the em variant of Figure 4 (left) as a committee
// MPC: normalize scores against the maximum, exponentiate in fixed point,
// and select an index by inverse-CDF sampling — all on shares; only the
// chosen index is opened.
func (ce *committeeExec) exponentiateSelect(scores []mpc.Secret, sens int64, eps float64) (int, error) {
	e := ce.engine
	maxS, err := e.Max(scores)
	if err != nil {
		return 0, err
	}
	// low = max − window/k where k = ε/(2·sens); x_i = (s_i − low)·k ∈ (−∞, window].
	k := fixed.FromFloat(eps / (2 * float64(sens)))
	lowOffset := fixed.FromFloat(emExpWindow / (eps / (2 * float64(sens))))
	low := e.AddConst(maxS, -int64(lowOffset))
	weights := make([]mpc.Secret, len(scores))
	zero := e.JointFixed(0)
	for i, s := range scores {
		if err := ce.health(); err != nil {
			return 0, err
		}
		t := e.Sub(s, low)
		// x = t·k, rescaled.
		x := e.MulConst(t, int64(k))
		x, err := e.Trunc(x, fixed.FracBits)
		if err != nil {
			return 0, err
		}
		neg, err := e.LTZ(t)
		if err != nil {
			return 0, err
		}
		// Clamp x into [0, window] so FixedExp's contract holds even for
		// excluded scores; their weight is zeroed by the select below.
		xClamped := e.Select(neg, zero, x)
		w, err := e.FixedExp(xClamped)
		if err != nil {
			return 0, err
		}
		weights[i] = e.Select(neg, zero, w)
	}
	total, err := e.Sum(weights)
	if err != nil {
		return 0, err
	}
	// r = u·total for joint uniform u ∈ (0,1).
	u := ce.dep.noiseRand().Uniform()
	r, err := e.FixedMul(e.JointFixed(u), total)
	if err != nil {
		return 0, err
	}
	// index = Σ_i [cum_i ≤ r]: the bracket of the CDF scan.
	cum := weights[0]
	idxAcc := e.JointSecret(0)
	for i := 0; i < len(weights); i++ {
		if i > 0 {
			cum = e.Add(cum, weights[i])
		}
		lt, err := e.Less(r, cum) // 1 when r < cum_i → bracket found at or before i
		if err != nil {
			return 0, err
		}
		// [cum_i ≤ r] = 1 − [r < cum_i]
		notLt := e.AddConst(e.MulConst(lt, -1), 1)
		idxAcc = e.Add(idxAcc, notLt)
	}
	if err := ce.health(); err != nil {
		return 0, err
	}
	idx := int(e.Open(idxAcc))
	if idx >= len(scores) {
		idx = len(scores) - 1
	}
	return idx, nil
}

// maxShared returns the shared maximum value (kept secret).
func (ce *committeeExec) maxShared(scores []mpc.Secret) (mpc.Secret, error) {
	if err := ce.health(); err != nil {
		return mpc.Secret{}, err
	}
	return ce.engine.Max(scores)
}

// topKSelect runs k rounds of gumbelArgmax with exclusion (the peeling
// composition); each winner's score is pushed far below the rest before the
// next round.
func (ce *committeeExec) topKSelect(scores []mpc.Secret, k int, sens int64, eps float64) ([]int, error) {
	if k < 1 || k > len(scores) {
		return nil, fmt.Errorf("runtime: top-k with k=%d over %d scores", k, len(scores))
	}
	work := make([]mpc.Secret, len(scores))
	copy(work, scores)
	const exclusion = int64(1) << 40
	var out []int
	for round := 0; round < k; round++ {
		idx, err := ce.gumbelArgmax(work, sens, eps)
		if err != nil {
			return nil, err
		}
		out = append(out, idx)
		work[idx] = ce.engine.AddConst(work[idx], -exclusion)
	}
	return out, nil
}
