package runtime

import (
	"errors"
	"fmt"

	"arboretum/internal/ahe"
	"arboretum/internal/fixed"
	"arboretum/internal/lang"
	"arboretum/internal/mechanism"
	"arboretum/internal/mpc"
	"arboretum/internal/sortition"
)

// valueKind classifies runtime values by confidentiality state, mirroring
// the encryption-type inference of Section 4.5: public (declassified or
// never sensitive), AHE ciphertexts at the aggregator, and secret shares
// inside a committee MPC.
type valueKind int

const (
	vPublic valueKind = iota
	vPublicArr
	vCipher
	vCipherArr
	vShared
	vSharedArr
)

// value is one runtime value. Public numbers use Q30.16 fixed point;
// ciphertext values are integer-valued Paillier ciphertexts. Shared values
// remember the committee whose MPC holds their shares — vignettes chained on
// the same committee keep using it, while fresh ciphertext inputs can move
// to the next committee (Section 5.4's committee-to-committee hand-offs).
type value struct {
	kind valueKind
	num  fixed.Fixed
	arr  []fixed.Fixed
	ct   *ahe.Ciphertext
	cts  []*ahe.Ciphertext
	sec  mpc.Secret
	secs []mpc.Secret
	eng  *committeeExec // owner of sec/secs
}

func pub(v fixed.Fixed) value      { return value{kind: vPublic, num: v} }
func pubArr(v []fixed.Fixed) value { return value{kind: vPublicArr, arr: v} }

func (v value) isArr() bool {
	return v.kind == vPublicArr || v.kind == vCipherArr || v.kind == vSharedArr
}

func (v value) length() int {
	switch v.kind {
	case vPublicArr:
		return len(v.arr)
	case vCipherArr:
		return len(v.cts)
	case vSharedArr:
		return len(v.secs)
	default:
		return 0
	}
}

// interp executes one query over a deployment.
type interp struct {
	dep       *Deployment
	km        *keyMaterial
	ce        *committeeExec        // the current operations committee
	pool      []sortition.Committee // spare committees for rotation
	poolIdx   int
	env       map[string]value
	outputs   []fixed.Fixed
	dbSums    []*ahe.Ciphertext // aggregated column sums, set by run.go
	sens      int64
	emVariant mechanism.EMVariant
}

// rotate moves execution to the next spare committee: the private key is
// redistributed via VSR and a fresh MPC engine starts (Section 5.2/5.4).
// Rotation happens at mechanism boundaries whose inputs are ciphertexts —
// values already shared stay with the committee holding their shares. With
// the pool exhausted, the current committee keeps serving.
func (ip *interp) rotate() error {
	if ip.poolIdx >= len(ip.pool) {
		return nil
	}
	next := ip.pool[ip.poolIdx]
	ip.poolIdx++
	if err := ip.km.handoff(ip.dep, next); err != nil {
		return err
	}
	ce, err := ip.dep.newCommittee(next)
	if err != nil {
		return err
	}
	ip.ce.flushMetrics()
	ip.ce = ce
	return nil
}

// runVignette executes one mechanism vignette under the recovery policy: the
// protocol runs against a committee with fault injection armed; a degraded
// committee (too much churn, but still a reconstructing majority) is replaced
// from the sortition pool and the attempt repeats with the shares re-dealt to
// the new members. Any other failure — a broken committee, a protocol error —
// fails closed immediately: the health gates inside the protocols guarantee
// nothing was opened or decrypted on the failed attempt, so a retry with
// fresh noise releases exactly one value per vignette and the privacy charge
// (taken once, up front) stays correct.
func (ip *interp) runVignette(input value, protocol func(ce *committeeExec, in value) (value, error)) (value, error) {
	seq := ip.dep.vignetteSeq
	ip.dep.vignetteSeq++
	ce, err := ip.mechanismEngine(input)
	if err != nil {
		return value{}, err
	}
	var lastErr error
	for attempt := 0; attempt < vignetteBackoff.attempts; attempt++ {
		// Attempt boundaries are cancellation checkpoints: the previous
		// attempt's health gates guarantee nothing was opened, so aborting
		// here releases nothing.
		if err := ip.dep.checkpoint("vignette attempt"); err != nil {
			return value{}, err
		}
		if attempt > 0 {
			ip.dep.Metrics.VignetteRetries++
			ip.dep.Metrics.BackoffSimulated += vignetteBackoff.delay(attempt - 1)
		}
		ce.beginVignette(seq, attempt)
		out, err := protocol(ce, input)
		ce.endVignette()
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, ErrCommitteeDegraded) {
			return value{}, err // fail closed: broken committee or protocol error
		}
		lastErr = err
		ce, input, err = ip.reform(ce, input)
		if err != nil {
			return value{}, err
		}
	}
	return value{}, fmt.Errorf("runtime: vignette %d did not complete after %d attempts: %w",
		seq, vignetteBackoff.attempts, lastErr)
}

// reform replaces a degraded committee with the next spare from the
// sortition pool: the key hand-off re-deals from the surviving share-holders
// (the lost members cannot contribute dealings), live shared values migrate
// to the new committee's MPC, and the vignette input follows them.
func (ip *interp) reform(broken *committeeExec, input value) (*committeeExec, value, error) {
	if ip.poolIdx >= len(ip.pool) {
		return nil, value{}, fmt.Errorf("%w: cannot replace degraded committee", ErrNoSpareCommittee)
	}
	next := ip.pool[ip.poolIdx]
	ip.poolIdx++
	ip.dep.Metrics.Reformations++
	if ip.km.holder.Equal(broken.members) {
		// The degraded committee holds the key: its lost members cannot
		// deal, so mark them before the hand-off skips them.
		ip.km.markLost(broken.lost)
	}
	if err := ip.km.handoff(ip.dep, next); err != nil {
		return nil, value{}, err
	}
	ce, err := ip.dep.newCommittee(next)
	if err != nil {
		return nil, value{}, err
	}
	// Migrate every live value held by the broken committee. Map iteration
	// order does not matter: Transfer moves each value independently and the
	// byte/round metrics are order-insensitive sums.
	for name, v := range ip.env {
		if v.eng == broken {
			moved, err := ip.toSharedIn(ce, v)
			if err != nil {
				return nil, value{}, err
			}
			ip.env[name] = moved
		}
	}
	if input.eng == broken {
		moved, err := ip.toSharedIn(ce, input)
		if err != nil {
			return nil, value{}, err
		}
		input = moved
	}
	broken.flushMetrics()
	if ip.ce == broken {
		ip.ce = ce
	}
	return ce, input, nil
}

// engineOf returns the committee where an operation on the given values
// should run: the first shared operand's committee, or the current one when
// none are shared. Operands held by other committees are migrated into it
// by toSharedIn's VSR-style transfer.
func (ip *interp) engineOf(vals ...value) (*committeeExec, error) {
	for _, v := range vals {
		if v.eng != nil {
			return v.eng, nil
		}
	}
	return ip.ce, nil
}

func (ip *interp) run(stmts []lang.Stmt) error {
	for _, s := range stmts {
		// Statement boundaries are cancellation checkpoints: nothing is
		// half-open between statements, so a deadline-canceled run aborts
		// here without a vignette in flight.
		if err := ip.dep.checkpoint("statement"); err != nil {
			return err
		}
		if err := ip.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (ip *interp) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.AssignStmt:
		v, err := ip.eval(st.Value)
		if err != nil {
			return err
		}
		if st.Index == nil {
			ip.env[st.Name] = v
			return nil
		}
		iv, err := ip.eval(st.Index)
		if err != nil {
			return err
		}
		if iv.kind != vPublic {
			return fmt.Errorf("%v: array index must be public", s.Position())
		}
		return ip.setIndex(st.Name, int(iv.num.Int()), v)
	case *lang.ExprStmt:
		_, err := ip.eval(st.X)
		return err
	case *lang.ForStmt:
		fromV, err := ip.eval(st.From)
		if err != nil {
			return err
		}
		toV, err := ip.eval(st.To)
		if err != nil {
			return err
		}
		if fromV.kind != vPublic || toV.kind != vPublic {
			return fmt.Errorf("%v: loop bounds must be public", s.Position())
		}
		for i := fromV.num.Int(); i <= toV.num.Int(); i++ {
			ip.env[st.Var] = pub(fixed.FromInt(i))
			if err := ip.run(st.Body); err != nil {
				return err
			}
		}
		return nil
	case *lang.IfStmt:
		cv, err := ip.eval(st.Cond)
		if err != nil {
			return err
		}
		if cv.kind != vPublic {
			return fmt.Errorf("%v: top-level branch on a confidential value (the planner keeps those inside committee vignettes)", s.Position())
		}
		if cv.num != 0 {
			return ip.run(st.Then)
		}
		return ip.run(st.Else)
	default:
		return fmt.Errorf("runtime: unknown statement %T", s)
	}
}

// setIndex assigns arr[i] = v, auto-extending public arrays.
func (ip *interp) setIndex(name string, i int, v value) error {
	cur, ok := ip.env[name]
	if !ok {
		cur = pubArr(nil)
	}
	switch cur.kind {
	case vPublicArr:
		if v.kind != vPublic {
			// Element kinds promote the whole array.
			return ip.promoteAndSet(name, cur, i, v)
		}
		for len(cur.arr) <= i {
			cur.arr = append(cur.arr, 0)
		}
		cur.arr[i] = v.num
		ip.env[name] = cur
		return nil
	case vSharedArr:
		if v.kind != vShared {
			return fmt.Errorf("runtime: mixing shared array %s with %v element", name, v.kind)
		}
		if v.eng != cur.eng {
			moved, err := ip.toSharedIn(cur.eng, v)
			if err != nil {
				return err
			}
			v = moved
		}
		for len(cur.secs) <= i {
			cur.secs = append(cur.secs, cur.eng.engine.JointSecret(0))
		}
		cur.secs[i] = v.sec
		ip.env[name] = cur
		return nil
	case vCipherArr:
		if v.kind != vCipher {
			return fmt.Errorf("runtime: mixing cipher array %s with %v element", name, v.kind)
		}
		for len(cur.cts) <= i {
			zero, err := ip.km.pub.Encrypt(cryptoRand(), bigZero())
			if err != nil {
				return err
			}
			cur.cts = append(cur.cts, zero)
		}
		cur.cts[i] = v.ct
		ip.env[name] = cur
		return nil
	default:
		return fmt.Errorf("runtime: %s is not an array", name)
	}
}

// promoteAndSet upgrades a public array to the element's kind.
func (ip *interp) promoteAndSet(name string, cur value, i int, v value) error {
	switch v.kind {
	case vShared:
		secs := make([]mpc.Secret, len(cur.arr))
		for j, f := range cur.arr {
			secs[j] = v.eng.engine.JointFixed(f)
		}
		ip.env[name] = value{kind: vSharedArr, secs: secs, eng: v.eng}
	case vCipher:
		cts := make([]*ahe.Ciphertext, 0, len(cur.arr))
		for _, f := range cur.arr {
			ct, err := ip.km.pub.Encrypt(cryptoRand(), bigFromFixed(f))
			if err != nil {
				return err
			}
			cts = append(cts, ct)
		}
		ip.env[name] = value{kind: vCipherArr, cts: cts}
	default:
		return fmt.Errorf("runtime: cannot promote array %s to %v", name, v.kind)
	}
	return ip.setIndex(name, i, v)
}

// toSharedIn converts a value into the given committee's MPC (the dec()
// insertion of Section 4.5 when a confidential value enters a committee
// vignette). Shares held by another committee migrate via a VSR-style
// re-sharing transfer (Section 5.4).
func (ip *interp) toSharedIn(ce *committeeExec, v value) (value, error) {
	switch v.kind {
	case vShared, vSharedArr:
		if v.eng == ce {
			return v, nil
		}
		ip.dep.Metrics.VSRTransfers++
		if v.kind == vShared {
			return value{
				kind: vShared, eng: ce,
				sec: mpc.Transfer(v.eng.engine, v.sec, ce.engine),
			}, nil
		}
		secs := make([]mpc.Secret, len(v.secs))
		for i, s := range v.secs {
			secs[i] = mpc.Transfer(v.eng.engine, s, ce.engine)
		}
		return value{kind: vSharedArr, secs: secs, eng: ce}, nil
	case vPublic:
		return value{kind: vShared, sec: ce.engine.JointFixed(v.num), eng: ce}, nil
	case vCipher:
		secs, err := ce.decryptToShares(ip.km, []*ahe.Ciphertext{v.ct})
		if err != nil {
			return value{}, err
		}
		return value{kind: vShared, sec: secs[0], eng: ce}, nil
	case vCipherArr:
		secs, err := ce.decryptToShares(ip.km, v.cts)
		if err != nil {
			return value{}, err
		}
		return value{kind: vSharedArr, secs: secs, eng: ce}, nil
	case vPublicArr:
		secs := make([]mpc.Secret, len(v.arr))
		for i, f := range v.arr {
			secs[i] = ce.engine.JointFixed(f)
		}
		return value{kind: vSharedArr, secs: secs, eng: ce}, nil
	default:
		return value{}, fmt.Errorf("runtime: cannot share value of kind %v", v.kind)
	}
}

func (ip *interp) eval(e lang.Expr) (value, error) {
	switch ex := e.(type) {
	case *lang.IntLit:
		return pub(fixed.FromInt(ex.Value)), nil
	case *lang.FloatLit:
		return pub(fixed.FromFloat(ex.Value)), nil
	case *lang.BoolLit:
		if ex.Value {
			return pub(fixed.One), nil
		}
		return pub(0), nil
	case *lang.Ident:
		if ex.Name == "db" {
			return value{}, fmt.Errorf("%v: db can only appear inside sum(db)", ex.Position())
		}
		v, ok := ip.env[ex.Name]
		if !ok {
			return value{}, fmt.Errorf("%v: undefined variable %q", ex.Position(), ex.Name)
		}
		return v, nil
	case *lang.IndexExpr:
		xv, err := ip.eval(ex.X)
		if err != nil {
			return value{}, err
		}
		iv, err := ip.eval(ex.Index)
		if err != nil {
			return value{}, err
		}
		if iv.kind != vPublic {
			return value{}, fmt.Errorf("runtime: array index must be public")
		}
		i := int(iv.num.Int())
		if i < 0 || i >= xv.length() {
			return value{}, fmt.Errorf("runtime: index %d out of range (len %d)", i, xv.length())
		}
		switch xv.kind {
		case vPublicArr:
			return pub(xv.arr[i]), nil
		case vCipherArr:
			return value{kind: vCipher, ct: xv.cts[i]}, nil
		case vSharedArr:
			return value{kind: vShared, sec: xv.secs[i], eng: xv.eng}, nil
		default:
			return value{}, fmt.Errorf("runtime: indexing non-array")
		}
	case *lang.UnaryExpr:
		xv, err := ip.eval(ex.X)
		if err != nil {
			return value{}, err
		}
		switch ex.Op {
		case lang.SUB:
			return ip.negate(xv)
		case lang.NOT:
			if xv.kind != vPublic {
				return value{}, fmt.Errorf("runtime: ! on confidential value")
			}
			if xv.num == 0 {
				return pub(fixed.One), nil
			}
			return pub(0), nil
		}
		return value{}, fmt.Errorf("runtime: unknown unary op %v", ex.Op)
	case *lang.BinaryExpr:
		return ip.binary(ex)
	case *lang.CallExpr:
		return ip.call(ex)
	default:
		return value{}, fmt.Errorf("runtime: unknown expression %T", e)
	}
}

func (ip *interp) negate(v value) (value, error) {
	switch v.kind {
	case vPublic:
		return pub(v.num.Neg()), nil
	case vShared:
		return value{kind: vShared, sec: v.eng.engine.MulConst(v.sec, -1), eng: v.eng}, nil
	case vCipher:
		ct, err := ip.km.pub.MulPlain(v.ct, bigNegOne())
		if err != nil {
			return value{}, err
		}
		return value{kind: vCipher, ct: ct}, nil
	default:
		return value{}, fmt.Errorf("runtime: cannot negate %v", v.kind)
	}
}
