// Package runtime implements Arboretum's execution phase (Section 5): it
// materializes a (scaled-down) deployment of participant devices and an
// aggregator, selects committees by sortition, generates keys in the first
// committee, collects ZKP-validated encrypted inputs, executes the query's
// vignettes with real cryptography (Paillier AHE for aggregation, the
// honest-majority MPC engine for committee vignettes, VSR for hand-offs),
// audits the aggregator with Merkle challenges, and releases the final
// result.
//
// The paper's methodology is to benchmark building blocks and extrapolate to
// 10^9 devices; likewise, the runtime executes deployments of hundreds to
// thousands of real devices end-to-end and the eval package extrapolates
// with the cost model.
//
// # Concurrency
//
// The per-device work — encrypting one-hot rows, generating proofs, folding
// sum-tree groups — is embarrassingly parallel, and the runtime fans it out
// over the internal/parallel worker pool (Config.Workers; 0 = auto). A
// Deployment itself is NOT safe for concurrent use: Run mutates shared state
// (metrics, budget, RNG). Determinism is preserved at every worker count
// because all draws from the deployment's seeded RNG happen sequentially on
// the coordinating goroutine before any parallel section starts, the
// parallel sections use only crypto/rand (whose output never reaches the
// released values), and per-device results are re-assembled in device order.
// See docs/CONCURRENCY.md.
package runtime

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	//arblint:ignore randsource simulation determinism only; secrets use crypto/rand and noise honors Config.SecureNoise
	mrand "math/rand"
	"time"

	"arboretum/internal/ahe"
	"arboretum/internal/faults"
	"arboretum/internal/mechanism"
	"arboretum/internal/merkle"
	"arboretum/internal/parallel"
	"arboretum/internal/privacy"
	"arboretum/internal/shamir"
	"arboretum/internal/sortition"
	"arboretum/internal/vsr"
	"arboretum/internal/zkp"
)

// Config shapes a simulated deployment.
type Config struct {
	N             int   // participant devices
	Categories    int   // one-hot width of each device's input
	CommitteeSize int   // committee size (tests use small committees)
	Seed          int64 // deterministic device data and noise
	KeyBits       int   // Paillier modulus size (default 512 for tests)

	// MaliciousFrac of devices submit malformed inputs (without valid
	// proofs); the aggregator must reject them (Section 5.3).
	MaliciousFrac float64

	// ByzantineAggregator makes the aggregator corrupt one intermediate
	// step; device audits must detect it (Section 5.3).
	ByzantineAggregator bool

	// OfflineFrac of devices are unreachable during the query. Committees
	// that lose too many members have their tasks reassigned to the next
	// committee (Section 5.1's churn handling; the tolerated fraction is
	// OfflineTolerance, the paper's g, default 0.15).
	OfflineFrac      float64
	OfflineTolerance float64

	// Data assigns each device its category; nil uses a Zipf-like default.
	Data func(device int) int

	// BudgetEpsilon is the deployment's total privacy budget (default 10).
	BudgetEpsilon float64

	// Workers bounds the worker pool used for per-device parallel work
	// (encryption, proof generation, sum-tree folding). 0 resolves via
	// parallel.Workers: the ARBORETUM_WORKERS environment variable, then
	// GOMAXPROCS. 1 forces the sequential paths (bit-identical to the
	// pre-parallel runtime).
	Workers int

	// SecureNoise draws committee noise from crypto/rand
	// (mechanism.CryptoRand) instead of the seeded simulation stream. A
	// real deployment must set it — predictable noise voids the DP
	// guarantee; the default (false) keeps simulation runs replayable
	// from Seed alone.
	SecureNoise bool

	// Faults injects typed mid-execution failures (upload timeouts,
	// committee-member dropout mid-MPC-round, VSR dealer failures,
	// aggregator crashes, ingest shard crashes) at the runtime's injection
	// points; nil injects nothing. Schedules are pure functions of the
	// plan's seed, so a run replays bit-for-bit (docs/FAULTS.md).
	Faults *faults.Plan

	// StreamIngest routes input collection through the sharded, streaming
	// ingest pipeline (docs/INGEST.md): devices upload in batches to
	// IngestShards per-shard aggregators that verify, fold, and commit
	// incrementally with O(IngestShards × IngestBatch) ciphertext memory,
	// then the shard partials combine through the sum-tree machinery. The
	// accepted set and the released sums are bit-for-bit identical to the
	// legacy materializing path; the aggregator audit runs on retained
	// batch samples against the batch-commitment tree instead of the
	// legacy full-coverage chunk audit. Default false (legacy path).
	StreamIngest bool
	// IngestShards and IngestBatch shape the pipeline (defaults 8 and 64).
	// Both are fixed counts — never derived from GOMAXPROCS — so fault
	// schedules addressed by (shard, batch, attempt) replay identically on
	// any machine at any worker count.
	IngestShards int
	IngestBatch  int
}

// Device is one participant.
type Device struct {
	ID        int
	Key       []byte // sortition + proof signing key
	Category  int    // the sensitive input
	Malicious bool
	Offline   bool // unreachable during this query (churn)
}

// Deployment is a running simulated system.
type Deployment struct {
	cfg     Config
	Devices []*Device
	Budget  *privacy.Budget

	block    []byte       // sortition randomness B_i
	registry *merkle.Tree // registered devices (M_i)
	queryID  uint64

	//arblint:ignore randsource seeded simulation stream; never used for keys, blocks, or deployment noise
	rng *mrand.Rand

	// execs tracks every committee engine created for the current query so
	// their traffic can be flushed into the metrics at the end.
	execs []*committeeExec

	// runCtx is the current Run's cancellation context (RunOptions.Ctx);
	// nil between runs and for uncancellable runs. It is written once at
	// the top of Run, before any fan-out, and only read afterwards (the
	// checkpoint method), so pool workers may consult it without races.
	runCtx context.Context

	// vignetteSeq and transferSeq number the mechanism vignettes and VSR
	// hand-offs across the deployment's lifetime: they are the first
	// coordinate of the corresponding fault-injection points, so a plan's
	// decisions stay aligned with the execution structure across retries
	// and consecutive queries.
	vignetteSeq int
	transferSeq int

	// Measured totals (the simulation's "ground truth" next to the cost
	// model's estimates).
	Metrics Metrics
}

// Metrics accumulates measured costs during execution.
type Metrics struct {
	DeviceBytesSent  int64
	AggregatorBytes  int64
	CommitteeBytes   int64
	MPCRounds        int
	ZKPsVerified     int
	ZKPsRejected     int
	AuditsServed     int
	AuditFailures    int
	CommitteesFormed int
	MPCComparisons   int // comparison protocols run inside committee MPCs
	VSRTransfers     int
	Reassignments    int // committee tasks moved to the next committee (churn)

	// Fault-injection and recovery counters (zero without a fault plan).
	UploadTimeouts    int           // upload attempts that timed out
	UploadRetries     int           // timeouts that were retried
	UploadsDropped    int           // devices dropped after exhausting retries
	MemberDropouts    int           // members lost mid-MPC-round
	Reformations      int           // committees re-formed from the sortition pool
	DealerFailures    int           // dealers that vanished during a VSR hand-off
	VSRRedeals        int           // hand-off attempts re-dealt from survivors
	AggregatorCrashes int           // aggregator step crashes
	AggregatorResumes int           // resumes from the last audited checkpoint
	ShardCrashes      int           // ingest shard-aggregator batch-fold crashes
	ShardResumes      int           // shard resumes from a batch-boundary checkpoint
	VignetteRetries   int           // mechanism vignettes retried after a fault
	BackoffSimulated  time.Duration // total backoff a real deployment would have waited
}

// NewDeployment registers N devices and runs the trusted setup (Section 5.1:
// the initial random block B_0 is chosen while the aggregator is still
// trusted).
func NewDeployment(cfg Config) (*Deployment, error) {
	if cfg.N < 8 {
		return nil, fmt.Errorf("runtime: need at least 8 devices, have %d", cfg.N)
	}
	if cfg.Categories < 1 {
		return nil, fmt.Errorf("runtime: need at least one category")
	}
	if cfg.CommitteeSize == 0 {
		cfg.CommitteeSize = 5
	}
	if cfg.CommitteeSize < 3 || cfg.CommitteeSize > cfg.N/2 {
		return nil, fmt.Errorf("runtime: committee size %d out of range for N=%d", cfg.CommitteeSize, cfg.N)
	}
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 512
	}
	if cfg.BudgetEpsilon == 0 {
		cfg.BudgetEpsilon = 10
	}
	//arblint:ignore randsource deterministic device data is the simulation replay contract
	d := &Deployment{cfg: cfg, rng: mrand.New(mrand.NewSource(cfg.Seed))}
	budget, err := privacy.NewBudget(cfg.BudgetEpsilon, 1e-6)
	if err != nil {
		return nil, err
	}
	d.Budget = budget

	data := cfg.Data
	if data == nil {
		data = d.defaultData
	}
	leaves := make([][]byte, cfg.N)
	nMal := int(float64(cfg.N) * cfg.MaliciousFrac)
	for i := 0; i < cfg.N; i++ {
		key := make([]byte, 32)
		if _, err := rand.Read(key); err != nil {
			return nil, err
		}
		cat := data(i)
		if cat < 0 || cat >= cfg.Categories {
			return nil, fmt.Errorf("runtime: device %d category %d out of range", i, cat)
		}
		d.Devices = append(d.Devices, &Device{
			ID: i, Key: key, Category: cat, Malicious: i < nMal,
		})
		leaves[i] = append([]byte(fmt.Sprintf("device-%d:", i)), key...)
	}
	d.registry, err = merkle.New(leaves)
	if err != nil {
		return nil, err
	}
	d.block = make([]byte, sha256.Size)
	if _, err := rand.Read(d.block); err != nil {
		return nil, err
	}
	// Churn: mark a fraction of devices unreachable, with a dedicated RNG
	// stream so the data distribution stays stable across configs.
	if cfg.OfflineFrac > 0 {
		if cfg.OfflineFrac >= 0.5 {
			return nil, fmt.Errorf("runtime: offline fraction %g too high", cfg.OfflineFrac)
		}
		//arblint:ignore randsource churn is simulated environment behavior, not a secret draw
		churn := mrand.New(mrand.NewSource(cfg.Seed ^ 0x5eed0ff1))
		for _, dev := range d.Devices {
			dev.Offline = churn.Float64() < cfg.OfflineFrac
		}
	}
	return d, nil
}

// workers resolves the deployment's effective worker count.
func (d *Deployment) workers() int { return parallel.Workers(d.cfg.Workers) }

// onlineMembers filters a committee to its reachable members.
func (d *Deployment) onlineMembers(c sortition.Committee) sortition.Committee {
	var out sortition.Committee
	for _, id := range c {
		if !d.Devices[id].Offline {
			out = append(out, id)
		}
	}
	return out
}

// viableCommittee reports whether enough members are online: the paper
// tolerates up to g·m offline members without extra cost, and in any case a
// strict majority of the original size must remain so reconstruction
// thresholds hold.
func (d *Deployment) viableCommittee(c sortition.Committee) bool {
	g := d.cfg.OfflineTolerance
	if g == 0 {
		g = 0.15
	}
	online := len(d.onlineMembers(c))
	if online < len(c)/2+1 || online < 3 {
		return false
	}
	return float64(len(c)-online) <= g*float64(len(c))
}

// pickViable returns the first viable committees from the sortition output,
// reassigning the tasks of broken ones to the next committee (Section 5.1:
// "Arboretum can reassign i's tasks to committee i+1 mod c").
func (d *Deployment) pickViable(all []sortition.Committee, need int) ([]sortition.Committee, error) {
	var out []sortition.Committee
	for _, c := range all {
		if len(out) == need {
			break
		}
		if d.viableCommittee(c) {
			out = append(out, d.onlineMembers(c))
			continue
		}
		d.Metrics.Reassignments++
	}
	if len(out) < need {
		return nil, fmt.Errorf("runtime: only %d of %d committees viable under churn", len(out), need)
	}
	return out, nil
}

// defaultData is a Zipf-like category distribution: category 0 is the mode.
func (d *Deployment) defaultData(device int) int {
	r := d.rng.Float64()
	c := 0
	p := 0.5
	for r > p && c < d.cfg.Categories-1 {
		r -= p
		p /= 2
		c++
	}
	return c
}

// selectCommittees runs sortition (Section 5.1) for the current query:
// every device computes its deterministic ticket over (B_i, queryID, 0) and
// the lowest hashes form the committees.
func (d *Deployment) selectCommittees(count int) ([]sortition.Committee, error) {
	tickets := make([]sortition.Ticket, len(d.Devices))
	for i, dev := range d.Devices {
		tickets[i] = sortition.MakeTicket(dev.Key, dev.ID, d.block, d.queryID)
	}
	cs, err := sortition.Select(tickets, count, d.cfg.CommitteeSize)
	if err != nil {
		return nil, err
	}
	d.Metrics.CommitteesFormed += len(cs)
	return cs, nil
}

// keyMaterial is the deployment's per-query key state: the public key is
// published in the query authorization certificate; the private key exists
// only as shares held by the current key committee (Section 5.2).
type keyMaterial struct {
	pub          *ahe.PublicKey
	group        *vsr.Group
	lambdaShares []shamir.Share
	muShares     []shamir.Share
	threshold    int
	holder       sortition.Committee

	// lost marks holder positions whose member dropped mid-vignette: their
	// shares are gone, so hand-offs must re-deal from the survivors.
	lost []bool
}

// markLost records dropped holder positions (keyed like holder/shares).
func (km *keyMaterial) markLost(dropped map[int]bool) {
	if km.lost == nil {
		km.lost = make([]bool, len(km.lambdaShares))
	}
	for i := range km.lost {
		if dropped[i] {
			km.lost[i] = true
		}
	}
}

// keygen runs the key-generation committee: a fresh Paillier keypair whose
// private values are immediately secret-shared among the committee; the
// clear private key is discarded (the simulation's stand-in for generating
// the key inside the MPC — see DESIGN.md). It also advances the sortition
// block with the committee's joint randomness.
func (d *Deployment) keygen(committee sortition.Committee) (*keyMaterial, error) {
	sk, err := ahe.GenerateKey(rand.Reader, d.cfg.KeyBits)
	if err != nil {
		return nil, err
	}
	group := vsr.DefaultGroup()
	field := group.Field()
	m := len(committee)
	t := m/2 + 1
	lambdaShares, err := field.Split(sk.Lambda(), m, t)
	if err != nil {
		return nil, err
	}
	muShares, err := field.Split(sk.Mu(), m, t)
	if err != nil {
		return nil, err
	}
	// New random block from member contributions (Section 5.2).
	contribs := make([][]byte, m)
	for i := range contribs {
		c := make([]byte, sha256.Size)
		if _, err := rand.Read(c); err != nil {
			return nil, err
		}
		contribs[i] = c
	}
	next, err := sortition.NextBlock(contribs)
	if err != nil {
		return nil, err
	}
	d.block = next
	pub := sk.PublicKey
	return &keyMaterial{
		pub:          &pub,
		group:        group,
		lambdaShares: lambdaShares,
		muShares:     muShares,
		threshold:    t,
		holder:       committee,
	}, nil
}

// handoff redistributes the private-key shares from the current holder to a
// new committee via VSR (Section 5.2); as long as both committees have an
// honest majority the new committee can decrypt, and members of the two
// committees cannot collude to recover the key.
//
// The hand-off is the DealerFailure injection point: on every attempt, each
// surviving holder may vanish before dealing (a pure function of the plan
// seed, the transfer sequence, the attempt, and the dealer position). As
// long as at least threshold dealers survive, the protocol re-deals from the
// survivors' shares — the Lagrange combination only needs a reconstructing
// subset, and each share carries its evaluation point. Below the threshold
// the attempt fails with vsr.ErrInsufficientShares and the policy backs off
// and retries; exhaustion fails closed with ErrHandoffFailed.
func (km *keyMaterial) handoff(d *Deployment, to sortition.Committee) error {
	seq := d.transferSeq
	d.transferSeq++
	newN := len(to)
	newT := newN/2 + 1
	var lastErr error
	for attempt := 0; attempt < handoffBackoff.attempts; attempt++ {
		if attempt > 0 {
			d.Metrics.VSRRedeals++
			d.Metrics.BackoffSimulated += handoffBackoff.delay(attempt - 1)
		}
		var lambda, mu []shamir.Share
		for i := range km.lambdaShares {
			if i < len(km.lost) && km.lost[i] {
				continue // dropped mid-vignette earlier; its share is gone
			}
			if d.cfg.Faults.Fires(faults.DealerFailure, seq, attempt, i) {
				d.Metrics.DealerFailures++
				d.cfg.Faults.Record(faults.Fault{
					Kind: faults.DealerFailure, Idx: []int{seq, attempt, i},
					Note: fmt.Sprintf("dealer %d vanished during hand-off %d (attempt %d)", i, seq, attempt),
				})
				continue
			}
			lambda = append(lambda, km.lambdaShares[i])
			mu = append(mu, km.muShares[i])
		}
		if len(lambda) < km.threshold {
			lastErr = fmt.Errorf("%d of %d dealers survived, need %d: %w",
				len(lambda), len(km.lambdaShares), km.threshold, vsr.ErrInsufficientShares)
			continue
		}
		newLambda, err := vsr.Redistribute(km.group, lambda, km.threshold, newN, newT)
		if err != nil {
			lastErr = fmt.Errorf("runtime: VSR lambda: %w", err)
			continue
		}
		newMu, err := vsr.Redistribute(km.group, mu, km.threshold, newN, newT)
		if err != nil {
			lastErr = fmt.Errorf("runtime: VSR mu: %w", err)
			continue
		}
		km.lambdaShares = newLambda
		km.muShares = newMu
		km.threshold = newT
		km.holder = to
		km.lost = nil // the new committee starts with every share present
		d.Metrics.VSRTransfers++
		return nil
	}
	return fmt.Errorf("%w: hand-off %d to %d members gave up after %d attempts: %w",
		ErrHandoffFailed, seq, newN, handoffBackoff.attempts, lastErr)
}

// reconstructKey lets the current holding committee (honest majority
// assumed) reassemble the private key for a decryption step.
func (km *keyMaterial) reconstructKey() (*ahe.PrivateKey, error) {
	field := km.group.Field()
	lambda, err := field.Reconstruct(km.lambdaShares, km.threshold)
	if err != nil {
		return nil, err
	}
	mu, err := field.Reconstruct(km.muShares, km.threshold)
	if err != nil {
		return nil, err
	}
	return ahe.FromSecrets(km.pub, lambda, mu), nil
}

// upload is one device's contribution: the encrypted vector plus its proof,
// and the upload-fault history its pool task observed. Fault counters ride
// in the struct instead of mutating shared metrics so pool tasks stay
// write-isolated; the coordinator tallies them in device order
// (tallyUpload).
type upload struct {
	vec   []*ahe.Ciphertext
	proof *zkp.Proof

	dev      int           // device ID, for the fault log
	timeouts int           // attempts that timed out
	backoff  time.Duration // simulated wait between attempts
	dropped  bool          // gave up after uploadBackoff.attempts
}

// deviceUpload produces one device's upload for the given one-hot position:
// honest devices encrypt their row and prove it well formed; malicious
// devices upload an all-ones vector (inflating every count) with a forged
// proof. It runs on pool workers: it touches only the device's own state and
// crypto/rand.
func (d *Deployment) deviceUpload(km *keyMaterial, dev *Device, width, hot int) (upload, error) {
	claim := zkp.Claim{Kind: zkp.ClaimOneHot, VectorLen: width}
	stmt := zkp.Statement{Device: dev.ID, QueryID: d.queryID, Claim: claim}
	if dev.Malicious {
		vec := make([]*ahe.Ciphertext, width)
		var err error
		for i := range vec {
			vec[i], err = km.pub.Encrypt(rand.Reader, bigOne())
			if err != nil {
				return upload{}, err
			}
		}
		return upload{vec: vec, proof: zkp.Forge(stmt)}, nil
	}
	vec, err := km.pub.EncryptVector(rand.Reader, width, hot)
	if err != nil {
		return upload{}, err
	}
	witness := make([]int64, width)
	witness[hot] = 1
	proof, err := zkp.NewProver(dev.Key).Prove(stmt, zkp.Witness{Vector: witness})
	if err != nil {
		return upload{}, err
	}
	return upload{vec: vec, proof: proof}, nil
}

// deviceUploadRetry wraps deviceUpload with the upload-timeout injection
// point and its capped-backoff retry policy. Each attempt's fate is a pure
// function of (plan seed, device ID, attempt), so the outcome — and the
// accepted set downstream — is identical at every worker count even though
// this runs on pool workers. A device that times out uploadBackoff.attempts
// times in a row is dropped (it behaves exactly like a churned-offline
// device: its row is simply missing).
func (d *Deployment) deviceUploadRetry(km *keyMaterial, dev *Device, width, hot int) (upload, error) {
	var timeouts int
	var backoff time.Duration
	//arblint:ignore ctxcheckpoint bounded retry: the device is dropped once attempt+1 reaches uploadBackoff.attempts
	for attempt := 0; ; attempt++ {
		if d.cfg.Faults.Fires(faults.UploadTimeout, dev.ID, attempt) {
			timeouts++
			if attempt+1 >= uploadBackoff.attempts {
				return upload{dev: dev.ID, timeouts: timeouts, backoff: backoff, dropped: true}, nil
			}
			backoff += uploadBackoff.delay(attempt)
			continue
		}
		up, err := d.deviceUpload(km, dev, width, hot)
		if err != nil {
			return upload{}, err
		}
		up.dev = dev.ID
		up.timeouts = timeouts
		up.backoff = backoff
		return up, nil
	}
}

// acceptUploads runs the aggregator's sequential side of input collection:
// traffic accounting and proof verification, in device order (the verifier's
// replay state is not synchronized, and keeping this loop ordered makes the
// metrics and the accepted set identical at every worker count).
func (d *Deployment) acceptUploads(verifier *zkp.Verifier, ups []upload) [][]*ahe.Ciphertext {
	var accepted [][]*ahe.Ciphertext
	for _, up := range ups {
		if d.tallyUpload(up) {
			continue // dropped after upload timeouts: nothing arrived
		}
		for _, ct := range up.vec {
			d.Metrics.DeviceBytesSent += int64(ct.Bytes())
		}
		d.Metrics.DeviceBytesSent += int64(up.proof.Bytes())
		d.Metrics.ZKPsVerified++
		if !verifier.Verify(up.proof) {
			d.Metrics.ZKPsRejected++
			continue
		}
		accepted = append(accepted, up.vec)
	}
	return accepted
}

// collectInputs has every device encrypt its one-hot row under the query
// key and prove well-formedness; the aggregator verifies each proof and
// drops invalid uploads (Section 5.3). The device-side work (encryption,
// proof generation) runs one pool task per online device; verification and
// metrics accounting stay sequential in device order.
func (d *Deployment) collectInputs(km *keyMaterial) ([][]*ahe.Ciphertext, error) {
	keys := make(map[int][]byte, len(d.Devices))
	for _, dev := range d.Devices {
		keys[dev.ID] = dev.Key
	}
	verifier := zkp.NewVerifier(keys)
	var online []*Device
	for _, dev := range d.Devices {
		if !dev.Offline { // churned devices simply do not upload
			online = append(online, dev)
		}
	}
	ups, err := parallel.Map(nil, len(online), d.workers(), func(i int) (upload, error) {
		return d.deviceUploadRetry(km, online[i], d.cfg.Categories, online[i].Category)
	})
	if err != nil {
		return nil, err
	}
	accepted := d.acceptUploads(verifier, ups)
	if len(accepted) == 0 {
		return nil, ErrNoValidInputs
	}
	return accepted, nil
}

// noiseRand returns the sampler used for committee noise: crypto/rand when
// Config.SecureNoise is set (a deployment's committee joint coin), otherwise
// the deterministic simulation stand-in seeded from the deployment RNG.
func (d *Deployment) noiseRand() mechanism.Rand {
	if d.cfg.SecureNoise {
		return mechanism.CryptoRand()
	}
	return mechanism.NewRand(d.rng.Int63())
}
