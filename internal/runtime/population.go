package runtime

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	goruntime "runtime"
	"sync"
	"time"

	"arboretum/internal/ahe"
	"arboretum/internal/faults"
	"arboretum/internal/zkp"
)

// A virtualPopulation derives per-device state (signing key, category) on
// demand from a 64-bit seed, so the streaming ingest pipeline can be driven
// at 10^7–10^8 simulated devices: per-device state is O(1), computed inside
// the shard that consumes it, and nothing population-sized is ever
// materialized. The ingest benchmarks, the memory-flatness smoke, and the
// exact-count crash tests all run on it.
type virtualPopulation struct {
	seed       uint64
	n          int
	categories int

	// Cached per-category template vectors (templatesFor): encrypting them
	// costs ~250 allocations per ciphertext, which would otherwise swamp
	// every benchmark iteration's allocation count with setup noise.
	tmplPub   *ahe.PublicKey
	templates [][]*ahe.Ciphertext
}

func newVirtualPopulation(seed uint64, n, categories int) *virtualPopulation {
	return &virtualPopulation{seed: seed, n: n, categories: categories}
}

// key derives device i's proof-signing key, SHA-256(seed ‖ i). Returned by
// value so hot paths can keep it out of the heap.
func (p *virtualPopulation) key(i int) [sha256.Size]byte {
	var msg [16]byte
	binary.LittleEndian.PutUint64(msg[0:], p.seed)
	binary.LittleEndian.PutUint64(msg[8:], uint64(i))
	return sha256.Sum256(msg[:])
}

// keyFunc adapts key to the verifier's on-demand lookup; the closure reuses
// one buffer, which KeyFunc's contract allows (the key is only read before
// the next call). Each shard verifier gets its own closure.
func (p *virtualPopulation) keyFunc() zkp.KeyFunc {
	buf := new([sha256.Size]byte)
	return func(dev int) []byte {
		if dev < 0 || dev >= p.n {
			return nil
		}
		*buf = p.key(dev)
		return buf[:]
	}
}

// category assigns device i a category from the same halving distribution as
// Deployment.defaultData (category 0 is the mode), but as a pure function of
// (seed, i) — tests recompute the exact expected histogram by iterating it.
func (p *virtualPopulation) category(i int) int {
	x := p.seed + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	c := 0
	for x&1 == 1 && c < p.categories-1 {
		c++
		x >>= 1
	}
	return c
}

// histogram iterates the population's exact per-category counts — the
// oracle the exact-count ingest tests decrypt against.
func (p *virtualPopulation) histogram() []int64 {
	counts := make([]int64, p.categories)
	for i := 0; i < p.n; i++ {
		counts[p.category(i)]++
	}
	return counts
}

// templateSource is the virtual population's upload source: every device of
// a category shares one pre-encrypted one-hot vector — the homomorphic fold
// neither knows nor cares that ciphertext values repeat — while proofs are
// generated per device on pooled scratch, because the verifier binds each
// proof to the device identity and query. Upload generation is therefore
// ~2 µs and zero steady-state allocations per device, which is what makes
// 10^7-device sweeps tractable where real per-device encryption (~ms) is
// not. Correctness is unaffected: proofs, replay protection, folding,
// commitments, and audits all run exactly as they do for real uploads.
type templateSource struct {
	pop     *virtualPopulation
	queryID uint64
	base, n int // the shard's device range [base, base+n)

	templates [][]*ahe.Ciphertext // shared per-category one-hot vectors (immutable)
	sc        *zkp.Scratch
	witness   []int64
	lastHot   int
	keyBuf    [sha256.Size]byte
}

func (s *templateSource) count() int { return s.n }

func (s *templateSource) fill(buf []upload, start, n int) error {
	width := s.pop.categories
	claim := zkp.Claim{Kind: zkp.ClaimOneHot, VectorLen: width}
	for i := 0; i < n; i++ {
		dev := s.base + start + i
		cat := s.pop.category(dev)
		s.witness[s.lastHot] = 0
		s.witness[cat] = 1
		s.lastHot = cat
		s.keyBuf = s.pop.key(dev)
		pr := buf[i].proof
		if pr == nil {
			pr = new(zkp.Proof) // batch-slot reuse: allocated once per slot
		}
		stmt := zkp.Statement{Device: dev, QueryID: s.queryID, Claim: claim}
		if err := zkp.ProveKeyed(s.sc, s.keyBuf[:], stmt, zkp.Witness{Vector: s.witness}, pr); err != nil {
			return err
		}
		buf[i] = upload{vec: s.templates[cat], proof: pr, dev: dev}
	}
	return nil
}

// templatesFor returns the population's per-category one-hot template
// vectors under pub — one vector per category, shared across every shard —
// encrypting and caching them on first use (the sweep's only width²-sized
// cost; benchmarks call this in setup so the timed loop starts warm). Not
// safe for concurrent first calls; the pipeline only reads the result.
func (p *virtualPopulation) templatesFor(pub *ahe.PublicKey) ([][]*ahe.Ciphertext, error) {
	if p.tmplPub == pub && p.templates != nil {
		return p.templates, nil
	}
	templates := make([][]*ahe.Ciphertext, p.categories)
	for cat := range templates {
		vec, err := pub.EncryptVector(rand.Reader, p.categories, cat)
		if err != nil {
			return nil, err
		}
		templates[cat] = vec
	}
	p.tmplPub, p.templates = pub, templates
	return templates, nil
}

// virtualIngest runs the streaming pipeline over a virtual population — the
// entry point for the ingest benchmarks and the crash/memory tests. With no
// faults fired, decrypting the returned sums yields pop.histogram exactly.
func virtualIngest(pop *virtualPopulation, pub *ahe.PublicKey, queryID uint64, shards, batch, workers int, plan *faults.Plan, gauge *heapGauge) (*ingestResult, error) {
	if shards <= 0 {
		shards = defaultIngestShards
	}
	if batch <= 0 {
		batch = defaultIngestBatch
	}
	width := pop.categories
	templates, err := pop.templatesFor(pub)
	if err != nil {
		return nil, err
	}
	sp := &ingestSpec{
		pub: pub, width: width, batch: batch,
		workers: workers, plan: plan, gauge: gauge,
	}
	jobs := make([]shardRun, shards)
	for s := range jobs {
		lo := s * pop.n / shards
		hi := (s + 1) * pop.n / shards
		jobs[s] = shardRun{
			base: lo,
			src: &templateSource{
				pop: pop, queryID: queryID, base: lo, n: hi - lo,
				templates: templates, sc: zkp.NewScratch(), witness: make([]int64, width),
			},
			verifier: zkp.NewVerifierFunc(pop.keyFunc(), lo, hi),
		}
	}
	return runShardedIngest(sp, jobs)
}

// heapGauge samples the process heap so the bench harness can report a
// peak-heap figure next to the timing trajectory — the memory-flatness
// evidence the ingest sweep exists to produce. Safe for concurrent use by
// shard tasks; ReadMemStats stops the world, so shards only call it at
// batch boundaries and the gauge keeps calls ≥50 ms apart. A nil gauge
// disables sampling.
type heapGauge struct {
	mu   sync.Mutex
	last time.Time
	peak uint64
}

// sample records the current heap allocation if the throttle window passed;
// force ignores the throttle (used at end-of-run boundaries).
func (g *heapGauge) sample(force bool) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	now := time.Now()
	if !force && now.Sub(g.last) < 50*time.Millisecond {
		return
	}
	g.last = now
	var ms goruntime.MemStats
	goruntime.ReadMemStats(&ms)
	if ms.HeapAlloc > g.peak {
		g.peak = ms.HeapAlloc
	}
}

// peakBytes returns the largest heap allocation observed.
func (g *heapGauge) peakBytes() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}
