package runtime

import (
	"testing"
)

// Certify is the gateway's admission pricer: it must agree exactly with the
// certificate Run later attaches, because the ledger reserves the former and
// commits the latter.
func TestCertifyMatchesRunCertificate(t *testing.T) {
	const n, categories = 64, 4
	src := `aggr = sum(db);
noised = laplace(aggr[0], 1.0);
output(declassify(noised));`
	cert, err := Certify(src, n, categories)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Epsilon <= 0 {
		t.Fatalf("certified ε = %g, want > 0", cert.Epsilon)
	}
	d := smallDeployment(t, n, categories)
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certificate.Epsilon != cert.Epsilon || res.Certificate.Delta != cert.Delta {
		t.Fatalf("Certify (ε=%g, δ=%g) disagrees with Run's certificate (ε=%g, δ=%g)",
			cert.Epsilon, cert.Delta, res.Certificate.Epsilon, res.Certificate.Delta)
	}
}

// Certification is a pure function of (source, n, categories) — no
// deployment, no side effects — and rejects non-private programs.
func TestCertifyRejects(t *testing.T) {
	if _, err := Certify("aggr = sum(db);\noutput(declassify(aggr[0]));", 64, 4); err == nil {
		t.Error("unnoised release certified")
	}
	if _, err := Certify("this is not a program", 64, 4); err == nil {
		t.Error("unparseable program certified")
	}
}
