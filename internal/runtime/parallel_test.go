package runtime

// Worker-count determinism: a deployment with a fixed seed must release
// byte-identical results — outputs, accepted counts, and measured metrics —
// whether the per-device work runs on 1 worker or many. All seeded-RNG draws
// happen sequentially on the coordinating goroutine; the parallel sections
// consume only crypto/rand, which never reaches the released values.

import (
	"reflect"
	"testing"
)

// stableMetrics zeroes the fields that measure byte lengths and MPC round
// counts of ciphertexts: those depend on crypto/rand draws (a Paillier
// ciphertext is occasionally a byte shorter) and vary run to run even
// sequentially. The remaining counters must be exact.
func stableMetrics(m Metrics) Metrics {
	m.DeviceBytesSent = 0
	m.AggregatorBytes = 0
	m.CommitteeBytes = 0
	m.MPCRounds = 0
	return m
}

func runOnce(t *testing.T, workers int, src string, opts RunOptions) (*Result, Metrics) {
	t.Helper()
	d, err := NewDeployment(Config{
		N: 48, Categories: 6, CommitteeSize: 5, Seed: 42,
		MaliciousFrac: 0.05, BudgetEpsilon: 1e9, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, d.Metrics
}

// TestRunDeterministicAcrossWorkers runs the same seeded query at 1 and 8
// workers and demands identical outputs and metrics.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	src := "aggr = sum(db);\nresult = em(aggr, 3.0);\noutput(result);"
	res1, m1 := runOnce(t, 1, src, RunOptions{})
	res8, m8 := runOnce(t, 8, src, RunOptions{})
	if !reflect.DeepEqual(res1.Outputs, res8.Outputs) {
		t.Fatalf("outputs differ across worker counts: %v vs %v", res1.Outputs, res8.Outputs)
	}
	if res1.Accepted != res8.Accepted || res1.Sampled != res8.Sampled {
		t.Fatalf("accepted/sampled differ: %d/%d vs %d/%d",
			res1.Accepted, res1.Sampled, res8.Accepted, res8.Sampled)
	}
	if stableMetrics(m1) != stableMetrics(m8) {
		t.Fatalf("metrics differ across worker counts:\n1 worker: %+v\n8 workers: %+v", m1, m8)
	}
}

// TestSumTreeDeterministicAcrossWorkers exercises the device sum tree (the
// outsourcing path) at both worker counts.
func TestSumTreeDeterministicAcrossWorkers(t *testing.T) {
	src := "aggr = sum(db);\nresult = em(aggr, 3.0);\noutput(result);"
	opts := RunOptions{SumTreeFanout: 4}
	res1, m1 := runOnce(t, 1, src, opts)
	res8, m8 := runOnce(t, 8, src, opts)
	if !reflect.DeepEqual(res1.Outputs, res8.Outputs) {
		t.Fatalf("sum-tree outputs differ: %v vs %v", res1.Outputs, res8.Outputs)
	}
	if stableMetrics(m1) != stableMetrics(m8) {
		t.Fatalf("sum-tree metrics differ:\n1 worker: %+v\n8 workers: %+v", m1, m8)
	}
}

// --- benchmarks ---

// BenchmarkCollectInputs moved to ingest_test.go, where it shares the
// per-device reporting harness with its streaming twin.

// BenchmarkDeviceSumTree times one sum-tree level over 64 encrypted vectors.
func BenchmarkDeviceSumTree(b *testing.B) {
	d, err := NewDeployment(Config{
		N: 64, Categories: 16, CommitteeSize: 5, Seed: 7, BudgetEpsilon: 1e9,
	})
	if err != nil {
		b.Fatal(err)
	}
	committees, err := d.selectCommittees(1)
	if err != nil {
		b.Fatal(err)
	}
	km, err := d.keygen(committees[0])
	if err != nil {
		b.Fatal(err)
	}
	inputs, err := d.collectInputs(km)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.deviceSumTree(km.pub, inputs, 8); err != nil {
			b.Fatal(err)
		}
	}
}
