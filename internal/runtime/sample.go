package runtime

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"arboretum/internal/ahe"
	"arboretum/internal/lang"
	"arboretum/internal/mechanism"
	"arboretum/internal/parallel"
	"arboretum/internal/zkp"
)

// The bin protocol of Section 6 implements secrecy of the sample: each
// participant places its (encrypted) contribution in one of b bins chosen
// uniformly at random, and the committee samples a secret window of x bins
// and decrypts only the window's sum. Devices cannot tell whether they were
// sampled (they never learn the window), and neither the committee nor the
// aggregator learns which bin a device chose — so nobody can observe which
// elements were selected, which is exactly what the amplification theorem
// requires.

// sampleBinCount is the b of the protocol in the simulation (the paper uses
// the number of plaintext slots in a standard ciphertext).
const sampleBinCount = 16

// sampleRate extracts the sampleUniform rate from a program (0 = none).
func sampleRate(prog *lang.Program) float64 {
	rate := 0.0
	lang.WalkExprs(prog.Stmts, func(e lang.Expr) {
		if call, ok := e.(*lang.CallExpr); ok && call.Func == "sampleUniform" {
			switch lit := call.Args[0].(type) {
			case *lang.FloatLit:
				rate = lit.Value
			case *lang.IntLit:
				rate = float64(lit.Value)
			}
		}
	})
	return rate
}

// collectBinnedInputs has every online device upload a b×C vector: its
// one-hot row in a uniformly random bin, zeros everywhere else, with a ZKP
// that the whole vector is one-hot. It returns the accepted vectors and the
// (simulation-only) bin each accepted device chose.
//
// The bin draws come from the deployment's seeded RNG, so they happen
// sequentially in device order BEFORE the parallel section — the RNG stream
// is consumed identically at every worker count. The encryption and proof
// work then fans out one pool task per device, and verification re-runs
// sequentially in device order.
func (d *Deployment) collectBinnedInputs(km *keyMaterial) ([][]*ahe.Ciphertext, []int, error) {
	keys := make(map[int][]byte, len(d.Devices))
	for _, dev := range d.Devices {
		keys[dev.ID] = dev.Key
	}
	verifier := zkp.NewVerifier(keys)
	cats := d.cfg.Categories
	width := sampleBinCount * cats
	var online []*Device
	var chosen []int
	for _, dev := range d.Devices {
		if dev.Offline {
			continue
		}
		online = append(online, dev)
		chosen = append(chosen, d.rng.Intn(sampleBinCount))
	}
	ups, err := parallel.Map(nil, len(online), d.workers(), func(i int) (upload, error) {
		hot := chosen[i]*cats + online[i].Category
		return d.deviceUploadRetry(km, online[i], width, hot)
	})
	if err != nil {
		return nil, nil, err
	}
	var accepted [][]*ahe.Ciphertext
	var bins []int
	for i, up := range ups {
		if d.tallyUpload(up) {
			continue // dropped after exhausting upload retries
		}
		for _, ct := range up.vec {
			d.Metrics.DeviceBytesSent += int64(ct.Bytes())
		}
		d.Metrics.DeviceBytesSent += int64(up.proof.Bytes())
		d.Metrics.ZKPsVerified++
		if !verifier.Verify(up.proof) {
			d.Metrics.ZKPsRejected++
			continue
		}
		accepted = append(accepted, up.vec)
		bins = append(bins, chosen[i])
	}
	if len(accepted) == 0 {
		return nil, nil, fmt.Errorf("%w: no binned inputs survived", ErrNoValidInputs)
	}
	return accepted, bins, nil
}

// windowSums lets the committee decrypt only the sampled window: it draws
// the secret window start j, homomorphically folds the window's bins into
// per-category sums (out-of-window bins are simply never touched), and
// reports how many accepted devices the window covered (simulation-side, for
// tests — in the real protocol nobody learns this).
func (d *Deployment) windowSums(km *keyMaterial, perBin []*ahe.Ciphertext, bins []int, rate float64) ([]*ahe.Ciphertext, int, error) {
	cats := d.cfg.Categories
	if len(perBin) != sampleBinCount*cats {
		return nil, 0, fmt.Errorf("runtime: bin layout mismatch: %d cells", len(perBin))
	}
	x := int(rate*sampleBinCount + 0.5)
	if x < 1 {
		x = 1
	}
	if x > sampleBinCount {
		x = sampleBinCount
	}
	sb, err := mechanism.NewSampleBins(d.noiseRand(), sampleBinCount, x)
	if err != nil {
		return nil, 0, err
	}
	sums := make([]*ahe.Ciphertext, cats)
	for c := 0; c < cats; c++ {
		for bin := 0; bin < sampleBinCount; bin++ {
			if !sb.Included(bin) {
				continue
			}
			cell := perBin[bin*cats+c]
			if sums[c] == nil {
				zero, err := km.pub.Encrypt(rand.Reader, big.NewInt(0))
				if err != nil {
					return nil, 0, err
				}
				sums[c] = zero
			}
			folded, err := km.pub.Add(sums[c], cell)
			if err != nil {
				return nil, 0, err
			}
			sums[c] = folded
		}
	}
	covered := 0
	for _, b := range bins {
		if sb.Included(b) {
			covered++
		}
	}
	return sums, covered, nil
}
