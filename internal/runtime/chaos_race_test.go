//go:build race

package runtime

// Under the race detector the full 51-run sweep would dominate tier-1 wall
// time; a smaller slice keeps the race pass focused on interleavings — the
// full coverage sweep runs in the non-race pass.
const chaosSchedules = 5
