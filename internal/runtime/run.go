package runtime

import (
	"context"
	"fmt"
	"strings"

	"arboretum/internal/ahe"
	"arboretum/internal/fixed"
	"arboretum/internal/mechanism"
	"arboretum/internal/parallel"
	"arboretum/internal/privacy"
	"arboretum/internal/queries"
	"arboretum/internal/sortition"
)

// RunOptions selects execution-level choices the planner normally makes.
type RunOptions struct {
	// EMVariant picks the exponential-mechanism instantiation (Figure 4);
	// the default is the Gumbel variant.
	EMVariant mechanism.EMVariant
	// SumTreeFanout > 0 makes devices aggregate in a tree of this fanout
	// instead of the aggregator's loop (the outsourcing option).
	SumTreeFanout int
	// Ctx cancels the run cooperatively: the runtime checks it at phase,
	// statement, vignette-attempt, and ingest-batch boundaries — points
	// where nothing is half-open, so a canceled run aborts without having
	// released anything on the in-flight step — and returns the context's
	// error wrapped with the checkpoint that observed it. nil never
	// cancels. The gateway uses this for per-job deadlines
	// (docs/SERVICE.md).
	Ctx context.Context
}

// checkpoint returns the run context's error, wrapped with where the
// cancellation was observed, once the context is done; nil otherwise. The
// caller sites are the run's cancellation checkpoints: batch, vignette,
// statement, and phase boundaries.
func (d *Deployment) checkpoint(where string) error {
	if d.runCtx == nil {
		return nil
	}
	select {
	case <-d.runCtx.Done():
		return fmt.Errorf("runtime: run canceled at %s: %w", where, d.runCtx.Err())
	default:
		return nil
	}
}

// Result is a completed query execution.
type Result struct {
	Outputs     []fixed.Fixed
	Certificate *privacy.Certificate
	Auth        *AuthCertificate // the published query authorization
	Sampled     int              // devices included by secrecy-of-the-sample (0 = all)
	Accepted    int              // inputs that passed ZKP verification
}

// Run executes one query end to end over the deployment (Section 5's whole
// pipeline). It charges the privacy budget, runs sortition, key generation,
// ZKP-checked input collection, audited aggregation, committee vignettes,
// and returns the released outputs.
func (d *Deployment) Run(src string, opts RunOptions) (*Result, error) {
	d.runCtx = opts.Ctx
	defer func() { d.runCtx = nil }()
	prog, cert, err := certifyProgram(src, d.cfg.N, d.cfg.Categories)
	if err != nil {
		return nil, err
	}
	if err := d.checkpoint("query start"); err != nil {
		return nil, err
	}

	// Sortition for this query round: committee 0 generates keys
	// (Section 5.2), committee 1 runs the first operations/decryption
	// vignettes, and later committees take over at mechanism boundaries
	// with VSR hand-offs (Section 5.4). Extra committees also serve as
	// spares when churn breaks one (Section 5.1).
	const spares = 4
	want := 2 + spares
	if max := len(d.Devices) / d.cfg.CommitteeSize; want > max {
		want = max
	}
	all, err := d.selectCommittees(want)
	if err != nil {
		return nil, err
	}
	committees, err := d.pickViable(all, 2)
	if err != nil {
		return nil, err
	}
	// Every remaining viable committee joins the rotation pool.
	var pool []sortition.Committee
	for _, c := range all[len(committees)+d.Metrics.Reassignments:] {
		if d.viableCommittee(c) {
			pool = append(pool, d.onlineMembers(c))
		}
	}
	d.queryID++

	km, err := d.keygen(committees[0])
	if err != nil {
		return nil, err
	}
	// The key-generation committee checks the budget before authorizing the
	// query (Section 5.2).
	if err := d.Budget.Charge(cert); err != nil {
		return nil, fmt.Errorf("runtime: query rejected: %w", err)
	}
	// ... and signs the query authorization certificate, which devices
	// verify before encrypting anything under the new key.
	auth, err := d.issueCertificate(km, planDigest(src))
	if err != nil {
		return nil, err
	}
	if err := d.VerifyCertificate(auth); err != nil {
		return nil, fmt.Errorf("runtime: devices reject certificate: %w", err)
	}

	if err := d.checkpoint("input collection"); err != nil {
		return nil, err
	}
	// Input collection and audited aggregation (Section 5.3). Sampling
	// queries run the bin protocol of Section 6: devices hide their
	// contribution in a random bin and the committee decrypts only a secret
	// window of bins.
	var (
		sums     []*ahe.Ciphertext
		sampled  int
		accepted int
	)
	if rate := sampleRate(prog); rate > 0 && rate < 1 {
		var perBin []*ahe.Ciphertext
		var binOf []int
		if d.cfg.StreamIngest {
			// The streaming pipeline folds and audits as batches arrive
			// (docs/INGEST.md); only the window decryption remains.
			perBin, binOf, err = d.streamCollectBinned(km)
			if err != nil {
				return nil, err
			}
		} else {
			binned, bins, err := d.collectBinnedInputs(km)
			if err != nil {
				return nil, err
			}
			as, running, err := aggregateWithAudit(km.pub, binned, d.cfg.ByzantineAggregator, d.cfg.Faults, &d.Metrics)
			if err != nil {
				return nil, err
			}
			if err := d.runAudits(as); err != nil {
				return nil, fmt.Errorf("runtime: audit: %w", err)
			}
			perBin, binOf = running, bins
		}
		sums, sampled, err = d.windowSums(km, perBin, binOf, rate)
		if err != nil {
			return nil, err
		}
		accepted = len(binOf)
	} else if d.cfg.StreamIngest {
		// Shard pre-aggregation subsumes both the device sum tree and the
		// legacy chunked aggregator fold; the sums arrive combined and
		// audited.
		sums, accepted, err = d.streamCollectInputs(km)
		if err != nil {
			return nil, err
		}
		sampled = accepted
	} else {
		inputs, err := d.collectInputs(km)
		if err != nil {
			return nil, err
		}
		// With a sum tree the devices pre-aggregate in groups before the
		// aggregator combines (the planner's outsourcing option).
		if opts.SumTreeFanout > 1 {
			inputs, err = d.deviceSumTree(km.pub, inputs, opts.SumTreeFanout)
			if err != nil {
				return nil, err
			}
		}
		as, running, err := aggregateWithAudit(km.pub, inputs, d.cfg.ByzantineAggregator, d.cfg.Faults, &d.Metrics)
		if err != nil {
			return nil, err
		}
		if err := d.runAudits(as); err != nil {
			return nil, fmt.Errorf("runtime: audit: %w", err)
		}
		sums = running
		accepted = len(inputs)
		sampled = accepted
	}

	// Hand the key to the operations committee via VSR (Section 5.2), then
	// run the program with that committee attached.
	if err := d.checkpoint("key hand-off"); err != nil {
		return nil, err
	}
	if err := km.handoff(d, committees[1]); err != nil {
		return nil, err
	}
	ce, err := d.newCommittee(committees[1])
	if err != nil {
		return nil, err
	}
	ip := &interp{
		dep: d, km: km, ce: ce,
		pool:      pool,
		env:       map[string]value{},
		dbSums:    sums,
		sens:      cert.Sensitivity,
		emVariant: opts.EMVariant,
	}
	if err := ip.run(prog.Stmts); err != nil {
		return nil, err
	}
	// Fold every committee engine's traffic into the metrics (rotated-away
	// committees may have kept serving transfers).
	for _, e := range d.execs {
		e.flushMetrics()
	}
	d.execs = nil

	return &Result{
		Outputs:     ip.outputs,
		Certificate: cert,
		Auth:        auth,
		Sampled:     sampled,
		Accepted:    accepted,
	}, nil
}

// foldGroups folds vectors column-wise in contiguous groups of the given
// fanout — one pool task per group, partials reassembled in group order, so
// the output is identical at every worker count. It is the shared tree-level
// step of deviceSumTree (devices pre-aggregating) and the streaming ingest's
// hierarchical shard combine, and reports the traffic the folds generated.
func foldGroups(pub *ahe.PublicKey, inputs [][]*ahe.Ciphertext, fanout, workers int) ([][]*ahe.Ciphertext, int64, error) {
	nGroups := (len(inputs) + fanout - 1) / fanout
	type groupSum struct {
		acc  []*ahe.Ciphertext
		sent int64
	}
	sums, err := parallel.Map(nil, nGroups, workers, func(g int) (groupSum, error) {
		start := g * fanout
		end := start + fanout
		if end > len(inputs) {
			end = len(inputs)
		}
		group := inputs[start:end]
		acc := append([]*ahe.Ciphertext(nil), group[0]...)
		var sent int64
		for _, vec := range group[1:] {
			for c := range acc {
				sum, err := pub.Add(acc[c], vec[c])
				if err != nil {
					return groupSum{}, err
				}
				acc[c] = sum
				sent += int64(sum.Bytes())
			}
		}
		return groupSum{acc: acc, sent: sent}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	out := make([][]*ahe.Ciphertext, 0, nGroups)
	var sent int64
	for _, gs := range sums {
		out = append(out, gs.acc)
		sent += gs.sent
	}
	return out, sent, nil
}

// deviceSumTree pre-aggregates inputs in device groups of the given fanout
// (one tree level is enough to exercise the path; deeper trees repeat it).
// The per-group traffic is device-side, so it tallies into DeviceBytesSent.
func (d *Deployment) deviceSumTree(pub *ahe.PublicKey, inputs [][]*ahe.Ciphertext, fanout int) ([][]*ahe.Ciphertext, error) {
	out, sent, err := foldGroups(pub, inputs, fanout, d.workers())
	if err != nil {
		return nil, err
	}
	d.Metrics.DeviceBytesSent += sent
	return out, nil
}

// quantileSrc builds the quantile query with a large ε for deterministic
// small-scale tests.
func quantileSrc(num, den int64) (string, error) {
	src, err := queries.QuantileSource(num, den)
	if err != nil {
		return "", err
	}
	return strings.ReplaceAll(src, "em(util, 0.1)", "em(util, 3.0)"), nil
}
