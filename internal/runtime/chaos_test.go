package runtime

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"arboretum/internal/faults"
	"arboretum/internal/fixed"
	"arboretum/internal/vsr"
)

// The chaos suite drives full end-to-end queries under seeded fault
// injection (docs/FAULTS.md) and asserts the fail-closed contract: every run
// either completes with a correct, in-budget answer, or returns one of the
// runtime's typed errors — never a silently wrong or budget-violating
// result. Every schedule is a pure function of its plan seed, so a failing
// seed reported by `go test` replays bit-for-bit.

// chaosData pins a seed-independent distribution over 4 categories:
// 24 devices in category 1, 16 in category 3, 4 each in categories 0 and 2.
// Category 1 wins top-1 by a margin of 8; {1, 3} win top-2 by 12.
func chaosData(i int) int {
	switch r := i % 12; {
	case r <= 5:
		return 1
	case r <= 9:
		return 3
	case r == 10:
		return 0
	default:
		return 2
	}
}

const chaosN = 48

func chaosDeployment(t *testing.T, plan *faults.Plan, seed int64) *Deployment {
	t.Helper()
	d, err := NewDeployment(Config{
		N: chaosN, Categories: 4, CommitteeSize: 5, Seed: seed, KeyBits: 256,
		BudgetEpsilon: 1000, Data: chaosData, Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// chaosDropped recomputes, from the plan alone, which devices the schedule
// drops (all upload attempts time out) — the same pure function the runtime
// evaluates, so the test can derive the fault-free reference answer.
func chaosDropped(p *faults.Plan) map[int]bool {
	out := map[int]bool{}
	for id := 0; id < chaosN; id++ {
		dropped := true
		for attempt := 0; attempt < uploadBackoff.attempts; attempt++ {
			if !p.Fires(faults.UploadTimeout, id, attempt) {
				dropped = false
				break
			}
		}
		if dropped {
			out[id] = true
		}
	}
	return out
}

// chaosCounts is the per-category histogram over the devices that survive
// the schedule's upload faults.
func chaosCounts(p *faults.Plan) [4]int {
	var counts [4]int
	dropped := chaosDropped(p)
	for i := 0; i < chaosN; i++ {
		if !dropped[i] {
			counts[chaosData(i)]++
		}
	}
	return counts
}

// top2 returns the two highest-count categories and the margins protecting
// them (winner over runner-up, runner-up over third).
func top2(counts [4]int) (first, second, margin1, margin2 int) {
	order := []int{0, 1, 2, 3}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if counts[order[j]] > counts[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	return order[0], order[1],
		counts[order[0]] - counts[order[1]],
		counts[order[1]] - counts[order[2]]
}

// chaosShape is one query shape of the sweep; check validates a completed
// run's outputs against the plan-derived reference answer.
type chaosShape struct {
	name  string
	src   string
	check func(t *testing.T, p *faults.Plan, outputs []fixed.Fixed)
}

// chaosMargin is the noise margin below which selection shapes skip the
// exactness check: with ε=6 the Gumbel scale is at most 2·sens/ε ≤ 2/3, so a
// margin of 6 flips with probability ~1/(1+e^9) — negligible over the sweep.
const chaosMargin = 6

var chaosShapes = []chaosShape{
	{
		name: "count",
		src: `aggr = sum(db);
noised = laplace(aggr[0], 5.0);
output(declassify(noised));`,
		check: func(t *testing.T, p *faults.Plan, outputs []fixed.Fixed) {
			counts := chaosCounts(p)
			got := outputs[0].Float()
			want := float64(counts[0])
			if got < want-15 || got > want+15 {
				t.Errorf("count = %g, fault-free reference %g", got, want)
			}
		},
	},
	{
		name: "top1",
		src: `aggr = sum(db);
best = em(aggr, 6.0);
output(best);`,
		check: func(t *testing.T, p *faults.Plan, outputs []fixed.Fixed) {
			first, _, m1, _ := top2(chaosCounts(p))
			if m1 < chaosMargin {
				return
			}
			if got := outputs[0].Int(); got != int64(first) {
				t.Errorf("top1 = %d, want %d (margin %d)", got, first, m1)
			}
		},
	},
	{
		name: "top2",
		src: `aggr = sum(db);
top = topk(aggr, 2, 6.0);
output(top[0]);
output(top[1]);`,
		check: func(t *testing.T, p *faults.Plan, outputs []fixed.Fixed) {
			first, second, m1, m2 := top2(chaosCounts(p))
			if m1 < chaosMargin || m2 < chaosMargin {
				return
			}
			if got := outputs[0].Int(); got != int64(first) {
				t.Errorf("top2[0] = %d, want %d", got, first)
			}
			if got := outputs[1].Int(); got != int64(second) {
				t.Errorf("top2[1] = %d, want %d", got, second)
			}
		},
	},
}

// chaosTypedErr reports whether a failed run failed *closed*: the error must
// match one of the runtime's typed failure modes.
func chaosTypedErr(err error) bool {
	for _, target := range []error{
		ErrCommitteeBroken, ErrCommitteeDegraded, ErrNoSpareCommittee,
		ErrHandoffFailed, ErrAggregatorFailed, ErrShardFailed, ErrNoValidInputs,
		vsr.ErrInsufficientShares,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// chaosBudgetEps runs each shape once without faults to learn its certified
// per-query ε — the only amount any faulty run may charge.
func chaosBudgetEps(t *testing.T, src string) float64 {
	t.Helper()
	d := chaosDeployment(t, nil, 42)
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatalf("fault-free baseline failed: %v", err)
	}
	return res.Certificate.Epsilon
}

// assertBudget enforces the no-double-spend invariant for one run: the
// deployment charged either nothing (rejected before authorization) or
// exactly one certificate — regardless of how many retries, re-formations,
// and re-deals recovery went through.
func assertBudget(t *testing.T, d *Deployment, certEps float64, label string) {
	t.Helper()
	remaining, _ := d.Budget.Remaining()
	spent := d.cfg.BudgetEpsilon - remaining
	if q := d.Budget.Queries(); q > 1 {
		t.Errorf("%s: %d budget charges for one run", label, q)
	}
	if !(almostEq(spent, 0) || almostEq(spent, certEps)) {
		t.Errorf("%s: spent ε=%g, want 0 or %g", label, spent, certEps)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestChaosSweep is the acceptance sweep: ≥50 (schedule, shape) runs with
// all four fault kinds armed. Zero wrong answers and zero budget violations
// are required; failures must be typed.
func TestChaosSweep(t *testing.T) {
	schedules := chaosSchedules // × 3 shapes; see chaos_norace_test.go
	certEps := map[string]float64{}
	for _, shape := range chaosShapes {
		certEps[shape.name] = chaosBudgetEps(t, shape.src)
	}
	// Every (schedule, shape) run is an independent deployment, so the sweep
	// fans out as parallel subtests; the completion tally is checked by the
	// cleanup hook once they all finish.
	var mu sync.Mutex
	completed, failedClosed := 0, 0
	t.Cleanup(func() {
		t.Logf("chaos sweep: %d completed, %d failed closed", completed, failedClosed)
		if completed == 0 {
			t.Error("no schedule completed — rates are too hot to exercise recovery")
		}
	})
	for s := 0; s < schedules; s++ {
		for _, shape := range chaosShapes {
			s, shape := s, shape
			t.Run(fmt.Sprintf("schedule%d/%s", s, shape.name), func(t *testing.T) {
				t.Parallel()
				plan := faults.New(uint64(1000+s)).
					SetRate(faults.UploadTimeout, 0.08).
					SetRate(faults.MemberDropout, 0.002).
					SetRate(faults.DealerFailure, 0.08).
					SetRate(faults.AggregatorCrash, 0.2)
				d := chaosDeployment(t, plan, 42)
				res, err := d.Run(shape.src, RunOptions{})
				assertBudget(t, d, certEps[shape.name], shape.name)
				if err != nil {
					mu.Lock()
					failedClosed++
					mu.Unlock()
					if !chaosTypedErr(err) {
						t.Errorf("untyped failure: %v", err)
					}
					return
				}
				mu.Lock()
				completed++
				mu.Unlock()
				shape.check(t, plan, res.Outputs)
			})
		}
	}
}

// TestChaosReplayDeterminism: the same plan seed replays bit-for-bit — same
// outputs, same fired-fault log (coordinates and notes), same recovery
// counters, same MPC round count, same error. Byte totals are excluded:
// ciphertext lengths come from crypto/rand, which never reaches the
// schedule, the released values, or the round structure.
func TestChaosReplayDeterminism(t *testing.T) {
	type trace struct {
		outputs []fixed.Fixed
		errText string
		fired   []faults.Fault
		rounds  int
		metrics [11]int
	}
	run := func() trace {
		plan := faults.New(7).
			SetRate(faults.UploadTimeout, 0.15).
			SetRate(faults.MemberDropout, 0.004).
			SetRate(faults.DealerFailure, 0.2).
			SetRate(faults.AggregatorCrash, 0.3)
		d := chaosDeployment(t, plan, 42)
		res, err := d.Run(chaosShapes[1].src, RunOptions{})
		m := d.Metrics
		tr := trace{
			fired:  plan.Fired(),
			rounds: m.MPCRounds,
			metrics: [11]int{
				m.UploadTimeouts, m.UploadRetries, m.UploadsDropped,
				m.MemberDropouts, m.Reformations, m.DealerFailures,
				m.VSRRedeals, m.AggregatorCrashes, m.AggregatorResumes,
				m.VignetteRetries, int(m.BackoffSimulated),
			},
		}
		if err != nil {
			tr.errText = err.Error()
		} else {
			tr.outputs = res.Outputs
		}
		return tr
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("replay diverged:\n  first:  %+v\n  second: %+v", a, b)
	}
}

// TestChaosCrashResumeAudit: a forced aggregator crash at chunk 1 resumes
// from the last Merkle-audited checkpoint, the query completes, and the full
// end-to-end audit passes over every chunk.
func TestChaosCrashResumeAudit(t *testing.T) {
	plan := faults.New(11).Force(faults.AggregatorCrash, 1)
	d := chaosDeployment(t, plan, 42)
	res, err := d.Run(chaosShapes[0].src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Metrics.AggregatorCrashes != 1 || d.Metrics.AggregatorResumes != 1 {
		t.Errorf("crashes=%d resumes=%d, want 1/1",
			d.Metrics.AggregatorCrashes, d.Metrics.AggregatorResumes)
	}
	// ceil(48/16) = 3 chunks, all audited, none failing: the checkpoint the
	// aggregator resumed from is the same commitment the devices audit.
	if d.Metrics.AuditsServed != 3 || d.Metrics.AuditFailures != 0 {
		t.Errorf("audits served=%d failures=%d, want 3/0",
			d.Metrics.AuditsServed, d.Metrics.AuditFailures)
	}
	got, want := res.Outputs[0].Float(), 4.0
	if got < want-15 || got > want+15 {
		t.Errorf("count = %g, want ≈%g", got, want)
	}
}

// TestChaosTotalDropoutFailsClosed: a member dropout every single MPC round
// breaks every committee the pool can offer; the run must fail with the
// degraded/exhausted typed errors and release nothing.
func TestChaosTotalDropoutFailsClosed(t *testing.T) {
	plan := faults.New(3).SetRate(faults.MemberDropout, 1)
	d := chaosDeployment(t, plan, 42)
	res, err := d.Run(chaosShapes[1].src, RunOptions{})
	if err == nil {
		t.Fatalf("run completed under total dropout: %+v", res.Outputs)
	}
	if !errors.Is(err, ErrCommitteeDegraded) && !errors.Is(err, ErrNoSpareCommittee) &&
		!errors.Is(err, ErrCommitteeBroken) {
		t.Errorf("unexpected failure mode: %v", err)
	}
	assertBudget(t, d, chaosBudgetEps(t, chaosShapes[1].src), "total dropout")
}

// TestChaosTotalDealerFailureFailsClosed: when every dealer vanishes during
// every hand-off attempt, the hand-off fails with the typed error chain
// ErrHandoffFailed → vsr.ErrInsufficientShares.
func TestChaosTotalDealerFailureFailsClosed(t *testing.T) {
	plan := faults.New(5).SetRate(faults.DealerFailure, 1)
	d := chaosDeployment(t, plan, 42)
	_, err := d.Run(chaosShapes[0].src, RunOptions{})
	if err == nil {
		t.Fatal("run completed with every dealer failing")
	}
	if !errors.Is(err, ErrHandoffFailed) {
		t.Errorf("want ErrHandoffFailed, got %v", err)
	}
	if !errors.Is(err, vsr.ErrInsufficientShares) {
		t.Errorf("want vsr.ErrInsufficientShares in the chain, got %v", err)
	}
}

// TestChaosTotalUploadTimeoutFailsClosed: when every upload attempt times
// out, collection fails closed with ErrNoValidInputs.
func TestChaosTotalUploadTimeoutFailsClosed(t *testing.T) {
	plan := faults.New(9).SetRate(faults.UploadTimeout, 1)
	d := chaosDeployment(t, plan, 42)
	_, err := d.Run(chaosShapes[0].src, RunOptions{})
	if !errors.Is(err, ErrNoValidInputs) {
		t.Errorf("want ErrNoValidInputs, got %v", err)
	}
	if d.Metrics.UploadsDropped != chaosN {
		t.Errorf("dropped %d devices, want %d", d.Metrics.UploadsDropped, chaosN)
	}
}

// TestChaosDealerFailureRecovers: with a moderate dealer-failure rate the
// hand-off re-deals from the surviving share-holders and the query still
// completes correctly.
func TestChaosDealerFailureRecovers(t *testing.T) {
	plan := faults.New(21).SetRate(faults.DealerFailure, 0.3)
	d := chaosDeployment(t, plan, 42)
	res, err := d.Run(chaosShapes[0].src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Metrics.DealerFailures == 0 {
		t.Error("schedule injected no dealer failures; pick a different seed")
	}
	got, want := res.Outputs[0].Float(), 4.0
	if got < want-15 || got > want+15 {
		t.Errorf("count = %g, want ≈%g", got, want)
	}
}
