package runtime

import (
	"crypto/rand"
	"strings"
	"testing"

	"arboretum/internal/ahe"
)

func auditFixture(t *testing.T, devices, categories int, byz bool) (*auditedSum, []*ahe.Ciphertext, *ahe.PrivateKey) {
	t.Helper()
	sk, err := ahe.GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]*ahe.Ciphertext, devices)
	for i := range inputs {
		vec, err := sk.EncryptVector(rand.Reader, categories, i%categories)
		if err != nil {
			t.Fatal(err)
		}
		inputs[i] = vec
	}
	as, sums, err := aggregateWithAudit(&sk.PublicKey, inputs, byz, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return as, sums, sk
}

func TestAuditedSumCorrectTotals(t *testing.T) {
	const devices, categories = 40, 4
	as, sums, sk := auditFixture(t, devices, categories, false)
	// Column sums must match the data distribution (devices i%4).
	for c := 0; c < categories; c++ {
		got, err := sk.Decrypt(sums[c])
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != devices/categories {
			t.Errorf("category %d sum = %v, want %d", c, got, devices/categories)
		}
	}
	// Chunks: ceil(40/16) = 3 partials committed.
	if as.tree.Size() != 3 {
		t.Errorf("tree has %d leaves, want 3", as.tree.Size())
	}
	// Every honest chunk audits clean.
	for k := 0; k < as.tree.Size(); k++ {
		if err := as.audit(k); err != nil {
			t.Errorf("honest chunk %d failed audit: %v", k, err)
		}
	}
}

func TestAuditedSumDetectsCorruption(t *testing.T) {
	as, _, _ := auditFixture(t, 48, 4, true)
	failures := 0
	for k := 0; k < as.tree.Size(); k++ {
		if err := as.audit(k); err != nil {
			failures++
			if !strings.Contains(err.Error(), "misbehavior") {
				t.Errorf("unexpected audit error: %v", err)
			}
		}
	}
	// Exactly the corrupted chunk fails (the corruption carries forward so
	// later chunks recompute consistently from the bad partial — the audit
	// localizes the lie to where it was told).
	if failures != 1 {
		t.Errorf("%d chunks failed audit, want exactly 1", failures)
	}
}

func TestAuditIndexValidation(t *testing.T) {
	as, _, _ := auditFixture(t, 20, 2, false)
	if err := as.audit(-1); err == nil {
		t.Error("negative audit index accepted")
	}
	if err := as.audit(99); err == nil {
		t.Error("out-of-range audit index accepted")
	}
}

func TestAggregateWithAuditEmpty(t *testing.T) {
	sk, _ := ahe.GenerateKey(rand.Reader, 512)
	if _, _, err := aggregateWithAudit(&sk.PublicKey, nil, false, nil, nil); err == nil {
		t.Error("empty aggregation accepted")
	}
}
