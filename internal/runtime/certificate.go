package runtime

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"arboretum/internal/hashing"
	"arboretum/internal/merkle"
	"arboretum/internal/sortition"
)

// AuthCertificate is the query authorization certificate of Section 5.2:
// after checking the privacy budget, the key-generation committee jointly
// signs a record containing the public key, the query sequence number, the
// query plan, the remaining budget balance for the next round's committee, a
// fresh Merkle tree of the registered devices, and the next random block.
// The aggregator publishes it; devices verify the committee signatures
// before encrypting their data under the key.
//
// Including the device registry root prevents the "computational grinding"
// attack the paper describes: a Byzantine aggregator that already knows
// B_{i+1} cannot register lots of fresh keypairs to bias the next
// committees, because the signed M_i pins the registry before B_{i+1} was
// revealed.
type AuthCertificate struct {
	QueryID      uint64
	PublicKeyFP  [sha256.Size]byte // fingerprint of the AHE/FHE public key
	PlanDigest   [sha256.Size]byte // hash of the query plan
	BudgetLeft   float64           // remaining ε for the next committee
	RegistryRoot merkle.Hash       // M_i: the registered devices
	NextBlock    [sha256.Size]byte // B_{i+1}, jointly generated
	// Signatures holds one member signature per key-committee member (the
	// simulation's stand-in for a joint threshold signature).
	Signatures [][]byte
	committee  sortition.Committee
}

// certBody serializes the signed portion.
func (c *AuthCertificate) certBody() []byte {
	buf := make([]byte, 0, 8+3*sha256.Size+8+merkle.HashSize)
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], c.QueryID)
	buf = append(buf, u[:]...)
	buf = append(buf, c.PublicKeyFP[:]...)
	buf = append(buf, c.PlanDigest[:]...)
	binary.LittleEndian.PutUint64(u[:], uint64(c.BudgetLeft*1e6))
	buf = append(buf, u[:]...)
	buf = append(buf, c.RegistryRoot[:]...)
	buf = append(buf, c.NextBlock[:]...)
	return buf
}

func signCert(key []byte, body []byte) []byte {
	mac := hmac.New(sha256.New, key)
	hashing.Write(mac, []byte("arboretum-query-cert"), body)
	return mac.Sum(nil)
}

// issueCertificate has the key committee sign the certificate after the
// budget check.
func (d *Deployment) issueCertificate(km *keyMaterial, planDigest [sha256.Size]byte) (*AuthCertificate, error) {
	epsLeft, _ := d.Budget.Remaining()
	cert := &AuthCertificate{
		QueryID:      d.queryID,
		PlanDigest:   planDigest,
		BudgetLeft:   epsLeft,
		RegistryRoot: d.registry.Root(),
		committee:    km.holder,
	}
	copy(cert.NextBlock[:], d.block)
	h := sha256.Sum256(km.pub.N.Bytes())
	cert.PublicKeyFP = h
	body := cert.certBody()
	for _, member := range km.holder {
		if member < 0 || member >= len(d.Devices) {
			return nil, fmt.Errorf("runtime: certificate signer %d out of range", member)
		}
		cert.Signatures = append(cert.Signatures, signCert(d.Devices[member].Key, body))
	}
	return cert, nil
}

// VerifyCertificate checks a published certificate the way a device does:
// every committee member's signature must verify against the member's key,
// and a majority of the committee must have signed. It returns an error
// describing the first problem found.
func (d *Deployment) VerifyCertificate(cert *AuthCertificate) error {
	if cert == nil {
		return fmt.Errorf("runtime: nil certificate")
	}
	if len(cert.Signatures) != len(cert.committee) {
		return fmt.Errorf("runtime: certificate has %d signatures for %d members",
			len(cert.Signatures), len(cert.committee))
	}
	if cert.RegistryRoot != d.registry.Root() {
		return fmt.Errorf("runtime: certificate registry root does not match (grinding attempt?)")
	}
	body := cert.certBody()
	good := 0
	for i, member := range cert.committee {
		want := signCert(d.Devices[member].Key, body)
		if hmac.Equal(want, cert.Signatures[i]) {
			good++
		}
	}
	if good*2 <= len(cert.committee) {
		return fmt.Errorf("runtime: only %d of %d certificate signatures verify", good, len(cert.committee))
	}
	return nil
}

// planDigest hashes the query source as the plan commitment.
func planDigest(src string) [sha256.Size]byte {
	return sha256.Sum256([]byte(src))
}
