package runtime

import (
	"strings"
	"testing"

	"arboretum/internal/mechanism"
	"arboretum/internal/queries"
)

// smallDeployment returns a deployment small enough for real crypto in
// tests: N devices, C categories, 5-member committees, 512-bit Paillier.
func smallDeployment(t *testing.T, n, categories int, opts ...func(*Config)) *Deployment {
	t.Helper()
	cfg := Config{N: n, Categories: categories, CommitteeSize: 5, Seed: 42}
	for _, o := range opts {
		o(&cfg)
	}
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// skewedData makes category `mode` the clear winner.
func skewedData(mode, categories int) func(int) int {
	return func(device int) int {
		if device%4 != 0 {
			return mode
		}
		return (device + 1) % categories
	}
}

func TestNewDeploymentValidation(t *testing.T) {
	if _, err := NewDeployment(Config{N: 2, Categories: 4}); err == nil {
		t.Error("tiny N accepted")
	}
	if _, err := NewDeployment(Config{N: 100, Categories: 0}); err == nil {
		t.Error("zero categories accepted")
	}
	if _, err := NewDeployment(Config{N: 100, Categories: 4, CommitteeSize: 90}); err == nil {
		t.Error("oversized committee accepted")
	}
}

// End-to-end top1 (Figure 3's query) with real Paillier, sortition, VSR,
// ZKPs, Merkle audits, and the Gumbel-argmax committee MPC. With a strong
// majority category and ε=0.1 over ~96 votes of margin, the mode wins with
// overwhelming probability.
func TestRunTop1EndToEnd(t *testing.T) {
	const mode = 2
	d := smallDeployment(t, 128, 8, func(c *Config) { c.Data = skewedData(mode, 8) })
	src := `aggr = sum(db);
result = em(aggr, 2.0);
output(result);`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("got %d outputs", len(res.Outputs))
	}
	if got := res.Outputs[0].Int(); got != mode {
		t.Errorf("top1 = %d, want %d", got, mode)
	}
	if res.Accepted != 128 {
		t.Errorf("accepted %d inputs, want 128", res.Accepted)
	}
	if d.Metrics.CommitteesFormed < 2 {
		t.Error("expected at least keygen + ops committees")
	}
	if d.Metrics.VSRTransfers == 0 {
		t.Error("no VSR hand-off recorded")
	}
	if d.Metrics.MPCRounds == 0 {
		t.Error("no MPC rounds recorded")
	}
}

// The exponentiation variant of em (Figure 4 left) must agree with the
// Gumbel variant on a lopsided input.
func TestRunTop1ExponentiateVariant(t *testing.T) {
	const mode = 3
	d := smallDeployment(t, 96, 6, func(c *Config) { c.Data = skewedData(mode, 6) })
	src := `aggr = sum(db);
result = em(aggr, 2.0);
output(result);`
	res, err := d.Run(src, RunOptions{EMVariant: mechanism.EMExponentiate})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[0].Int(); got != mode {
		t.Errorf("top1(exponentiate) = %d, want %d", got, mode)
	}
}

// Laplace counting query (the cms pattern): the released count must be the
// true count plus bounded noise.
func TestRunLaplaceCount(t *testing.T) {
	d := smallDeployment(t, 100, 1, func(c *Config) { c.Data = func(int) int { return 0 } })
	src := `sketch = sum(db);
noised = laplace(sketch[0], 1.0);
c = declassify(noised);
output(c);`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs[0].Float()
	if got < 60 || got > 140 { // 100 ± generous Laplace(1) tail
		t.Errorf("noised count = %g, want ~100", got)
	}
}

// Malicious devices with malformed inputs must be rejected by the ZKP check
// and not corrupt the counts (Section 5.3).
func TestMaliciousInputsRejected(t *testing.T) {
	d := smallDeployment(t, 100, 4, func(c *Config) {
		c.MaliciousFrac = 0.1
		c.Data = func(int) int { return 1 }
	})
	src := `aggr = sum(db);
noised = laplace(aggr[1], 5.0);
output(declassify(noised));`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Metrics.ZKPsRejected != 10 {
		t.Errorf("rejected %d proofs, want 10", d.Metrics.ZKPsRejected)
	}
	if res.Accepted != 90 {
		t.Errorf("accepted %d, want 90", res.Accepted)
	}
	// Count reflects only honest inputs (90), not the inflated uploads.
	got := res.Outputs[0].Float()
	if got < 80 || got > 100 {
		t.Errorf("count = %g, want ~90 (malicious inputs excluded)", got)
	}
}

// A Byzantine aggregator corrupting an intermediate sum must be caught by
// the Merkle audits (Section 5.3).
func TestByzantineAggregatorDetected(t *testing.T) {
	d := smallDeployment(t, 96, 4, func(c *Config) { c.ByzantineAggregator = true })
	src := `aggr = sum(db);
noised = laplace(aggr[0], 1.0);
output(declassify(noised));`
	_, err := d.Run(src, RunOptions{})
	if err == nil {
		t.Fatal("Byzantine aggregator went undetected")
	}
	if !strings.Contains(err.Error(), "misbehavior") {
		t.Errorf("unexpected error: %v", err)
	}
	if d.Metrics.AuditFailures == 0 {
		t.Error("no audit failures recorded")
	}
}

// The device sum tree (the planner's outsourcing option) must produce the
// same result as the aggregator loop.
func TestDeviceSumTree(t *testing.T) {
	d := smallDeployment(t, 64, 4, func(c *Config) {
		c.Data = func(i int) int { return i % 4 }
		c.BudgetEpsilon = 100
	})
	src := `aggr = sum(db);
noised = laplace(aggr[0], 50.0);
output(declassify(noised));`
	res, err := d.Run(src, RunOptions{SumTreeFanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs[0].Float()
	if got < 14 || got > 18 { // 16 devices in category 0, tiny noise at ε=50
		t.Errorf("tree-summed count = %g, want ~16", got)
	}
}

// Secrecy of the sample: only a fraction of devices upload, and the noised
// count reflects the sample.
func TestSecrecyOfTheSample(t *testing.T) {
	d := smallDeployment(t, 200, 1, func(c *Config) { c.Data = func(int) int { return 0 } })
	src := `sampleUniform(0.25);
aggr = sum(db);
noised = laplace(aggr[0], 5.0);
output(declassify(noised));`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled == 200 || res.Sampled < 10 {
		t.Errorf("sampled %d of 200, want a ~25%% subset", res.Sampled)
	}
	got := res.Outputs[0].Float()
	if got < float64(res.Sampled)-15 || got > float64(res.Sampled)+15 {
		t.Errorf("count %g far from sample size %d", got, res.Sampled)
	}
	// Amplification: the certificate's ε is far below the mechanism's 5.0.
	if res.Certificate.Epsilon >= 5.0 {
		t.Errorf("sampling did not amplify: ε = %g", res.Certificate.Epsilon)
	}
}

// topK end to end: the three clear winners must be returned (in some order)
// when ε is large.
func TestRunTopK(t *testing.T) {
	d := smallDeployment(t, 120, 6, func(c *Config) {
		c.Data = func(i int) int {
			switch {
			case i < 60:
				return 1
			case i < 100:
				return 3
			case i < 115:
				return 5
			default:
				return i % 6
			}
		}
	})
	src := `aggr = sum(db);
best = topk(aggr, 3, 3.0);
for i = 0 to 2 do
  output(best[i]);
endfor;`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 3 {
		t.Fatalf("got %d outputs", len(res.Outputs))
	}
	got := map[int64]bool{}
	for _, o := range res.Outputs {
		got[o.Int()] = true
	}
	for _, want := range []int64{1, 3, 5} {
		if !got[want] {
			t.Errorf("top-3 %v missing category %d", res.Outputs, want)
		}
	}
}

// The privacy budget gates queries: a deployment with a tight budget rejects
// the second query.
func TestBudgetExhaustion(t *testing.T) {
	d := smallDeployment(t, 64, 2, func(c *Config) { c.BudgetEpsilon = 1.5 })
	src := `aggr = sum(db);
noised = laplace(aggr[0], 1.0);
output(declassify(noised));`
	if _, err := d.Run(src, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(src, RunOptions{}); err == nil {
		t.Fatal("over-budget query accepted")
	}
}

// Consecutive queries use fresh sortition randomness: the same query twice
// selects (almost surely) different committees.
func TestSortitionRotatesCommittees(t *testing.T) {
	d := smallDeployment(t, 200, 2)
	c1, err := d.selectCommittees(1)
	if err != nil {
		t.Fatal(err)
	}
	d.queryID++
	c2, err := d.selectCommittees(1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range c1[0] {
		if c1[0][i] != c2[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("committees identical across query rounds")
	}
}

// The full median query from the evaluation suite, end to end at small
// scale: the selected bucket must be near the true median.
func TestRunMedianQuery(t *testing.T) {
	const buckets = 8
	d := smallDeployment(t, 128, buckets, func(c *Config) {
		// Values concentrated around bucket 4.
		c.Data = func(i int) int {
			switch {
			case i < 20:
				return 2
			case i < 50:
				return 3
			case i < 95:
				return 4
			case i < 115:
				return 5
			default:
				return 6
			}
		}
	})
	src := `hist = sum(db);
n = len(hist);
rank[0] = hist[0];
for i = 1 to n - 1 do
  rank[i] = rank[i - 1] + hist[i];
endfor;
total = rank[n - 1];
half = 64;
for i = 0 to n - 1 do
  dev[i] = rank[i] - half;
  mag[i] = abs(dev[i]);
  util[i] = 0 - mag[i];
endfor;
m = em(util, 3.0);
output(m);`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs[0].Int()
	// True median rank crosses in bucket 4; accept a neighbor.
	if got < 3 || got > 5 {
		t.Errorf("median bucket = %d, want 3..5", got)
	}
}

// hypotest end to end: threshold comparison on the declassified count.
func TestRunHypotest(t *testing.T) {
	d := smallDeployment(t, 100, 1, func(c *Config) { c.Data = func(int) int { return 0 } })
	src := `aggr = sum(db);
count = laplace(aggr[0], 5.0);
c = declassify(count);
reject = 0;
if c > 50 then
  reject = 1;
endif;
output(reject);`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].Int() != 1 {
		t.Errorf("hypotest reject = %d, want 1 (count ~100 > 50)", res.Outputs[0].Int())
	}
}

// All ten evaluation queries must at least execute end to end at a reduced
// category count (full categorical widths are cost-model territory; the
// runtime proves the code paths).
func TestAllEvaluationQueriesExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("full query sweep is slow")
	}
	for _, q := range queries.All {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			cats := int(q.Categories)
			if cats > 16 {
				cats = 16
			}
			d := smallDeployment(t, 64, cats, func(c *Config) {
				c.Data = func(i int) int { return i % cats }
				c.BudgetEpsilon = 1000
			})
			src := shrinkQuery(q.Source)
			res, err := d.Run(src, RunOptions{})
			if err != nil {
				t.Fatalf("%s: %v", q.Name, err)
			}
			if len(res.Outputs) == 0 {
				t.Errorf("%s produced no outputs", q.Name)
			}
		})
	}
}

// shrinkQuery adapts the evaluation queries' big constants to the small
// deployment (thresholds sized for 10^9 participants).
func shrinkQuery(src string) string {
	src = strings.ReplaceAll(src, "threshold = 500000", "threshold = 30")
	src = strings.ReplaceAll(src, "half = total / 2", "half = 32")
	src = strings.ReplaceAll(src, "-1073741824", "-1024")
	src = strings.ReplaceAll(src, "1073741824", "1024")
	return src
}

// Mechanism calls on fresh ciphertext inputs rotate to new committees with
// VSR hand-offs; shares created by one committee can still meet shares from
// another through the re-sharing transfer (the gap query's pattern).
func TestCommitteeRotationAndTransfer(t *testing.T) {
	d := smallDeployment(t, 160, 8, func(c *Config) {
		c.Data = skewedData(2, 8)
		c.BudgetEpsilon = 100
	})
	src := `aggr = sum(db);
winner = em(aggr, 3.0);
best = max(aggr);
second = max(aggr);
g = laplace(clip(best - second, 0, 1024), 1.0);
output(winner);
output(declassify(g));`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[0].Int(); got != 2 {
		t.Errorf("winner = %d, want 2", got)
	}
	// best == second here, so the clipped gap is 0 ± Laplace(1/1.0).
	if g := res.Outputs[1].Float(); g < -20 || g > 1044 {
		t.Errorf("gap = %g out of range", g)
	}
	// em + 2×max rotate: more than the 3 baseline hand-offs (keygen→ops and
	// the two key rotations), plus share transfers for best−second.
	if d.Metrics.VSRTransfers < 3 {
		t.Errorf("VSR transfers = %d, want several (rotations + share moves)", d.Metrics.VSRTransfers)
	}
	if d.Metrics.CommitteesFormed < 4 {
		t.Errorf("committees formed = %d, want > 3 with rotation", d.Metrics.CommitteesFormed)
	}
}

// The quantile extension end to end: select the 75th-percentile bucket.
func TestRunQuantileQuery(t *testing.T) {
	const buckets = 8
	d := smallDeployment(t, 128, buckets, func(c *Config) {
		// Uniform-ish data: bucket i holds 16 devices, so the 3/4 quantile
		// rank (96) falls in bucket 5 (ranks 96 cumulative at bucket 5).
		c.Data = func(i int) int { return i / 16 }
		c.BudgetEpsilon = 100
	})
	src, err := quantileSrc(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Outputs[0].Int()
	if got < 4 || got > 6 {
		t.Errorf("75th percentile bucket = %d, want ~5", got)
	}
}

// The bin protocol rejects malicious uploads too: forged proofs over the
// binned layout fail verification, and the window count reflects only
// honest devices.
func TestBinnedMaliciousRejected(t *testing.T) {
	d := smallDeployment(t, 100, 1, func(c *Config) {
		c.MaliciousFrac = 0.1
		c.Data = func(int) int { return 0 }
		c.BudgetEpsilon = 1e9
	})
	src := `sampleUniform(0.5);
aggr = sum(db);
noised = laplace(aggr[0], 5.0);
output(declassify(noised));`
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Metrics.ZKPsRejected != 10 {
		t.Errorf("rejected %d binned proofs, want 10", d.Metrics.ZKPsRejected)
	}
	if res.Accepted != 90 {
		t.Errorf("accepted %d, want 90", res.Accepted)
	}
	// The window covers ~half the honest devices.
	got := res.Outputs[0].Float()
	if got < float64(res.Sampled)-15 || got > float64(res.Sampled)+15 {
		t.Errorf("count %g far from window population %d", got, res.Sampled)
	}
}

// Measured traffic must be internally consistent: device uploads account
// for N ciphertext vectors plus proofs, and committee traffic is mirrored
// into the aggregator's forwarding total (the mailbox of Section 5.4).
func TestMetricsConsistency(t *testing.T) {
	const n, cats = 64, 4
	d := smallDeployment(t, n, cats, func(c *Config) { c.BudgetEpsilon = 1e9 })
	src := `aggr = sum(db);
result = em(aggr, 2.0);
output(result);`
	if _, err := d.Run(src, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	m := d.Metrics
	// Each device sends cats ciphertexts (~1024/8 bytes each at 512-bit
	// Paillier: n² is 1024 bits) plus one proof.
	perDevice := int64(cats*128 + 256)
	if m.DeviceBytesSent < int64(n)*perDevice/2 || m.DeviceBytesSent > int64(n)*perDevice*2 {
		t.Errorf("device bytes = %d, want ~%d", m.DeviceBytesSent, int64(n)*perDevice)
	}
	if m.CommitteeBytes <= 0 {
		t.Error("no committee traffic recorded")
	}
	if m.AggregatorBytes < m.CommitteeBytes {
		t.Errorf("aggregator forwarding %d should cover committee traffic %d",
			m.AggregatorBytes, m.CommitteeBytes)
	}
	if m.ZKPsVerified != n {
		t.Errorf("verified %d proofs, want %d", m.ZKPsVerified, n)
	}
	if m.AuditsServed == 0 {
		t.Error("no audits served")
	}
}
