package runtime

import (
	"fmt"

	"arboretum/internal/lang"
	"arboretum/internal/privacy"
	"arboretum/internal/types"
)

// certifyProgram is the admission pipeline shared by Run and Certify:
// parse, infer basic types and value ranges for a deployment of n devices
// with the given one-hot width, and certify the program differentially
// private. The certificate's (ε, δ) depends only on (src, n, categories),
// so certifying at admission and re-certifying at execution — which is what
// the analyst gateway does to price a reservation before the job runs —
// always agree.
func certifyProgram(src string, n, categories int) (*lang.Program, *privacy.Certificate, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("runtime: parse: %w", err)
	}
	info, err := types.Infer(prog, types.DBInfo{
		N: int64(n), Width: int64(categories),
		ElemRange: types.Range{Lo: 0, Hi: 1},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("runtime: types: %w", err)
	}
	cert, err := privacy.Certify(prog, info, privacy.DefaultOptions)
	if err != nil {
		return nil, nil, fmt.Errorf("runtime: certification: %w", err)
	}
	return prog, cert, nil
}

// Certify runs the admission pipeline without executing anything: it
// returns the privacy certificate a deployment of n devices (one-hot width
// categories) would charge for src. The analyst gateway
// (internal/service) uses it to reserve exactly the certified (ε, δ) in the
// tenant's budget ledger before a job is queued; a query that fails
// certification is rejected with the returned error and spends nothing.
func Certify(src string, n, categories int) (*privacy.Certificate, error) {
	_, cert, err := certifyProgram(src, n, categories)
	return cert, err
}
