package runtime

import (
	"math"
	"testing"

	"arboretum/internal/fixed"
	"arboretum/internal/mpc"
	"arboretum/internal/sortition"
)

// newBareCommittee builds a committeeExec without a full deployment run, for
// direct protocol tests.
func newBareCommittee(t *testing.T, m int, seed int64) *committeeExec {
	t.Helper()
	d, err := NewDeployment(Config{N: 64, Categories: 2, CommitteeSize: 5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mpc.NewEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	return &committeeExec{engine: eng, members: sortition.Committee{0, 1, 2, 3, 4}, dep: d}
}

func shareScores(e *mpc.Engine, scores []int64) []mpc.Secret {
	out := make([]mpc.Secret, len(scores))
	for i, s := range scores {
		out[i] = e.JointFixed(fixed.FromInt(s))
	}
	return out
}

// The committee-MPC exponentiate-select must follow the exponential
// mechanism's distribution: P[i] ∝ exp(ε·s_i/(2·Δ)).
func TestExponentiateSelectDistribution(t *testing.T) {
	scores := []int64{0, 2, 4}
	const (
		eps    = 1.0
		trials = 300
	)
	want := make([]float64, len(scores))
	var z float64
	for i, s := range scores {
		want[i] = math.Exp(eps * float64(s) / 2)
		z += want[i]
	}
	for i := range want {
		want[i] /= z
	}
	counts := make([]float64, len(scores))
	for trial := 0; trial < trials; trial++ {
		ce := newBareCommittee(t, 5, int64(trial))
		idx, err := ce.exponentiateSelect(shareScores(ce.engine, scores), 1, eps)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i := range counts {
		got := counts[i] / trials
		// 300 trials → σ ≈ 0.03; allow 3σ plus fixed-point slack.
		if math.Abs(got-want[i]) > 0.1 {
			t.Errorf("P[%d] = %.3f, theory %.3f", i, got, want[i])
		}
	}
}

// gumbelArgmax at huge ε must return the true argmax deterministically.
func TestGumbelArgmaxDeterministicAtLargeEps(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ce := newBareCommittee(t, 5, seed)
		idx, err := ce.gumbelArgmax(shareScores(ce.engine, []int64{5, 500, 50}), 1, 50)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Errorf("seed %d: argmax = %d, want 1", seed, idx)
		}
	}
}

// topKSelect excludes previous winners: asking for all items returns a
// permutation.
func TestTopKSelectPermutation(t *testing.T) {
	ce := newBareCommittee(t, 5, 7)
	scores := []int64{10, 20, 30, 40}
	idxs, err := ce.topKSelect(shareScores(ce.engine, scores), 4, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range idxs {
		if seen[i] {
			t.Fatalf("duplicate winner %d in %v", i, idxs)
		}
		seen[i] = true
	}
	if len(seen) != 4 {
		t.Fatalf("winners %v, want a permutation of 0..3", idxs)
	}
	// The first winner is the true max at this ε.
	if idxs[0] != 3 {
		t.Errorf("first winner = %d, want 3", idxs[0])
	}
	if _, err := ce.topKSelect(shareScores(ce.engine, scores), 9, 1, 1); err == nil {
		t.Error("k > len accepted")
	}
}
