package runtime

import (
	"crypto/sha256"
	"testing"

	"arboretum/internal/sortition"
)

const countSrc = `aggr = sum(db);
noised = laplace(aggr[0], 5.0);
output(declassify(noised));`

// With moderate churn, queries still complete: offline devices skip their
// upload, and committees that lost too many members hand their tasks to the
// next committee (Section 5.1).
func TestChurnQueryStillCompletes(t *testing.T) {
	d := smallDeployment(t, 200, 1, func(c *Config) {
		c.OfflineFrac = 0.2
		// 9-member committees tolerating a third offline: a 20%-churn world
		// needs either bigger committees or a bigger g, exactly the trade
		// the MinCommitteeSize solver captures at scale.
		c.CommitteeSize = 9
		c.OfflineTolerance = 0.34
		c.Data = func(int) int { return 0 }
	})
	res, err := d.Run(countSrc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Roughly 80% of 200 devices upload.
	if res.Accepted < 130 || res.Accepted > 190 {
		t.Errorf("accepted %d inputs under 20%% churn", res.Accepted)
	}
	got := res.Outputs[0].Float()
	if got < float64(res.Accepted)-15 || got > float64(res.Accepted)+15 {
		t.Errorf("count %g far from online population %d", got, res.Accepted)
	}
}

func TestExcessiveChurnRejected(t *testing.T) {
	if _, err := NewDeployment(Config{N: 64, Categories: 2, OfflineFrac: 0.6}); err == nil {
		t.Fatal("60% churn accepted")
	}
}

// TestViableCommitteeMatrix sweeps committee size × churn tolerance × churn
// level and pins the exact accept/reject boundary: a committee is viable iff
// a reconstructing strict majority of the original size remains online (and
// at least 3 members, the MPC floor), and the offline count stays within the
// paper's tolerated fraction g·m.
func TestViableCommitteeMatrix(t *testing.T) {
	d := smallDeployment(t, 64, 2)
	cases := []struct {
		m int     // committee size
		g float64 // configured tolerance (0 = default 0.15)
	}{
		{4, 0.15},
		{5, 0.15},
		{7, 0},     // default tolerance
		{9, 0.34},  // the churn-test setup: tolerates 3 of 9
		{10, 0.15}, // the paper's defaults
		{10, 0.3},
		{16, 0.2},
	}
	for _, tc := range cases {
		d.cfg.OfflineTolerance = tc.g
		gEff := tc.g
		if gEff == 0 {
			gEff = 0.15
		}
		c := make(sortition.Committee, tc.m)
		for i := range c {
			c[i] = i
		}
		for offline := 0; offline <= tc.m; offline++ {
			for i := 0; i < tc.m; i++ {
				d.Devices[i].Offline = i < offline
			}
			online := tc.m - offline
			want := online >= tc.m/2+1 && online >= 3 &&
				float64(offline) <= gEff*float64(tc.m)
			if got := d.viableCommittee(c); got != want {
				t.Errorf("m=%d g=%g offline=%d: viable=%v, want %v",
					tc.m, tc.g, offline, got, want)
			}
		}
		for i := 0; i < tc.m; i++ {
			d.Devices[i].Offline = false
		}
	}
	d.cfg.OfflineTolerance = 0
}

func TestPickViableReassigns(t *testing.T) {
	d := smallDeployment(t, 64, 2)
	broken := sortition.Committee{0, 1, 2, 3, 4}
	for _, id := range broken[:3] {
		d.Devices[id].Offline = true
	}
	healthy := sortition.Committee{10, 11, 12, 13, 14}
	healthy2 := sortition.Committee{20, 21, 22, 23, 24}
	out, err := d.pickViable([]sortition.Committee{broken, healthy, healthy2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 10 || out[1][0] != 20 {
		t.Errorf("reassignment picked %v", out)
	}
	if d.Metrics.Reassignments != 1 {
		t.Errorf("reassignments = %d, want 1", d.Metrics.Reassignments)
	}
	// Not enough viable committees → error.
	if _, err := d.pickViable([]sortition.Committee{broken, healthy}, 2); err == nil {
		t.Fatal("insufficient viable committees accepted")
	}
}

// Query authorization certificates (Section 5.2): issued by the key
// committee, verified by devices, and rejecting tampering.
func TestCertificateIssueVerify(t *testing.T) {
	d := smallDeployment(t, 64, 4)
	res, err := d.Run(`aggr = sum(db);
noised = laplace(aggr[0], 2.0);
output(declassify(noised));`, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Auth == nil {
		t.Fatal("no authorization certificate issued")
	}
	if err := d.VerifyCertificate(res.Auth); err != nil {
		t.Fatalf("published certificate does not verify: %v", err)
	}
	if res.Auth.BudgetLeft <= 0 {
		t.Error("certificate missing remaining budget")
	}
	if res.Auth.RegistryRoot != d.registry.Root() {
		t.Error("certificate registry root mismatch")
	}
}

func TestCertificateTamperDetected(t *testing.T) {
	d := smallDeployment(t, 64, 4)
	res, err := d.Run(`aggr = sum(db);
noised = laplace(aggr[0], 2.0);
output(declassify(noised));`, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the plan digest: signatures must stop verifying.
	bad := *res.Auth
	bad.PlanDigest = sha256.Sum256([]byte("a different query"))
	if err := d.VerifyCertificate(&bad); err == nil {
		t.Fatal("tampered certificate verified")
	}
	// Tamper with the budget balance.
	bad2 := *res.Auth
	bad2.BudgetLeft += 100
	if err := d.VerifyCertificate(&bad2); err == nil {
		t.Fatal("budget-inflated certificate verified")
	}
	// Drop signatures.
	bad3 := *res.Auth
	bad3.Signatures = bad3.Signatures[:1]
	if err := d.VerifyCertificate(&bad3); err == nil {
		t.Fatal("signature-stripped certificate verified")
	}
	if err := d.VerifyCertificate(nil); err == nil {
		t.Fatal("nil certificate verified")
	}
}

// Grinding protection: a certificate whose registry root differs from the
// actual device registry is rejected (Section 5.2's M_i commitment).
func TestCertificateGrindingDetected(t *testing.T) {
	d := smallDeployment(t, 64, 4)
	res, err := d.Run(`aggr = sum(db);
noised = laplace(aggr[0], 2.0);
output(declassify(noised));`, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := *res.Auth
	bad.RegistryRoot[0] ^= 0xff
	if err := d.VerifyCertificate(&bad); err == nil {
		t.Fatal("wrong-registry certificate verified")
	}
}

// Across consecutive queries the certificates chain: each reports a smaller
// remaining budget, and the sortition block advances so committees rotate.
func TestCertificateBudgetChain(t *testing.T) {
	d := smallDeployment(t, 96, 2, func(c *Config) { c.BudgetEpsilon = 10 })
	src := `aggr = sum(db);
noised = laplace(aggr[0], 1.0);
output(declassify(noised));`
	var prevBudget float64 = 11
	var prevBlock [32]byte
	for q := 0; q < 3; q++ {
		res, err := d.Run(src, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Auth.BudgetLeft >= prevBudget {
			t.Errorf("query %d: budget %g did not shrink from %g", q, res.Auth.BudgetLeft, prevBudget)
		}
		prevBudget = res.Auth.BudgetLeft
		if q > 0 && res.Auth.NextBlock == prevBlock {
			t.Errorf("query %d: sortition block did not advance", q)
		}
		prevBlock = res.Auth.NextBlock
		if res.Auth.QueryID != uint64(q+1) {
			t.Errorf("query %d: certificate sequence = %d, want %d", q, res.Auth.QueryID, q+1)
		}
	}
}
