package runtime

import (
	"fmt"

	"arboretum/internal/fixed"
	"arboretum/internal/lang"
	"arboretum/internal/mechanism"
)

// call evaluates a built-in function (Section 4.1's operator set). The
// high-level mechanisms dispatch to committee protocols.
func (ip *interp) call(ex *lang.CallExpr) (value, error) {
	switch ex.Func {
	case "sum":
		if id, ok := ex.Args[0].(*lang.Ident); ok && id.Name == "db" {
			return value{kind: vCipherArr, cts: ip.dbSums}, nil
		}
		return ip.sumArray(ex)
	case "em":
		return ip.emCall(ex)
	case "topk":
		return ip.topkCall(ex)
	case "laplace":
		return ip.laplaceCall(ex)
	case "max", "argmax":
		return ip.maxCall(ex)
	case "clip":
		return ip.clipCall(ex)
	case "abs":
		return ip.absCall(ex)
	case "exp", "log2", "sqrt":
		return ip.mathCall(ex)
	case "len":
		v, err := ip.eval(ex.Args[0])
		if err != nil {
			return value{}, err
		}
		if !v.isArr() {
			return value{}, fmt.Errorf("runtime: len of non-array")
		}
		return pub(fixed.FromInt(int64(v.length()))), nil
	case "output":
		v, err := ip.eval(ex.Args[0])
		if err != nil {
			return value{}, err
		}
		if v.kind != vPublic {
			return value{}, fmt.Errorf("runtime: output of a confidential value (declassify first)")
		}
		ip.outputs = append(ip.outputs, v.num)
		return v, nil
	case "declassify":
		v, err := ip.eval(ex.Args[0])
		if err != nil {
			return value{}, err
		}
		switch v.kind {
		case vPublic:
			return v, nil
		case vShared:
			if err := v.eng.health(); err != nil {
				return value{}, err
			}
			return pub(v.eng.engine.OpenFixed(v.sec)), nil
		default:
			return value{}, fmt.Errorf("runtime: declassify of %v (only mechanism outputs may be declassified)", v.kind)
		}
	case "sampleUniform":
		// Handled before input collection (run.go); a no-op here.
		return pub(0), nil
	case "gumbel":
		v, err := ip.eval(ex.Args[0])
		if err != nil {
			return value{}, err
		}
		if v.kind != vPublic {
			return value{}, fmt.Errorf("runtime: gumbel scale must be public")
		}
		return pub(mechanism.Gumbel(ip.dep.noiseRand(), v.num)), nil
	case "array":
		v, err := ip.eval(ex.Args[0])
		if err != nil {
			return value{}, err
		}
		n := v.num.Int()
		if n < 0 || n > 1<<20 {
			return value{}, fmt.Errorf("runtime: array size %d out of range", n)
		}
		return pubArr(make([]fixed.Fixed, n)), nil
	default:
		return value{}, fmt.Errorf("runtime: unknown function %q", ex.Func)
	}
}

// sumArray folds a non-db array.
func (ip *interp) sumArray(ex *lang.CallExpr) (value, error) {
	v, err := ip.eval(ex.Args[0])
	if err != nil {
		return value{}, err
	}
	switch v.kind {
	case vPublicArr:
		var acc fixed.Fixed
		for _, f := range v.arr {
			acc = acc.Add(f)
		}
		return pub(acc), nil
	case vCipherArr:
		ct, err := ip.km.pub.Sum(v.cts)
		if err != nil {
			return value{}, err
		}
		return value{kind: vCipher, ct: ct}, nil
	case vSharedArr:
		s, err := v.eng.engine.Sum(v.secs)
		if err != nil {
			return value{}, err
		}
		return value{kind: vShared, sec: s, eng: v.eng}, nil
	default:
		return value{}, fmt.Errorf("runtime: sum of non-array")
	}
}

// epsArg extracts the trailing ε argument (default 0.1).
func (ip *interp) epsArg(ex *lang.CallExpr, idx int) float64 {
	if idx < len(ex.Args) {
		switch lit := ex.Args[idx].(type) {
		case *lang.FloatLit:
			return lit.Value
		case *lang.IntLit:
			return float64(lit.Value)
		}
	}
	return 0.1
}

// mechanismEngine resolves the committee for a mechanism call: inputs that
// are already shared stay with their committee; fresh ciphertext (or
// public) inputs move to the next spare committee, with a VSR hand-off of
// the key (Section 5.4).
func (ip *interp) mechanismEngine(v value) (*committeeExec, error) {
	if v.eng != nil {
		return v.eng, nil
	}
	if err := ip.rotate(); err != nil {
		return nil, err
	}
	return ip.ce, nil
}

func (ip *interp) emCall(ex *lang.CallExpr) (value, error) {
	scores, err := ip.eval(ex.Args[0])
	if err != nil {
		return value{}, err
	}
	eps := ip.epsArg(ex, 1)
	return ip.runVignette(scores, func(ce *committeeExec, in value) (value, error) {
		shared, err := ip.toSharedIn(ce, in)
		if err != nil {
			return value{}, err
		}
		if shared.kind != vSharedArr || len(shared.secs) == 0 {
			return value{}, fmt.Errorf("runtime: em requires a score array")
		}
		var idx int
		switch ip.emVariant {
		case mechanism.EMExponentiate:
			idx, err = ce.exponentiateSelect(shared.secs, ip.sens, eps)
		default:
			idx, err = ce.gumbelArgmax(shared.secs, ip.sens, eps)
		}
		if err != nil {
			return value{}, err
		}
		return pub(fixed.FromInt(int64(idx))), nil
	})
}

func (ip *interp) topkCall(ex *lang.CallExpr) (value, error) {
	scores, err := ip.eval(ex.Args[0])
	if err != nil {
		return value{}, err
	}
	kv, err := ip.eval(ex.Args[1])
	if err != nil {
		return value{}, err
	}
	eps := ip.epsArg(ex, 2)
	return ip.runVignette(scores, func(ce *committeeExec, in value) (value, error) {
		shared, err := ip.toSharedIn(ce, in)
		if err != nil {
			return value{}, err
		}
		if shared.kind != vSharedArr {
			return value{}, fmt.Errorf("runtime: topk requires a score array")
		}
		idxs, err := ce.topKSelect(shared.secs, int(kv.num.Int()), ip.sens, eps)
		if err != nil {
			return value{}, err
		}
		out := make([]fixed.Fixed, len(idxs))
		for i, idx := range idxs {
			out[i] = fixed.FromInt(int64(idx))
		}
		return pubArr(out), nil
	})
}

func (ip *interp) laplaceCall(ex *lang.CallExpr) (value, error) {
	v, err := ip.eval(ex.Args[0])
	if err != nil {
		return value{}, err
	}
	eps := ip.epsArg(ex, 1)
	switch v.kind {
	case vCipher:
		return ip.runVignette(v, func(ce *committeeExec, in value) (value, error) {
			f, err := ce.laplaceRelease(ip.km, in.ct, ip.sens, eps)
			if err != nil {
				return value{}, err
			}
			return pub(f), nil
		})
	case vShared:
		return ip.runVignette(v, func(ce *committeeExec, in value) (value, error) {
			sh, err := ip.toSharedIn(ce, in)
			if err != nil {
				return value{}, err
			}
			f, err := ce.laplaceShared(sh.sec, ip.sens, eps)
			if err != nil {
				return value{}, err
			}
			return pub(f), nil
		})
	case vPublic:
		scale := fixed.FromFloat(float64(ip.sens) / eps)
		return pub(v.num.Add(mechanism.Laplace(ip.dep.noiseRand(), scale))), nil
	default:
		return value{}, fmt.Errorf("runtime: laplace on %v", v.kind)
	}
}

func (ip *interp) maxCall(ex *lang.CallExpr) (value, error) {
	v, err := ip.eval(ex.Args[0])
	if err != nil {
		return value{}, err
	}
	if v.kind == vPublicArr {
		if len(v.arr) == 0 {
			return value{}, fmt.Errorf("runtime: max of empty array")
		}
		best, bestIdx := v.arr[0], 0
		for i, f := range v.arr {
			if f > best {
				best, bestIdx = f, i
			}
		}
		if ex.Func == "argmax" {
			return pub(fixed.FromInt(int64(bestIdx))), nil
		}
		return pub(best), nil
	}
	return ip.runVignette(v, func(ce *committeeExec, in value) (value, error) {
		shared, err := ip.toSharedIn(ce, in)
		if err != nil {
			return value{}, err
		}
		if shared.kind != vSharedArr {
			return value{}, fmt.Errorf("runtime: %s requires an array", ex.Func)
		}
		if ex.Func == "argmax" {
			s, err := ce.engine.Argmax(shared.secs)
			if err != nil {
				return value{}, err
			}
			// Argmax indices are unscaled; rescale to the fixed convention.
			return value{kind: vShared, sec: ce.engine.MulConst(s, int64(fixed.One)), eng: ce}, nil
		}
		s, err := ce.maxShared(shared.secs)
		if err != nil {
			return value{}, err
		}
		return value{kind: vShared, sec: s, eng: ce}, nil
	})
}

func (ip *interp) clipCall(ex *lang.CallExpr) (value, error) {
	v, err := ip.eval(ex.Args[0])
	if err != nil {
		return value{}, err
	}
	loV, err := ip.eval(ex.Args[1])
	if err != nil {
		return value{}, err
	}
	hiV, err := ip.eval(ex.Args[2])
	if err != nil {
		return value{}, err
	}
	if loV.kind != vPublic || hiV.kind != vPublic {
		return value{}, fmt.Errorf("runtime: clip bounds must be public")
	}
	switch v.kind {
	case vPublic:
		f := v.num
		if f < loV.num {
			f = loV.num
		}
		if f > hiV.num {
			f = hiV.num
		}
		return pub(f), nil
	case vShared:
		s, err := ip.clipShared(v.eng, v.sec, loV.num, hiV.num)
		if err != nil {
			return value{}, err
		}
		return value{kind: vShared, sec: s, eng: v.eng}, nil
	case vCipher:
		sh, err := ip.toSharedIn(ip.ce, v)
		if err != nil {
			return value{}, err
		}
		s, err := ip.clipShared(ip.ce, sh.sec, loV.num, hiV.num)
		if err != nil {
			return value{}, err
		}
		return value{kind: vShared, sec: s, eng: ip.ce}, nil
	default:
		return value{}, fmt.Errorf("runtime: clip on %v", v.kind)
	}
}

func (ip *interp) absCall(ex *lang.CallExpr) (value, error) {
	v, err := ip.eval(ex.Args[0])
	if err != nil {
		return value{}, err
	}
	switch v.kind {
	case vPublic:
		return pub(v.num.Abs()), nil
	case vShared:
		s, err := ip.absShared(v.eng, v.sec)
		if err != nil {
			return value{}, err
		}
		return value{kind: vShared, sec: s, eng: v.eng}, nil
	case vCipher:
		sh, err := ip.toSharedIn(ip.ce, v)
		if err != nil {
			return value{}, err
		}
		s, err := ip.absShared(ip.ce, sh.sec)
		if err != nil {
			return value{}, err
		}
		return value{kind: vShared, sec: s, eng: ip.ce}, nil
	default:
		return value{}, fmt.Errorf("runtime: abs on %v", v.kind)
	}
}

func (ip *interp) mathCall(ex *lang.CallExpr) (value, error) {
	v, err := ip.eval(ex.Args[0])
	if err != nil {
		return value{}, err
	}
	if v.kind == vShared && ex.Func == "exp" {
		s, err := v.eng.engine.FixedExp(v.sec)
		if err != nil {
			return value{}, err
		}
		return value{kind: vShared, sec: s, eng: v.eng}, nil
	}
	if v.kind != vPublic {
		return value{}, fmt.Errorf("runtime: %s on %v", ex.Func, v.kind)
	}
	switch ex.Func {
	case "exp":
		return pub(fixed.Exp(v.num)), nil
	case "log2":
		if v.num <= 0 {
			return value{}, fmt.Errorf("runtime: log2 of non-positive value")
		}
		return pub(fixed.Log2(v.num)), nil
	case "sqrt":
		if v.num < 0 {
			return value{}, fmt.Errorf("runtime: sqrt of negative value")
		}
		return pub(fixed.Sqrt(v.num)), nil
	default:
		return value{}, fmt.Errorf("runtime: unknown math function %q", ex.Func)
	}
}
