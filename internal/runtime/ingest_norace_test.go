//go:build !race

package runtime

import (
	"os"
	goruntime "runtime"
	"testing"
)

// TestIngestMemoryFlat is the memory-flatness smoke (scripts/check.sh):
// growing the population 10× (10^5 → 10^6 devices) must not grow the
// pipeline's peak heap beyond allocator noise, because shard state is
// O(shards × batch) and per-device state derives on demand from the
// population seed. Gated behind ARBORETUM_INGEST_SMOKE: it runs ~10^6 real
// Paillier folds, a few seconds of work the default `go test` loop skips.
func TestIngestMemoryFlat(t *testing.T) {
	if os.Getenv("ARBORETUM_INGEST_SMOKE") == "" {
		t.Skip("set ARBORETUM_INGEST_SMOKE=1 to run the memory-flatness smoke")
	}
	sk := ingestKey(t)
	// Batch 1024 rather than the default 64: the one structure that grows
	// with population is the commitment-leaf buffer, 32 B per batch
	// (docs/INGEST.md) — an analytically-sized term, not leaked per-device
	// state. The batch size scales that term against the pipeline's
	// steady-state peak, which the pooled kernels (docs/KERNELS.md) cut
	// ~3.5× (to under 1 MB): at batch 256 the ~200 KB leaf term (amplified
	// ~2× by GC pacing over the run) again sits right at the 1.2× bound;
	// at 1024 the smoke measures what must stay flat, and a pipeline that
	// held per-device state would still blow past 5× at any batch size.
	peak := func(n int) uint64 {
		pop := newVirtualPopulation(7, n, 8)
		goruntime.GC() // settle the baseline before sampling begins
		gauge := &heapGauge{}
		gauge.sample(true)
		res, err := virtualIngest(pop, &sk.PublicKey, uint64(n), 8, 1024, 0, nil, gauge)
		if err != nil {
			t.Fatal(err)
		}
		if res.accepted != n {
			t.Fatalf("accepted %d of %d devices", res.accepted, n)
		}
		return gauge.peakBytes()
	}
	// Peak heap is an upper-bound metric with GC-timing noise: on a loaded
	// machine the gauge can catch transient garbage that a collection would
	// have reclaimed. The minimum over two runs estimates the pipeline's
	// actual requirement rather than the scheduler's mood.
	small := min(peak(100_000), peak(100_000))
	big := min(peak(1_000_000), peak(1_000_000))
	t.Logf("peak heap: %d bytes at 10^5 devices, %d bytes at 10^6 (ratio %.2f)",
		small, big, float64(big)/float64(small))
	// The 1.2× bound is the acceptance criterion; a linear pipeline would
	// blow past 5×.
	if float64(big) > 1.2*float64(small) {
		t.Errorf("peak heap grew %.2f× over a 10× population (want ≤1.2×): %d → %d bytes",
			float64(big)/float64(small), small, big)
	}
}
