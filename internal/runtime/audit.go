package runtime

import (
	"crypto/sha256"
	"fmt"
	"math/big"

	"arboretum/internal/ahe"
	"arboretum/internal/hashing"
	"arboretum/internal/merkle"
)

// auditedSum is the aggregator's Merkle-audited summation (Section 5.3):
// the aggregator sums the input ciphertexts in chunks, commits to every
// partial result in a Merkle tree, and participant devices challenge random
// chunks — re-running the chunk's homomorphic additions — to catch a
// Byzantine aggregator that reports a wrong intermediate value.
type auditedSum struct {
	pub      *ahe.PublicKey
	chunks   [][]*ahe.Ciphertext // inputs per chunk, per category
	partials [][]*ahe.Ciphertext // claimed running sums after each chunk
	tree     *merkle.Tree
}

const auditChunk = 16 // inputs per audited chunk

// aggregateWithAudit sums accepted input vectors column-wise. When byz is
// set, the aggregator corrupts one partial result (and carries the
// corruption forward, as a cheating aggregator would).
func aggregateWithAudit(pub *ahe.PublicKey, inputs [][]*ahe.Ciphertext, byz bool) (*auditedSum, []*ahe.Ciphertext, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("runtime: nothing to aggregate")
	}
	categories := len(inputs[0])
	as := &auditedSum{pub: pub}
	var running []*ahe.Ciphertext
	corruptAt := -1
	if byz {
		corruptAt = (len(inputs) / auditChunk) / 2 // corrupt a middle chunk
	}
	for start := 0; start < len(inputs); start += auditChunk {
		end := start + auditChunk
		if end > len(inputs) {
			end = len(inputs)
		}
		chunkIdx := start / auditChunk
		// Record the chunk's input ciphertexts (flattened per category for
		// the audit replay).
		var chunkInputs []*ahe.Ciphertext
		for _, vec := range inputs[start:end] {
			chunkInputs = append(chunkInputs, vec...)
		}
		as.chunks = append(as.chunks, chunkInputs)
		// Fold the chunk into the running sums.
		for _, vec := range inputs[start:end] {
			if running == nil {
				running = append([]*ahe.Ciphertext(nil), vec...)
				continue
			}
			for c := 0; c < categories; c++ {
				sum, err := pub.Add(running[c], vec[c])
				if err != nil {
					return nil, nil, err
				}
				running[c] = sum
			}
		}
		if chunkIdx == corruptAt {
			// Byzantine aggregator: silently shift category 0's count.
			bad, err := pub.AddPlain(running[0], big.NewInt(1000))
			if err != nil {
				return nil, nil, err
			}
			running[0] = bad
		}
		snapshot := append([]*ahe.Ciphertext(nil), running...)
		as.partials = append(as.partials, snapshot)
	}
	// Commit to every partial in a Merkle tree.
	leaves := make([][]byte, len(as.partials))
	for i, p := range as.partials {
		leaves[i] = hashCts(p)
	}
	tree, err := merkle.New(leaves)
	if err != nil {
		return nil, nil, err
	}
	as.tree = tree
	return as, running, nil
}

func hashCts(cts []*ahe.Ciphertext) []byte {
	h := sha256.New()
	for _, ct := range cts {
		hashing.Write(h, ct.C.Bytes())
	}
	return h.Sum(nil)
}

// audit replays chunk k: it verifies the inclusion proof for the claimed
// partial and recomputes partial[k] = partial[k−1] + Σ chunk inputs. It
// returns an error when the aggregator's claim is wrong.
func (as *auditedSum) audit(k int) error {
	if k < 0 || k >= len(as.partials) {
		return fmt.Errorf("runtime: audit index %d out of range", k)
	}
	proof, err := as.tree.Prove(k)
	if err != nil {
		return err
	}
	if !merkle.Verify(as.tree.Root(), hashCts(as.partials[k]), proof) {
		return fmt.Errorf("runtime: inclusion proof for step %d failed", k)
	}
	categories := len(as.partials[k])
	// Recompute from the previous partial (or from scratch for chunk 0).
	var running []*ahe.Ciphertext
	if k > 0 {
		running = append([]*ahe.Ciphertext(nil), as.partials[k-1]...)
	}
	chunk := as.chunks[k]
	for i := 0; i < len(chunk); i += categories {
		vec := chunk[i : i+categories]
		if running == nil {
			running = append([]*ahe.Ciphertext(nil), vec...)
			continue
		}
		for c := 0; c < categories; c++ {
			sum, err := as.pub.Add(running[c], vec[c])
			if err != nil {
				return err
			}
			running[c] = sum
		}
	}
	for c := 0; c < categories; c++ {
		if running[c].C.Cmp(as.partials[k][c].C) != 0 {
			return fmt.Errorf("runtime: step %d does not recompute: aggregator misbehavior", k)
		}
	}
	return nil
}

// runAudits has devices challenge random chunks until every chunk has been
// covered (a small deployment can afford full coverage; at scale the
// per-device audit count comes from merkle.AuditsPerDevice).
func (d *Deployment) runAudits(as *auditedSum) error {
	var firstErr error
	for k := 0; k < as.tree.Size(); k++ {
		d.Metrics.AuditsServed++
		if err := as.audit(k); err != nil {
			d.Metrics.AuditFailures++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
