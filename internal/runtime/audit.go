package runtime

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/big"

	"arboretum/internal/ahe"
	"arboretum/internal/faults"
	"arboretum/internal/hashing"
	"arboretum/internal/merkle"
)

// auditedSum is the aggregator's Merkle-audited summation (Section 5.3):
// the aggregator sums the input ciphertexts in chunks, commits to every
// partial result in a Merkle tree, and participant devices challenge random
// chunks — re-running the chunk's homomorphic additions — to catch a
// Byzantine aggregator that reports a wrong intermediate value.
type auditedSum struct {
	pub      *ahe.PublicKey
	chunks   [][]*ahe.Ciphertext // inputs per chunk, per category
	partials [][]*ahe.Ciphertext // claimed running sums after each chunk
	tree     *merkle.Tree
}

const auditChunk = 16 // inputs per audited chunk

// aggregateWithAudit sums accepted input vectors column-wise. When byz is
// set, the aggregator corrupts one partial result (and carries the
// corruption forward, as a cheating aggregator would).
//
// The fault plan can crash the aggregator at any chunk step
// (faults.AggregatorCrash, addressed by chunk and attempt). A crashed step
// loses its in-flight fold; recovery restores the running sums from the last
// checkpointed partial — re-verified against its recorded leaf hash, the same
// commitment the Merkle tree is later built over — and refolds the chunk
// after a simulated backoff. The step fails closed (ErrAggregatorFailed)
// when the retry budget runs out or a checkpoint does not verify.
func aggregateWithAudit(pub *ahe.PublicKey, inputs [][]*ahe.Ciphertext, byz bool, plan *faults.Plan, m *Metrics) (*auditedSum, []*ahe.Ciphertext, error) {
	if m == nil {
		m = &Metrics{}
	}
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("runtime: nothing to aggregate")
	}
	categories := len(inputs[0])
	as := &auditedSum{pub: pub}
	var running []*ahe.Ciphertext
	var leaves [][]byte // checkpoint hashes, maintained as partials append
	corruptAt := -1
	if byz {
		corruptAt = (len(inputs) / auditChunk) / 2 // corrupt a middle chunk
	}
	for start := 0; start < len(inputs); start += auditChunk {
		end := start + auditChunk
		if end > len(inputs) {
			end = len(inputs)
		}
		chunkIdx := start / auditChunk
		// Record the chunk's input ciphertexts (flattened per category for
		// the audit replay).
		var chunkInputs []*ahe.Ciphertext
		for _, vec := range inputs[start:end] {
			chunkInputs = append(chunkInputs, vec...)
		}
		as.chunks = append(as.chunks, chunkInputs)
	fold:
		//arblint:ignore ctxcheckpoint bounded retry: returns once attempt+1 reaches aggregatorBackoff.attempts
		for attempt := 0; ; attempt++ {
			if plan.Fires(faults.AggregatorCrash, chunkIdx, attempt) {
				m.AggregatorCrashes++
				plan.Record(faults.Fault{
					Kind: faults.AggregatorCrash, Idx: []int{chunkIdx, attempt},
					Note: fmt.Sprintf("aggregator crashed folding chunk %d", chunkIdx),
				})
				if attempt+1 >= aggregatorBackoff.attempts {
					return nil, nil, fmt.Errorf("%w: chunk %d crashed %d times",
						ErrAggregatorFailed, chunkIdx, attempt+1)
				}
				m.BackoffSimulated += aggregatorBackoff.delay(attempt)
				// Resume from the last checkpoint: the crash loses the
				// in-flight fold, so restore the previous partial and verify
				// it against its recorded hash before trusting it.
				var restored []*ahe.Ciphertext
				if chunkIdx > 0 {
					restored = append([]*ahe.Ciphertext(nil), as.partials[chunkIdx-1]...)
					if !bytes.Equal(hashCts(restored), leaves[chunkIdx-1]) {
						return nil, nil, fmt.Errorf("%w: checkpoint %d does not verify",
							ErrAggregatorFailed, chunkIdx-1)
					}
				}
				running = restored
				m.AggregatorResumes++
				continue
			}
			// Fold the chunk into the running sums.
			for _, vec := range inputs[start:end] {
				if running == nil {
					running = append([]*ahe.Ciphertext(nil), vec...)
					continue
				}
				for c := 0; c < categories; c++ {
					sum, err := pub.Add(running[c], vec[c])
					if err != nil {
						return nil, nil, err
					}
					running[c] = sum
				}
			}
			break fold
		}
		if chunkIdx == corruptAt {
			// Byzantine aggregator: silently shift category 0's count.
			bad, err := pub.AddPlain(running[0], big.NewInt(1000))
			if err != nil {
				return nil, nil, err
			}
			running[0] = bad
		}
		snapshot := append([]*ahe.Ciphertext(nil), running...)
		as.partials = append(as.partials, snapshot)
		leaves = append(leaves, hashCts(snapshot))
	}
	// Commit to every checkpoint in a Merkle tree.
	tree, err := merkle.New(leaves)
	if err != nil {
		return nil, nil, err
	}
	as.tree = tree
	return as, running, nil
}

func hashCts(cts []*ahe.Ciphertext) []byte {
	h := sha256.New()
	for _, ct := range cts {
		hashing.Write(h, ct.C.Bytes())
	}
	return h.Sum(nil)
}

// audit replays chunk k: it verifies the inclusion proof for the claimed
// partial and recomputes partial[k] = partial[k−1] + Σ chunk inputs. It
// returns an error when the aggregator's claim is wrong.
func (as *auditedSum) audit(k int) error {
	if k < 0 || k >= len(as.partials) {
		return fmt.Errorf("runtime: audit index %d out of range", k)
	}
	proof, err := as.tree.Prove(k)
	if err != nil {
		return err
	}
	if !merkle.Verify(as.tree.Root(), hashCts(as.partials[k]), proof) {
		return fmt.Errorf("runtime: inclusion proof for step %d failed", k)
	}
	categories := len(as.partials[k])
	// Recompute from the previous partial (or from scratch for chunk 0).
	var running []*ahe.Ciphertext
	if k > 0 {
		running = append([]*ahe.Ciphertext(nil), as.partials[k-1]...)
	}
	chunk := as.chunks[k]
	for i := 0; i < len(chunk); i += categories {
		vec := chunk[i : i+categories]
		if running == nil {
			running = append([]*ahe.Ciphertext(nil), vec...)
			continue
		}
		for c := 0; c < categories; c++ {
			sum, err := as.pub.Add(running[c], vec[c])
			if err != nil {
				return err
			}
			running[c] = sum
		}
	}
	for c := 0; c < categories; c++ {
		if running[c].C.Cmp(as.partials[k][c].C) != 0 {
			return fmt.Errorf("runtime: step %d does not recompute: aggregator misbehavior", k)
		}
	}
	return nil
}

// runAudits has devices challenge random chunks until every chunk has been
// covered (a small deployment can afford full coverage; at scale the
// per-device audit count comes from merkle.AuditsPerDevice).
func (d *Deployment) runAudits(as *auditedSum) error {
	var firstErr error
	for k := 0; k < as.tree.Size(); k++ {
		d.Metrics.AuditsServed++
		if err := as.audit(k); err != nil {
			d.Metrics.AuditFailures++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
