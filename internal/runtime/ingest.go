package runtime

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"hash"
	"math/big"
	"time"

	"arboretum/internal/ahe"
	"arboretum/internal/faults"
	"arboretum/internal/hashing"
	"arboretum/internal/merkle"
	"arboretum/internal/parallel"
	"arboretum/internal/zkp"
)

// This file is the sharded, streaming ingest pipeline (docs/INGEST.md): the
// replacement for collectInputs' materialize-everything collection phase.
// Devices upload in batches to per-shard aggregators; each shard verifies
// proofs, folds the batch into pooled accumulators (one per ciphertext
// cell), and commits the running partials at every batch boundary, so the
// pipeline holds O(shards × batch) ciphertexts at any instant instead of
// O(population). Shard partials then combine hierarchically through the
// sum-tree machinery. Because a Paillier addition is multiplication mod n² —
// associative and commutative — the combined sums are bit-for-bit identical
// to the legacy sequential fold at every worker count and shard count.

const (
	// defaultIngestShards and defaultIngestBatch are fixed constants — never
	// derived from GOMAXPROCS — so fault schedules addressed by
	// (shard, batch, attempt) replay identically on any machine.
	defaultIngestShards = 8
	defaultIngestBatch  = 64
)

// shardSource produces one ingest shard's device uploads in shard-local
// device order. fill populates buf[0:n] with the uploads of shard-local
// devices [start, start+n). Implementations may reuse buf's slots and any
// scratch behind them between calls, but every *ahe.Ciphertext handed out
// must stay immutable once returned — the pipeline retains references to a
// bounded sample of batches for audit replay.
type shardSource interface {
	count() int
	fill(buf []upload, start, n int) error
}

// shardRun is one shard aggregator's assignment: its slice of the device
// population (starting at global index base), an upload source over it, and
// a shard-scoped proof verifier (replay state sized to the shard, so
// verifier memory is O(shard), not O(population)).
type shardRun struct {
	base     int
	src      shardSource
	verifier *zkp.Verifier
}

// ingestSpec configures one sharded, streaming ingest run.
type ingestSpec struct {
	pub     *ahe.PublicKey
	width   int // ciphertext cells per upload (categories, or bins×categories)
	batch   int // devices folded per batch: the bounded-memory unit
	workers int
	byz     bool // Byzantine aggregator: corrupt one mid-stream partial
	plan    *faults.Plan
	track   bool       // record accepted device indices (the bin protocol needs them)
	gauge   *heapGauge // optional peak-heap sampling for the bench harness
	// ctx cancels the ingest at batch boundaries (RunOptions.Ctx); nil
	// never cancels. Written once before the shard fan-out, read-only
	// inside it.
	ctx context.Context
}

// uploadEvent is the compact coordinator-bound record of a device upload
// that hit at least one simulated timeout. Shards collect these instead of
// mutating shared metrics; the coordinator tallies them in shard order —
// which is device order, since shards are contiguous ranges — so the fault
// log and the metrics replay identically at every worker count.
type uploadEvent struct {
	dev      int
	timeouts int
	backoff  time.Duration
	dropped  bool
}

// retainedBatch is one audit sample: a batch's accepted inputs plus the
// shard's claimed partials just before and just after folding it. Each shard
// retains O(1) batches, so audit memory stays bounded while every retained
// claim is still pinned to the global batch-commitment tree.
type retainedBatch struct {
	batch   int                 // shard-local batch index
	prev    []*ahe.Ciphertext   // checkpoint before the batch (nil cells: nothing folded yet)
	claimed []*ahe.Ciphertext   // checkpoint after the batch (the committed leaf's preimage)
	inputs  [][]*ahe.Ciphertext // the batch's accepted upload vectors
}

// shardResult is everything a shard aggregator reports back. Results are
// written only by the shard's own pool task and read only after the fan-out
// joins, so the pipeline needs no locks.
type shardResult struct {
	partial []*ahe.Ciphertext // the shard's folded sums (nil if nothing accepted)
	// leaves is the shard's batch-boundary commitment hashes in batch order,
	// concatenated flat (sha256.Size bytes each): one preallocated buffer
	// instead of one allocation per batch, so commitment storage stays a
	// fraction of a byte per device at 10^7+ populations.
	leaves      []byte
	retained    []retainedBatch
	accepted    int
	verified    int
	rejected    int
	bytes       int64
	events      []uploadEvent
	faults      []faults.Fault // shard-crash log entries, batch order
	crashes     int
	resumes     int
	backoff     time.Duration
	acceptedIdx []int32 // shard-local accepted device indices (track mode)
}

// ingestRetainAudit lists the shard-local batches retained for audit replay:
// first, middle, last. O(1) per shard, and the set always covers the middle
// batch — the position a Byzantine shard aggregator corrupts — while the
// first and last pin the stream's endpoints.
func ingestRetainAudit(nBatches int) [3]int {
	return [3]int{0, nBatches / 2, nBatches - 1}
}

func retainsBatch(set [3]int, b int) bool {
	return b == set[0] || b == set[1] || b == set[2]
}

var (
	ingestNilCell = []byte{0}
	ingestOneCell = []byte{1}
)

// ingestPartialHash commits to a checkpoint vector: each cell contributes a
// presence marker plus its fixed-width big-endian bytes (nil cells — nothing
// folded yet — contribute the zero marker). h is reused across calls; fill
// must hold ⌈n².bitlen/8⌉ bytes. The result is appended to dst.
func ingestPartialHash(h hash.Hash, cts []*ahe.Ciphertext, fill, dst []byte) []byte {
	h.Reset()
	for _, ct := range cts {
		if ct == nil {
			hashing.Write(h, ingestNilCell)
		} else {
			hashing.Write(h, ingestOneCell, ct.C.FillBytes(fill))
		}
	}
	return h.Sum(dst)
}

// ingestAccHash is ingestPartialHash over live accumulators; the two must
// produce identical bytes for the same partials (the crash-recovery path
// re-hashes the checkpoint copy of what this committed).
func ingestAccHash(h hash.Hash, accs []*ahe.Accumulator, fill, dst []byte) []byte {
	h.Reset()
	for _, a := range accs {
		if a.Empty() {
			hashing.Write(h, ingestNilCell)
		} else {
			hashing.Write(h, ingestOneCell, a.Fill(fill))
		}
	}
	return h.Sum(dst)
}

// snapshotCts deep-copies a checkpoint vector. The shard's rotating buffers
// are overwritten in place at every batch boundary, so audit samples keep
// their own big.Int values.
func snapshotCts(cts []*ahe.Ciphertext) []*ahe.Ciphertext {
	out := make([]*ahe.Ciphertext, len(cts))
	for i, ct := range cts {
		if ct != nil {
			out[i] = &ahe.Ciphertext{C: new(big.Int).Set(ct.C)}
		}
	}
	return out
}

// runShard is one shard aggregator: generate a batch of uploads, verify
// their proofs once, fold the accepted vectors into the pooled accumulators
// (with the ShardCrash injection point wrapping the fold in a
// checkpoint/resume retry loop), commit the partials, and move to the next
// batch. Steady-state memory is one upload batch plus 2×width big.Ints
// (accumulators and the rotating checkpoint), independent of shard size.
//
// Verification runs exactly once per batch, before any fold attempt: its
// outcomes — the accepted set and the verifier's replay state — are durable
// across fold crashes, and a resume only refolds already-verified uploads
// from the restored checkpoint. That is the no-double-count argument: a
// device's upload is admitted at most once, and every fold attempt starts
// from a checkpoint that does not include the in-flight batch.
func (sp *ingestSpec) runShard(shard int, job shardRun) (*shardResult, error) {
	res := &shardResult{}
	n := job.src.count()
	if n == 0 {
		return res, nil
	}
	width := sp.width
	accs := make([]*ahe.Accumulator, width)
	for c := range accs {
		accs[c] = sp.pub.NewAccumulator()
	}
	// Rotating checkpoint: the partials as of the last completed batch plus
	// their commitment hash, overwritten in place at each boundary.
	checkpoint := make([]*ahe.Ciphertext, width)
	ckptHash := make([]byte, 0, sha256.Size)
	haveCkpt := false

	h := sha256.New()
	fill := make([]byte, (sp.pub.N2.BitLen()+7)/8)
	verifyHash := make([]byte, 0, sha256.Size)
	sc := zkp.NewScratch()
	batchBuf := make([]upload, sp.batch)
	vecs := make([][]*ahe.Ciphertext, 0, sp.batch)

	nBatches := (n + sp.batch - 1) / sp.batch
	res.leaves = make([]byte, 0, nBatches*sha256.Size)
	retain := ingestRetainAudit(nBatches)
	corruptAt := -1
	if sp.byz && shard == 0 {
		corruptAt = nBatches / 2
	}

	for b := 0; b < nBatches; b++ {
		// Batch boundaries are cancellation checkpoints: the shard's last
		// checkpoint is committed and no upload is half-folded, so a
		// deadline-canceled ingest aborts here without double-counting.
		if sp.ctx != nil {
			select {
			case <-sp.ctx.Done():
				return nil, fmt.Errorf("runtime: ingest canceled at shard %d batch %d: %w",
					shard, b, sp.ctx.Err())
			default:
			}
		}
		start := b * sp.batch
		cnt := sp.batch
		if start+cnt > n {
			cnt = n - start
		}
		if err := job.src.fill(batchBuf[:cnt], start, cnt); err != nil {
			return nil, err
		}
		vecs = vecs[:0]
		for i := 0; i < cnt; i++ {
			up := &batchBuf[i]
			if up.timeouts > 0 {
				res.events = append(res.events, uploadEvent{
					dev: up.dev, timeouts: up.timeouts, backoff: up.backoff, dropped: up.dropped,
				})
			}
			if up.dropped {
				continue // nothing arrived
			}
			for _, ct := range up.vec {
				res.bytes += int64(ct.Bytes())
			}
			res.bytes += int64(up.proof.Bytes())
			res.verified++
			if !job.verifier.VerifyScratch(sc, up.proof) {
				res.rejected++
				continue
			}
			vecs = append(vecs, up.vec)
			if sp.track {
				res.acceptedIdx = append(res.acceptedIdx, int32(start+i))
			}
		}
		var prev []*ahe.Ciphertext
		if retainsBatch(retain, b) {
			prev = snapshotCts(checkpoint)
		}
		//arblint:ignore ctxcheckpoint bounded retry: returns once attempt+1 reaches shardBackoff.attempts
		for attempt := 0; ; attempt++ {
			if sp.plan.Fires(faults.ShardCrash, shard, b, attempt) {
				res.crashes++
				res.faults = append(res.faults, faults.Fault{
					Kind: faults.ShardCrash, Idx: []int{shard, b, attempt},
					Note: fmt.Sprintf("shard %d crashed folding batch %d", shard, b),
				})
				if attempt+1 >= shardBackoff.attempts {
					return nil, fmt.Errorf("%w: shard %d batch %d crashed %d times",
						ErrShardFailed, shard, b, attempt+1)
				}
				res.backoff += shardBackoff.delay(attempt)
				// The crash loses the in-flight fold. Restore the last
				// batch-boundary checkpoint, verifying it against the
				// recorded commitment before trusting it.
				if haveCkpt {
					verifyHash = ingestPartialHash(h, checkpoint, fill, verifyHash[:0])
					if !bytes.Equal(verifyHash, ckptHash) {
						return nil, fmt.Errorf("%w: shard %d checkpoint %d does not verify",
							ErrShardFailed, shard, b-1)
					}
				}
				for c, ct := range checkpoint {
					if ct == nil {
						accs[c].Reset()
					} else if err := accs[c].Set(ct); err != nil {
						return nil, err
					}
				}
				res.resumes++
				continue
			}
			for _, vec := range vecs {
				for c := 0; c < width; c++ {
					if err := accs[c].Add(vec[c]); err != nil {
						return nil, err
					}
				}
			}
			break
		}
		if b == corruptAt && !accs[0].Empty() {
			// Byzantine shard aggregator: silently shift cell 0's count and
			// carry the corruption forward, as a cheating aggregator would.
			bad, err := sp.pub.AddPlain(accs[0].Value(), big.NewInt(1000))
			if err != nil {
				return nil, err
			}
			if err := accs[0].Set(bad); err != nil {
				return nil, err
			}
		}
		// Batch boundary: rotate the checkpoint buffers and commit.
		for c := range accs {
			if accs[c].Empty() {
				checkpoint[c] = nil
				continue
			}
			if checkpoint[c] == nil {
				checkpoint[c] = &ahe.Ciphertext{C: new(big.Int)}
			}
			if err := accs[c].Snapshot(checkpoint[c]); err != nil {
				return nil, err
			}
		}
		res.leaves = ingestAccHash(h, accs, fill, res.leaves)
		ckptHash = append(ckptHash[:0], res.leaves[len(res.leaves)-sha256.Size:]...)
		haveCkpt = true
		if retainsBatch(retain, b) {
			res.retained = append(res.retained, retainedBatch{
				batch:   b,
				prev:    prev,
				claimed: snapshotCts(checkpoint),
				inputs:  append([][]*ahe.Ciphertext(nil), vecs...),
			})
		}
		res.accepted += len(vecs)
		sp.gauge.sample(false)
	}
	if res.accepted > 0 {
		res.partial = make([]*ahe.Ciphertext, width)
		for c := range accs {
			res.partial[c] = accs[c].Value()
		}
	}
	return res, nil
}

// ingestResult is a completed sharded ingest.
type ingestResult struct {
	shards       []*shardResult
	sums         []*ahe.Ciphertext // hierarchically combined shard partials
	tree         *merkle.Tree      // global commitment over every batch leaf, shard order
	accepted     int
	combineBytes int64 // aggregator-side traffic of the shard combine
	acceptedIdx  []int // global accepted device indices (track mode)
}

// runShardedIngest drives every shard aggregator on the worker pool and
// combines their partials hierarchically. Shards write disjoint results,
// parallel.Map reassembles them in shard order and surfaces the
// lowest-shard error first, so the whole phase is deterministic at every
// worker and shard count.
func runShardedIngest(sp *ingestSpec, jobs []shardRun) (*ingestResult, error) {
	shards, err := parallel.Map(nil, len(jobs), sp.workers, func(s int) (*shardResult, error) {
		return sp.runShard(s, jobs[s])
	})
	if err != nil {
		return nil, err
	}
	res := &ingestResult{shards: shards}
	var partials [][]*ahe.Ciphertext
	for s, sr := range shards {
		res.accepted += sr.accepted
		if sr.partial != nil {
			partials = append(partials, sr.partial)
		}
		if sp.track {
			for _, idx := range sr.acceptedIdx {
				res.acceptedIdx = append(res.acceptedIdx, jobs[s].base+int(idx))
			}
		}
	}
	if res.accepted == 0 {
		return res, nil
	}
	sums, sent, err := combinePartials(sp.pub, partials, sp.workers)
	if err != nil {
		return nil, err
	}
	res.sums = sums
	res.combineBytes = sent
	sp.gauge.sample(true)
	// The global commitment tree spans every shard's batch leaves in shard
	// order; audits prove inclusion against its root. The per-leaf views are
	// cut from the shards' flat buffers only here, after the last heap
	// sample: the tree is a post-ingest artifact, not streaming state.
	var leaves [][]byte
	for _, sr := range shards {
		for off := 0; off+sha256.Size <= len(sr.leaves); off += sha256.Size {
			leaves = append(leaves, sr.leaves[off:off+sha256.Size])
		}
	}
	tree, err := merkle.New(leaves)
	if err != nil {
		return nil, err
	}
	res.tree = tree
	return res, nil
}

// ingestCombineFanout is the combine tree's fanout: shard partials merge
// pairwise level by level, reusing the sum-tree fold.
const ingestCombineFanout = 2

// combinePartials folds the shard partials hierarchically with the
// sum-tree machinery until one vector remains, reporting the traffic the
// combine generated (aggregator-side: shard partials travel between
// aggregator tiers, not from devices).
func combinePartials(pub *ahe.PublicKey, partials [][]*ahe.Ciphertext, workers int) ([]*ahe.Ciphertext, int64, error) {
	var total int64
	for len(partials) > 1 {
		next, sent, err := foldGroups(pub, partials, ingestCombineFanout, workers)
		if err != nil {
			return nil, 0, err
		}
		partials = next
		total += sent
	}
	return partials[0], total, nil
}

// auditIngest replays the retained batch samples against the global batch
// commitment: for each sample, verify the Merkle inclusion of the claimed
// checkpoint, then recompute claimed = prev ⊞ Σ batch inputs and compare.
// Coverage is O(1) per shard, pinned to the first, middle, and last batches
// of every shard — a corruption of the shard partial must pass through the
// last batch's commitment, so a lying shard is caught there at the latest.
func auditIngest(pub *ahe.PublicKey, res *ingestResult, m *Metrics) error {
	if res.tree == nil {
		return nil
	}
	var firstErr error
	h := sha256.New()
	fill := make([]byte, (pub.N2.BitLen()+7)/8)
	base := 0
	for _, sr := range res.shards {
		for _, rb := range sr.retained {
			m.AuditsServed++
			if err := auditIngestBatch(pub, res.tree, base+rb.batch, rb, h, fill); err != nil {
				m.AuditFailures++
				if firstErr == nil {
					firstErr = err
				}
			}
		}
		base += len(sr.leaves) / sha256.Size
	}
	return firstErr
}

// auditIngestBatch replays one retained batch against leaf index leaf of the
// commitment tree.
func auditIngestBatch(pub *ahe.PublicKey, tree *merkle.Tree, leaf int, rb retainedBatch, h hash.Hash, fill []byte) error {
	proof, err := tree.Prove(leaf)
	if err != nil {
		return err
	}
	if !merkle.Verify(tree.Root(), ingestPartialHash(h, rb.claimed, fill, nil), proof) {
		return fmt.Errorf("runtime: ingest inclusion proof for batch %d failed", leaf)
	}
	running := snapshotCts(rb.prev)
	for _, vec := range rb.inputs {
		for c := range vec {
			if running[c] == nil {
				running[c] = vec[c]
				continue
			}
			sum, err := pub.Add(running[c], vec[c])
			if err != nil {
				return err
			}
			running[c] = sum
		}
	}
	for c := range rb.claimed {
		want, got := rb.claimed[c], running[c]
		if (want == nil) != (got == nil) || (want != nil && got.C.Cmp(want.C) != 0) {
			return fmt.Errorf("runtime: ingest batch %d does not recompute: aggregator misbehavior", leaf)
		}
	}
	return nil
}

// deviceSource adapts a contiguous range of the deployment's online devices
// to the streaming interface. Upload generation (encryption + proof) happens
// inside fill, one batch at a time, so the pipeline never holds more than
// one batch of device ciphertexts per shard.
type deviceSource struct {
	d       *Deployment
	km      *keyMaterial
	devices []*Device // the shard's online devices, device order
	base    int       // global online index of devices[0]
	width   int
	hot     func(onlineIdx int, dev *Device) int
}

func (s *deviceSource) count() int { return len(s.devices) }

func (s *deviceSource) fill(buf []upload, start, n int) error {
	for i := 0; i < n; i++ {
		dev := s.devices[start+i]
		up, err := s.d.deviceUploadRetry(s.km, dev, s.width, s.hot(s.base+start+i, dev))
		if err != nil {
			return err
		}
		buf[i] = up
	}
	return nil
}

// ingestParams resolves the configured shard count and batch size.
func (d *Deployment) ingestParams() (shards, batch int) {
	shards = d.cfg.IngestShards
	if shards <= 0 {
		shards = defaultIngestShards
	}
	batch = d.cfg.IngestBatch
	if batch <= 0 {
		batch = defaultIngestBatch
	}
	return shards, batch
}

// streamIngest runs the pipeline over the deployment's online devices, cut
// into contiguous shard ranges in device order (so shard order IS device
// order and every coordinator tally below replays identically), then folds
// the shard-side counters into the metrics.
func (d *Deployment) streamIngest(km *keyMaterial, width int, hot func(onlineIdx int, dev *Device) int, track bool) (*ingestResult, error) {
	var online []*Device
	for _, dev := range d.Devices {
		if !dev.Offline { // churned devices simply do not upload
			online = append(online, dev)
		}
	}
	shards, batch := d.ingestParams()
	sp := &ingestSpec{
		pub:     km.pub,
		width:   width,
		batch:   batch,
		workers: d.workers(),
		byz:     d.cfg.ByzantineAggregator,
		plan:    d.cfg.Faults,
		track:   track,
		ctx:     d.runCtx,
	}
	jobs := make([]shardRun, shards)
	for s := 0; s < shards; s++ {
		lo := s * len(online) / shards
		hi := (s + 1) * len(online) / shards
		devs := online[lo:hi]
		keys := make(map[int][]byte, len(devs))
		for _, dev := range devs {
			keys[dev.ID] = dev.Key
		}
		jobs[s] = shardRun{
			base:     lo,
			src:      &deviceSource{d: d, km: km, devices: devs, base: lo, width: width, hot: hot},
			verifier: zkp.NewVerifier(keys),
		}
	}
	res, err := runShardedIngest(sp, jobs)
	if err != nil {
		return nil, err
	}
	d.tallyIngest(res)
	return res, nil
}

// tallyIngest folds a completed ingest's shard-side counters into the
// metrics and the fault log on the coordinating goroutine, shard by shard —
// device order, since shards are contiguous ranges.
func (d *Deployment) tallyIngest(res *ingestResult) {
	for _, sr := range res.shards {
		for _, ev := range sr.events {
			d.tallyUpload(upload{dev: ev.dev, timeouts: ev.timeouts, backoff: ev.backoff, dropped: ev.dropped})
		}
		for _, f := range sr.faults {
			d.cfg.Faults.Record(f)
		}
		d.Metrics.DeviceBytesSent += sr.bytes
		d.Metrics.ZKPsVerified += sr.verified
		d.Metrics.ZKPsRejected += sr.rejected
		d.Metrics.ShardCrashes += sr.crashes
		d.Metrics.ShardResumes += sr.resumes
		d.Metrics.BackoffSimulated += sr.backoff
	}
	d.Metrics.AggregatorBytes += res.combineBytes
}

// streamCollectInputs is collectInputs on the streaming pipeline
// (Config.StreamIngest): same accepted set, same sums — bit for bit — with
// O(shards × batch) ciphertext memory instead of O(population). Shard
// pre-aggregation subsumes the legacy chunked fold; the aggregator audit
// runs on retained batch samples against the batch-commitment tree.
func (d *Deployment) streamCollectInputs(km *keyMaterial) ([]*ahe.Ciphertext, int, error) {
	res, err := d.streamIngest(km, d.cfg.Categories, func(_ int, dev *Device) int { return dev.Category }, false)
	if err != nil {
		return nil, 0, err
	}
	if res.accepted == 0 {
		return nil, 0, ErrNoValidInputs
	}
	if err := auditIngest(km.pub, res, &d.Metrics); err != nil {
		return nil, 0, fmt.Errorf("runtime: audit: %w", err)
	}
	return res.sums, res.accepted, nil
}

// streamCollectBinned is collectBinnedInputs on the streaming pipeline: it
// returns the per-bin-per-category sums (for windowSums) and the accepted
// devices' bins. The bin draws consume the deployment RNG sequentially in
// device order BEFORE any shard task runs — draw for draw the same stream
// as the legacy path, at every worker and shard count.
func (d *Deployment) streamCollectBinned(km *keyMaterial) ([]*ahe.Ciphertext, []int, error) {
	cats := d.cfg.Categories
	width := sampleBinCount * cats
	var chosen []int
	for _, dev := range d.Devices {
		if !dev.Offline {
			chosen = append(chosen, d.rng.Intn(sampleBinCount))
		}
	}
	res, err := d.streamIngest(km, width, func(onlineIdx int, dev *Device) int {
		return chosen[onlineIdx]*cats + dev.Category
	}, true)
	if err != nil {
		return nil, nil, err
	}
	if res.accepted == 0 {
		return nil, nil, fmt.Errorf("%w: no binned inputs survived", ErrNoValidInputs)
	}
	if err := auditIngest(km.pub, res, &d.Metrics); err != nil {
		return nil, nil, fmt.Errorf("runtime: audit: %w", err)
	}
	bins := make([]int, len(res.acceptedIdx))
	for i, idx := range res.acceptedIdx {
		bins[i] = chosen[idx]
	}
	return res.sums, bins, nil
}
