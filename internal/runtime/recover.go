package runtime

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"arboretum/internal/faults"
)

// The runtime's typed failure modes. The fail-closed contract (docs/FAULTS.md)
// is that a query under fault injection either completes with a correct,
// in-budget answer or returns an error matching one of these — never a
// silently wrong or privacy-violating result.
var (
	// ErrCommitteeBroken: a committee fell below the reconstruction
	// threshold ⌊m/2⌋+1 (or the 3-member floor); its shares — and, for the
	// key holder, the private key — are unrecoverable.
	ErrCommitteeBroken = errors.New("runtime: committee below reconstruction threshold")
	// ErrCommitteeDegraded: a committee lost more than the churn tolerance
	// g·m but still has a reconstructing majority; the vignette aborts
	// before opening anything and recovery re-forms from the sortition pool.
	ErrCommitteeDegraded = errors.New("runtime: committee churn above tolerance")
	// ErrNoSpareCommittee: re-formation needed a spare committee but the
	// sortition pool is exhausted.
	ErrNoSpareCommittee = errors.New("runtime: sortition pool exhausted, no spare committee")
	// ErrHandoffFailed: a VSR hand-off did not complete within its retry
	// budget (it wraps the last attempt's cause, e.g.
	// vsr.ErrInsufficientShares when too many dealers vanished).
	ErrHandoffFailed = errors.New("runtime: VSR hand-off failed")
	// ErrAggregatorFailed: the aggregator could not complete an audited
	// aggregation step within its retry budget, or a restored checkpoint
	// did not verify.
	ErrAggregatorFailed = errors.New("runtime: aggregation step failed")
	// ErrNoValidInputs: every device upload was dropped (timeouts, churn)
	// or rejected (invalid proofs).
	ErrNoValidInputs = errors.New("runtime: no valid inputs")
	// ErrShardFailed: a streaming-ingest shard aggregator could not fold a
	// batch within its retry budget, or a restored batch-boundary
	// checkpoint did not verify against its recorded commitment.
	ErrShardFailed = errors.New("runtime: ingest shard failed")
)

// backoffPolicy is a capped exponential backoff: attempt n waits
// base·2^(n−1) up to cap before retrying, and the whole operation fails
// after attempts tries. The simulation never sleeps — delays accumulate into
// Metrics.BackoffSimulated so tests and the cost model can see what a real
// deployment would have waited.
type backoffPolicy struct {
	attempts int
	base     time.Duration
	cap      time.Duration
}

// delay returns the wait before retry number retry (0-based).
func (b backoffPolicy) delay(retry int) time.Duration {
	d := b.base << uint(retry)
	if d > b.cap {
		d = b.cap
	}
	return d
}

var (
	// uploadBackoff governs device upload retries (flaky phones on flaky
	// links: short waits, few tries — a device that cannot upload is simply
	// dropped, PAPAYA-style).
	uploadBackoff = backoffPolicy{attempts: 3, base: 50 * time.Millisecond, cap: 400 * time.Millisecond}
	// vignetteBackoff governs committee-vignette retries (each retry may
	// re-form the committee from the sortition pool first).
	vignetteBackoff = backoffPolicy{attempts: 3, base: 200 * time.Millisecond, cap: 2 * time.Second}
	// handoffBackoff governs VSR re-dealing retries after dealer failures.
	handoffBackoff = backoffPolicy{attempts: 3, base: 100 * time.Millisecond, cap: time.Second}
	// aggregatorBackoff governs aggregator crash-recovery: each retry
	// restores the last Merkle-audited checkpoint and refolds the chunk.
	aggregatorBackoff = backoffPolicy{attempts: 3, base: 500 * time.Millisecond, cap: 5 * time.Second}
	// shardBackoff governs ingest shard-aggregator crash-recovery: each
	// retry restores the shard's last batch-boundary checkpoint (verified
	// against its recorded commitment) and refolds the batch.
	shardBackoff = backoffPolicy{attempts: 3, base: 500 * time.Millisecond, cap: 5 * time.Second}
)

// tallyUpload folds one device's upload-fault counters into the metrics and
// the fault log. It runs on the coordinating goroutine in device order
// (acceptUploads / collectBinnedInputs), which keeps the log and the metrics
// identical at every worker count. It reports whether the upload was dropped
// after exhausting its retries.
func (d *Deployment) tallyUpload(up upload) bool {
	if up.timeouts == 0 {
		return false
	}
	d.Metrics.UploadTimeouts += up.timeouts
	d.Metrics.BackoffSimulated += up.backoff
	if up.dropped {
		d.Metrics.UploadRetries += up.timeouts - 1
		d.Metrics.UploadsDropped++
		d.cfg.Faults.Record(faults.Fault{
			Kind: faults.UploadTimeout, Idx: []int{up.dev},
			Note: fmt.Sprintf("device %d dropped after %d timeouts", up.dev, up.timeouts),
		})
		return true
	}
	d.Metrics.UploadRetries += up.timeouts
	d.cfg.Faults.Record(faults.Fault{
		Kind: faults.UploadTimeout, Idx: []int{up.dev},
		Note: fmt.Sprintf("device %d recovered after %d timeouts", up.dev, up.timeouts),
	})
	return false
}

// FaultReport renders the plan, the fired-fault log, and the recovery
// counters after one or more runs — what `arboretum run -faults` prints so a
// schedule can be eyeballed and replayed. Empty without a fault plan.
func (d *Deployment) FaultReport() string {
	p := d.cfg.Faults
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan: %s\n", p)
	for _, f := range p.Fired() {
		fmt.Fprintf(&b, "  fault %s%v: %s\n", f.Kind, f.Idx, f.Note)
	}
	m := d.Metrics
	fmt.Fprintf(&b, "recovery: %d upload retries (%d devices dropped), %d member dropouts, %d re-formations, %d dealer failures, %d VSR re-deals, %d aggregator crashes (%d resumes), %d shard crashes (%d resumes), %d vignette retries, %v simulated backoff\n",
		m.UploadRetries, m.UploadsDropped, m.MemberDropouts, m.Reformations,
		m.DealerFailures, m.VSRRedeals, m.AggregatorCrashes, m.AggregatorResumes,
		m.ShardCrashes, m.ShardResumes, m.VignetteRetries, m.BackoffSimulated)
	return b.String()
}
