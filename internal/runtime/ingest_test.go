package runtime

import (
	"crypto/rand"
	"errors"
	"fmt"
	"os"
	"reflect"
	goruntime "runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"arboretum/internal/ahe"
	"arboretum/internal/faults"
)

// --- virtual-population helpers ---

var (
	ingestKeyOnce sync.Once
	ingestTestKey *ahe.PrivateKey
	ingestKeyErr  error
)

// ingestKey caches one small Paillier key across the virtual-population
// tests; keygen would otherwise dominate every test body.
func ingestKey(t testing.TB) *ahe.PrivateKey {
	t.Helper()
	ingestKeyOnce.Do(func() {
		ingestTestKey, ingestKeyErr = ahe.GenerateKey(rand.Reader, 256)
	})
	if ingestKeyErr != nil {
		t.Fatal(ingestKeyErr)
	}
	return ingestTestKey
}

// decryptSums decrypts a combined sum vector into per-cell counts.
func decryptSums(t *testing.T, sk *ahe.PrivateKey, sums []*ahe.Ciphertext) []int64 {
	t.Helper()
	out := make([]int64, len(sums))
	for c, ct := range sums {
		if ct == nil {
			continue
		}
		m, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		out[c] = m.Int64()
	}
	return out
}

// ingestHistogram asserts the decrypted sums equal the population's exact
// per-category histogram — the strongest form of the no-double-count
// invariant: any dropped or twice-folded upload shifts a count by ≥1.
func ingestHistogram(t *testing.T, sk *ahe.PrivateKey, pop *virtualPopulation, res *ingestResult) {
	t.Helper()
	got := decryptSums(t, sk, res.sums)
	want := pop.histogram()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decrypted sums %v, exact histogram %v", got, want)
	}
}

// TestVirtualIngestExactHistogram: a fault-free sharded ingest over a virtual
// population accepts every device exactly once — the decrypted sums equal the
// exact histogram — commits one leaf per batch, and the retained-sample audit
// passes over every shard.
func TestVirtualIngestExactHistogram(t *testing.T) {
	sk := ingestKey(t)
	pop := newVirtualPopulation(99, 2000, 8)
	res, err := virtualIngest(pop, &sk.PublicKey, 1, 8, 64, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.accepted != pop.n {
		t.Fatalf("accepted %d of %d devices", res.accepted, pop.n)
	}
	ingestHistogram(t, sk, pop, res)
	// 8 shards × 250 devices = 4 batches each: 32 committed leaves
	// (sha256.Size bytes each in the shards' flat buffers).
	var leaves int
	for _, sr := range res.shards {
		leaves += len(sr.leaves) / 32
	}
	if leaves != 32 || res.tree == nil {
		t.Fatalf("committed %d batch leaves (tree=%v), want 32", leaves, res.tree != nil)
	}
	var m Metrics
	if err := auditIngest(&sk.PublicKey, res, &m); err != nil {
		t.Fatalf("audit failed on an honest run: %v", err)
	}
	if m.AuditsServed != 24 || m.AuditFailures != 0 {
		t.Fatalf("audits served=%d failures=%d, want 24/0 (3 per shard)", m.AuditsServed, m.AuditFailures)
	}
}

// TestVirtualIngestCrashResumeExact: a forced shard crash restores the
// batch-boundary checkpoint and refolds only the in-flight batch; the final
// counts are exactly the histogram, so no device was lost or double-counted.
func TestVirtualIngestCrashResumeExact(t *testing.T) {
	sk := ingestKey(t)
	pop := newVirtualPopulation(99, 2000, 8)
	plan := faults.New(1).Force(faults.ShardCrash, 2)
	res, err := virtualIngest(pop, &sk.PublicKey, 2, 8, 64, 4, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c, r := res.shards[2].crashes, res.shards[2].resumes; c != 1 || r != 1 {
		t.Fatalf("shard 2 crashes=%d resumes=%d, want 1/1", c, r)
	}
	ingestHistogram(t, sk, pop, res)
}

// TestVirtualIngestCrashScheduleExact sweeps seeded random crash schedules:
// every run either completes with the exact histogram (crashes recovered,
// nothing double-counted) or fails closed with ErrShardFailed. At least one
// schedule must crash and recover, and at least one must complete.
func TestVirtualIngestCrashScheduleExact(t *testing.T) {
	sk := ingestKey(t)
	pop := newVirtualPopulation(5, 1000, 6)
	crashes, resumes, completed := 0, 0, 0
	for seed := uint64(30); seed < 36; seed++ {
		plan := faults.New(seed).SetRate(faults.ShardCrash, 0.15)
		res, err := virtualIngest(pop, &sk.PublicKey, seed, 8, 32, 4, plan, nil)
		if err != nil {
			if !errors.Is(err, ErrShardFailed) {
				t.Fatalf("seed %d: untyped failure: %v", seed, err)
			}
			continue
		}
		completed++
		for _, sr := range res.shards {
			crashes += sr.crashes
			resumes += sr.resumes
		}
		ingestHistogram(t, sk, pop, res)
	}
	if completed == 0 {
		t.Fatal("no schedule completed — the crash rate is too hot to test recovery")
	}
	if crashes == 0 || resumes == 0 {
		t.Fatalf("schedules fired %d crashes (%d resumes); want both > 0", crashes, resumes)
	}
}

// TestVirtualIngestTotalCrashFailsClosed: when every fold attempt crashes,
// the shard exhausts its retry budget and the ingest fails closed with the
// typed error — it never returns partial sums.
func TestVirtualIngestTotalCrashFailsClosed(t *testing.T) {
	sk := ingestKey(t)
	pop := newVirtualPopulation(99, 500, 4)
	plan := faults.New(9).SetRate(faults.ShardCrash, 1)
	res, err := virtualIngest(pop, &sk.PublicKey, 3, 4, 32, 4, plan, nil)
	if err == nil {
		t.Fatalf("ingest completed under total crash: accepted=%d", res.accepted)
	}
	if !errors.Is(err, ErrShardFailed) {
		t.Fatalf("want ErrShardFailed, got %v", err)
	}
}

// --- legacy-vs-streaming equivalence ---

// ingestEqCfg is one run of the equivalence matrix.
type ingestEqCfg struct {
	stream        bool
	shards, batch int
	workers       int
}

func (c ingestEqCfg) String() string {
	if !c.stream {
		return fmt.Sprintf("legacy/w%d", c.workers)
	}
	return fmt.Sprintf("stream/s%d.b%d.w%d", c.shards, c.batch, c.workers)
}

// ingestEqRun executes one full query with upload faults armed and returns
// everything the equivalence check compares. Each run gets its own fault
// plan instance (plans accumulate a fired log) with the same plan seed, so
// the upload-fault schedule is identical across the matrix.
func ingestEqRun(t *testing.T, src string, seed int64, cfg ingestEqCfg) (*Result, Metrics, []faults.Fault) {
	t.Helper()
	plan := faults.New(77).SetRate(faults.UploadTimeout, 0.12)
	d, err := NewDeployment(Config{
		N: 64, Categories: 4, CommitteeSize: 5, Seed: seed, KeyBits: 256,
		// OfflineTolerance 0.4: churned devices must exercise the ingest's
		// online slicing, but committee composition rides on crypto/rand
		// sortition keys — at the default tolerance a 10%-offline population
		// makes committee viability a per-process dice roll.
		MaliciousFrac: 0.1, OfflineFrac: 0.1, OfflineTolerance: 0.4,
		BudgetEpsilon: 1000,
		Workers:       cfg.workers, Faults: plan,
		StreamIngest: cfg.stream, IngestShards: cfg.shards, IngestBatch: cfg.batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(src, RunOptions{})
	if err != nil {
		t.Fatalf("%v: %v", cfg, err)
	}
	return res, d.Metrics, plan.Fired()
}

// TestStreamIngestEquivalence is the acceptance matrix: the streaming
// pipeline must release byte-identical results to the legacy materializing
// path — same outputs, same accepted set size, same upload/ZKP counters,
// same fired-fault log — across seeds, worker counts, and shard counts, for
// both the plain and the binned (secrecy-of-the-sample) protocols, with
// malicious devices, churned-offline devices, and upload timeouts all armed.
func TestStreamIngestEquivalence(t *testing.T) {
	shapes := []struct {
		name  string
		seeds []int64
		src   string
	}{
		{"count", []int64{42, 7}, `aggr = sum(db);
noised = laplace(aggr[0], 5.0);
output(declassify(noised));`},
		{"sampled", []int64{42}, `sampleUniform(0.5);
aggr = sum(db);
noised = laplace(aggr[0], 5.0);
output(declassify(noised));`},
	}
	variants := []ingestEqCfg{
		{stream: true, shards: 1, batch: 8, workers: 1},
		{stream: true, shards: 3, batch: 8, workers: 4},
		{stream: true, shards: 8, batch: 8, workers: 2},
	}
	for _, shape := range shapes {
		for _, seed := range shape.seeds {
			t.Run(fmt.Sprintf("%s/seed%d", shape.name, seed), func(t *testing.T) {
				wantRes, wantM, wantFired := ingestEqRun(t, shape.src, seed, ingestEqCfg{workers: 4})
				if wantM.ZKPsRejected == 0 {
					t.Fatal("baseline rejected no proofs; MaliciousFrac is not exercised")
				}
				for _, cfg := range variants {
					res, m, fired := ingestEqRun(t, shape.src, seed, cfg)
					if !reflect.DeepEqual(res.Outputs, wantRes.Outputs) {
						t.Errorf("%v: outputs %v, legacy %v", cfg, res.Outputs, wantRes.Outputs)
					}
					if res.Accepted != wantRes.Accepted || res.Sampled != wantRes.Sampled {
						t.Errorf("%v: accepted/sampled %d/%d, legacy %d/%d",
							cfg, res.Accepted, res.Sampled, wantRes.Accepted, wantRes.Sampled)
					}
					got := [5]int{m.ZKPsVerified, m.ZKPsRejected, m.UploadTimeouts, m.UploadRetries, m.UploadsDropped}
					want := [5]int{wantM.ZKPsVerified, wantM.ZKPsRejected, wantM.UploadTimeouts, wantM.UploadRetries, wantM.UploadsDropped}
					if got != want {
						t.Errorf("%v: zkp/upload counters %v, legacy %v", cfg, got, want)
					}
					if !reflect.DeepEqual(fired, wantFired) {
						t.Errorf("%v: fired-fault log diverged from legacy:\n stream: %v\n legacy: %v",
							cfg, fired, wantFired)
					}
				}
			})
		}
	}
}

// TestStreamIngestByzantineDetected: a Byzantine shard aggregator that
// shifts a mid-stream partial is caught by the retained-sample audit — the
// corrupted batch no longer recomputes from its predecessor checkpoint.
func TestStreamIngestByzantineDetected(t *testing.T) {
	d, err := NewDeployment(Config{
		N: 64, Categories: 4, CommitteeSize: 5, Seed: 42, KeyBits: 256,
		BudgetEpsilon: 1000, ByzantineAggregator: true,
		StreamIngest: true, IngestShards: 8, IngestBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run(`aggr = sum(db);
noised = laplace(aggr[0], 5.0);
output(declassify(noised));`, RunOptions{})
	if err == nil {
		t.Fatal("run completed with a Byzantine shard aggregator")
	}
	if !strings.Contains(err.Error(), "aggregator misbehavior") {
		t.Errorf("want an aggregator-misbehavior audit error, got %v", err)
	}
	if d.Metrics.AuditFailures == 0 {
		t.Error("no audit failure recorded for a detected corruption")
	}
}

// --- chaos integration (shard crashes inside full end-to-end queries) ---

func chaosStreamDeployment(t *testing.T, plan *faults.Plan, seed int64) *Deployment {
	t.Helper()
	d, err := NewDeployment(Config{
		N: chaosN, Categories: 4, CommitteeSize: 5, Seed: seed, KeyBits: 256,
		BudgetEpsilon: 1000, Data: chaosData, Faults: plan,
		StreamIngest: true, IngestShards: 4, IngestBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestChaosStreamSweep runs the chaos shapes over the streaming pipeline
// with shard crashes armed alongside the other fault kinds: every run
// completes correctly (per the plan-derived reference) or fails closed with
// a typed error, and never double-charges the budget.
func TestChaosStreamSweep(t *testing.T) {
	certEps := map[string]float64{}
	for _, shape := range chaosShapes {
		certEps[shape.name] = chaosBudgetEps(t, shape.src)
	}
	var mu sync.Mutex
	completed, failedClosed, crashed := 0, 0, 0
	t.Cleanup(func() {
		t.Logf("stream chaos sweep: %d completed, %d failed closed, %d runs saw shard crashes",
			completed, failedClosed, crashed)
		if completed == 0 {
			t.Error("no schedule completed — rates are too hot to exercise recovery")
		}
		if crashed == 0 {
			t.Error("no schedule fired a shard crash — the ShardCrash injection point is dead")
		}
	})
	for s := 0; s < chaosSchedules; s++ {
		for _, shape := range chaosShapes {
			s, shape := s, shape
			t.Run(fmt.Sprintf("schedule%d/%s", s, shape.name), func(t *testing.T) {
				t.Parallel()
				plan := faults.New(uint64(2000+s)).
					SetRate(faults.UploadTimeout, 0.08).
					SetRate(faults.MemberDropout, 0.002).
					SetRate(faults.DealerFailure, 0.08).
					SetRate(faults.ShardCrash, 0.25)
				d := chaosStreamDeployment(t, plan, 42)
				res, err := d.Run(shape.src, RunOptions{})
				assertBudget(t, d, certEps[shape.name], shape.name)
				mu.Lock()
				if d.Metrics.ShardCrashes > 0 {
					crashed++
				}
				mu.Unlock()
				if err != nil {
					mu.Lock()
					failedClosed++
					mu.Unlock()
					if !chaosTypedErr(err) {
						t.Errorf("untyped failure: %v", err)
					}
					return
				}
				mu.Lock()
				completed++
				mu.Unlock()
				shape.check(t, plan, res.Outputs)
			})
		}
	}
}

// TestChaosStreamReplayDeterminism: a streaming run under fault injection
// replays bit-for-bit from its plan seed — outputs, fired-fault coordinates,
// shard crash/resume counters, and error text all identical.
func TestChaosStreamReplayDeterminism(t *testing.T) {
	type trace struct {
		outputs  string
		errText  string
		fired    []faults.Fault
		counters [6]int
	}
	run := func(workers int) trace {
		plan := faults.New(13).
			SetRate(faults.UploadTimeout, 0.15).
			SetRate(faults.ShardCrash, 0.3)
		d := chaosStreamDeployment(t, plan, 42)
		d.cfg.Workers = workers
		res, err := d.Run(chaosShapes[1].src, RunOptions{})
		m := d.Metrics
		tr := trace{
			fired: plan.Fired(),
			counters: [6]int{
				m.UploadTimeouts, m.UploadsDropped, m.ShardCrashes,
				m.ShardResumes, m.ZKPsVerified, m.ZKPsRejected,
			},
		}
		if err != nil {
			tr.errText = err.Error()
		} else {
			tr.outputs = fmt.Sprint(res.Outputs)
		}
		return tr
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("replay diverged across worker counts:\n  1 worker:  %+v\n  8 workers: %+v", a, b)
	}
}

// TestChaosStreamCrashResumeAudit: a forced shard crash inside a full query
// resumes from the shard checkpoint, the query completes with the expected
// count, and the retained-sample audit passes over every shard.
func TestChaosStreamCrashResumeAudit(t *testing.T) {
	plan := faults.New(11).Force(faults.ShardCrash, 1)
	d := chaosStreamDeployment(t, plan, 42)
	res, err := d.Run(chaosShapes[0].src, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Metrics.ShardCrashes != 1 || d.Metrics.ShardResumes != 1 {
		t.Errorf("crashes=%d resumes=%d, want 1/1", d.Metrics.ShardCrashes, d.Metrics.ShardResumes)
	}
	// 4 shards × 12 devices at batch 8 = 2 batches per shard, both retained
	// ({first, middle, last} collapses to {0, 1}): 8 audits, none failing.
	if d.Metrics.AuditsServed != 8 || d.Metrics.AuditFailures != 0 {
		t.Errorf("audits served=%d failures=%d, want 8/0", d.Metrics.AuditsServed, d.Metrics.AuditFailures)
	}
	got, want := res.Outputs[0].Float(), 4.0
	if got < want-15 || got > want+15 {
		t.Errorf("count = %g, want ≈%g", got, want)
	}
}

// --- benchmarks ---

// benchDevices resolves the ARBORETUM_BENCH_DEVICES population knob.
func benchDevices(def int) int {
	if s := os.Getenv("ARBORETUM_BENCH_DEVICES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// reportPerDevice attaches ns/device and B/device to a benchmark from the
// wall clock and the allocator's TotalAlloc delta over the timed section.
func reportPerDevice(b *testing.B, before goruntime.MemStats, devices int) {
	var after goruntime.MemStats
	goruntime.ReadMemStats(&after)
	ops := float64(b.N) * float64(devices)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/ops, "ns/device")
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/ops, "B/device")
}

// BenchmarkIngest drives the sharded, streaming pipeline over a virtual
// population — the 10^5..10^8-device scaling harness (`scripts/bench.sh
// ingest` sweeps ARBORETUM_BENCH_DEVICES). Per-device state derives from the
// population seed inside each shard and uploads fold into pooled
// accumulators, so allocations and live heap stay O(shards × batch) while
// ns/device stays flat: the heap-peak-bytes metric is the flatness evidence.
func BenchmarkIngest(b *testing.B) {
	n := benchDevices(100000)
	sk, err := ahe.GenerateKey(rand.Reader, 512)
	if err != nil {
		b.Fatal(err)
	}
	pop := newVirtualPopulation(7, n, 16)
	if _, err := pop.templatesFor(&sk.PublicKey); err != nil {
		b.Fatal(err) // warm the template cache: setup, not ingest work
	}
	gauge := &heapGauge{}
	var before goruntime.MemStats
	goruntime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := virtualIngest(pop, &sk.PublicKey, uint64(i+1), 0, 0, 0, nil, gauge)
		if err != nil {
			b.Fatal(err)
		}
		if res.accepted != n {
			b.Fatalf("accepted %d of %d devices", res.accepted, n)
		}
	}
	b.StopTimer()
	reportPerDevice(b, before, n)
	b.ReportMetric(float64(gauge.peakBytes()), "heap-peak-bytes")
}

// benchCollect is BenchmarkCollectInputs' body for both collection paths:
// a full deployment (real per-device encryption), population sized by
// ARBORETUM_BENCH_DEVICES.
func benchCollect(b *testing.B, stream bool) {
	d, err := NewDeployment(Config{
		N: benchDevices(64), Categories: 16, CommitteeSize: 5, Seed: 7,
		BudgetEpsilon: 1e9, StreamIngest: stream,
	})
	if err != nil {
		b.Fatal(err)
	}
	committees, err := d.selectCommittees(1)
	if err != nil {
		b.Fatal(err)
	}
	km, err := d.keygen(committees[0])
	if err != nil {
		b.Fatal(err)
	}
	var before goruntime.MemStats
	goruntime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.queryID++ // fresh replay-protection scope per iteration
		if stream {
			if _, _, err := d.streamCollectInputs(km); err != nil {
				b.Fatal(err)
			}
		} else if _, err := d.collectInputs(km); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPerDevice(b, before, d.cfg.N)
}

// BenchmarkCollectInputs times the legacy materializing input phase
// (encrypt + prove for every online device, then verify) through a full
// deployment. Run with -cpu 1,4 to compare the sequential fallback against
// the pool; ARBORETUM_BENCH_DEVICES resizes the population.
func BenchmarkCollectInputs(b *testing.B) { benchCollect(b, false) }

// BenchmarkCollectInputsStream is the same phase through the sharded,
// streaming pipeline (verify + fold + commit per batch) — the head-to-head
// against BenchmarkCollectInputs at identical population and key size.
func BenchmarkCollectInputsStream(b *testing.B) { benchCollect(b, true) }
