package runtime

import (
	"testing"

	"arboretum/internal/mechanism"
)

// TestNoiseRandSelectsSource checks the Config.SecureNoise switch: the
// default keeps the seeded simulation sampler (replayable from Seed), the
// secure mode hands back the crypto/rand-backed production sampler.
func TestNoiseRandSelectsSource(t *testing.T) {
	sim, err := NewDeployment(Config{N: 16, Categories: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.noiseRand().(interface{ Intn(int) int }); !ok {
		t.Fatal("simulation sampler does not satisfy the Rand surface")
	}

	sec, err := NewDeployment(Config{N: 16, Categories: 2, Seed: 1, SecureNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	secureSampler := sec.noiseRand()
	if secureSampler != mechanism.CryptoRand() {
		t.Fatal("SecureNoise deployment did not select mechanism.CryptoRand")
	}
	// The secure sampler must still satisfy the mechanism contract.
	u := secureSampler.Uniform()
	if u <= 0 {
		t.Fatalf("secure sampler Uniform() = %v, want > 0", u)
	}
}

// TestSecureNoiseDeploymentsDiverge runs the same seeded query twice with
// SecureNoise: the released values may differ (the noise is no longer a
// function of Seed), but both runs must succeed and certify.
func TestSecureNoiseDeploymentsDiverge(t *testing.T) {
	run := func() []float64 {
		t.Helper()
		d, err := NewDeployment(Config{N: 32, Categories: 4, Seed: 7, SecureNoise: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(countSrc, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(res.Outputs))
		for i, v := range res.Outputs {
			out[i] = v.Float()
		}
		return out
	}
	a := run()
	b := run()
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("secure-noise runs released no values")
	}
}
