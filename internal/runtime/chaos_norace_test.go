//go:build !race

package runtime

// chaosSchedules sizes the acceptance sweep: 17 schedules × 3 shapes = 51
// end-to-end runs under fault injection (the acceptance floor is 50).
const chaosSchedules = 17
