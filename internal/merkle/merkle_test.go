package merkle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) should fail")
	}
}

func TestSingleLeaf(t *testing.T) {
	tr, err := New(leaves(1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(tr.Root(), []byte("leaf-0"), p) {
		t.Fatal("single-leaf proof failed to verify")
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 100} {
		ls := leaves(n)
		tr, err := New(ls)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Size() != n {
			t.Fatalf("Size() = %d, want %d", tr.Size(), n)
		}
		for i := 0; i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("n=%d Prove(%d): %v", n, i, err)
			}
			if !Verify(tr.Root(), ls[i], p) {
				t.Fatalf("n=%d leaf %d failed to verify", n, i)
			}
		}
	}
}

func TestWrongPayloadRejected(t *testing.T) {
	tr, _ := New(leaves(8))
	p, _ := tr.Prove(3)
	if Verify(tr.Root(), []byte("not-the-leaf"), p) {
		t.Fatal("verification accepted wrong payload")
	}
}

func TestWrongIndexRejected(t *testing.T) {
	tr, _ := New(leaves(8))
	p, _ := tr.Prove(3)
	p.Index = 4
	if Verify(tr.Root(), []byte("leaf-3"), p) {
		t.Fatal("verification accepted wrong index")
	}
}

func TestTamperedSiblingRejected(t *testing.T) {
	tr, _ := New(leaves(8))
	p, _ := tr.Prove(3)
	p.Siblings[0][0] ^= 0xff
	if Verify(tr.Root(), []byte("leaf-3"), p) {
		t.Fatal("verification accepted tampered sibling")
	}
}

func TestNilProofRejected(t *testing.T) {
	tr, _ := New(leaves(4))
	if Verify(tr.Root(), []byte("leaf-0"), nil) {
		t.Fatal("verification accepted nil proof")
	}
}

func TestProveOutOfRange(t *testing.T) {
	tr, _ := New(leaves(4))
	if _, err := tr.Prove(-1); err == nil {
		t.Error("Prove(-1) should fail")
	}
	if _, err := tr.Prove(4); err == nil {
		t.Error("Prove(4) should fail")
	}
}

func TestLeafSwapChangesRoot(t *testing.T) {
	a, _ := New([][]byte{[]byte("x"), []byte("y")})
	b, _ := New([][]byte{[]byte("y"), []byte("x")})
	if a.Root() == b.Root() {
		t.Fatal("leaf order should change the root")
	}
}

// Domain separation: a tree whose single leaf equals an interior encoding of
// another tree must not produce the same root.
func TestDomainSeparation(t *testing.T) {
	inner, _ := New([][]byte{[]byte("a"), []byte("b")})
	l0 := LeafHash([]byte("a"))
	l1 := LeafHash([]byte("b"))
	payload := append([]byte{}, l0[:]...)
	payload = append(payload, l1[:]...)
	fake, _ := New([][]byte{payload})
	if inner.Root() == fake.Root() {
		t.Fatal("leaf/interior domain separation broken")
	}
}

// Property: every leaf of a random-size tree verifies; no leaf verifies
// against a different tree's root.
func TestQuickProofSoundness(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		ls := make([][]byte, n)
		for i := range ls {
			ls[i] = []byte(fmt.Sprintf("%d-%d", seed, rng.Int63()))
		}
		tr, err := New(ls)
		if err != nil {
			return false
		}
		i := rng.Intn(n)
		p, err := tr.Prove(i)
		if err != nil || !Verify(tr.Root(), ls[i], p) {
			return false
		}
		other, _ := New([][]byte{[]byte("other")})
		return !Verify(other.Root(), ls[i], p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAuditsPerDevice(t *testing.T) {
	// 1e9 devices auditing a 1000-leaf tree: one audit each is far more
	// than enough.
	if got := AuditsPerDevice(1000, 1_000_000_000, 1e-9); got != 1 {
		t.Errorf("AuditsPerDevice huge fleet = %d, want 1", got)
	}
	// 10 devices auditing 1000 leaves down to 1e-6 takes many audits each.
	got := AuditsPerDevice(1000, 10, 1e-6)
	if got < 100 {
		t.Errorf("AuditsPerDevice(1000,10,1e-6) = %d, want >= 100", got)
	}
	// Escape probability check: (1-1/n)^(k*devices) <= pMax.
	n, dev, pMax := 1000, int64(10), 1e-6
	k := AuditsPerDevice(n, dev, pMax)
	escape := 1.0
	for i := 0; i < k*int(dev); i++ {
		escape *= 1 - 1.0/float64(n)
	}
	if escape > pMax {
		t.Errorf("escape probability %g > pMax %g with k=%d", escape, pMax, k)
	}
	// Degenerate inputs.
	if AuditsPerDevice(1, 10, 0.5) != 1 || AuditsPerDevice(10, 0, 0.5) != 1 {
		t.Error("degenerate inputs should return 1")
	}
}

func TestProofBytes(t *testing.T) {
	tr, _ := New(leaves(16))
	p, _ := tr.Prove(0)
	if p.Bytes() != 8+4*HashSize {
		t.Errorf("Bytes() = %d, want %d", p.Bytes(), 8+4*HashSize)
	}
}

func BenchmarkBuild1024(b *testing.B) {
	ls := leaves(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(ls); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProveVerify(b *testing.B) {
	ls := leaves(1024)
	tr, _ := New(ls)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := tr.Prove(i % 1024)
		if !Verify(tr.Root(), ls[i%1024], p) {
			b.Fatal("verify failed")
		}
	}
}
