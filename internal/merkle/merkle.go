// Package merkle implements the Merkle hash trees Arboretum uses for the
// device registry (Section 5.1) and for auditing the aggregator's
// intermediate results (Section 5.3): the aggregator commits to the result of
// every step in a tree, and each participant device challenges a few random
// leaves and verifies inclusion proofs, so that an incorrect step is caught
// with probability at least 1 − pMax.
package merkle

import (
	"crypto/sha256"
	"errors"
	"math"

	"arboretum/internal/hashing"
)

// HashSize is the size of a node hash in bytes.
const HashSize = sha256.Size

// Hash is a node digest.
type Hash [HashSize]byte

// Domain-separation prefixes prevent leaf/interior second-preimage attacks.
const (
	leafPrefix     = 0x00
	interiorPrefix = 0x01
)

// Tree is an immutable Merkle tree over a fixed set of leaves.
type Tree struct {
	leaves []Hash
	levels [][]Hash // levels[0] = leaf hashes, last level has length 1
}

// LeafHash computes the domain-separated hash of a leaf payload.
func LeafHash(data []byte) Hash {
	h := sha256.New()
	hashing.Write(h, []byte{leafPrefix}, data)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

func interiorHash(l, r Hash) Hash {
	h := sha256.New()
	hashing.Write(h, []byte{interiorPrefix}, l[:], r[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// New builds a tree over the given leaf payloads. It returns an error for an
// empty leaf set. An odd node at any level is paired with itself, the
// standard padding used by certificate-transparency-style trees.
func New(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, errors.New("merkle: empty leaf set")
	}
	level := make([]Hash, len(leaves))
	for i, l := range leaves {
		level[i] = LeafHash(l)
	}
	t := &Tree{leaves: level, levels: [][]Hash{level}}
	for len(level) > 1 {
		next := make([]Hash, (len(level)+1)/2)
		for i := range next {
			l := level[2*i]
			r := l
			if 2*i+1 < len(level) {
				r = level[2*i+1]
			}
			next[i] = interiorHash(l, r)
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() Hash { return t.levels[len(t.levels)-1][0] }

// Size returns the number of leaves.
func (t *Tree) Size() int { return len(t.leaves) }

// Proof is an inclusion proof for one leaf.
type Proof struct {
	Index    int    // leaf position
	Siblings []Hash // bottom-up sibling hashes
}

// Bytes returns the serialized size of the proof, used by the cost model.
func (p *Proof) Bytes() int { return 8 + len(p.Siblings)*HashSize }

// Prove returns the inclusion proof for leaf i.
func (t *Tree) Prove(i int) (*Proof, error) {
	if i < 0 || i >= len(t.leaves) {
		return nil, errors.New("merkle: leaf index out of range")
	}
	p := &Proof{Index: i}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := idx ^ 1
		if sib >= len(level) {
			sib = idx // odd node paired with itself
		}
		p.Siblings = append(p.Siblings, level[sib])
		idx >>= 1
	}
	return p, nil
}

// Verify checks that the payload is the leaf at p.Index under root.
func Verify(root Hash, payload []byte, p *Proof) bool {
	if p == nil || p.Index < 0 {
		return false
	}
	h := LeafHash(payload)
	idx := p.Index
	for _, sib := range p.Siblings {
		if idx&1 == 0 {
			h = interiorHash(h, sib)
		} else {
			h = interiorHash(sib, h)
		}
		idx >>= 1
	}
	return h == root
}

// AuditsPerDevice returns how many random leaves each of nDevices auditors
// must check so that a single incorrect leaf among nLeaves escapes all audits
// with probability at most pMax (Section 5.3). Each audit hits the bad leaf
// with probability 1/nLeaves, so the escape probability after k total audits
// is (1 − 1/nLeaves)^(k·nDevices) ≤ pMax.
func AuditsPerDevice(nLeaves int, nDevices int64, pMax float64) int {
	if nLeaves <= 1 || nDevices <= 0 || pMax >= 1 {
		return 1
	}
	perAudit := math.Log1p(-1.0 / float64(nLeaves)) // log(1 - 1/n) < 0
	needed := math.Log(pMax) / perAudit             // total audits required
	per := int(math.Ceil(needed / float64(nDevices)))
	if per < 1 {
		per = 1
	}
	return per
}
