// Package mechanism implements the differential-privacy mechanisms Arboretum
// plans around (Section 2.1): the Laplace mechanism for numerical queries,
// the exponential mechanism for categorical queries — in both the textbook
// exponentiation form and the Gumbel-noise form of Figure 4 — top-k
// selection, and the secrecy-of-the-sample amplification bound.
//
// Samplers work in the Q30.16 fixed-point arithmetic of internal/fixed,
// matching the paper's MP-SPDZ sfix programs (Section 6): base-2
// exponentials per Ilvento, and tails clipped to the representable range
// (which is what adds the small δ the paper mentions).
package mechanism

import (
	crand "crypto/rand"
	"errors"
	"fmt"
	"math"
	"math/big"
	//arblint:ignore randsource simulation/test sampler only; deployments draw noise via CryptoRand
	"math/rand"

	"arboretum/internal/fixed"
)

// Rand is the randomness source for the samplers. Deterministic seeding is
// used by tests and the simulation runtime; a deployment would draw from the
// committee's joint randomness.
type Rand interface {
	// Uniform returns a uniform value in (0, 1) as fixed point, never 0.
	Uniform() fixed.Fixed
	// Intn returns a uniform integer in [0, n).
	Intn(n int) int
}

// mathRand adapts math/rand; the MPC committee's joint coin replaces this in
// a deployment.
//
//arblint:ignore randsource adapter for the deliberately deterministic simulation stream
type mathRand struct{ r *rand.Rand }

// NewRand returns a seeded randomness source for tests and the simulation
// runtime, where bit-identical replay across runs and worker counts is the
// contract (docs/CONCURRENCY.md). Deployments draw noise via CryptoRand.
//
//arblint:ignore randsource deterministic seeding is the simulation replay contract
func NewRand(seed int64) Rand { return &mathRand{r: rand.New(rand.NewSource(seed))} }

func (m *mathRand) Uniform() fixed.Fixed {
	for {
		f := fixed.FromFloat(m.r.Float64())
		if f > 0 {
			return f
		}
	}
}

func (m *mathRand) Intn(n int) int { return m.r.Intn(n) }

// CryptoRand returns a Rand drawing from crypto/rand — the sampler a real
// deployment must use for committee noise, where a predictable stream voids
// the DP guarantee (the runtime selects it via Config.SecureNoise). It
// panics on system entropy failure: the condition is unrecoverable, and
// continuing with degraded noise would silently spend the privacy budget on
// no protection.
func CryptoRand() Rand { return cryptoRand{} }

type cryptoRand struct{}

func (cryptoRand) Uniform() fixed.Fixed {
	bound := big.NewInt(int64(fixed.One))
	for {
		v, err := crand.Int(crand.Reader, bound)
		if err != nil {
			panic(fmt.Sprintf("mechanism: system entropy failure: %v", err))
		}
		if f := fixed.Fixed(v.Int64()); f > 0 {
			return f
		}
	}
}

func (cryptoRand) Intn(n int) int {
	v, err := crand.Int(crand.Reader, big.NewInt(int64(n)))
	if err != nil {
		panic(fmt.Sprintf("mechanism: system entropy failure: %v", err))
	}
	return int(v.Int64())
}

// Laplace draws Lap(scale) noise: the paper's laplace(s/ε) for a sensitivity-s
// sum (Section 2.1). Sampled by inverse CDF in fixed point.
func Laplace(rng Rand, scale fixed.Fixed) fixed.Fixed {
	if scale <= 0 {
		return 0
	}
	// u uniform in (0,1); x = -scale * sign(u-1/2) * ln(1 - 2|u - 1/2|).
	u := rng.Uniform()
	half := fixed.One >> 1
	d := u.Sub(fixed.Fixed(half))
	neg := d < 0
	if neg {
		d = d.Neg()
	}
	inner := fixed.One.Sub(d.Add(d))
	if inner <= 0 {
		inner = 1 // clip to the smallest representable positive value
	}
	x := fixed.Ln(inner).Mul(scale).Neg()
	if neg {
		x = x.Neg()
	}
	return x
}

// Gumbel draws Gumbel(scale) noise: −scale · ln(−ln u). Used by the em
// variant on the right of Figure 4 (noise 2·sens/ε per score).
func Gumbel(rng Rand, scale fixed.Fixed) fixed.Fixed {
	if scale <= 0 {
		return 0
	}
	u := rng.Uniform()
	l := fixed.Ln(u).Neg() // −ln u > 0
	if l <= 0 {
		l = 1
	}
	return fixed.Ln(l).Mul(scale).Neg()
}

// EMVariant selects one of the two instantiations of the em operator
// (Figure 4); the planner tries both and scores each.
type EMVariant int

const (
	// EMExponentiate is the textbook CDF-inversion form (Figure 4, left):
	// exponentiate scores, draw r in [0, Σ), return the bracketing index.
	EMExponentiate EMVariant = iota
	// EMGumbel adds Gumbel noise to every score and returns the argmax
	// (Figure 4, right).
	EMGumbel
)

func (v EMVariant) String() string {
	switch v {
	case EMExponentiate:
		return "exponentiate"
	case EMGumbel:
		return "gumbel"
	default:
		return fmt.Sprintf("EMVariant(%d)", int(v))
	}
}

// normalizationBits is the paper's L = max(s) − 11 window ("16 bits"): scores
// further than this below the maximum round to probability zero, which is
// what introduces the δ term.
const normalizationBits = 11

// Exponential runs the exponential mechanism over integer quality scores with
// the given sensitivity and ε, using the requested variant. It returns the
// selected index.
func Exponential(rng Rand, scores []int64, sensitivity int64, epsilon float64, v EMVariant) (int, error) {
	if len(scores) == 0 {
		return 0, errors.New("mechanism: empty score vector")
	}
	if sensitivity <= 0 || epsilon <= 0 {
		return 0, fmt.Errorf("mechanism: sensitivity %d and epsilon %g must be positive", sensitivity, epsilon)
	}
	switch v {
	case EMExponentiate:
		return emExponentiate(rng, scores, sensitivity, epsilon)
	case EMGumbel:
		return emGumbel(rng, scores, sensitivity, epsilon)
	default:
		return 0, fmt.Errorf("mechanism: unknown variant %v", v)
	}
}

// emExponentiate mirrors Figure 4 (left): normalize to [max−L, max], weight
// w_i = exp((s_i − L)·ε/(2·sens)), draw r ∈ [0, Σw), return the bracket.
func emExponentiate(rng Rand, scores []int64, sensitivity int64, epsilon float64) (int, error) {
	maxScore := scores[0]
	for _, s := range scores[1:] {
		if s > maxScore {
			maxScore = s
		}
	}
	low := maxScore - normalizationBits*2*sensitivity // scores below contribute ~0
	epsFix := fixed.FromFloat(epsilon)
	denom := fixed.FromInt(2 * sensitivity)
	weights := make([]fixed.Fixed, len(scores))
	var total fixed.Fixed
	for i, s := range scores {
		if s < low {
			weights[i] = 0
			continue
		}
		exponent := fixed.FromInt(s - low).Mul(epsFix).Div(denom)
		w := fixed.Exp(exponent)
		weights[i] = w
		total = total.Add(w)
	}
	if total <= 0 {
		return 0, errors.New("mechanism: all weights underflowed")
	}
	r := rng.Uniform().Mul(total)
	var cum fixed.Fixed
	for i, w := range weights {
		cum = cum.Add(w)
		if r < cum {
			return i, nil
		}
	}
	return len(scores) - 1, nil
}

// emGumbel mirrors Figure 4 (right): s_i + Gumbel(2·sens/ε), return argmax.
func emGumbel(rng Rand, scores []int64, sensitivity int64, epsilon float64) (int, error) {
	scale := fixed.FromFloat(2 * float64(sensitivity) / epsilon)
	best := 0
	var bestVal fixed.Fixed
	for i, s := range scores {
		noised := fixed.FromInt(s).Add(Gumbel(rng, scale))
		if i == 0 || noised > bestVal {
			best = i
			bestVal = noised
		}
	}
	return best, nil
}

// TopK returns the k indices with the highest Gumbel-noised scores
// (Durfee-Rogers pay-what-you-get top-k, the paper's topK query). Per
// Section 2.1, noising once and releasing the k best costs (√k·ε, 0)-DP;
// noising k times costs (k·ε, 0)-DP — the OneShot flag selects which.
func TopK(rng Rand, scores []int64, k int, sensitivity int64, epsilon float64, oneShot bool) ([]int, error) {
	if k <= 0 || k > len(scores) {
		return nil, fmt.Errorf("mechanism: k=%d out of range (1..%d)", k, len(scores))
	}
	if sensitivity <= 0 || epsilon <= 0 {
		return nil, errors.New("mechanism: sensitivity and epsilon must be positive")
	}
	scale := fixed.FromFloat(2 * float64(sensitivity) / epsilon)
	type noised struct {
		idx int
		val fixed.Fixed
	}
	ns := make([]noised, len(scores))
	for i, s := range scores {
		ns[i] = noised{idx: i, val: fixed.FromInt(s).Add(Gumbel(rng, scale))}
	}
	if !oneShot {
		// Peeling: re-noise after each selection (k independent draws).
		out := make([]int, 0, k)
		taken := make(map[int]bool, k)
		for round := 0; round < k; round++ {
			best := -1
			var bestVal fixed.Fixed
			for i, s := range scores {
				if taken[i] {
					continue
				}
				v := fixed.FromInt(s).Add(Gumbel(rng, scale))
				if best == -1 || v > bestVal {
					best, bestVal = i, v
				}
			}
			taken[best] = true
			out = append(out, best)
		}
		return out, nil
	}
	// One-shot: sort by the single noised draw, take k best.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].val > ns[j-1].val; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ns[i].idx
	}
	return out, nil
}

// AmplifyBySampling returns the effective ε after running an (ε, 0)-DP query
// on a φ-sample with secrecy of the sample (Section 2.1):
// ε' = ln(1 + φ(e^ε − 1)).
func AmplifyBySampling(epsilon, phi float64) (float64, error) {
	if phi <= 0 || phi > 1 {
		return 0, fmt.Errorf("mechanism: sampling rate %g out of (0,1]", phi)
	}
	if epsilon <= 0 {
		return 0, errors.New("mechanism: epsilon must be positive")
	}
	return math.Log1p(phi * (math.Expm1(epsilon))), nil
}

// SampleBins implements the bin protocol from Section 6: given b bins and a
// target sample size fraction x/b, the committee draws a starting bin j and
// decrypts only bins j..j+x−1 (mod b). Devices independently place their
// input in a uniform bin via DeviceBin.
type SampleBins struct {
	B int // total bins in a ciphertext
	X int // bins sampled
	J int // committee's secret starting bin
}

// NewSampleBins draws the committee's secret window start.
func NewSampleBins(rng Rand, b, x int) (*SampleBins, error) {
	if b <= 0 || x <= 0 || x > b {
		return nil, fmt.Errorf("mechanism: invalid bins b=%d x=%d", b, x)
	}
	return &SampleBins{B: b, X: x, J: rng.Intn(b)}, nil
}

// DeviceBin returns the uniform bin a device places its contribution in.
func (s *SampleBins) DeviceBin(rng Rand) int { return rng.Intn(s.B) }

// Included reports whether a bin falls inside the sampled window.
func (s *SampleBins) Included(bin int) bool {
	d := bin - s.J
	if d < 0 {
		d += s.B
	}
	return d < s.X
}

// Rate returns the effective sampling probability x/b.
func (s *SampleBins) Rate() float64 { return float64(s.X) / float64(s.B) }
