package mechanism

import (
	"testing"

	"arboretum/internal/fixed"
)

// TestCryptoRandUniform checks the production sampler's contract: values in
// (0, 1) as fixed point, never zero.
func TestCryptoRandUniform(t *testing.T) {
	rng := CryptoRand()
	for i := 0; i < 200; i++ {
		u := rng.Uniform()
		if u <= 0 || u >= fixed.One {
			t.Fatalf("Uniform() = %v, want in (0, %v)", u, fixed.One)
		}
	}
}

func TestCryptoRandIntn(t *testing.T) {
	rng := CryptoRand()
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := rng.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("Intn(5) returned a single value over 200 draws: %v", seen)
	}
}

// TestCryptoRandDrivesSamplers checks the secure source plugs into the
// mechanisms end to end.
func TestCryptoRandDrivesSamplers(t *testing.T) {
	rng := CryptoRand()
	if _, err := Exponential(rng, []int64{1, 5, 2}, 1, 1.0, EMGumbel); err != nil {
		t.Fatalf("Exponential with CryptoRand: %v", err)
	}
	if _, err := TopK(rng, []int64{3, 1, 4, 1, 5}, 2, 1, 1.0, true); err != nil {
		t.Fatalf("TopK with CryptoRand: %v", err)
	}
	nonzero := false
	for i := 0; i < 32 && !nonzero; i++ {
		nonzero = Laplace(rng, fixed.One) != 0
	}
	if !nonzero {
		t.Fatal("Laplace with CryptoRand returned 0 in 32 draws")
	}
}
