package mechanism

import (
	"math"
	"testing"

	"arboretum/internal/fixed"
)

func TestLaplaceMoments(t *testing.T) {
	rng := NewRand(1)
	scale := fixed.FromFloat(2.0)
	const n = 20000
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := Laplace(rng, scale).Float()
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n // E|Lap(b)| = b
	if math.Abs(mean) > 0.1 {
		t.Errorf("Laplace mean = %g, want ~0", mean)
	}
	if math.Abs(meanAbs-2.0) > 0.15 {
		t.Errorf("Laplace E|x| = %g, want ~2", meanAbs)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	rng := NewRand(1)
	if got := Laplace(rng, 0); got != 0 {
		t.Errorf("Laplace(0) = %v", got)
	}
	if got := Laplace(rng, fixed.FromInt(-1)); got != 0 {
		t.Errorf("Laplace(-1) = %v", got)
	}
}

func TestGumbelMoments(t *testing.T) {
	rng := NewRand(2)
	scale := fixed.FromFloat(1.0)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Gumbel(rng, scale).Float()
	}
	mean := sum / n
	const gamma = 0.5772156649 // E[Gumbel(1)] = Euler–Mascheroni
	if math.Abs(mean-gamma) > 0.1 {
		t.Errorf("Gumbel mean = %g, want ~%g", mean, gamma)
	}
}

// The exponential mechanism must overwhelmingly pick the clear winner when
// the score gap is large relative to 2·sens/ε.
func TestExponentialPicksWinner(t *testing.T) {
	scores := []int64{10, 20, 500, 30}
	for _, v := range []EMVariant{EMExponentiate, EMGumbel} {
		rng := NewRand(3)
		wins := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			idx, err := Exponential(rng, scores, 1, 1.0, v)
			if err != nil {
				t.Fatal(err)
			}
			if idx == 2 {
				wins++
			}
		}
		if wins < trials*9/10 {
			t.Errorf("%v: winner chosen %d/%d times", v, wins, trials)
		}
	}
}

// With tiny ε the choice must be close to uniform (privacy dominates).
func TestExponentialSmallEpsilonNearUniform(t *testing.T) {
	scores := []int64{0, 1, 2, 3}
	for _, v := range []EMVariant{EMExponentiate, EMGumbel} {
		rng := NewRand(4)
		counts := make([]int, 4)
		const trials = 4000
		for i := 0; i < trials; i++ {
			idx, err := Exponential(rng, scores, 1, 0.001, v)
			if err != nil {
				t.Fatal(err)
			}
			counts[idx]++
		}
		for i, c := range counts {
			if c < trials/8 {
				t.Errorf("%v: category %d chosen only %d/%d times", v, i, c, trials)
			}
		}
	}
}

// The two instantiations of em are distributionally equivalent: for a fixed
// input their selection frequencies should agree within sampling error.
func TestEMVariantsAgree(t *testing.T) {
	scores := []int64{100, 105, 95}
	const trials = 5000
	freq := func(v EMVariant, seed int64) []float64 {
		rng := NewRand(seed)
		counts := make([]float64, len(scores))
		for i := 0; i < trials; i++ {
			idx, err := Exponential(rng, scores, 1, 0.5, v)
			if err != nil {
				t.Fatal(err)
			}
			counts[idx]++
		}
		for i := range counts {
			counts[i] /= trials
		}
		return counts
	}
	fe := freq(EMExponentiate, 5)
	fg := freq(EMGumbel, 6)
	for i := range scores {
		if math.Abs(fe[i]-fg[i]) > 0.05 {
			t.Errorf("category %d: exponentiate %g vs gumbel %g", i, fe[i], fg[i])
		}
	}
}

func TestExponentialErrors(t *testing.T) {
	rng := NewRand(1)
	if _, err := Exponential(rng, nil, 1, 1, EMGumbel); err == nil {
		t.Error("empty scores accepted")
	}
	if _, err := Exponential(rng, []int64{1}, 0, 1, EMGumbel); err == nil {
		t.Error("zero sensitivity accepted")
	}
	if _, err := Exponential(rng, []int64{1}, 1, 0, EMGumbel); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := Exponential(rng, []int64{1}, 1, 1, EMVariant(99)); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestEMVariantString(t *testing.T) {
	if EMExponentiate.String() != "exponentiate" || EMGumbel.String() != "gumbel" {
		t.Error("EMVariant names wrong")
	}
	if EMVariant(9).String() == "" {
		t.Error("unknown variant String empty")
	}
}

func TestTopK(t *testing.T) {
	scores := []int64{1000, 10, 900, 20, 800}
	for _, oneShot := range []bool{true, false} {
		rng := NewRand(7)
		hits := 0
		const trials = 100
		for i := 0; i < trials; i++ {
			got, err := TopK(rng, scores, 3, 1, 2.0, oneShot)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 3 {
				t.Fatalf("TopK returned %d items", len(got))
			}
			want := map[int]bool{0: true, 2: true, 4: true}
			ok := true
			for _, idx := range got {
				if !want[idx] {
					ok = false
				}
			}
			if ok {
				hits++
			}
		}
		if hits < trials*8/10 {
			t.Errorf("oneShot=%v: correct top-3 %d/%d times", oneShot, hits, trials)
		}
	}
}

func TestTopKNoDuplicates(t *testing.T) {
	rng := NewRand(8)
	scores := []int64{5, 5, 5, 5, 5}
	for i := 0; i < 50; i++ {
		got, err := TopK(rng, scores, 4, 1, 1.0, false)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, idx := range got {
			if seen[idx] {
				t.Fatalf("duplicate index %d in %v", idx, got)
			}
			seen[idx] = true
		}
	}
}

func TestTopKErrors(t *testing.T) {
	rng := NewRand(1)
	if _, err := TopK(rng, []int64{1, 2}, 3, 1, 1, true); err == nil {
		t.Error("k > len accepted")
	}
	if _, err := TopK(rng, []int64{1, 2}, 0, 1, 1, true); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := TopK(rng, []int64{1, 2}, 1, 0, 1, true); err == nil {
		t.Error("zero sensitivity accepted")
	}
}

func TestAmplifyBySampling(t *testing.T) {
	// ε' = ln(1 + φ(e^ε − 1)); for ε ≤ 1 and small φ, ε' ≈ φ·ε·(e−1)... the
	// paper's approximation is ε' ≲ 2φ/ε form; check exact formula instead.
	got, err := AmplifyBySampling(1.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log1p(0.01 * (math.E - 1))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AmplifyBySampling = %g, want %g", got, want)
	}
	// Amplification always strengthens: ε' < ε for φ < 1.
	if got >= 1.0 {
		t.Errorf("amplified ε %g not smaller than 1.0", got)
	}
	// φ = 1 is a no-op.
	same, _ := AmplifyBySampling(0.7, 1.0)
	if math.Abs(same-0.7) > 1e-12 {
		t.Errorf("φ=1 changed ε: %g", same)
	}
}

func TestAmplifyErrors(t *testing.T) {
	if _, err := AmplifyBySampling(1, 0); err == nil {
		t.Error("φ=0 accepted")
	}
	if _, err := AmplifyBySampling(1, 1.5); err == nil {
		t.Error("φ>1 accepted")
	}
	if _, err := AmplifyBySampling(0, 0.5); err == nil {
		t.Error("ε=0 accepted")
	}
}

func TestSampleBins(t *testing.T) {
	rng := NewRand(9)
	sb, err := NewSampleBins(rng, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r := sb.Rate(); r != 0.5 {
		t.Errorf("Rate() = %g", r)
	}
	// Exactly X bins are included.
	count := 0
	for b := 0; b < sb.B; b++ {
		if sb.Included(b) {
			count++
		}
	}
	if count != sb.X {
		t.Errorf("included %d bins, want %d", count, sb.X)
	}
	// The window wraps correctly.
	if !sb.Included(sb.J) {
		t.Error("window start not included")
	}
	if sb.Included((sb.J + sb.X) % sb.B) {
		t.Error("bin just past window included")
	}
}

func TestSampleBinsDeviceUniform(t *testing.T) {
	rng := NewRand(10)
	sb, _ := NewSampleBins(rng, 4, 2)
	counts := make([]int, 4)
	const trials = 8000
	for i := 0; i < trials; i++ {
		counts[sb.DeviceBin(rng)]++
	}
	for b, c := range counts {
		if c < trials/4-trials/20 || c > trials/4+trials/20 {
			t.Errorf("bin %d chosen %d/%d times, want ~%d", b, c, trials, trials/4)
		}
	}
}

func TestSampleBinsErrors(t *testing.T) {
	rng := NewRand(1)
	if _, err := NewSampleBins(rng, 0, 1); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := NewSampleBins(rng, 4, 5); err == nil {
		t.Error("x>b accepted")
	}
	if _, err := NewSampleBins(rng, 4, 0); err == nil {
		t.Error("x=0 accepted")
	}
}

func BenchmarkLaplace(b *testing.B) {
	rng := NewRand(1)
	scale := fixed.FromFloat(1.5)
	for i := 0; i < b.N; i++ {
		_ = Laplace(rng, scale)
	}
}

func BenchmarkExponentialGumbel1024(b *testing.B) {
	rng := NewRand(1)
	scores := make([]int64, 1024)
	for i := range scores {
		scores[i] = int64(i % 37)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exponential(rng, scores, 1, 1.0, EMGumbel); err != nil {
			b.Fatal(err)
		}
	}
}

// The exponential mechanism's selection probabilities must match the theory:
// P[i] ∝ exp(ε·s_i / (2·Δ)). Check the empirical distribution against the
// exact one with a chi-squared-style bound.
func TestExponentialDistributionMatchesTheory(t *testing.T) {
	scores := []int64{0, 4, 8, 12}
	const (
		eps    = 0.5
		sens   = 1
		trials = 20000
	)
	// Exact distribution.
	want := make([]float64, len(scores))
	var z float64
	for i, s := range scores {
		want[i] = math.Exp(eps * float64(s) / (2 * sens))
		z += want[i]
	}
	for i := range want {
		want[i] /= z
	}
	for _, v := range []EMVariant{EMExponentiate, EMGumbel} {
		rng := NewRand(11)
		counts := make([]float64, len(scores))
		for i := 0; i < trials; i++ {
			idx, err := Exponential(rng, scores, sens, eps, v)
			if err != nil {
				t.Fatal(err)
			}
			counts[idx]++
		}
		for i := range counts {
			got := counts[i] / trials
			// Sampling error at 20k trials is ≈ 0.01; allow 3σ plus the
			// fixed-point quantization slack.
			if math.Abs(got-want[i]) > 0.02 {
				t.Errorf("%v: P[%d] = %.3f, theory %.3f", v, i, got, want[i])
			}
		}
	}
}

// Laplace tail probabilities: P[|X| > t·b] = e^{-t} for Lap(b).
func TestLaplaceTails(t *testing.T) {
	rng := NewRand(12)
	scale := fixed.FromFloat(1.0)
	const trials = 30000
	exceed2, exceed4 := 0, 0
	for i := 0; i < trials; i++ {
		x := Laplace(rng, scale).Float()
		if math.Abs(x) > 2 {
			exceed2++
		}
		if math.Abs(x) > 4 {
			exceed4++
		}
	}
	p2 := float64(exceed2) / trials
	p4 := float64(exceed4) / trials
	if math.Abs(p2-math.Exp(-2)) > 0.02 {
		t.Errorf("P[|X|>2b] = %.4f, theory %.4f", p2, math.Exp(-2))
	}
	if math.Abs(p4-math.Exp(-4)) > 0.01 {
		t.Errorf("P[|X|>4b] = %.4f, theory %.4f", p4, math.Exp(-4))
	}
}
