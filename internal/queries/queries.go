// Package queries contains the ten differentially private queries of the
// paper's evaluation (Table 2), written in Arboretum's query language: six
// new queries (top1, topK, gap, auction, hypotest, secrecy — the first five
// use the exponential mechanism) and four adapted from earlier systems
// (median from Böhler & Kerschbaum, cms from Honeycrisp, bayes and k-medians
// from Orchard). Queries are formulated as if all the data existed in a
// central place (Section 4.1); the planner handles distribution and
// encryption.
package queries

import (
	"fmt"

	"arboretum/internal/lang"
	"arboretum/internal/types"
)

// Query is one evaluation query with its deployment parameters.
type Query struct {
	Name       string
	Action     string // Table 2's "Action" column
	From       string // provenance
	Source     string
	Categories int64 // C: the db row width (Section 7.1's settings)
	K          int64 // topK's k
	ElemRange  types.Range
}

// Program parses the query source (panics only on programming errors in
// this package, which the tests rule out).
func (q Query) Program() *lang.Program { return lang.MustParse(q.Source) }

// Lines returns the formatted line count reported in Table 2.
func (q Query) Lines() int { return lang.LineCount(q.Program()) }

// Epsilon used throughout the evaluation.
const Epsilon = 0.1

// Top1 selects the most frequent item with the exponential mechanism
// (the running example of Figure 3).
var Top1 = Query{
	Name: "top1", Action: "Most frequent item", From: "Dwork & Roth [31]",
	Categories: 1 << 15, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `aggr = sum(db);
result = em(aggr, 0.1);
output(result);`,
}

// TopK returns the k most frequent items (Durfee & Rogers).
var TopK = Query{
	Name: "topK", Action: "Top-K selection", From: "Durfee & Rogers [29]",
	Categories: 1 << 15, K: 5, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `aggr = sum(db);
best = topk(aggr, 5, 0.1);
for i = 0 to 4 do
  output(best[i]);
endfor;`,
}

// Gap runs the exponential mechanism and additionally releases the noisy
// gap between the best and the runner-up (free gap estimates, Ding et al.).
var Gap = Query{
	Name: "gap", Action: "Exp. mechanism with gap", From: "Ding et al. [28]",
	Categories: 1 << 15, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `aggr = sum(db);
winner = em(aggr, 0.1);
best = max(aggr);
second = max(aggr);
g = laplace(clip(best - second, 0, 1024), 0.1);
output(winner);
output(declassify(g));`,
}

// Auction prices an unbounded auction (McSherry & Talwar): each participant
// one-hot encodes its bid bucket; revenue at price p is p times the number
// of bids at or above p; the mechanism selects a near-optimal price.
var Auction = Query{
	Name: "auction", Action: "Unbounded auction", From: "McSherry & Talwar [45]",
	Categories: 1 << 15, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `bids = sum(db);
n = len(bids);
atleast[n - 1] = bids[n - 1];
for i = 0 to n - 2 do
  atleast[n - 2 - i] = atleast[n - 1 - i] + bids[n - 2 - i];
endfor;
for p = 0 to n - 1 do
  revenue[p] = p * atleast[p];
endfor;
price = em(revenue, 0.1);
output(price);`,
}

// HypoTest privately tests a simple hypothesis on a single proportion
// (Canonne et al.): is the noised count above the threshold?
var HypoTest = Query{
	Name: "hypotest", Action: "Hypothesis testing", From: "Canonne et al. [20]",
	Categories: 1, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `aggr = sum(db);
count = laplace(aggr[0], 0.1);
c = declassify(count);
threshold = 500000;
reject = 0;
if c > threshold then
  reject = 1;
endif;
accept = 1 - reject;
statistic = c - threshold;
output(reject);
output(accept);
output(statistic);`,
}

// Secrecy samples ~1% of the participants with secrecy of the sample and
// answers a counting query on the sample, amplifying the guarantee.
var Secrecy = Query{
	Name: "secrecy", Action: "Secrecy of sample", From: "Balle et al. [9]",
	Categories: 1, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `sampleUniform(0.01);
aggr = sum(db);
count = laplace(aggr[0], 1.0);
c = declassify(count);
scaled = c * 100;
low = scaled - 2000;
high = scaled + 2000;
inrange = 0;
if low < high then
  inrange = 1;
endif;
output(scaled);
output(low);
output(high);
output(inrange);`,
}

// Median computes a differentially private median over a one-hot-encoded
// value domain (our variant of Böhler & Kerschbaum; Section 7's note: the
// implementation uses one-hot encoding and differs from [14] in details).
// Utility of bucket b is −|rank(b) − N/2|; the exponential mechanism picks a
// bucket with near-median rank.
var Median = Query{
	Name: "median", Action: "Median", From: "Böhler & Kerschbaum [14]",
	Categories: 1 << 15, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `hist = sum(db);
n = len(hist);
rank[0] = hist[0];
for i = 1 to n - 1 do
  rank[i] = rank[i - 1] + hist[i];
endfor;
total = rank[n - 1];
half = total / 2;
for i = 0 to n - 1 do
  dev[i] = rank[i] - half;
  mag[i] = abs(dev[i]);
  util[i] = 0 - mag[i];
  score[i] = clip(util[i], -1073741824, 0);
endfor;
for i = 0 to n - 1 do
  shifted[i] = score[i] + 1073741824;
endfor;
m = em(shifted, 0.1);
output(m);`,
}

// CMS is Honeycrisp's count-mean-sketch query: sum a sketch of device
// values and release the noised sketch row.
var CMS = Query{
	Name: "cms", Action: "Count-mean sketch", From: "Honeycrisp [53]",
	Categories: 1, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `sketch = sum(db);
noised = laplace(sketch[0], 0.1);
c = declassify(noised);
output(c);
output(c + 0);`,
}

// Bayes is Orchard's naive-Bayes query: per-class, per-feature counts (115
// categories as in the paper), each noised and released.
var Bayes = Query{
	Name: "bayes", Action: "Naive Bayes", From: "Orchard [54]",
	Categories: 115, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `counts = sum(db);
n = len(counts);
for i = 0 to n - 1 do
  noised[i] = laplace(counts[i], 0.1);
endfor;
for i = 0 to n - 1 do
  released[i] = declassify(noised[i]);
endfor;
norm = released[0];
for i = 1 to n - 1 do
  norm = norm + released[i];
endfor;
output(norm);
for i = 0 to n - 1 do
  output(released[i]);
endfor;`,
}

// KMedians is Orchard's k-medians step: per-cluster sums and counts, noised,
// with new medians computed from the released values (C = 10 clusters).
var KMedians = Query{
	Name: "k-medians", Action: "K-Medians", From: "Orchard [54]",
	Categories: 10, ElemRange: types.Range{Lo: 0, Hi: 1},
	Source: `assign = sum(db);
n = len(assign);
for i = 0 to n - 1 do
  size[i] = laplace(assign[i], 0.1);
endfor;
for i = 0 to n - 1 do
  pub[i] = declassify(size[i]);
endfor;
for i = 0 to n - 1 do
  weight[i] = pub[i] * 2;
  center[i] = weight[i] / 2;
  shift[i] = center[i] + 1;
  adj[i] = shift[i] - 1;
endfor;
total = adj[0];
for i = 1 to n - 1 do
  total = total + adj[i];
endfor;
for i = 0 to n - 1 do
  output(adj[i]);
endfor;
output(total);`,
}

// All lists the evaluation queries in Table 2's order.
var All = []Query{Top1, TopK, Gap, Auction, HypoTest, Secrecy, Median, CMS, Bayes, KMedians}

// ByName finds a query.
func ByName(name string) (Query, error) {
	for _, q := range All {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("queries: unknown query %q", name)
}

// QuantileSource builds a query selecting the bucket at the num/den quantile
// of a one-hot-encoded value domain — the paper notes the median query "can
// be easily extended to support quantiles". The median is QuantileSource(1, 2).
func QuantileSource(num, den int64) (string, error) {
	if den <= 0 || num <= 0 || num >= den {
		return "", fmt.Errorf("queries: quantile %d/%d out of (0, 1)", num, den)
	}
	return fmt.Sprintf(`hist = sum(db);
n = len(hist);
rank[0] = hist[0];
for i = 1 to n - 1 do
  rank[i] = rank[i - 1] + hist[i];
endfor;
total = rank[n - 1];
target = total * %d / %d;
for i = 0 to n - 1 do
  dev[i] = rank[i] - target;
  mag[i] = abs(dev[i]);
  util[i] = 0 - mag[i];
endfor;
q = em(util, 0.1);
output(q);`, num, den), nil
}
