package queries

import (
	"testing"

	"arboretum/internal/lang"
	"arboretum/internal/privacy"
	"arboretum/internal/types"
)

// Every evaluation query must parse, type-check, and certify as
// differentially private at its deployment parameters.
func TestAllQueriesCertify(t *testing.T) {
	for _, q := range All {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			prog, err := lang.Parse(q.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			info, err := types.Infer(prog, types.DBInfo{
				N: 1 << 20, Width: q.Categories, ElemRange: q.ElemRange,
			})
			if err != nil {
				t.Fatalf("types: %v", err)
			}
			cert, err := privacy.Certify(prog, info, privacy.DefaultOptions)
			if err != nil {
				t.Fatalf("certify: %v", err)
			}
			if cert.Epsilon <= 0 {
				t.Errorf("ε = %g, want positive", cert.Epsilon)
			}
		})
	}
}

func TestQueriesAreConcise(t *testing.T) {
	// Table 2's point: queries are formulated concisely (3–39 lines in the
	// paper). Our concrete syntax differs slightly, so allow a little slack.
	for _, q := range All {
		lines := q.Lines()
		if lines < 2 || lines > 60 {
			t.Errorf("%s: %d lines, outside the concise range", q.Name, lines)
		}
	}
	if Top1.Lines() != 3 {
		t.Errorf("top1 = %d lines, Table 2 says 3", Top1.Lines())
	}
}

func TestTableTwoOrderingAndNames(t *testing.T) {
	want := []string{"top1", "topK", "gap", "auction", "hypotest", "secrecy",
		"median", "cms", "bayes", "k-medians"}
	if len(All) != len(want) {
		t.Fatalf("got %d queries, want %d", len(All), len(want))
	}
	for i, q := range All {
		if q.Name != want[i] {
			t.Errorf("query %d = %s, want %s", i, q.Name, want[i])
		}
		if q.Action == "" || q.From == "" {
			t.Errorf("%s missing Table 2 metadata", q.Name)
		}
	}
}

func TestCategoriesMatchEvaluationSetup(t *testing.T) {
	// Section 7.1: C=1 for hypotest and cms, C=10 for k-medians, C=115 for
	// bayes, C=2^15 for the others.
	cases := map[string]int64{
		"hypotest": 1, "cms": 1, "secrecy": 1,
		"k-medians": 10, "bayes": 115,
		"top1": 1 << 15, "topK": 1 << 15, "gap": 1 << 15,
		"auction": 1 << 15, "median": 1 << 15,
	}
	for name, c := range cases {
		q, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if q.Categories != c {
			t.Errorf("%s categories = %d, want %d", name, q.Categories, c)
		}
	}
	if TopK.K != 5 {
		t.Errorf("topK k = %d, want 5 (Section 7.1)", TopK.K)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown query accepted")
	}
}

// The exponential-mechanism queries must actually contain em/topk calls and
// the Laplace ones laplace calls — the evaluation's grouping depends on it.
func TestMechanismGrouping(t *testing.T) {
	hasCall := func(q Query, fn string) bool {
		found := false
		lang.WalkExprs(q.Program().Stmts, func(e lang.Expr) {
			if c, ok := e.(*lang.CallExpr); ok && c.Func == fn {
				found = true
			}
		})
		return found
	}
	for _, name := range []string{"top1", "gap", "auction", "median"} {
		q, _ := ByName(name)
		if !hasCall(q, "em") {
			t.Errorf("%s should use em", name)
		}
	}
	if q, _ := ByName("topK"); !hasCall(q, "topk") {
		t.Error("topK should use topk")
	}
	for _, name := range []string{"hypotest", "secrecy", "cms", "bayes", "k-medians"} {
		q, _ := ByName(name)
		if !hasCall(q, "laplace") {
			t.Errorf("%s should use laplace", name)
		}
	}
	if q, _ := ByName("secrecy"); !hasCall(q, "sampleUniform") {
		t.Error("secrecy should use sampleUniform")
	}
}

func TestQuantileSourceCertifies(t *testing.T) {
	for _, frac := range [][2]int64{{1, 2}, {1, 4}, {3, 4}, {9, 10}} {
		src, err := QuantileSource(frac[0], frac[1])
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("%d/%d: parse: %v", frac[0], frac[1], err)
		}
		info, err := types.Infer(prog, types.DBInfo{
			N: 1 << 20, Width: 64, ElemRange: types.Range{Lo: 0, Hi: 1},
		})
		if err != nil {
			t.Fatalf("%d/%d: types: %v", frac[0], frac[1], err)
		}
		if _, err := privacy.Certify(prog, info, privacy.DefaultOptions); err != nil {
			t.Fatalf("%d/%d: certify: %v", frac[0], frac[1], err)
		}
	}
}

func TestQuantileSourceRejectsBadFractions(t *testing.T) {
	for _, frac := range [][2]int64{{0, 2}, {2, 2}, {3, 2}, {1, 0}, {-1, 4}} {
		if _, err := QuantileSource(frac[0], frac[1]); err == nil {
			t.Errorf("QuantileSource(%d, %d) accepted", frac[0], frac[1])
		}
	}
}
