// Package wal is the shared write-ahead-log machinery behind Arboretum's
// durable state: checksummed JSON-lines records, fsync-before-apply
// ordering, exclusive advisory locking, and crash-aware replay. It was
// factored out of internal/ledger so the privacy-budget ledger and the
// gateway's job journal (internal/service) enforce one set of durability
// rules instead of two drifting copies:
//
//   - every record is one JSON line carrying a sequence number and a
//     checksum over all its other fields; Append assigns both, writes the
//     line, fsyncs, and only then applies the record to in-memory state —
//     the disk is never behind memory;
//   - Open takes an exclusive flock (ErrLocked when another live process
//     holds the file) and replays the log through the same apply function;
//   - replay truncates a *torn tail* — an unterminated or undecodable final
//     line, the signature of a crash mid-append — but refuses the whole log
//     with ErrCorrupt for any decodable, newline-terminated record that
//     fails its checksum, sequence, or apply, even on the final line: a
//     torn append cannot include the trailing newline, so such a record was
//     durably written whole and silently dropping it would rewrite history;
//   - simulated process deaths are injectable into the append path through
//     an internal/faults plan (stage 0 dies before any byte is written,
//     stage 1 after a torn half-write; both close the descriptor the way a
//     real death would, releasing the lock so a "restarted" process can
//     reopen), poisoning the log with ErrCrashed until reopened.
//
// The record type is supplied by the caller via the Record interface; the
// checksum algorithm is the caller's too (it is part of each log's on-disk
// format), so ledger files written before this package existed replay
// byte-for-byte.
package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"

	"arboretum/internal/faults"
)

// Typed failure modes, shared by every log built on this package.
var (
	// ErrCorrupt means replay found a durably written record that is
	// syntactically broken, fails its checksum, or cannot be applied. The
	// log refuses to guess at state.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrCrashed is the simulated process death injected by a faults plan:
	// the log is poisoned exactly as if the process had died mid-append and
	// must be reopened (replayed) before further use.
	ErrCrashed = errors.New("wal: simulated crash during append")
	// ErrLocked means another live process holds the log file: Open refuses
	// rather than let two writers interleave conflicting sequence numbers.
	ErrLocked = errors.New("wal: log file held by another process")
)

// Record is one log line. Implementations are pointer types whose fields
// round-trip through encoding/json as a single line (strings with newlines
// are fine — JSON escapes them).
type Record interface {
	// WALSeq and SetWALSeq expose the record's sequence number; Append
	// assigns it (strictly increasing from 1) and replay validates it.
	WALSeq() uint64
	SetWALSeq(uint64)
	// WALSum and SetWALSum expose the stored checksum field.
	WALSum() string
	SetWALSum(string)
	// WALChecksum computes the canonical checksum over every field
	// including the sequence number and excluding the stored sum. It is
	// part of the log's on-disk format.
	WALChecksum() string
	// WALDesc is a short human label ("commit alice/j1") used in injected
	// crash notes.
	WALDesc() string
}

// Options configures Open.
type Options struct {
	// Crash injects simulated process deaths into the append path
	// (coordinates: (record sequence, stage)); nil injects nothing.
	Crash *faults.Plan
	// CrashKind addresses Crash's decisions and the fired-fault log (e.g.
	// faults.WALCrash for the budget ledger).
	CrashKind faults.Kind
}

// Log is a durable record log. Create one with Open. All methods are safe
// for concurrent use; Append serializes writers, and the apply callback
// runs under the log's mutex.
type Log[R Record] struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	seq    uint64
	size   int64 // bytes of the durable intact prefix
	newRec func() R
	apply  func(R) error
	crash  *faults.Plan
	kind   faults.Kind
	dead   bool // poisoned by a simulated crash or apply failure
}

// Open opens (creating if absent) the log at path, takes an exclusive
// advisory lock on it (ErrLocked when another process holds it), and
// replays it through apply. newRec allocates an empty record for each
// replayed line. A torn final line — unterminated or not decodable as a
// record — is truncated; any durably written record that fails validation
// fails with ErrCorrupt.
func Open[R Record](path string, newRec func() R, apply func(R) error, opts Options) (*Log[R], error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	// One writer per log: two processes replaying and appending to the same
	// file would interleave conflicting sequence numbers. The lock rides
	// the descriptor, so the kernel releases it on any process death.
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, path)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	l := &Log[R]{
		path:   path,
		newRec: newRec,
		apply:  apply,
		crash:  opts.Crash,
		kind:   opts.CrashKind,
	}
	good, err := l.replay(data)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail (if any) so the next append starts on a line
	// boundary, then position at the end of the intact prefix.
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.f = f
	l.size = int64(good)
	return l, nil
}

// replay applies every intact record of data and returns the byte length of
// the intact prefix. The final record may be torn (crash mid-append); any
// earlier bad record — or a whole, decodable final record that fails its
// checksum — is ErrCorrupt.
func (l *Log[R]) replay(data []byte) (int, error) {
	good := 0
	for len(data) > 0 {
		line := data
		rest := []byte(nil)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, rest = data[:i], data[i+1:]
		} else {
			// No terminating newline: the append died mid-line.
			return good, nil
		}
		r := l.newRec()
		if err := json.Unmarshal(line, r); err != nil {
			if len(rest) == 0 {
				return good, nil // undecodable final line: a torn append
			}
			return 0, fmt.Errorf("%w: record %d (byte offset %d)", ErrCorrupt, l.seq+1, good)
		}
		if r.WALSum() != r.WALChecksum() {
			// A decodable, newline-terminated record was written whole — a
			// torn append can't include the trailing newline. A checksum
			// failure here is corruption of a durable record, even on the
			// final line: refuse to guess.
			return 0, fmt.Errorf("%w: record %d (byte offset %d): checksum mismatch", ErrCorrupt, l.seq+1, good)
		}
		if r.WALSeq() != l.seq+1 {
			if len(rest) == 0 {
				return good, nil // a replayed-but-stale tail record
			}
			return 0, fmt.Errorf("%w: sequence %d after %d", ErrCorrupt, r.WALSeq(), l.seq)
		}
		if err := l.apply(r); err != nil {
			return 0, fmt.Errorf("%w: record %d: %v", ErrCorrupt, r.WALSeq(), err)
		}
		l.seq = r.WALSeq()
		good += len(line) + 1
		data = rest
	}
	return good, nil
}

// Append assigns the next sequence number and the checksum, writes the
// record durably (fsync), and only then applies it, so the disk is never
// behind memory. The two crash stages straddle the write: stage 0 dies
// before any byte reaches the file, stage 1 after a torn half-record —
// both poison the log like a real process death.
func (l *Log[R]) Append(r R) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return ErrCrashed
	}
	r.SetWALSeq(l.seq + 1)
	r.SetWALSum(r.WALChecksum())
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("wal: marshal: %w", err)
	}
	line = append(line, '\n')
	seq := r.WALSeq()
	if l.crash.Fires(l.kind, int(seq), 0) {
		l.die(r, 0, "crashed before WAL append")
		return fmt.Errorf("%w (before record %d)", ErrCrashed, seq)
	}
	if l.crash.Fires(l.kind, int(seq), 1) {
		// Torn write: half the line reaches the disk, no newline, no fsync.
		if _, err := l.f.Write(line[:len(line)/2]); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
		l.die(r, 1, "crashed mid-append (torn record)")
		return fmt.Errorf("%w (torn record %d)", ErrCrashed, seq)
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if err := l.apply(r); err != nil {
		// The record is durable but inconsistent with memory — a programming
		// error, not an I/O race; poison the log rather than diverge.
		l.dead = true
		return fmt.Errorf("wal: apply: %w", err)
	}
	l.seq = seq
	l.size += int64(len(line))
	return nil
}

// die records the injected crash and poisons the log until reopened. The
// descriptor is closed the way the kernel would on a real process death —
// in particular releasing the advisory lock so the "restarted" process can
// Open the file.
func (l *Log[R]) die(r R, stage int, note string) {
	l.dead = true
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.crash.Record(faults.Fault{
		Kind: l.kind, Idx: []int{int(r.WALSeq()), stage},
		Note: fmt.Sprintf("%s: %s", r.WALDesc(), note),
	})
}

// Rewrite atomically replaces the log's contents with recs, renumbered
// from 1 (compaction). The records are written to a temporary file in the
// same directory, fsynced, and renamed over the log, so a crash during
// Rewrite leaves either the old log or the new one — never a mix. The
// caller's apply state must already reflect recs; Rewrite does not re-apply
// them.
func (l *Log[R]) Rewrite(recs []R) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return ErrCrashed
	}
	tmpPath := l.path + ".rewrite"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rewrite: %w", err)
	}
	// Lock the replacement before it becomes visible under the log's path:
	// the flock rides the open descriptor across the rename, so there is no
	// window where another process could grab the new inode.
	if err := syscall.Flock(int(tmp.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rewrite lock: %w", err)
	}
	var size int64
	for i, r := range recs {
		r.SetWALSeq(uint64(i) + 1)
		r.SetWALSum(r.WALChecksum())
		line, err := json.Marshal(r)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("wal: rewrite marshal: %w", err)
		}
		line = append(line, '\n')
		if _, err := tmp.Write(line); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("wal: rewrite: %w", err)
		}
		size += int64(len(line))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: rewrite fsync: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: rewrite rename: %w", err)
	}
	// Make the rename itself durable.
	if dir, err := os.Open(dirOf(l.path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = tmp
	l.seq = uint64(len(recs))
	l.size = size
	return nil
}

// dirOf returns the directory containing path ("." when path is bare).
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "."
}

// Kill poisons the log and closes its descriptor without flushing —
// simulating a process death outside the append path (the service's
// "daemon" fault kind). Every append already fsynced, so no durable state
// is lost; the lock is released so a restarted process can reopen.
func (l *Log[R]) Kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dead = true
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}

// Path returns the log file path.
func (l *Log[R]) Path() string { return l.path }

// Seq returns the sequence number of the last durable record.
func (l *Log[R]) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Size returns the byte length of the durable intact log.
func (l *Log[R]) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes and closes the log file. The log must not be used after.
func (l *Log[R]) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	l.dead = true
	return err
}
