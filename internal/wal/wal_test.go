package wal

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arboretum/internal/faults"
)

// trec is the test record: a key/value increment whose checksum binds
// (seq, k, v).
type trec struct {
	Seq uint64 `json:"seq"`
	K   string `json:"k"`
	V   int    `json:"v"`
	Sum string `json:"sum"`
}

func (r *trec) WALSeq() uint64     { return r.Seq }
func (r *trec) SetWALSeq(s uint64) { r.Seq = s }
func (r *trec) WALSum() string     { return r.Sum }
func (r *trec) SetWALSum(s string) { r.Sum = s }
func (r *trec) WALDesc() string    { return "trec " + r.K }
func (r *trec) WALChecksum() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d|%s|%d", r.Seq, r.K, r.V)))
	return hex.EncodeToString(h[:8])
}

// openT opens a test log folding records into m.
func openT(t *testing.T, path string, m map[string]int, opts Options) (*Log[*trec], error) {
	t.Helper()
	return Open(path, func() *trec { return new(trec) }, func(r *trec) error {
		if r.K == "poison" {
			return errors.New("poison record")
		}
		m[r.K] += r.V
		return nil
	}, opts)
}

// line renders one record the way Append would, with seq and a valid
// checksum.
func line(seq uint64, k string, v int) string {
	r := &trec{Seq: seq, K: k, V: v}
	r.Sum = r.WALChecksum()
	return fmt.Sprintf(`{"seq":%d,"k":%q,"v":%d,"sum":%q}`+"\n", r.Seq, r.K, r.V, r.Sum)
}

func TestAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	m := map[string]int{}
	l, err := openT(t, path, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"a", "b", "a"} {
		if err := l.Append(&trec{K: k, V: i + 1}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if l.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", l.Seq())
	}
	fi, _ := os.Stat(path)
	if l.Size() != fi.Size() {
		t.Fatalf("Size() = %d, file is %d", l.Size(), fi.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := map[string]int{}
	l2, err := openT(t, path, m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if m2["a"] != 4 || m2["b"] != 2 || l2.Seq() != 3 {
		t.Fatalf("replay state = %v seq %d, want a=4 b=2 seq=3", m2, l2.Seq())
	}
}

// TestTornTail: the three torn-tail shapes — an unterminated final line, an
// undecodable terminated final line, and a stale-sequence final record — are
// all truncated on open; the intact prefix survives.
func TestTornTail(t *testing.T) {
	prefix := line(1, "a", 1) + line(2, "b", 2)
	for name, tail := range map[string]string{
		"unterminated": `{"seq":3,"k":"c","v`,
		"undecodable":  "garbage that is not json\n",
		"stale-seq":    line(2, "b", 2), // a replayed duplicate of record 2
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "t.wal")
			if err := os.WriteFile(path, []byte(prefix+tail), 0o644); err != nil {
				t.Fatal(err)
			}
			m := map[string]int{}
			l, err := openT(t, path, m, Options{})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer l.Close()
			if m["a"] != 1 || m["b"] != 2 || l.Seq() != 2 {
				t.Fatalf("state = %v seq %d, want intact prefix only", m, l.Seq())
			}
			if l.Size() != int64(len(prefix)) {
				t.Fatalf("size = %d, want %d (tail truncated)", l.Size(), len(prefix))
			}
			// The next append lands cleanly on the truncated boundary.
			if err := l.Append(&trec{K: "c", V: 3}); err != nil {
				t.Fatal(err)
			}
			if l.Seq() != 3 {
				t.Fatalf("seq after append = %d, want 3", l.Seq())
			}
		})
	}
}

// TestCorruptRefused: a decodable, newline-terminated record that fails its
// checksum — interior or final — or an interior sequence break refuses the
// whole log with ErrCorrupt. Truncating it would silently rewrite durable
// history.
func TestCorruptRefused(t *testing.T) {
	for name, content := range map[string]string{
		"interior-checksum": line(1, "a", 1) + strings.Replace(line(2, "b", 2), `"v":2`, `"v":9`, 1) + line(3, "c", 3),
		"final-checksum":    line(1, "a", 1) + strings.Replace(line(2, "b", 2), `"v":2`, `"v":9`, 1),
		"interior-seq-skip": line(1, "a", 1) + line(3, "c", 3) + line(4, "d", 4),
		"apply-failure":     line(1, "a", 1) + line(2, "poison", 0),
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "t.wal")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := openT(t, path, map[string]int{}, Options{})
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, err := openT(t, path, map[string]int{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openT(t, path, map[string]int{}, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open = %v, want ErrLocked", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := openT(t, path, map[string]int{}, Options{})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	l2.Close()
}

// TestCrashStages: stage 0 dies before any byte (the record is simply
// absent after reopen); stage 1 dies after a torn half-write (truncated on
// reopen). Both poison the log and release the flock like a real death.
func TestCrashStages(t *testing.T) {
	for stage := 0; stage <= 1; stage++ {
		t.Run(fmt.Sprintf("stage%d", stage), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "t.wal")
			plan := faults.New(1).ForceAt(faults.WALCrash, 2, stage)
			m := map[string]int{}
			l, err := openT(t, path, m, Options{Crash: plan, CrashKind: faults.WALCrash})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append(&trec{K: "a", V: 1}); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(&trec{K: "b", V: 2}); !errors.Is(err, ErrCrashed) {
				t.Fatalf("append at crash point = %v, want ErrCrashed", err)
			}
			// Poisoned until reopened; the in-memory fold never saw b.
			if err := l.Append(&trec{K: "c", V: 3}); !errors.Is(err, ErrCrashed) {
				t.Fatalf("append after crash = %v, want ErrCrashed", err)
			}
			if m["b"] != 0 {
				t.Fatalf("crashed record applied: %v", m)
			}
			if n := len(plan.Fired()); n != 1 {
				t.Fatalf("fired log has %d entries, want 1", n)
			}
			// The "restarted process" can take the lock and sees only record 1
			// (stage 1's torn half-line is truncated).
			m2 := map[string]int{}
			l2, err := openT(t, path, m2, Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer l2.Close()
			if m2["a"] != 1 || m2["b"] != 0 || l2.Seq() != 1 {
				t.Fatalf("recovered state = %v seq %d, want only record 1", m2, l2.Seq())
			}
		})
	}
}

// TestRewrite: compaction atomically replaces the log, renumbered from 1;
// appends continue from the new sequence and a reopen sees exactly the
// rewritten history.
func TestRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	m := map[string]int{}
	l, err := openT(t, path, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append(&trec{K: "a", V: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Collapse the four increments into one record.
	if err := l.Rewrite([]*trec{{K: "a", V: 4}}); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 1 {
		t.Fatalf("seq after rewrite = %d, want 1", l.Seq())
	}
	if err := l.Append(&trec{K: "b", V: 7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".rewrite"); !os.IsNotExist(err) {
		t.Fatalf("rewrite temp file left behind: %v", err)
	}
	m2 := map[string]int{}
	l2, err := openT(t, path, m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if m2["a"] != 4 || m2["b"] != 7 || l2.Seq() != 2 {
		t.Fatalf("replay after rewrite = %v seq %d, want a=4 b=7 seq=2", m2, l2.Seq())
	}
}

// TestApplyFailurePoisons: a record that is durable but cannot be applied is
// a programming error — the append reports it, the log poisons (memory and
// disk would otherwise diverge), and a reopen refuses with ErrCorrupt.
func TestApplyFailurePoisons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, err := openT(t, path, map[string]int{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&trec{K: "poison"}); err == nil || errors.Is(err, ErrCrashed) {
		t.Fatalf("append of unapplyable record = %v, want apply error", err)
	}
	if err := l.Append(&trec{K: "a", V: 1}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after poison = %v, want ErrCrashed", err)
	}
	l.Kill()
	if _, err := openT(t, path, map[string]int{}, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reopen = %v, want ErrCorrupt (durable unapplyable record)", err)
	}
}

// FuzzReplay feeds arbitrary bytes to Open: it must never panic, and
// whenever it accepts the file the log must keep working (append, close,
// reopen to the same sequence).
func FuzzReplay(f *testing.F) {
	f.Add([]byte(line(1, "a", 1) + line(2, "b", 2)))
	f.Add([]byte(line(1, "a", 1) + `{"seq":2,"k":"b"`))
	f.Add([]byte("garbage\n"))
	f.Add([]byte{})
	f.Add([]byte("{}\n{}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m := map[string]int{}
		l, err := openT(t, path, m, Options{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open failed with untyped error: %v", err)
			}
			return
		}
		seq := l.Seq()
		if err := l.Append(&trec{K: "z", V: 1}); err != nil {
			t.Fatalf("append on accepted log: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := openT(t, path, map[string]int{}, Options{})
		if err != nil {
			t.Fatalf("reopen of accepted log: %v", err)
		}
		defer l2.Close()
		if l2.Seq() != seq+1 {
			t.Fatalf("reopen seq = %d, want %d", l2.Seq(), seq+1)
		}
	})
}
