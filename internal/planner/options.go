package planner

import (
	"fmt"

	"arboretum/internal/costmodel"
	"arboretum/internal/plan"
)

// option is one way to realize a step: a choice label plus the vignettes it
// contributes to the plan.
type option struct {
	choiceKey string
	choiceVal string
	vignettes []plan.Vignette
}

// searchSpace fixes the enumerable parameters of the design space. The
// defaults give each operator several implementations and several
// parallelization widths — the "millions of different ways" of Section 1
// once the per-step choices multiply out.
type searchSpace struct {
	n       int64
	model   *costmodel.Model
	fanouts []int64 // sum/argmax tree fanouts
	slices  []int64 // values handled per committee
}

func defaultSpace(n int64, m *costmodel.Model) searchSpace {
	return searchSpace{
		n:       n,
		model:   m,
		fanouts: []int64{2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128},
		slices:  []int64{1, 4, 16, 64, 256, 1024, 4096},
	}
}

// ctsFor returns the ciphertexts needed for a c-wide value vector.
func (sp searchSpace) ctsFor(c int64) int64 {
	slots := int64(sp.model.Slots)
	cts := (c + slots - 1) / slots
	if cts < 1 {
		cts = 1
	}
	return cts
}

// distDiv distributes a total evenly over parts (0 stays 0).
func distDiv(total, parts int64) int64 {
	if total <= 0 || parts <= 0 {
		return 0
	}
	return (total + parts - 1) / parts
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	d := (a + b - 1) / b
	if d < 1 {
		d = 1
	}
	return d
}

// optionsFor enumerates the candidate implementations of one step
// (Section 4.3's program transformations), keeping only options whose
// committee vignettes are "bite-size" (Section 3.4: query plans break into
// small pieces that are each within the means of a small device — no single
// committee assignment may outweigh serving on the key-generation
// committee, the heaviest mandatory role).
func (sp searchSpace) optionsFor(st step) []option {
	opts := sp.rawOptionsFor(st)
	filtered := opts[:0]
	for _, o := range opts {
		if sp.biteSize(o) {
			filtered = append(filtered, o)
		}
	}
	if len(filtered) == 0 {
		return opts // never drop a step entirely; limits still apply
	}
	return filtered
}

// biteSize checks every committee vignette of the option against the
// key-generation committee's member load.
func (sp searchSpace) biteSize(o option) bool {
	kg := keygenVignette()
	kgCPU, kgBytes := kg.MemberCost(sp.model, 40)
	for i := range o.vignettes {
		v := &o.vignettes[i]
		if v.Loc != plan.Committee {
			continue
		}
		cpu, bytes := v.MemberCost(sp.model, 40)
		if cpu > kgCPU || bytes > kgBytes {
			return false
		}
	}
	return true
}

func (sp searchSpace) rawOptionsFor(st step) []option {
	switch st.kind {
	case stepInput:
		return sp.inputOptions(st)
	case stepSample:
		return sp.sampleOptions()
	case stepSum:
		return sp.sumOptions(st)
	case stepCompute:
		return sp.computeOptions(st)
	case stepNoise:
		return sp.noiseOptions(st)
	case stepEM:
		return sp.emOptions(st, 1, "em")
	case stepTopK:
		return sp.topKOptions(st)
	case stepMaxSel:
		return sp.maxSelOptions(st)
	case stepOutput:
		return sp.outputOptions()
	default:
		return nil
	}
}

// inputOptions: every device encrypts its one-hot row and proves it well
// formed; the aggregator verifies every proof and serves audit challenges
// (Sections 5.3). This step has a single implementation — it is the
// mandatory part of every plan (and the reason the red line in Figure 10
// stops when the aggregator's budget cannot even cover ZKP checking).
func (sp searchSpace) inputOptions(st step) []option {
	cts := sp.ctsFor(st.c)
	return []option{{
		choiceKey: "input",
		choiceVal: "onehot+zkp",
		vignettes: []plan.Vignette{
			{
				Desc: "encrypt input + prove well-formedness", Loc: plan.Device,
				Parallel: true, Count: sp.n, Crypto: plan.CryptoAHE,
				Work: plan.Work{HEEncs: cts, ZKPGens: cts, CtsOut: cts, SigVerifies: 1},
			},
			{
				Desc: "verify input proofs, build audit tree", Loc: plan.Aggregator,
				Count: 1, Crypto: plan.CryptoAHE,
				Work: plan.Work{
					ZKPVerifies: sp.n * cts,
					MerkleOps:   2 * sp.n * cts,
					Audits:      sp.n, // one challenge-response per device
				},
			},
		},
	}}
}

func (sp searchSpace) sampleOptions() []option {
	return []option{{
		choiceKey: "sample",
		choiceVal: "bin-window",
		vignettes: []plan.Vignette{{
			Desc: "sample bin window (secrecy of the sample)", Loc: plan.Committee,
			Role: plan.RoleOps, Count: 1, Crypto: plan.CryptoMPC,
			Work: plan.Work{MPCNoises: 1, Shares: 2},
		}},
	}}
}

// sumOptions: the sum operator (Section 4.3's first example). Either the
// aggregator folds all ciphertexts with a simple loop, or the devices form a
// sum tree of some fanout, trading aggregator work for (small) extra device
// work — the outsourcing lever behind Figure 10.
func (sp searchSpace) sumOptions(st step) []option {
	cts := sp.ctsFor(st.c)
	opts := []option{{
		choiceKey: "sum",
		choiceVal: "aggregator-loop",
		vignettes: []plan.Vignette{{
			Desc: "AHE sum loop over all inputs", Loc: plan.Aggregator,
			Count: 1, Crypto: plan.CryptoAHE,
			Work: plan.Work{HEAdds: sp.n * cts},
		}},
	}}
	for _, phi := range sp.fanouts {
		if phi < 2 {
			continue
		}
		instances := sp.n / (phi - 1)
		if instances < 1 {
			instances = 1
		}
		opts = append(opts, option{
			choiceKey: "sum",
			choiceVal: fmt.Sprintf("device-tree-fanout-%d", phi),
			vignettes: []plan.Vignette{
				{
					Desc: fmt.Sprintf("device sum tree (fanout %d)", phi), Loc: plan.Device,
					Parallel: true, Count: instances, Crypto: plan.CryptoAHE,
					Work: plan.Work{HEAdds: phi * cts, CtsIn: phi * cts, CtsOut: cts},
				},
				{
					Desc: "combine sum-tree roots", Loc: plan.Aggregator,
					Count: 1, Crypto: plan.CryptoAHE,
					Work: plan.Work{HEAdds: phi * cts},
				},
			},
		})
	}
	return opts
}

// computeOptions: per-element computation over a c-vector, either
// homomorphically at the aggregator (comparisons force FHE and are very
// expensive — the asymmetry of Section 3.3) or split across committees.
func (sp searchSpace) computeOptions(st step) []option {
	// st.ops holds TOTAL operation counts for the whole step (loop
	// iterations already folded in by the decomposer).
	var opts []option
	// Additions and plaintext multiplications stay in AHE; comparisons and
	// exponentials force FHE (Section 4.5's rule).
	crypto := plan.CryptoAHE
	if st.ops.cmps+st.ops.exps > 0 {
		crypto = plan.CryptoFHE
	}
	opts = append(opts, option{
		choiceKey: "compute",
		choiceVal: "aggregator-he",
		vignettes: []plan.Vignette{{
			Desc: fmt.Sprintf("homomorphic compute over %d values", st.c), Loc: plan.Aggregator,
			Count: 1, Crypto: crypto,
			Work: plan.Work{
				HEAdds:      st.ops.adds,
				HEMulPlains: st.ops.mults + st.ops.divs,
				HECmps:      st.ops.cmps,
				HEExps:      st.ops.exps,
			},
		}},
	})
	for _, sigma := range sp.slices {
		if sigma > st.c && sigma != sp.slices[0] {
			continue
		}
		count := ceilDiv(st.c, sigma)
		opts = append(opts, option{
			choiceKey: "compute",
			choiceVal: fmt.Sprintf("committee-slice-%d", sigma),
			vignettes: []plan.Vignette{{
				Desc: fmt.Sprintf("MPC compute (%d values per committee)", sigma), Loc: plan.Committee,
				Role: plan.RoleOps, Parallel: count > 1, Count: count, Crypto: plan.CryptoMPC,
				Work: plan.Work{
					MPCMults: distDiv(st.ops.mults+st.ops.divs, count),
					MPCCmps:  distDiv(st.ops.cmps, count),
					MPCExps:  distDiv(st.ops.exps, count),
					Shares:   sigma,
				},
			}},
		})
	}
	return opts
}

// noiseOptions: Laplace noising plus decryption by committees (the Orchard
// pattern): committees jointly decrypt the aggregated ciphertext slice and
// release the noised values.
func (sp searchSpace) noiseOptions(st step) []option {
	var opts []option
	for _, sigma := range sp.slices {
		if sigma > st.c && sigma != sp.slices[0] {
			continue
		}
		count := ceilDiv(st.c, sigma)
		opts = append(opts, option{
			choiceKey: "noise",
			choiceVal: fmt.Sprintf("committee-slice-%d", sigma),
			vignettes: []plan.Vignette{{
				Desc: fmt.Sprintf("laplace noise + decrypt (%d values per committee)", sigma),
				Loc:  plan.Committee, Role: plan.RoleDecrypt,
				Parallel: count > 1, Count: count, Crypto: plan.CryptoMPC,
				Work: plan.Work{
					MPCNoises:   sigma,
					HEDecShares: sp.ctsFor(sigma),
					Shares:      sigma,
					CtsIn:       sp.ctsFor(sigma),
				},
			}},
		})
	}
	return opts
}

// emOptions: the two instantiations of the exponential mechanism (Figure 4).
// rounds > 1 reuses the machinery for top-k peeling.
func (sp searchSpace) emOptions(st step, rounds int64, key string) []option {
	var opts []option
	cts := sp.ctsFor(st.c)

	// Variant 1 (Figure 4 right): decrypt sums to shares, add Gumbel noise,
	// tournament argmax across committees.
	for _, sigmaN := range sp.slices {
		if sigmaN > st.c && sigmaN != sp.slices[0] {
			continue
		}
		for _, psi := range sp.fanouts {
			decCount := ceilDiv(st.c, 1024) // decryption slices are coarse
			noiseCount := ceilDiv(st.c, sigmaN)
			treeCount := ceilDiv(st.c, psi-1)
			opts = append(opts, option{
				choiceKey: key,
				choiceVal: fmt.Sprintf("gumbel-noise-%d-tree-%d", sigmaN, psi),
				vignettes: []plan.Vignette{
					{
						Desc: "decrypt aggregate to secret shares", Loc: plan.Committee,
						Role: plan.RoleDecrypt, Parallel: decCount > 1, Count: decCount * rounds,
						Crypto: plan.CryptoMPC,
						Work:   plan.Work{HEDecShares: 1, Shares: 1024, CtsIn: 1},
					},
					{
						Desc: fmt.Sprintf("gumbel noise (%d scores per committee)", sigmaN),
						Loc:  plan.Committee, Role: plan.RoleOps,
						Parallel: noiseCount > 1, Count: noiseCount * rounds, Crypto: plan.CryptoMPC,
						Work: plan.Work{MPCNoises: sigmaN, Shares: sigmaN},
					},
					{
						Desc: fmt.Sprintf("argmax tournament (fanout %d)", psi),
						Loc:  plan.Committee, Role: plan.RoleOps,
						Parallel: treeCount > 1, Count: treeCount * rounds, Crypto: plan.CryptoMPC,
						Work: plan.Work{MPCCmps: psi - 1, MPCMults: 2 * (psi - 1), Shares: psi},
					},
					{
						Desc: "re-randomize inputs for selection round", Loc: plan.Device,
						Parallel: true, Count: sp.n, Crypto: plan.CryptoAHE,
						Work: plan.Work{HEEncs: cts * rounds, ZKPGens: cts * rounds, CtsOut: cts * rounds},
					},
				},
			})
		}
	}

	// Variant 2 (Figure 4 left): exponentiate scores, then CDF selection.
	// The exponentials run either as an FHE circuit at the aggregator or in
	// committee MPCs; the CDF scan's comparisons always run on committees.
	for _, sigma := range sp.slices {
		if sigma > st.c && sigma != sp.slices[0] {
			continue
		}
		scanCount := ceilDiv(st.c, sigma)
		expCommittee := plan.Vignette{
			Desc: fmt.Sprintf("fixed-point exp in MPC (%d scores per committee)", sigma),
			Loc:  plan.Committee, Role: plan.RoleOps,
			Parallel: scanCount > 1, Count: scanCount * rounds, Crypto: plan.CryptoMPC,
			Work: plan.Work{MPCExps: sigma, Shares: sigma},
		}
		expAggregator := plan.Vignette{
			Desc: "FHE exponentiation of all scores", Loc: plan.Aggregator,
			Count: rounds, Crypto: plan.CryptoFHE,
			Work: plan.Work{HEExps: st.c, HEMulPlains: st.c},
		}
		decVig := plan.Vignette{
			Desc: "decrypt aggregate to secret shares", Loc: plan.Committee,
			Role: plan.RoleDecrypt, Parallel: true, Count: ceilDiv(st.c, 1024) * rounds,
			Crypto: plan.CryptoMPC,
			Work:   plan.Work{HEDecShares: 1, Shares: 1024, CtsIn: 1},
		}
		scanVig := plan.Vignette{
			Desc: fmt.Sprintf("CDF scan (%d scores per committee)", sigma),
			Loc:  plan.Committee, Role: plan.RoleOps,
			Parallel: scanCount > 1, Count: scanCount * rounds, Crypto: plan.CryptoMPC,
			Work: plan.Work{MPCCmps: sigma, MPCMults: sigma, Shares: sigma},
		}
		rerand := plan.Vignette{
			Desc: "re-randomize inputs for selection round", Loc: plan.Device,
			Parallel: true, Count: sp.n, Crypto: plan.CryptoAHE,
			Work: plan.Work{HEEncs: cts * rounds, ZKPGens: cts * rounds, CtsOut: cts * rounds},
		}
		opts = append(opts, option{
			choiceKey: key,
			choiceVal: fmt.Sprintf("exponentiate-mpc-slice-%d", sigma),
			vignettes: []plan.Vignette{decVig, expCommittee, scanVig, rerand},
		})
		opts = append(opts, option{
			choiceKey: key,
			choiceVal: fmt.Sprintf("exponentiate-fhe-scan-%d", sigma),
			vignettes: []plan.Vignette{expAggregator, decVig, scanVig, rerand},
		})
	}
	return opts
}

// topKOptions: top-k either peels (k full exponential-mechanism rounds) or
// noises once and runs k tournament passes (Section 2.1's two compositions).
func (sp searchSpace) topKOptions(st step) []option {
	k := st.k
	if k < 1 {
		k = 1
	}
	var opts []option
	// Peeling: k full rounds.
	for _, o := range sp.emOptions(st, k, "topk") {
		o.choiceVal = "peel-" + o.choiceVal
		opts = append(opts, o)
	}
	// One-shot: noise once, then k tournament passes (cheaper, √k·ε).
	for _, psi := range sp.fanouts {
		treeCount := ceilDiv(st.c, psi-1)
		noiseCount := ceilDiv(st.c, 1024)
		opts = append(opts, option{
			choiceKey: "topk",
			choiceVal: fmt.Sprintf("oneshot-tree-%d", psi),
			vignettes: []plan.Vignette{
				{
					Desc: "decrypt aggregate to secret shares", Loc: plan.Committee,
					Role: plan.RoleDecrypt, Parallel: true, Count: ceilDiv(st.c, 1024),
					Crypto: plan.CryptoMPC,
					Work:   plan.Work{HEDecShares: 1, Shares: 1024, CtsIn: 1},
				},
				{
					Desc: "gumbel noise (one-shot)", Loc: plan.Committee, Role: plan.RoleOps,
					Parallel: noiseCount > 1, Count: noiseCount, Crypto: plan.CryptoMPC,
					Work: plan.Work{MPCNoises: 1024, Shares: 1024},
				},
				{
					Desc: fmt.Sprintf("k tournament passes (fanout %d)", psi),
					Loc:  plan.Committee, Role: plan.RoleOps,
					Parallel: treeCount > 1, Count: treeCount * k, Crypto: plan.CryptoMPC,
					Work: plan.Work{MPCCmps: psi - 1, MPCMults: 2 * (psi - 1), Shares: psi},
				},
				{
					Desc: "re-randomize inputs per released winner", Loc: plan.Device,
					Parallel: true, Count: sp.n, Crypto: plan.CryptoAHE,
					Work: plan.Work{
						HEEncs: sp.ctsFor(st.c) * k, ZKPGens: sp.ctsFor(st.c) * k,
						CtsOut: sp.ctsFor(st.c) * k,
					},
				},
			},
		})
	}
	return opts
}

// maxSelOptions: max/argmax over encrypted values — a tournament without
// noise.
func (sp searchSpace) maxSelOptions(st step) []option {
	var opts []option
	for _, psi := range sp.fanouts {
		treeCount := ceilDiv(st.c, psi-1)
		opts = append(opts, option{
			choiceKey: "maxsel",
			choiceVal: fmt.Sprintf("tree-%d", psi),
			vignettes: []plan.Vignette{
				{
					Desc: "decrypt to secret shares", Loc: plan.Committee,
					Role: plan.RoleDecrypt, Parallel: true, Count: ceilDiv(st.c, 1024),
					Crypto: plan.CryptoMPC,
					Work:   plan.Work{HEDecShares: 1, Shares: 1024, CtsIn: 1},
				},
				{
					Desc: fmt.Sprintf("max tournament (fanout %d)", psi),
					Loc:  plan.Committee, Role: plan.RoleOps,
					Parallel: treeCount > 1, Count: treeCount, Crypto: plan.CryptoMPC,
					Work: plan.Work{MPCCmps: psi - 1, MPCMults: 2 * (psi - 1), Shares: psi},
				},
			},
		})
	}
	return opts
}

func (sp searchSpace) outputOptions() []option {
	return []option{{
		choiceKey: "output",
		choiceVal: "committee-reconstruct",
		vignettes: []plan.Vignette{
			{
				Desc: "reconstruct and release result", Loc: plan.Committee,
				Role: plan.RoleOps, Count: 1, Crypto: plan.CryptoMPC,
				Work: plan.Work{Shares: 2, MPCMults: 1},
			},
			{
				Desc: "publish result", Loc: plan.Aggregator, Count: 1,
				Crypto: plan.CryptoNone,
				Work:   plan.Work{SigVerifies: 1},
			},
		},
	}}
}

// keygenVignette is the mandatory first vignette of every plan that uses a
// cryptosystem (Section 4.5: "Whenever a cryptosystem is used for the first
// time, Arboretum inserts a key generation vignette at the beginning of the
// program and assigns it to a committee").
func keygenVignette() plan.Vignette {
	return plan.Vignette{
		Desc: "distributed key generation + budget check", Loc: plan.Committee,
		Role: plan.RoleKeyGen, Count: 1, Crypto: plan.CryptoMPC,
		Work: plan.Work{KeyGens: 1, Shares: 2},
	}
}
