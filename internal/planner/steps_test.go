package planner

import (
	"testing"

	"arboretum/internal/costmodel"
	"arboretum/internal/lang"
	"arboretum/internal/queries"
	"arboretum/internal/types"
)

func decomposeQuery(t *testing.T, q queries.Query) []step {
	t.Helper()
	prog := lang.MustParse(q.Source)
	info, err := types.Infer(prog, types.DBInfo{
		N: 1 << 20, Width: q.Categories, ElemRange: types.Range{Lo: 0, Hi: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := decompose(prog, info)
	if err != nil {
		t.Fatal(err)
	}
	return steps
}

func kinds(steps []step) []stepKind {
	out := make([]stepKind, len(steps))
	for i, s := range steps {
		out[i] = s.kind
	}
	return out
}

func TestDecomposeTop1(t *testing.T) {
	steps := decomposeQuery(t, queries.Top1)
	want := []stepKind{stepInput, stepSum, stepEM, stepOutput}
	got := kinds(steps)
	if len(got) != len(want) {
		t.Fatalf("steps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d = %v, want %v", i, got[i], want[i])
		}
	}
	if steps[2].c != queries.Top1.Categories {
		t.Errorf("em width = %d", steps[2].c)
	}
}

func TestDecomposeSecrecyPlacesSampleAfterInput(t *testing.T) {
	steps := decomposeQuery(t, queries.Secrecy)
	got := kinds(steps)
	if got[0] != stepInput || got[1] != stepSample {
		t.Fatalf("sample must follow input: %v", got)
	}
}

func TestDecomposeTopKCarriesK(t *testing.T) {
	steps := decomposeQuery(t, queries.TopK)
	found := false
	for _, s := range steps {
		if s.kind == stepTopK {
			found = true
			if s.k != 5 {
				t.Errorf("topk k = %d, want 5", s.k)
			}
		}
	}
	if !found {
		t.Fatal("no topk step")
	}
}

func TestDecomposeMedianHasComputeWithComparisons(t *testing.T) {
	steps := decomposeQuery(t, queries.Median)
	var compute *step
	for i := range steps {
		if steps[i].kind == stepCompute && steps[i].ops.cmps > 0 {
			compute = &steps[i]
		}
	}
	if compute == nil {
		t.Fatal("median should have a compute step with comparisons (abs/clip)")
	}
	// abs + clip per element over 2^15 elements.
	if compute.ops.cmps < queries.Median.Categories {
		t.Errorf("compute cmps = %d, want ≥ %d", compute.ops.cmps, queries.Median.Categories)
	}
}

func TestDecomposeBayesNoisesPerElement(t *testing.T) {
	steps := decomposeQuery(t, queries.Bayes)
	for _, s := range steps {
		if s.kind == stepNoise {
			if s.c != 115 {
				t.Errorf("noise width = %d, want 115 (loop-folded)", s.c)
			}
			return
		}
	}
	t.Fatal("no noise step")
}

func TestDecomposeGapHasMaxSelAndNoise(t *testing.T) {
	got := kinds(decomposeQuery(t, queries.Gap))
	haveMax, haveNoise, haveEM := false, false, false
	for _, k := range got {
		switch k {
		case stepMaxSel:
			haveMax = true
		case stepNoise:
			haveNoise = true
		case stepEM:
			haveEM = true
		}
	}
	if !haveMax || !haveNoise || !haveEM {
		t.Fatalf("gap steps missing pieces: %v", got)
	}
}

func TestDecomposeRejectsNoOutput(t *testing.T) {
	prog := lang.MustParse(`aggr = sum(db);`)
	info, err := types.Infer(prog, types.DBInfo{N: 100, Width: 4, ElemRange: types.Range{Hi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decompose(prog, info); err == nil {
		t.Fatal("output-free program decomposed")
	}
}

func TestStepKindStrings(t *testing.T) {
	for k := stepInput; k <= stepOutput; k++ {
		if k.String() == "" {
			t.Errorf("step kind %d unnamed", k)
		}
	}
	if stepKind(99).String() == "" {
		t.Error("unknown step kind unnamed")
	}
}

func TestBiteSizeFilter(t *testing.T) {
	sp := defaultSpace(1<<30, costmodel.Default())
	// A compute step with a huge total comparison count: the coarse slices
	// must be filtered out, the fine ones kept.
	st := step{kind: stepCompute, c: 1 << 15, ops: opTally{cmps: 1 << 16}}
	opts := sp.optionsFor(st)
	if len(opts) == 0 {
		t.Fatal("no options survived")
	}
	for _, o := range opts {
		if !sp.biteSize(o) {
			t.Errorf("non-bite-size option %s survived the filter", o.choiceVal)
		}
	}
}
