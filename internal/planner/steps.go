// Package planner implements Arboretum's query planner (Section 4): it
// takes a certified query, expands each abstract operator into candidate
// concrete implementations (Section 4.3), splits the work into vignettes
// assigned to the aggregator, committees, or devices (Section 4.4), adds
// encryption according to the taint analysis (Section 4.5), scores every
// candidate with the cost model, and returns the best plan under the
// analyst's limits, using branch-and-bound to prune the search (Section 4.6).
//
// The search granularity is the logical step (an operator occurrence or a
// fused block of scalar computation): each step contributes a set of
// candidate (implementation × location × parameter) options, and a candidate
// plan is one choice per step. This is the same design space the paper
// describes — operator instantiations (sum trees of different fanouts, the
// two em variants of Figure 4), placement, and cryptosystem — explored
// mechanically with pruning.
//
// # Thread safety
//
// Plan is safe to call concurrently: every call builds its own scorer and
// search state. Internally the search itself fans out over a worker pool
// (Request.Workers; see internal/parallel) by partitioning the option tree
// into independent subtree tasks that share only an atomic incumbent bound
// and an atomic node counter. The chosen plan is identical at every worker
// count — the shared bound prunes only on strict dominance and the final
// winner comes from an ordered reduction that replays the sequential
// tie-breaking — though Stats.Pruned/PrefixesExplored may vary run to run
// when pruning is enabled with more than one worker.
package planner

import (
	"fmt"

	"arboretum/internal/lang"
	"arboretum/internal/types"
)

// stepKind classifies a logical step.
type stepKind int

const (
	stepInput   stepKind = iota // devices encrypt inputs + prove well-formedness
	stepSample                  // secrecy-of-the-sample bin selection
	stepSum                     // aggregate the database
	stepCompute                 // per-element computation over a C-vector
	stepNoise                   // add Laplace noise to C values and decrypt
	stepEM                      // exponential mechanism over C scores
	stepTopK                    // top-k selection over C scores
	stepMaxSel                  // max/argmax over C encrypted values
	stepOutput                  // publish the result
)

func (k stepKind) String() string {
	switch k {
	case stepInput:
		return "input"
	case stepSample:
		return "sample"
	case stepSum:
		return "sum"
	case stepCompute:
		return "compute"
	case stepNoise:
		return "noise"
	case stepEM:
		return "em"
	case stepTopK:
		return "topk"
	case stepMaxSel:
		return "maxsel"
	case stepOutput:
		return "output"
	default:
		return fmt.Sprintf("step(%d)", int(k))
	}
}

// opTally counts primitive operations in a compute step, per element.
type opTally struct {
	adds, mults, divs, cmps, exps int64
}

func (o opTally) total() int64 { return o.adds + o.mults + o.divs + o.cmps + o.exps }

// step is one logical step of the query with its shape parameters.
type step struct {
	kind stepKind
	desc string
	c    int64   // width: number of values involved
	k    int64   // top-k's k
	ops  opTally // per-element operations (compute steps)
}

// decompose turns a certified program into the logical step sequence the
// search runs over. It recognizes the operator patterns of the evaluation
// queries; unrecognized constructs fold into compute steps conservatively.
func decompose(p *lang.Program, info *types.Info) ([]step, error) {
	d := &decomposer{info: info}
	d.steps = append(d.steps, step{kind: stepInput, desc: "encrypt inputs", c: info.DB.Width})
	if err := d.walk(p.Stmts); err != nil {
		return nil, err
	}
	d.flushCompute()
	if !d.sawOutput {
		return nil, fmt.Errorf("planner: query has no output step")
	}
	// Move the sample step (if any) right after input: sampling shapes how
	// devices upload (Section 6's bin protocol).
	ordered := make([]step, 0, len(d.steps))
	var sample *step
	for i := range d.steps {
		if d.steps[i].kind == stepSample && sample == nil {
			sample = &d.steps[i]
			continue
		}
		ordered = append(ordered, d.steps[i])
	}
	if sample != nil {
		out := make([]step, 0, len(ordered)+1)
		out = append(out, ordered[0], *sample)
		out = append(out, ordered[1:]...)
		ordered = out
	}
	return ordered, nil
}

type decomposer struct {
	info      *types.Info
	steps     []step
	pending   opTally // accumulating scalar compute work
	pendingC  int64
	sawOutput bool
}

func (d *decomposer) flushCompute() {
	if d.pending.total() > 0 {
		c := d.pendingC
		if c < 1 {
			c = 1
		}
		d.steps = append(d.steps, step{kind: stepCompute, desc: "scalar computation", c: c, ops: d.pending})
		d.pending = opTally{}
		d.pendingC = 0
	}
}

func (d *decomposer) widthOf(e lang.Expr) int64 {
	if t, ok := d.info.TypeOf(e); ok && t.Array && t.Len > 0 {
		return t.Len
	}
	return 1
}

func (d *decomposer) walk(stmts []lang.Stmt) error {
	for _, s := range stmts {
		if err := d.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (d *decomposer) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.AssignStmt:
		if mech := d.mechanismOf(st.Value); mech != nil {
			d.flushCompute()
			d.steps = append(d.steps, *mech)
			return nil
		}
		// Plain computation: tally its operations.
		t := opTally{}
		tallyExpr(st.Value, &t)
		if st.Index != nil {
			tallyExpr(st.Index, &t)
		}
		d.pending.adds += t.adds
		d.pending.mults += t.mults
		d.pending.divs += t.divs
		d.pending.cmps += t.cmps
		d.pending.exps += t.exps
		if w := d.widthOf(st.Value); w > d.pendingC {
			d.pendingC = w
		}
		return nil
	case *lang.ExprStmt:
		if call, ok := st.X.(*lang.CallExpr); ok {
			switch call.Func {
			case "output":
				d.flushCompute()
				d.sawOutput = true
				d.steps = append(d.steps, step{kind: stepOutput, desc: "publish result", c: 1})
				return nil
			case "sampleUniform":
				d.flushCompute()
				rate := 0.5
				if f, ok := call.Args[0].(*lang.FloatLit); ok {
					rate = f.Value
				}
				d.steps = append(d.steps, step{
					kind: stepSample,
					desc: fmt.Sprintf("secrecy of the sample (rate %g)", rate),
					c:    1,
				})
				return nil
			}
		}
		if mech := d.mechanismOf(st.X); mech != nil {
			d.flushCompute()
			d.steps = append(d.steps, *mech)
			return nil
		}
		t := opTally{}
		tallyExpr(st.X, &t)
		d.pending.adds += t.adds
		d.pending.mults += t.mults
		return nil
	case *lang.ForStmt:
		// A mechanism or output inside a loop becomes one step per abstract
		// operator occurrence with the loop's width folded in; pure loops
		// fold to compute work.
		iters := d.loopIters(st)
		if containsMechanism(st.Body) || containsCall(st.Body, "output") ||
			containsCall(st.Body, "sampleUniform") {
			d.flushCompute()
			return d.walkScaled(st.Body, iters)
		}
		t := opTally{}
		for _, b := range st.Body {
			tallyStmt(b, &t)
		}
		d.pending.adds += t.adds * iters
		d.pending.mults += t.mults * iters
		d.pending.divs += t.divs * iters
		d.pending.cmps += t.cmps * iters
		d.pending.exps += t.exps * iters
		if iters > d.pendingC {
			d.pendingC = iters
		}
		return nil
	case *lang.IfStmt:
		t := opTally{cmps: 1}
		tallyExpr(st.Cond, &t)
		for _, b := range st.Then {
			tallyStmt(b, &t)
		}
		for _, b := range st.Else {
			tallyStmt(b, &t)
		}
		d.pending.adds += t.adds
		d.pending.mults += t.mults
		d.pending.cmps += t.cmps
		d.pending.exps += t.exps
		return nil
	default:
		return fmt.Errorf("planner: unsupported statement %T", s)
	}
}

// walkScaled handles loop bodies containing mechanisms: each mechanism
// occurrence is emitted once with the loop width folded into c.
func (d *decomposer) walkScaled(stmts []lang.Stmt, iters int64) error {
	for _, s := range stmts {
		if as, ok := s.(*lang.AssignStmt); ok {
			if mech := d.mechanismOf(as.Value); mech != nil {
				m := *mech
				m.c *= iters
				if m.c < 1 {
					m.c = 1
				}
				d.steps = append(d.steps, m)
				continue
			}
		}
		if err := d.stmt(s); err != nil {
			return err
		}
	}
	d.flushCompute()
	return nil
}

func (d *decomposer) loopIters(st *lang.ForStmt) int64 {
	from, okF := d.info.TypeOf(st.From)
	to, okT := d.info.TypeOf(st.To)
	if !okF || !okT {
		return 1
	}
	it := int64(to.Range.Hi-from.Range.Lo) + 1
	if it < 1 {
		return 1
	}
	return it
}

// mechanismOf recognizes an expression that is (or wraps) a mechanism or
// aggregate call and returns the corresponding step.
func (d *decomposer) mechanismOf(e lang.Expr) *step {
	call, ok := e.(*lang.CallExpr)
	if !ok {
		// declassify(em(...)) and similar wrappers.
		if u, isU := e.(*lang.UnaryExpr); isU {
			return d.mechanismOf(u.X)
		}
		return nil
	}
	switch call.Func {
	case "sum":
		if id, isID := call.Args[0].(*lang.Ident); isID && id.Name == "db" {
			return &step{kind: stepSum, desc: "aggregate database", c: d.info.DB.Width}
		}
		return nil
	case "em":
		return &step{kind: stepEM, desc: "exponential mechanism", c: d.widthOf(call.Args[0])}
	case "topk":
		k := int64(1)
		if lit, isLit := call.Args[1].(*lang.IntLit); isLit {
			k = lit.Value
		}
		return &step{kind: stepTopK, desc: fmt.Sprintf("top-%d selection", k), c: d.widthOf(call.Args[0]), k: k}
	case "laplace":
		return &step{kind: stepNoise, desc: "laplace noise + decrypt", c: d.widthOf(call.Args[0])}
	case "max", "argmax":
		return &step{kind: stepMaxSel, desc: call.Func + " selection", c: d.widthOf(call.Args[0])}
	case "declassify":
		return d.mechanismOf(call.Args[0])
	default:
		return nil
	}
}

func containsCall(stmts []lang.Stmt, fn string) bool {
	found := false
	lang.WalkExprs(stmts, func(e lang.Expr) {
		if call, ok := e.(*lang.CallExpr); ok && call.Func == fn {
			found = true
		}
	})
	return found
}

func containsMechanism(stmts []lang.Stmt) bool {
	found := false
	lang.WalkExprs(stmts, func(e lang.Expr) {
		if call, ok := e.(*lang.CallExpr); ok {
			switch call.Func {
			case "em", "topk", "laplace", "max", "argmax", "sum":
				found = true
			}
		}
	})
	return found
}

// tallyStmt counts primitive operations in a statement subtree.
func tallyStmt(s lang.Stmt, t *opTally) {
	switch st := s.(type) {
	case *lang.AssignStmt:
		tallyExpr(st.Value, t)
		if st.Index != nil {
			tallyExpr(st.Index, t)
		}
	case *lang.ExprStmt:
		tallyExpr(st.X, t)
	case *lang.ForStmt:
		inner := opTally{}
		for _, b := range st.Body {
			tallyStmt(b, &inner)
		}
		// Nested loop: scale conservatively by a static bound of the range.
		t.adds += inner.adds
		t.mults += inner.mults
		t.divs += inner.divs
		t.cmps += inner.cmps
		t.exps += inner.exps
	case *lang.IfStmt:
		t.cmps++
		tallyExpr(st.Cond, t)
		for _, b := range st.Then {
			tallyStmt(b, t)
		}
		for _, b := range st.Else {
			tallyStmt(b, t)
		}
	}
}

func tallyExpr(e lang.Expr, t *opTally) {
	switch ex := e.(type) {
	case *lang.BinaryExpr:
		switch ex.Op {
		case lang.ADD, lang.SUB:
			t.adds++
		case lang.MUL:
			t.mults++
		case lang.QUO:
			t.divs++
		case lang.LSS, lang.LEQ, lang.GTR, lang.GEQ, lang.EQL, lang.NEQ:
			t.cmps++
		}
		tallyExpr(ex.X, t)
		tallyExpr(ex.Y, t)
	case *lang.UnaryExpr:
		tallyExpr(ex.X, t)
	case *lang.IndexExpr:
		tallyExpr(ex.X, t)
		tallyExpr(ex.Index, t)
	case *lang.CallExpr:
		switch ex.Func {
		case "exp":
			t.exps++
		case "abs", "clip":
			// Absolute value and clipping need comparisons under encryption.
			t.cmps++
		}
		for _, a := range ex.Args {
			tallyExpr(a, t)
		}
	}
}
