package planner

import (
	"math"

	"arboretum/internal/costmodel"
	"arboretum/internal/plan"
	"arboretum/internal/sortition"
)

// scorer turns vignette lists into six-metric cost vectors (Section 4.6).
// Committee sizes depend on the number of committees, so it memoizes the
// MinCommitteeSize solver per committee count.
type scorer struct {
	n      int64
	model  *costmodel.Model
	size   sortition.SizeParams
	mCache map[int]int
}

func newScorer(n int64, model *costmodel.Model, size sortition.SizeParams) *scorer {
	return &scorer{n: n, model: model, size: size, mCache: map[int]int{}}
}

// clone returns an independent scorer with a fresh memo. The parallel search
// gives each subtree task its own clone because mCache is not synchronized;
// the memoized solver is deterministic, so clones always agree.
func (sc *scorer) clone() *scorer {
	return newScorer(sc.n, sc.model, sc.size)
}

// committeeSize returns the minimum committee size for c committees;
// failures (absurd parameter corners) saturate at the search cap.
func (sc *scorer) committeeSize(c int) int {
	if c < 1 {
		c = 1
	}
	// Bucket the count so the memo stays small and monotone: round up to
	// the next power of two (conservative: more committees need bigger m).
	bucket := 1
	for bucket < c {
		bucket <<= 1
	}
	if m, ok := sc.mCache[bucket]; ok {
		return m
	}
	m, err := sortition.MinCommitteeSize(bucket, sc.size)
	if err != nil {
		m = sc.size.Max
		if m == 0 {
			m = 2048
		}
	}
	sc.mCache[bucket] = m
	return m
}

// breakdown carries the figure-oriented split alongside the vector.
type breakdown struct {
	byRole             map[plan.Role]plan.RoleCost
	baseCPU, baseBytes float64
	deviceExtraCPU     float64
	deviceExtraBytes   float64
	aggOpsCPU          float64
	aggVerifyCPU       float64
	aggForwardBytes    float64
}

// score prices a (possibly partial) vignette list. Partial lists use the
// committee size implied by the committees seen so far, which underestimates
// the final cost — exactly the admissible lower bound branch-and-bound needs.
func (sc *scorer) score(vs []plan.Vignette) (costmodel.Vector, breakdown, int) {
	committees := int64(0)
	for i := range vs {
		committees += vs[i].Committees()
	}
	m := sc.committeeSize(int(committees))

	var v costmodel.Vector
	bd := breakdown{byRole: map[plan.Role]plan.RoleCost{}}
	n := float64(sc.n)

	for i := range vs {
		vig := &vs[i]
		cpu, bytes := vig.MemberCost(sc.model, m)
		switch vig.Loc {
		case plan.Aggregator:
			total := cpu * float64(vig.Count)
			v.AggCPU += total
			verify := float64(vig.Work.ZKPVerifies)*sc.model.ZKPVerify +
				float64(vig.Work.SigVerifies)*sc.model.SigVerify +
				float64(vig.Work.MerkleOps)*sc.model.MerkleHash
			verify *= float64(vig.Count)
			bd.aggVerifyCPU += verify
			bd.aggOpsCPU += total - verify
			sent := bytes * float64(vig.Count)
			// Audit responses and certificates go to every device.
			sent += float64(vig.Work.Audits) * (sc.model.AuditRespBytes + sc.model.CertBytes) * float64(vig.Count)
			v.AggBytes += sent
		case plan.Device:
			frac := float64(vig.Count) / n
			if frac > 1 {
				frac = 1
			}
			v.PartExpCPU += cpu * frac
			v.PartExpBytes += bytes * frac
			if vig.Count >= sc.n {
				// Work every device does (encryption, proofs).
				bd.baseCPU += cpu
				bd.baseBytes += bytes
			} else {
				// Outsourced work only some devices do (sum-tree vertices).
				if cpu > bd.deviceExtraCPU {
					bd.deviceExtraCPU = cpu
				}
				if bytes > bd.deviceExtraBytes {
					bd.deviceExtraBytes = bytes
				}
			}
		case plan.Committee:
			members := float64(vig.Count) * float64(m)
			frac := members / n
			if frac > 1 {
				frac = 1
			}
			v.PartExpCPU += cpu * frac
			v.PartExpBytes += bytes * frac
			rc := bd.byRole[vig.Role]
			// A device serves on at most one committee, so the role's
			// worst case is the most expensive single vignette.
			rc.CPU = math.Max(rc.CPU, cpu)
			rc.Bytes = math.Max(rc.Bytes, bytes)
			rc.Count += vig.Count
			bd.byRole[vig.Role] = rc
			// Committee traffic transits the aggregator's mailbox
			// (Section 5.4), so the aggregator forwards it all.
			fwd := bytes * members
			bd.aggForwardBytes += fwd
			v.AggBytes += fwd
		}
	}

	// Maximum participant cost: every device pays the base; the unlucky one
	// additionally serves on the most expensive committee (or sum-tree
	// vertex, whichever is worse).
	worstCPU, worstBytes := bd.deviceExtraCPU, bd.deviceExtraBytes
	for _, rc := range bd.byRole {
		if rc.CPU > worstCPU {
			worstCPU = rc.CPU
		}
		if rc.Bytes > worstBytes {
			worstBytes = rc.Bytes
		}
	}
	v.PartMaxCPU = bd.baseCPU + worstCPU
	v.PartMaxBytes = bd.baseBytes + worstBytes

	return v, bd, m
}
