package planner

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"arboretum/internal/costmodel"
	"arboretum/internal/parallel"
	"arboretum/internal/plan"
)

// Stats reports what the search did (Figure 9 and the branch-and-bound
// ablation of Section 7.3 read these).
type Stats struct {
	PrefixesExplored int64 // DFS nodes visited ("plan prefixes")
	FullCandidates   int64 // complete plans scored exactly
	Pruned           int64 // prefixes cut by a limit or the incumbent
	Aborted          bool  // hit the node cap with pruning disabled
}

// searchConfig tunes the planner search.
type searchConfig struct {
	goal      costmodel.Metric
	limits    costmodel.Limits
	noBB      bool              // disable branch-and-bound (ablation, Section 7.3)
	nodeCap   int64             // safety net for the ablation (0 = default)
	orderOpts bool              // order options cheapest-first so pruning bites early
	force     map[string]string // pin steps to choice-value prefixes
	workers   int               // search parallelism (0 = parallel.Workers default)
}

const defaultNodeCap = 50_000_000

// betterPlan orders candidate plans: primarily by the analyst's goal, and —
// when two plans are within rounding error on the goal — by total system
// cost, so that ties never pick a plan that wastes another entity's
// resources (e.g. an astronomically expensive FHE circuit on an unlimited
// aggregator when a committee plan costs participants the same).
func betterPlan(a, b costmodel.Vector, goal costmodel.Metric) bool {
	ga, gb := a.Get(goal), b.Get(goal)
	const relTol = 1e-6
	if gb > 0 && (gb-ga)/gb > relTol {
		return true
	}
	if ga > 0 && (ga-gb)/ga > relTol {
		return false
	}
	// Tie on the goal: prefer the plan with the smaller total footprint.
	return totalFootprint(a) < totalFootprint(b)
}

// totalFootprint is a single scalar mixing all six metrics for tie-breaking
// (seconds plus bytes at a nominal 100 MB/s).
func totalFootprint(v costmodel.Vector) float64 {
	const bytesPerSecond = 1e8
	return v.AggCPU + v.PartExpCPU + v.PartMaxCPU +
		(v.AggBytes+v.PartExpBytes+v.PartMaxBytes)/bytesPerSecond
}

// search runs DFS over the per-step options with branch-and-bound pruning.
// It returns the winning option per step, its exact cost, and breakdowns.
func search(steps []step, sp searchSpace, sc *scorer, cfg searchConfig) ([]option, costmodel.Vector, breakdown, int, *Stats, error) {
	stats := &Stats{}
	opts := make([][]option, len(steps))
	for i, st := range steps {
		os := sp.optionsFor(st)
		if len(os) == 0 {
			return nil, costmodel.Vector{}, breakdown{}, 0, stats, fmt.Errorf("planner: no implementation for step %v", st.kind)
		}
		// Pinned steps keep only the options matching the forced prefix.
		if len(cfg.force) > 0 {
			if prefix, pinned := cfg.force[os[0].choiceKey]; pinned {
				kept := os[:0]
				for _, o := range os {
					if strings.HasPrefix(o.choiceVal, prefix) {
						kept = append(kept, o)
					}
				}
				if len(kept) == 0 {
					return nil, costmodel.Vector{}, breakdown{}, 0, stats,
						fmt.Errorf("planner: no %s implementation matches forced choice %q", os[0].choiceKey, prefix)
				}
				os = kept
			}
		}
		if cfg.orderOpts {
			// Heuristic order: score each option in isolation and try the
			// cheapest first, so a good incumbent appears early and the
			// bound prunes aggressively.
			type scored struct {
				o option
				v float64
			}
			ss := make([]scored, len(os))
			for j, o := range os {
				v, _, _ := sc.score(o.vignettes)
				ss[j] = scored{o: o, v: v.Get(cfg.goal)}
			}
			sort.SliceStable(ss, func(a, b int) bool { return ss[a].v < ss[b].v })
			for j := range ss {
				os[j] = ss[j].o
			}
		}
		opts[i] = os
	}

	cap := cfg.nodeCap
	if cap == 0 {
		cap = defaultNodeCap
	}

	// The evaluation queries plan in milliseconds sequentially, so automatic
	// parallelism only pays off on big option trees; an explicit Workers
	// request always gets the pool. The plan is identical either way.
	if w := parallel.Workers(cfg.workers); w > 1 && len(steps) > 0 &&
		(cfg.workers > 1 || estLeaves(opts) >= parallelSearchThreshold) {
		return searchParallel(steps, opts, sc, cfg, cap, w, stats)
	}

	var (
		bestChoice []option
		bestCost   costmodel.Vector
		bestBD     breakdown
		bestM      int
		haveBest   bool
	)

	prefix := make([]plan.Vignette, 0, 64)
	prefix = append(prefix, keygenVignette())
	choice := make([]option, len(steps))

	var dfs func(depth int) bool // returns false when aborted
	dfs = func(depth int) bool {
		stats.PrefixesExplored++
		if stats.PrefixesExplored > cap {
			stats.Aborted = true
			return false
		}
		partial, _, _ := sc.score(prefix)
		if !cfg.noBB {
			// Prune on hard limits: a prefix above a limit can only get
			// worse (all work counters are non-negative).
			if _, bad := cfg.limits.Violated(partial); bad {
				stats.Pruned++
				return true
			}
			// Prune on the incumbent. Partial costs only grow, so a prefix
			// already worse than the incumbent (goal-first, footprint on
			// ties — the same order betterPlan uses) cannot win.
			if haveBest && !betterPlan(partial, bestCost, cfg.goal) {
				stats.Pruned++
				return true
			}
		}
		if depth == len(steps) {
			stats.FullCandidates++
			full, bd, m := sc.score(prefix)
			if _, bad := cfg.limits.Violated(full); bad {
				return true
			}
			if !haveBest || betterPlan(full, bestCost, cfg.goal) {
				haveBest = true
				bestCost = full
				bestBD = bd
				bestM = m
				bestChoice = append([]option(nil), choice...)
			}
			return true
		}
		for _, o := range opts[depth] {
			mark := len(prefix)
			prefix = append(prefix, o.vignettes...)
			choice[depth] = o
			ok := dfs(depth + 1)
			prefix = prefix[:mark]
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(0)

	if stats.Aborted {
		return nil, costmodel.Vector{}, breakdown{}, 0, stats, errNodeCap
	}
	if !haveBest {
		return nil, costmodel.Vector{}, breakdown{}, 0, stats,
			errors.New("planner: no plan satisfies the limits")
	}
	return bestChoice, bestCost, bestBD, bestM, stats, nil
}

// errNodeCap is the sentinel a parallel search task raises when the shared
// node counter crosses the cap.
var errNodeCap = errors.New("planner: search exceeded the node cap (branch-and-bound disabled?)")

// parallelSearchThreshold is the estimated full-candidate count below which
// an automatically-sized search stays sequential: per-node work is tiny
// (microseconds), so small trees finish before a pool would warm up.
const parallelSearchThreshold = 1 << 14

// estLeaves estimates the full-candidate count of the option tree (the
// product of per-step option counts), saturating well past the threshold.
func estLeaves(opts [][]option) int64 {
	leaves := int64(1)
	for _, os := range opts {
		leaves *= int64(len(os))
		if leaves >= 1<<30 {
			return 1 << 30
		}
	}
	return leaves
}

// searchParallel partitions the option tree into independent subtree tasks
// and searches them on a worker pool. It is deterministic: the final winner
// is chosen by an ordered reduction over per-task winners that applies
// exactly the sequential incumbent rule ("replace only if strictly better"),
// so the plan at N workers is the plan at 1 worker. Three properties make
// the cross-task pruning sound:
//
//   - Partial costs are admissible lower bounds: every scored quantity only
//     grows as vignettes are appended (score documents this), so goal value
//     and total footprint are monotone from prefix to full plan.
//   - The shared bound prunes only on STRICT dominance (betterPlan(bound,
//     partial)). A subtree whose prefix is already strictly beaten cannot
//     contain the sequential winner: any full plan in it costs at least the
//     prefix, and the bound is itself a real candidate found by some task.
//     Tied prefixes are never pruned, so order-based tie-breaking survives.
//   - Each task keeps its own sequential incumbent (the non-strict rule),
//     so within a task the DFS behaves exactly like the 1-worker search.
//
// Stats are exact sums of per-task counters. PrefixesExplored matches the
// sequential search when pruning is disabled (every node is visited exactly
// once: shallow nodes at task generation, deeper ones inside tasks); with
// pruning, the counts depend on how fast the shared bound tightens and may
// vary run to run — the chosen plan never does.
func searchParallel(steps []step, opts [][]option, sc *scorer, cfg searchConfig, nodeCap int64, workers int, stats *Stats) ([]option, costmodel.Vector, breakdown, int, *Stats, error) {
	// Expand the shallowest levels breadth-first into at least workers*4
	// subtree tasks so the pool stays busy even when subtree sizes are
	// lopsided. Each expanded node is counted once, here.
	var nodes atomic.Int64 // shared node counter, also enforces the cap
	frontier := [][]int{{}}
	depth := 0
	for depth < len(steps) && len(frontier) < workers*4 {
		next := make([][]int, 0, len(frontier)*len(opts[depth]))
		for _, pre := range frontier {
			nodes.Add(1)
			for j := range opts[depth] {
				child := make([]int, len(pre)+1)
				copy(child, pre)
				child[len(pre)] = j
				next = append(next, child)
			}
		}
		frontier = next
		depth++
	}

	// The shared incumbent bound: the cost vector of the best full candidate
	// published by any task so far. Tasks prune against it strictly.
	var bound atomic.Pointer[costmodel.Vector]
	publish := func(v costmodel.Vector) {
		for {
			cur := bound.Load()
			if cur != nil && !betterPlan(v, *cur, cfg.goal) {
				return
			}
			nv := v
			if bound.CompareAndSwap(cur, &nv) {
				return
			}
		}
	}

	type taskResult struct {
		choice []option
		cost   costmodel.Vector
		bd     breakdown
		m      int
		have   bool
		stats  Stats
	}

	results, err := parallel.Map(nil, len(frontier), workers, func(t int) (taskResult, error) {
		var r taskResult
		tsc := sc.clone() // scorer memo is not synchronized; one per task
		prefix := make([]plan.Vignette, 0, 64)
		prefix = append(prefix, keygenVignette())
		choice := make([]option, len(steps))
		for lvl, j := range frontier[t] {
			o := opts[lvl][j]
			choice[lvl] = o
			prefix = append(prefix, o.vignettes...)
		}

		var dfs func(d int) error
		dfs = func(d int) error {
			r.stats.PrefixesExplored++
			if nodes.Add(1) > nodeCap {
				r.stats.Aborted = true
				return errNodeCap
			}
			partial, _, _ := tsc.score(prefix)
			if !cfg.noBB {
				if _, bad := cfg.limits.Violated(partial); bad {
					r.stats.Pruned++
					return nil
				}
				// The task-local incumbent prunes non-strictly (sequential
				// semantics); the shared bound prunes only strict dominance.
				if r.have && !betterPlan(partial, r.cost, cfg.goal) {
					r.stats.Pruned++
					return nil
				}
				if b := bound.Load(); b != nil && betterPlan(*b, partial, cfg.goal) {
					r.stats.Pruned++
					return nil
				}
			}
			if d == len(steps) {
				r.stats.FullCandidates++
				full, bd, m := tsc.score(prefix)
				if _, bad := cfg.limits.Violated(full); bad {
					return nil
				}
				if !r.have || betterPlan(full, r.cost, cfg.goal) {
					r.have = true
					r.cost = full
					r.bd = bd
					r.m = m
					r.choice = append([]option(nil), choice...)
					publish(full)
				}
				return nil
			}
			for _, o := range opts[d] {
				mark := len(prefix)
				prefix = append(prefix, o.vignettes...)
				choice[d] = o
				err := dfs(d + 1)
				prefix = prefix[:mark]
				if err != nil {
					return err
				}
			}
			return nil
		}
		if err := dfs(len(frontier[t])); err != nil {
			return r, err
		}
		return r, nil
	})
	stats.PrefixesExplored = nodes.Load()
	if err != nil {
		stats.Aborted = true
		return nil, costmodel.Vector{}, breakdown{}, 0, stats, errNodeCap
	}

	// Ordered reduction in task order — the order sequential DFS would have
	// reached the same subtrees — with the sequential incumbent rule.
	var (
		bestChoice []option
		bestCost   costmodel.Vector
		bestBD     breakdown
		bestM      int
		haveBest   bool
	)
	for _, r := range results {
		stats.FullCandidates += r.stats.FullCandidates
		stats.Pruned += r.stats.Pruned
		if r.have && (!haveBest || betterPlan(r.cost, bestCost, cfg.goal)) {
			haveBest = true
			bestCost = r.cost
			bestBD = r.bd
			bestM = r.m
			bestChoice = r.choice
		}
	}
	if !haveBest {
		return nil, costmodel.Vector{}, breakdown{}, 0, stats,
			errors.New("planner: no plan satisfies the limits")
	}
	return bestChoice, bestCost, bestBD, bestM, stats, nil
}
