package planner

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"arboretum/internal/costmodel"
	"arboretum/internal/plan"
)

// Stats reports what the search did (Figure 9 and the branch-and-bound
// ablation of Section 7.3 read these).
type Stats struct {
	PrefixesExplored int64 // DFS nodes visited ("plan prefixes")
	FullCandidates   int64 // complete plans scored exactly
	Pruned           int64 // prefixes cut by a limit or the incumbent
	Aborted          bool  // hit the node cap with pruning disabled
}

// searchConfig tunes the planner search.
type searchConfig struct {
	goal      costmodel.Metric
	limits    costmodel.Limits
	noBB      bool              // disable branch-and-bound (ablation, Section 7.3)
	nodeCap   int64             // safety net for the ablation (0 = default)
	orderOpts bool              // order options cheapest-first so pruning bites early
	force     map[string]string // pin steps to choice-value prefixes
}

const defaultNodeCap = 50_000_000

// betterPlan orders candidate plans: primarily by the analyst's goal, and —
// when two plans are within rounding error on the goal — by total system
// cost, so that ties never pick a plan that wastes another entity's
// resources (e.g. an astronomically expensive FHE circuit on an unlimited
// aggregator when a committee plan costs participants the same).
func betterPlan(a, b costmodel.Vector, goal costmodel.Metric) bool {
	ga, gb := a.Get(goal), b.Get(goal)
	const relTol = 1e-6
	if gb > 0 && (gb-ga)/gb > relTol {
		return true
	}
	if ga > 0 && (ga-gb)/ga > relTol {
		return false
	}
	// Tie on the goal: prefer the plan with the smaller total footprint.
	return totalFootprint(a) < totalFootprint(b)
}

// totalFootprint is a single scalar mixing all six metrics for tie-breaking
// (seconds plus bytes at a nominal 100 MB/s).
func totalFootprint(v costmodel.Vector) float64 {
	const bytesPerSecond = 1e8
	return v.AggCPU + v.PartExpCPU + v.PartMaxCPU +
		(v.AggBytes+v.PartExpBytes+v.PartMaxBytes)/bytesPerSecond
}

// search runs DFS over the per-step options with branch-and-bound pruning.
// It returns the winning option per step, its exact cost, and breakdowns.
func search(steps []step, sp searchSpace, sc *scorer, cfg searchConfig) ([]option, costmodel.Vector, breakdown, int, *Stats, error) {
	stats := &Stats{}
	opts := make([][]option, len(steps))
	for i, st := range steps {
		os := sp.optionsFor(st)
		if len(os) == 0 {
			return nil, costmodel.Vector{}, breakdown{}, 0, stats, fmt.Errorf("planner: no implementation for step %v", st.kind)
		}
		// Pinned steps keep only the options matching the forced prefix.
		if len(cfg.force) > 0 {
			if prefix, pinned := cfg.force[os[0].choiceKey]; pinned {
				kept := os[:0]
				for _, o := range os {
					if strings.HasPrefix(o.choiceVal, prefix) {
						kept = append(kept, o)
					}
				}
				if len(kept) == 0 {
					return nil, costmodel.Vector{}, breakdown{}, 0, stats,
						fmt.Errorf("planner: no %s implementation matches forced choice %q", os[0].choiceKey, prefix)
				}
				os = kept
			}
		}
		if cfg.orderOpts {
			// Heuristic order: score each option in isolation and try the
			// cheapest first, so a good incumbent appears early and the
			// bound prunes aggressively.
			type scored struct {
				o option
				v float64
			}
			ss := make([]scored, len(os))
			for j, o := range os {
				v, _, _ := sc.score(o.vignettes)
				ss[j] = scored{o: o, v: v.Get(cfg.goal)}
			}
			sort.SliceStable(ss, func(a, b int) bool { return ss[a].v < ss[b].v })
			for j := range ss {
				os[j] = ss[j].o
			}
		}
		opts[i] = os
	}

	cap := cfg.nodeCap
	if cap == 0 {
		cap = defaultNodeCap
	}

	var (
		bestChoice []option
		bestCost   costmodel.Vector
		bestBD     breakdown
		bestM      int
		haveBest   bool
	)

	prefix := make([]plan.Vignette, 0, 64)
	prefix = append(prefix, keygenVignette())
	choice := make([]option, len(steps))

	var dfs func(depth int) bool // returns false when aborted
	dfs = func(depth int) bool {
		stats.PrefixesExplored++
		if stats.PrefixesExplored > cap {
			stats.Aborted = true
			return false
		}
		partial, _, _ := sc.score(prefix)
		if !cfg.noBB {
			// Prune on hard limits: a prefix above a limit can only get
			// worse (all work counters are non-negative).
			if _, bad := cfg.limits.Violated(partial); bad {
				stats.Pruned++
				return true
			}
			// Prune on the incumbent. Partial costs only grow, so a prefix
			// already worse than the incumbent (goal-first, footprint on
			// ties — the same order betterPlan uses) cannot win.
			if haveBest && !betterPlan(partial, bestCost, cfg.goal) {
				stats.Pruned++
				return true
			}
		}
		if depth == len(steps) {
			stats.FullCandidates++
			full, bd, m := sc.score(prefix)
			if _, bad := cfg.limits.Violated(full); bad {
				return true
			}
			if !haveBest || betterPlan(full, bestCost, cfg.goal) {
				haveBest = true
				bestCost = full
				bestBD = bd
				bestM = m
				bestChoice = append([]option(nil), choice...)
			}
			return true
		}
		for _, o := range opts[depth] {
			mark := len(prefix)
			prefix = append(prefix, o.vignettes...)
			choice[depth] = o
			ok := dfs(depth + 1)
			prefix = prefix[:mark]
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(0)

	if stats.Aborted {
		return nil, costmodel.Vector{}, breakdown{}, 0, stats,
			errors.New("planner: search exceeded the node cap (branch-and-bound disabled?)")
	}
	if !haveBest {
		return nil, costmodel.Vector{}, breakdown{}, 0, stats,
			errors.New("planner: no plan satisfies the limits")
	}
	return bestChoice, bestCost, bestBD, bestM, stats, nil
}
