package planner

import (
	"fmt"
	"time"

	"arboretum/internal/costmodel"
	"arboretum/internal/lang"
	"arboretum/internal/plan"
	"arboretum/internal/privacy"
	"arboretum/internal/sortition"
	"arboretum/internal/types"
)

// Request describes one planning task: the query, the deployment, the
// analyst's optimization goal, and optional limits (Section 4.2's example:
// "the aggregator must not spend more than 1,000 core-hours and user devices
// must not be asked to send more than 500 MB, and ... the plan with the
// lowest expected computation time on participant devices").
type Request struct {
	Name    string
	Source  string // query text; Program wins if both set
	Program *lang.Program

	N          int64       // participants
	Categories int64       // db row width (one-hot categories)
	ElemRange  types.Range // db element range; default [0,1]

	Goal   costmodel.Metric
	Limits costmodel.Limits

	Model      *costmodel.Model      // nil → costmodel.Default()
	SizeParams *sortition.SizeParams // nil → sortition.DefaultSizeParams
	Privacy    *privacy.Options      // nil → privacy.DefaultOptions

	// DisableBranchAndBound turns off pruning (the ablation of Section 7.3).
	DisableBranchAndBound bool
	// NodeCap bounds the search when pruning is disabled (0 = default).
	NodeCap int64

	// ForceChoices pins steps to implementations whose choice value starts
	// with the given prefix (e.g. {"sum": "device-tree"} forces a sum tree,
	// {"em": "gumbel"} forces the Gumbel variant). Used by the design-choice
	// ablations and by `arboretum explain` to price the roads not taken.
	ForceChoices map[string]string

	// Workers bounds the search worker pool. 0 resolves via the
	// ARBORETUM_WORKERS environment variable, then GOMAXPROCS; 1 forces the
	// sequential search. The chosen plan is identical at every setting.
	Workers int
}

// DefaultLimits matches the evaluation setup (Section 7.2): participants may
// send up to 4 GB and compute up to 20 minutes. The aggregator budget is set
// to 10,000 core-hours — consistent with Figure 8b, which shows runs of up
// to ~15 hours on 1,000 cores (Figure 10 separately sweeps tighter budgets
// of 1,000 and 5,000 core-hours).
var DefaultLimits = costmodel.Limits{
	PartMaxBytes: 4e9,
	PartMaxCPU:   20 * 60,
	AggCPU:       10000 * 3600,
}

// Result is the planning outcome.
type Result struct {
	Plan         *plan.Plan
	Certificate  *privacy.Certificate
	Stats        Stats
	PlanningTime time.Duration
}

// Plan runs the whole pipeline of Section 4: certify, expand, place, encrypt,
// score, and select.
func Plan(req Request) (*Result, error) {
	start := time.Now()
	if req.N <= 0 {
		return nil, fmt.Errorf("planner: invalid participant count %d", req.N)
	}
	if req.Categories <= 0 {
		req.Categories = 1
	}
	prog := req.Program
	if prog == nil {
		var err error
		prog, err = lang.Parse(req.Source)
		if err != nil {
			return nil, fmt.Errorf("planner: parse: %w", err)
		}
	}
	elem := req.ElemRange
	if elem.Lo == 0 && elem.Hi == 0 {
		elem = types.Range{Lo: 0, Hi: 1}
	}
	db := types.DBInfo{N: req.N, Width: req.Categories, ElemRange: elem}
	info, err := types.Infer(prog, db)
	if err != nil {
		return nil, fmt.Errorf("planner: type inference: %w", err)
	}
	popts := privacy.DefaultOptions
	if req.Privacy != nil {
		popts = *req.Privacy
	}
	cert, err := privacy.Certify(prog, info, popts)
	if err != nil {
		return nil, fmt.Errorf("planner: certification: %w", err)
	}

	steps, err := decompose(prog, info)
	if err != nil {
		return nil, err
	}

	model := req.Model
	if model == nil {
		model = costmodel.Default()
	}
	size := sortition.DefaultSizeParams
	if req.SizeParams != nil {
		size = *req.SizeParams
	}
	sp := defaultSpace(req.N, model)
	sc := newScorer(req.N, model, size)
	cfg := searchConfig{
		goal:      req.Goal,
		limits:    req.Limits,
		noBB:      req.DisableBranchAndBound,
		nodeCap:   req.NodeCap,
		orderOpts: !req.DisableBranchAndBound,
		force:     req.ForceChoices,
		workers:   req.Workers,
	}
	chosen, cost, bd, m, stats, err := search(steps, sp, sc, cfg)
	if err != nil {
		return &Result{Stats: *stats, PlanningTime: time.Since(start)}, err
	}

	p := assemble(req, chosen, cost, bd, m)
	return &Result{
		Plan:         p,
		Certificate:  cert,
		Stats:        *stats,
		PlanningTime: time.Since(start),
	}, nil
}

// assemble builds the final Plan object from the winning options.
func assemble(req Request, chosen []option, cost costmodel.Vector, bd breakdown, m int) *plan.Plan {
	p := &plan.Plan{
		Query:           req.Name,
		N:               req.N,
		Categories:      req.Categories,
		Choices:         map[string]string{},
		Cost:            cost,
		ByRole:          bd.byRole,
		BaseCPU:         bd.baseCPU,
		BaseBytes:       bd.baseBytes,
		AggOpsCPU:       bd.aggOpsCPU,
		AggVerifyCPU:    bd.aggVerifyCPU,
		AggForwardBytes: bd.aggForwardBytes,
		CommitteeSize:   m,
	}
	id := 0
	add := func(v plan.Vignette) {
		v.ID = id
		id++
		p.Vignettes = append(p.Vignettes, &v)
	}
	add(keygenVignette())
	var committees int64 = 1
	var prev *plan.Vignette
	for _, o := range chosen {
		p.Choices[o.choiceKey] = o.choiceVal
		for _, v := range o.vignettes {
			committees += v.Committees()
			// Merge heuristic (Section 4.4): consecutive vignettes in the
			// same location might as well be one — unless both run on
			// committees, where splitting respects per-member work limits.
			if prev != nil && prev.Loc == v.Loc && v.Loc != plan.Committee &&
				prev.Parallel == v.Parallel && prev.Count == v.Count && prev.Crypto == v.Crypto {
				prev.Work.Add(v.Work)
				prev.Desc = prev.Desc + "; " + v.Desc
				continue
			}
			add(v)
			prev = p.Vignettes[len(p.Vignettes)-1]
		}
	}
	p.CommitteeCount = int(committees)
	return p
}
