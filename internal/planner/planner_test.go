package planner

import (
	"testing"

	"arboretum/internal/costmodel"
	"arboretum/internal/plan"
	"arboretum/internal/queries"
)

const testN = 1 << 30 // 2^30 ≈ 10^9, the paper's deployment scale

func planQuery(t *testing.T, q queries.Query, n int64) *Result {
	t.Helper()
	res, err := Plan(Request{
		Name:       q.Name,
		Source:     q.Source,
		N:          n,
		Categories: q.Categories,
		Goal:       costmodel.PartExpCPU,
		Limits:     DefaultLimits,
	})
	if err != nil {
		t.Fatalf("Plan(%s): %v", q.Name, err)
	}
	return res
}

func TestPlanTop1(t *testing.T) {
	res := planQuery(t, queries.Top1, testN)
	p := res.Plan
	if p.CommitteeSize < 20 || p.CommitteeSize > 150 {
		t.Errorf("committee size = %d, paper reports ~40", p.CommitteeSize)
	}
	if p.CommitteeCount < 2 {
		t.Errorf("committee count = %d, want at least keygen + ops", p.CommitteeCount)
	}
	// The plan must start with key generation (Section 4.5).
	if p.Vignettes[0].Role != plan.RoleKeyGen {
		t.Errorf("first vignette = %v, want keygen", p.Vignettes[0].Desc)
	}
	// It must include a device-parallel input vignette covering everyone.
	foundInput := false
	for _, v := range p.Vignettes {
		if v.Loc == plan.Device && v.Count == testN {
			foundInput = true
		}
	}
	if !foundInput {
		t.Error("no all-device input vignette")
	}
	// An em choice must be recorded.
	if p.Choices["em"] == "" {
		t.Error("no em variant recorded")
	}
	if res.Certificate == nil || res.Certificate.Epsilon != 0.1 {
		t.Errorf("certificate = %+v", res.Certificate)
	}
}

func TestAllQueriesPlan(t *testing.T) {
	for _, q := range queries.All {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			res := planQuery(t, q, testN)
			p := res.Plan
			if _, bad := DefaultLimits.Violated(p.Cost); bad {
				t.Errorf("chosen plan violates limits: %+v", p.Cost)
			}
			if p.Cost.PartExpCPU <= 0 || p.Cost.PartExpBytes <= 0 {
				t.Errorf("degenerate expected cost: %+v", p.Cost)
			}
			if p.Cost.PartMaxCPU < p.Cost.PartExpCPU {
				t.Errorf("max < expected participant CPU: %+v", p.Cost)
			}
			if res.Stats.PrefixesExplored == 0 || res.Stats.FullCandidates == 0 {
				t.Errorf("search stats empty: %+v", res.Stats)
			}
		})
	}
}

// Figure 6's headline shape: exponential-mechanism queries cost participants
// more than Laplace-mechanism queries, and topK is the most expensive.
func TestEMCostsMoreThanLaplace(t *testing.T) {
	top1 := planQuery(t, queries.Top1, testN).Plan
	topK := planQuery(t, queries.TopK, testN).Plan
	cms := planQuery(t, queries.CMS, testN).Plan
	if top1.Cost.PartExpCPU <= cms.Cost.PartExpCPU {
		t.Errorf("top1 (%g s) should cost more than cms (%g s)",
			top1.Cost.PartExpCPU, cms.Cost.PartExpCPU)
	}
	if topK.Cost.PartExpCPU <= top1.Cost.PartExpCPU {
		t.Errorf("topK (%g s) should cost more than top1 (%g s)",
			topK.Cost.PartExpCPU, top1.Cost.PartExpCPU)
	}
}

// Expected participant costs must land in the paper's band: "each
// participant sends between 132 kB and 3 MB and spends between 7.1 s and
// 62.4 s of computation time" (Section 7.2). Allow a generous envelope.
func TestExpectedCostBand(t *testing.T) {
	for _, q := range queries.All {
		p := planQuery(t, q, testN).Plan
		if p.Cost.PartExpCPU < 1 || p.Cost.PartExpCPU > 200 {
			t.Errorf("%s expected CPU = %.1f s, outside [1, 200]", q.Name, p.Cost.PartExpCPU)
		}
		if p.Cost.PartExpBytes < 5e4 || p.Cost.PartExpBytes > 2e7 {
			t.Errorf("%s expected bytes = %.0f, outside [50 kB, 20 MB]", q.Name, p.Cost.PartExpBytes)
		}
	}
}

// Committee-member worst cases: keygen is the most expensive committee
// (~700 MB, ~14 min) and everything stays within the participant limits.
func TestKeyGenIsMostExpensiveCommittee(t *testing.T) {
	p := planQuery(t, queries.Top1, testN).Plan
	kg, ok := p.ByRole[plan.RoleKeyGen]
	if !ok {
		t.Fatal("no keygen role cost")
	}
	if kg.Bytes < 5e8 {
		t.Errorf("keygen member bytes = %g, want ~7e8", kg.Bytes)
	}
	for role, rc := range p.ByRole {
		if role == plan.RoleKeyGen {
			continue
		}
		if rc.Bytes > kg.Bytes {
			t.Errorf("role %v bytes %g exceed keygen %g", role, rc.Bytes, kg.Bytes)
		}
	}
	if p.Cost.PartMaxBytes > 4e9 {
		t.Errorf("max participant bytes %g exceed the 4 GB limit", p.Cost.PartMaxBytes)
	}
}

// EM queries need far more committees than Laplace queries (Section 7.2:
// topK has 115k+ committees; cms has a handful).
func TestCommitteeCountShape(t *testing.T) {
	topK := planQuery(t, queries.TopK, testN).Plan
	cms := planQuery(t, queries.CMS, testN).Plan
	if topK.CommitteeCount < 50*cms.CommitteeCount {
		t.Errorf("topK committees (%d) should dwarf cms committees (%d)",
			topK.CommitteeCount, cms.CommitteeCount)
	}
	// Serving fraction stays tiny (paper: 0.00022%–0.49%).
	frac := float64(topK.CommitteeCount*topK.CommitteeSize) / float64(testN)
	if frac > 0.02 {
		t.Errorf("topK serving fraction = %g, want ≤ 2%%", frac)
	}
}

// With an aggregator limit, the planner outsources the sum to the devices
// (Figure 10's crossover); without one it keeps the simple aggregator loop.
func TestAggregatorLimitForcesOutsourcing(t *testing.T) {
	noLimit, err := Plan(Request{
		Name: "top1", Source: queries.Top1.Source, N: testN,
		Categories: queries.Top1.Categories,
		Goal:       costmodel.AggCPU,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := noLimit.Plan.Choices["sum"]; got != "aggregator-loop" {
		// Goal AggCPU without limits must pick the... cheapest aggregator
		// option, which is the device tree. Accept either but record it.
		t.Logf("no-limit sum choice: %s", got)
	}
	expGoal, err := Plan(Request{
		Name: "top1", Source: queries.Top1.Source, N: testN,
		Categories: queries.Top1.Categories,
		Goal:       costmodel.PartExpCPU,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := expGoal.Plan.Choices["sum"]; got != "aggregator-loop" {
		t.Errorf("unlimited PartExpCPU goal should keep the aggregator loop, got %s", got)
	}
	// A tight aggregator budget forces the device tree.
	tight, err := Plan(Request{
		Name: "top1", Source: queries.Top1.Source, N: testN,
		Categories: queries.Top1.Categories,
		Goal:       costmodel.PartExpCPU,
		Limits:     costmodel.Limits{AggCPU: float64(testN) * 0.011}, // barely covers ZKP checks
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tight.Plan.Choices["sum"]; got == "aggregator-loop" {
		t.Errorf("tight aggregator budget should outsource the sum, got %s", got)
	}
	if tight.Plan.Cost.PartExpCPU <= expGoal.Plan.Cost.PartExpCPU {
		t.Error("outsourcing should raise expected participant cost")
	}
}

// When not even the ZKP checks fit, planning must fail (the red line in
// Figure 10 stops at N = 2^28).
func TestInfeasibleAggregatorBudget(t *testing.T) {
	_, err := Plan(Request{
		Name: "top1", Source: queries.Top1.Source, N: testN,
		Categories: queries.Top1.Categories,
		Goal:       costmodel.PartExpCPU,
		Limits:     costmodel.Limits{AggCPU: 1000}, // absurd: 1000 core-seconds
	})
	if err == nil {
		t.Fatal("infeasible budget produced a plan")
	}
}

// Branch-and-bound: enabling pruning must not change the winner, only the
// work (Section 7.3: without the heuristics the planner takes orders of
// magnitude longer or dies).
func TestBranchAndBoundPreservesOptimum(t *testing.T) {
	req := Request{
		Name: "cms", Source: queries.CMS.Source, N: 1 << 20,
		Categories: queries.CMS.Categories,
		Goal:       costmodel.PartExpCPU,
		Limits:     DefaultLimits,
	}
	with, err := Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	req.DisableBranchAndBound = true
	without, err := Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if with.Plan.Cost.PartExpCPU != without.Plan.Cost.PartExpCPU {
		t.Errorf("pruned %g vs exhaustive %g expected CPU",
			with.Plan.Cost.PartExpCPU, without.Plan.Cost.PartExpCPU)
	}
	if without.Stats.PrefixesExplored < with.Stats.PrefixesExplored {
		t.Errorf("exhaustive search explored fewer prefixes (%d) than pruned (%d)",
			without.Stats.PrefixesExplored, with.Stats.PrefixesExplored)
	}
	if with.Stats.Pruned == 0 {
		t.Error("branch-and-bound never pruned")
	}
}

// The node cap models the paper's OOM: with pruning disabled and a small
// cap, complex queries abort.
func TestNodeCapAborts(t *testing.T) {
	_, err := Plan(Request{
		Name: "median", Source: queries.Median.Source, N: testN,
		Categories:            queries.Median.Categories,
		Goal:                  costmodel.PartExpCPU,
		Limits:                DefaultLimits,
		DisableBranchAndBound: true,
		NodeCap:               1000,
	})
	if err == nil {
		t.Fatal("capped exhaustive search should abort")
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := Plan(Request{Source: "output(1);", N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Plan(Request{Source: "x = ;", N: 100}); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := Plan(Request{Source: "output(db[0][0]);", N: 100, Categories: 4}); err == nil {
		t.Error("non-private query accepted")
	}
}

// Planner determinism: the same request yields the same plan.
func TestPlanDeterministic(t *testing.T) {
	a := planQuery(t, queries.Median, 1<<24).Plan
	b := planQuery(t, queries.Median, 1<<24).Plan
	if a.Cost != b.Cost {
		t.Errorf("plans differ: %+v vs %+v", a.Cost, b.Cost)
	}
	for k, v := range a.Choices {
		if b.Choices[k] != v {
			t.Errorf("choice %s differs: %s vs %s", k, v, b.Choices[k])
		}
	}
}

// The planner's String output must look like Figure 5.
func TestPlanString(t *testing.T) {
	p := planQuery(t, queries.Top1, 1<<20).Plan
	s := p.String()
	if s == "" {
		t.Fatal("empty plan rendering")
	}
	for _, want := range []string{"keygen", "vignette", "cost:"} {
		if !contains(s, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func BenchmarkPlanTop1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Plan(Request{
			Name: "top1", Source: queries.Top1.Source, N: testN,
			Categories: queries.Top1.Categories,
			Goal:       costmodel.PartExpCPU,
			Limits:     DefaultLimits,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanMedian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Plan(Request{
			Name: "median", Source: queries.Median.Source, N: testN,
			Categories: queries.Median.Categories,
			Goal:       costmodel.PartExpCPU,
			Limits:     DefaultLimits,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ForceChoices pins a step to one implementation family — the lever behind
// the design-choice ablations and `arboretum explain`.
func TestForceChoices(t *testing.T) {
	base := Request{
		Name: "top1", Source: queries.Top1.Source, N: testN,
		Categories: queries.Top1.Categories,
		Goal:       costmodel.PartExpCPU, Limits: DefaultLimits,
	}
	base.ForceChoices = map[string]string{"sum": "device-tree"}
	forced, err := Plan(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := forced.Plan.Choices["sum"]; len(got) < 11 || got[:11] != "device-tree" {
		t.Errorf("forced sum choice = %s", got)
	}
	// Forcing the non-optimal choice cannot improve the goal metric.
	free, err := Plan(Request{
		Name: "top1", Source: queries.Top1.Source, N: testN,
		Categories: queries.Top1.Categories,
		Goal:       costmodel.PartExpCPU, Limits: DefaultLimits,
	})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Plan.Cost.PartExpCPU < free.Plan.Cost.PartExpCPU {
		t.Error("forcing a choice beat the free search on the goal metric")
	}
	// An unmatched prefix errors.
	base.ForceChoices = map[string]string{"sum": "nonexistent"}
	if _, err := Plan(base); err == nil {
		t.Error("bogus forced choice accepted")
	}
	// Forcing the em variant works too.
	base.ForceChoices = map[string]string{"em": "exponentiate"}
	expPlan, err := Plan(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := expPlan.Plan.Choices["em"]; len(got) < 4 || got[:4] != "expo" {
		t.Errorf("forced em choice = %s", got)
	}
}

// Property: as the deployment grows, the aggregator's cost never falls and
// the expected participant cost never rises (more devices → same mandatory
// work per device, smaller committee odds) — Figure 10's monotonicities,
// checked across the whole sweep.
func TestCostMonotonicityInN(t *testing.T) {
	prevAgg, prevExp := 0.0, 1e18
	for logN := 17; logN <= 30; logN++ {
		res, err := Plan(Request{
			Name: "top1", Source: queries.Top1.Source, N: 1 << logN,
			Categories: queries.Top1.Categories,
			Goal:       costmodel.PartExpCPU, Limits: DefaultLimits,
		})
		if err != nil {
			t.Fatalf("logN=%d: %v", logN, err)
		}
		c := res.Plan.Cost
		if c.AggCPU < prevAgg {
			t.Errorf("logN=%d: aggregator cost fell: %g < %g", logN, c.AggCPU, prevAgg)
		}
		if c.PartExpCPU > prevExp+1e-9 {
			t.Errorf("logN=%d: expected participant cost rose: %g > %g", logN, c.PartExpCPU, prevExp)
		}
		prevAgg, prevExp = c.AggCPU, c.PartExpCPU
	}
}

// Property: widening categories never makes the plan cheaper on any
// participant metric (more categories → at least as many ciphertexts and
// committee work).
func TestCostMonotonicityInCategories(t *testing.T) {
	prev := costmodel.Vector{}
	for _, c := range []int64{1 << 10, 1 << 12, 1 << 15, 1 << 16} {
		res, err := Plan(Request{
			Name: "top1", Source: queries.Top1.Source, N: 1 << 28,
			Categories: c,
			Goal:       costmodel.PartExpCPU, Limits: DefaultLimits,
		})
		if err != nil {
			t.Fatalf("C=%d: %v", c, err)
		}
		got := res.Plan.Cost
		if got.PartExpBytes+1e-9 < prev.PartExpBytes {
			t.Errorf("C=%d: expected bytes fell: %g < %g", c, got.PartExpBytes, prev.PartExpBytes)
		}
		prev = got
	}
}

// Property: every goal produces a plan that is optimal for that goal among
// the plans produced for all goals (self-consistency of the search).
func TestGoalSelfConsistency(t *testing.T) {
	goals := []costmodel.Metric{
		costmodel.AggCPU, costmodel.AggBytes,
		costmodel.PartExpCPU, costmodel.PartExpBytes,
		costmodel.PartMaxCPU, costmodel.PartMaxBytes,
		costmodel.PartExpEnergy,
	}
	plans := map[costmodel.Metric]costmodel.Vector{}
	for _, g := range goals {
		res, err := Plan(Request{
			Name: "gap", Source: queries.Gap.Source, N: 1 << 26,
			Categories: queries.Gap.Categories,
			Goal:       g, Limits: DefaultLimits,
		})
		if err != nil {
			t.Fatalf("goal %v: %v", g, err)
		}
		plans[g] = res.Plan.Cost
	}
	for _, g := range goals {
		mine := plans[g].Get(g)
		for _, other := range goals {
			if plans[other].Get(g) < mine*(1-1e-9) {
				t.Errorf("goal %v: plan optimized for %v scores better (%g < %g)",
					g, other, plans[other].Get(g), mine)
			}
		}
	}
}
