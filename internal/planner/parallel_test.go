package planner

// Worker-count determinism for the search: the plan picked at N workers must
// be the plan picked at 1 worker — same choices, same cost vector, same
// committee sizing, same rendered summary. The parallel search earns this
// with strict-dominance-only pruning against the shared bound and an ordered
// reduction over subtree tasks (see searchParallel).

import (
	"reflect"
	"testing"

	"arboretum/internal/costmodel"
	"arboretum/internal/queries"
)

func planWithWorkers(t *testing.T, q queries.Query, n int64, workers int, noBB bool) *Result {
	t.Helper()
	res, err := Plan(Request{
		Name:       q.Name,
		Source:     q.Source,
		N:          n,
		Categories: q.Categories,
		Goal:       costmodel.PartExpCPU,
		Limits:     DefaultLimits,

		DisableBranchAndBound: noBB,
		Workers:               workers,
	})
	if err != nil {
		t.Fatalf("Plan(%s, workers=%d): %v", q.Name, workers, err)
	}
	return res
}

// TestSearchDeterministicAcrossWorkers plans every evaluation query at 1 and
// 8 workers and demands identical outcomes.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	for _, q := range queries.All {
		seq := planWithWorkers(t, q, 1<<20, 1, false)
		par := planWithWorkers(t, q, 1<<20, 8, false)
		if !reflect.DeepEqual(seq.Plan.Choices, par.Plan.Choices) {
			t.Errorf("%s: choices differ: %v vs %v", q.Name, seq.Plan.Choices, par.Plan.Choices)
		}
		if seq.Plan.Cost != par.Plan.Cost {
			t.Errorf("%s: cost differs:\n1 worker: %+v\n8 workers: %+v", q.Name, seq.Plan.Cost, par.Plan.Cost)
		}
		if seq.Plan.CommitteeSize != par.Plan.CommitteeSize ||
			seq.Plan.CommitteeCount != par.Plan.CommitteeCount {
			t.Errorf("%s: committee shape differs: %d×%d vs %d×%d", q.Name,
				seq.Plan.CommitteeCount, seq.Plan.CommitteeSize,
				par.Plan.CommitteeCount, par.Plan.CommitteeSize)
		}
		if seq.Plan.String() != par.Plan.String() {
			t.Errorf("%s: summaries differ:\n%s\nvs\n%s", q.Name, seq.Plan.String(), par.Plan.String())
		}
	}
}

// TestParallelExhaustiveCountsMatch checks that with pruning disabled the
// parallel search visits exactly the nodes the sequential search visits:
// shallow nodes are counted once at task generation, deeper nodes inside
// their subtree task.
func TestParallelExhaustiveCountsMatch(t *testing.T) {
	seq := planWithWorkers(t, queries.CMS, 1<<20, 1, true)
	par := planWithWorkers(t, queries.CMS, 1<<20, 8, true)
	if seq.Stats.PrefixesExplored != par.Stats.PrefixesExplored {
		t.Errorf("exhaustive node counts differ: %d sequential vs %d parallel",
			seq.Stats.PrefixesExplored, par.Stats.PrefixesExplored)
	}
	if seq.Stats.FullCandidates != par.Stats.FullCandidates {
		t.Errorf("full candidate counts differ: %d vs %d",
			seq.Stats.FullCandidates, par.Stats.FullCandidates)
	}
	if seq.Plan.Cost != par.Plan.Cost {
		t.Errorf("exhaustive cost differs: %+v vs %+v", seq.Plan.Cost, par.Plan.Cost)
	}
}

// TestParallelBranchAndBoundPrunes makes sure the shared bound actually
// bites when searching in parallel.
func TestParallelBranchAndBoundPrunes(t *testing.T) {
	res := planWithWorkers(t, queries.Median, 1<<20, 8, false)
	if res.Stats.Pruned == 0 {
		t.Error("parallel branch-and-bound never pruned")
	}
	if res.Stats.FullCandidates == 0 {
		t.Error("no full candidates scored")
	}
}

// TestParallelNodeCapAborts mirrors TestNodeCapAborts on the parallel path:
// the shared node counter must stop a capped exhaustive search.
func TestParallelNodeCapAborts(t *testing.T) {
	_, err := Plan(Request{
		Name: "median", Source: queries.Median.Source, N: 1 << 30,
		Categories:            queries.Median.Categories,
		Goal:                  costmodel.PartExpCPU,
		Limits:                DefaultLimits,
		DisableBranchAndBound: true,
		NodeCap:               1000,
		Workers:               8,
	})
	if err == nil {
		t.Fatal("capped parallel exhaustive search should abort")
	}
}

// BenchmarkSearch plans the median query (the largest option tree among the
// evaluation queries) with branch-and-bound disabled so the full tree is
// walked. Run with -cpu 1,4 to compare the sequential fallback against the
// worker pool.
func BenchmarkSearch(b *testing.B) {
	req := Request{
		Name: "median", Source: queries.Median.Source, N: 1 << 30,
		Categories:            queries.Median.Categories,
		Goal:                  costmodel.PartExpCPU,
		Limits:                DefaultLimits,
		DisableBranchAndBound: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(req); err != nil {
			b.Fatal(err)
		}
	}
}
