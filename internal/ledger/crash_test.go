package ledger

import (
	"errors"
	"path/filepath"
	"testing"

	"arboretum/internal/faults"
)

// TestForcedCrashBeforeCommit is the mid-commit crash of the service
// contract: the daemon dies while appending the commit record (stage 0 of
// the "wal" fault), so the reservation is still held on disk. Replay
// restores it exactly, and CommitDangling charges the crashed query at
// its certified spend — the recovered balance is identical to the one a
// crash-free run would have reached.
func TestForcedCrashBeforeCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	plan, err := faults.Parse("seed=1,wal@3") // record 3 = the commit below
	if err != nil {
		t.Fatal(err)
	}
	l := openT(t, path, Options{Crash: plan})
	if err := l.CreateTenant("alice", 5, 1e-6); err != nil { // record 1
		t.Fatal(err)
	}
	if err := l.Reserve("alice", "j1", 1, 1e-9); err != nil { // record 2
		t.Fatal(err)
	}
	if err := l.Commit("alice", "j1", 1, 1e-9); !errors.Is(err, ErrCrashed) { // record 3: dies
		t.Fatalf("commit under wal@3 = %v, want ErrCrashed", err)
	}
	// The crashed ledger is poisoned: every further append refuses.
	if err := l.Release("alice", "j1", "after crash"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append on crashed ledger = %v, want ErrCrashed", err)
	}
	if fired := plan.Fired(); len(fired) != 1 || fired[0].Kind != faults.WALCrash {
		t.Fatalf("fired log = %v, want one WALCrash", fired)
	}

	// "Restart": replay keeps the reservation held, never silently released.
	r := openT(t, path, Options{})
	wantBalance(t, r, "alice", 0, 1, 0)
	if d := r.Dangling(); len(d) != 1 || d[0] != "alice/j1" {
		t.Fatalf("Dangling() = %v, want [alice/j1]", d)
	}
	resolved, err := r.CommitDangling("crash-recovery")
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 1 || resolved[0] != "alice/j1" {
		t.Fatalf("CommitDangling resolved %v", resolved)
	}
	// Exact, not merely conservative: reservation == certificate spend.
	wantBalance(t, r, "alice", 1, 0, 1)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// A second replay of the recovered WAL lands on identical balances.
	rr := openT(t, path, Options{})
	wantBalance(t, rr, "alice", 1, 0, 1)
}

// TestTornWriteCrash drives the stage-1 crash (half the record reaches the
// disk, no newline, no fsync) via a rate-based plan, then checks replay
// truncates the torn tail. The seed is searched so that for the crashing
// record the stage-0 draw misses and the stage-1 draw hits — behavior is
// deterministic per seed, so the search is too.
func TestTornWriteCrash(t *testing.T) {
	const seq = 3 // the commit record below
	var plan *faults.Plan
	for seed := uint64(1); seed < 200; seed++ {
		p := faults.New(seed).SetRate(faults.WALCrash, 0.4)
		if !p.Fires(faults.WALCrash, seq, 0) && p.Fires(faults.WALCrash, seq, 1) &&
			!p.Fires(faults.WALCrash, 1, 0) && !p.Fires(faults.WALCrash, 1, 1) &&
			!p.Fires(faults.WALCrash, 2, 0) && !p.Fires(faults.WALCrash, 2, 1) {
			plan = p
			break
		}
	}
	if plan == nil {
		t.Fatal("no seed under 200 yields a stage-1-only crash at record 3")
	}
	path := filepath.Join(t.TempDir(), "wal")
	l := openT(t, path, Options{Crash: plan})
	if err := l.CreateTenant("alice", 5, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("alice", "j1", 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit("alice", "j1", 2, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("commit = %v, want ErrCrashed (torn write)", err)
	}

	// Replay: the torn commit never became durable, the reservation did.
	r := openT(t, path, Options{})
	wantBalance(t, r, "alice", 0, 2, 0)
	// The torn bytes were truncated: a fresh append replays cleanly.
	if err := r.Commit("alice", "j1", 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rr := openT(t, path, Options{})
	wantBalance(t, rr, "alice", 2, 0, 1)
}

// TestCrashSweep hammers a fixed op script under rate-based WAL crashes
// across many seeds. Whatever prefix survives, replay must (a) succeed,
// (b) be idempotent (two replays agree), and (c) never show spent+reserved
// above the allowance.
func TestCrashSweep(t *testing.T) {
	script := func(l *Ledger) error {
		if err := l.CreateTenant("alice", 4, 1e-6); err != nil {
			return err
		}
		for i, job := range []string{"j1", "j2", "j3"} {
			if err := l.Reserve("alice", job, 1, 1e-9); err != nil {
				return err
			}
			if i == 1 {
				if err := l.Release("alice", job, "failed"); err != nil {
					return err
				}
				continue
			}
			if err := l.Commit("alice", job, 1, 1e-9); err != nil {
				return err
			}
		}
		return nil
	}
	crashed := 0
	for seed := uint64(0); seed < 40; seed++ {
		path := filepath.Join(t.TempDir(), "wal")
		plan := faults.New(seed).SetRate(faults.WALCrash, 0.25)
		l, err := Open(path, Options{Crash: plan})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := script(l); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("seed %d: script failed with %v, want nil or ErrCrashed", seed, err)
			}
			crashed++
		}
		l.Close()

		r1, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		b1, ok := r1.Balance("alice")
		r1.Close()
		r2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("seed %d: second replay: %v", seed, err)
		}
		b2, ok2 := r2.Balance("alice")
		r2.Close()
		if ok != ok2 || b1 != b2 {
			t.Fatalf("seed %d: replay not idempotent: %+v vs %+v", seed, b1, b2)
		}
		if ok && b1.EpsSpent+b1.EpsReserved > b1.EpsTotal+1e-9 {
			t.Fatalf("seed %d: oversubscribed after replay: %+v", seed, b1)
		}
	}
	if crashed == 0 {
		t.Fatal("sweep never crashed — rate/seed coverage is broken")
	}
	t.Logf("sweep: %d/40 seeds crashed mid-script", crashed)
}
